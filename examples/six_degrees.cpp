// Example: BFS "six degrees of separation" on a small-world graph, plus a
// custom computation binding.
//
// Demonstrates two things the paper emphasizes:
//   1. BFS's departure from flat data parallelism — per-accelerator local
//      frontiers with a master-worker scheme inside each accelerator;
//   2. that an application can override KVMSR's default bindings (here we
//      also run a do_all with a user-defined reduce binding to build the
//      distance histogram).
//
// Run:  ./six_degrees
#include <cstdio>
#include <vector>

#include "apps/bfs.hpp"
#include "baseline/baseline.hpp"
#include "graph/generators.hpp"

using namespace updown;

int main() {
  Graph g = rmat(13, {.symmetrize = true}, 99);
  Machine m(MachineConfig::scaled(8));
  DeviceGraph dg = upload_graph(m, g);

  bfs::Options opt;
  opt.root = 1;
  bfs::Result r = bfs::App::install(m, dg, opt).run();

  std::printf("BFS from vertex %llu: %llu rounds, %llu edges traversed, %.3f ms "
              "simulated (%.2f GTEPS)\n",
              (unsigned long long)opt.root, (unsigned long long)r.rounds,
              (unsigned long long)r.traversed_edges, 1e3 * r.seconds(), r.gteps());

  const auto oracle = baseline::bfs(g, opt.root);
  std::uint64_t mismatches = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (r.dist[v] != oracle.dist[v]) ++mismatches;
  std::printf("distance mismatches vs CPU oracle: %llu\n", (unsigned long long)mismatches);

  // Distance histogram: how many hops away is the world?
  std::vector<std::uint64_t> hist;
  std::uint64_t unreachable = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] == kInfDist) {
      ++unreachable;
      continue;
    }
    if (r.dist[v] >= hist.size()) hist.resize(r.dist[v] + 1, 0);
    hist[r.dist[v]]++;
  }
  std::printf("degrees of separation:\n");
  for (std::size_t d = 0; d < hist.size(); ++d) {
    std::printf("  %2zu hops: %8llu  ", d, (unsigned long long)hist[d]);
    for (std::uint64_t i = 0; i < hist[d] * 50 / g.num_vertices() + 1; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("  unreachable: %llu\n", (unsigned long long)unreachable);
  return 0;
}
