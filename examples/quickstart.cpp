// Quickstart: the KVMSR+UDWeave programming model in one file.
//
// Build a (simulated) UpDown machine, define UDWeave threads/events in C++,
// and run a KVMSR job that computes a histogram of squares over a shared
// global array — exercising all three dimensions the paper separates:
//   parallelism         (kv_map/kv_reduce over keys)
//   computation binding (Block for maps, Hash for reduces — the defaults)
//   data placement      (DRAMmalloc spread over the machine)
//
// Run:  ./quickstart
#include <cstdio>

#include "kvmsr/combining_cache.hpp"
#include "kvmsr/kvmsr.hpp"

using namespace updown;

namespace {

struct QuickApp {
  kvmsr::JobId job = 0;
  Addr hist = 0;        // global histogram array
  Word buckets = 16;
};

// A UDWeave thread: state members persist across events; events are member
// functions taking Ctx& and execute atomically on their lane.
struct SquareMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<kvmsr::Library>();
    auto& app = ctx.machine().user<QuickApp>();
    const Word k = kvmsr::Library::map_key(ctx);
    ctx.charge(2);  // the multiply+mod below
    // kv_map_emit: the tuple flows straight to a reducer chosen by the Hash
    // binding — the intermediate map is never materialized.
    lib.emit(ctx, kvmsr::Library::map_job(ctx), k % app.buckets, k * k);
    lib.map_return(ctx, ctx.ccont());  // retire this map task
  }
};

struct SquareReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& lib = ctx.machine().service<kvmsr::Library>();
    auto& cc = ctx.machine().service<kvmsr::CombiningCache>();
    auto& app = ctx.machine().user<QuickApp>();
    // Software fetch&add through the combining cache (atomic because the
    // Hash binding routes every tuple for this bucket to this lane).
    cc.add_u64(ctx, app.hist + kvmsr::Library::reduce_key(ctx) * 8,
               kvmsr::Library::reduce_val(ctx));
    lib.reduce_return(ctx, kvmsr::Library::reduce_job(ctx));
  }
};

}  // namespace

int main() {
  // A 4-node machine (each node: accelerators of event-driven lanes).
  Machine m(MachineConfig::scaled(4));
  auto& lib = kvmsr::Library::install(m);
  auto& cc = kvmsr::CombiningCache::install(m);

  auto& app = m.emplace_user<QuickApp>();
  // Data placement: one DRAMmalloc call spreads the histogram over the
  // machine in 4 KiB blocks.
  app.hist = m.memory().dram_malloc_spread(app.buckets * 8, 4096);
  m.memory().host_fill(app.hist, 0, app.buckets * 8);

  kvmsr::JobSpec spec;
  spec.kv_map = m.program().event("SquareMap::kv_map", &SquareMap::kv_map);
  spec.kv_reduce = m.program().event("SquareReduce::kv_reduce", &SquareReduce::kv_reduce);
  spec.flush = cc.flush_label();  // drain combining caches at the end
  spec.name = "quickstart";
  app.job = lib.add_job(spec);

  const std::uint64_t keys = 10000;
  const auto& st = lib.run_to_completion(app.job, 0, keys);

  std::printf("quickstart: %llu map tasks, %llu tuples, %.1f us simulated on %llu lanes\n",
              (unsigned long long)st.total_keys, (unsigned long long)st.total_emitted,
              1e6 * ticks_to_seconds(st.done_tick - st.start_tick),
              (unsigned long long)m.config().total_lanes());
  for (Word b = 0; b < app.buckets; ++b)
    std::printf("  bucket %2llu: %llu\n", (unsigned long long)b,
                (unsigned long long)m.memory().host_load<Word>(app.hist + b * 8));

  // Sanity: compare with a direct host-side computation.
  std::uint64_t expect0 = 0;
  for (Word k = 0; k < keys; k += app.buckets) expect0 += k * k;
  std::printf("bucket 0 expected %llu -> %s\n", (unsigned long long)expect0,
              m.memory().host_load<Word>(app.hist) == expect0 ? "OK" : "MISMATCH");
  return 0;
}
