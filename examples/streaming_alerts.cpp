// Example: streaming ingestion + partial pattern matching.
//
// The paper's "partial match streaming network application": transaction
// records stream in, are parsed by TFORM, inserted into the Parallel Graph
// (two scalable hash tables), and checked incrementally against registered
// two-hop patterns — e.g. "funds move a -(wire)-> b -(withdrawal)-> c".
// Alerts fire as soon as a pattern completes; latency is the metric.
//
// Run:  ./streaming_alerts
#include <cstdio>

#include "apps/ingestion.hpp"
#include "apps/partial_match.hpp"
#include "tform/stream_gen.hpp"

using namespace updown;

int main() {
  // Edge types: 1 = wire transfer, 2 = withdrawal, 3 = deposit.
  tform::RecordStream stream = tform::make_stream(/*n_records=*/800, /*n_vertices=*/96,
                                                  /*n_types=*/3, /*seed=*/2026);

  // Phase 1: bulk-ingest a historical ledger through TFORM + KVMSR.
  {
    Machine m(MachineConfig::scaled(4));
    ingest::App& app = ingest::App::install(m, {});
    ingest::Result r = app.run(stream.bytes);
    std::printf("ingestion: %llu records parsed+inserted in %.3f ms simulated "
                "(%.2f M records/s; graph: %llu vertices, %llu edges)\n",
                (unsigned long long)r.records, 1e3 * r.seconds(),
                r.records_per_second() / 1e6, (unsigned long long)app.graph().num_vertices(),
                (unsigned long long)app.graph().num_edges());
  }

  // Phase 2: the same records as a live stream with pattern matching.
  {
    Machine m(MachineConfig::scaled(4));
    pmatch::Options opt;
    opt.patterns = {{/*wire*/ 1, /*withdrawal*/ 2}, {/*withdrawal*/ 2, /*deposit*/ 3}};
    pmatch::App& app = pmatch::App::install(m, opt);
    pmatch::Result r = app.run(stream.records);
    std::printf("partial match: %llu records streamed, %llu alerts raised\n",
                (unsigned long long)r.records, (unsigned long long)r.alerts);
    std::printf("mean record latency: %.0f cycles (%.3f us at 2 GHz)\n",
                r.mean_latency_cycles(), r.mean_latency_us());
    std::printf("oracle agrees: %s\n",
                r.alerts == app.oracle_alerts(stream.records) ? "yes" : "NO");
  }
  return 0;
}
