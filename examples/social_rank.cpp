// Example: PageRank on a skewed social-network-like graph.
//
// The scenario the paper's introduction motivates: real-world graphs with
// high skew, processed with full vertex AND edge parallelism. The RMAT graph
// is vertex-split (max degree 64) so neither side of the hub serializes,
// then ranked on a 8-node simulated UpDown machine; results are verified
// against the serial CPU oracle and the top pages printed.
//
// Run:  ./social_rank
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "apps/pagerank.hpp"
#include "baseline/baseline.hpp"
#include "graph/generators.hpp"

using namespace updown;

int main() {
  const std::uint32_t scale = 12;
  Graph g = rmat(scale);
  std::printf("social graph: %llu vertices, %llu edges, max degree %llu\n",
              (unsigned long long)g.num_vertices(), (unsigned long long)g.num_edges(),
              (unsigned long long)g.max_degree());

  SplitGraph sg = split_vertices(g, /*max_degree=*/64);
  std::printf("after split_and_shuffle: %llu sub-vertices (max degree %llu)\n",
              (unsigned long long)sg.num_sub(), (unsigned long long)sg.g.max_degree());

  Machine m(MachineConfig::scaled(8));
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Options opt;
  opt.iterations = 5;
  pr::Result r = pr::App::install(m, dg, sg, opt).run();

  std::printf("PageRank: %u iterations, %llu edge updates, %.3f ms simulated (%.2f GUPS)\n",
              r.iterations, (unsigned long long)r.edge_updates, 1e3 * r.seconds(), r.gups());

  // Verify against the CPU oracle.
  const auto oracle = baseline::pagerank(g, opt.iterations);
  double max_err = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    max_err = std::max(max_err, std::abs(r.rank[v] - oracle[v]));
  std::printf("max |simulated - oracle| = %.2e  %s\n", max_err,
              max_err < 1e-9 ? "(exact to FP tolerance)" : "(MISMATCH)");

  // Top pages.
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](VertexId a, VertexId b) { return r.rank[a] > r.rank[b]; });
  std::printf("top pages:\n");
  for (int i = 0; i < 10; ++i)
    std::printf("  #%2d vertex %6llu  rank %.6f  in-hub degree %llu\n", i + 1,
                (unsigned long long)order[i], r.rank[order[i]],
                (unsigned long long)g.degree(order[i]));
  return 0;
}
