// Figure 11 + Table 12: Partial Match streaming-query latency vs machine
// size. The paper sweeps fractional machines (1/8, 1/2, 1, 4 nodes); here
// fractions are lane subsets of one node.
#include <cstdio>

#include "apps/partial_match.hpp"
#include "bench/bench_util.hpp"
#include "tform/stream_gen.hpp"

using namespace updown;

int main() {
  struct Size {
    std::string name;
    MachineConfig cfg;
  };
  std::vector<Size> sizes = {
      {"1/8 node", MachineConfig::scaled(1, 1, 4)},
      {"1/2 node", MachineConfig::scaled(1, 2, 8)},
      {"1 node", MachineConfig::scaled(1)},
      {"4 nodes", MachineConfig::scaled(4)},
  };
  if (bench::scale_level() > 1) sizes.push_back({"16 nodes", MachineConfig::scaled(16)});

  const std::uint64_t n_records = 400ull * bench::scale_level();
  tform::RecordStream s = tform::make_stream(n_records, 128, 4, 23);

  std::printf("Figure 11 / Table 12 reproduction: Partial Match streaming latency\n");
  std::printf("%-10s  %14s  %14s  %10s  %8s\n", "Machine", "mean lat (cyc)", "mean lat (us)",
              "speedup", "alerts");

  double base_latency = 0;
  for (const auto& size : sizes) {
    Machine m(size.cfg);
    pmatch::Options opt;
    opt.patterns = {{1, 2}, {2, 3}};
    // A continuously saturated stream: deep window + per-record filter work,
    // so latency is queueing-dominated and extra lanes keep shortening it.
    opt.stream_window = 128;
    opt.filter_tasks = 32;
    pmatch::App& app = pmatch::App::install(m, opt);
    pmatch::Result r = app.run(s.records);
    if (base_latency == 0) base_latency = r.mean_latency_cycles();
    std::printf("%-10s  %14.0f  %14.3f  %10.2f  %8llu\n", size.name.c_str(),
                r.mean_latency_cycles(), r.mean_latency_us(),
                base_latency / r.mean_latency_cycles(), (unsigned long long)r.alerts);
  }
  return 0;
}
