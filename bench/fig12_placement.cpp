// Figure 12: performance impact of NRnodes in the DRAMmalloc() allocation of
// the graph structure (PR) and the frontier (BFS), at a fixed compute-node
// count. "Only a single number was changed in a DRAMmalloc() call to create
// each layout!" — here that number is the placement's nr_nodes field.
#include <cstdio>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"

using namespace updown;

int main() {
  const std::uint32_t compute_nodes = bench::scale_level() > 1 ? 32 : 16;
  std::vector<std::uint32_t> mem_nodes;
  for (std::uint32_t n = 1; n <= compute_nodes; n *= 2) mem_nodes.push_back(n);

  const std::uint32_t s = bench::graph_scale(14);
  Graph g = rmat(s);
  SplitGraph sg = split_vertices(g, 64);
  Graph gsym = rmat(s, {.symmetrize = true}, 3);

  std::printf("Figure 12 reproduction: DRAMmalloc NRnodes sweep, %u compute nodes\n",
              compute_nodes);

  bench::Series pr_col{"PR (graph)", {}}, bfs_col{"BFS (frontier)", {}};
  Tick pr_base = 0, bfs_base = 0;
  for (std::uint32_t mem : mem_nodes) {
    {
      MachineConfig cfg = MachineConfig::scaled(compute_nodes);
      // Preserve the paper's demand:supply ratio: its Fig.12 runs 64 full
      // nodes (2048 lanes each) against 2-64 memory nodes; our nodes carry
      // 64x fewer lanes, so per-node DRAM bandwidth is scaled down by the
      // same factor to keep narrow placements memory-bound.
      cfg.bw_dram_node = 64.0;
      Machine m(cfg);
      GraphPlacement place;
      place.nr_nodes = mem;  // the single DRAMmalloc number being swept
      DeviceGraph dg = upload_graph(m, sg.g, place, &sg);
      pr::Options opt;
      opt.iterations = 1;
      opt.value_placement.nr_nodes = mem;
      pr::Result r = pr::App::install(m, dg, sg, opt).run();
      if (pr_base == 0) pr_base = r.duration();
      pr_col.values.push_back(static_cast<double>(pr_base) / r.duration());
    }
    {
      MachineConfig cfg = MachineConfig::scaled(compute_nodes);
      cfg.bw_dram_node = 64.0;
      Machine m(cfg);
      DeviceGraph dg = upload_graph(m, gsym);
      bfs::Options opt;
      opt.root = 1;
      opt.frontier_mem_nodes = mem;
      bfs::Result r = bfs::App::install(m, dg, opt).run();
      if (bfs_base == 0) bfs_base = r.duration();
      bfs_col.values.push_back(static_cast<double>(bfs_base) / r.duration());
    }
  }
  bench::print_table("Speedup vs narrowest placement (Figure 12 analog)", "MemNodes",
                     mem_nodes, {pr_col, bfs_col});
  return 0;
}
