// Table 5: lines-of-code metrics. Counts non-blank, non-comment-only lines
// per module of this repository and prints them next to the paper's reported
// UpDown numbers (UD column of Table 5) for the corresponding component.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef UD_SOURCE_DIR
#define UD_SOURCE_DIR "."
#endif

namespace fs = std::filesystem;

namespace {

std::uint64_t count_loc(const fs::path& path) {
  std::uint64_t loc = 0;
  for (const auto& entry : fs::recursive_directory_iterator(path)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cpp" && ext != ".hpp") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;               // blank
      if (line.compare(first, 2, "//") == 0) continue;        // comment-only
      ++loc;
    }
  }
  return loc;
}

struct Row {
  const char* component;
  const char* subdir;
  const char* paper_ud;  ///< the paper's Table 5 UD LoC where comparable
};

}  // namespace

int main() {
  const fs::path root = UD_SOURCE_DIR;
  const std::vector<Row> rows = {
      {"PR", "src/apps/pagerank.cpp", "218"},
      {"BFS", "src/apps/bfs.cpp", "226"},
      {"TC", "src/apps/tc.cpp", "312"},
      {"Ingestion (WF2 K1)", "src/apps/ingestion.cpp", "782"},
      {"Partial Match (WF2)", "src/apps/partial_match.cpp", "-"},
      {"Scalable Hash Table", "src/abstractions/sht.cpp", "4764"},
      {"Parallel Graph Abstraction", "src/abstractions/parallel_graph.cpp", "170"},
      {"KV map-shuffle-reduce", "src/kvmsr/kvmsr.cpp", "1586"},
      {"Scalable Global Sort", "src/abstractions/global_sort.cpp", "158"},
      {"SHMEM (put/get, reductions)", "src/abstractions/shmem.cpp", "1914"},
      {"Combining Cache (fetch&add)", "src/kvmsr/combining_cache.cpp", "232"},
      {"DRAMmalloc (global malloc)", "src/mem", "52"},
      {"TFORM", "src/tform", "-"},
      {"Simulator core", "src/sim", "-"},
  };

  std::printf("Table 5 reproduction: code sizes (LoC, comments/blanks excluded)\n");
  std::printf("%-30s %12s %12s\n", "Component", "this repo", "paper (UD)");
  std::uint64_t total = 0;
  for (const auto& r : rows) {
    const fs::path p = root / r.subdir;
    std::uint64_t loc = 0;
    if (fs::is_directory(p))
      loc = count_loc(p);
    else if (fs::exists(p)) {
      // Single file: count it plus its header, if any.
      loc = 0;
      for (const auto& candidate :
           {p, fs::path(p).replace_extension(".hpp")}) {
        if (!fs::exists(candidate)) continue;
        std::ifstream in(candidate);
        std::string line;
        while (std::getline(in, line)) {
          const auto first = line.find_first_not_of(" \t");
          if (first == std::string::npos) continue;
          if (line.compare(first, 2, "//") == 0) continue;
          ++loc;
        }
      }
    }
    total += loc;
    std::printf("%-30s %12llu %12s\n", r.component, (unsigned long long)loc, r.paper_ud);
  }
  std::printf("%-30s %12llu %12s\n", "Sum of listed components", (unsigned long long)total,
              "~11k");
  std::printf("(LoC ratios differ: the paper counts UDWeave source; this repo's C++\n"
              " embedded DSL carries simulator plumbing in the same files.)\n");
  return 0;
}
