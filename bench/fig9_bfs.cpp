// Figure 9 (center) + Table 9: BFS strong scaling. The paper's series are a
// com-orkut-like social graph (here: symmetric RMAT), a soc-livej-like graph
// that saturates early (here: a smaller symmetric RMAT — the saturation is a
// property of insufficient frontier work, which the small graph reproduces),
// and an ER graph. Prints speedups and absolute giga-traversed-edges/second.
#include <cstdio>

#include "apps/bfs.hpp"
#include "baseline/baseline.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"

using namespace updown;

int main() {
  const auto nodes = bench::node_sweep();
  const std::uint32_t s = bench::graph_scale(15);

  struct Case {
    std::string name;
    Graph graph;
    VertexId root;
  };
  std::vector<Case> cases;
  cases.push_back({"RMAT-s" + std::to_string(s), rmat(s, {.symmetrize = true}), 1});
  cases.push_back({"small-social", rmat(s - 3, {.symmetrize = true}, 17), 1});
  cases.push_back({"Erdos-Renyi", erdos_renyi(s, 16, 7, true), 0});

  std::printf("Figure 9 (center) / Table 9 reproduction: BFS strong scaling\n");

  std::vector<bench::Series> speedup_cols, gteps_cols;
  for (auto& c : cases) {
    const auto oracle = baseline::bfs(c.graph, c.root);
    std::vector<Tick> durations;
    bench::Series gteps{c.name, {}};
    for (std::uint32_t n : nodes) {
      Machine m(MachineConfig::scaled(n));
      DeviceGraph dg = upload_graph(m, c.graph);
      bfs::Result r = bfs::App::install(m, dg, {.root = c.root}).run();
      if (r.traversed_edges != oracle.traversed_edges)
        std::fprintf(stderr, "WARNING: %s traversal mismatch at %u nodes\n", c.name.c_str(), n);
      durations.push_back(r.duration());
      gteps.values.push_back(r.gteps());
    }
    speedup_cols.push_back({c.name, bench::speedups(durations)});
    gteps_cols.push_back(gteps);
    std::printf("  %-14s m=%-9llu rounds=%llu traversed=%llu\n", c.name.c_str(),
                (unsigned long long)c.graph.num_edges(), (unsigned long long)oracle.rounds,
                (unsigned long long)oracle.traversed_edges);
  }

  bench::print_table("BFS speedup vs 1 node (Table 9 analog)", "Nodes", nodes, speedup_cols);
  bench::print_table("BFS absolute giga-traversed-edges/second", "Nodes", nodes, gteps_cols);
  return 0;
}
