// Streaming ingestion + incremental refresh bench (ROADMAP item 3's
// deliverable). A resident session is warmed with a full PageRank + BFS,
// then takes a small delta batch (<= 1% of the edge set) through the
// device-side TFORM/KVMSR parse path, compacts it, and refreshes
// incrementally. The refresh is cross-checked bit-for-bit against the
// from-scratch CPU baselines on the post-delta graph, and its simulated cost
// is compared to a full device-side recomputation of the same state: under
// UD_BENCH_ENFORCE the incremental PageRank must be >= 3x cheaper.
//
// The incremental pass runs BEFORE the full recomputation so the comparison
// cannot be flattered by re-ranking an already-converged state.
//
// Writes BENCH_stream_ingest.json. All quantities are simulated ticks —
// deterministic for a fixed machine/shard count; wall-clock plays no part.
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/baseline.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "stream/stream.hpp"

namespace updown {
namespace {

std::vector<tform::EdgeRecord> make_delta(VertexId n, std::uint64_t count,
                                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<tform::EdgeRecord> recs;
  for (std::uint64_t i = 0; i < count; ++i)
    recs.push_back({rng.below(n), rng.below(n), i % 4});
  return recs;
}

Graph apply_delta(const Graph& g, const std::vector<tform::EdgeRecord>& recs) {
  std::vector<Edge> es;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const VertexId v : g.neighbors_of(u)) es.emplace_back(u, v);
  for (const tform::EdgeRecord& r : recs) es.emplace_back(r.src, r.dst);
  return Graph::from_edges(g.num_vertices(), std::move(es), false);
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<Word>(a[i]) != std::bit_cast<Word>(b[i])) return false;
  return true;
}

}  // namespace
}  // namespace updown

int main() {
  using namespace updown;
  // Sparse ER: the incremental frontier is the K-hop out-neighborhood of
  // the touched vertices, so average degree bounds its growth per sweep.
  const std::uint32_t scale = bench::graph_scale(14);
  const Graph base = erdos_renyi(scale, 4, 7);
  const VertexId n = base.num_vertices();

  Machine m(MachineConfig::scaled(2));
  stream::StreamOptions opt;
  opt.pr_iterations = 2;
  auto& se = stream::StreamEngine::install(m, base, opt);

  // Warm: full PageRank + BFS populate the resident state.
  const stream::RefreshResult warm = se.warm();
  std::printf("warm: full pagerank %llu ticks, full bfs %llu ticks (%llu vertices, %llu edges)\n",
              static_cast<unsigned long long>(warm.pr.duration()),
              static_cast<unsigned long long>(warm.bfs.duration()),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(base.num_edges()));

  // Delta batch: 0.2% of the resident edge set through the device parse path.
  const std::uint64_t nrec = std::max<std::uint64_t>(8, base.num_edges() / 512);
  const auto recs = make_delta(n, nrec, 0x5EED);
  const double delta_pct =
      100.0 * static_cast<double>(nrec) / static_cast<double>(base.num_edges());
  const Tick t0 = m.now();
  const std::uint64_t b = se.ingest_async(recs, t0);
  m.run();
  const Tick ingest_ticks = m.now() - t0;
  if (!se.ingested(b)) {
    std::fprintf(stderr, "FAIL: device ingestion did not complete\n");
    return 1;
  }
  se.compact(m.now());
  const double recs_per_ktick = static_cast<double>(nrec) * 1e3 /
                                static_cast<double>(std::max<Tick>(1, ingest_ticks));
  std::printf("ingest: %llu records (%.2f%% of edges) in %llu ticks — %.2f records/ktick\n",
              static_cast<unsigned long long>(nrec), delta_pct,
              static_cast<unsigned long long>(ingest_ticks), recs_per_ktick);

  // Incremental refresh first, then the full recomputation it is measured
  // against (both device-side, same machine, same resident arrays).
  const stream::RefreshResult inc = se.refresh();
  const Graph post = apply_delta(base, recs);
  const bool pr_exact = bits_equal(inc.pr.rank, baseline::pagerank(post, opt.pr_iterations));
  const bool bfs_exact = inc.bfs.dist == baseline::bfs(post, opt.bfs_root).dist;
  const stream::RefreshResult full = se.warm();

  const double pr_speedup = static_cast<double>(full.pr.duration()) /
                            static_cast<double>(std::max<Tick>(1, inc.pr.duration()));
  const double bfs_speedup = static_cast<double>(full.bfs.duration()) /
                             static_cast<double>(std::max<Tick>(1, inc.bfs.duration()));
  std::printf("refresh: inc pagerank %llu ticks vs full %llu — %.2fx; "
              "inc bfs %llu ticks vs full %llu — %.2fx\n",
              static_cast<unsigned long long>(inc.pr.duration()),
              static_cast<unsigned long long>(full.pr.duration()), pr_speedup,
              static_cast<unsigned long long>(inc.bfs.duration()),
              static_cast<unsigned long long>(full.bfs.duration()), bfs_speedup);
  std::printf("bit-exact vs post-delta baselines: pagerank %s, bfs %s\n",
              pr_exact ? "yes" : "NO", bfs_exact ? "yes" : "NO");

  bench::Json j("BENCH_stream_ingest.json");
  j.str("bench", "stream_ingest");
  j.u64("graph_scale", scale);
  j.u64("vertices", n);
  j.u64("edges", base.num_edges());
  j.u64("delta_records", nrec);
  j.num("delta_pct", delta_pct);
  j.u64("ingest_ticks", ingest_ticks);
  j.num("records_per_ktick", recs_per_ktick);
  j.u64("warm_pagerank_ticks", warm.pr.duration());
  j.u64("warm_bfs_ticks", warm.bfs.duration());
  j.u64("inc_pagerank_ticks", inc.pr.duration());
  j.u64("inc_bfs_ticks", inc.bfs.duration());
  j.u64("full_pagerank_ticks", full.pr.duration());
  j.u64("full_bfs_ticks", full.bfs.duration());
  j.num("pagerank_speedup", pr_speedup);
  j.num("bfs_speedup", bfs_speedup);
  j.boolean("pagerank_bit_exact", pr_exact);
  j.boolean("bfs_bit_exact", bfs_exact);
  j.close();

  // Bit-exactness is the correctness contract — enforced always.
  if (!pr_exact || !bfs_exact) {
    std::fprintf(stderr, "FAIL: incremental refresh diverged from post-delta baselines\n");
    return 1;
  }
  // The cost claim: re-ranking the delta frontier must be materially cheaper
  // than a full recompute for a <= 1% batch.
  if (std::getenv("UD_BENCH_ENFORCE")) {
    if (pr_speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: incremental pagerank only %.2fx cheaper than full (floor 3x)\n",
                   pr_speedup);
      return 1;
    }
  }
  return 0;
}
