// Figure 9 (left) + Table 8: PageRank strong scaling on the simulated
// UpDown machine. Prints the speedup-vs-nodes series for an Erdős–Rényi, a
// Forest Fire, and an RMAT graph (the paper's graph families), plus absolute
// giga-updates/second and the host-CPU baseline time for reference.
//
// A second section compares the shuffle with and without destination
// coalescing (pr::Options::coalesce_tuples = 16) on a pinned dense RMAT at
// 16 nodes / 512 lanes with the paper's per-lane network bandwidth share
// (MachineConfig::scaled_netbound), prints the per-phase traffic summaries,
// and writes BENCH_fig9_coalesce.json; under UD_BENCH_ENFORCE the coalesced
// run must cut cross-node shuffle messages by at least 4x AND finish in
// fewer simulated cycles.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/pagerank.hpp"
#include "baseline/baseline.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"
#include "trace/trace.hpp"

using namespace updown;

namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

}  // namespace

int main() {
  const auto nodes = bench::node_sweep();
  const std::uint32_t s = bench::graph_scale(15);
  const unsigned iterations = 1;
  const std::uint64_t max_degree = 64;  // paper: 512 at full scale

  std::vector<GraphCase> cases;
  cases.push_back({"Erdos-Renyi", erdos_renyi(s)});
  cases.push_back({"ForestFire", forest_fire(1ull << s)});
  cases.push_back({"RMAT-s" + std::to_string(s), rmat(s)});

  std::printf("Figure 9 (left) / Table 8 reproduction: PageRank strong scaling\n");
  std::printf("graphs at scale %u (~%llu vertices), %u iterations, split max degree %llu\n",
              s, 1ull << s, iterations, (unsigned long long)max_degree);

  std::vector<bench::Series> speedup_cols, gups_cols;
  for (auto& gc : cases) {
    SplitGraph sg = split_vertices(gc.graph, max_degree);

    const auto cpu_t0 = std::chrono::steady_clock::now();
    (void)baseline::pagerank(gc.graph, iterations);
    const double cpu_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - cpu_t0)
            .count();

    std::vector<Tick> durations;
    bench::Series gups{gc.name, {}};
    for (std::uint32_t n : nodes) {
      Machine m(MachineConfig::scaled(n));
      DeviceGraph dg = upload_split_graph(m, sg);
      pr::Options opt;
      opt.iterations = iterations;
      pr::Result r = pr::App::install(m, dg, sg, opt).run();
      durations.push_back(r.duration());
      gups.values.push_back(r.gups());
    }
    speedup_cols.push_back({gc.name, bench::speedups(durations)});
    gups_cols.push_back(gups);
    std::printf("  %-14s m=%-9llu CPU baseline (this host, serial): %.1f ms; "
                "UpDown 1-node simulated time: %.3f ms\n",
                gc.name.c_str(), (unsigned long long)gc.graph.num_edges(), cpu_ms,
                1e3 * ticks_to_seconds(durations.front()));
  }

  bench::print_table("PR speedup vs 1 node (Table 8 analog)", "Nodes", nodes, speedup_cols);
  bench::print_table("PR absolute giga-updates/second", "Nodes", nodes, gups_cols);

  // --- Shuffle coalescing at 16 nodes (512 lanes) --------------------------
  // A pinned configuration, independent of UD_BENCH_SCALE, so the enforce
  // gate below is deterministic: a dense RMAT (edge factor 64, several
  // tuples per lane pair) on the network-bandwidth-faithful machine
  // (scaled_netbound — under plain scaled() each lane has 64x the paper's
  // injection share and fewer messages cannot translate into cycles).
  // The comparison drives the factor through the job spec; an ambient
  // UD_COALESCE would override BOTH sides and make it degenerate, so drop it
  // for the rest of this process.
  ::unsetenv("UD_COALESCE");
  const std::uint32_t big = 16;
  Graph dense = rmat(15, {.edge_factor = 64});
  SplitGraph sg = split_vertices(dense, max_degree);
  struct CoalesceRun {
    Tick duration = 0;
    MachineStats stats;
    std::string trace_path;
    Tick trace_slice = 0;
    std::vector<double> imbalance;  // per-slice peak/mean lane busy (udtrace)
  };
  auto run_coalesced = [&](std::uint32_t coalesce) {
    MachineConfig cfg = MachineConfig::scaled_netbound(big);
    // Each side also records a udtrace timeline so the phase structure and
    // lane imbalance behind the headline cycle counts can be inspected in
    // Perfetto. UD_TRACE, if set, overrides this path for both runs.
    cfg.trace = "TRACE_fig9_pr_c" + std::to_string(coalesce) + ".json";
    Machine m(cfg);
    DeviceGraph dg = upload_split_graph(m, sg);
    pr::Options opt;
    opt.iterations = iterations;
    opt.coalesce_tuples = coalesce;
    pr::Result r = pr::App::install(m, dg, sg, opt).run();
    CoalesceRun out{r.duration(), m.stats()};
    if (const Tracer* t = m.tracer()) {
      out.trace_path = t->path();
      out.trace_slice = t->slice();
      out.imbalance = t->imbalance_series();
    }
    return out;
  };
  std::printf("\n=== shuffle coalescing, RMAT-s15-ef64 (m=%llu) at %u nodes "
              "(%u lanes, paper per-lane net bandwidth) ===\n",
              (unsigned long long)dense.num_edges(), big,
              big * MachineConfig::scaled(big).lanes_per_node());
  const CoalesceRun off = run_coalesced(1);
  std::printf("coalesce=1 (classic per-tuple shuffle), %llu simulated cycles:\n",
              (unsigned long long)off.duration);
  off.stats.print_traffic_summary();
  const CoalesceRun on = run_coalesced(16);
  std::printf("coalesce=16 (packed packets + f64 sum combining), %llu simulated cycles:\n",
              (unsigned long long)on.duration);
  on.stats.print_traffic_summary();

  const double msg_ratio =
      on.stats.shuffle.cross_node_messages
          ? static_cast<double>(off.stats.shuffle.cross_node_messages) /
                static_cast<double>(on.stats.shuffle.cross_node_messages)
          : 0.0;
  const double cycle_gain =
      on.duration ? static_cast<double>(off.duration) / static_cast<double>(on.duration)
                  : 0.0;
  std::printf("cross-node shuffle messages %llu -> %llu (%.2fx fewer); "
              "cycles %llu -> %llu (%.2fx)\n",
              (unsigned long long)off.stats.shuffle.cross_node_messages,
              (unsigned long long)on.stats.shuffle.cross_node_messages, msg_ratio,
              (unsigned long long)off.duration, (unsigned long long)on.duration,
              cycle_gain);
  auto imbalance_summary = [](const CoalesceRun& r) {
    double mean = 0.0, peak = 0.0;
    std::uint64_t active = 0;
    for (double x : r.imbalance) {
      if (x <= 0.0) continue;  // empty slices carry no load to balance
      mean += x;
      if (x > peak) peak = x;
      ++active;
    }
    if (active) mean /= static_cast<double>(active);
    return std::pair<double, double>{mean, peak};
  };
  for (const auto* r : {&off, &on}) {
    if (r->trace_path.empty()) continue;
    const auto [mean_imb, peak_imb] = imbalance_summary(*r);
    std::printf("coalesce=%d udtrace: %s (slice %llu cycles, %zu slices, "
                "lane imbalance mean %.2f peak %.2f)\n",
                r == &off ? 1 : 16, r->trace_path.c_str(),
                (unsigned long long)r->trace_slice, r->imbalance.size(), mean_imb,
                peak_imb);
  }

  {
    bench::Json json("BENCH_fig9_coalesce.json");
    json.str("benchmark", "fig9_pagerank_coalesce");
    json.str("graph", "RMAT-s15-ef64");
    json.u64("nodes", big);
    json.u64("lanes", big * MachineConfig::scaled(big).lanes_per_node());
    json.u64("iterations", iterations);
    json.begin_array("runs");
    for (const auto* r : {&off, &on}) {
      json.begin_object();
      json.u64("coalesce_tuples", r == &off ? 1 : 16);
      json.u64("simulated_cycles", r->duration);
      json.u64("shuffle_messages", r->stats.shuffle.messages);
      json.u64("shuffle_cross_node_messages", r->stats.shuffle.cross_node_messages);
      json.u64("shuffle_bytes", r->stats.shuffle.bytes);
      json.u64("tuples_emitted", r->stats.shuffle.tuples_emitted);
      json.u64("tuples_combined", r->stats.shuffle.tuples_combined);
      json.num("coalescing_factor", r->stats.shuffle.coalescing_factor());
      if (!r->trace_path.empty()) {
        const auto [mean_imb, peak_imb] = imbalance_summary(*r);
        json.str("trace_file", r->trace_path);
        json.u64("trace_slice_cycles", r->trace_slice);
        json.u64("trace_slices", r->imbalance.size());
        json.num("lane_imbalance_mean", mean_imb);
        json.num("lane_imbalance_peak", peak_imb);
      }
      json.end();
    }
    json.end();
    json.num("cross_node_message_reduction", msg_ratio);
    json.num("cycle_speedup", cycle_gain);
  }

  if (std::getenv("UD_BENCH_ENFORCE")) {
    if (msg_ratio < 4.0) {
      std::fprintf(stderr,
                   "fig9_pagerank: FAIL: coalesce=16 cut cross-node shuffle messages "
                   "only %.2fx (floor 4x)\n",
                   msg_ratio);
      return 1;
    }
    if (on.duration >= off.duration) {
      std::fprintf(stderr,
                   "fig9_pagerank: FAIL: coalesce=16 did not improve simulated time "
                   "(%llu -> %llu cycles)\n",
                   (unsigned long long)off.duration, (unsigned long long)on.duration);
      return 1;
    }
  }
  return 0;
}
