// Figure 9 (left) + Table 8: PageRank strong scaling on the simulated
// UpDown machine. Prints the speedup-vs-nodes series for an Erdős–Rényi, a
// Forest Fire, and an RMAT graph (the paper's graph families), plus absolute
// giga-updates/second and the host-CPU baseline time for reference.
#include <chrono>
#include <cstdio>

#include "apps/pagerank.hpp"
#include "baseline/baseline.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"

using namespace updown;

namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

}  // namespace

int main() {
  const auto nodes = bench::node_sweep();
  const std::uint32_t s = bench::graph_scale(15);
  const unsigned iterations = 1;
  const std::uint64_t max_degree = 64;  // paper: 512 at full scale

  std::vector<GraphCase> cases;
  cases.push_back({"Erdos-Renyi", erdos_renyi(s)});
  cases.push_back({"ForestFire", forest_fire(1ull << s)});
  cases.push_back({"RMAT-s" + std::to_string(s), rmat(s)});

  std::printf("Figure 9 (left) / Table 8 reproduction: PageRank strong scaling\n");
  std::printf("graphs at scale %u (~%llu vertices), %u iterations, split max degree %llu\n",
              s, 1ull << s, iterations, (unsigned long long)max_degree);

  std::vector<bench::Series> speedup_cols, gups_cols;
  for (auto& gc : cases) {
    SplitGraph sg = split_vertices(gc.graph, max_degree);

    const auto cpu_t0 = std::chrono::steady_clock::now();
    (void)baseline::pagerank(gc.graph, iterations);
    const double cpu_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - cpu_t0)
            .count();

    std::vector<Tick> durations;
    bench::Series gups{gc.name, {}};
    for (std::uint32_t n : nodes) {
      Machine m(MachineConfig::scaled(n));
      DeviceGraph dg = upload_split_graph(m, sg);
      pr::Options opt;
      opt.iterations = iterations;
      pr::Result r = pr::App::install(m, dg, sg, opt).run();
      durations.push_back(r.duration());
      gups.values.push_back(r.gups());
    }
    speedup_cols.push_back({gc.name, bench::speedups(durations)});
    gups_cols.push_back(gups);
    std::printf("  %-14s m=%-9llu CPU baseline (this host, serial): %.1f ms; "
                "UpDown 1-node simulated time: %.3f ms\n",
                gc.name.c_str(), (unsigned long long)gc.graph.num_edges(), cpu_ms,
                1e3 * ticks_to_seconds(durations.front()));
  }

  bench::print_table("PR speedup vs 1 node (Table 8 analog)", "Nodes", nodes, speedup_cols);
  bench::print_table("PR absolute giga-updates/second", "Nodes", nodes, gups_cols);
  return 0;
}
