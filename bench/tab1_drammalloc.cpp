// Table 1: common DRAMmalloc() parameter examples — reproduce each layout
// (scaled to the bench machine) and report the resulting distribution:
// participating nodes, bytes per node, and whether per-node data is
// contiguous or cyclic.
#include <cstdio>

#include "mem/global_memory.hpp"

using namespace updown;

namespace {

void show(GlobalMemory& gm, const char* desc, std::uint64_t size, std::uint32_t first,
          std::uint32_t nr, std::uint64_t bs) {
  const Addr base = gm.dram_malloc(size, first, nr, bs);
  const auto& d = gm.descriptor_for(base);
  // Contiguous-per-node iff each node's share arrives in one block.
  const bool contiguous = d.bytes_per_node() <= d.block_size();
  std::printf("%-44s  nodes %u..%u  %8llu B/node  %s\n", desc, first, first + nr - 1,
              (unsigned long long)d.bytes_per_node(), contiguous ? "contiguous" : "cyclic");
}

}  // namespace

int main() {
  std::printf("Table 1 reproduction: DRAMmalloc() parameter examples (64-node machine)\n");
  GlobalMemory gm(64);
  // The paper's examples, with machine/allocation sizes scaled 256x down
  // (16384 nodes -> 64; 4 TB -> 16 GB) but identical structure.
  show(gm, "(.,0,64,4096): cyclic over whole machine", 64ull << 20, 0, 64, 4096);
  show(gm, "(.,0,16,4096): cyclic over first 16 nodes", 16ull << 20, 0, 16, 4096);
  show(gm, "(16GB,0,16,1GB): contiguous 1GB per node", 16ull << 30, 0, 16, 1ull << 30);
  show(gm, "(16GB,16,32,1MB): cyclic across middle 32", 16ull << 30, 16, 32, 1ull << 20);
  std::printf("translation descriptors in use: %zu (paper: 2-4 per program)\n",
              gm.descriptor_count());
  return 0;
}
