// Table 2: lane operation costs. Measures the *simulated* cycle cost of each
// lane operation by running probe events and differencing charged cycles —
// verifying the cost model matches the paper's table:
//   Thread Create 0 | Thread Yield 1 | Thread Deallocate 1 |
//   Scratchpad Load/Store 1 | Send Message 1-2 | Send DRAM 1-2
#include <cstdio>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

using namespace updown;

namespace {

struct CostProbe {
  EventLabel noop = 0, ops = 0, sink = 0;
  std::uint64_t noop_cost = 0;
  std::uint64_t sp_cost = 0, send_cost = 0, send_wide_cost = 0, dram_cost = 0;
  std::uint64_t terminate_cost = 0;
  Addr cell = 0;
};

struct TProbe : ThreadState {
  void noop(Ctx& ctx) {
    ctx.machine().user<CostProbe>().noop_cost = ctx.charged();
    // implicit yield charged by the machine at return
  }
  void ops(Ctx& ctx) {
    auto& p = ctx.machine().user<CostProbe>();
    std::uint64_t before = ctx.charged();
    ctx.sp_write(0, 42);
    (void)ctx.sp_read(0);
    p.sp_cost = (ctx.charged() - before) / 2;

    before = ctx.charged();
    ctx.send_event(evw::make_new(1, p.sink), {1});
    p.send_cost = ctx.charged() - before;

    before = ctx.charged();
    ctx.send_event(evw::make_new(1, p.sink), {1, 2, 3, 4, 5});
    p.send_wide_cost = ctx.charged() - before;

    before = ctx.charged();
    ctx.send_dram_write(p.cell, {7});
    p.dram_cost = ctx.charged() - before;

    before = ctx.charged();
    ctx.yield_terminate();
    p.terminate_cost = ctx.charged() - before;
  }
};

struct TSink : ThreadState {
  void sink(Ctx& ctx) { ctx.yield_terminate(); }
};

}  // namespace

int main() {
  Machine m(MachineConfig::scaled(1));
  auto& p = m.emplace_user<CostProbe>();
  p.noop = m.program().event("probe::noop", &TProbe::noop);
  p.ops = m.program().event("probe::ops", &TProbe::ops);
  p.sink = m.program().event("probe::sink", &TSink::sink);
  p.cell = m.memory().dram_malloc_spread(4096, 4096);

  m.send_from_host(evw::make_new(0, p.noop), {});
  m.send_from_host(evw::make_new(0, p.ops), {});
  m.run();

  std::printf("Table 2 reproduction: lane operation costs (2 GHz clock)\n");
  std::printf("%-28s %10s %10s\n", "Operation", "Paper", "Simulated");
  std::printf("%-28s %10s %10llu\n", "Thread Create", "0", 0ull);  // charged nowhere
  std::printf("%-28s %10s %10s\n", "Thread Yield", "1", "1");      // added at event return
  std::printf("%-28s %10s %10llu\n", "Thread Deallocate", "1",
              (unsigned long long)p.terminate_cost);
  std::printf("%-28s %10s %10llu\n", "Load/Store (Scratchpad)", "1",
              (unsigned long long)p.sp_cost);
  std::printf("%-28s %10s %6llu-%llu\n", "Send Message", "1-2",
              (unsigned long long)p.send_cost, (unsigned long long)p.send_wide_cost);
  std::printf("%-28s %10s %10llu\n", "Send DRAM", "1-2", (unsigned long long)p.dram_cost);
  std::printf("(empty event total charge incl. implicit yield: %llu)\n",
              (unsigned long long)(p.noop_cost + 1));
  return 0;
}
