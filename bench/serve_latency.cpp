// Multi-tenant serving latency under offered load (ROADMAP item 2's
// deliverable). A seeded trace of mixed PageRank / BFS / 2-hop-path queries
// is replayed against a resident graph at swept offered loads through the
// serve scheduler; each point reports p50/p99 job latency (arrival ->
// completion, queueing included) and sustained throughput. A serial
// (max_concurrent=1) replay of the same trace calibrates the concurrency
// speedup: with 4 running slots in partitioned mode the simulated makespan
// must beat serial by >= 1.5x under UD_BENCH_ENFORCE (>= 4-core hosts).
//
// Writes BENCH_serve_latency.json. All simulated quantities are
// deterministic for a fixed machine/shard count; wall-clock plays no part.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "serve/scheduler.hpp"

namespace updown {
namespace {

struct TraceEntry {
  serve::QueryKind kind;
  Tick arrival;
};

/// The seeded mixed-query trace: kinds cycle PR -> BFS -> PathCount; gaps
/// are uniform in [period/2, 3*period/2) from a fixed seed, so every load
/// point replays the same shape at a different density.
std::vector<TraceEntry> make_trace(std::size_t n, Tick period, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<TraceEntry> t;
  Tick at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    serve::QueryKind kind = serve::QueryKind::kPageRank;
    if (i % 3 == 1) kind = serve::QueryKind::kBfs;
    if (i % 3 == 2) kind = serve::QueryKind::kPathCount;
    t.push_back({kind, at});
    at += period / 2 + (period ? rng.below(period) : 0);
  }
  return t;
}

serve::QuerySpec spec_for(const TraceEntry& e, const DeviceGraph& dg, std::size_t i) {
  serve::QuerySpec s;
  s.kind = e.kind;
  s.graph = &dg;
  s.iterations = 2;
  s.root = 1;
  s.name = std::string(serve::kind_name(e.kind)) + std::to_string(i);
  return s;
}

struct PointResult {
  Tick period = 0;
  Tick makespan = 0;
  Tick p50 = 0, p99 = 0, mean = 0;
  std::uint64_t completed = 0, rejected = 0;
  double jobs_per_mtick = 0.0;
};

PointResult replay(const Graph& g, const std::vector<TraceEntry>& trace,
                   const serve::SchedOptions& opt, Tick period) {
  Machine m(MachineConfig::scaled(4));
  DeviceGraph dg = upload_graph(m, g);
  auto& eng = serve::QueryEngine::install(m);
  serve::Scheduler sched(eng, opt);
  std::vector<serve::TicketId> tickets;
  for (std::size_t i = 0; i < trace.size(); ++i)
    tickets.push_back(sched.submit(spec_for(trace[i], dg, i), serve::QoS::kNormal,
                                   trace[i].arrival));
  sched.drain();

  PointResult r;
  r.period = period;
  std::vector<Tick> lat;
  Tick last_done = 0;
  for (const serve::TicketId t : tickets) {
    const serve::Ticket& tk = sched.ticket(t);
    if (tk.status == serve::TicketStatus::kRejected) {
      ++r.rejected;
      continue;
    }
    lat.push_back(tk.latency());
    last_done = std::max(last_done, tk.done);
  }
  std::sort(lat.begin(), lat.end());
  r.completed = lat.size();
  if (!lat.empty()) {
    r.p50 = lat[lat.size() / 2];
    r.p99 = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
    Tick sum = 0;
    for (const Tick l : lat) sum += l;
    r.mean = sum / lat.size();
    r.makespan = last_done;  // arrivals start at 0
    r.jobs_per_mtick = static_cast<double>(lat.size()) * 1e6 /
                       static_cast<double>(std::max<Tick>(1, r.makespan));
  }
  return r;
}

}  // namespace
}  // namespace updown

int main() {
  using namespace updown;
  const std::uint32_t scale = bench::graph_scale(8);
  Graph g = rmat(scale, {.symmetrize = true}, 77);
  const std::size_t njobs = 12;

  // Calibrate: the same trace, all arrivals at 0, one running slot — the
  // single-job-serial baseline every concurrency claim is measured against.
  const std::vector<TraceEntry> burst = make_trace(njobs, 0, 0x5EED);
  serve::SchedOptions serial_opt;
  serial_opt.max_concurrent = 1;
  serial_opt.max_queue = 64;
  const PointResult serial = replay(g, burst, serial_opt, 0);
  const Tick t_single = serial.makespan / njobs;  // mean solo job span
  std::printf("serial: makespan %llu ticks, mean job span %llu, p99 latency %llu\n",
              static_cast<unsigned long long>(serial.makespan),
              static_cast<unsigned long long>(t_single),
              static_cast<unsigned long long>(serial.p99));

  // The N=4 concurrent replay of the same burst, partitioned serving mode.
  serve::SchedOptions conc_opt;
  conc_opt.max_concurrent = 4;
  conc_opt.max_queue = 64;
  conc_opt.partition_lanes = true;
  const PointResult burst4 = replay(g, burst, conc_opt, 0);
  const double speedup = static_cast<double>(serial.makespan) /
                         static_cast<double>(std::max<Tick>(1, burst4.makespan));
  std::printf("concurrent x4: makespan %llu ticks — %.2fx serial throughput\n",
              static_cast<unsigned long long>(burst4.makespan), speedup);

  // The offered-load sweep: light (2x the solo span between arrivals),
  // saturating (0.5x), and overload (0.125x, small queue so the admission
  // bound actually rejects).
  struct LoadPoint {
    const char* name;
    Tick period;
    std::uint32_t max_queue;
  };
  const LoadPoint points[] = {
      {"light", t_single * 2, 16},
      {"saturating", t_single / 2, 16},
      {"overload", t_single / 24, 2},
  };
  std::vector<PointResult> results;
  for (const LoadPoint& p : points) {
    serve::SchedOptions opt = conc_opt;
    opt.max_queue = p.max_queue;
    results.push_back(replay(g, make_trace(njobs, p.period, 0x5EED), opt, p.period));
    const PointResult& r = results.back();
    std::printf("%-10s period %8llu: p50 %8llu  p99 %8llu  %.2f jobs/Mtick  rejected %llu\n",
                p.name, static_cast<unsigned long long>(p.period),
                static_cast<unsigned long long>(r.p50),
                static_cast<unsigned long long>(r.p99), r.jobs_per_mtick,
                static_cast<unsigned long long>(r.rejected));
  }

  bench::Json j("BENCH_serve_latency.json");
  j.str("bench", "serve_latency");
  j.u64("graph_scale", scale);
  j.u64("jobs", njobs);
  j.str("mix", "pagerank/bfs/pathcount round-robin");
  j.u64("serial_makespan", serial.makespan);
  j.u64("concurrent4_makespan", burst4.makespan);
  j.num("concurrent4_speedup", speedup);
  j.begin_array("load_points");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    j.begin_object();
    j.str("load", points[i].name);
    j.u64("arrival_period", r.period);
    j.u64("p50_latency", r.p50);
    j.u64("p99_latency", r.p99);
    j.u64("mean_latency", r.mean);
    j.num("jobs_per_mtick", r.jobs_per_mtick);
    j.u64("completed", r.completed);
    j.u64("rejected", r.rejected);
    j.end();
  }
  j.end();
  j.close();

  // Latency must degrade monotonically-ish with load: overload p99 above
  // light p99 (a sanity property, enforced always).
  if (results.front().p99 > results.back().p99) {
    std::fprintf(stderr, "FAIL: p99 under overload (%llu) below light load (%llu)\n",
                 static_cast<unsigned long long>(results.back().p99),
                 static_cast<unsigned long long>(results.front().p99));
    return 1;
  }
  // The overload point is sized so the bounded queue actually rejects —
  // a deterministic simulated property, checked regardless of host size.
  if (results.back().rejected == 0) {
    std::fprintf(stderr, "FAIL: overload point rejected nothing — admission bound idle\n");
    return 1;
  }
  if (std::getenv("UD_BENCH_ENFORCE") && std::thread::hardware_concurrency() >= 4) {
    if (speedup < 1.5) {
      std::fprintf(stderr, "FAIL: 4-slot concurrent throughput %.2fx serial (floor 1.5x)\n",
                   speedup);
      return 1;
    }
  }
  return 0;
}
