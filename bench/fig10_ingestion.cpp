// Figure 10 + Table 11: Ingestion (TFORM + KVMSR -> Parallel Graph)
// throughput scaling across machine sizes and dataset multipliers
// ("data 0.01x" ... "data 2x" in the paper).
#include <cstdio>

#include "apps/ingestion.hpp"
#include "bench/bench_util.hpp"
#include "tform/stream_gen.hpp"

using namespace updown;

int main() {
  const auto nodes = bench::node_sweep();
  const std::uint64_t base_records = 2000ull << bench::scale_level();

  struct Mult {
    std::string name;
    double factor;
  };
  const std::vector<Mult> mults = {
      {"data 0.1x", 0.1}, {"data 0.5x", 0.5}, {"data", 1.0}, {"data 2x", 2.0}};

  std::printf("Figure 10 / Table 11 reproduction: ingestion throughput scaling\n");
  std::printf("base dataset: %llu records x 64 B\n", (unsigned long long)base_records);

  std::vector<bench::Series> speedup_cols, rate_cols;
  for (const auto& mult : mults) {
    const std::uint64_t n_records =
        std::max<std::uint64_t>(64, static_cast<std::uint64_t>(base_records * mult.factor));
    tform::RecordStream s = tform::make_stream(n_records, 4096, 6, 11);
    std::vector<Tick> durations;
    bench::Series rate{mult.name, {}};
    for (std::uint32_t n : nodes) {
      Machine m(MachineConfig::scaled(n));
      ingest::App& app = ingest::App::install(m, {});
      ingest::Result r = app.run(s.bytes);
      if (r.records != n_records)
        std::fprintf(stderr, "WARNING: %s lost records at %u nodes\n", mult.name.c_str(), n);
      durations.push_back(r.duration());
      rate.values.push_back(r.records_per_second() / 1e9);  // GigaRecords/s
    }
    speedup_cols.push_back({mult.name, bench::speedups(durations)});
    rate_cols.push_back(rate);
  }

  bench::print_table("Ingestion speedup vs 1 node (Table 11 analog)", "Nodes", nodes,
                     speedup_cols);
  bench::print_table("Ingestion GigaRecords/second (x64 B = TB/s x 0.064)", "Nodes", nodes,
                     rate_cols);
  return 0;
}
