// scale_sweep: the memory-lean engine at paper-scale lane counts.
//
// The paper's machine is 16,384 nodes x 2,048 lanes; reproducing its
// extreme-scaling claims requires the simulator itself to scale. This bench
// demonstrates the two host-side properties that make that possible:
//
//   1. Memory. Lane state is struct-of-arrays with lazily materialized
//      cores (sim/lane.hpp): an idle configured lane costs a few flat words,
//      not a 64 KiB scratchpad + context table. The sweep constructs
//      machines at 512 / 2,048 / 8,192 simulated nodes (32 lanes each),
//      records the resident-set delta and the resident bytes per configured
//      lane, then runs PageRank end-to-end on each. A final section
//      force-materializes every lane of the 512-node machine
//      (LaneTable::materialize_all — the old eager layout) and reports the
//      eager/lazy ratio, which must be >= 10x under UD_BENCH_ENFORCE.
//
//   2. Throughput at scale. Each size runs a shard sweep (1/2/4/8 host
//      shards, plus UD_STEAL and UD_STEAL+UD_PIN rows) recording wall time,
//      events/s, and events/s per shard; every row's simulation fingerprint
//      (final tick, events, messages, charged cycles, rank checksum) must be
//      bit-identical to the serial row — always fatal, not just under
//      enforce.
//
// Writes BENCH_scale_sweep.json. UD_SCALE_MAX_NODES (strict parse, default
// 8192) caps the sweep so CI can smoke-test the 512-node point quickly.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "graph/generators.hpp"

using namespace updown;

namespace {

/// Current resident set in bytes (/proc/self/statm field 2; 0 off-Linux).
std::uint64_t current_rss() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size = 0, resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return resident * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

/// Process-lifetime peak resident set in bytes.
std::uint64_t peak_rss() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

struct Fingerprint {
  Tick done = 0;
  std::uint64_t events = 0, messages = 0, charged = 0, updates = 0;
  bool operator==(const Fingerprint&) const = default;
};

struct ShardRow {
  std::uint32_t shards = 0;
  bool steal = false, pin = false;
  double wall_s = 0;
  std::uint64_t events = 0, windows = 0, rebalances = 0;
  Fingerprint fp;
};

struct SizePoint {
  std::uint32_t nodes = 0;
  std::uint64_t lanes = 0;
  std::uint64_t machine_rss_bytes = 0;   ///< RSS delta of constructing the machine
  std::uint64_t idle_bytes_per_lane = 0; ///< machine_rss_bytes / lanes (upper bound)
  std::uint64_t materialized_after_run = 0;
  std::vector<ShardRow> rows;
};

}  // namespace

int main() {
  // The sweep drives every knob through MachineConfig so an ambient CI
  // environment (UD_SHARDS=4 etc.) cannot skew the matrix.
  for (const char* v : {"UD_SHARDS", "UD_CHECK", "UD_TRACE", "UD_STEAL", "UD_PIN",
                        "UD_STEAL_PERIOD", "UD_COALESCE"})
    ::unsetenv(v);

  const std::uint32_t max_nodes =
      static_cast<std::uint32_t>(env_u64("UD_SCALE_MAX_NODES", 8192, 1u << 20));
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t n : {512u, 2048u, 8192u})
    if (n <= max_nodes) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(max_nodes);

  // One fixed graph for the whole sweep: the workload stays constant while
  // the machine grows, so the large configurations are mostly idle lanes —
  // exactly the regime the lazy layout exists for.
  Graph g = rmat(14, {}, 99);
  SplitGraph sg = split_vertices(g, 64);
  std::printf("scale_sweep: PageRank on RMAT-s14 (m=%llu), machines up to %u nodes\n",
              (unsigned long long)g.num_edges(), sizes.back());

  std::vector<SizePoint> points;
  bool fingerprints_identical = true;

  // --- Phase 1: resident cost of configured-but-idle machines -------------
  // Measured before anything heavy runs: glibc never returns freed arenas
  // to the OS, so once a PageRank run (or the eager demo below) has been
  // resident, later allocations reuse warm pages and RSS deltas read ~0.
  // Ascending sizes, with a throwaway construction first so the measured
  // delta is the machine, not one-time allocator growth.
  for (std::uint32_t n : sizes) {
    SizePoint pt;
    pt.nodes = n;
    { Machine warm(MachineConfig::scaled(n)); }
    const std::uint64_t rss0 = current_rss();
    {
      Machine m(MachineConfig::scaled(n));
      pt.lanes = m.config().total_lanes();
      pt.machine_rss_bytes = current_rss() - rss0;
      pt.idle_bytes_per_lane = pt.machine_rss_bytes / pt.lanes;
    }
    std::printf("  nodes=%-5u lanes=%-7llu idle machine rss %.1f MiB (%llu B/lane)\n", n,
                (unsigned long long)pt.lanes, pt.machine_rss_bytes / 1048576.0,
                (unsigned long long)pt.idle_bytes_per_lane);
    points.push_back(pt);
  }

  // --- Phase 2: eager vs lazy — the memory the SoA refactor saves ---------
  // Still before the throughput runs: the only resident history at this
  // point is the few-MiB idle constructions above, so the eager
  // materialization delta is genuine new memory, not arena reuse.
  const std::uint32_t demo_nodes = sizes.front();
  std::uint64_t lazy_bytes = 0, eager_bytes = 0, demo_lanes = 0;
  {
    { Machine warm(MachineConfig::scaled(demo_nodes)); }
    const std::uint64_t rss0 = current_rss();
    Machine m(MachineConfig::scaled(demo_nodes));
    demo_lanes = m.config().total_lanes();
    lazy_bytes = current_rss() - rss0;
    m.lane_table().materialize_all();
    eager_bytes = current_rss() - rss0;
  }
  // The lazy machine can be smaller than RSS page granularity after the
  // warm-up construction (measured delta 0): floor the denominator at one
  // page so the ratio stays finite and conservative.
  const std::uint64_t lazy_floor =
      std::max<std::uint64_t>(lazy_bytes, static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE)));
  const double eager_ratio = static_cast<double>(eager_bytes) / static_cast<double>(lazy_floor);
  std::printf("eager vs lazy at %u nodes (%llu lanes): %.1f MiB eager, %.1f MiB lazy "
              "(%.1fx)\n",
              demo_nodes, (unsigned long long)demo_lanes, eager_bytes / 1048576.0,
              lazy_bytes / 1048576.0, eager_ratio);

  // --- Phase 3: PageRank throughput across the shard/steal/pin matrix -----
  for (SizePoint& pt : points) {
    const std::uint32_t n = pt.nodes;
    const unsigned iterations = n >= 8192 ? 1 : 2;

    struct Cfg {
      std::uint32_t shards;
      bool steal, pin;
    };
    std::vector<Cfg> cfgs{{1, false, false}, {2, false, false}, {4, false, false},
                          {8, false, false}, {8, true, false},  {8, true, true}};
    for (const Cfg& c : cfgs) {
      MachineConfig cfg = MachineConfig::scaled(n);
      cfg.shards = c.shards;
      cfg.steal = c.steal;
      cfg.pin = c.pin;
      // Aggressive enough that every size rebalances dozens of times, but a
      // migration drains and repushes the whole calendar queue, so at the
      // 262k-lane point a period of 4 would spend most of the wall time
      // migrating.
      cfg.steal_period = 64;
      Machine m(cfg);
      DeviceGraph dg = upload_split_graph(m, sg);
      pr::Options opt;
      opt.iterations = iterations;
      const auto t0 = std::chrono::steady_clock::now();
      pr::Result r = pr::App::install(m, dg, sg, opt).run();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      ShardRow row;
      row.shards = c.shards;
      row.steal = c.steal;
      row.pin = c.pin;
      row.wall_s = wall;
      row.events = m.stats().events_executed;
      row.windows = m.engine_stats().windows;
      row.rebalances = m.engine_stats().rebalances;
      row.fp = {r.done_tick, m.stats().events_executed, m.stats().messages_sent,
                m.stats().charged_cycles, r.edge_updates};
      pt.rows.push_back(row);
      pt.materialized_after_run = m.lane_table().materialized_cores();

      if (!(row.fp == pt.rows.front().fp)) {
        fingerprints_identical = false;
        std::fprintf(stderr,
                     "scale_sweep: FAIL: fingerprint diverged at nodes=%u shards=%u "
                     "steal=%d pin=%d (done %llu vs %llu)\n",
                     n, c.shards, c.steal, c.pin, (unsigned long long)row.fp.done,
                     (unsigned long long)pt.rows.front().fp.done);
      }
      std::printf("  nodes=%-5u shards=%u%s%s  wall %.3fs  %8.0f ev/s (%8.0f /shard)  "
                  "windows=%llu rebalances=%llu done=%llu\n",
                  n, c.shards, c.steal ? " +steal" : "", c.pin ? " +pin" : "", wall,
                  row.events / wall, row.events / wall / c.shards,
                  (unsigned long long)row.windows, (unsigned long long)row.rebalances,
                  (unsigned long long)row.fp.done);
    }
    std::printf("  nodes=%-5u cores touched by run: %llu/%llu\n", n,
                (unsigned long long)pt.materialized_after_run,
                (unsigned long long)pt.lanes);
  }
  std::printf("peak rss over the whole sweep: %.1f MiB\n", peak_rss() / 1048576.0);

  {
    bench::Json json("BENCH_scale_sweep.json");
    json.str("benchmark", "scale_sweep");
    json.str("graph", "RMAT-s14");
    json.u64("graph_edges", g.num_edges());
    json.begin_array("sizes");
    for (const SizePoint& pt : points) {
      json.begin_object();
      json.u64("nodes", pt.nodes);
      json.u64("lanes", pt.lanes);
      json.u64("machine_rss_bytes", pt.machine_rss_bytes);
      json.u64("idle_bytes_per_lane", pt.idle_bytes_per_lane);
      json.u64("materialized_cores_after_run", pt.materialized_after_run);
      json.begin_array("shard_runs");
      for (const ShardRow& r : pt.rows) {
        json.begin_object();
        json.u64("shards", r.shards);
        json.boolean("steal", r.steal);
        json.boolean("pin", r.pin);
        json.num("wall_s", r.wall_s);
        json.u64("events", r.events);
        json.num("events_per_sec", r.wall_s > 0 ? r.events / r.wall_s : 0.0);
        json.num("events_per_sec_per_shard",
                 r.wall_s > 0 ? r.events / r.wall_s / r.shards : 0.0);
        json.u64("windows", r.windows);
        json.u64("rebalances", r.rebalances);
        json.u64("done_tick", r.fp.done);
        json.u64("charged_cycles", r.fp.charged);
        json.end();
      }
      json.end();
      json.end();
    }
    json.end();
    json.begin_object("eager_vs_lazy");
    json.u64("nodes", demo_nodes);
    json.u64("lanes", demo_lanes);
    json.u64("lazy_rss_bytes", lazy_bytes);
    json.u64("eager_rss_bytes", eager_bytes);
    json.num("eager_over_lazy", eager_ratio);
    json.end();
    json.u64("peak_rss_bytes", peak_rss());
    json.boolean("fingerprints_identical", fingerprints_identical);
    if (!json.ok()) {
      std::fprintf(stderr, "scale_sweep: FAIL: could not write BENCH_scale_sweep.json\n");
      return 1;
    }
  }

  if (!fingerprints_identical) return 1;  // always fatal: determinism is the contract

  if (std::getenv("UD_BENCH_ENFORCE")) {
    const SizePoint& big = points.back();
    if (big.idle_bytes_per_lane > 512) {
      std::fprintf(stderr,
                   "scale_sweep: FAIL: idle machine costs %llu B/lane at %u nodes "
                   "(floor 512)\n",
                   (unsigned long long)big.idle_bytes_per_lane, big.nodes);
      return 1;
    }
    if (eager_ratio < 10.0) {
      std::fprintf(stderr,
                   "scale_sweep: FAIL: eager layout only %.1fx the lazy RSS "
                   "(floor 10x)\n",
                   eager_ratio);
      return 1;
    }
  }
  return 0;
}
