// Figure 9 (right) + Table 10: Triangle Counting strong scaling, including
// the Block-vs-PBMW computation-binding comparison the paper discusses
// (Section 4.3.3).
#include <cstdio>

#include "apps/tc.hpp"
#include "baseline/baseline.hpp"
#include "bench/bench_util.hpp"
#include "graph/generators.hpp"

using namespace updown;

int main() {
  const auto nodes = bench::node_sweep();
  const std::uint32_t s = bench::graph_scale(12);

  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"RMAT-s" + std::to_string(s), rmat(s, {.symmetrize = true})});
  cases.push_back({"social-like", forest_fire(1ull << s)});
  cases.push_back({"Erdos-Renyi", erdos_renyi(s, 8, 3, true)});

  std::printf("Figure 9 (right) / Table 10 reproduction: TC strong scaling\n");

  std::vector<bench::Series> speedup_cols;
  for (auto& c : cases) {
    const std::uint64_t expect = baseline::triangle_count(c.graph);
    std::vector<Tick> durations;
    for (std::uint32_t n : nodes) {
      Machine m(MachineConfig::scaled(n));
      DeviceGraph dg = upload_graph(m, c.graph);
      tc::Result r = tc::App::install(m, dg, {}).run();
      if (r.triangles != expect)
        std::fprintf(stderr, "WARNING: %s triangle mismatch at %u nodes\n", c.name.c_str(), n);
      durations.push_back(r.duration());
    }
    speedup_cols.push_back({c.name, bench::speedups(durations)});
    std::printf("  %-14s m=%-9llu triangles=%llu\n", c.name.c_str(),
                (unsigned long long)c.graph.num_edges(), (unsigned long long)expect);
  }
  bench::print_table("TC speedup vs 1 node (Table 10 analog)", "Nodes", nodes, speedup_cols);

  // Ablation: Block vs PBMW map binding (the paper's two TC variants).
  {
    Graph g = rmat(s - 1, {.symmetrize = true}, 5);
    std::vector<bench::Series> binding_cols(2);
    binding_cols[0].name = "Block";
    binding_cols[1].name = "PBMW";
    std::vector<Tick> block_d, pbmw_d;
    for (std::uint32_t n : nodes) {
      for (bool pbmw : {false, true}) {
        Machine m(MachineConfig::scaled(n));
        DeviceGraph dg = upload_graph(m, g);
        tc::Options opt;
        opt.map_binding = pbmw ? kvmsr::MapBinding::kPBMW : kvmsr::MapBinding::kBlock;
        tc::Result r = tc::App::install(m, dg, opt).run();
        (pbmw ? pbmw_d : block_d).push_back(r.duration());
      }
    }
    binding_cols[0].values = bench::speedups(block_d);
    for (Tick t : pbmw_d)  // both columns normalized to 1-node Block
      binding_cols[1].values.push_back(static_cast<double>(block_d.front()) / t);
    bench::print_table("TC map-binding ablation (speedup vs 1-node Block)", "Nodes", nodes,
                       binding_cols);
  }
  return 0;
}
