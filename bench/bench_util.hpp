// Shared harness for the figure/table reproduction binaries.
//
// Every bench prints the same rows/series the paper reports (speedups
// normalized to the 1-node configuration, plus absolute rates). Machine
// sizes and graph scales are reduced to what one host core simulates in
// seconds; set UD_BENCH_SCALE=1|2|3 to enlarge (2 roughly quadruples the
// work, 3 is a long run).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace updown::bench {

inline int scale_level() {
  const char* env = std::getenv("UD_BENCH_SCALE");
  return env ? std::atoi(env) : 1;
}

/// Node counts for strong-scaling sweeps at the current scale level.
inline std::vector<std::uint32_t> node_sweep() {
  switch (scale_level()) {
    case 2:
      return {1, 2, 4, 8, 16, 32};
    case 3:
      return {1, 2, 4, 8, 16, 32, 64};
    default:
      return {1, 2, 4, 8, 16};
  }
}

/// Graph scale (log2 vertices): the base is chosen per app so that per-lane
/// work exceeds the latency floor at the largest default machine; higher
/// UD_BENCH_SCALE levels grow it further.
inline std::uint32_t graph_scale(std::uint32_t base) { return base + (scale_level() - 1); }

struct Series {
  std::string name;
  std::vector<double> values;  ///< indexed like the node sweep
};

inline void print_table(const std::string& title, const std::string& row_label,
                        const std::vector<std::uint32_t>& rows,
                        const std::vector<Series>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-8s", row_label.c_str());
  for (const auto& s : columns) std::printf("  %14s", s.name.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("%-8u", rows[r]);
    for (const auto& s : columns) {
      if (r < s.values.size())
        std::printf("  %14.2f", s.values[r]);
      else
        std::printf("  %14s", "-");
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

inline std::vector<double> speedups(const std::vector<Tick>& durations) {
  std::vector<double> out;
  out.reserve(durations.size());
  for (Tick t : durations)
    out.push_back(durations.empty() || t == 0
                      ? 0.0
                      : static_cast<double>(durations.front()) / static_cast<double>(t));
  return out;
}

}  // namespace updown::bench
