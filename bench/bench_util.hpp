// Shared harness for the figure/table reproduction binaries.
//
// Every bench prints the same rows/series the paper reports (speedups
// normalized to the 1-node configuration, plus absolute rates). Machine
// sizes and graph scales are reduced to what one host core simulates in
// seconds; set UD_BENCH_SCALE=1|2|3 to enlarge (2 roughly quadruples the
// work, 3 is a long run).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace updown::bench {

inline int scale_level() {
  const char* env = std::getenv("UD_BENCH_SCALE");
  return env ? std::atoi(env) : 1;
}

/// Node counts for strong-scaling sweeps at the current scale level.
inline std::vector<std::uint32_t> node_sweep() {
  switch (scale_level()) {
    case 2:
      return {1, 2, 4, 8, 16, 32};
    case 3:
      return {1, 2, 4, 8, 16, 32, 64};
    default:
      return {1, 2, 4, 8, 16};
  }
}

/// Graph scale (log2 vertices): the base is chosen per app so that per-lane
/// work exceeds the latency floor at the largest default machine; higher
/// UD_BENCH_SCALE levels grow it further.
inline std::uint32_t graph_scale(std::uint32_t base) { return base + (scale_level() - 1); }

struct Series {
  std::string name;
  std::vector<double> values;  ///< indexed like the node sweep
};

inline void print_table(const std::string& title, const std::string& row_label,
                        const std::vector<std::uint32_t>& rows,
                        const std::vector<Series>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-8s", row_label.c_str());
  for (const auto& s : columns) std::printf("  %14s", s.name.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("%-8u", rows[r]);
    for (const auto& s : columns) {
      if (r < s.values.size())
        std::printf("  %14.2f", s.values[r]);
      else
        std::printf("  %14s", "-");
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

inline std::vector<double> speedups(const std::vector<Tick>& durations) {
  std::vector<double> out;
  out.reserve(durations.size());
  for (Tick t : durations)
    out.push_back(durations.empty() || t == 0
                      ? 0.0
                      : static_cast<double>(durations.front()) / static_cast<double>(t));
  return out;
}

/// Tiny streaming writer for the BENCH_*.json artifacts (the idiom micro_sim
/// hand-rolled, shared so every bench emits machine-readable results). No
/// escaping or validation: keys and string values are trusted literals from
/// the bench code itself. All calls no-op if the file failed to open; check
/// ok() once and report.
class Json {
 public:
  explicit Json(const std::string& path) : path_(path), f_(std::fopen(path.c_str(), "w")) {
    if (f_) {
      std::fputc('{', f_);
      push('}');
    }
  }
  ~Json() { close(); }
  Json(const Json&) = delete;
  Json& operator=(const Json&) = delete;

  bool ok() const { return f_ != nullptr; }

  void u64(const char* key, std::uint64_t v) {
    item(key);
    if (f_) std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }
  void num(const char* key, double v) {
    item(key);
    if (f_) std::fprintf(f_, "%.6g", v);
  }
  void str(const char* key, const std::string& v) {
    item(key);
    if (f_) std::fprintf(f_, "\"%s\"", v.c_str());
  }
  void boolean(const char* key, bool v) {
    item(key);
    if (f_) std::fputs(v ? "true" : "false", f_);
  }
  void begin_array(const char* key) {
    item(key);
    if (f_) std::fputc('[', f_);
    push(']');
  }
  /// Array elements pass key=nullptr (no name inside an array).
  void begin_object(const char* key = nullptr) {
    item(key);
    if (f_) std::fputc('{', f_);
    push('}');
  }
  void end() {  // close the innermost open array/object
    if (!f_ || closers_.empty()) return;
    std::fprintf(f_, "\n%c", closers_.back());
    closers_.pop_back();
    firsts_.pop_back();
  }
  /// Closes every open scope and the file; prints the artifact name once.
  void close() {
    if (!f_) return;
    while (!closers_.empty()) end();
    std::fputc('\n', f_);
    std::fclose(f_);
    f_ = nullptr;
    std::printf("wrote %s\n", path_.c_str());
  }

 private:
  void push(char closer) {
    closers_.push_back(closer);
    firsts_.push_back(true);
  }
  void item(const char* key) {
    if (!f_) return;
    if (!firsts_.back()) std::fputc(',', f_);
    firsts_.back() = false;
    std::fputc('\n', f_);
    if (key) std::fprintf(f_, "\"%s\": ", key);
  }

  std::string path_;
  std::FILE* f_ = nullptr;
  std::vector<char> closers_;
  std::vector<bool> firsts_;
};

}  // namespace updown::bench
