// Ablations for the design choices DESIGN.md calls out:
//
//  1. Map-task window depth (JobSpec::max_inflight_per_lane): the KVMSR
//     latency-tolerance claim — "enough thread parallelism ... to tolerate
//     latency" — quantified by sweeping the window on a multi-node machine.
//  2. Termination-gather backoff (JobSpec::poll_backoff): without pacing,
//     the master lane saturates itself re-polling.
//  3. Block vs PBMW map binding under *artificial* skew (a key range whose
//     map cost grows with the key): the case PBMW exists for.
//  4. Shuffle coalescing factor (JobSpec::coalesce_tuples): packing emitted
//     tuples into destination-coalesced bulk packets trades per-message
//     overhead against buffer residency; the sweep quantifies message-count
//     reduction, wire bytes, and end-to-end ticks. Written to
//     BENCH_kvmsr_coalesce.json for CI's bench smoke.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "kvmsr/kvmsr.hpp"

using namespace updown;
using namespace updown::kvmsr;

namespace {

struct AblApp {
  JobId job = 0;
  Addr cells = 0;
  std::uint64_t n = 0;
  bool skewed = false;
  std::uint64_t reduce_cost = 3;
  EventLabel loaded_label = 0;
  EventLabel r_loaded_label = 0;
};

struct AblMap : MapTask {
  JobId job = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<AblApp>();
    job = Library::map_job(ctx);
    const Word k = Library::map_key(ctx);
    // Skew: the last keys cost ~64x the first ones (triangle-shaped work).
    if (app.skewed) ctx.charge(1 + 64 * k / app.n);
    ctx.send_dram_read(app.cells + (k % app.n) * 8, 1, app.loaded_label);
  }

  void loaded(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    ctx.charge(2);
    lib.emit(ctx, job, ctx.op(0), 1);
    lib.map_return(ctx, kvmsr_cont);
  }
};

// Two-event reduce (read then combine), like TC's streaming reducers: the
// lane is idle-but-pending between the events, so termination polls do NOT
// queue behind the work — this is the regime where gather pacing matters.
struct AblReduce : ThreadState {
  JobId job = 0;

  void kv_reduce(Ctx& ctx) {
    auto& app = ctx.machine().user<AblApp>();
    job = Library::reduce_job(ctx);
    ctx.send_dram_read(app.cells + (Library::reduce_key(ctx) % app.n) * 8, 1,
                       app.r_loaded_label);
  }

  void r_loaded(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    ctx.charge(ctx.machine().user<AblApp>().reduce_cost);
    lib.reduce_return(ctx, job);
  }
};

struct RunStats {
  Tick ticks = 0;
  std::uint32_t poll_rounds = 0;
  Tick master_busy = 0;
  ShuffleStats shuffle;
};

RunStats run_once(std::uint32_t window, Tick backoff, MapBinding binding, bool skewed,
                  std::uint64_t reduce_cost = 3, std::uint32_t coalesce = 1,
                  std::uint64_t n = 40000) {
  Machine m(MachineConfig::scaled(8));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<AblApp>();
  app.n = n;
  app.skewed = skewed;
  app.reduce_cost = reduce_cost;
  app.cells = m.memory().dram_malloc_spread(app.n * 8);
  for (std::uint64_t i = 0; i < app.n; ++i)
    m.memory().host_store<Word>(app.cells + i * 8, i * 2654435761u % app.n);

  JobSpec spec;
  spec.kv_map = m.program().event("abl::kv_map", &AblMap::kv_map);
  app.loaded_label = m.program().event("abl::loaded", &AblMap::loaded);
  spec.kv_reduce = m.program().event("abl::kv_reduce", &AblReduce::kv_reduce);
  app.r_loaded_label = m.program().event("abl::r_loaded", &AblReduce::r_loaded);
  spec.max_inflight_per_lane = window;
  spec.poll_backoff = backoff;
  spec.map_binding = binding;
  spec.coalesce_tuples = coalesce;
  app.job = lib.add_job(spec);
  const JobState& st = lib.run_to_completion(app.job, 0, app.n);
  return {st.done_tick - st.start_tick, st.poll_rounds, m.lane_stats()[0].busy_cycles,
          m.stats().shuffle};
}

}  // namespace

int main() {
  std::printf("KVMSR design ablations (8-node machine, 40k keys with one remote read each)\n");

  std::printf("\n--- map window depth (latency tolerance) ---\n");
  std::printf("%-8s %12s %10s\n", "window", "ticks", "speedup");
  Tick base = 0;
  for (std::uint32_t w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const Tick t = run_once(w, 4096, MapBinding::kBlock, false).ticks;
    if (!base) base = t;
    std::printf("%-8u %12llu %10.2f\n", w, (unsigned long long)t,
                static_cast<double>(base) / t);
  }

  // The backoff does not change end-to-end time when polling overlaps the
  // reduce drain; what it buys is master-lane headroom (the TC regression
  // that motivated it had application reduces sharing the master's lane).
  std::printf("\n--- termination-gather backoff (reduce-heavy drain) ---\n");
  std::printf("%-8s %12s %8s %14s\n", "backoff", "ticks", "rounds", "master busy");
  for (Tick b : {Tick{0}, Tick{256}, Tick{1024}, Tick{4096}, Tick{16384}}) {
    const RunStats r = run_once(64, b, MapBinding::kBlock, false, /*reduce_cost=*/300);
    std::printf("%-8llu %12llu %8u %14llu\n", (unsigned long long)b,
                (unsigned long long)r.ticks, r.poll_rounds,
                (unsigned long long)r.master_busy);
  }

  std::printf("\n--- Block vs PBMW under triangle-shaped key skew ---\n");
  std::printf("%-8s %12s %12s\n", "", "Block", "PBMW");
  const Tick tb = run_once(64, 4096, MapBinding::kBlock, true).ticks;
  const Tick tp = run_once(64, 4096, MapBinding::kPBMW, true).ticks;
  std::printf("%-8s %12llu %12llu   (PBMW %+0.1f%%)\n", "skewed", (unsigned long long)tb,
              (unsigned long long)tp, 100.0 * (static_cast<double>(tb) / tp - 1.0));

  // Shuffle coalescing: the job has no combiner (the hashed keys are
  // effectively unique per lane), so this isolates pure destination packing —
  // message count, wire bytes, and the latency cost/benefit of buffer
  // residency. 400k keys so each of the 256 source lanes has several tuples
  // per destination buffer (the 40k sweeps above would leave <1).
  std::printf("\n--- shuffle coalescing factor (spec.coalesce_tuples) ---\n");
  std::printf("%-10s %12s %10s %12s %12s %14s %8s\n", "coalesce", "ticks", "speedup",
              "msgs", "cross-node", "bytes", "factor");
  bench::Json json("BENCH_kvmsr_coalesce.json");
  json.str("benchmark", "ablation_kvmsr");
  json.str("workload",
           "8-node machine, 400k uniform keys, one remote read per map, no combiner");
  json.begin_array("coalesce_sweep");
  Tick cbase = 0;
  RunStats at1, at16;
  for (std::uint32_t c : {1u, 4u, 16u, 64u}) {
    const RunStats r =
        run_once(64, 4096, MapBinding::kBlock, false, 3, c, /*n=*/400000);
    if (!cbase) cbase = r.ticks;
    if (c == 1) at1 = r;
    if (c == 16) at16 = r;
    std::printf("%-10u %12llu %10.2f %12llu %12llu %14llu %8.2f\n", c,
                (unsigned long long)r.ticks, static_cast<double>(cbase) / r.ticks,
                (unsigned long long)r.shuffle.messages,
                (unsigned long long)r.shuffle.cross_node_messages,
                (unsigned long long)r.shuffle.bytes, r.shuffle.coalescing_factor());
    json.begin_object();
    json.u64("coalesce_tuples", c);
    json.u64("ticks", r.ticks);
    json.u64("shuffle_messages", r.shuffle.messages);
    json.u64("shuffle_cross_node_messages", r.shuffle.cross_node_messages);
    json.u64("shuffle_bytes", r.shuffle.bytes);
    json.u64("tuples_emitted", r.shuffle.tuples_emitted);
    json.u64("tuples_combined", r.shuffle.tuples_combined);
    json.u64("coalesced_packets", r.shuffle.coalesced_packets);
    json.num("coalescing_factor", r.shuffle.coalescing_factor());
    json.end();
  }
  json.end();
  json.close();
  if (std::getenv("UD_BENCH_ENFORCE")) {
    // The uniform-key workload spreads each lane's tuples over every
    // destination, so the floor here is a modest 2x (the >=4x density claim
    // is enforced on PageRank's edge traffic in fig9_pagerank).
    if (at16.shuffle.messages * 2 > at1.shuffle.messages) {
      std::fprintf(stderr,
                   "ablation_kvmsr: FAIL: coalesce=16 sent %llu shuffle messages, "
                   "not under half of the %llu uncoalesced ones\n",
                   (unsigned long long)at16.shuffle.messages,
                   (unsigned long long)at1.shuffle.messages);
      return 1;
    }
  }
  return 0;
}
