// Host-side microbenchmarks (google-benchmark): how fast the simulator
// itself runs. These are the knobs that determine how large a machine and
// dataset one host core can simulate — the Fastsim-vs-Gem5 tradeoff of the
// paper's methodology section.
//
// Besides the google-benchmark timings, the binary always runs a fixed
// million-event mixed workload (message chains + DRAM round trips across an
// 8-node machine), reports simulated events per wall-clock second, and writes
// the result to BENCH_micro_sim.json so the event-engine throughput trend is
// tracked PR over PR.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "kvmsr/kvmsr.hpp"
#include "mem/global_memory.hpp"
#include "sim/event_queue.hpp"
#include "udweave/context.hpp"

using namespace updown;

static void BM_Translation(benchmark::State& state) {
  GlobalMemory gm(64);
  const Addr base = gm.dram_malloc(64ull << 20, 0, 64, 32 * 1024);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const Addr a = base + (rng() % (64ull << 20)) / 8 * 8;
    benchmark::DoNotOptimize(gm.translate(a));
  }
}
BENCHMARK(BM_Translation);

static void BM_Hash64(benchmark::State& state) {
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = hash64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Hash64);

/// Raw push/pop throughput of the calendar queue against the event-time
/// distribution the machine produces (mostly near-future, occasional far).
static void BM_CalendarQueue(benchmark::State& state) {
  for (auto _ : state) {
    CalendarEventQueue q;
    Xoshiro256 rng(7);
    std::uint32_t seq = 0;
    Tick now = 0;
    for (int warm = 0; warm < 256; ++warm)
      q.push(QEntry{now + 2 + rng() % 1000, 0, seq++, 0, 0});
    for (int i = 0; i < 100000; ++i) {
      const QEntry e = q.pop();
      now = e.t;
      const Tick ahead = (rng() % 64 == 0) ? 20000 + rng() % 80000 : 2 + rng() % 1000;
      q.push(QEntry{now + ahead, 0, seq++, 0, 0});
    }
    benchmark::DoNotOptimize(q.size());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_CalendarQueue)->Unit(benchmark::kMillisecond);

namespace {
struct PingApp {
  EventLabel ping = 0;
};
struct TPing : ThreadState {
  void ping(Ctx& ctx) {
    auto& app = ctx.machine().user<PingApp>();
    if (ctx.op(0) > 0)
      ctx.send_event(ctx.evw_new((ctx.nwid() + 1) % ctx.machine().config().total_lanes(),
                                 app.ping),
                     {ctx.op(0) - 1});
    ctx.yield_terminate();
  }
};
}  // namespace

/// Simulated-events-per-second of the discrete-event core (message chain).
static void BM_EventChain(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Machine m(MachineConfig::scaled(4));
    auto& app = m.emplace_user<PingApp>();
    app.ping = m.program().event("TPing::ping", &TPing::ping);
    state.ResumeTiming();
    m.send_from_host(evw::make_new(0, app.ping), {10000});
    m.run();
    benchmark::DoNotOptimize(m.stats().events_executed);
  }
  state.SetItemsProcessed(state.iterations() * 10001);
}
BENCHMARK(BM_EventChain)->Unit(benchmark::kMillisecond);

static void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Graph g = rmat(static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// The million-event throughput workload: 64 message chains striding across an
// 8-node machine (cross-accelerator and cross-node hops) interleaved with 32
// DRAM-read chains (request + reply per hop). Deterministic; ~1.02M events.
// ---------------------------------------------------------------------------
namespace {
struct ChainApp {
  EventLabel hop = 0;
  EventLabel dram_hop = 0;
  EventLabel dram_ret = 0;
  Addr buf = 0;
};
struct TChain : ThreadState {
  void hop(Ctx& ctx) {
    auto& app = ctx.machine().user<ChainApp>();
    const Word remaining = ctx.op(0);
    const Word stride = ctx.op(1);
    if (remaining > 0) {
      const NetworkId dst = static_cast<NetworkId>(
          (ctx.nwid() + stride) % ctx.machine().config().total_lanes());
      ctx.send_event(ctx.evw_new(dst, app.hop), {remaining - 1, stride});
    }
    ctx.yield_terminate();
  }
};
struct TDramChain : ThreadState {
  Word remaining = 0;
  Word stride = 0;
  void start(Ctx& ctx) {
    auto& app = ctx.machine().user<ChainApp>();
    remaining = ctx.op(0);
    stride = ctx.op(1);
    ctx.send_dram_read(app.buf + (ctx.nwid() % 512) * 64, 8, app.dram_ret);
  }
  void ret(Ctx& ctx) {
    auto& app = ctx.machine().user<ChainApp>();
    if (remaining > 0) {
      const NetworkId dst = static_cast<NetworkId>(
          (ctx.nwid() + stride) % ctx.machine().config().total_lanes());
      ctx.send_event(ctx.evw_new(dst, app.dram_hop), {remaining - 1, stride});
    }
    ctx.yield_terminate();
  }
};

struct ThroughputResult {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t dram_accesses = 0;
  Tick final_tick = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  EngineStats engine;
  std::uint64_t max_queue_depth = 0;
  bool checker_enabled = false;
  std::uint64_t shadow_peak_bytes = 0;  ///< udcheck shadow-memory high-water mark
};

ThroughputResult run_throughput_workload(bool check = false, std::uint32_t shards = 1) {
  MachineConfig cfg = MachineConfig::scaled(8);
  cfg.check = check;
  cfg.shards = shards;  // note: a UD_SHARDS env var would override this
  Machine m(cfg);
  auto& app = m.emplace_user<ChainApp>();
  app.hop = m.program().event("TChain::hop", &TChain::hop);
  app.dram_hop = m.program().event("TDramChain::start", &TDramChain::start);
  app.dram_ret = m.program().event("TDramChain::ret", &TDramChain::ret);
  app.buf = m.memory().dram_malloc_spread(1ull << 20);

  const unsigned kChains = 64;
  const Word kHops = 14000;
  const unsigned kDramChains = 32;
  const Word kDramHops = 2000;

  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < kChains; ++c)
    m.send_from_host(evw::make_new(c % m.config().total_lanes(), app.hop),
                     {kHops, 2 * c + 1});
  for (unsigned c = 0; c < kDramChains; ++c)
    m.send_from_host(evw::make_new((c * 7) % m.config().total_lanes(), app.dram_hop),
                     {kDramHops, 2 * c + 5});
  m.run();
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputResult r;
  r.events = m.stats().events_executed;
  r.messages = m.stats().messages_sent;
  r.dram_accesses = m.stats().dram_reads + m.stats().dram_writes;
  r.final_tick = m.now();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = r.wall_seconds > 0 ? r.events / r.wall_seconds : 0.0;
  r.engine = m.engine_stats();
  r.max_queue_depth = m.stats().max_queue_depth;
  r.checker_enabled = m.stats().check.enabled;  // env UD_CHECK=1 can force it on
  r.shadow_peak_bytes = m.stats().check.shadow_peak_bytes;
  return r;
}

/// Checker-off throughput recorded when the udcheck hook sites landed (each
/// hook is one null test on the disabled path). The guard below asserts the
/// disabled-checker path stays within 2% of this on comparable hardware;
/// absolute events/s varies across machines, so the hard failure is opt-in
/// via UD_BENCH_ENFORCE=1 (set it when running on the reference box).
/// UD_BENCH_ENFORCE=ratios enforces only the box-independent gates below
/// (checker-cost ceiling, shard-speedup floor) — that is what CI sets.
constexpr double kBaselineEventsPerSec = 11018594.0;
constexpr double kMaxCheckerOffRegressPct = 2.0;
/// Ceiling on the serial checker's throughput cost. The epoch/flat-shadow
/// rewrite brought it down from ~75% (sparse vector clocks + hashed shadow
/// maps); the gate keeps it from creeping back up.
constexpr double kMaxCheckerCostPct = 40.0;

int throughput_report() {
  // Best of five: wall-clock noise rejection, standard for host-side timing.
  const int kReps = 5;
  ThroughputResult best;
  for (int i = 0; i < kReps; ++i) {
    ThroughputResult r = run_throughput_workload();
    if (r.events_per_sec > best.events_per_sec) best = r;
  }
  // Checked-mode throughput: the same workload under UD_CHECK, serial and at
  // 4 shards (the sharded path defers checking to a window-boundary replay on
  // shard 0, so its cost profile is distinct from the inline serial path).
  // Same rep count as the unchecked baseline: an asymmetric best-of biases
  // the cost ratio upward on a noisy box (more chances to catch a fast
  // baseline run than a fast checked run).
  ThroughputResult checked, checked4;
  for (int i = 0; i < kReps; ++i) {
    ThroughputResult r = run_throughput_workload(/*check=*/true);
    if (r.events_per_sec > checked.events_per_sec) checked = r;
  }
  for (int i = 0; i < kReps; ++i) {
    ThroughputResult r = run_throughput_workload(/*check=*/true, /*shards=*/4);
    if (r.events_per_sec > checked4.events_per_sec) checked4 = r;
  }

  // Shard sweep: the same workload on 1/2/4/8 host threads. The event engine
  // guarantees bit-identical schedules for any shard count, so the simulated
  // counters must match the serial run exactly — enforced here, every run.
  const std::uint32_t kSweep[] = {1, 2, 4, 8};
  ThroughputResult sweep[4];
  bool sweep_counts_ok = true;
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 3; ++i) {
      ThroughputResult r = run_throughput_workload(/*check=*/false, kSweep[s]);
      if (r.events_per_sec > sweep[s].events_per_sec) sweep[s] = r;
    }
    if (sweep[s].events != best.events || sweep[s].messages != best.messages ||
        sweep[s].dram_accesses != best.dram_accesses ||
        sweep[s].final_tick != best.final_tick) {
      sweep_counts_ok = false;
      std::fprintf(stderr,
                   "micro_sim: FAIL: shards=%u diverged from serial: events %llu vs "
                   "%llu, messages %llu vs %llu, final tick %llu vs %llu\n",
                   kSweep[s], (unsigned long long)sweep[s].events,
                   (unsigned long long)best.events, (unsigned long long)sweep[s].messages,
                   (unsigned long long)best.messages,
                   (unsigned long long)sweep[s].final_tick,
                   (unsigned long long)best.final_tick);
    }
  }
  const double speedup4 = sweep[0].events_per_sec > 0
                              ? sweep[2].events_per_sec / sweep[0].events_per_sec
                              : 0.0;

  // Checked runs must reproduce the unchecked schedule exactly, at any shard
  // count: checking observes, it never perturbs.
  bool checked_counts_ok = true;
  for (const ThroughputResult* c : {&checked, &checked4}) {
    if (c->events != best.events || c->messages != best.messages ||
        c->dram_accesses != best.dram_accesses || c->final_tick != best.final_tick) {
      checked_counts_ok = false;
      std::fprintf(stderr,
                   "micro_sim: FAIL: checked run diverged from unchecked: events %llu "
                   "vs %llu, final tick %llu vs %llu\n",
                   (unsigned long long)c->events, (unsigned long long)best.events,
                   (unsigned long long)c->final_tick,
                   (unsigned long long)best.final_tick);
    }
  }

  const double vs_baseline_pct =
      (kBaselineEventsPerSec - best.events_per_sec) / kBaselineEventsPerSec * 100.0;
  const double checker_cost_pct =
      best.events_per_sec > 0
          ? (best.events_per_sec - checked.events_per_sec) / best.events_per_sec * 100.0
          : 0.0;
  // Cost of checking at 4 shards, against the unchecked 4-shard run (both
  // sides use the same engine configuration, so this isolates the checker).
  const double checker_cost_pct_4shards =
      sweep[2].events_per_sec > 0
          ? (sweep[2].events_per_sec - checked4.events_per_sec) /
                sweep[2].events_per_sec * 100.0
          : 0.0;

  std::printf("\n=== micro_sim host throughput ===\n");
  std::printf("simulated events      %llu\n", (unsigned long long)best.events);
  std::printf("wall seconds (best/%d) %.4f\n", kReps, best.wall_seconds);
  std::printf("events / second       %.0f%s\n", best.events_per_sec,
              best.checker_enabled ? "  (UD_CHECK forced on: not a baseline)" : "");
  std::printf("events / second (UD_CHECK=1) %.0f  (checker cost %.1f%%)\n",
              checked.events_per_sec, checker_cost_pct);
  std::printf("events / second (UD_CHECK=1, 4 shards) %.0f  (checker cost %.1f%%)\n",
              checked4.events_per_sec, checker_cost_pct_4shards);
  std::printf("shadow peak bytes     %llu\n",
              (unsigned long long)checked.shadow_peak_bytes);
  std::printf("vs PR-1 baseline      %+.2f%% (baseline %.0f ev/s, limit %.1f%%)\n",
              -vs_baseline_pct, kBaselineEventsPerSec, kMaxCheckerOffRegressPct);
  std::printf("final simulated tick  %llu\n", (unsigned long long)best.final_tick);
  std::printf("max queue depth       %llu\n", (unsigned long long)best.max_queue_depth);
  std::printf("far-heap events       %llu\n", (unsigned long long)best.engine.far_events);
  std::printf("shard sweep (UD_SHARDS) ");
  for (int s = 0; s < 4; ++s)
    std::printf("%u:%.0f%s", kSweep[s], sweep[s].events_per_sec, s < 3 ? "  " : "\n");
  std::printf("speedup at 4 shards   %.2fx (windows %llu, mailbox events %llu)\n",
              speedup4, (unsigned long long)sweep[2].engine.windows,
              (unsigned long long)sweep[2].engine.mailbox_messages);

  FILE* f = std::fopen("BENCH_micro_sim.json", "w");
  if (!f) {
    std::fprintf(stderr, "micro_sim: cannot write BENCH_micro_sim.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"micro_sim\",\n"
               "  \"workload\": \"64 message chains x 14000 hops + 32 dram chains x 2000 round trips, 8-node machine\",\n"
               "  \"repetitions\": %d,\n"
               "  \"events\": %llu,\n"
               "  \"messages\": %llu,\n"
               "  \"dram_accesses\": %llu,\n"
               "  \"final_tick\": %llu,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"events_per_sec_checked\": %.0f,\n"
               "  \"checker_cost_pct\": %.2f,\n"
               "  \"events_per_sec_checked_4shards\": %.0f,\n"
               "  \"checker_cost_pct_4shards\": %.2f,\n"
               "  \"shadow_peak_bytes\": %llu,\n"
               "  \"baseline_events_per_sec\": %.0f,\n"
               "  \"vs_baseline_regress_pct\": %.2f,\n"
               "  \"max_queue_depth\": %llu,\n"
               "  \"engine\": {\n"
               "    \"far_events\": %llu,\n"
               "    \"bucket_sorts\": %llu,\n"
               "    \"msg_pool_capacity\": %u,\n"
               "    \"dram_pool_capacity\": %u\n"
               "  },\n"
               "  \"shard_sweep\": [\n",
               kReps, (unsigned long long)best.events, (unsigned long long)best.messages,
               (unsigned long long)best.dram_accesses, (unsigned long long)best.final_tick,
               best.wall_seconds, best.events_per_sec, checked.events_per_sec,
               checker_cost_pct, checked4.events_per_sec, checker_cost_pct_4shards,
               (unsigned long long)checked.shadow_peak_bytes,
               kBaselineEventsPerSec, vs_baseline_pct,
               (unsigned long long)best.max_queue_depth,
               (unsigned long long)best.engine.far_events,
               (unsigned long long)best.engine.bucket_sorts, best.engine.msg_pool_capacity,
               best.engine.dram_pool_capacity);
  for (int s = 0; s < 4; ++s)
    std::fprintf(f,
                 "    {\"shards\": %u, \"events_per_sec\": %.0f, \"windows\": %llu, "
                 "\"mailbox_events\": %llu}%s\n",
                 kSweep[s], sweep[s].events_per_sec,
                 (unsigned long long)sweep[s].engine.windows,
                 (unsigned long long)sweep[s].engine.mailbox_messages,
                 s < 3 ? "," : "");
  std::fprintf(f,
               "  ],\n"
               "  \"speedup_4_shards\": %.3f,\n"
               "  \"shard_counts_identical\": %s,\n"
               "  \"checked_counts_identical\": %s\n"
               "}\n",
               speedup4, sweep_counts_ok ? "true" : "false",
               checked_counts_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_micro_sim.json\n");

  if (!sweep_counts_ok) return 1;    // sharded schedule diverged: always fatal
  if (!checked_counts_ok) return 1;  // checking perturbed the run: always fatal
  // The throughput floors only bind trace-off runs: UD_TRACE adds real
  // per-event bookkeeping by design, so a traced run is never a baseline.
  // (CI's udtrace smoke job runs with UD_TRACE set and must not trip them.)
  const char* trace_env = std::getenv("UD_TRACE");
  const bool tracing = trace_env && *trace_env;
  // Two enforcement tiers: "ratios" binds only box-independent checks (the
  // checker-cost ceiling and the shard-speedup floor), anything else binds
  // the absolute events/s floor too. The absolute floor compares against the
  // reference box and trips on any slower machine, so CI runners use
  // UD_BENCH_ENFORCE=ratios.
  const char* enforce_env = std::getenv("UD_BENCH_ENFORCE");
  const bool enforce_ratios = enforce_env != nullptr;
  const bool enforce_absolute =
      enforce_env != nullptr && std::string(enforce_env) != "ratios";
  if (tracing && enforce_ratios)
    std::printf("UD_TRACE is set: skipping UD_BENCH_ENFORCE throughput floors "
                "(trace-on runs are not baselines)\n");
  if (!tracing && enforce_absolute && !best.checker_enabled &&
      vs_baseline_pct > kMaxCheckerOffRegressPct) {
    std::fprintf(stderr,
                 "micro_sim: FAIL: checker-off throughput %.0f ev/s is %.2f%% below "
                 "the PR-1 baseline %.0f (limit %.1f%%)\n",
                 best.events_per_sec, vs_baseline_pct, kBaselineEventsPerSec,
                 kMaxCheckerOffRegressPct);
    return 1;
  }
  if (!tracing && enforce_ratios && !best.checker_enabled &&
      std::thread::hardware_concurrency() >= 4 && speedup4 < 1.5) {
    std::fprintf(stderr,
                 "micro_sim: FAIL: 4-shard speedup %.2fx is below the 1.5x floor\n",
                 speedup4);
    return 1;
  }
  if (!tracing && enforce_ratios && !best.checker_enabled &&
      checker_cost_pct > kMaxCheckerCostPct) {
    std::fprintf(stderr,
                 "micro_sim: FAIL: checker cost %.1f%% exceeds the %.0f%% ceiling "
                 "(%.0f ev/s unchecked vs %.0f ev/s checked)\n",
                 checker_cost_pct, kMaxCheckerCostPct, best.events_per_sec,
                 checked.events_per_sec);
    return 1;
  }
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return throughput_report();
}
