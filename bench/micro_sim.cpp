// Host-side microbenchmarks (google-benchmark): how fast the simulator
// itself runs. These are the knobs that determine how large a machine and
// dataset one host core can simulate — the Fastsim-vs-Gem5 tradeoff of the
// paper's methodology section.
#include <benchmark/benchmark.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "kvmsr/kvmsr.hpp"
#include "mem/global_memory.hpp"
#include "udweave/context.hpp"

using namespace updown;

static void BM_Translation(benchmark::State& state) {
  GlobalMemory gm(64);
  const Addr base = gm.dram_malloc(64ull << 20, 0, 64, 32 * 1024);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const Addr a = base + (rng() % (64ull << 20)) / 8 * 8;
    benchmark::DoNotOptimize(gm.translate(a));
  }
}
BENCHMARK(BM_Translation);

static void BM_Hash64(benchmark::State& state) {
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = hash64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Hash64);

namespace {
struct PingApp {
  EventLabel ping = 0;
};
struct TPing : ThreadState {
  void ping(Ctx& ctx) {
    auto& app = ctx.machine().user<PingApp>();
    if (ctx.op(0) > 0)
      ctx.send_event(ctx.evw_new((ctx.nwid() + 1) % ctx.machine().config().total_lanes(),
                                 app.ping),
                     {ctx.op(0) - 1});
    ctx.yield_terminate();
  }
};
}  // namespace

/// Simulated-events-per-second of the discrete-event core (message chain).
static void BM_EventChain(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Machine m(MachineConfig::scaled(4));
    auto& app = m.emplace_user<PingApp>();
    app.ping = m.program().event("TPing::ping", &TPing::ping);
    state.ResumeTiming();
    m.send_from_host(evw::make_new(0, app.ping), {10000});
    m.run();
    benchmark::DoNotOptimize(m.stats().events_executed);
  }
  state.SetItemsProcessed(state.iterations() * 10001);
}
BENCHMARK(BM_EventChain)->Unit(benchmark::kMillisecond);

static void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Graph g = rmat(static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
