// BFS application driver, mirroring the artifact's Listing 11:
//   ./bfs_udweave <graph_prefix> <lanes> <lanes_per_accel> <root_vid> [mem]
//
// <graph_prefix> names a tsv-produced binary pair; <lanes> selects the
// machine size (node count = lanes / (accels * lanes_per_accel)); <mem>
// sweeps the frontier's memory nodes (Figure 12).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/bfs.hpp"
#include "graph/io.hpp"

using namespace updown;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: %s <graph_prefix> <lanes> <lanes_per_accel> <root_vid> [mem]\n",
                 argv[0]);
    return 2;
  }
  const std::string prefix = argv[1];
  const auto lanes = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const auto lpa = static_cast<std::uint32_t>(std::atoi(argv[3]));
  const auto root = static_cast<VertexId>(std::strtoull(argv[4], nullptr, 10));

  const std::uint32_t accels = 4;
  const std::uint32_t lanes_per_node = accels * lpa;
  if (lanes % lanes_per_node != 0) {
    std::fprintf(stderr, "%s: lanes must be a multiple of %u\n", argv[0], lanes_per_node);
    return 2;
  }
  const std::uint32_t nodes = lanes / lanes_per_node;
  const auto mem = static_cast<std::uint32_t>(argc > 5 ? std::atoi(argv[5]) : nodes);

  Graph g = read_binary(prefix);
  Machine m(MachineConfig::scaled(nodes, accels, lpa));
  DeviceGraph dg = upload_graph(m, g);
  bfs::Options opt;
  opt.root = root;
  opt.frontier_mem_nodes = mem;
  bfs::Result r = bfs::App::install(m, dg, opt).run();

  std::printf("[UDSIM] %llu: [main_master__init] BFS Start\n",
              (unsigned long long)r.start_tick);
  std::printf("[UDSIM] %llu: [main_master__reduce_launcher_done] BFS finish\n",
              (unsigned long long)r.done_tick);
  std::printf("simulated time: %.6f s | %llu rounds | traversed edges %llu | %.2f GTEPS\n",
              r.seconds(), (unsigned long long)r.rounds,
              (unsigned long long)r.traversed_edges, r.gteps());
  return 0;
}
