// Preprocessing tool for PageRank (and BFS), mirroring the artifact's
// Listing 6:
//   ./split_and_shuffle -f <raw_graph_file> -m <max_degree> [-d] [-s] [-l offset]
//
// Converts a plain-text edge list to neighbor-list format, splits high-degree
// vertices (bounding both out- and in-degree; see graph/split.hpp), shuffles
// sub-vertices, and writes binary files with the artifact's naming:
//   <file>_shuffle_max_deg_<m>_gv.bin / _nl.bin / _meta.bin
// and, with -s, a <file>_m<m>_stats.txt summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/io.hpp"
#include "graph/split.hpp"
#include "graph/split_io.hpp"

using namespace updown;

int main(int argc, char** argv) {
  std::string file;
  std::uint64_t max_degree = 512;  // the paper's PR setting
  bool directed = false, stats = false;
  std::uint64_t skip_lines = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-f" && i + 1 < argc)
      file = argv[++i];
    else if (a == "-m" && i + 1 < argc)
      max_degree = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "-d")
      directed = true;
    else if (a == "-s")
      stats = true;
    else if (a == "-l" && i + 1 < argc)
      skip_lines = std::strtoull(argv[++i], nullptr, 10);
    else {
      std::fprintf(stderr, "usage: %s -f <graph.txt> -m <max_degree> [-d] [-s] [-l offset]\n",
                   argv[0]);
      return 2;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "%s: -f <raw_graph_file> is required\n", argv[0]);
    return 2;
  }

  // "-d indicates that the graph to be split is a directed graph. Without
  // specification, we assume the input is undirected and will create an edge
  // in both directions during the conversion."
  Graph g = read_edge_list(file, skip_lines, /*symmetrize=*/!directed);
  SplitGraph sg = split_vertices(g, max_degree);

  const std::string prefix = file + "_shuffle_max_deg_" + std::to_string(max_degree);
  write_split_binary(sg, prefix);
  std::printf("wrote %s_gv.bin / _nl.bin / _meta.bin\n", prefix.c_str());

  if (stats) {
    const std::string summary = split_stats(g, sg);
    std::fputs(summary.c_str(), stdout);
    std::ofstream sf(file + "_m" + std::to_string(max_degree) + "_stats.txt");
    sf << summary;
  }
  return 0;
}
