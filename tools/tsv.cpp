// TC preprocessing tool, mirroring the artifact's Listing 9:
//   ./tsv <input.txt> <out_prefix>
// "these textual graph files must be preprocessed to eliminate duplicate
// edges and to sort entries by the source vertex ID", producing *_gv.bin
// (vertex array) and *_nl.bin (neighbor lists).
#include <cstdio>
#include <string>

#include "graph/io.hpp"

using namespace updown;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <input_edge_list.txt> <output_prefix>\n", argv[0]);
    return 2;
  }
  // Graph::from_edges performs the dedup + sort; TC expects symmetric input.
  Graph g = read_edge_list(argv[1], 0, /*symmetrize=*/true);
  write_binary(g, argv[2]);
  std::printf("wrote %s_gv.bin and %s_nl.bin: %llu vertices, %llu edges\n", argv[2], argv[2],
              (unsigned long long)g.num_vertices(), (unsigned long long)g.num_edges());
  return 0;
}
