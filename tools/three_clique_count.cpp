// Triangle-count application driver, mirroring the artifact's Listing 12:
//   ./three_clique_count <gv/nl prefix> <lanes> [pbmw=0]
//
// <prefix> names a tsv-produced binary pair (symmetric, sorted adjacency).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/tc.hpp"
#include "graph/io.hpp"

using namespace updown;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <graph_prefix> <lanes> [pbmw=0]\n", argv[0]);
    return 2;
  }
  const std::string prefix = argv[1];
  const auto lanes = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const bool pbmw = argc > 3 && std::atoi(argv[3]) != 0;

  const std::uint32_t lanes_per_node = MachineConfig{}.lanes_per_node();
  if (lanes % lanes_per_node != 0) {
    std::fprintf(stderr, "%s: lanes must be a multiple of %u\n", argv[0], lanes_per_node);
    return 2;
  }
  Graph g = read_binary(prefix);
  Machine m(MachineConfig::scaled(lanes / lanes_per_node));
  DeviceGraph dg = upload_graph(m, g);
  tc::Options opt;
  opt.map_binding = pbmw ? kvmsr::MapBinding::kPBMW : kvmsr::MapBinding::kBlock;
  tc::Result r = tc::App::install(m, dg, opt).run();

  std::printf("[UDSIM] %llu: [main_master__init_tc] Main TC Master Start\n",
              (unsigned long long)r.start_tick);
  std::printf("[UDSIM] %llu: [main_master__tc_launcher_done] <tc_return> result:%llu\n",
              (unsigned long long)r.done_tick, (unsigned long long)r.triangles);
  std::printf("simulated time: %.6f s | %llu pairs | binding %s\n", r.seconds(),
              (unsigned long long)r.pairs, pbmw ? "PBMW" : "Block");
  return 0;
}
