// PageRank application driver, mirroring the artifact's Listing 10:
//   ./pagerank_msr <graph_prefix> <nodes> [accel=4] [iters=5] [mem=<nodes>]
//
// <graph_prefix> is the output of split_and_shuffle (…_gv.bin/_nl.bin/
// _meta.bin). <mem> sweeps the number of memory nodes the graph's
// DRAMmalloc uses (the paper's Figure 12 knob). Output follows the
// artifact's convention: tick-stamped start/terminate lines; convert ticks
// to seconds with time[s] = ticks / 2e9.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/pagerank.hpp"
#include "graph/split_io.hpp"

using namespace updown;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <graph_prefix> <nodes> [accel=4] [iters=5] [mem=nodes]\n",
                 argv[0]);
    return 2;
  }
  const std::string prefix = argv[1];
  const auto nodes = static_cast<std::uint32_t>(std::atoi(argv[2]));
  const auto accel = static_cast<std::uint32_t>(argc > 3 ? std::atoi(argv[3]) : 4);
  const auto iters = static_cast<unsigned>(argc > 4 ? std::atoi(argv[4]) : 5);
  const auto mem = static_cast<std::uint32_t>(argc > 5 ? std::atoi(argv[5]) : nodes);

  SplitGraph sg = read_split_binary(prefix);
  Machine m(MachineConfig::scaled(nodes, accel));
  GraphPlacement place;
  place.nr_nodes = mem;
  DeviceGraph dg = upload_graph(m, sg.g, place, &sg);
  pr::Options opt;
  opt.iterations = iters;
  opt.value_placement.nr_nodes = mem;
  pr::Result r = pr::App::install(m, dg, sg, opt).run();

  std::printf("[UDSIM] %llu: [updown_init] PageRank start\n",
              (unsigned long long)r.start_tick);
  std::printf("[UDSIM] %llu: [updown_terminate] PageRank done\n",
              (unsigned long long)r.done_tick);
  std::printf("simulated time: %.6f s (%llu ticks / 2e9) | %u iterations | "
              "%llu edge updates | %.2f GUPS | %llu lanes\n",
              r.seconds(), (unsigned long long)r.duration(), r.iterations,
              (unsigned long long)r.edge_updates, r.gups(),
              (unsigned long long)m.config().total_lanes());
  return 0;
}
