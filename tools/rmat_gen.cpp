// RMAT graph generator CLI — the artifact's Listing 8:
//   python3 rmat.py -s <scale>     (here: ./rmat_gen <scale> [out.txt])
// Generates a scale-s RMAT edge list with the paper's parameters a=0.57,
// b=0.19, c=0.19 and edge factor 16, written as plain text "src dst" lines.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"

using namespace updown;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scale> [out.txt] [edge_factor=16] [seed=48] [--symmetric]\n",
                 argv[0]);
    return 2;
  }
  const auto scale = static_cast<std::uint32_t>(std::atoi(argv[1]));
  const std::string out = argc > 2 ? argv[2] : "rmat-s" + std::to_string(scale) + ".txt";
  RmatParams p;
  if (argc > 3) p.edge_factor = static_cast<std::uint32_t>(std::atoi(argv[3]));
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 48;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--symmetric") p.symmetrize = true;

  Graph g = rmat(scale, p, seed);
  write_edge_list(g, out);
  std::printf("wrote %s: %llu vertices, %llu edges (a=%.2f b=%.2f c=%.2f ef=%u seed=%llu)\n",
              out.c_str(), (unsigned long long)g.num_vertices(),
              (unsigned long long)g.num_edges(), p.a, p.b, p.c, p.edge_factor,
              (unsigned long long)seed);
  return 0;
}
