#include "graph/layout.hpp"

#include <algorithm>
#include <vector>

namespace updown {

DeviceGraph upload_graph(Machine& m, const Graph& g, const GraphPlacement& place,
                         const SplitGraph* split) {
  GlobalMemory& mem = m.memory();
  const std::uint32_t nr = place.nr_nodes == 0 ? m.config().nodes : place.nr_nodes;

  DeviceGraph dg;
  dg.num_vertices = g.num_vertices();
  dg.num_edges = g.num_edges();
  dg.num_original = split ? split->num_original : g.num_vertices();

  const std::uint64_t vtx_bytes = std::max<std::uint64_t>(1, dg.num_vertices) *
                                  DeviceGraph::kVertexBytes;
  const std::uint64_t nbr_bytes = std::max<std::uint64_t>(8, dg.num_edges * 8);
  dg.vtx_base = mem.dram_malloc(vtx_bytes, place.first_node, nr, place.block_size);
  dg.nbr_base = mem.dram_malloc(nbr_bytes, place.first_node, nr, place.block_size);

  // Neighbor list first (vertex records point into it).
  if (dg.num_edges > 0)
    mem.host_write(dg.nbr_base, g.neighbors().data(), dg.num_edges * 8);

  std::vector<Word> rec(DeviceGraph::kVertexWords);
  for (VertexId v = 0; v < dg.num_vertices; ++v) {
    rec[DeviceGraph::kId] = split ? split->owner[v] : v;
    rec[DeviceGraph::kDegree] = g.degree(v);
    rec[DeviceGraph::kNbrPtr] = dg.nbr_base + g.offset(v) * 8;
    rec[DeviceGraph::kValue] = 0;
    rec[DeviceGraph::kDist] = kInfDist;
    rec[DeviceGraph::kParent] = kNoParent;
    rec[DeviceGraph::kOwnerDegree] = split ? split->owner_degree[v] : g.degree(v);
    rec[DeviceGraph::kAux] = 0;
    mem.host_write(dg.vertex_addr(v), rec.data(), DeviceGraph::kVertexBytes);
  }
  return dg;
}

}  // namespace updown
