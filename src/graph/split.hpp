// Vertex splitting ("split_and_shuffle" in the paper's artifact).
//
// High-degree vertices are split into sub-vertices with at most `max_degree`
// out-neighbors each, "yet yields the correct result for the original graph"
// (paper Section 5.2.1). The transform bounds the degree in BOTH directions:
//
//   - out-degree: each sub-vertex owns a <= max_degree slice of its owner's
//     adjacency list; the shuffle spreads a heavy hitter's pieces across
//     Block-binding partitions, balancing the map side.
//   - in-degree: every edge target is rewritten to one of the target's
//     "accumulator slots" (round-robin over its pieces). Contributions to a
//     hub therefore hash to many reduce lanes instead of serializing on one;
//     PageRank's apply phase sums each original vertex's slot range
//     [slot_offset[v], slot_offset[v+1]).
//
// Slot ids are assigned contiguously per original vertex (independent of the
// sub-vertex shuffle), so the slot range of an original is a dense interval.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace updown {

struct SplitGraph {
  /// Sub-vertex graph. `g.neighbors_of(s)` are ACCUMULATOR SLOT ids of the
  /// target vertices (use slot_owner() to map a slot back to its original).
  Graph g;
  /// owner[s]: the original vertex a sub-vertex belongs to.
  std::vector<VertexId> owner;
  /// owner_degree[s]: total out-degree of owner[s] in the original graph.
  std::vector<std::uint64_t> owner_degree;
  /// slot_offset[v]: first accumulator slot of original vertex v
  /// (size num_original + 1; slot count == sub-vertex count).
  std::vector<std::uint64_t> slot_offset;
  VertexId num_original = 0;

  VertexId num_sub() const { return g.num_vertices(); }
  std::uint64_t num_slots() const { return slot_offset.empty() ? 0 : slot_offset.back(); }

  /// Original vertex owning accumulator slot `slot` (test/debug helper).
  VertexId slot_owner(std::uint64_t slot) const;
};

SplitGraph split_vertices(const Graph& g, std::uint64_t max_degree, bool shuffle = true,
                          std::uint64_t seed = 42);

}  // namespace updown
