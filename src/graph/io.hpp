// Graph file IO mirroring the artifact's preprocessing pipeline:
//   - plain-text edge lists (the raw SNAP / generator format),
//   - binary *_gv.bin / *_nl.bin pairs (the preprocessed vertex-array +
//     neighbor-list files consumed by the UpDown applications).
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace updown {

/// Parse "src dst" lines; `skip_lines` mirrors the tools' -l offset flag for
/// headers. Tabs or spaces separate fields; blank lines and lines starting
/// with '#' or '%' are ignored.
Graph read_edge_list(const std::string& path, std::uint64_t skip_lines = 0,
                     bool symmetrize = false);

void write_edge_list(const Graph& g, const std::string& path);

/// Write `<prefix>_gv.bin` (vertex count + per-vertex degree/offset records)
/// and `<prefix>_nl.bin` (the flat neighbor-list array).
void write_binary(const Graph& g, const std::string& prefix);

Graph read_binary(const std::string& prefix);

}  // namespace updown
