// Device graph layout: the paper's two global data structures — the vertex
// array and the neighbor-list array — placed in the simulated global address
// space with DRAMmalloc (default: spread over the machine in 32 KiB blocks,
// Section 4.1.1).
//
// Vertex record (8 words / 64 bytes):
//   [0] id            original vertex id (for split graphs: the owner)
//   [1] degree        out-degree of this (sub-)vertex
//   [2] nbr_ptr       VA of this vertex's slice of the neighbor list
//   [3] value         f64 bit pattern (PageRank value, etc.)
//   [4] dist          BFS distance (init: kInfDist)
//   [5] parent        BFS parent  (init: kNoParent)
//   [6] owner_degree  total out-degree of the original vertex (PR transform)
//   [7] aux           scratch field for applications
#pragma once

#include <bit>
#include <cstdint>

#include "graph/split.hpp"
#include "sim/machine.hpp"

namespace updown {

constexpr Word kInfDist = ~0ull;
constexpr Word kNoParent = ~0ull;

struct DeviceGraph {
  Addr vtx_base = 0;
  Addr nbr_base = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_original = 0;  ///< == num_vertices unless split

  static constexpr std::uint64_t kVertexWords = 8;
  static constexpr std::uint64_t kVertexBytes = 64;
  enum Field : std::uint64_t {
    kId = 0,
    kDegree = 1,
    kNbrPtr = 2,
    kValue = 3,
    kDist = 4,
    kParent = 5,
    kOwnerDegree = 6,
    kAux = 7
  };

  Addr vertex_addr(VertexId v) const { return vtx_base + v * kVertexBytes; }
  Addr field_addr(VertexId v, Field f) const { return vertex_addr(v) + f * 8; }
};

struct GraphPlacement {
  std::uint32_t first_node = 0;
  std::uint32_t nr_nodes = 0;  ///< 0 = whole machine (the paper's default)
  std::uint64_t block_size = 32 * 1024;
};

/// Upload an (optionally split) graph into simulated global memory. Host-side
/// writes model the data-loading phase outside the timed region.
DeviceGraph upload_graph(Machine& m, const Graph& g, const GraphPlacement& place = {},
                         const SplitGraph* split = nullptr);

inline DeviceGraph upload_split_graph(Machine& m, const SplitGraph& sg,
                                      const GraphPlacement& place = {}) {
  return upload_graph(m, sg.g, place, &sg);
}

}  // namespace updown
