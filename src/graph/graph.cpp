#include "graph/graph.hpp"

namespace updown {

Graph Graph::from_edges(VertexId num_vertices, std::vector<Edge> edges, bool symmetrize) {
  if (symmetrize) {
    const std::size_t n = edges.size();
    edges.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) edges.emplace_back(edges[i].second, edges[i].first);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(num_vertices + 1, 0);
  g.neighbors_.reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    if (src == dst) continue;  // drop self-loops
    g.offsets_[src + 1]++;
  }
  for (VertexId v = 0; v < num_vertices; ++v) g.offsets_[v + 1] += g.offsets_[v];
  // Edges are sorted by (src, dst), so pushing destinations in order yields
  // sorted adjacency lists directly.
  for (const auto& [src, dst] : edges) {
    if (src == dst) continue;
    g.neighbors_.push_back(dst);
  }
  return g;
}

}  // namespace updown
