#include "graph/split_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/io.hpp"

namespace updown {

namespace {
constexpr std::uint64_t kMetaMagic = 0x55444d455631ull;  // "UDMEV1"

void check(const std::ios& s, const std::string& what) {
  if (!s) throw std::runtime_error("split io: failed to " + what);
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  out.write(reinterpret_cast<const char*>(&n), 8);
  out.write(reinterpret_cast<const char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), 8);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
  return v;
}
}  // namespace

void write_split_binary(const SplitGraph& sg, const std::string& prefix) {
  write_binary(sg.g, prefix);
  std::ofstream meta(prefix + "_meta.bin", std::ios::binary);
  check(meta, "open " + prefix + "_meta.bin");
  meta.write(reinterpret_cast<const char*>(&kMetaMagic), 8);
  const std::uint64_t n_orig = sg.num_original;
  meta.write(reinterpret_cast<const char*>(&n_orig), 8);
  write_vec(meta, sg.owner);
  write_vec(meta, sg.owner_degree);
  write_vec(meta, sg.slot_offset);
  check(meta, "write " + prefix + "_meta.bin");
}

SplitGraph read_split_binary(const std::string& prefix) {
  SplitGraph sg;
  sg.g = read_binary(prefix);
  std::ifstream meta(prefix + "_meta.bin", std::ios::binary);
  check(meta, "open " + prefix + "_meta.bin");
  std::uint64_t magic = 0, n_orig = 0;
  meta.read(reinterpret_cast<char*>(&magic), 8);
  if (magic != kMetaMagic) throw std::runtime_error("split io: bad _meta.bin magic");
  meta.read(reinterpret_cast<char*>(&n_orig), 8);
  sg.num_original = n_orig;
  sg.owner = read_vec<VertexId>(meta);
  sg.owner_degree = read_vec<std::uint64_t>(meta);
  sg.slot_offset = read_vec<std::uint64_t>(meta);
  check(meta, "read " + prefix + "_meta.bin");
  if (sg.owner.size() != sg.num_sub() || sg.slot_offset.size() != n_orig + 1)
    throw std::runtime_error("split io: inconsistent meta arrays");
  return sg;
}

std::string split_stats(const Graph& original, const SplitGraph& sg) {
  std::ostringstream os;
  os << "vertices: " << original.num_vertices() << " -> " << sg.num_sub()
     << " sub-vertices\n"
     << "edges:    " << original.num_edges() << " (preserved: "
     << (sg.g.num_edges() == original.num_edges() ? "yes" : "NO") << ")\n"
     << "max degree: " << original.max_degree() << " -> " << sg.g.max_degree() << "\n";
  return os.str();
}

}  // namespace updown
