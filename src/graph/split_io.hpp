// Binary IO for split graphs — the output format of the split_and_shuffle
// preprocessing tool: the artifact's *_gv.bin/_nl.bin pair plus a *_meta.bin
// carrying the owner/slot arrays the split transform needs at load time.
#pragma once

#include <string>

#include "graph/split.hpp"

namespace updown {

/// Write `<prefix>_gv.bin`, `<prefix>_nl.bin` and `<prefix>_meta.bin`.
void write_split_binary(const SplitGraph& sg, const std::string& prefix);

SplitGraph read_split_binary(const std::string& prefix);

/// The artifact's statistics summary (printed by split_and_shuffle -s).
std::string split_stats(const Graph& original, const SplitGraph& sg);

}  // namespace updown
