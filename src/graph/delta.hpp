// Mutable host graph for streaming ingestion: a resident CSR snapshot plus
// per-vertex edge-delta overlays.
//
// Insert batches are STAGED into the overlay while queries keep reading the
// snapshot; at a deterministic epoch boundary compact() merges every staged
// batch into fresh CSR arrays (forward and reverse). Compaction is a pure
// function of the staged edge SET — per-vertex sorted-unique union with
// self-loops dropped, i.e. exactly Graph::from_edges semantics — so the
// post-epoch graph is independent of batch arrival order and of the order
// edges were appended within a batch. That is what lets incremental results
// be cross-checked bit-for-bit against from-scratch CPU baselines on
// `from_edges(old_edges + delta_edges)`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace updown {

class DeltaGraph {
 public:
  /// Adopts `base` as the resident snapshot and builds its reverse CSR.
  /// Requires sorted adjacency (from_edges output) — the compaction merge and
  /// the incremental kernels' position-indexed gathers rely on it.
  explicit DeltaGraph(Graph base);

  /// The resident forward CSR (post last compaction). The reference is
  /// stable across compact() calls.
  const Graph& csr() const { return csr_; }
  /// Reverse CSR: rcsr().neighbors_of(v) = in-neighbors of v, sorted.
  const Graph& rcsr() const { return rcsr_; }
  VertexId num_vertices() const { return csr_.num_vertices(); }

  /// Open a new staging batch; returns its id (dense, starting at 0).
  std::uint64_t begin_batch() { return batches_++; }

  /// Stage edge u->v into `batch`'s overlay. Duplicates and self-loops are
  /// accepted here and dropped at compaction. Throws std::out_of_range on a
  /// bad endpoint or unknown batch (a malformed delta must not become UB).
  void stage(std::uint64_t batch, VertexId u, VertexId v);

  std::uint64_t staged_edges() const { return staged_; }
  std::uint64_t batches() const { return batches_; }
  /// Epochs completed (compact() calls).
  std::uint64_t epochs() const { return epochs_; }

  /// Pending (staged, not yet compacted) inserts out of u, in append order.
  std::span<const VertexId> pending(VertexId u) const { return overlay_.at(u); }

  /// Membership across snapshot + overlay: what a reader that wants
  /// uncommitted deltas would see.
  bool has_edge(VertexId u, VertexId v) const;

  struct CompactionResult {
    std::vector<VertexId> touched_fwd;  ///< sources whose adjacency changed
    std::vector<VertexId> touched_rev;  ///< targets whose in-list changed
    std::uint64_t inserted = 0;         ///< edges actually new to the graph
    std::uint64_t staged = 0;           ///< overlay entries consumed
  };

  /// Merge every staged batch into the forward and reverse CSRs and clear
  /// the overlay. Touched lists are ascending and deduplicated.
  CompactionResult compact();

 private:
  Graph csr_;
  Graph rcsr_;
  std::vector<std::vector<VertexId>> overlay_;  ///< per-vertex pending inserts
  std::uint64_t staged_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace updown
