// Host-side graph representation: CSR ("neighbor list format" in the paper).
// This is the output of the artifact's preprocessing tools (split_and_shuffle,
// tsv): a vertex array plus a flat neighbor-list array.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace updown {

using VertexId = std::uint64_t;
using Edge = std::pair<VertexId, VertexId>;

class Graph {
 public:
  Graph() : offsets_(1, 0) {}

  /// Build a CSR graph from an edge list. Self-loops and duplicate edges are
  /// removed and adjacency lists are sorted by destination (the preprocessing
  /// the paper's `tsv` tool performs for TC).
  static Graph from_edges(VertexId num_vertices, std::vector<Edge> edges,
                          bool symmetrize = false);

  /// Adopt prebuilt CSR arrays verbatim (no dedup/sort/self-loop removal).
  /// Used where vertex and neighbor id spaces intentionally differ, e.g. the
  /// split-vertex graph whose neighbors are original-graph ids. Adjacency
  /// lists are NOT assumed sorted unless the caller vouches for it via
  /// `sorted` — has_edge degrades to a linear scan otherwise.
  static Graph from_csr(std::vector<std::uint64_t> offsets, std::vector<VertexId> neighbors,
                        bool sorted = false) {
    Graph g;
    g.offsets_ = std::move(offsets);
    g.neighbors_ = std::move(neighbors);
    g.sorted_ = sorted;
    return g;
  }

  VertexId num_vertices() const { return offsets_.size() - 1; }
  std::uint64_t num_edges() const { return neighbors_.size(); }
  /// Every adjacency list is sorted ascending (from_edges output); binary
  /// search in has_edge and merge-intersection (TC) are valid.
  bool sorted() const { return sorted_; }

  std::uint64_t degree(VertexId v) const {
    assert(v < num_vertices() && "Graph::degree: vertex id out of range");
    return offsets_[v + 1] - offsets_[v];
  }
  std::uint64_t offset(VertexId v) const {
    assert(v < num_vertices() && "Graph::offset: vertex id out of range");
    return offsets_[v];
  }

  std::span<const VertexId> neighbors_of(VertexId v) const {
    assert(v < num_vertices() && "Graph::neighbors_of: vertex id out of range");
    return {neighbors_.data() + offsets_[v], degree(v)};
  }

  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<VertexId>& neighbors() const { return neighbors_; }

  std::uint64_t max_degree() const {
    std::uint64_t md = 0;
    for (VertexId v = 0; v < num_vertices(); ++v) md = std::max(md, degree(v));
    return md;
  }

  bool has_edge(VertexId u, VertexId v) const {
    const auto nbrs = neighbors_of(u);
    // binary_search on an unsorted adjacency list (a from_csr adoption, e.g.
    // the split-vertex graph) silently returns wrong answers — fall back to
    // the linear scan there.
    if (sorted_) return std::binary_search(nbrs.begin(), nbrs.end(), v);
    return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
  }

 private:
  std::vector<std::uint64_t> offsets_;  ///< size num_vertices + 1
  std::vector<VertexId> neighbors_;
  bool sorted_ = true;  ///< default-constructed/from_edges graphs are sorted
};

}  // namespace updown
