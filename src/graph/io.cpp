#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace updown {

namespace {
constexpr std::uint64_t kGvMagic = 0x5544475631ull;  // "UDGV1"

void check(const std::ios& s, const std::string& what) {
  if (!s) throw std::runtime_error("graph io: failed to " + what);
}
}  // namespace

Graph read_edge_list(const std::string& path, std::uint64_t skip_lines, bool symmetrize) {
  std::ifstream in(path);
  check(in, "open " + path);
  std::string line;
  std::vector<Edge> edges;
  VertexId max_v = 0;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    if (lineno++ < skip_lines) continue;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    VertexId s, d;
    if (!(ls >> s >> d)) continue;
    edges.emplace_back(s, d);
    max_v = std::max({max_v, s, d});
  }
  const VertexId n = edges.empty() ? 0 : max_v + 1;  // before the move below
  return Graph::from_edges(n, std::move(edges), symmetrize);
}

void write_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  check(out, "open " + path);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId u : g.neighbors_of(v)) out << v << '\t' << u << '\n';
  check(out, "write " + path);
}

void write_binary(const Graph& g, const std::string& prefix) {
  {
    std::ofstream gv(prefix + "_gv.bin", std::ios::binary);
    check(gv, "open " + prefix + "_gv.bin");
    const std::uint64_t n = g.num_vertices(), m = g.num_edges();
    gv.write(reinterpret_cast<const char*>(&kGvMagic), 8);
    gv.write(reinterpret_cast<const char*>(&n), 8);
    gv.write(reinterpret_cast<const char*>(&m), 8);
    gv.write(reinterpret_cast<const char*>(g.offsets().data()),
             static_cast<std::streamsize>((n + 1) * 8));
    check(gv, "write vertex array");
  }
  {
    std::ofstream nl(prefix + "_nl.bin", std::ios::binary);
    check(nl, "open " + prefix + "_nl.bin");
    nl.write(reinterpret_cast<const char*>(g.neighbors().data()),
             static_cast<std::streamsize>(g.num_edges() * 8));
    check(nl, "write neighbor list");
  }
}

Graph read_binary(const std::string& prefix) {
  std::ifstream gv(prefix + "_gv.bin", std::ios::binary);
  check(gv, "open " + prefix + "_gv.bin");
  std::uint64_t magic = 0, n = 0, m = 0;
  gv.read(reinterpret_cast<char*>(&magic), 8);
  if (magic != kGvMagic) throw std::runtime_error("graph io: bad _gv.bin magic");
  gv.read(reinterpret_cast<char*>(&n), 8);
  gv.read(reinterpret_cast<char*>(&m), 8);
  std::vector<std::uint64_t> offsets(n + 1);
  gv.read(reinterpret_cast<char*>(offsets.data()), static_cast<std::streamsize>((n + 1) * 8));
  check(gv, "read vertex array");

  std::ifstream nl(prefix + "_nl.bin", std::ios::binary);
  check(nl, "open " + prefix + "_nl.bin");
  std::vector<VertexId> neighbors(m);
  nl.read(reinterpret_cast<char*>(neighbors.data()), static_cast<std::streamsize>(m * 8));
  check(nl, "read neighbor list");
  // Binary files written by write_binary come from from_edges output (sorted
  // adjacency), but the format doesn't record that — verify with one O(m)
  // scan (cheap next to the file read) so has_edge/TC keep their fast paths
  // only when they are actually valid.
  bool sorted = true;
  for (std::uint64_t v = 0; v < n && sorted; ++v)
    for (std::uint64_t i = offsets[v] + 1; i < offsets[v + 1]; ++i)
      if (neighbors[i - 1] >= neighbors[i]) {
        sorted = false;
        break;
      }
  return Graph::from_csr(std::move(offsets), std::move(neighbors), sorted);
}

}  // namespace updown
