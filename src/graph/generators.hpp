// Synthetic graph generators standing in for the paper's datasets.
//
// The evaluation uses SNAP social graphs plus generated RMAT, Erdős–Rényi and
// Forest Fire graphs. The SNAP downloads are not available offline, so the
// generators below (with the paper's published RMAT parameters a=0.57,
// b=c=0.19, edge factor 16) provide graphs with the same skew structure:
// RMAT for heavy-tailed social-network-like degree distributions, ER for the
// uniform case, Forest Fire for community-structured graphs.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace updown {

struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  std::uint32_t edge_factor = 16;
  bool symmetrize = false;
};

/// RMAT graph of 2^scale vertices (Chakrabarti et al., the generator the
/// paper's artifact ships as a Python script).
Graph rmat(std::uint32_t scale, const RmatParams& params = {}, std::uint64_t seed = 48);

/// Erdős–Rényi G(n, m) with n = 2^scale, m = n * edge_factor.
Graph erdos_renyi(std::uint32_t scale, std::uint32_t edge_factor = 16, std::uint64_t seed = 7,
                  bool symmetrize = false);

/// Simplified Forest Fire model (Leskovec): each new vertex links to an
/// ambassador and "burns" through its neighborhood with probability fw_prob.
Graph forest_fire(std::uint64_t num_vertices, double fw_prob = 0.35, std::uint64_t seed = 13);

// Small deterministic fixtures for unit tests.
Graph path_graph(std::uint64_t n, bool symmetrize = true);
Graph star_graph(std::uint64_t leaves);
Graph complete_graph(std::uint64_t n);

}  // namespace updown
