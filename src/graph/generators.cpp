#include "graph/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"

namespace updown {

Graph rmat(std::uint32_t scale, const RmatParams& p, std::uint64_t seed) {
  const std::uint64_t n = 1ull << scale;
  const std::uint64_t m = n * p.edge_factor;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (r < p.a) {
        // top-left quadrant: nothing to add
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.emplace_back(src, dst);
  }
  return Graph::from_edges(n, std::move(edges), p.symmetrize);
}

Graph erdos_renyi(std::uint32_t scale, std::uint32_t edge_factor, std::uint64_t seed,
                  bool symmetrize) {
  const std::uint64_t n = 1ull << scale;
  const std::uint64_t m = n * edge_factor;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e)
    edges.emplace_back(rng.below(n), rng.below(n));
  return Graph::from_edges(n, std::move(edges), symmetrize);
}

Graph forest_fire(std::uint64_t num_vertices, double fw_prob, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  // Grow the graph vertex by vertex; adjacency kept as out-lists during
  // growth, converted to CSR at the end.
  std::vector<std::vector<VertexId>> out(num_vertices);
  std::vector<Edge> edges;
  for (VertexId v = 1; v < num_vertices; ++v) {
    const VertexId ambassador = rng.below(v);
    std::unordered_set<VertexId> visited{v};
    std::vector<VertexId> frontier{ambassador};
    // Burn outward: geometric number of links per burned vertex.
    std::size_t burned = 0;
    while (!frontier.empty() && burned < 64) {
      const VertexId u = frontier.back();
      frontier.pop_back();
      if (!visited.insert(u).second) continue;
      edges.emplace_back(v, u);
      out[v].push_back(u);
      ++burned;
      for (VertexId w : out[u])
        if (rng.uniform() < fw_prob && !visited.count(w)) frontier.push_back(w);
    }
  }
  return Graph::from_edges(num_vertices, std::move(edges), /*symmetrize=*/true);
}

Graph path_graph(std::uint64_t n, bool symmetrize) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, std::move(edges), symmetrize);
}

Graph star_graph(std::uint64_t leaves) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= leaves; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(leaves + 1, std::move(edges), /*symmetrize=*/true);
}

Graph complete_graph(std::uint64_t n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = 0; v < n; ++v)
      if (u != v) edges.emplace_back(u, v);
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace updown
