#include "graph/delta.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace updown {

namespace {

Graph reverse_of(const Graph& g) {
  std::vector<Edge> redges;
  redges.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors_of(u)) redges.emplace_back(v, u);
  // from_edges infers n from the max endpoint only via the caller; pass the
  // vertex count explicitly so isolated tail vertices keep their slots.
  return Graph::from_edges(g.num_vertices(), std::move(redges), false);
}

/// Merge one vertex's sorted adjacency with its (unsorted, possibly
/// duplicated) pending inserts. Appends the merged list to `out`, and each
/// actually-new edge source->target to `fresh`. Returns true if the list
/// changed.
bool merge_vertex(VertexId src, std::span<const VertexId> old,
                  std::vector<VertexId>& pend, std::vector<VertexId>& out,
                  std::vector<Edge>& fresh) {
  std::sort(pend.begin(), pend.end());
  pend.erase(std::unique(pend.begin(), pend.end()), pend.end());
  bool changed = false;
  std::size_t i = 0, j = 0;
  while (i < old.size() || j < pend.size()) {
    if (j == pend.size() || (i < old.size() && old[i] <= pend[j])) {
      if (j < pend.size() && old[i] == pend[j]) ++j;  // duplicate of existing
      out.push_back(old[i++]);
    } else {
      const VertexId v = pend[j++];
      if (v == src) continue;  // self-loop: from_edges drops these
      out.push_back(v);
      fresh.emplace_back(src, v);
      changed = true;
    }
  }
  return changed;
}

}  // namespace

DeltaGraph::DeltaGraph(Graph base) : csr_(std::move(base)) {
  if (!csr_.sorted())
    throw std::invalid_argument(
        "DeltaGraph: base graph must have sorted adjacency (from_edges output)");
  rcsr_ = reverse_of(csr_);
  overlay_.resize(csr_.num_vertices());
}

void DeltaGraph::stage(std::uint64_t batch, VertexId u, VertexId v) {
  if (batch >= batches_) throw std::out_of_range("DeltaGraph: stage into unknown batch");
  if (u >= num_vertices() || v >= num_vertices())
    throw std::out_of_range("DeltaGraph: delta edge endpoint out of range");
  overlay_[u].push_back(v);
  ++staged_;
}

bool DeltaGraph::has_edge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  if (csr_.has_edge(u, v)) return true;
  const auto& pend = overlay_[u];
  return std::find(pend.begin(), pend.end(), v) != pend.end();
}

DeltaGraph::CompactionResult DeltaGraph::compact() {
  CompactionResult r;
  r.staged = staged_;
  ++epochs_;
  if (staged_ == 0) return r;

  const VertexId n = num_vertices();
  std::vector<std::uint64_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(csr_.num_edges() + staged_);
  std::vector<Edge> fresh;  // actually-inserted edges, drives the reverse side
  for (VertexId u = 0; u < n; ++u) {
    const auto old = csr_.neighbors_of(u);
    if (overlay_[u].empty()) {
      neighbors.insert(neighbors.end(), old.begin(), old.end());
    } else if (merge_vertex(u, old, overlay_[u], neighbors, fresh)) {
      r.touched_fwd.push_back(u);
    }
    overlay_[u].clear();
    overlay_[u].shrink_to_fit();
    offsets.push_back(neighbors.size());
  }
  csr_ = Graph::from_csr(std::move(offsets), std::move(neighbors), /*sorted=*/true);
  r.inserted = fresh.size();

  if (!fresh.empty()) {
    // Reverse side: group the fresh edges by target and run the same merge.
    std::vector<std::vector<VertexId>> rpend(n);
    for (const auto& [u, v] : fresh) rpend[v].push_back(u);
    std::vector<std::uint64_t> roffsets;
    roffsets.reserve(n + 1);
    roffsets.push_back(0);
    std::vector<VertexId> rneighbors;
    rneighbors.reserve(rcsr_.num_edges() + fresh.size());
    std::vector<Edge> unused;
    for (VertexId v = 0; v < n; ++v) {
      const auto old = rcsr_.neighbors_of(v);
      if (rpend[v].empty()) {
        rneighbors.insert(rneighbors.end(), old.begin(), old.end());
      } else if (merge_vertex(v, old, rpend[v], rneighbors, unused)) {
        r.touched_rev.push_back(v);
      }
      roffsets.push_back(rneighbors.size());
    }
    rcsr_ = Graph::from_csr(std::move(roffsets), std::move(rneighbors), /*sorted=*/true);
  }
  staged_ = 0;
  return r;
}

}  // namespace updown
