#include "graph/split.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace updown {

VertexId SplitGraph::slot_owner(std::uint64_t slot) const {
  auto it = std::upper_bound(slot_offset.begin(), slot_offset.end(), slot);
  return static_cast<VertexId>(it - slot_offset.begin() - 1);
}

SplitGraph split_vertices(const Graph& g, std::uint64_t max_degree, bool shuffle,
                          std::uint64_t seed) {
  if (max_degree == 0) throw std::invalid_argument("split_vertices: max_degree must be > 0");
  const VertexId n = g.num_vertices();

  // Pass 1: pieces per original vertex and the contiguous slot numbering
  // (degree-0 vertices keep a single piece so every original has a slot and
  // a sub-vertex).
  SplitGraph out;
  out.num_original = n;
  out.slot_offset.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t pieces =
        std::max<std::uint64_t>(1, ceil_div(g.degree(v), max_degree));
    out.slot_offset[v + 1] = out.slot_offset[v] + pieces;
  }
  const std::uint64_t total_subs = out.slot_offset[n];

  // Pass 2: enumerate sub-vertices in slot order, then optionally shuffle the
  // *sub-vertex* numbering (slot ids stay contiguous per original).
  struct Sub {
    VertexId owner;
    std::uint64_t chunk_begin;
  };
  std::vector<Sub> subs;
  subs.reserve(total_subs);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t pieces = out.slot_offset[v + 1] - out.slot_offset[v];
    for (std::uint64_t p = 0; p < pieces; ++p) subs.push_back({v, p * max_degree});
  }

  std::vector<std::size_t> order(subs.size());
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) {
    Xoshiro256 rng(seed);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
  }

  // Pass 3: materialize the sub-vertex CSR with in-edge slot rewriting.
  // Round-robin counters distribute each target's in-edges over its slots.
  std::vector<std::uint64_t> rr(n, 0);
  out.owner.reserve(subs.size());
  out.owner_degree.reserve(subs.size());
  std::vector<std::uint64_t> offsets(subs.size() + 1, 0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(g.num_edges());
  for (std::size_t s = 0; s < order.size(); ++s) {
    const Sub& sub = subs[order[s]];
    out.owner.push_back(sub.owner);
    const std::uint64_t d = g.degree(sub.owner);
    out.owner_degree.push_back(d);
    const auto nbrs = g.neighbors_of(sub.owner);
    const std::uint64_t len = std::min(max_degree, d - std::min(d, sub.chunk_begin));
    for (std::uint64_t i = 0; i < len; ++i) {
      const VertexId t = nbrs[sub.chunk_begin + i];
      const std::uint64_t pieces_t = out.slot_offset[t + 1] - out.slot_offset[t];
      neighbors.push_back(out.slot_offset[t] + (rr[t]++ % pieces_t));
    }
    offsets[s + 1] = neighbors.size();
  }
  out.g = Graph::from_csr(std::move(offsets), std::move(neighbors));
  return out;
}

}  // namespace updown
