// Small bit-manipulation helpers shared by the translation unit, hash-based
// computation binding, and data-structure sizing (everything in UpDown that
// is "power of 2" sized).
#pragma once

#include <bit>
#include <cstdint>

namespace updown {

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::uint64_t next_pow2(std::uint64_t x) { return x <= 1 ? 1 : std::bit_ceil(x); }

constexpr unsigned log2_exact(std::uint64_t x) { return static_cast<unsigned>(std::countr_zero(x)); }

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// 64-bit finalizer (Murmur3 fmix64). Used for the Hash computation binding:
/// LaneID = (hash(key) % NRLanes) + 1stLane.
constexpr std::uint64_t hash64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Combine two vertex ids into one hash key (used by TC's reduce binding,
/// which hashes "a combination of the vertex names").
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash64(a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c159e3779b9ULL);
}

/// Division/modulo by a fixed divisor, reduced to shift/mask when the divisor
/// is a power of two (the common topology shape). Hot routing paths divide by
/// lanes-per-node/per-accel on every message; a hardware 32-bit divide costs
/// ~20-25 cycles, the shift costs one.
struct FastDiv {
  std::uint32_t d = 1;
  std::uint32_t mask = 0;
  unsigned shift = 0;
  bool pow2 = true;

  FastDiv() = default;
  explicit FastDiv(std::uint32_t divisor)
      : d(divisor),
        mask(divisor - 1),
        shift(is_pow2(divisor) ? log2_exact(divisor) : 0),
        pow2(is_pow2(divisor)) {}

  std::uint32_t div(std::uint64_t x) const {
    return static_cast<std::uint32_t>(pow2 ? x >> shift : x / d);
  }
  std::uint32_t mod(std::uint64_t x) const {
    return static_cast<std::uint32_t>(pow2 ? x & mask : x % d);
  }
};

}  // namespace updown
