// strfmt: printf-style formatting into a std::string, for diagnostic and
// error-message construction off the hot path (udcheck diagnostics, memory
// system errors). Deliberately tiny; not for use in per-event code.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace updown {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    // C++17 guarantees contiguous, writable data(); +1 for the terminator
    // vsnprintf always writes.
    std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace updown
