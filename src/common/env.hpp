// Environment-variable overrides, shared by the engine knobs (UD_SHARDS,
// UD_TRACE_SLICE, UD_COALESCE, ...).
//
// Integer knobs parse strictly: std::from_chars over the whole value, no
// sign, no trailing characters, range-checked. A typo like UD_SHARDS=4x or a
// wrapped UD_COALESCE=-1 is a configuration error the user needs to see, not
// a value to silently truncate — both used to slip through strtoul.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace updown {

/// UDSIM_LOG-style boolean env override: unset/empty leaves the configured
/// default, "0" turns the flag off, any other value turns it on.
inline bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}

/// Strict base-10 unsigned env override. Unset/empty/"0" leaves the
/// configured `fallback` ("0" means "keep the default" for every engine
/// knob). Anything else must parse exactly and lie within [1, max];
/// otherwise throws std::invalid_argument naming the variable, so the bad
/// setting is a hard startup failure instead of a silently mangled run.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                             std::uint64_t max = ~0ull) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  std::uint64_t parsed = 0;
  const char* end = v + std::strlen(v);
  const auto [ptr, ec] = std::from_chars(v, end, parsed, 10);
  if (ec != std::errc{} || ptr != end)
    throw std::invalid_argument(std::string(name) + "='" + v +
                                "': not a base-10 unsigned integer");
  if (parsed > max)
    throw std::invalid_argument(std::string(name) + "='" + v + "': exceeds the maximum " +
                                std::to_string(max));
  return parsed == 0 ? fallback : parsed;
}

}  // namespace updown
