// Minimal leveled logger. The simulator's equivalent of the paper's
// [BASIM_PRINT] trace lines: messages are prefixed with the simulated tick so
// that timings can be extracted exactly as the artifact appendix describes.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace updown {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  template <typename... Args>
  static void log(LogLevel lvl, Tick tick, const char* fmt, Args&&... args) {
    if (lvl > level()) return;
    std::fprintf(stderr, "[UDSIM] %llu: ", static_cast<unsigned long long>(tick));
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
  }
};

}  // namespace updown
