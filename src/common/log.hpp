// Minimal leveled logger. The simulator's equivalent of the paper's
// [BASIM_PRINT] trace lines: messages are prefixed with the simulated tick so
// that timings can be extracted exactly as the artifact appendix describes.
//
// Hot paths must trace through UDSIM_LOG(...), which compiles to a single
// branch on a cached level — arguments are not evaluated and no call is made
// when the level is disabled. The level initializes from the UDSIM_LOG
// environment variable (error|warn|info|debug or 0..3; default warn) and can
// be changed at runtime via Logger::level().
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace updown {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace logdetail {
inline LogLevel parse_env() {
  const char* env = std::getenv("UDSIM_LOG");
  if (!env || !*env) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0')
    return static_cast<LogLevel>(env[0] - '0');
  return LogLevel::kWarn;
}
}  // namespace logdetail

class Logger {
 public:
  /// Cached level, read directly by the UDSIM_LOG macro's guard branch.
  static inline LogLevel level_ = logdetail::parse_env();

  static LogLevel& level() { return level_; }

  static bool enabled(LogLevel lvl) {
    return static_cast<int>(lvl) <= static_cast<int>(level_);
  }

  template <typename... Args>
  static void log(LogLevel lvl, Tick tick, const char* fmt, Args&&... args) {
    if (!enabled(lvl)) return;
    std::fprintf(stderr, "[UDSIM] %llu: ", static_cast<unsigned long long>(tick));
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
  }
};

}  // namespace updown

/// Trace macro for simulator hot paths: a branch on the cached level; the
/// format arguments are only evaluated when the level is enabled.
#define UDSIM_LOG(lvl, tick, ...)                                         \
  do {                                                                    \
    if (static_cast<int>(lvl) <= static_cast<int>(::updown::Logger::level_)) \
      ::updown::Logger::log((lvl), (tick), __VA_ARGS__);                  \
  } while (0)
