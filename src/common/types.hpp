// Fundamental types shared across the UpDown simulator, runtime and apps.
#pragma once

#include <cstdint>
#include <cstddef>

namespace updown {

/// Simulated time in lane clock cycles (the UpDown target clock is 2 GHz,
/// so 1 tick = 0.5 ns; the paper's logs report these same "ticks").
using Tick = std::uint64_t;

/// Global computation-location name: a flat lane index across the whole
/// machine (node-major, then accelerator, then lane). The paper calls this
/// the networkID of a <node, lane>.
using NetworkId = std::uint32_t;

/// Per-lane thread context identifier.
using ThreadId = std::uint16_t;

/// Index of a registered event handler in the Program registry. The paper
/// calls this the "event label" (the address of the event in the program).
using EventLabel = std::uint16_t;

/// Virtual address in the global shared address space.
using Addr = std::uint64_t;

/// All UDWeave operands are 64-bit words.
using Word = std::uint64_t;

constexpr double kClockHz = 2.0e9;  // 2 GHz lane clock

inline double ticks_to_seconds(Tick t) { return static_cast<double>(t) / kClockHz; }

}  // namespace updown
