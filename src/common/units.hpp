// Byte-size and rate literals used by the machine configuration.
#pragma once

#include <cstdint>

namespace updown {

constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;
constexpr std::uint64_t TiB = 1024ULL * GiB;

/// Convert a TB/s figure from the paper into bytes per 2 GHz cycle.
constexpr double tbps_to_bytes_per_cycle(double tbps) {
  return tbps * 1.0e12 / 2.0e9;
}

}  // namespace updown
