// Deterministic, seedable PRNG used by graph generators and tests.
// xoshiro256** — fast, high-quality, and stable across platforms so that
// generated graphs (and therefore benchmark tables) are reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace updown {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) without modulo bias for small bounds.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(bound)) % bound;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace updown
