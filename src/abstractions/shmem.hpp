// SHMEM library (paper Table 5: "SHMEM (put/get, reductions)", after [38]).
//
// Thin one-sided operations over the global address space plus team
// synchronization:
//   put/get     — remote global-memory writes/reads with completion events
//   barrier     — team barrier through a coordinator lane
//   all_reduce  — sum-reduction across a team, result broadcast to all
//
// Teams are registered host-side; arrival state lives on the coordinator
// lane (scratchpad-modeled, charged).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown::shmem {

using TeamId = std::uint32_t;

class Shmem {
 public:
  static Shmem& install(Machine& m);
  explicit Shmem(Machine& m);

  /// Register a team of `count` participants coordinated at `coordinator`.
  TeamId create_team(NetworkId coordinator, std::uint32_t count);

  // ---- One-sided data movement (device side) --------------------------------
  /// Write `value` to global address `addr`; `cont` receives {} when durable.
  void put(Ctx& ctx, Addr addr, Word value, Word cont);
  /// Read the word at `addr`; `cont` receives {value}.
  void get(Ctx& ctx, Addr addr, Word cont);

  // ---- Collectives -------------------------------------------------------------
  /// Arrive at the team barrier; `cont` receives {} when all have arrived.
  void barrier_arrive(Ctx& ctx, TeamId team, Word cont);
  /// Contribute `value` to the team sum; `cont` receives {sum} when complete.
  void all_reduce_add(Ctx& ctx, TeamId team, Word value, Word cont);

 private:
  friend struct ShmemCoord;
  friend struct ShmemMover;

  struct Team {
    NetworkId coordinator = 0;
    std::uint32_t count = 0;
    std::uint32_t arrived = 0;
    Word sum = 0;
    std::vector<Word> waiting;  ///< continuations released on completion
  };

  Machine& m_;
  std::vector<Team> teams_;
  EventLabel coord_arrive_ = 0;
  EventLabel mv_put_ = 0, mv_get_ = 0, mv_put_done_ = 0, mv_get_done_ = 0;
};

}  // namespace updown::shmem
