#include "abstractions/parallel_graph.hpp"

namespace updown::pgraph {

// Coordinator for one insert_edge: fans out the edge-table insert and the
// two vertex-degree upserts, collects the three acknowledgements, then
// replies to the caller.
struct PgEdgeOp : ThreadState {
  Word reply_cont = IGNRCONT;
  unsigned pending = 3;

  void start(Ctx& ctx) {  // ops: {src, dst, type}
    auto& pg = ctx.machine().service<ParallelGraph>();
    reply_cont = ctx.ccont();
    const Word src = ctx.op(0), dst = ctx.op(1), type = ctx.op(2);
    const Word part = ctx.evw_update_event(ctx.cevnt(), pg.edge_part_done_);
    ctx.charge(2);
    pg.sht_->insert(ctx, pg.edges_, edge_key(src, dst), type, part);
    pg.sht_->upsert_add(ctx, pg.vertices_, src, 1, part);
    pg.sht_->upsert_add(ctx, pg.vertices_, dst, 0, part);  // touch dst, out-degree 0
  }

  void part_done(Ctx& ctx) {
    if (--pending == 0) {
      if (reply_cont != IGNRCONT) ctx.send_event(reply_cont, {});
      ctx.yield_terminate();
    }
  }
};

ParallelGraph& ParallelGraph::install(Machine& m, const Config& cfg) {
  if (m.has_service<ParallelGraph>()) return m.service<ParallelGraph>();
  return m.add_service<ParallelGraph>(m, cfg);
}

ParallelGraph::ParallelGraph(Machine& m, const Config& cfg) : m_(m) {
  sht_ = &sht::Registry::install(m);
  sht::TableConfig v = cfg.vertex;
  v.name = "pga.vertices";
  sht::TableConfig e = cfg.edge;
  e.name = "pga.edges";
  vertices_ = sht_->create(v);
  edges_ = sht_->create(e);
  edge_op_ = m.program().event("pgraph::edge_op", &PgEdgeOp::start);
  edge_part_done_ = m.program().event("pgraph::edge_part_done", &PgEdgeOp::part_done);
}

void ParallelGraph::insert_edge(Ctx& ctx, Word src, Word dst, Word type, Word cont) {
  // Run the coordinator on the calling lane: its fan-out messages are what
  // cross the machine.
  ctx.send_event(evw::make_new(ctx.nwid(), edge_op_), {src, dst, type}, cont);
}

void ParallelGraph::insert_vertex(Ctx& ctx, Word vid, Word cont) {
  sht_->upsert_add(ctx, vertices_, vid, 0, cont);
}

bool ParallelGraph::host_has_edge(Word src, Word dst, Word* type) const {
  return sht_->host_lookup(edges_, edge_key(src, dst), type);
}

bool ParallelGraph::host_has_vertex(Word vid, Word* degree) const {
  return sht_->host_lookup(vertices_, vid, degree);
}

}  // namespace updown::pgraph
