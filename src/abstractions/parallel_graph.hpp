// Parallel Graph abstraction — "Uses two SHT's" (paper Table 5).
//
// A streaming graph built from two scalable hash tables: a vertex table
// (vid -> degree counter, auto-created on first touch) and an edge table
// (packed <src,dst> -> edge type). insert_edge is a three-way composition —
// edge insert plus two vertex upserts — coordinated by a per-op thread that
// replies to the caller once all parts are durable. This is the structure
// the ingestion workflow (WF2 K1) streams records into.
#pragma once

#include "abstractions/sht.hpp"

namespace updown::pgraph {

struct Config {
  sht::TableConfig vertex;  ///< NUM_PGA lanes / VERTEX_EB / VERTEX_BL knobs
  sht::TableConfig edge;
};

constexpr Word edge_key(Word src, Word dst) { return (src << 32) | (dst & 0xFFFFFFFFull); }

class ParallelGraph {
 public:
  static ParallelGraph& install(Machine& m, const Config& cfg = {});
  ParallelGraph(Machine& m, const Config& cfg);

  // ---- Device-side operations (reply {} to cont when durable) ---------------
  void insert_edge(Ctx& ctx, Word src, Word dst, Word type, Word cont);
  void insert_vertex(Ctx& ctx, Word vid, Word cont);

  // ---- Host-side verification -------------------------------------------------
  bool host_has_edge(Word src, Word dst, Word* type = nullptr) const;
  bool host_has_vertex(Word vid, Word* degree = nullptr) const;
  std::uint64_t num_edges() const { return sht_->size(edges_); }
  std::uint64_t num_vertices() const { return sht_->size(vertices_); }

  sht::TableId vertex_table() const { return vertices_; }
  sht::TableId edge_table() const { return edges_; }

 private:
  friend struct PgEdgeOp;

  Machine& m_;
  sht::Registry* sht_;
  sht::TableId vertices_ = 0;
  sht::TableId edges_ = 0;
  EventLabel edge_op_ = 0;
  EventLabel edge_part_done_ = 0;
};

}  // namespace updown::pgraph
