// Scalable Global Sort (paper Table 5) — also the "Bucket Sort" application
// of Table 3 ("N / Y : kvmap" — KVMSR only).
//
// A distributed bucket sort: a KVMSR scatter job emits each value to the
// lane owning its key range (top bits of the value), reducers append into
// lane-local bucket regions, and a map-only pass sorts each bucket in place.
// Concatenating buckets in lane order yields the sorted sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "kvmsr/kvmsr.hpp"

namespace updown::gsort {

struct Result {
  Tick start_tick = 0;
  Tick done_tick = 0;
  Tick duration() const { return done_tick - start_tick; }
};

class GlobalSort {
 public:
  static GlobalSort& install(Machine& m);
  GlobalSort(Machine& m);

  /// Sort `n` words starting at device address `input` whose values are
  /// below 2^key_bits. Runs the machine to completion (host-driven).
  Result sort(Addr input, std::uint64_t n, unsigned key_bits = 64);

  /// Read back the sorted sequence (bucket-major) after sort().
  std::vector<Word> host_read_sorted() const;

 private:
  friend struct SortScatter;
  friend struct SortReduce;
  friend struct SortLocal;

  NetworkId bucket_lane(Word value) const {
    return static_cast<NetworkId>(shift_ >= 64 ? 0 : (value >> shift_)) %
           static_cast<NetworkId>(lanes_);
  }
  Addr bucket_addr(NetworkId lane) const { return region_ + static_cast<Addr>(lane) * cap_ * 8; }

  Machine& m_;
  kvmsr::Library* lib_;
  Addr input_ = 0;
  std::uint64_t n_ = 0;
  unsigned shift_ = 0;
  std::uint64_t lanes_ = 0;
  Addr region_ = 0;
  std::uint64_t cap_ = 0;
  std::vector<std::uint32_t> fill_;  ///< per-lane bucket fill (scratchpad)

  kvmsr::JobId scatter_job_ = 0;
  kvmsr::JobId local_sort_job_ = 0;
  struct Labels {
    EventLabel sc_loaded = 0;
    EventLabel r_written = 0;
    EventLabel ls_loaded = 0;
    EventLabel ls_written = 0;
  } lb_;
};

}  // namespace updown::gsort
