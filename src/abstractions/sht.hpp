// Scalable Hash Table (SHT) — the paper's key data abstraction (Table 5,
// used by the Parallel Graph abstraction, ingestion, and Partial Match).
//
// Keys hash to an owner lane; each lane owns a region of fixed-size buckets
// in global memory, placed node-locally so an owner's probes are local DRAM
// accesses. Lane event atomicity serializes all mutations of a lane's
// buckets — the "fine-grained locking" of the paper costs nothing beyond
// message routing. A lane-resident index (scratchpad-modeled, charged per
// access) locates a key's slot without probing DRAM; entry payloads live in
// DRAM and all data movement is simulated.
//
// Device API (from any event):
//   insert(ctx, table, key, value, cont)  -> reply {status, value}
//       status: 1 inserted new, 2 overwrote existing, 0 table full
//   upsert_add(ctx, table, key, delta, cont) -> reply {status, new_value}
//       arithmetic update (creates the key with value=delta if absent)
//   lookup(ctx, table, key, cont)         -> reply {found, value}
//
// Multiple tables share the registry service; ops carry the table id.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kvmsr/kvmsr.hpp"
#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown::sht {

struct ShtOwner;

using TableId = std::uint32_t;

constexpr Word kFull = 0;
constexpr Word kInserted = 1;
constexpr Word kUpdated = 2;

struct TableConfig {
  std::uint64_t buckets_per_lane = 256;   ///< paper Listing 14's *_BL knob
  std::uint64_t entries_per_bucket = 16;  ///< paper Listing 14's *_EB knob
  kvmsr::LaneSet lanes;                   ///< owner lanes (0 count = whole machine)
  std::string name = "sht";
};

class Registry {
 public:
  static Registry& install(Machine& m);
  explicit Registry(Machine& m);

  /// Create a table; allocates its bucket regions node-locally.
  TableId create(const TableConfig& cfg);

  // ---- Device-side operations ------------------------------------------------
  void insert(Ctx& ctx, TableId table, Word key, Word value, Word cont);
  void upsert_add(Ctx& ctx, TableId table, Word key, Word delta, Word cont);
  void lookup(Ctx& ctx, TableId table, Word key, Word cont);

  // ---- Host-side verification ---------------------------------------------------
  /// Read a key's value straight from simulated memory (test/debug only).
  bool host_lookup(TableId table, Word key, Word* value_out = nullptr) const;
  std::uint64_t size(TableId table) const;
  std::uint64_t capacity(TableId table) const;

  NetworkId owner_lane(TableId table, Word key) const;

 private:
  friend struct ShtOwner;

  struct Slot {
    Addr addr = 0;   ///< DRAM entry address ({key, value} pair)
    Word value = 0;  ///< lane-cached value (authoritative on the owner lane)
  };

  struct Table {
    TableConfig cfg;
    NetworkId first_lane = 0;
    std::uint32_t lane_count = 0;
    Addr base = 0;               ///< bucket storage: 16B entries
    std::uint64_t entries = 0;   ///< current size (all lanes)
    /// Lane-resident slot index: per lane, key -> slot. Models the
    /// scratchpad bucket index; every access is charged.
    std::vector<std::unordered_map<Word, Slot>> index;
    /// Per (lane, bucket) fill counts.
    std::vector<std::vector<std::uint16_t>> fill;
  };

  void owner_insert(Ctx& ctx, ShtOwner& op, TableId table, Word key, Word value,
                    bool arithmetic);
  void owner_lookup(Ctx& ctx, ShtOwner& op, TableId table, Word key);

  Addr bucket_addr(const Table& t, std::uint32_t lane_idx, std::uint64_t bucket) const {
    const std::uint64_t epb = t.cfg.entries_per_bucket;
    return t.base + ((static_cast<std::uint64_t>(lane_idx) * t.cfg.buckets_per_lane + bucket) *
                     epb) *
                        16;
  }

  Machine& m_;
  std::vector<Table> tables_;
  EventLabel op_insert_ = 0, op_upsert_ = 0, op_lookup_ = 0;
  EventLabel ow_written_ = 0, ow_loaded_ = 0;
};

}  // namespace updown::sht
