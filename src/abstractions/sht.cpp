#include "abstractions/sht.hpp"

#include <algorithm>

namespace updown::sht {

// One owner-side thread per operation; created by the op message arriving at
// the key's owner lane, retired when the reply is sent.
struct ShtOwner : ThreadState {
  Word reply_cont = IGNRCONT;
  Word status = 0;
  Word value = 0;

  void i_start(Ctx& ctx) {  // ops: {table, key, value}
    auto& reg = ctx.machine().service<Registry>();
    reply_cont = ctx.ccont();
    reg.owner_insert(ctx, *this, static_cast<TableId>(ctx.op(0)), ctx.op(1), ctx.op(2),
                     /*arithmetic=*/false);
  }

  void u_start(Ctx& ctx) {  // ops: {table, key, delta}
    auto& reg = ctx.machine().service<Registry>();
    reply_cont = ctx.ccont();
    reg.owner_insert(ctx, *this, static_cast<TableId>(ctx.op(0)), ctx.op(1), ctx.op(2),
                     /*arithmetic=*/true);
  }

  void l_start(Ctx& ctx) {  // ops: {table, key}
    auto& reg = ctx.machine().service<Registry>();
    reply_cont = ctx.ccont();
    reg.owner_lookup(ctx, *this, static_cast<TableId>(ctx.op(0)), ctx.op(1));
  }

  void ow_written(Ctx& ctx) {
    if (reply_cont != IGNRCONT) ctx.send_event(reply_cont, {status, value});
    ctx.yield_terminate();
  }

  void ow_loaded(Ctx& ctx) {
    // DRAM entry: [key, value]; a lookup read returns both words.
    ctx.charge(1);
    if (reply_cont != IGNRCONT) ctx.send_event(reply_cont, {1, ctx.op(1)});
    ctx.yield_terminate();
  }
};

Registry& Registry::install(Machine& m) {
  if (m.has_service<Registry>()) return m.service<Registry>();
  return m.add_service<Registry>(m);
}

Registry::Registry(Machine& m) : m_(m) {
  Program& p = m.program();
  op_insert_ = p.event("sht::insert", &ShtOwner::i_start);
  op_upsert_ = p.event("sht::upsert", &ShtOwner::u_start);
  op_lookup_ = p.event("sht::lookup", &ShtOwner::l_start);
  ow_written_ = p.event("sht::ow_written", &ShtOwner::ow_written);
  ow_loaded_ = p.event("sht::ow_loaded", &ShtOwner::ow_loaded);
}

TableId Registry::create(const TableConfig& cfg) {
  Table t;
  t.cfg = cfg;
  t.first_lane = cfg.lanes.first;
  t.lane_count = cfg.lanes.count ? cfg.lanes.count
                                 : static_cast<std::uint32_t>(m_.config().total_lanes());
  const std::uint64_t total =
      static_cast<std::uint64_t>(t.lane_count) * cfg.buckets_per_lane *
      cfg.entries_per_bucket * 16;
  // Node-local bucket placement when the table spans the whole machine (the
  // common case); otherwise spread.
  if (t.first_lane == 0 && t.lane_count == m_.config().total_lanes() &&
      is_pow2(total / m_.config().nodes))
    t.base = m_.memory().dram_malloc(total, 0, m_.config().nodes, total / m_.config().nodes);
  else
    t.base = m_.memory().dram_malloc_spread(total);
  t.index.assign(t.lane_count, {});
  t.fill.assign(t.lane_count, std::vector<std::uint16_t>(cfg.buckets_per_lane, 0));
  tables_.push_back(std::move(t));
  return static_cast<TableId>(tables_.size() - 1);
}

NetworkId Registry::owner_lane(TableId table, Word key) const {
  const Table& t = tables_.at(table);
  return t.first_lane + static_cast<NetworkId>(hash64(key) % t.lane_count);
}

void Registry::insert(Ctx& ctx, TableId table, Word key, Word value, Word cont) {
  ctx.charge(1);
  ctx.send_event(evw::make_new(owner_lane(table, key), op_insert_), {table, key, value}, cont);
}

void Registry::upsert_add(Ctx& ctx, TableId table, Word key, Word delta, Word cont) {
  ctx.charge(1);
  ctx.send_event(evw::make_new(owner_lane(table, key), op_upsert_), {table, key, delta}, cont);
}

void Registry::lookup(Ctx& ctx, TableId table, Word key, Word cont) {
  ctx.charge(1);
  ctx.send_event(evw::make_new(owner_lane(table, key), op_lookup_), {table, key}, cont);
}

void Registry::owner_insert(Ctx& ctx, ShtOwner& op, TableId table, Word key, Word value,
                            bool arithmetic) {
  Table& t = tables_.at(table);
  const std::uint32_t lane_idx = ctx.nwid() - t.first_lane;
  auto& index = t.index[lane_idx];
  ctx.charge(3);  // scratchpad index probe

  auto it = index.find(key);
  if (it != index.end()) {
    // The index caches the value (scratchpad), so arithmetic updates are
    // atomic within this event; the DRAM copy is written back asynchronously.
    Slot& slot = it->second;
    slot.value = arithmetic ? slot.value + value : value;
    op.status = kUpdated;
    op.value = slot.value;
    ctx.charge(2);
    // Write-back is fire-and-forget: the lane-resident cache is authoritative
    // and same-source/same-destination DRAM traffic stays ordered, so a later
    // lookup's read cannot pass this write.
    ctx.send_dram_write(slot.addr + 8, {slot.value});
    if (op.reply_cont != IGNRCONT) ctx.send_event(op.reply_cont, {op.status, op.value});
    ctx.yield_terminate();
    return;
  }

  // New key: claim a slot with bounded linear probing over buckets.
  const std::uint64_t nbuckets = t.cfg.buckets_per_lane;
  std::uint64_t bucket = (hash64(key) >> 24) % nbuckets;
  for (unsigned probe = 0; probe < 4; ++probe, bucket = (bucket + 1) % nbuckets) {
    ctx.charge(1);
    if (t.fill[lane_idx][bucket] < t.cfg.entries_per_bucket) {
      const Addr addr = bucket_addr(t, lane_idx, bucket) +
                        static_cast<Addr>(t.fill[lane_idx][bucket]) * 16;
      t.fill[lane_idx][bucket]++;
      index.emplace(key, Slot{addr, value});
      t.entries++;
      op.status = kInserted;
      op.value = value;
      const Word entry[2] = {key, value};
      ctx.charge(2);
      ctx.send_dram_writev(addr, entry, 2, ctx.evw_update_event(ctx.cevnt(), ow_written_));
      return;
    }
  }
  op.status = kFull;
  op.value = 0;
  if (op.reply_cont != IGNRCONT) ctx.send_event(op.reply_cont, {op.status, op.value});
  ctx.yield_terminate();
}

void Registry::owner_lookup(Ctx& ctx, ShtOwner& op, TableId table, Word key) {
  Table& t = tables_.at(table);
  const std::uint32_t lane_idx = ctx.nwid() - t.first_lane;
  ctx.charge(3);
  auto it = t.index[lane_idx].find(key);
  if (it == t.index[lane_idx].end()) {
    if (op.reply_cont != IGNRCONT) ctx.send_event(op.reply_cont, {0, 0});
    ctx.yield_terminate();
    return;
  }
  ctx.send_dram_read(it->second.addr, 2, ow_loaded_);
}

bool Registry::host_lookup(TableId table, Word key, Word* value_out) const {
  const Table& t = tables_.at(table);
  const std::uint32_t lane_idx =
      static_cast<std::uint32_t>(hash64(key) % t.lane_count);
  auto it = t.index[lane_idx].find(key);
  if (it == t.index[lane_idx].end()) return false;
  if (value_out) *value_out = m_.memory().host_load<Word>(it->second.addr + 8);
  return true;
}

std::uint64_t Registry::size(TableId table) const { return tables_.at(table).entries; }

std::uint64_t Registry::capacity(TableId table) const {
  const Table& t = tables_.at(table);
  return static_cast<std::uint64_t>(t.lane_count) * t.cfg.buckets_per_lane *
         t.cfg.entries_per_bucket;
}

}  // namespace updown::sht
