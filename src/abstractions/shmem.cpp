#include "abstractions/shmem.hpp"

#include <stdexcept>

namespace updown::shmem {

// Coordinator-side arrival: one short-lived thread per arriving member,
// mutating the team state that lives on the coordinator lane.
struct ShmemCoord : ThreadState {
  void arrive(Ctx& ctx) {  // ops: {team, value}
    auto& sh = ctx.machine().service<Shmem>();
    auto& team = sh.teams_.at(static_cast<TeamId>(ctx.op(0)));
    ctx.charge(3);  // scratchpad team-state update
    team.sum += ctx.op(1);
    if (ctx.ccont() != IGNRCONT) team.waiting.push_back(ctx.ccont());
    if (++team.arrived == team.count) {
      const Word sum = team.sum;
      for (Word cont : team.waiting) {
        ctx.charge(1);
        ctx.send_event(cont, {sum});
      }
      team.arrived = 0;
      team.sum = 0;
      team.waiting.clear();
    }
    ctx.yield_terminate();
  }
};

Shmem& Shmem::install(Machine& m) {
  if (m.has_service<Shmem>()) return m.service<Shmem>();
  return m.add_service<Shmem>(m);
}

Shmem::Shmem(Machine& m) : m_(m) {
  coord_arrive_ = m.program().event("shmem::arrive", &ShmemCoord::arrive);
}

TeamId Shmem::create_team(NetworkId coordinator, std::uint32_t count) {
  if (count == 0) throw std::invalid_argument("shmem: empty team");
  Team t;
  t.coordinator = coordinator;
  t.count = count;
  teams_.push_back(std::move(t));
  return static_cast<TeamId>(teams_.size() - 1);
}

void Shmem::put(Ctx& ctx, Addr addr, Word value, Word cont) {
  // Third-party composition: the DRAM acknowledgement goes straight to the
  // caller-chosen continuation — no intermediary thread.
  ctx.send_dram_writev(addr, &value, 1, cont, addr);
}

void Shmem::get(Ctx& ctx, Addr addr, Word cont) {
  ctx.send_dram_read_to(addr, 1, cont, addr);
}

void Shmem::barrier_arrive(Ctx& ctx, TeamId team, Word cont) {
  const Team& t = teams_.at(team);
  ctx.send_event(evw::make_new(t.coordinator, coord_arrive_), {team, 0}, cont);
}

void Shmem::all_reduce_add(Ctx& ctx, TeamId team, Word value, Word cont) {
  const Team& t = teams_.at(team);
  ctx.send_event(evw::make_new(t.coordinator, coord_arrive_), {team, value}, cont);
}

}  // namespace updown::shmem
