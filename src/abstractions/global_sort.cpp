#include "abstractions/global_sort.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace updown::gsort {

// Scatter: one map task per 8-word chunk of the input.
struct SortScatter : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  unsigned expected = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& gs = ctx.machine().service<GlobalSort>();
    job = kvmsr::Library::map_job(ctx);
    const Word chunk = kvmsr::Library::map_key(ctx);
    const Word off = chunk * 8;
    expected = static_cast<unsigned>(std::min<Word>(8, gs.n_ - off));
    ctx.send_dram_read(gs.input_ + off * 8, expected, gs.lb_.sc_loaded);
  }

  void sc_loaded(Ctx& ctx) {
    auto& gs = ctx.machine().service<GlobalSort>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(2);  // bucket computation
      gs.lib_->emit(ctx, job, gs.bucket_lane(ctx.op(i)), ctx.op(i));
    }
    gs.lib_->map_return(ctx, kvmsr_cont);
  }
};

// Reduce: append the value to this lane's bucket region.
struct SortReduce : ThreadState {
  kvmsr::JobId job = 0;

  void kv_reduce(Ctx& ctx) {
    auto& gs = ctx.machine().service<GlobalSort>();
    job = kvmsr::Library::reduce_job(ctx);
    const Word value = kvmsr::Library::reduce_val(ctx);
    std::uint32_t& fill = gs.fill_[ctx.nwid()];
    if (fill >= gs.cap_)
      throw std::runtime_error("global_sort: bucket overflow (skewed keys?)");
    ctx.charge(2);
    ctx.send_dram_write(gs.bucket_addr(ctx.nwid()) + static_cast<Addr>(fill) * 8, {value},
                        gs.lb_.r_written);
    fill++;
  }

  void r_written(Ctx& ctx) {
    ctx.machine().service<GlobalSort>().lib_->reduce_return(ctx, job);
  }
};

// Local phase: one task per lane; read the bucket, sort, write back.
struct SortLocal : kvmsr::MapTask {
  Word lane = 0;
  std::uint32_t count = 0;
  Word loaded = 0;
  unsigned acks = 0, acks_expected = 0;
  std::vector<Word> values;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& gs = ctx.machine().service<GlobalSort>();
    lane = kvmsr::Library::map_key(ctx);
    count = gs.fill_[lane];
    if (count == 0) {
      gs.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    values.assign(count, 0);
    for (Word i = 0; i < count; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, count - i));
      ctx.charge(2);
      ctx.send_dram_read(gs.bucket_addr(static_cast<NetworkId>(lane)) + i * 8, n,
                         gs.lb_.ls_loaded);
    }
  }

  void ls_loaded(Ctx& ctx) {
    auto& gs = ctx.machine().service<GlobalSort>();
    const Word base = (ctx.ccont() - gs.bucket_addr(static_cast<NetworkId>(lane))) / 8;
    for (unsigned i = 0; i < ctx.nops(); ++i) values[base + i] = ctx.op(i);
    loaded += ctx.nops();
    if (loaded < count) return;

    std::sort(values.begin(), values.end());
    // n log n comparison cost for the lane-local sort.
    ctx.charge(static_cast<std::uint64_t>(count) *
               (std::bit_width(static_cast<std::uint64_t>(count)) + 1));
    acks_expected = static_cast<unsigned>(ceil_div(count, 8));
    for (Word i = 0; i < count; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, count - i));
      ctx.send_dram_writev(gs.bucket_addr(static_cast<NetworkId>(lane)) + i * 8,
                           values.data() + i, n,
                           ctx.evw_update_event(ctx.cevnt(), gs.lb_.ls_written));
    }
  }

  void ls_written(Ctx& ctx) {
    if (++acks == acks_expected)
      ctx.machine().service<GlobalSort>().lib_->map_return(ctx, kvmsr_cont);
  }
};

GlobalSort& GlobalSort::install(Machine& m) {
  if (m.has_service<GlobalSort>()) return m.service<GlobalSort>();
  return m.add_service<GlobalSort>(m);
}

GlobalSort::GlobalSort(Machine& m) : m_(m) {
  lib_ = &kvmsr::Library::install(m);
  Program& p = m.program();
  lb_.sc_loaded = p.event("gsort::sc_loaded", &SortScatter::sc_loaded);
  lb_.r_written = p.event("gsort::r_written", &SortReduce::r_written);
  lb_.ls_loaded = p.event("gsort::ls_loaded", &SortLocal::ls_loaded);
  lb_.ls_written = p.event("gsort::ls_written", &SortLocal::ls_written);

  kvmsr::JobSpec scatter;
  scatter.kv_map = p.event("gsort::kv_map", &SortScatter::kv_map);
  scatter.kv_reduce = p.event("gsort::kv_reduce", &SortReduce::kv_reduce);
  // The emit key IS the destination lane: identity binding.
  scatter.reduce_binding = [](Word key, NetworkId first, std::uint32_t count) {
    return first + static_cast<NetworkId>(key % count);
  };
  scatter.name = "gsort.scatter";
  scatter_job_ = lib_->add_job(scatter);

  local_sort_job_ = kvmsr::do_all(*lib_, p.event("gsort::local", &SortLocal::kv_map));
  lib_->spec(local_sort_job_).name = "gsort.local";
}

Result GlobalSort::sort(Addr input, std::uint64_t n, unsigned key_bits) {
  input_ = input;
  n_ = n;
  lanes_ = m_.config().total_lanes();
  const unsigned lane_bits = log2_exact(next_pow2(lanes_));
  shift_ = key_bits > lane_bits ? key_bits - lane_bits : 0;
  cap_ = std::max<std::uint64_t>(64, next_pow2(8 * n / lanes_ + 8));
  const std::uint64_t total = lanes_ * cap_ * 8;
  if (region_ == 0) region_ = m_.memory().dram_malloc_spread(total);
  fill_.assign(lanes_, 0);

  const kvmsr::JobState& st = lib_->run_to_completion(scatter_job_, 0, ceil_div(n, 8));
  const Tick t0 = st.start_tick;
  const kvmsr::JobState& st2 = lib_->run_to_completion(local_sort_job_, 0, lanes_);
  Result r;
  r.start_tick = t0;
  r.done_tick = st2.done_tick;
  return r;
}

std::vector<Word> GlobalSort::host_read_sorted() const {
  std::vector<Word> out;
  out.reserve(n_);
  for (std::uint64_t l = 0; l < lanes_; ++l)
    for (std::uint32_t i = 0; i < fill_[l]; ++i)
      out.push_back(m_.memory().host_load<Word>(bucket_addr(static_cast<NetworkId>(l)) + i * 8));
  return out;
}

}  // namespace updown::gsort
