#include "baseline/baseline.hpp"

#include <algorithm>
#include <queue>

#include "common/bits.hpp"

namespace updown::baseline {

std::vector<double> pagerank(const Graph& g, unsigned iterations, double damping) {
  const VertexId n = g.num_vertices();
  std::vector<double> pr(n, n ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> acc(n);
  for (unsigned it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      const std::uint64_t d = g.degree(u);
      if (d == 0) continue;
      const double share = pr[u] / static_cast<double>(d);
      for (VertexId v : g.neighbors_of(u)) acc[v] += share;
    }
    for (VertexId v = 0; v < n; ++v)
      pr[v] = (1.0 - damping) / static_cast<double>(n) + damping * acc[v];
  }
  return pr;
}

BfsResult bfs(const Graph& g, VertexId root) {
  BfsResult r;
  r.dist.assign(g.num_vertices(), ~0ull);
  r.parent.assign(g.num_vertices(), ~0ull);
  if (root >= g.num_vertices()) return r;
  r.dist[root] = 0;
  r.parent[root] = root;
  std::vector<VertexId> frontier{root};
  while (!frontier.empty()) {
    ++r.rounds;
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (VertexId v : g.neighbors_of(u)) {
        ++r.traversed_edges;
        if (r.dist[v] == ~0ull) {
          r.dist[v] = r.dist[u] + 1;
          r.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return r;
}

std::uint64_t triangle_count(const Graph& g) {
  // Count ordered triples x > y with edge (x,y), then intersect N(x), N(y)
  // restricted to z < y: every triangle x > y > z is counted exactly once.
  std::uint64_t count = 0;
  for (VertexId x = 0; x < g.num_vertices(); ++x) {
    const auto nx = g.neighbors_of(x);
    for (VertexId y : nx) {
      if (y >= x) break;  // adjacency sorted ascending
      const auto ny = g.neighbors_of(y);
      // Merge-intersect the prefixes with ids < y.
      std::size_t i = 0, j = 0;
      while (i < nx.size() && j < ny.size() && nx[i] < y && ny[j] < y) {
        if (nx[i] < ny[j])
          ++i;
        else if (nx[i] > ny[j])
          ++j;
        else {
          ++count;
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

std::vector<std::uint64_t> bucket_sort(std::vector<std::uint64_t> values,
                                       unsigned key_bits, std::uint64_t buckets) {
  const unsigned bucket_bits = log2_exact(next_pow2(buckets));
  const unsigned shift = key_bits > bucket_bits ? key_bits - bucket_bits : 0;
  std::vector<std::vector<std::uint64_t>> bins(buckets ? buckets : 1);
  for (std::uint64_t v : values)
    bins[(shift >= 64 ? 0 : v >> shift) % bins.size()].push_back(v);
  std::vector<std::uint64_t> out;
  out.reserve(values.size());
  for (auto& bin : bins) {
    std::sort(bin.begin(), bin.end());
    out.insert(out.end(), bin.begin(), bin.end());
  }
  return out;
}

}  // namespace updown::baseline
