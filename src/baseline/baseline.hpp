// CPU reference implementations ("baseline comparator"), used as correctness
// oracles for the simulated UpDown applications and as the conventional-CPU
// side of benchmark comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace updown::baseline {

/// Push-style PageRank: `iterations` synchronous sweeps with damping d.
/// pr'[v] = (1-d)/N + d * sum_{u->v} pr[u]/outdeg(u).
/// Dangling vertices (outdeg 0) contribute nothing, matching the simulated
/// push implementation.
std::vector<double> pagerank(const Graph& g, unsigned iterations, double damping = 0.85);

struct BfsResult {
  std::vector<std::uint64_t> dist;    ///< ~0ull if unreachable
  std::vector<VertexId> parent;       ///< ~0ull if none
  std::uint64_t traversed_edges = 0;
  std::uint64_t rounds = 0;
};

BfsResult bfs(const Graph& g, VertexId root);

/// Triangle count on a directed-by-id orientation: counts each triangle once
/// (requires symmetric input, like the Graph Challenge datasets).
std::uint64_t triangle_count(const Graph& g);

/// CPU bucket sort mirroring the GlobalSort abstraction: distribute each
/// value (below 2^key_bits) to bucket (value >> shift) % buckets with
/// shift = key_bits - log2(next_pow2(buckets)), sort each bucket, and
/// concatenate in bucket order — the bucket-major readback order of
/// gsort::GlobalSort::host_read_sorted() with `buckets` = total lanes.
std::vector<std::uint64_t> bucket_sort(std::vector<std::uint64_t> values,
                                       unsigned key_bits, std::uint64_t buckets);

}  // namespace updown::baseline
