// Exact Match (paper Table 3: "Exact Match — doAll using kvmap"; AGILE WF2).
//
// Given a batch of query triples <src, dst, type>, check each against the
// ingested Parallel Graph: a do_all-style KVMSR maps one task per query; the
// task looks the edge up in the edge SHT and tests the type. Matches
// accumulate in per-lane counters; the host reads the total after the run.
#pragma once

#include <cstdint>
#include <vector>

#include "abstractions/parallel_graph.hpp"
#include "kvmsr/kvmsr.hpp"
#include "tform/stream_gen.hpp"

namespace updown::ematch {

struct Result {
  std::uint64_t queries = 0;
  std::uint64_t matches = 0;
  Tick start_tick = 0;
  Tick done_tick = 0;
  Tick duration() const { return done_tick - start_tick; }
};

class App {
 public:
  /// The graph must already be installed (e.g. by an ingestion run).
  static App& install(Machine& m);
  explicit App(Machine& m);

  /// Run the query batch to completion (host-driven do_all over queries).
  Result run(const std::vector<tform::EdgeRecord>& queries);

  /// Host-side oracle.
  std::uint64_t oracle_matches(const std::vector<tform::EdgeRecord>& queries) const;

 private:
  friend struct EmQuery;

  Machine& m_;
  kvmsr::Library* lib_;
  pgraph::ParallelGraph* pg_;
  kvmsr::JobId job_ = 0;
  EventLabel q_looked_ = 0;
  const std::vector<tform::EdgeRecord>* queries_ = nullptr;
  std::vector<std::uint64_t> matches_by_lane_;  ///< scratchpad counters
};

}  // namespace updown::ematch
