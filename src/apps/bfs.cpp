#include "apps/bfs.hpp"

#include <algorithm>
#include <stdexcept>

namespace updown::bfs {

// ---------------------------------------------------------------------------
// Accelerator master: the kv_map task of a BFS round (one per accelerator).
// Fans a scan subtask out to each lane of its accelerator and retires the
// map task when all lanes report back — the paper's local master-worker.
// ---------------------------------------------------------------------------
struct BfsAccelMaster : kvmsr::MapTask {
  std::uint32_t pending = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<App>();
    const Word job = kvmsr::Library::map_job(ctx);
    const std::uint32_t lanes = ctx.machine().config().lanes_per_accel;
    pending = lanes;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      ctx.charge(1);
      ctx.send_event(ctx.evw_new(ctx.nwid() + l, app.scan_start_), {job},
                     ctx.evw_update_event(ctx.cevnt(), app.lb_.m_scan_done));
    }
  }

  void m_scan_done(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    if (--pending == 0) app.lib_->map_return(ctx, kvmsr_cont);
  }
};

// ---------------------------------------------------------------------------
// Per-lane scan: read this lane's slice of the current frontier and spawn
// one expand task per frontier vertex (all on this lane).
// ---------------------------------------------------------------------------
struct BfsScan : ThreadState {
  Word job = 0;
  Word done_cont = IGNRCONT;  ///< master's continuation (from s_start)
  std::uint32_t count = 0;
  std::uint32_t spawned = 0;
  std::uint32_t expands_done = 0;

  void s_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    job = ctx.op(0);
    done_cont = ctx.ccont();
    ctx.charge(1);  // scratchpad slice-count load
    count = app.cur_count_[ctx.nwid()];
    if (count == 0) {
      ctx.send_event(done_cont, {});
      ctx.yield_terminate();
      return;
    }
    const Addr slice = app.slice_addr(app.cur_buf_, ctx.nwid());
    for (std::uint32_t i = 0; i < count; i += 8) {
      const unsigned n = std::min<std::uint32_t>(8, count - i);
      ctx.charge(2);
      ctx.send_dram_read(slice + i * 8, n, app.lb_.s_slice_loaded);
    }
  }

  void s_slice_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      ctx.send_event(ctx.evw_new(ctx.nwid(), app.expand_start_), {ctx.op(i), job},
                     ctx.evw_update_event(ctx.cevnt(), app.lb_.s_expand_done));
      ++spawned;
    }
    maybe_finish(ctx);
  }

  void s_expand_done(Ctx& ctx) {
    ++expands_done;
    maybe_finish(ctx);
  }

 private:
  void maybe_finish(Ctx& ctx) {
    if (spawned == count && expands_done == count) {
      ctx.send_event(done_cont, {});
      ctx.yield_terminate();
    }
  }
};

// ---------------------------------------------------------------------------
// Expand one frontier vertex: read its record, stream its neighbor list, and
// emit <neighbor, dist, parent> tuples into the intermediate map.
// ---------------------------------------------------------------------------
struct BfsExpand : ThreadState {
  /// Above this degree an expand fans chunk subtasks out to other lanes: the
  /// equivalent of the artifact's max-degree-4096 split for BFS, realized as
  /// dynamic parallelism instead of a preprocessing transform. Without it a
  /// hub's emit loop serializes one lane for tens of thousands of cycles.
  static constexpr Word kSplitDegree = 256;

  Word u = 0, job = 0;
  Word degree = 0;
  Word loaded = 0;
  Word chunks_pending = 0;
  Word done_cont = IGNRCONT;

  void e_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    u = ctx.op(0);
    job = ctx.op(1);
    done_cont = ctx.ccont();
    ctx.send_dram_read(app.dg_.vertex_addr(u), 8, app.lb_.e_rec_loaded);
  }

  void e_rec_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    degree = ctx.op(DeviceGraph::kDegree);
    const Word nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      ctx.send_event(done_cont, {});
      ctx.yield_terminate();
      return;
    }
    if (degree > kSplitDegree) {
      // Fan the adjacency list out in kSplitDegree chunks, striped across the
      // machine's lanes; each chunk task streams and emits from its own lane.
      const std::uint64_t lanes = ctx.machine().config().total_lanes();
      Word i = 0;
      for (Word off = 0; off < degree; off += kSplitDegree, ++i) {
        const Word len = std::min<Word>(kSplitDegree, degree - off);
        const NetworkId lane = static_cast<NetworkId>((ctx.nwid() + 1 + i * 97) % lanes);
        ctx.charge(2);
        ctx.send_event(ctx.evw_new(lane, app.expand_chunk_), {nbr_ptr + off * 8, len, u, job},
                       ctx.evw_update_event(ctx.cevnt(), app.lb_.e_chunk_done));
        ++chunks_pending;
      }
      return;
    }
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, app.lb_.e_nbrs_loaded);
    }
  }

  void e_nbrs_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      app.lib_->emit2(ctx, static_cast<kvmsr::JobId>(job), ctx.op(i), app.round_ + 1, u);
    }
    loaded += ctx.nops();
    if (loaded == degree) {
      // This explorer is the only emitter the runtime sees retire on this
      // lane; ship its partial buffers now instead of at the next poll.
      app.lib_->flush_hint(ctx, static_cast<kvmsr::JobId>(job));
      ctx.send_event(done_cont, {});
      ctx.yield_terminate();
    }
  }

  void e_chunk_done(Ctx& ctx) {
    if (--chunks_pending == 0) {
      ctx.send_event(done_cont, {});
      ctx.yield_terminate();
    }
  }
};

/// One chunk of a fanned-out hub expansion: stream <= kSplitDegree neighbors
/// from this lane and emit them.
struct BfsExpandChunk : ThreadState {
  Word base = 0, len = 0, u = 0, job = 0;
  Word loaded = 0;
  Word done_cont = IGNRCONT;

  void c_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    base = ctx.op(0);
    len = ctx.op(1);
    u = ctx.op(2);
    job = ctx.op(3);
    done_cont = ctx.ccont();
    for (Word i = 0; i < len; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, len - i));
      ctx.charge(2);
      ctx.send_dram_read(base + i * 8, n, app.lb_.c_nbrs_loaded);
    }
  }

  void c_nbrs_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      app.lib_->emit2(ctx, static_cast<kvmsr::JobId>(job), ctx.op(i), app.round_ + 1, u);
    }
    loaded += ctx.nops();
    if (loaded == len) {
      app.lib_->flush_hint(ctx, static_cast<kvmsr::JobId>(job));
      ctx.send_event(done_cont, {});
      ctx.yield_terminate();
    }
  }
};

// ---------------------------------------------------------------------------
// Reduce: hash-bound test-and-set + frontier append. Writes are acked so the
// next round cannot observe a partially written slice or record.
// ---------------------------------------------------------------------------
struct BfsReduce : ThreadState {
  Word job = 0;
  unsigned acks = 0;

  void kv_reduce(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    auto& lib = *app.lib_;
    job = kvmsr::Library::reduce_job(ctx);
    const Word v = kvmsr::Library::reduce_key(ctx);
    const Word dist = kvmsr::Library::reduce_val(ctx, 0);
    const Word parent = kvmsr::Library::reduce_val(ctx, 1);

    ctx.charge(2);  // scratchpad visited-set test-and-set
    if (!app.visited_[ctx.nwid()].insert(v).second) {
      lib.reduce_return(ctx, static_cast<kvmsr::JobId>(job));
      return;
    }
    app.added_++;
    std::uint32_t& fill = app.nxt_count_[ctx.nwid()];
    if (fill >= app.slice_cap_)
      throw std::runtime_error("bfs: next-frontier slice overflow; raise Options::slice_cap");
    const Addr entry = app.slice_addr(app.cur_buf_ ^ 1, ctx.nwid()) + fill * 8;
    fill++;
    ctx.charge(2);  // slice fill counter update
    ctx.send_dram_write(entry, {v}, app.lb_.r_written);
    const Word dp[2] = {dist, parent};
    ctx.send_dram_writev(app.dg_.field_addr(v, DeviceGraph::kDist), dp, 2,
                         ctx.evw_update_event(ctx.cevnt(), app.lb_.r_written));
  }

  void r_written(Ctx& ctx) {
    if (++acks == 2)
      ctx.machine().user<App>().lib_->reduce_return(ctx, static_cast<kvmsr::JobId>(job));
  }
};

// ---------------------------------------------------------------------------
// Driver: one KVMSR invocation per round, chained by continuation.
// ---------------------------------------------------------------------------
struct BfsDriver : ThreadState {
  void d_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    app.start_tick_ = ctx.start_time();
    ctx.log("[bfs] BFS Start");
    launch_round(ctx);
  }

  void d_round_done(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    ctx.trace_phase_end("bfs.round");
    app.traversed_edges_ += ctx.op(0);
    app.rounds_++;
    ctx.log("[bfs] [Itera %llu]: add queue %llu traversed edges %llu",
            static_cast<unsigned long long>(app.round_),
            static_cast<unsigned long long>(app.added_),
            static_cast<unsigned long long>(ctx.op(0)));
    if (app.added_ == 0) {
      app.done_tick_ = ctx.now();
      app.finished_ = true;
      ctx.log("[bfs] BFS finish");
      ctx.yield_terminate();
      return;
    }
    // Swap frontier roles for the next round.
    std::swap(app.cur_count_, app.nxt_count_);
    std::fill(app.nxt_count_.begin(), app.nxt_count_.end(), 0);
    app.added_ = 0;
    app.cur_buf_ ^= 1;
    app.round_++;
    launch_round(ctx);
  }

 private:
  void launch_round(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    // udtrace superstep span: one "bfs.round" per frontier expansion.
    ctx.trace_phase_begin("bfs.round");
    const std::uint64_t accels =
        static_cast<std::uint64_t>(ctx.machine().config().nodes) *
        ctx.machine().config().accels_per_node;
    app.lib_->launch(ctx, app.job_, 0, accels,
                     ctx.evw_update_event(ctx.cevnt(), app.lb_.d_round_done));
  }
};

// ---------------------------------------------------------------------------

App& App::install(Machine& m, const DeviceGraph& dg, const Options& opt) {
  return m.emplace_user<App>(m, dg, opt);
}

App::App(Machine& m, const DeviceGraph& dg, const Options& opt) : m_(m), dg_(dg), opt_(opt) {
  lib_ = &kvmsr::Library::install(m);
  Program& p = m.program();

  lb_.d_round_done = p.event("bfs::d_round_done", &BfsDriver::d_round_done);
  lb_.m_scan_done = p.event("bfs::m_scan_done", &BfsAccelMaster::m_scan_done);
  scan_start_ = p.event("bfs::s_start", &BfsScan::s_start);
  lb_.s_slice_loaded = p.event("bfs::s_slice_loaded", &BfsScan::s_slice_loaded);
  lb_.s_expand_done = p.event("bfs::s_expand_done", &BfsScan::s_expand_done);
  expand_start_ = p.event("bfs::e_start", &BfsExpand::e_start);
  lb_.e_rec_loaded = p.event("bfs::e_rec_loaded", &BfsExpand::e_rec_loaded);
  lb_.e_nbrs_loaded = p.event("bfs::e_nbrs_loaded", &BfsExpand::e_nbrs_loaded);
  lb_.e_chunk_done = p.event("bfs::e_chunk_done", &BfsExpand::e_chunk_done);
  expand_chunk_ = p.event("bfs::c_start", &BfsExpandChunk::c_start);
  lb_.c_nbrs_loaded = p.event("bfs::c_nbrs_loaded", &BfsExpandChunk::c_nbrs_loaded);
  lb_.r_written = p.event("bfs::r_written", &BfsReduce::r_written);
  driver_start_ = p.event("bfs::d_start", &BfsDriver::d_start);

  const std::uint64_t lanes = m.config().total_lanes();
  slice_cap_ = opt.slice_cap;
  if (slice_cap_ == 0) {
    // Headroom over the uniform expectation n/lanes; hash spreads vertices
    // evenly, 8x absorbs the tail at our scales.
    slice_cap_ = std::max<std::uint64_t>(64, next_pow2(8 * dg.num_vertices / lanes + 1));
  }
  slice_cap_ = next_pow2(slice_cap_);

  // Per-node-local frontier: contiguous block per node (the paper's
  // DRAMmalloc(size, 0, NRnodes, size/NRnodes) idiom). The Figure 12 sweep
  // overrides the node count.
  const std::uint32_t fr_nodes =
      opt.frontier_mem_nodes ? opt.frontier_mem_nodes : m.config().nodes;
  const std::uint64_t total = lanes * slice_cap_ * 8;
  for (auto& base : frontier_)
    base = m.memory().dram_malloc(total, 0, fr_nodes, total / fr_nodes);

  cur_count_.assign(lanes, 0);
  nxt_count_.assign(lanes, 0);
  visited_.assign(lanes, {});

  kvmsr::JobSpec spec;
  spec.kv_map = p.event("bfs::kv_map", &BfsAccelMaster::kv_map);
  spec.kv_reduce = p.event("bfs::kv_reduce", &BfsReduce::kv_reduce);
  spec.map_binding = kvmsr::MapBinding::kDirect;
  const std::uint32_t lpa = m.config().lanes_per_accel;
  spec.map_home = [lpa](Word accel) { return static_cast<NetworkId>(accel * lpa); };
  spec.name = "bfs.round";
  job_ = lib_->add_job(spec);

  // Seed the frontier with the root on its hash-owner lane.
  if (opt.root >= dg.num_vertices) throw std::invalid_argument("bfs: root out of range");
  const NetworkId seed_lane = static_cast<NetworkId>(hash64(opt.root) % lanes);
  cur_count_[seed_lane] = 1;
  m.memory().host_store<Word>(slice_addr(0, seed_lane), opt.root);
  visited_[seed_lane].insert(opt.root);
  m.memory().host_store<Word>(dg_.field_addr(opt.root, DeviceGraph::kDist), 0);
  m.memory().host_store<Word>(dg_.field_addr(opt.root, DeviceGraph::kParent), opt.root);
}

Result App::run() {
  m_.send_from_host(evw::make_new(0, driver_start_), {});
  m_.run();
  if (!finished_) throw std::runtime_error("bfs: driver did not finish");

  Result r;
  r.start_tick = start_tick_;
  r.done_tick = done_tick_;
  r.traversed_edges = traversed_edges_;
  r.rounds = rounds_;
  r.dist.resize(dg_.num_vertices);
  r.parent.resize(dg_.num_vertices);
  for (VertexId v = 0; v < dg_.num_vertices; ++v) {
    r.dist[v] = m_.memory().host_load<Word>(dg_.field_addr(v, DeviceGraph::kDist));
    r.parent[v] = m_.memory().host_load<Word>(dg_.field_addr(v, DeviceGraph::kParent));
  }
  return r;
}

}  // namespace updown::bfs
