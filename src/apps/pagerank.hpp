// Push-based PageRank on KVMSR (paper Section 4.1, Listing 3).
//
// One kv_map task per (sub-)vertex reads its vertex record, the owner's
// current rank, and its neighbor list in chunks of eight, then emits a
// <target, contribution> tuple per edge — vertex parallelism on the map side,
// edge parallelism on the reduce side. kv_reduce accumulates contributions
// into a per-vertex accumulator array through the combining cache (the
// paper's software fetch&add). An apply phase (a second, map-only KVMSR job)
// folds the accumulators into ranks with the damping formula and zeroes them
// for the next iteration.
//
// The graph is vertex-split to a maximum degree (default 512, the paper's PR
// setting) "yet yields the correct result for the original graph": sub-vertex
// s pushes rank[owner(s)] / total_degree(owner(s)) along its slice of the
// owner's edges, and reductions key on original vertex ids.
//
// Iterations are chained on-device by a driver thread using KVMSR launch
// continuations — the host only fires the driver and reads results after
// quiescence.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/layout.hpp"
#include "kvmsr/combining_cache.hpp"
#include "kvmsr/kvmsr.hpp"

namespace updown::pr {

struct Options {
  unsigned iterations = 5;
  double damping = 0.85;
  /// Computation binding for the propagate map phase (Block default).
  kvmsr::MapBinding map_binding = kvmsr::MapBinding::kBlock;
  /// Shuffle coalescing factor for the propagate job (1 = off; see
  /// kvmsr::JobSpec::coalesce_tuples, overridable via UD_COALESCE). The
  /// propagate job declares kSumF64 map-side combining, so whenever the job
  /// coalesces, same-slot contributions sharing a source lane merge in the
  /// emit buffer; ranks then differ from the uncoalesced run only by f64
  /// summation order.
  std::uint32_t coalesce_tuples = 1;
  /// Placement of the rank/accumulator value arrays.
  GraphPlacement value_placement{};
};

struct Result {
  std::vector<double> rank;  ///< per original vertex
  Tick start_tick = 0;
  Tick done_tick = 0;
  /// Total emitted tuples over all iterations. With map-side combining this
  /// counts post-combine tuples (reduce tasks), not raw edge traversals, so
  /// gups() is not comparable between combining-on and combining-off runs.
  std::uint64_t edge_updates = 0;
  unsigned iterations = 0;

  Tick duration() const { return done_tick - start_tick; }
  double seconds() const { return ticks_to_seconds(duration()); }
  /// Giga-updates per second, the paper's Figure 9 (left) metric.
  double gups() const {
    return seconds() > 0 ? static_cast<double>(edge_updates) / seconds() / 1e9 : 0.0;
  }
};

/// PageRank application instance; install at most one per Machine.
class App {
 public:
  /// `dg` must be the device image of `sg` (upload_split_graph). The split
  /// graph supplies the accumulator-slot numbering that load-balances
  /// reductions into high-in-degree vertices.
  static App& install(Machine& m, const DeviceGraph& dg, const SplitGraph& sg,
                      const Options& opt = {});

  App(Machine& m, const DeviceGraph& dg, const SplitGraph& sg, const Options& opt);

  /// Fire the driver, simulate to completion, read back ranks.
  Result run();

  // -- introspection (used by benches) --
  const kvmsr::JobState& propagate_state() const { return lib_->state(propagate_job_); }

 private:
  friend struct PrDriver;
  friend struct PrMapTask;
  friend struct PrReduce;
  friend struct PrApply;

  Machine& m_;
  kvmsr::Library* lib_;
  kvmsr::CombiningCache* cc_;
  DeviceGraph dg_;
  Options opt_;

  Addr rank_base_ = 0;   ///< f64 rank per original vertex
  Addr acc_base_ = 0;    ///< f64 accumulator per slot (num_slots cells)
  Addr slot_tab_ = 0;    ///< slot_offset table, num_original + 1 words
  std::uint64_t num_slots_ = 0;

  kvmsr::JobId propagate_job_ = 0;
  kvmsr::JobId apply_job_ = 0;
  EventLabel driver_start_ = 0;
  struct Labels {
    EventLabel v_loaded = 0, r_loaded = 0, n_loaded = 0;
    EventLabel o_loaded = 0, a_loaded = 0, a_written = 0;
    EventLabel d_prop_done = 0, d_apply_done = 0;
  } lb_;

  // Result fields written by the driver thread.
  Tick start_tick_ = 0;
  Tick done_tick_ = 0;
  std::uint64_t edge_updates_ = 0;
  bool finished_ = false;
};

}  // namespace updown::pr
