// Push-based Breadth-First Search on KVMSR (paper Section 4.2).
//
// Departures from PageRank's flat data parallelism, exactly as the paper
// describes:
//
//   - The frontier is a per-accelerator local structure: one contiguous
//     region per node (DRAMmalloc with block_size = size/NRnodes), split into
//     per-lane slices. Reading the current frontier and writing the next one
//     is node-local.
//   - Each BFS round is one KVMSR invocation whose kv_map tasks are bound one
//     per accelerator (Direct binding to the accelerator's first lane). The
//     accelerator master fans out scan subtasks to its lanes with plain
//     UDWeave messages — the paper's local master-worker scheme.
//   - Scan subtasks spawn one expand task per frontier vertex; expands read
//     the vertex record and neighbor list and emit <neighbor, dist, parent>
//     tuples. kv_reduce tasks land on hash(vertex) lanes, test-and-set a
//     lane-owned visited set (scratchpad), write dist/parent into the vertex
//     record, and append fresh vertices to their own lane's next-frontier
//     slice.
//   - A driver thread chains rounds via KVMSR continuations and terminates
//     when a round adds nothing ("add queue 0" in the paper's log).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/layout.hpp"
#include "kvmsr/kvmsr.hpp"

namespace updown::bfs {

struct Options {
  VertexId root = 0;
  /// Next-frontier slice capacity per lane, entries (0 = auto from n/lanes).
  std::uint64_t slice_cap = 0;
  /// Placement override for the frontier (0 nr_nodes = per-node local, the
  /// paper's default; used by the Figure 12 placement sweep).
  std::uint32_t frontier_mem_nodes = 0;
};

struct Result {
  std::vector<std::uint64_t> dist;  ///< kInfDist if unreachable
  std::vector<VertexId> parent;     ///< kNoParent if none
  std::uint64_t traversed_edges = 0;
  std::uint64_t rounds = 0;
  Tick start_tick = 0;
  Tick done_tick = 0;

  Tick duration() const { return done_tick - start_tick; }
  double seconds() const { return ticks_to_seconds(duration()); }
  /// Giga-traversed-edges per second, the paper's Figure 9 (center) metric.
  double gteps() const {
    return seconds() > 0 ? static_cast<double>(traversed_edges) / seconds() / 1e9 : 0.0;
  }
};

class App {
 public:
  static App& install(Machine& m, const DeviceGraph& dg, const Options& opt = {});

  App(Machine& m, const DeviceGraph& dg, const Options& opt);

  Result run();

  const kvmsr::JobState& round_state() const { return lib_->state(job_); }

 private:
  friend struct BfsDriver;
  friend struct BfsAccelMaster;
  friend struct BfsScan;
  friend struct BfsExpand;
  friend struct BfsExpandChunk;
  friend struct BfsReduce;

  Addr slice_addr(unsigned buf, NetworkId lane) const {
    return frontier_[buf] + static_cast<Addr>(lane) * slice_cap_ * 8;
  }

  Machine& m_;
  kvmsr::Library* lib_;
  DeviceGraph dg_;
  Options opt_;

  Addr frontier_[2] = {0, 0};
  std::uint64_t slice_cap_ = 0;
  unsigned cur_buf_ = 0;
  std::uint64_t round_ = 0;

  // Lane-local scratchpad state, modeled host-side with charged access costs:
  // frontier slice fill counts and the visited test-and-set sets.
  std::vector<std::uint32_t> cur_count_;
  std::vector<std::uint32_t> nxt_count_;
  std::vector<std::unordered_set<VertexId>> visited_;
  // Bumped by reduce tasks on many lanes (= many shards); read only after
  // the round's gather, which is ordered by a happens-before message chain.
  std::atomic<std::uint64_t> added_{0};

  kvmsr::JobId job_ = 0;
  EventLabel driver_start_ = 0;
  EventLabel scan_start_ = 0;
  EventLabel expand_start_ = 0;
  EventLabel expand_chunk_ = 0;
  struct Labels {
    EventLabel d_round_done = 0;
    EventLabel m_scan_done = 0;
    EventLabel s_slice_loaded = 0;
    EventLabel s_expand_done = 0;
    EventLabel e_rec_loaded = 0;
    EventLabel e_nbrs_loaded = 0;
    EventLabel e_chunk_done = 0;
    EventLabel c_nbrs_loaded = 0;
    EventLabel r_written = 0;
  } lb_;

  // Result fields filled by the driver.
  Tick start_tick_ = 0;
  Tick done_tick_ = 0;
  std::uint64_t traversed_edges_ = 0;
  std::uint64_t rounds_ = 0;
  bool finished_ = false;
};

}  // namespace updown::bfs
