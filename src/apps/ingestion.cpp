#include "apps/ingestion.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tform/block_parse.hpp"
#include "tform/stream_gen.hpp"

namespace updown::ingest {

// One kv_map task per block: fetch [block_start, block_end + one record) from
// DRAM, find the first record boundary, run the transducer over every record
// starting in the block, emit a tuple per record.
struct IngestMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  tform::BlockWindow w;
  std::vector<std::uint8_t> buf;
  std::uint64_t arrived = 0, expected = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<App>();
    job = kvmsr::Library::map_job(ctx);
    const Word block = kvmsr::Library::map_key(ctx);
    w = tform::BlockWindow::of(block, app.opt_.block_bytes, app.data_bytes_);
    buf.assign(w.bytes(), 0);
    for (std::uint64_t off = w.read_begin; off < w.read_end; off += 64) {
      const unsigned words =
          static_cast<unsigned>(std::min<std::uint64_t>(8, (w.read_end - off) / 8));
      ctx.charge(2);
      ctx.send_dram_read(app.data_base_ + off, words, app.lb_.m_chunk);
      ++expected;
    }
  }

  void m_chunk(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    const std::uint64_t off = ctx.ccont() - app.data_base_ - w.read_begin;
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      const Word word = ctx.op(i);
      std::memcpy(buf.data() + off + i * 8, &word, 8);
    }
    ctx.charge(ctx.nops());
    if (++arrived == expected) parse(ctx);
  }

 private:
  void parse(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    tform::parse_block(ctx, app.fst_, buf.data(), w, app.data_bytes_,
                       [&](const std::vector<Word>& fields) {
                         if (fields.size() != 3)
                           throw std::runtime_error("ingest: malformed record");
                         ctx.charge(1);
                         app.lib_->emit2(ctx, job, fields[0], fields[1], fields[2]);
                       });
    app.lib_->map_return(ctx, kvmsr_cont);
  }
};

// Reduce: insert the record into the parallel graph; retire when durable.
struct IngestReduce : ThreadState {
  kvmsr::JobId job = 0;

  void kv_reduce(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    job = kvmsr::Library::reduce_job(ctx);
    app.pg_->insert_edge(ctx, kvmsr::Library::reduce_key(ctx),
                         kvmsr::Library::reduce_val(ctx, 0), kvmsr::Library::reduce_val(ctx, 1),
                         ctx.evw_update_event(ctx.cevnt(), app.lb_.r_inserted));
  }

  void r_inserted(Ctx& ctx) { ctx.machine().user<App>().lib_->reduce_return(ctx, job); }
};

App& App::install(Machine& m, const Options& opt) { return m.emplace_user<App>(m, opt); }

App::App(Machine& m, const Options& opt) : m_(m), opt_(opt) {
  lib_ = &kvmsr::Library::install(m);
  pg_ = &pgraph::ParallelGraph::install(m, opt.graph);
  Program& p = m.program();
  lb_.m_chunk = p.event("ingest::m_chunk", &IngestMap::m_chunk);
  lb_.r_inserted = p.event("ingest::r_inserted", &IngestReduce::r_inserted);

  kvmsr::JobSpec spec;
  spec.kv_map = p.event("ingest::kv_map", &IngestMap::kv_map);
  spec.kv_reduce = p.event("ingest::kv_reduce", &IngestReduce::kv_reduce);
  spec.name = "ingest";
  job_ = lib_->add_job(spec);
}

Result App::run(std::string_view csv) {
  data_bytes_ = csv.size();
  const std::uint64_t alloc = std::max<std::uint64_t>(64, (data_bytes_ + 63) & ~63ull);
  data_base_ = m_.memory().dram_malloc_spread(alloc);
  m_.memory().host_write(data_base_, csv.data(), csv.size());

  const std::uint64_t blocks = ceil_div(data_bytes_, opt_.block_bytes);
  const kvmsr::JobState& st = lib_->run_to_completion(job_, 0, blocks);
  Result r;
  r.records = st.total_emitted;
  r.start_tick = st.start_tick;
  r.done_tick = st.done_tick;
  return r;
}

}  // namespace updown::ingest
