#include "apps/pagerank.hpp"

#include <bit>
#include <stdexcept>

namespace updown::pr {

// ---------------------------------------------------------------------------
// Propagate phase: kv_map per sub-vertex (Listing 3's PageRankWorker).
// ---------------------------------------------------------------------------
struct PrMapTask : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word degree = 0;
  Word nbr_ptr = 0;
  Word owner = 0;
  Word owner_degree = 0;
  double contrib = 0.0;
  Word loaded_neighbors = 0;  // the paper's loadedNeighbors completion counter

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    job = kvmsr::Library::map_job(ctx);
    auto& app = ctx.machine().user<App>();
    const Word v = kvmsr::Library::map_key(ctx);
    // One read returns the whole 8-word vertex record.
    ctx.send_dram_read(app.dg_.vertex_addr(v), 8, app.lb_.v_loaded);
  }

  void v_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    auto& lib = *app.lib_;
    owner = ctx.op(DeviceGraph::kId);
    degree = ctx.op(DeviceGraph::kDegree);
    nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    owner_degree = ctx.op(DeviceGraph::kOwnerDegree);
    ctx.charge(3);
    if (degree == 0) {
      lib.map_return(ctx, kvmsr_cont);
      return;
    }
    ctx.send_dram_read(app.rank_base_ + owner * 8, 1, app.lb_.r_loaded);
  }

  void r_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    contrib = std::bit_cast<double>(ctx.op(0)) / static_cast<double>(owner_degree);
    ctx.charge(2);
    // Issue all neighbor-chunk reads up front: memory parallelism
    // proportional to the edges (Section 4.1.2).
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);  // loop control + address arithmetic
      ctx.send_dram_read(nbr_ptr + i * 8, n, app.lb_.n_loaded);
    }
  }

  void n_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    auto& lib = *app.lib_;
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      lib.emit(ctx, job, ctx.op(i), std::bit_cast<Word>(contrib));
    }
    loaded_neighbors += ctx.nops();
    if (loaded_neighbors == degree) lib.map_return(ctx, kvmsr_cont);
  }
};

struct PrReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    const Word v = kvmsr::Library::reduce_key(ctx);
    const double c = std::bit_cast<double>(kvmsr::Library::reduce_val(ctx));
    app.cc_->add_f64(ctx, app.acc_base_ + v * 8, c);
    app.lib_->reduce_return(ctx, kvmsr::Library::reduce_job(ctx));
  }
};

// ---------------------------------------------------------------------------
// Apply phase: one task per ORIGINAL vertex v. Sum v's accumulator slots
// [slot_offset[v], slot_offset[v+1]), fold in the damping formula, write the
// new rank, and zero the slots for the next iteration.
// ---------------------------------------------------------------------------
struct PrApply : kvmsr::MapTask {
  Word v = 0;
  Word first_slot = 0, end_slot = 0;
  double sum = 0.0;
  Word chunks_loaded = 0, chunks_expected = 0;
  unsigned acks = 0, acks_expected = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<App>();
    v = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(app.slot_tab_ + v * 8, 2, app.lb_.o_loaded);
  }

  void o_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    first_slot = ctx.op(0);
    end_slot = ctx.op(1);
    chunks_expected = ceil_div(end_slot - first_slot, 8);
    ctx.charge(2);
    for (Word s = first_slot; s < end_slot; s += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, end_slot - s));
      ctx.charge(2);
      ctx.send_dram_read(app.acc_base_ + s * 8, n, app.lb_.a_loaded);
    }
  }

  void a_loaded(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      sum += std::bit_cast<double>(ctx.op(i));
    }
    if (++chunks_loaded < chunks_expected) return;

    const double n = static_cast<double>(app.dg_.num_original);
    const double rank = (1.0 - app.opt_.damping) / n + app.opt_.damping * sum;
    ctx.charge(4);
    // Acked writes: the next iteration must not read stale ranks or stale
    // accumulators.
    acks_expected = 1 + static_cast<unsigned>(chunks_expected);
    ctx.send_dram_write(app.rank_base_ + v * 8, {std::bit_cast<Word>(rank)},
                        app.lb_.a_written);
    const Word zeros[8] = {};
    for (Word s = first_slot; s < end_slot; s += 8) {
      const unsigned k = static_cast<unsigned>(std::min<Word>(8, end_slot - s));
      ctx.send_dram_writev(app.acc_base_ + s * 8, zeros, k,
                           ctx.evw_update_event(ctx.cevnt(), app.lb_.a_written));
    }
  }

  void a_written(Ctx& ctx) {
    if (++acks == acks_expected) ctx.machine().user<App>().lib_->map_return(ctx, kvmsr_cont);
  }
};

// ---------------------------------------------------------------------------
// Driver thread: chains propagate -> apply per iteration via continuations.
// ---------------------------------------------------------------------------
struct PrDriver : ThreadState {
  unsigned iter = 0;

  void d_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    app.start_tick_ = ctx.start_time();
    launch_propagate(ctx);
  }

  void d_prop_done(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    app.edge_updates_ += ctx.op(0);  // emitted tuples == edge updates
    app.lib_->launch(ctx, app.apply_job_, 0, app.dg_.num_original,
                     ctx.evw_update_event(ctx.cevnt(), app.lb_.d_apply_done));
  }

  void d_apply_done(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    ctx.trace_phase_end("pr.iteration");
    if (++iter < app.opt_.iterations) {
      launch_propagate(ctx);
    } else {
      app.done_tick_ = ctx.now();
      app.finished_ = true;
      ctx.log("[pagerank] done: %u iterations, %llu edge updates", iter,
              static_cast<unsigned long long>(app.edge_updates_));
      ctx.yield_terminate();
    }
  }

 private:
  void launch_propagate(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    // udtrace superstep span: one "pr.iteration" covering propagate + apply,
    // nesting the two KVMSR jobs' own phase spans on the driver lane.
    ctx.trace_phase_begin("pr.iteration");
    app.lib_->launch(ctx, app.propagate_job_, 0, app.dg_.num_vertices,
                     ctx.evw_update_event(ctx.cevnt(), app.lb_.d_prop_done));
  }
};

// ---------------------------------------------------------------------------

App& App::install(Machine& m, const DeviceGraph& dg, const SplitGraph& sg,
                  const Options& opt) {
  return m.emplace_user<App>(m, dg, sg, opt);
}

App::App(Machine& m, const DeviceGraph& dg, const SplitGraph& sg, const Options& opt)
    : m_(m), dg_(dg), opt_(opt), num_slots_(sg.num_slots()) {
  lib_ = &kvmsr::Library::install(m);
  cc_ = &kvmsr::CombiningCache::install(m);
  Program& p = m.program();

  lb_.v_loaded = p.event("pr::v_loaded", &PrMapTask::v_loaded);
  lb_.r_loaded = p.event("pr::r_loaded", &PrMapTask::r_loaded);
  lb_.n_loaded = p.event("pr::n_loaded", &PrMapTask::n_loaded);
  lb_.o_loaded = p.event("pr::o_loaded", &PrApply::o_loaded);
  lb_.a_loaded = p.event("pr::a_loaded", &PrApply::a_loaded);
  lb_.a_written = p.event("pr::a_written", &PrApply::a_written);
  lb_.d_prop_done = p.event("pr::d_prop_done", &PrDriver::d_prop_done);
  lb_.d_apply_done = p.event("pr::d_apply_done", &PrDriver::d_apply_done);
  driver_start_ = p.event("pr::d_start", &PrDriver::d_start);

  // Rank array (per original), accumulator array (per slot), and the
  // slot_offset table, placed per Options (defaults: spread over the whole
  // machine in 32 KiB blocks, like the graph itself).
  const std::uint32_t nr =
      opt.value_placement.nr_nodes ? opt.value_placement.nr_nodes : m.config().nodes;
  auto place = [&](std::uint64_t bytes) {
    return m.memory().dram_malloc(std::max<std::uint64_t>(8, bytes),
                                  opt.value_placement.first_node, nr,
                                  opt.value_placement.block_size);
  };
  rank_base_ = place(dg.num_original * 8);
  acc_base_ = place(num_slots_ * 8);
  slot_tab_ = place((dg.num_original + 1) * 8);
  const double init = 1.0 / static_cast<double>(dg.num_original);
  for (VertexId v = 0; v < dg.num_original; ++v)
    m.memory().host_store<double>(rank_base_ + v * 8, init);
  for (std::uint64_t s = 0; s < num_slots_; ++s)
    m.memory().host_store<double>(acc_base_ + s * 8, 0.0);
  m.memory().host_write(slot_tab_, sg.slot_offset.data(), (dg.num_original + 1) * 8);

  kvmsr::JobSpec prop;
  prop.kv_map = p.event("pr::kv_map", &PrMapTask::kv_map);
  prop.kv_reduce = p.event("pr::kv_reduce", &PrReduce::kv_reduce);
  prop.flush = cc_->flush_label();
  prop.map_binding = opt.map_binding;
  prop.coalesce_tuples = opt.coalesce_tuples;
  // Contributions to one accumulator slot are order-insensitive f64 sums up
  // to rounding; combining only activates when the job coalesces.
  prop.combiner = kvmsr::Combiner::kSumF64;
  prop.name = "pr.propagate";
  propagate_job_ = lib_->add_job(prop);

  kvmsr::JobSpec apply;
  apply.kv_map = p.event("pr::apply", &PrApply::kv_map);
  apply.name = "pr.apply";
  apply_job_ = lib_->add_job(apply);
}

Result App::run() {
  m_.send_from_host(evw::make_new(0, driver_start_), {});
  m_.run();
  if (!finished_) throw std::runtime_error("pagerank: driver did not finish");

  Result r;
  r.start_tick = start_tick_;
  r.done_tick = done_tick_;
  r.edge_updates = edge_updates_;
  r.iterations = opt_.iterations;
  r.rank.resize(dg_.num_original);
  for (VertexId v = 0; v < dg_.num_original; ++v)
    r.rank[v] = m_.memory().host_load<double>(rank_base_ + v * 8);
  return r;
}

}  // namespace updown::pr
