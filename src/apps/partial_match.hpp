// Partial Match (paper Section 5.2.4, Figure 11; AGILE WF2 K4).
//
// "A streaming network application built on the ingestion capabilities...
// records are received from the network and inserted into the graph. They
// are processed against a set of registered patterns. The objective is to
// incrementally evaluate the patterns and identify matches as rapidly as
// possible! Latency is the metric."
//
// Patterns are typed two-edge paths  a --t1--> b --t2--> c.  Partial-match
// state lives in a scalable hash table keyed <pivot vertex, pattern, side>:
// an arriving t1-edge (a,b) registers side-0 state at pivot b and probes
// side-1; an arriving t2-edge (b,c) registers side-1 state at pivot b and
// probes side-0. A probe hit raises an alert. A driver thread streams
// records one at a time (the artifact processes the stream
// "record-by-record") and records the per-record completion latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "abstractions/parallel_graph.hpp"
#include "abstractions/sht.hpp"
#include "tform/stream_gen.hpp"

namespace updown::pmatch {

struct Pattern {
  Word t1 = 0;  ///< first edge type
  Word t2 = 0;  ///< second edge type
};

struct Options {
  std::vector<Pattern> patterns;
  pgraph::Config graph{};
  /// Lanes used for partial-match state (the artifact's
  /// PGA_VERTEX_NUM_ALLOC_LANES knob). 0 = whole machine.
  kvmsr::LaneSet state_lanes{};
  /// Records streamed concurrently. Default 1 gives sequential semantics
  /// (alert counts match the replay oracle exactly). The latency experiment
  /// raises this: the paper measures under a continuous stream, where adding
  /// compute resources shortens latency because queueing shrinks.
  std::uint32_t stream_window = 1;
  /// Parallel filter subtasks evaluated per record — the artifact's per-
  /// record "Fn called" KVMSR filter stages (2 <= n <= 9). Spread over the
  /// machine's lanes; this is the parallelizable part of record latency.
  std::uint32_t filter_tasks = 16;
};

struct Result {
  std::uint64_t records = 0;
  std::uint64_t alerts = 0;
  Tick total_latency = 0;  ///< sum of per-record completion latencies
  Tick start_tick = 0;
  Tick done_tick = 0;

  double mean_latency_cycles() const {
    return records ? static_cast<double>(total_latency) / records : 0.0;
  }
  double mean_latency_us() const { return mean_latency_cycles() / 2000.0; }
};

class App {
 public:
  static App& install(Machine& m, const Options& opt);
  App(Machine& m, const Options& opt);

  /// Stream the records one at a time through ingestion + pattern
  /// evaluation; returns latency statistics.
  Result run(const std::vector<tform::EdgeRecord>& records);

  /// Host-side oracle: number of alerts a replay of `records` should raise.
  std::uint64_t oracle_alerts(const std::vector<tform::EdgeRecord>& records) const;

 private:
  friend struct PmDriver;
  friend struct PmRecordOp;
  friend struct PmFilter;

  Machine& m_;
  pgraph::ParallelGraph* pg_;
  sht::Registry* sht_;
  sht::TableId state_ = 0;
  Options opt_;

  // Stream state (host/driver shared).
  const std::vector<tform::EdgeRecord>* records_ = nullptr;
  // Bumped on per-record coordinator lanes (= many shards); read at finish,
  // after the stream's completion message chain.
  std::atomic<std::uint64_t> alerts_{0};
  Tick total_latency_ = 0;
  Tick start_tick_ = 0, done_tick_ = 0;
  bool finished_ = false;

  EventLabel driver_start_ = 0;
  struct Labels {
    EventLabel d_record_done = 0;
    EventLabel op_part = 0;
    EventLabel op_probe = 0;
    EventLabel f_loaded = 0;
  } lb_;
  EventLabel record_op_ = 0;
  EventLabel filter_op_ = 0;
  Addr filter_state_ = 0;
};

/// Partial-match state key: pivot vertex + pattern id + side bit.
constexpr Word state_key(Word pivot, Word pattern, Word side) {
  return (pivot << 16) | ((pattern & 0x7FFF) << 1) | (side & 1);
}

}  // namespace updown::pmatch
