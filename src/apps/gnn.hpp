// GNN feature generation (paper Table 3: "GNN (genFeatures) — doAll using
// kvmap"; cf. Xu's vertex-centric GNN aggregation [46]).
//
// One KVMSR pass aggregates neighbor features: each vertex pushes its
// feature vector along its out-edges; reducers accumulate per-dimension
// through the combining cache; the output is the neighborhood feature sum
// per vertex (mean normalization is a host-side epilogue in this kernel, as
// in the aggregate-then-combine formulation).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/layout.hpp"
#include "kvmsr/combining_cache.hpp"
#include "kvmsr/kvmsr.hpp"

namespace updown::gnn {

constexpr unsigned kDims = 4;  ///< feature dimensions (one emit per dim)

struct Options {
  /// Shuffle coalescing factor for the aggregation job (1 = off; UD_COALESCE
  /// overrides). The job declares kSumF64 combining: contributions to one
  /// (vertex, dimension) key merge in the emit buffer, changing the result
  /// only by f64 summation order.
  std::uint32_t coalesce_tuples = 1;
};

struct Result {
  /// out[v * kDims + d] = sum over in-neighbors u of feature[u][d].
  std::vector<double> aggregated;
  Tick start_tick = 0;
  Tick done_tick = 0;
  Tick duration() const { return done_tick - start_tick; }
};

class App {
 public:
  /// `features[v * kDims + d]` are the input per-vertex features.
  static App& install(Machine& m, const DeviceGraph& dg, const std::vector<double>& features,
                      const Options& opt = {});
  App(Machine& m, const DeviceGraph& dg, const std::vector<double>& features,
      const Options& opt = {});

  Result run();

 private:
  friend struct GnnMap;
  friend struct GnnReduce;

  Machine& m_;
  kvmsr::Library* lib_;
  kvmsr::CombiningCache* cc_;
  DeviceGraph dg_;
  Addr feat_base_ = 0;  ///< input features, kDims f64 words per vertex
  Addr out_base_ = 0;   ///< aggregated output, kDims f64 words per vertex
  kvmsr::JobId job_ = 0;
  struct Labels {
    EventLabel m_rec = 0, m_feat = 0, m_nbrs = 0;
  } lb_;
};

/// Key encoding for the per-dimension reduction.
constexpr Word dim_key(Word v, unsigned d) { return v * kDims + d; }

}  // namespace updown::gnn
