#include "apps/partial_match.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace updown::pmatch {

// Per-record coordinator: graph insert + pattern-state upserts + probes.
// Replies to the driver once every sub-operation completed.
struct PmRecordOp : ThreadState {
  Word reply_cont = IGNRCONT;
  Word record_idx = 0;
  unsigned pending = 0;

  void start(Ctx& ctx) {  // ops: {src, dst, type, record_idx}
    auto& app = ctx.machine().user<App>();
    reply_cont = ctx.ccont();
    record_idx = ctx.op(3);
    const Word src = ctx.op(0), dst = ctx.op(1), type = ctx.op(2);
    const Word part = ctx.evw_update_event(ctx.cevnt(), app.lb_.op_part);
    const Word probe = ctx.evw_update_event(ctx.cevnt(), app.lb_.op_probe);

    pending = 1;
    app.pg_->insert_edge(ctx, src, dst, type, part);
    if (src == dst) return;  // self-loops never participate in path patterns

    for (std::size_t i = 0; i < app.opt_.patterns.size(); ++i) {
      const Pattern& p = app.opt_.patterns[i];
      ctx.charge(2);  // pattern filter (the artifact's "Fn called" stage)
      if (type == p.t1) {
        app.sht_->upsert_add(ctx, app.state_, state_key(dst, i, 0), 1, part);
        app.sht_->lookup(ctx, app.state_, state_key(dst, i, 1), probe);
        pending += 2;
      }
      if (type == p.t2) {
        app.sht_->upsert_add(ctx, app.state_, state_key(src, i, 1), 1, part);
        app.sht_->lookup(ctx, app.state_, state_key(src, i, 0), probe);
        pending += 2;
      }
    }

    // Per-record KVMSR filter stages (the artifact's "F2 called" .. "F9
    // called"): evaluate the registered pattern set against graph state with
    // parallel subtasks striped across the machine.
    const std::uint64_t lanes = ctx.machine().config().total_lanes();
    for (std::uint32_t f = 0; f < app.opt_.filter_tasks; ++f) {
      const NetworkId lane = static_cast<NetworkId>((ctx.nwid() + 1 + f * 61) % lanes);
      ctx.charge(1);
      ctx.send_event(ctx.evw_new(lane, app.filter_op_), {f}, part);
      ++pending;
    }
  }

  void op_part(Ctx& ctx) { complete(ctx); }

  void op_probe(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    if (ctx.op(0) != 0 && ctx.op(1) > 0) {
      ctx.charge(1);
      app.alerts_++;  // "start PartialMatch: srcID ... dstID ..." alert
      ctx.log("[pmatch] Record detected -> alert");
    }
    complete(ctx);
  }

 private:
  void complete(Ctx& ctx) {
    if (--pending == 0) {
      if (reply_cont != IGNRCONT) ctx.send_event(reply_cont, {record_idx});
      ctx.yield_terminate();
    }
  }
};

// One filter subtask: evaluate a slice of the registered pattern set
// against graph state (a DRAM read plus comparison work), reply to the
// record coordinator.
struct PmFilter : ThreadState {
  Word done_cont = IGNRCONT;

  void f_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    const Word slice = ctx.op(0);
    done_cont = ctx.ccont();
    ctx.send_dram_read(app.filter_state_ + (slice % app.opt_.filter_tasks) * 8, 1,
                       app.lb_.f_loaded);
  }
  void f_loaded(Ctx& ctx) {
    ctx.charge(48);  // pattern evaluation over the slice
    ctx.send_event(done_cont, {});
    ctx.yield_terminate();
  }
};

// Driver: stream records with a bounded window in flight, timing each
// record's send-to-completion latency.
struct PmDriver : ThreadState {
  std::uint64_t next = 0;
  std::uint64_t completed = 0;
  std::vector<Tick> sent;

  void d_start(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    app.start_tick_ = ctx.start_time();
    sent.assign(app.records_->size(), 0);
    pump(ctx);
  }

  void d_record_done(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    app.total_latency_ += ctx.now() - sent.at(ctx.op(0));
    ++completed;
    pump(ctx);
  }

 private:
  void pump(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    const std::uint64_t total = app.records_->size();
    while (next < total && next - completed < app.opt_.stream_window) {
      const auto& r = (*app.records_)[next];
      const std::uint64_t lanes = ctx.machine().config().total_lanes();
      sent[next] = ctx.now();
      ctx.charge(1);
      ctx.send_event(ctx.evw_new(static_cast<NetworkId>(next % lanes), app.record_op_),
                     {r.src, r.dst, r.type, next},
                     ctx.evw_update_event(ctx.cevnt(), app.lb_.d_record_done));
      ++next;
    }
    if (completed == total) {
      app.done_tick_ = ctx.now();
      app.finished_ = true;
      ctx.yield_terminate();
    }
  }
};

App& App::install(Machine& m, const Options& opt) { return m.emplace_user<App>(m, opt); }

App::App(Machine& m, const Options& opt) : m_(m), opt_(opt) {
  if (opt.patterns.empty()) throw std::invalid_argument("partial_match: no patterns");
  pg_ = &pgraph::ParallelGraph::install(m, opt.graph);
  sht_ = &sht::Registry::install(m);
  sht::TableConfig state_cfg;
  state_cfg.lanes = opt.state_lanes;
  state_cfg.name = "pmatch.state";
  state_ = sht_->create(state_cfg);

  Program& p = m.program();
  record_op_ = p.event("pmatch::record_op", &PmRecordOp::start);
  filter_op_ = p.event("pmatch::filter", &PmFilter::f_start);
  lb_.f_loaded = p.event("pmatch::f_loaded", &PmFilter::f_loaded);
  filter_state_ = m.memory().dram_malloc_spread(
      std::max<std::uint64_t>(64, opt.filter_tasks * 8), 4096);
  lb_.op_part = p.event("pmatch::op_part", &PmRecordOp::op_part);
  lb_.op_probe = p.event("pmatch::op_probe", &PmRecordOp::op_probe);
  lb_.d_record_done = p.event("pmatch::d_record_done", &PmDriver::d_record_done);
  driver_start_ = p.event("pmatch::d_start", &PmDriver::d_start);
}

Result App::run(const std::vector<tform::EdgeRecord>& records) {
  records_ = &records;
  m_.send_from_host(evw::make_new(0, driver_start_), {});
  m_.run();
  if (!finished_) throw std::runtime_error("partial_match: stream did not finish");
  Result r;
  r.records = records.size();
  r.alerts = alerts_;
  r.total_latency = total_latency_;
  r.start_tick = start_tick_;
  r.done_tick = done_tick_;
  return r;
}

std::uint64_t App::oracle_alerts(const std::vector<tform::EdgeRecord>& records) const {
  std::unordered_map<Word, Word> state;
  std::uint64_t alerts = 0;
  for (const auto& r : records) {
    if (r.src == r.dst) continue;
    for (std::size_t i = 0; i < opt_.patterns.size(); ++i) {
      const Pattern& p = opt_.patterns[i];
      if (r.type == p.t1) {
        auto it = state.find(state_key(r.dst, i, 1));
        if (it != state.end() && it->second > 0) ++alerts;
        state[state_key(r.dst, i, 0)]++;
      }
      if (r.type == p.t2) {
        auto it = state.find(state_key(r.src, i, 0));
        if (it != state.end() && it->second > 0) ++alerts;
        state[state_key(r.src, i, 1)]++;
      }
    }
  }
  return alerts;
}

}  // namespace updown::pmatch
