#include "apps/exact_match.hpp"

#include <numeric>

namespace updown::ematch {

struct EmQuery : kvmsr::MapTask {
  Word type = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<App>();
    const auto& q = (*app.queries_)[kvmsr::Library::map_key(ctx)];
    type = q.type;
    ctx.charge(2);
    // SHT lookup on the edge table; the reply comes back to q_looked.
    ctx.machine().service<sht::Registry>().lookup(
        ctx, app.pg_->edge_table(), pgraph::edge_key(q.src, q.dst),
        ctx.evw_update_event(ctx.cevnt(), app.q_looked_));
  }

  void q_looked(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    if (ctx.op(0) != 0 && ctx.op(1) == type) {
      ctx.charge(1);  // scratchpad match counter
      app.matches_by_lane_[ctx.nwid()]++;
    }
    app.lib_->map_return(ctx, kvmsr_cont);
  }
};

App& App::install(Machine& m) { return m.emplace_user<App>(m); }

App::App(Machine& m) : m_(m) {
  lib_ = &kvmsr::Library::install(m);
  pg_ = &m.service<pgraph::ParallelGraph>();
  matches_by_lane_.assign(m.config().total_lanes(), 0);
  Program& p = m.program();
  q_looked_ = p.event("ematch::q_looked", &EmQuery::q_looked);
  job_ = kvmsr::do_all(*lib_, p.event("ematch::kv_map", &EmQuery::kv_map));
  lib_->spec(job_).name = "exact_match";
}

Result App::run(const std::vector<tform::EdgeRecord>& queries) {
  queries_ = &queries;
  std::fill(matches_by_lane_.begin(), matches_by_lane_.end(), 0);
  const kvmsr::JobState& st = lib_->run_to_completion(job_, 0, queries.size());
  Result r;
  r.queries = queries.size();
  r.matches = std::accumulate(matches_by_lane_.begin(), matches_by_lane_.end(), 0ull);
  r.start_tick = st.start_tick;
  r.done_tick = st.done_tick;
  return r;
}

std::uint64_t App::oracle_matches(const std::vector<tform::EdgeRecord>& queries) const {
  std::uint64_t n = 0;
  for (const auto& q : queries) {
    Word type = 0;
    if (pg_->host_has_edge(q.src, q.dst, &type) && type == q.type) ++n;
  }
  return n;
}

}  // namespace updown::ematch
