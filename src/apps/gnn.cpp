#include "apps/gnn.hpp"

#include <bit>
#include <stdexcept>

namespace updown::gnn {

struct GnnMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word v = 0;
  Word degree = 0, nbr_ptr = 0;
  Word loaded = 0;
  double feat[kDims] = {};

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<App>();
    job = kvmsr::Library::map_job(ctx);
    v = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(app.dg_.vertex_addr(v), 8, app.lb_.m_rec);
  }

  void m_rec(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    degree = ctx.op(DeviceGraph::kDegree);
    nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      app.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    ctx.send_dram_read(app.feat_base_ + v * kDims * 8, kDims, app.lb_.m_feat);
  }

  void m_feat(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned d = 0; d < kDims; ++d) feat[d] = std::bit_cast<double>(ctx.op(d));
    ctx.charge(kDims);
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, app.lb_.m_nbrs);
    }
  }

  void m_nbrs(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      for (unsigned d = 0; d < kDims; ++d) {
        ctx.charge(1);
        app.lib_->emit(ctx, job, dim_key(ctx.op(i), d), std::bit_cast<Word>(feat[d]));
      }
    }
    loaded += ctx.nops();
    if (loaded == degree) app.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct GnnReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    app.cc_->add_f64(ctx, app.out_base_ + kvmsr::Library::reduce_key(ctx) * 8,
                     std::bit_cast<double>(kvmsr::Library::reduce_val(ctx)));
    app.lib_->reduce_return(ctx, kvmsr::Library::reduce_job(ctx));
  }
};

App& App::install(Machine& m, const DeviceGraph& dg, const std::vector<double>& features,
                  const Options& opt) {
  return m.emplace_user<App>(m, dg, features, opt);
}

App::App(Machine& m, const DeviceGraph& dg, const std::vector<double>& features,
         const Options& opt)
    : m_(m), dg_(dg) {
  if (features.size() != dg.num_vertices * kDims)
    throw std::invalid_argument("gnn: features must be num_vertices * kDims");
  lib_ = &kvmsr::Library::install(m);
  cc_ = &kvmsr::CombiningCache::install(m);
  Program& p = m.program();
  lb_.m_rec = p.event("gnn::m_rec", &GnnMap::m_rec);
  lb_.m_feat = p.event("gnn::m_feat", &GnnMap::m_feat);
  lb_.m_nbrs = p.event("gnn::m_nbrs", &GnnMap::m_nbrs);

  const std::uint64_t bytes = dg.num_vertices * kDims * 8;
  feat_base_ = m.memory().dram_malloc_spread(bytes);
  out_base_ = m.memory().dram_malloc_spread(bytes);
  m.memory().host_write(feat_base_, features.data(), bytes);
  m.memory().host_fill(out_base_, 0, bytes);

  kvmsr::JobSpec spec;
  spec.kv_map = p.event("gnn::kv_map", &GnnMap::kv_map);
  spec.kv_reduce = p.event("gnn::kv_reduce", &GnnReduce::kv_reduce);
  spec.flush = cc_->flush_label();
  spec.coalesce_tuples = opt.coalesce_tuples;
  // Per-(vertex, dimension) sums are order-insensitive up to f64 rounding.
  spec.combiner = kvmsr::Combiner::kSumF64;
  spec.name = "gnn.genFeatures";
  job_ = lib_->add_job(spec);
}

Result App::run() {
  const kvmsr::JobState& st = lib_->run_to_completion(job_, 0, dg_.num_vertices);
  Result r;
  r.start_tick = st.start_tick;
  r.done_tick = st.done_tick;
  r.aggregated.resize(dg_.num_vertices * kDims);
  m_.memory().host_read(out_base_, r.aggregated.data(), r.aggregated.size() * 8);
  return r;
}

}  // namespace updown::gnn
