#include "apps/tc.hpp"

#include <algorithm>
#include <array>

namespace updown::tc {

// ---------------------------------------------------------------------------
// Map: enumerate connected pairs <x, y> with x > y.
// ---------------------------------------------------------------------------
struct TcMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word x = 0;
  Word degree = 0;
  Word loaded = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& app = ctx.machine().user<App>();
    job = kvmsr::Library::map_job(ctx);
    x = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(app.dg_.vertex_addr(x), 8, app.lb_.m_rec);
  }

  void m_rec(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    degree = ctx.op(DeviceGraph::kDegree);
    const Word nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      app.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, app.lb_.m_nbrs);
    }
  }

  void m_nbrs(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      const Word y = ctx.op(i);
      ctx.charge(1);
      if (y < x) app.lib_->emit(ctx, job, pair_key(x, y), 0);
    }
    loaded += ctx.nops();
    if (loaded == degree) app.lib_->map_return(ctx, kvmsr_cont);
  }
};

// ---------------------------------------------------------------------------
// Reduce: stream-intersect the z < y prefixes of N(x) and N(y).
// ---------------------------------------------------------------------------
struct TcReduce : ThreadState {
  kvmsr::JobId job = 0;
  Word x = 0, y = 0;
  Word deg[2] = {0, 0};
  Word ptr[2] = {0, 0};
  unsigned recs = 0;

  // Both lists are streamed with full memory parallelism (every chunk read
  // issued at once) and merged locally when complete. A strict
  // request-response chunk chain would serialize tens of round trips on the
  // critical path; issuing them all up front is the paper's second TC
  // version — "streams both neighbor lists ... consuming more memory
  // bandwidth but improving load balance. This is a net win."
  std::vector<Word> list[2];
  Word arrived = 0, expected = 0;
  Word found = 0;

  void kv_reduce(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    job = kvmsr::Library::reduce_job(ctx);
    const Word key = kvmsr::Library::reduce_key(ctx);
    x = pair_x(key);
    y = pair_y(key);
    ctx.charge(2);
    ctx.send_dram_read(app.dg_.vertex_addr(x), 8, app.lb_.r_rec);
    ctx.send_dram_read(app.dg_.vertex_addr(y), 8, app.lb_.r_rec);
  }

  void r_rec(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    const unsigned side = ctx.ccont() == app.dg_.vertex_addr(x) ? 0 : 1;
    deg[side] = ctx.op(DeviceGraph::kDegree);
    ptr[side] = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (++recs < 2) return;
    if (deg[0] == 0 || deg[1] == 0) {
      finish(ctx);
      return;
    }
    for (unsigned side2 = 0; side2 < 2; ++side2) {
      list[side2].assign(deg[side2], 0);
      for (Word i = 0; i < deg[side2]; i += 8) {
        const unsigned n = static_cast<unsigned>(std::min<Word>(8, deg[side2] - i));
        ctx.charge(2);
        ctx.send_dram_read(ptr[side2] + i * 8, n,
                           side2 == 0 ? app.lb_.r_xchunk : app.lb_.r_ychunk);
        ++expected;
      }
    }
  }

  void r_xchunk(Ctx& ctx) { chunk_arrived(ctx, 0); }
  void r_ychunk(Ctx& ctx) { chunk_arrived(ctx, 1); }

 private:
  void chunk_arrived(Ctx& ctx, unsigned side) {
    // The DRAM response continuation carries the request address.
    const Word base = (ctx.ccont() - ptr[side]) / 8;
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      list[side][base + i] = ctx.op(i);
    }
    if (++arrived == expected) merge(ctx);
  }

  void merge(Ctx& ctx) {
    std::size_t i = 0, j = 0;
    while (i < list[0].size() && j < list[1].size()) {
      const Word a = list[0][i], b = list[1][j];
      ctx.charge(1);
      if (a >= y || b >= y) break;  // only the z < y prefix counts
      if (a < b) {
        ++i;
      } else if (b < a) {
        ++j;
      } else {
        ++found;
        ++i;
        ++j;
      }
    }
    finish(ctx);
  }

  void finish(Ctx& ctx) {
    auto& app = ctx.machine().user<App>();
    if (found > 0)
      app.cc_->add_u64(ctx, app.count_base_ + static_cast<Addr>(ctx.nwid()) * 8, found);
    app.lib_->reduce_return(ctx, job);
  }
};

// ---------------------------------------------------------------------------

App& App::install(Machine& m, const DeviceGraph& dg, const Options& opt) {
  return m.emplace_user<App>(m, dg, opt);
}

App::App(Machine& m, const DeviceGraph& dg, const Options& opt)
    : m_(m), dg_(dg), opt_(opt) {
  lib_ = &kvmsr::Library::install(m);
  cc_ = &kvmsr::CombiningCache::install(m);
  Program& p = m.program();

  lb_.m_rec = p.event("tc::m_rec", &TcMap::m_rec);
  lb_.m_nbrs = p.event("tc::m_nbrs", &TcMap::m_nbrs);
  lb_.r_rec = p.event("tc::r_rec", &TcReduce::r_rec);
  lb_.r_xchunk = p.event("tc::r_xchunk", &TcReduce::r_xchunk);
  lb_.r_ychunk = p.event("tc::r_ychunk", &TcReduce::r_ychunk);

  const std::uint64_t lanes = m.config().total_lanes();
  count_base_ = m.memory().dram_malloc_spread(lanes * 8, 4096);
  m.memory().host_fill(count_base_, 0, lanes * 8);

  kvmsr::JobSpec spec;
  spec.kv_map = p.event("tc::kv_map", &TcMap::kv_map);
  spec.kv_reduce = p.event("tc::kv_reduce", &TcReduce::kv_reduce);
  spec.flush = cc_->flush_label();
  spec.map_binding = opt.map_binding;
  spec.coalesce_tuples = opt.coalesce_tuples;  // combiner stays kNone: pair keys are unique
  spec.name = "tc";
  job_ = lib_->add_job(spec);
}

Result App::run() {
  const kvmsr::JobState& st = lib_->run_to_completion(job_, 0, dg_.num_vertices);
  Result r;
  r.start_tick = st.start_tick;
  r.done_tick = st.done_tick;
  r.pairs = st.total_emitted;
  for (std::uint64_t l = 0; l < m_.config().total_lanes(); ++l)
    r.triangles += m_.memory().host_load<Word>(count_base_ + l * 8);
  return r;
}

}  // namespace updown::tc
