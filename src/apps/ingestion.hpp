// Ingestion workflow (paper Section 5.2.4, Figure 10; AGILE WF2 K1).
//
// "TFORM and KVMSR are used to load, parse a parallel file, and insert it
// into a graph data structure." The input byte stream lives in global
// memory; KVMSR maps over fixed-size blocks; each kv_map task streams its
// block's bytes from DRAM, runs the TFORM transducer, and emits one tuple
// per record; kv_reduce inserts the record into the Parallel Graph
// abstraction (two scalable hash tables) with scalable atomics.
//
// Records can span block boundaries: a task parses every record that STARTS
// inside its block, reading past the boundary into the next block's bytes —
// "such access would be impossible in a cloud map-reduce formulation".
#pragma once

#include <cstdint>
#include <string_view>

#include "abstractions/parallel_graph.hpp"
#include "kvmsr/kvmsr.hpp"
#include "tform/fst.hpp"

namespace updown::ingest {

struct Options {
  /// Parse-block size in bytes. Deliberately not a multiple of the 64-byte
  /// record so that records straddle block boundaries.
  std::uint64_t block_bytes = 1000;
  pgraph::Config graph{};
};

struct Result {
  std::uint64_t records = 0;
  Tick start_tick = 0;
  Tick done_tick = 0;

  Tick duration() const { return done_tick - start_tick; }
  double seconds() const { return ticks_to_seconds(duration()); }
  /// Records ingested per second (Figure 10 reports GigaRecords/s).
  double records_per_second() const {
    return seconds() > 0 ? static_cast<double>(records) / seconds() : 0.0;
  }
  double terabytes_per_second() const { return records_per_second() * 64 / 1e12; }
};

class App {
 public:
  static App& install(Machine& m, const Options& opt = {});
  App(Machine& m, const Options& opt);

  /// Load the byte stream into global memory (host-side, untimed) and run
  /// the parse+insert job to completion.
  Result run(std::string_view csv_bytes);

  pgraph::ParallelGraph& graph() { return *pg_; }

 private:
  friend struct IngestMap;
  friend struct IngestReduce;

  Machine& m_;
  kvmsr::Library* lib_;
  pgraph::ParallelGraph* pg_;
  tform::Fst fst_ = tform::Fst::csv();
  Options opt_;

  Addr data_base_ = 0;
  std::uint64_t data_bytes_ = 0;

  kvmsr::JobId job_ = 0;
  struct Labels {
    EventLabel m_chunk = 0;
    EventLabel r_inserted = 0;
  } lb_;
};

}  // namespace updown::ingest
