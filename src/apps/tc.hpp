// Triangle Counting on KVMSR (paper Section 4.3).
//
// kv_map tasks run over all vertices; each enumerates the connected vertex
// pairs <v_x, v_y> with x > y and emits one tuple per pair — vertex
// parallelism on the map side, edge parallelism on the reduce side. kv_reduce
// tasks stream BOTH neighbor lists from DRAM (the paper's second TC version:
// "streams both neighbor lists in the reduce function, consuming more memory
// bandwidth but improving load balance") and merge-intersect the prefixes
// z < y, so every triangle x > y > z is counted exactly once.
//
// Counts accumulate through the combining cache into per-lane counter cells
// (lane-owned, so flushes never race); the host sums the cells after the run.
//
// The map side supports both Block and PBMW computation binding — the paper
// compares the two and found Block sufficient once the reduce was
// load-balanced; the PBMW variant remains available (Section 4.3.3).
#pragma once

#include <cstdint>

#include "graph/layout.hpp"
#include "kvmsr/combining_cache.hpp"
#include "kvmsr/kvmsr.hpp"

namespace updown::tc {

struct Options {
  kvmsr::MapBinding map_binding = kvmsr::MapBinding::kBlock;
  /// Shuffle coalescing factor for the pair job (1 = off; UD_COALESCE
  /// overrides). TC never enables map-side combining: every pair key is
  /// emitted exactly once, so there is nothing to merge.
  std::uint32_t coalesce_tuples = 1;
};

struct Result {
  std::uint64_t triangles = 0;
  std::uint64_t pairs = 0;  ///< reduce tasks (connected pairs with x > y)
  Tick start_tick = 0;
  Tick done_tick = 0;

  Tick duration() const { return done_tick - start_tick; }
  double seconds() const { return ticks_to_seconds(duration()); }
};

class App {
 public:
  /// `dg` must be the device image of a symmetric (undirected) graph with
  /// sorted adjacency lists.
  static App& install(Machine& m, const DeviceGraph& dg, const Options& opt = {});

  App(Machine& m, const DeviceGraph& dg, const Options& opt);

  Result run();

 private:
  friend struct TcMap;
  friend struct TcReduce;

  Machine& m_;
  kvmsr::Library* lib_;
  kvmsr::CombiningCache* cc_;
  DeviceGraph dg_;
  Options opt_;

  Addr count_base_ = 0;  ///< one u64 counter cell per lane
  kvmsr::JobId job_ = 0;
  struct Labels {
    EventLabel m_rec = 0, m_nbrs = 0;
    EventLabel r_rec = 0, r_xchunk = 0, r_ychunk = 0;
  } lb_;
};

/// Pack/unpack the pair key (vertex ids fit in 32 bits at simulated scales).
constexpr Word pair_key(Word x, Word y) { return (x << 32) | y; }
constexpr Word pair_x(Word key) { return key >> 32; }
constexpr Word pair_y(Word key) { return key & 0xFFFFFFFFull; }

}  // namespace updown::tc
