// Translation descriptors ("swizzle masks") implementing the block-cyclic
// virtual-to-physical mapping of DRAMmalloc (paper Section 2.4, Figure 5).
//
// A descriptor maps one contiguous virtual region onto NRNodes physical node
// memories: virtual block i (of `block_size` bytes) lands on node
// first_node + (i mod NRNodes), at local offset (i div NRNodes)*block_size.
// The paper prints a garbled formula ("PNN = size / BS / NRNodes"); we
// implement the standard block-cyclic mapping its Figure 5 depicts, which the
// DRAMmalloc design document [40] also describes.
//
// Power-of-two NRNodes and block sizes make the mapping a pure shift/mask
// computation — this is what makes the hardware implementation free of
// software translation overhead.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace updown {

struct PhysLoc {
  std::uint32_t node = 0;
  std::uint64_t offset = 0;  ///< byte offset within the node's memory

  bool operator==(const PhysLoc&) const = default;
};

class SwizzleDescriptor {
 public:
  SwizzleDescriptor() = default;

  /// @param base        first virtual address of the region
  /// @param size        region size in bytes
  /// @param first_node  node on which virtual block 0 is placed
  /// @param nr_nodes    number of nodes in the cyclic distribution (power of 2)
  /// @param block_size  distribution block size in bytes (power of 2)
  /// @param node_base   byte offset within each node where this region's
  ///                    physical blocks start (assigned by the allocator)
  SwizzleDescriptor(Addr base, std::uint64_t size, std::uint32_t first_node,
                    std::uint32_t nr_nodes, std::uint64_t block_size,
                    std::uint64_t node_base)
      : base_(base),
        size_(size),
        first_node_(first_node),
        nr_nodes_(nr_nodes),
        node_base_(node_base),
        block_shift_(log2_exact(block_size)),
        node_mask_(nr_nodes - 1) {
    assert(is_pow2(nr_nodes));
    assert(is_pow2(block_size));
  }

  Addr base() const { return base_; }
  Addr end() const { return base_ + size_; }
  std::uint64_t size() const { return size_; }
  std::uint32_t first_node() const { return first_node_; }
  /// Monotonic DRAMmalloc sequence number: names the allocation site in
  /// diagnostics ("alloc #7") and survives into the freed-region records.
  std::uint64_t alloc_seq() const { return alloc_seq_; }
  void set_alloc_seq(std::uint64_t seq) { alloc_seq_ = seq; }
  std::uint32_t nr_nodes() const { return nr_nodes_; }
  std::uint64_t block_size() const { return 1ull << block_shift_; }
  std::uint64_t node_base() const { return node_base_; }

  /// Bytes of physical memory this region consumes on each participating node.
  std::uint64_t bytes_per_node() const {
    const std::uint64_t blocks = ceil_div(size_, block_size());
    return ceil_div(blocks, nr_nodes_) << block_shift_;
  }

  bool contains(Addr va) const { return va >= base_ && va < base_ + size_; }

  /// The hardware translation: pure shift/mask block-cyclic mapping.
  PhysLoc translate(Addr va) const {
    assert(contains(va));
    const std::uint64_t off = va - base_;
    const std::uint64_t block = off >> block_shift_;
    const std::uint64_t in_block = off & (block_size() - 1);
    PhysLoc loc;
    loc.node = first_node_ + static_cast<std::uint32_t>(block & node_mask_);
    loc.offset = node_base_ + ((block >> log2_exact(static_cast<std::uint64_t>(nr_nodes_)))
                               << block_shift_) +
                 in_block;
    return loc;
  }

 private:
  Addr base_ = 0;
  std::uint64_t alloc_seq_ = 0;
  std::uint64_t size_ = 0;
  std::uint32_t first_node_ = 0;
  std::uint32_t nr_nodes_ = 1;
  std::uint64_t node_base_ = 0;
  unsigned block_shift_ = 12;
  std::uint64_t node_mask_ = 0;
};

}  // namespace updown
