#include "mem/global_memory.hpp"

#include <algorithm>

#include "common/strfmt.hpp"

namespace updown {

Addr GlobalMemory::dram_malloc(std::uint64_t size, std::uint32_t first_node,
                               std::uint32_t nr_nodes, std::uint64_t block_size) {
  if (size == 0) throw std::invalid_argument("DRAMmalloc: zero size");
  if (!is_pow2(nr_nodes)) throw std::invalid_argument("DRAMmalloc: NRNodes must be a power of 2");
  if (!is_pow2(block_size)) throw std::invalid_argument("DRAMmalloc: BS must be a power of 2");
  if (first_node + nr_nodes > nodes_)
    throw std::invalid_argument("DRAMmalloc: node range exceeds machine");

  std::lock_guard<std::mutex> lk(mu_);

  // Physical placement: every participating node reserves the same number of
  // bytes for this region, starting at the maximum current brk across the
  // participating nodes so a single per-region node_base works for all.
  std::uint64_t node_base = 0;
  for (std::uint32_t n = first_node; n < first_node + nr_nodes; ++n)
    node_base = std::max(node_base, node_brk_[n]);

  const Addr base = (va_brk_ + block_size - 1) & ~(block_size - 1);
  SwizzleDescriptor d(base, size, first_node, nr_nodes, block_size, node_base);
  const std::uint64_t per_node = d.bytes_per_node();
  for (std::uint32_t n = first_node; n < first_node + nr_nodes; ++n) {
    node_brk_[n] = node_base + per_node;
    // Materialize the backing now so the pointer-unstable resize never runs
    // while shards access this region concurrently.
    auto& mem = backing_[n];
    if (mem.size() < node_brk_[n]) mem.resize(next_pow2(node_brk_[n]));
  }

  d.set_alloc_seq(++alloc_seq_);
  descriptors_.push_back(d);
  va_brk_ = base + size;
  version_.fetch_add(1, std::memory_order_release);
  if (observer_) observer_->on_alloc(d);
  return base;
}

void GlobalMemory::dram_free(Addr base) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = descriptors_.begin(); it != descriptors_.end(); ++it) {
    if (it->base() == base) {
      const SwizzleDescriptor d = *it;
      descriptors_.erase(it);
      freed_.push_back({d.base(), d.size(), d.alloc_seq(), ++free_seq_});
      version_.fetch_add(1, std::memory_order_release);
      if (observer_) observer_->on_free(d, free_seq_);
      return;
    }
  }
  // Distinguish a double free (base matches a retired region) from a pointer
  // that never came from dram_malloc.
  const FreedRegion* f = nullptr;
  for (auto it = freed_.rbegin(); it != freed_.rend(); ++it)
    if (it->base == base) {
      f = &*it;
      break;
    }
  std::string msg =
      f ? strfmt("dram_free: double free of va=0x%llx (alloc #%llu, %llu bytes, "
                 "already freed as free #%llu)\n",
                 (unsigned long long)base, (unsigned long long)f->alloc_seq,
                 (unsigned long long)f->size, (unsigned long long)f->free_seq)
        : strfmt("dram_free: va=0x%llx is not the base of any live region\n",
                 (unsigned long long)base);
  msg += describe();
  if (observer_) observer_->on_bad_free(base, f != nullptr, msg);
  throw BadFreeError(base, f != nullptr, msg);
}

const SwizzleDescriptor* GlobalMemory::find_live(Addr va) const {
  for (const auto& d : descriptors_)
    if (d.contains(va)) return &d;
  return nullptr;
}

const FreedRegion* GlobalMemory::find_freed(Addr va) const {
  for (auto it = freed_.rbegin(); it != freed_.rend(); ++it)
    if (it->contains(va)) return &*it;
  return nullptr;
}

const SwizzleDescriptor* GlobalMemory::find_snap(Addr va,
                                                 DescriptorSnapshot& snap) const {
  for (const auto& d : snap.descs)
    if (d.contains(va)) return &d;
  const std::uint64_t before = snap.version;
  refresh(snap);
  if (snap.version != before)
    for (const auto& d : snap.descs)
      if (d.contains(va)) return &d;
  return nullptr;
}

bool GlobalMemory::find_freed_locked(Addr va, FreedRegion* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = freed_.rbegin(); it != freed_.rend(); ++it) {
    if (it->contains(va)) {
      *out = *it;
      return true;
    }
  }
  return false;
}

std::string GlobalMemory::describe() const {
  std::string out =
      strfmt("descriptor table (%zu live region(s)):\n", descriptors_.size());
  for (const auto& d : descriptors_)
    out += strfmt("  alloc #%-3llu va=[0x%llx, 0x%llx) size=%llu nodes=[%u..%u) "
                  "bs=%llu\n",
                  (unsigned long long)d.alloc_seq(), (unsigned long long)d.base(),
                  (unsigned long long)d.end(), (unsigned long long)d.size(),
                  d.first_node(), d.first_node() + d.nr_nodes(),
                  (unsigned long long)d.block_size());
  if (!freed_.empty()) {
    out += strfmt("freed regions (%zu):\n", freed_.size());
    for (const auto& f : freed_)
      out += strfmt("  alloc #%-3llu va=[0x%llx, 0x%llx) size=%llu freed as "
                    "free #%llu\n",
                    (unsigned long long)f.alloc_seq, (unsigned long long)f.base,
                    (unsigned long long)(f.base + f.size),
                    (unsigned long long)f.size, (unsigned long long)f.free_seq);
  }
  return out;
}

const SwizzleDescriptor& GlobalMemory::find(Addr va, DescriptorSnapshot* snap) const {
  if (snap) {
    for (const auto& d : snap->descs)
      if (d.contains(va)) return d;
    // Miss: the table may have changed since the last window boundary (a
    // sim-time dram_malloc on another shard). Refresh once and retry before
    // declaring the address unmapped.
    const std::uint64_t before = snap->version;
    refresh(*snap);
    if (snap->version != before)
      for (const auto& d : snap->descs)
        if (d.contains(va)) return d;
  } else if (const SwizzleDescriptor* d = find_live(va)) {
    return *d;
  }
  std::string msg = strfmt(
      "GlobalMemory: va=0x%llx is not covered by any translation descriptor",
      (unsigned long long)va);
  if (const FreedRegion* f = find_freed(va)) {
    msg += strfmt(" — use-after-free: it falls in region alloc #%llu "
                  "[0x%llx, 0x%llx) retired by free #%llu",
                  (unsigned long long)f->alloc_seq, (unsigned long long)f->base,
                  (unsigned long long)(f->base + f->size),
                  (unsigned long long)f->free_seq);
  }
  msg += "\n" + describe();
  throw UnmappedAddressError(va, msg);
}

std::uint8_t* GlobalMemory::phys_ptr(const PhysLoc& loc, std::size_t bytes) {
  auto& mem = backing_[loc.node];
  if (mem.size() < loc.offset + bytes) mem.resize(next_pow2(loc.offset + bytes));
  return mem.data() + loc.offset;
}

const std::uint8_t* GlobalMemory::phys_ptr(const PhysLoc& loc, std::size_t bytes) const {
  auto& mem = backing_[loc.node];
  if (mem.size() < loc.offset + bytes) mem.resize(next_pow2(loc.offset + bytes));
  return mem.data() + loc.offset;
}

Word GlobalMemory::read_word_phys(const PhysLoc& loc) const {
  Word v;
  std::memcpy(&v, phys_ptr(loc, sizeof(Word)), sizeof(Word));
  return v;
}

void GlobalMemory::write_word_phys(const PhysLoc& loc, Word value) {
  std::memcpy(phys_ptr(loc, sizeof(Word)), &value, sizeof(Word));
}

void GlobalMemory::read_words(Addr va, Word* out, std::size_t nwords,
                              DescriptorSnapshot* snap) const {
  const SwizzleDescriptor* d = &find(va, snap);
  while (nwords > 0) {
    if (!d->contains(va)) d = &find(va, snap);
    const PhysLoc loc = d->translate(va);
    const std::uint64_t in_block = (va - d->base()) & (d->block_size() - 1);
    const std::size_t run =
        std::min<std::uint64_t>(nwords, (d->block_size() - in_block) >> 3);
    if (run == 0) {
      // Word straddles the block boundary: single-word physical access.
      *out++ = read_word_phys(loc);
      va += 8;
      --nwords;
      continue;
    }
    std::memcpy(out, phys_ptr(loc, run * 8), run * 8);
    out += run;
    va += run * 8;
    nwords -= run;
  }
}

void GlobalMemory::write_words(Addr va, const Word* in, std::size_t nwords,
                               DescriptorSnapshot* snap) {
  const SwizzleDescriptor* d = &find(va, snap);
  while (nwords > 0) {
    if (!d->contains(va)) d = &find(va, snap);
    const PhysLoc loc = d->translate(va);
    const std::uint64_t in_block = (va - d->base()) & (d->block_size() - 1);
    const std::size_t run =
        std::min<std::uint64_t>(nwords, (d->block_size() - in_block) >> 3);
    if (run == 0) {
      write_word_phys(loc, *in++);
      va += 8;
      --nwords;
      continue;
    }
    std::memcpy(phys_ptr(loc, run * 8), in, run * 8);
    in += run;
    va += run * 8;
    nwords -= run;
  }
}

void GlobalMemory::host_write(Addr va, const void* data, std::size_t bytes) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < bytes) {
    const SwizzleDescriptor& d = find(va + done);
    const PhysLoc loc = d.translate(va + done);
    // Stay within one distribution block (contiguous physical bytes).
    const std::uint64_t in_block = (va + done - d.base()) & (d.block_size() - 1);
    const std::size_t chunk =
        std::min<std::size_t>(bytes - done, d.block_size() - in_block);
    std::memcpy(phys_ptr(loc, chunk), src + done, chunk);
    done += chunk;
  }
}

void GlobalMemory::host_read(Addr va, void* out, std::size_t bytes) const {
  auto* dst = static_cast<std::uint8_t*>(out);
  std::size_t done = 0;
  while (done < bytes) {
    const SwizzleDescriptor& d = find(va + done);
    const PhysLoc loc = d.translate(va + done);
    const std::uint64_t in_block = (va + done - d.base()) & (d.block_size() - 1);
    const std::size_t chunk =
        std::min<std::size_t>(bytes - done, d.block_size() - in_block);
    std::memcpy(dst + done, phys_ptr(loc, chunk), chunk);
    done += chunk;
  }
}

void GlobalMemory::host_fill(Addr va, std::uint8_t byte, std::size_t bytes) {
  std::size_t done = 0;
  while (done < bytes) {
    const SwizzleDescriptor& d = find(va + done);
    const PhysLoc loc = d.translate(va + done);
    const std::uint64_t in_block = (va + done - d.base()) & (d.block_size() - 1);
    const std::size_t chunk =
        std::min<std::size_t>(bytes - done, d.block_size() - in_block);
    std::memset(phys_ptr(loc, chunk), byte, chunk);
    done += chunk;
  }
}

}  // namespace updown
