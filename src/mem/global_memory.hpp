// The global shared address space: DRAMmalloc allocation, translation
// descriptors, and the per-node physical backing store.
//
// DRAMmalloc (paper Section 2.4):
//   void* DRAMmalloc(size, 1stNode, NRNodes, BS)
// returns a contiguous virtual region laid out block-cyclically over
// NRNodes physical node memories starting at 1stNode, in blocks of BS bytes.
// Each allocation is encoded in a single translation descriptor; the paper
// notes typical programs need only 2-4 descriptors.
//
// Host-side (TOP core) accessors read/write the backing store directly with
// zero simulated cost: they model the data-loading phase that the paper's
// timing methodology excludes (timings start at the first UpDown event).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "mem/swizzle.hpp"

namespace updown {

/// Translation miss: a virtual address not covered by any live descriptor.
/// Derives from std::out_of_range so pre-existing catch sites keep working;
/// carries the faulting VA and a descriptor-table dump in what().
class UnmappedAddressError : public std::out_of_range {
 public:
  UnmappedAddressError(Addr va, const std::string& what_arg)
      : std::out_of_range(what_arg), va_(va) {}
  Addr va() const { return va_; }

 private:
  Addr va_;
};

/// dram_free of an address that is not a live region base: either a double
/// free (the base was freed before) or a pointer that never came from
/// dram_malloc. Derives from std::invalid_argument for compatibility.
class BadFreeError : public std::invalid_argument {
 public:
  BadFreeError(Addr va, bool double_free, const std::string& what_arg)
      : std::invalid_argument(what_arg), va_(va), double_free_(double_free) {}
  Addr va() const { return va_; }
  bool double_free() const { return double_free_; }

 private:
  Addr va_;
  bool double_free_;
};

/// Record of a retired allocation, kept so use-after-free and double-free
/// faults can name the original region.
struct FreedRegion {
  Addr base = 0;
  std::uint64_t size = 0;
  std::uint64_t alloc_seq = 0;  ///< dram_malloc order (1-based)
  std::uint64_t free_seq = 0;   ///< dram_free order (1-based)

  bool contains(Addr va) const { return va >= base && va < base + size; }
};

/// Allocation-lifecycle hook, implemented by the udcheck sanitizer. All
/// methods are no-ops by default so GlobalMemory pays nothing when no
/// observer is attached.
class MemoryObserver {
 public:
  virtual ~MemoryObserver() = default;
  virtual void on_alloc(const SwizzleDescriptor& d) { (void)d; }
  virtual void on_free(const SwizzleDescriptor& d, std::uint64_t free_seq) {
    (void)d;
    (void)free_seq;
  }
  virtual void on_bad_free(Addr base, bool double_free, const std::string& detail) {
    (void)base;
    (void)double_free;
    (void)detail;
  }
};

/// A shard-private copy of the live descriptor table, validated against the
/// authoritative table by version number. The sharded engine keeps one per
/// host thread and refreshes it at window boundaries (and on lookup miss), so
/// steady-state translation never takes the GlobalMemory mutex. Causality
/// makes window-boundary refresh sufficient: a shard can only learn a virtual
/// address from a cross-shard message, which arrives at least one full
/// lookahead window after the dram_malloc that mapped it.
struct DescriptorSnapshot {
  std::uint64_t version = ~0ull;  ///< never matches a real version initially
  std::vector<SwizzleDescriptor> descs;
};

class GlobalMemory {
 public:
  explicit GlobalMemory(std::uint32_t nodes)
      : nodes_(nodes), backing_(nodes), node_brk_(nodes, 0) {}

  std::uint32_t nodes() const { return nodes_; }

  /// DRAMmalloc. `block_size` must be a power of two (the hardware descriptor
  /// encodes it as a shift); `nr_nodes` a power of two with
  /// first_node + nr_nodes <= machine nodes.
  Addr dram_malloc(std::uint64_t size, std::uint32_t first_node, std::uint32_t nr_nodes,
                   std::uint64_t block_size);

  /// Convenience: spread an allocation over the whole machine with the given
  /// block size (the paper's default DRAMmalloc(size, 0, NRnodes, 32KB)).
  Addr dram_malloc_spread(std::uint64_t size, std::uint64_t block_size = 32 * 1024) {
    return dram_malloc(size, 0, nodes_, block_size);
  }

  /// Release a region previously returned by dram_malloc. Physical node
  /// memory is not compacted (matching a bump-allocated translation table);
  /// the descriptor is retired so its VA range can be reused.
  void dram_free(Addr base);

  std::size_t descriptor_count() const { return descriptors_.size(); }
  const SwizzleDescriptor& descriptor_for(Addr va) const { return find(va); }

  /// Hardware translation of a virtual address.
  PhysLoc translate(Addr va) const { return find(va).translate(va); }

  /// Translation through a shard-private snapshot (refreshed on miss).
  PhysLoc translate(Addr va, DescriptorSnapshot& snap) const {
    return find(va, &snap).translate(va);
  }

  /// Bring `snap` up to date with the authoritative table if any
  /// dram_malloc/dram_free happened since its last refresh.
  void refresh(DescriptorSnapshot& snap) const {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    if (snap.version == v) return;
    std::lock_guard<std::mutex> lk(mu_);
    snap.descs = descriptors_;
    snap.version = version_.load(std::memory_order_relaxed);
  }

  // ---- Physical access (used by the DRAM timing model at service time) ----
  Word read_word_phys(const PhysLoc& loc) const;
  void write_word_phys(const PhysLoc& loc, Word value);

  /// Word-run access for DRAM requests: translate the base once and walk
  /// contiguous words within each distribution block instead of re-translating
  /// every `addr + 8*i`. Semantically identical to a per-word
  /// read_word_phys(translate(...)) loop, including words that straddle a
  /// block boundary at unaligned addresses.
  /// The optional snapshot routes descriptor lookups through a shard-private
  /// copy of the table (see DescriptorSnapshot); pass nullptr for the
  /// authoritative table (serial engine, host side).
  void read_words(Addr va, Word* out, std::size_t nwords,
                  DescriptorSnapshot* snap = nullptr) const;
  void write_words(Addr va, const Word* in, std::size_t nwords,
                   DescriptorSnapshot* snap = nullptr);

  // ---- Host-side direct access (no simulated cost) -------------------------
  void host_write(Addr va, const void* data, std::size_t bytes);
  void host_read(Addr va, void* out, std::size_t bytes) const;

  template <typename T>
  T host_load(Addr va) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    host_read(va, &v, sizeof(T));
    return v;
  }

  template <typename T>
  void host_store(Addr va, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    host_write(va, &v, sizeof(T));
  }

  void host_fill(Addr va, std::uint8_t byte, std::size_t bytes);

  /// Total physical bytes currently reserved on `node`.
  std::uint64_t node_bytes(std::uint32_t node) const { return node_brk_[node]; }

  // ---- Introspection / checker support ------------------------------------
  /// No-throw lookup: the live descriptor covering `va`, or nullptr.
  const SwizzleDescriptor* find_live(Addr va) const;
  /// The most recently freed region covering `va`, or nullptr.
  const FreedRegion* find_freed(Addr va) const;
  /// No-throw lookup through a shard-private snapshot: the snapshot's
  /// descriptor covering `va`, refreshing once on miss (a shard can only
  /// learn a VA after the dram_malloc that mapped it). Safe to call from
  /// shard threads concurrently with other shards' allocations.
  const SwizzleDescriptor* find_snap(Addr va, DescriptorSnapshot& snap) const;
  /// Locked variant of find_freed that copies the region out, for use from
  /// shard threads (find_freed reads the table unlocked, host-side only).
  bool find_freed_locked(Addr va, FreedRegion* out) const;
  const std::vector<SwizzleDescriptor>& live_descriptors() const { return descriptors_; }
  const std::vector<FreedRegion>& freed_regions() const { return freed_; }
  /// Human-readable dump of the live descriptor table (+ freed regions),
  /// appended to translation/free fault messages.
  std::string describe() const;

  /// Attach an allocation-lifecycle observer (udcheck). Not owned; pass
  /// nullptr to detach.
  void set_observer(MemoryObserver* obs) { observer_ = obs; }

 private:
  const SwizzleDescriptor& find(Addr va, DescriptorSnapshot* snap = nullptr) const;
  std::uint8_t* phys_ptr(const PhysLoc& loc, std::size_t bytes);
  const std::uint8_t* phys_ptr(const PhysLoc& loc, std::size_t bytes) const;

  std::uint32_t nodes_;
  std::vector<SwizzleDescriptor> descriptors_;
  std::vector<FreedRegion> freed_;  ///< retired regions, in free order
  // Backing is fully materialized at dram_malloc time (under mu_), so
  // phys_ptr's on-demand growth only ever fires for host accesses outside the
  // parallel region; during sharded execution every mapped byte is resident
  // and pointer-stable.
  mutable std::vector<std::vector<std::uint8_t>> backing_;
  std::vector<std::uint64_t> node_brk_;  ///< per-node physical bump pointer
  Addr va_brk_ = 0x10000;                ///< VA 0 reserved (null)
  std::uint64_t alloc_seq_ = 0;          ///< dram_malloc counter (1-based)
  std::uint64_t free_seq_ = 0;           ///< dram_free counter (1-based)
  MemoryObserver* observer_ = nullptr;
  /// Serializes descriptor-table mutations against snapshot refreshes.
  /// Introspection helpers (describe, live_descriptors, find_live) read the
  /// authoritative table unlocked: they are host-side/error-path only.
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> version_{0};  ///< bumped on every table mutation
};

}  // namespace updown
