// Multi-tenant query kernels for job serving (ROADMAP item 2).
//
// The existing apps (src/apps/) are single-tenant by construction: each owns
// Machine::user<App>() and drives the machine to global drain. The serve
// layer re-expresses the same workloads as *queries* — self-contained KVMSR
// job bundles with per-query device arrays, a per-query device-side driver
// thread, and a host-visible completion flag — so any number of them can be
// resident at once, each on its own lane partition (or interleaved over the
// whole machine) with its own value placement (the paper's fig12
// `nr_nodes`-style knob).
//
// Per-query quiescence: a query is done when its driver thread sets
// Query::finished — the predicate handed to Machine::run_until. Nothing here
// waits for global drain; the host scheduler (serve/scheduler.hpp) resumes
// the engine while other queries stay in flight.
//
// Query kinds:
//   kPageRank  — push PageRank, `iterations` synchronous sweeps (propagate
//                job with f64 combining + apply job per sweep, chained by the
//                driver exactly like apps/pagerank).
//   kBfs       — level-synchronous BFS: one KVMSR job launch per round over
//                the whole key range; frontier membership is lane-local
//                scratchpad state modeled host-side (per-query flag vectors),
//                distances land in a per-query DRAM array.
//   kPathCount — 2-hop path count (#{(a,b,c): a->b->c}), the PartialMatch
//                stand-in: a two-edge pattern-matching query in one
//                map+reduce pass (cf. apps/partial_match).
//   kTriangles — triangle count, the tc app's stream-intersect reduce.
//   kIncPageRank — incremental PageRank refresh over a streaming ResidentState
//                (src/stream/): re-ranks only the delta-affected frontier, one
//                pull sweep per round against the resident rank history, each
//                round's affected set expanded host-side by the driver. Writes
//                land in the SAME rank_hist arrays a from-scratch pull sweep
//                would produce, so results are bit-equal to full recomputation.
//   kIncBfs    — incremental BFS frontier repair: seeded from delta-touched
//                sources, relaxes `dist` monotonically downward until no
//                vertex improves. With Seeds::kAll it doubles as the full BFS
//                that warms the resident state.
//
// Results are value-deterministic for a fixed machine + shard count; queries
// whose lane partition, graph copy, and value arrays are confined to a
// disjoint node partition are bit-identical to running alone (asserted in
// tests/serve/).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/layout.hpp"
#include "kvmsr/combining_cache.hpp"
#include "kvmsr/kvmsr.hpp"
#include "sim/machine.hpp"

namespace updown::serve {

using QueryId = std::uint32_t;

enum class QueryKind : std::uint8_t {
  kPageRank,
  kBfs,
  kPathCount,
  kTriangles,
  kIncPageRank,
  kIncBfs,
};

const char* kind_name(QueryKind k);

/// Device + host state an incremental query refreshes in place, owned by the
/// streaming session (stream::StreamEngine) and outliving any single query.
/// The serve layer takes it by pointer so serve/ does not depend on stream/.
struct ResidentState {
  const DeviceGraph* fwd = nullptr;  ///< post-epoch forward upload
  const DeviceGraph* rev = nullptr;  ///< post-epoch reverse upload
  const Graph* csr = nullptr;        ///< host mirror of fwd (affected-set expansion)
  /// PageRank rank history: rank_hist[k] = device f64 array of ranks after
  /// sweep k. Sweep k of a refresh reads rank_hist[k-1] (k==0 reads the
  /// uniform 1/n inline), so a partial re-rank reproduces the from-scratch
  /// Jacobi values bit-for-bit.
  std::vector<Addr> rank_hist;
  Addr dist_base = 0;      ///< BFS level array (device)
  std::vector<Word> dist;  ///< host mirror of dist_base, updated per round
  /// Dirty sets accumulated at compaction, consumed by the next refresh query
  /// with Seeds::kPending: pr_dirty = vertices whose in-edges or in-neighbor
  /// outdegrees changed; bfs_dirty = finite-dist sources with new out-edges.
  std::vector<VertexId> pr_dirty;
  std::vector<VertexId> bfs_dirty;
};

struct QuerySpec {
  QueryKind kind = QueryKind::kPageRank;
  /// Device graph the query reads (resident shared copy, or a per-query
  /// partition-local copy when bit-exact isolation is required). Must be an
  /// unsplit upload (num_vertices == num_original).
  const DeviceGraph* graph = nullptr;
  /// Lane partition the query's KVMSR jobs, driver, and reducers run on.
  /// count 0 = interleaved over the whole machine.
  kvmsr::LaneSet lanes;
  /// Placement of the query's own value arrays (rank/dist/count cells) —
  /// the fig12 placement knob. nr_nodes 0 = spread over the whole machine.
  GraphPlacement values;
  std::uint32_t iterations = 2;  ///< PageRank sweeps (0 = no-op query)
  double damping = 0.85;         ///< PageRank damping factor
  VertexId root = 0;             ///< BFS root
  std::uint32_t coalesce_tuples = 1;  ///< forwarded to the shuffle jobs
  /// kIncPageRank / kIncBfs only: the streaming session state the query
  /// refreshes. When set and `graph` is null, the engine fills graph from it
  /// (rev for kIncPageRank, fwd for kIncBfs). `iterations` must equal
  /// rank_hist.size() for kIncPageRank.
  ResidentState* resident = nullptr;
  /// Incremental seed policy. kPending consumes (moves and clears) the
  /// resident dirty set at add_query — so register the refresh query AFTER
  /// the epoch's compaction has run. kAll seeds every vertex (kIncPageRank)
  /// or just `root` with dist reset (kIncBfs) — the warm-up / full-recompute
  /// mode.
  enum class Seeds : std::uint8_t { kPending, kAll };
  Seeds seeds = Seeds::kPending;
  /// Query name; keep unique per query — it prefixes the KVMSR job names, so
  /// udtrace phase spans and diagnostics attribute work to this query.
  std::string name = "query";
};

struct QueryResult {
  Tick launch_tick = 0;
  Tick done_tick = 0;
  std::uint64_t rounds = 0;   ///< PR sweeps run / BFS rounds / 1
  std::uint64_t emitted = 0;  ///< shuffle tuples over all rounds
  std::uint64_t count = 0;    ///< kPathCount paths / kTriangles triangles
  bool cancelled = false;     ///< drained early via cancel()
  std::vector<double> rank;   ///< kPageRank
  std::vector<Word> dist;     ///< kBfs levels (kInfDist = unreachable)

  Tick duration() const { return done_tick - launch_tick; }
};

class QueryEngine {
 public:
  /// Register the engine (and its KVMSR/CombiningCache dependencies) on `m`.
  /// Call once, before Machine::run.
  static QueryEngine& install(Machine& m);

  explicit QueryEngine(Machine& m);

  /// Register a query: allocates its device arrays (per QuerySpec::values)
  /// and its KVMSR jobs. Does not launch.
  QueryId add_query(QuerySpec spec);

  /// Inject the query's driver start from the host, departing at simulated
  /// tick max(at, now). Host-side only (engine paused).
  void launch(QueryId q, Tick at = 0);

  bool launched(QueryId q) const { return queries_.at(q)->launched; }
  /// Host-visible completion flag — the run_until predicate for this query.
  bool done(QueryId q) const { return queries_.at(q)->finished; }

  /// Drain-to-cancel: the query stops starting new rounds, its in-flight
  /// KVMSR launch forfeits unissued map tasks (Library::request_cancel), and
  /// the driver finishes through the normal termination path — no leaked
  /// threads, udcheck-clean. Host-side only.
  void cancel(QueryId q);

  /// Read back results; valid once done(q). kIncPageRank / kIncBfs results
  /// are read from the LIVE resident arrays the query refreshed — collect
  /// them before a later epoch's refresh overwrites that state.
  QueryResult collect(QueryId q) const;

  /// Completion tick / cancellation flag without the array copies of
  /// collect(); valid once done(q).
  Tick done_tick(QueryId q) const { return queries_.at(q)->done_tick; }
  bool was_cancelled(QueryId q) const { return queries_.at(q)->cancel; }

  const QuerySpec& spec(QueryId q) const { return queries_.at(q)->spec; }
  /// Resolved lane partition of the query.
  kvmsr::LaneSet lanes(QueryId q) const;
  std::size_t num_queries() const { return queries_.size(); }

  /// Name of the LAUNCHED-and-unfinished query whose lane partition contains
  /// `lane`, or "" — the checker's leak-attribution annotator. Partition
  /// queries only (interleaved queries own no lane exclusively).
  std::string owner_of_lane(NetworkId lane) const;

  Machine& machine() { return m_; }
  kvmsr::Library& kvmsr_lib() { return *lib_; }

  // ---- Host-timer support for the scheduler ---------------------------------
  /// A `tick_label` event carrying {tick} publishes that tick to tick_seen()
  /// and terminates. The scheduler injects one per host-attention time
  /// (arrival, timed cancel) so a run_until predicate can stop the engine at
  /// a simulated time without peeking at mid-run engine state.
  EventLabel tick_label() const { return tick_; }
  Tick tick_seen() const {
    return static_cast<Tick>(tick_seen_.load(std::memory_order_acquire));
  }

 private:
  friend struct SqTick;
  friend struct SqDriver;
  friend struct SqPrMap;
  friend struct SqPrReduce;
  friend struct SqPrApply;
  friend struct SqBfsMap;
  friend struct SqBfsReduce;
  friend struct SqPcMap;
  friend struct SqPcReduce;
  friend struct SqTcMap;
  friend struct SqTcReduce;
  friend struct SqIprMap;
  friend struct SqIbfsMap;
  friend struct SqIbfsReduce;

  struct Query {
    QuerySpec spec;
    QueryId id = 0;
    kvmsr::JobId job = 0;        ///< propagate / round / single-pass job
    kvmsr::JobId apply_job = 0;  ///< kPageRank only
    kvmsr::LaneSet rlanes;       ///< spec.lanes with count 0 resolved
    // Per-query device arrays.
    Addr rank_base = 0;   ///< PR ranks (f64 per vertex)
    Addr acc_base = 0;    ///< PR accumulators (f64 per vertex)
    Addr dist_base = 0;   ///< BFS levels (word per vertex)
    Addr cells_base = 0;  ///< PC/TC per-partition-lane count cells
    // BFS lane-local frontier state, modeled host-side like apps/bfs: cur is
    // read by map tasks, nxt written by reduce tasks, swapped by the driver
    // between rounds (ordered by the round's message chain).
    std::vector<char> frontier[2];
    std::vector<char> visited;
    // kIncPageRank: visited, as a compact ascending list. The sweep job
    // launches keys [0, alist.size()) and maps key -> alist[key], so a
    // sweep's KVMSR cost scales with the affected set, not num_vertices.
    std::vector<VertexId> alist;
    unsigned cur_buf = 0;
    std::uint64_t seeded = 0;  ///< incremental: initial frontier size
    // kIncBfs per-round level snapshot: levels[v] = resident dist[v] at the
    // round boundary, refreshed by the driver between rounds so map tasks
    // never race the reduce-side dist updates within a round.
    std::vector<Word> levels;
    std::atomic<std::uint64_t> added{0};  ///< vertices discovered this round
    // Driver-owned progress (host-visible once published at a pause point).
    std::uint64_t round = 0;
    std::uint64_t emitted = 0;
    Tick launch_tick = 0;
    Tick done_tick = 0;
    bool launched = false;
    bool finished = false;
    bool cancel = false;  ///< host set; driver checks at round boundaries
  };

  Query& query_of_job(kvmsr::JobId j) { return *queries_.at(job2query_.at(j)); }
  Addr place(const QuerySpec& spec, std::uint64_t bytes);

  Machine& m_;
  kvmsr::Library* lib_ = nullptr;
  kvmsr::CombiningCache* cc_ = nullptr;
  std::vector<std::unique_ptr<Query>> queries_;
  std::unordered_map<kvmsr::JobId, QueryId> job2query_;

  // Event labels (registered once; per-query state rides in job ids).
  EventLabel d_start_ = 0;
  EventLabel tick_ = 0;
  std::atomic<std::uint64_t> tick_seen_{0};  ///< max fired tick time
  struct Labels {
    EventLabel d_pr_prop_done = 0;
    EventLabel d_pr_apply_done = 0;
    EventLabel d_bfs_round_done = 0;
    EventLabel d_pass_done = 0;  ///< kPathCount / kTriangles single pass
    EventLabel pr_rec = 0;
    EventLabel pr_rank = 0;
    EventLabel pr_nbrs = 0;
    EventLabel pr_acc = 0;
    EventLabel pr_written = 0;
    EventLabel bfs_rec = 0;
    EventLabel bfs_nbrs = 0;
    EventLabel bfs_written = 0;
    EventLabel pc_rec = 0;
    EventLabel pc_nbrs = 0;
    EventLabel pc_deg = 0;
    EventLabel tc_rec = 0;
    EventLabel tc_nbrs = 0;
    EventLabel tc_rrec = 0;
    EventLabel tc_xchunk = 0;
    EventLabel tc_ychunk = 0;
    EventLabel d_ipr_round_done = 0;
    EventLabel d_ibfs_round_done = 0;
    EventLabel ipr_rrec = 0;
    EventLabel ipr_ids = 0;
    EventLabel ipr_deg = 0;
    EventLabel ipr_rank = 0;
    EventLabel ipr_written = 0;
    EventLabel ibfs_rec = 0;
    EventLabel ibfs_nbrs = 0;
    EventLabel ibfs_written = 0;
  } lb_;
};

// ---- CPU oracles (host-side, for tests/benches) -----------------------------

/// #{(a,b,c) : a->b and b->c} = sum_a sum_{b in N(a)} outdeg(b) — the
/// kPathCount ground truth.
std::uint64_t cpu_path_count(const Graph& g);

}  // namespace updown::serve
