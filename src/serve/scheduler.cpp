#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/checker.hpp"
#include "common/env.hpp"
#include "sim/event_word.hpp"

namespace updown::serve {

const char* qos_name(QoS q) {
  switch (q) {
    case QoS::kHigh: return "high";
    case QoS::kNormal: return "normal";
    case QoS::kLow: return "low";
  }
  return "?";
}

const char* ticket_status_name(TicketStatus s) {
  switch (s) {
    case TicketStatus::kPending: return "pending";
    case TicketStatus::kQueued: return "queued";
    case TicketStatus::kRunning: return "running";
    case TicketStatus::kDone: return "done";
    case TicketStatus::kRejected: return "rejected";
    case TicketStatus::kCancelled: return "cancelled";
  }
  return "?";
}

SchedOptions SchedOptions::from_env() {
  SchedOptions o;
  o.max_concurrent = static_cast<std::uint32_t>(env_u64("UD_JOBS", o.max_concurrent, 2048));
  o.max_queue = static_cast<std::uint32_t>(env_u64("UD_JOBS_QUEUE", o.max_queue, 1u << 20));
  o.partition_lanes = env_flag("UD_JOBS_PARTITION", o.partition_lanes);
  o.aging_quantum = env_u64("UD_JOBS_AGING", o.aging_quantum, ~0ull);
  return o;
}

Scheduler::Scheduler(QueryEngine& eng, SchedOptions opt)
    : eng_(eng), m_(eng.machine()), opt_(opt) {
  if (opt_.max_concurrent == 0)
    throw std::invalid_argument("serve: SchedOptions::max_concurrent must be >= 1");
  if (opt_.partition_lanes && m_.config().total_lanes() < opt_.max_concurrent)
    throw std::invalid_argument("serve: fewer lanes than running slots to partition");
  slots_.assign(opt_.max_concurrent, kFreeSlot);
  // Leaked-thread diagnostics name the query owning the lane's partition.
  if (Checker* ck = m_.checker())
    ck->set_lane_annotator([&e = eng_](NetworkId l) { return e.owner_of_lane(l); });
}

TicketId Scheduler::submit(QuerySpec spec, QoS qos, Tick arrival) {
  const TicketId id = static_cast<TicketId>(tickets_.size());
  Ticket t;
  t.id = id;
  t.qos = qos;
  t.arrival = arrival;
  tickets_.push_back(t);
  specs_.push_back(std::move(spec));
  stats_base_.emplace_back();
  // Keep the unprocessed suffix of arrivals_ sorted by (arrival, id).
  const auto begin = arrivals_.begin() + static_cast<std::ptrdiff_t>(next_arrival_);
  const auto pos = std::upper_bound(begin, arrivals_.end(), id, [this](TicketId a, TicketId b) {
    const Ticket& ta = tickets_[a];
    const Ticket& tb = tickets_[b];
    return ta.arrival != tb.arrival ? ta.arrival < tb.arrival : ta.id < tb.id;
  });
  arrivals_.insert(pos, id);
  return id;
}

void Scheduler::request_cancel(TicketId t, Tick at) {
  if (t >= tickets_.size()) throw std::out_of_range("serve: cancel of unknown ticket");
  const auto begin = cancels_.begin() + static_cast<std::ptrdiff_t>(next_cancel_);
  CancelReq c{at, t};
  const auto pos = std::upper_bound(begin, cancels_.end(), c, [](const CancelReq& a, const CancelReq& b) {
    return a.at != b.at ? a.at < b.at : a.ticket < b.ticket;
  });
  cancels_.insert(pos, c);
}

MutationId Scheduler::add_mutation(Mutation mu) {
  const MutationId id = static_cast<MutationId>(muts_.size());
  muts_.push_back(MutRec{std::move(mu), false, false, 0});
  return id;
}

bool Scheduler::gated(const Ticket& tk) const {
  for (const MutRec& r : muts_)
    if (!r.applied && r.mu.arrival <= tk.arrival) return true;
  return false;
}

int Scheduler::effective_qos(const Ticket& tk, Tick now) const {
  int q = static_cast<int>(tk.qos);
  if (opt_.aging_quantum == 0) return q;
  const Tick wait = now > tk.arrival ? now - tk.arrival : 0;
  const Tick steps = wait / opt_.aging_quantum;
  return q - static_cast<int>(std::min<Tick>(steps, static_cast<Tick>(q)));
}

bool Scheduler::sched_before(const Ticket& a, const Ticket& b, Tick now) const {
  const int ea = effective_qos(a, now);
  const int eb = effective_qos(b, now);
  if (ea != eb) return ea < eb;
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}

bool Scheduler::maybe_apply(Tick now) {
  if (!running_.empty()) return false;
  bool any = false;
  for (MutRec& r : muts_) {
    if (r.applied) continue;
    if (!r.started || now < r.mu.not_before) break;
    if (r.mu.ingested && !r.mu.ingested()) break;
    if (r.mu.apply) r.mu.apply(now);
    r.applied = true;
    r.applied_tick = now;
    any = true;  // later mutations may now be due too; keep going in order
  }
  return any;
}

Tick Scheduler::next_attention() const {
  Tick t = kNever;
  if (next_arrival_ < arrivals_.size())
    t = std::min(t, tickets_[arrivals_[next_arrival_]].arrival);
  if (next_cancel_ < cancels_.size()) t = std::min(t, cancels_[next_cancel_].at);
  for (const MutRec& r : muts_) {
    if (r.applied) continue;
    t = std::min(t, r.started ? r.mu.not_before : r.mu.arrival);
  }
  return t;
}

void Scheduler::process_due(Tick now) {
  // Start due mutations' device-side ingestion (index order == apply order).
  for (MutRec& r : muts_)
    if (!r.started && r.mu.arrival <= now) {
      r.started = true;
      if (r.mu.start) r.mu.start(now);
    }
  // Interleave arrivals and cancels in time order; arrivals first on a tie so
  // a same-tick cancel can target the just-arrived ticket.
  for (;;) {
    const Tick ta = next_arrival_ < arrivals_.size()
                        ? tickets_[arrivals_[next_arrival_]].arrival
                        : kNever;
    const Tick tc = next_cancel_ < cancels_.size() ? cancels_[next_cancel_].at : kNever;
    if (ta <= tc && ta != kNever && ta <= now) {
      admit(arrivals_[next_arrival_++], now);
      continue;
    }
    if (tc != kNever && tc <= now) {
      const CancelReq c = cancels_[next_cancel_++];
      Ticket& tk = tickets_[c.ticket];
      switch (tk.status) {
        case TicketStatus::kPending:
          tk.status = TicketStatus::kCancelled;
          tk.done = c.at;
          break;
        case TicketStatus::kQueued:
          queue_.erase(std::find(queue_.begin(), queue_.end(), c.ticket));
          tk.status = TicketStatus::kCancelled;
          tk.done = now;
          break;
        case TicketStatus::kRunning:
          eng_.cancel(tk.query);  // drains; harvest() marks it kCancelled
          break;
        default:
          break;  // already resolved
      }
      continue;
    }
    break;
  }
}

void Scheduler::admit(TicketId t, Tick now) {
  Ticket& tk = tickets_[t];
  if (tk.status == TicketStatus::kCancelled) return;  // cancelled before arrival
  if (running_.size() < opt_.max_concurrent && !gated(tk)) {
    dispatch_one(t, now);
  } else if (queue_.size() < opt_.max_queue) {
    tk.status = TicketStatus::kQueued;
    queue_.push_back(t);
  } else {
    tk.status = TicketStatus::kRejected;
    tk.done = now;
    ++rejected_;
  }
}

void Scheduler::dispatch_ready(Tick now) {
  while (running_.size() < opt_.max_concurrent) {
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (gated(tickets_[*it])) continue;
      if (best == queue_.end() || sched_before(tickets_[*it], tickets_[*best], now))
        best = it;
    }
    if (best == queue_.end()) break;  // empty, or everything gated
    const TicketId t = *best;
    queue_.erase(best);
    dispatch_one(t, now);
  }
}

void Scheduler::dispatch_one(TicketId t, Tick now) {
  Ticket& tk = tickets_[t];
  QuerySpec spec = std::move(specs_[t]);
  if (opt_.partition_lanes && spec.lanes.count == 0) {
    const std::uint32_t slot = static_cast<std::uint32_t>(
        std::find(slots_.begin(), slots_.end(), kFreeSlot) - slots_.begin());
    const auto per = static_cast<std::uint32_t>(m_.config().total_lanes() /
                                                opt_.max_concurrent);
    spec.lanes.first = slot * per;
    spec.lanes.count = per;
    slots_[slot] = t;
  }
  tk.query = eng_.add_query(std::move(spec));
  tk.dispatched = true;
  tk.status = TicketStatus::kRunning;
  tk.dispatch = now;
  stats_base_[t] = m_.stats();
  eng_.launch(tk.query, now);
  running_.push_back(t);
}

void Scheduler::harvest() {
  for (std::size_t i = 0; i < running_.size();) {
    const TicketId t = running_[i];
    Ticket& tk = tickets_[t];
    if (!eng_.done(tk.query)) {
      ++i;
      continue;
    }
    tk.done = eng_.done_tick(tk.query);
    tk.status = eng_.was_cancelled(tk.query) ? TicketStatus::kCancelled
                                             : TicketStatus::kDone;
    tk.stats = m_.stats().counters_since(stats_base_[t]);
    for (TicketId& s : slots_)
      if (s == t) s = kFreeSlot;
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void Scheduler::ensure_tick(Tick at) {
  if (std::find(ticked_.begin(), ticked_.end(), at) != ticked_.end()) return;
  ticked_.push_back(at);
  m_.send_from_host_at(at, evw::make_new(0, eng_.tick_label()), {at});
}

void Scheduler::drain() {
  for (;;) {
    const Tick now = m_.now();
    process_due(now);
    dispatch_ready(now);
    harvest();  // a prior full drain may have finished queries unharvested
    if (maybe_apply(m_.now())) dispatch_ready(m_.now());  // ungates tickets
    bool more_host_work =
        next_arrival_ < arrivals_.size() || next_cancel_ < cancels_.size();
    for (const MutRec& r : muts_) more_host_work |= !r.applied;
    if (running_.empty() && queue_.empty() && !more_host_work) {
      // All tickets resolved. The last run_until may have stopped on the
      // final completion predicate rather than a clean drain, which skips
      // the checker's drain analysis and the trace rewrite — finish with a
      // full drain so both run (a no-op when already idle).
      m_.run();
      return;
    }
    const Tick target = next_attention();
    if (target != kNever) ensure_tick(target);
    // If the only thing left to wait for is a mutation's device-side
    // ingestion, no query-completion or timer predicate will fire — run the
    // ingest job to completion instead, then loop to apply it.
    bool ingest_only = running_.empty();
    if (ingest_only) {
      ingest_only = false;
      for (const MutRec& r : muts_) {
        if (r.applied) continue;
        ingest_only = r.started && r.mu.ingested && !r.mu.ingested();
        break;
      }
    }
    if (ingest_only && (target == kNever || eng_.tick_seen() >= target)) {
      m_.run();
      continue;
    }
    m_.run_until([this, target] {
      for (const TicketId t : running_)
        if (eng_.done(tickets_[t].query)) return true;
      if (running_.empty()) {
        for (const MutRec& r : muts_) {
          if (r.applied) continue;
          if (r.started && (!r.mu.ingested || r.mu.ingested()) &&
              (r.mu.not_before == 0 || eng_.tick_seen() >= r.mu.not_before))
            return true;
          break;  // mutations resolve in order
        }
      }
      return target != kNever && eng_.tick_seen() >= target;
    });
    harvest();
  }
}

}  // namespace updown::serve
