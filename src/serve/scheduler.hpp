// Host-side job scheduler: admission, QoS dispatch, and per-job quiescence
// over a QueryEngine (the tentpole of ROADMAP item 2).
//
// The scheduler owns the machine's simulated timeline. submit() only records
// a request — admission is decided at the request's ARRIVAL TICK with the
// queue state of that moment, exactly like a serving frontend: if a running
// slot is free the query dispatches, if the bounded admission queue has room
// it waits, otherwise it is REJECTED. drain() then walks simulated time with
// Machine::run_until, pausing the engine only at host-attention points:
//
//   predicate := (any running query finished) or (timer tick >= next
//                arrival/cancel time)
//
// where the timer ticks are real simulated events (QueryEngine::tick_label)
// injected from the host — the engine never busy-polls and the schedule is
// deterministic for a fixed machine + shard count.
//
// QoS: three classes; the queue dispatches in (qos, arrival, id) order, so a
// high-QoS query leapfrogs any backlog of lower classes but never preempts a
// running query (run-to-completion within a slot).
//
// Placement: with SchedOptions::partition_lanes (UD_JOBS_PARTITION) each
// running slot owns an equal share of the machine's lanes and a dispatched
// interleaved query (spec.lanes.count == 0) is rewritten onto its slot's
// share — the paper's fig12 partitioned serving mode. Queries that name an
// explicit lane partition keep it either way.
//
// Per-ticket stats: a MachineStats snapshot at dispatch and
// counters_since(snapshot) at completion give the host-side event/message
// counters spent while the ticket was running (overlapping tickets share the
// machine, so these are window counters, not an exclusive attribution).
// Mutations: add_mutation() interleaves a graph mutation into the admitted
// stream. A mutation has an arrival tick (its place in the admission order),
// an optional device-side ingestion phase started at arrival, and a
// host-side apply that runs only at a quiescent point — no queries in
// flight — at or after `not_before` (the streaming layer rounds this up to
// the next UD_STREAM_EPOCH boundary). Any ticket arriving at or after the
// mutation's arrival is held out of dispatch until the mutation applies, so
// post-delta queries always see the post-delta graph; earlier tickets run
// to completion first, which is what makes the apply point deterministic.
//
// Aging: with SchedOptions::aging_quantum > 0 (UD_JOBS_AGING) a queued
// ticket's effective QoS class improves by one for every quantum of ticks it
// has waited, so a saturated high-QoS stream cannot starve the batch tier
// forever. Off by default — dispatch order (and therefore every existing
// schedule) is unchanged unless the knob is set.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "serve/query_engine.hpp"
#include "sim/stats.hpp"

namespace updown::serve {

enum class QoS : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

const char* qos_name(QoS q);

using TicketId = std::uint32_t;

enum class TicketStatus : std::uint8_t {
  kPending,    ///< submitted; arrival tick not reached yet
  kQueued,     ///< admitted to the wait queue
  kRunning,    ///< dispatched to the engine
  kDone,       ///< finished (results collectable via query id)
  kRejected,   ///< admission queue full at arrival
  kCancelled,  ///< cancelled while queued or pending, or drained mid-flight
};

const char* ticket_status_name(TicketStatus s);

struct SchedOptions {
  std::uint32_t max_concurrent = 4;  ///< running slots (UD_JOBS)
  std::uint32_t max_queue = 16;      ///< admission queue bound (UD_JOBS_QUEUE)
  bool partition_lanes = false;      ///< slot lane partitions (UD_JOBS_PARTITION)
  /// Queue-wait ticks per one-class effective-QoS promotion (UD_JOBS_AGING).
  /// 0 = aging off: strict (qos, arrival, id) dispatch order.
  Tick aging_quantum = 0;

  /// Defaults overridden by UD_JOBS / UD_JOBS_QUEUE / UD_JOBS_PARTITION /
  /// UD_JOBS_AGING.
  static SchedOptions from_env();
};

using MutationId = std::uint32_t;

/// A graph mutation riding the admission stream (see header comment). The
/// scheduler only sequences it; the callbacks own the actual work (the
/// streaming layer binds them to delta-batch ingestion and compaction).
struct Mutation {
  Tick arrival = 0;     ///< place in the admission order
  Tick not_before = 0;  ///< apply at/after this tick (epoch boundary)
  /// Launch device-side ingestion; called once, at the first host-attention
  /// point at/after `arrival`. Null = no device phase.
  std::function<void(Tick)> start;
  /// True once the device-side ingestion has completed. Null = immediate.
  std::function<bool()> ingested;
  /// Host-side apply (compaction). Runs with no queries in flight, at a tick
  /// >= not_before. Null = marker-only mutation.
  std::function<void(Tick)> apply;
};

struct Ticket {
  TicketId id = 0;
  QoS qos = QoS::kNormal;
  TicketStatus status = TicketStatus::kPending;
  /// Engine query id; valid once dispatched (kRunning and later). Collect
  /// results with QueryEngine::collect(query).
  QueryId query = 0;
  bool dispatched = false;
  Tick arrival = 0;   ///< requested arrival tick
  Tick dispatch = 0;  ///< tick the query entered a running slot
  Tick done = 0;      ///< tick the query finished (or was cancelled)
  /// Host counters spent during [dispatch, done] (see header comment).
  MachineStats stats;

  Tick latency() const { return done - arrival; }
  Tick queue_wait() const { return dispatch - arrival; }
};

class Scheduler {
 public:
  explicit Scheduler(QueryEngine& eng, SchedOptions opt = SchedOptions::from_env());

  /// Record a request that arrives at simulated tick `arrival`. Admission is
  /// decided during drain(), at that tick. Returns the ticket id.
  TicketId submit(QuerySpec spec, QoS qos = QoS::kNormal, Tick arrival = 0);

  /// Cancel ticket `t` at simulated tick `at` (host-timed): a pending or
  /// queued ticket is dropped; a running one drains via QueryEngine::cancel.
  void request_cancel(TicketId t, Tick at);

  /// Interleave a mutation into the admission stream. Mutations apply in
  /// add_mutation order; add them in arrival order.
  MutationId add_mutation(Mutation mu);
  bool mutation_applied(MutationId m) const { return muts_.at(m).applied; }
  Tick mutation_applied_tick(MutationId m) const { return muts_.at(m).applied_tick; }
  std::size_t num_mutations() const { return muts_.size(); }

  /// Run the simulated timeline until every submitted ticket has resolved
  /// (done / rejected / cancelled). Idempotent; call again after more
  /// submit()s.
  void drain();

  const Ticket& ticket(TicketId t) const { return tickets_.at(t); }
  std::size_t num_tickets() const { return tickets_.size(); }
  std::uint32_t running() const { return static_cast<std::uint32_t>(running_.size()); }
  std::uint32_t queued() const { return static_cast<std::uint32_t>(queue_.size()); }
  std::uint64_t rejected() const { return rejected_; }
  const SchedOptions& options() const { return opt_; }

 private:
  static constexpr Tick kNever = std::numeric_limits<Tick>::max();

  struct CancelReq {
    Tick at = 0;
    TicketId ticket = 0;
  };

  struct MutRec {
    Mutation mu;
    bool started = false;
    bool applied = false;
    Tick applied_tick = 0;
  };

  Tick next_attention() const;     ///< earliest unprocessed arrival/cancel
  void process_due(Tick now);      ///< admissions + cancels with time <= now
  void admit(TicketId t, Tick now);
  void dispatch_ready(Tick now);   ///< queue -> free slots, QoS order
  void dispatch_one(TicketId t, Tick now);
  void harvest();                  ///< finished running tickets -> kDone
  void ensure_tick(Tick at);       ///< inject a host timer event once per time
  /// Dispatch hold: some unapplied mutation arrived at/before this ticket.
  bool gated(const Ticket& tk) const;
  /// QoS class after aging promotion (== qos when aging is off).
  int effective_qos(const Ticket& tk, Tick now) const;
  bool sched_before(const Ticket& a, const Ticket& b, Tick now) const;
  /// Apply every due mutation (in order) if the engine is quiescent.
  /// Returns true if any applied — gated tickets may now be eligible.
  bool maybe_apply(Tick now);

  QueryEngine& eng_;
  Machine& m_;
  SchedOptions opt_;
  std::vector<Ticket> tickets_;
  std::vector<QuerySpec> specs_;   ///< per ticket, consumed at dispatch
  std::vector<TicketId> arrivals_; ///< pending, sorted by (arrival, ticket)
  std::size_t next_arrival_ = 0;   ///< arrivals_ below this are processed
  std::vector<CancelReq> cancels_; ///< sorted by (at, ticket)
  std::size_t next_cancel_ = 0;
  std::vector<TicketId> queue_;    ///< admitted, waiting (unsorted; scanned)
  std::vector<TicketId> running_;
  static constexpr TicketId kFreeSlot = ~0u;
  std::vector<TicketId> slots_;    ///< slot -> ticket (partition mode)
  std::vector<MachineStats> stats_base_;  ///< per-ticket dispatch snapshots
  std::vector<Tick> ticked_;       ///< timer times already injected
  std::vector<MutRec> muts_;       ///< mutations, in apply order
  std::uint64_t rejected_ = 0;
};

}  // namespace updown::serve
