#include "serve/query_engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "apps/tc.hpp"  // pair_key/pair_x/pair_y packing

namespace updown::serve {

const char* kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kPageRank: return "pagerank";
    case QueryKind::kBfs: return "bfs";
    case QueryKind::kPathCount: return "pathcount";
    case QueryKind::kTriangles: return "triangles";
    case QueryKind::kIncPageRank: return "inc_pagerank";
    case QueryKind::kIncBfs: return "inc_bfs";
  }
  return "?";
}

// Host timer: publishes its firing time so a run_until predicate can stop the
// engine at a chosen simulated tick (scheduler arrivals, timed cancels).
struct SqTick : ThreadState {
  void t_fire(Ctx& ctx) {
    auto& seen = ctx.machine().service<QueryEngine>().tick_seen_;
    const std::uint64_t t = ctx.op(0);
    std::uint64_t cur = seen.load(std::memory_order_relaxed);
    while (cur < t &&
           !seen.compare_exchange_weak(cur, t, std::memory_order_release)) {
    }
    ctx.yield_terminate();
  }
};

// ---------------------------------------------------------------------------
// Driver: one device-side thread per query, living on the partition's first
// lane. Chains the query's KVMSR launches round by round via continuations
// and publishes the host-visible completion flag — the run_until predicate.
// ---------------------------------------------------------------------------
struct SqDriver : ThreadState {
  QueryId qid = 0;

  void d_start(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid = static_cast<QueryId>(ctx.op(0)));
    q.launch_tick = ctx.start_time();
    if (ctx.machine().tracer()) ctx.trace_phase_begin("serve:" + q.spec.name);
    switch (q.spec.kind) {
      case QueryKind::kPageRank:
        if (q.spec.iterations == 0) {
          finish(ctx, eng, q);
          return;
        }
        launch_main(ctx, eng, q, eng.lb_.d_pr_prop_done);
        break;
      case QueryKind::kBfs:
        launch_main(ctx, eng, q, eng.lb_.d_bfs_round_done);
        break;
      case QueryKind::kPathCount:
      case QueryKind::kTriangles:
        launch_main(ctx, eng, q, eng.lb_.d_pass_done);
        break;
      case QueryKind::kIncPageRank:
        if (q.spec.iterations == 0 || q.seeded == 0) {
          finish(ctx, eng, q);
          return;
        }
        launch_main(ctx, eng, q, eng.lb_.d_ipr_round_done);
        break;
      case QueryKind::kIncBfs:
        if (q.seeded == 0) {
          finish(ctx, eng, q);
          return;
        }
        launch_main(ctx, eng, q, eng.lb_.d_ibfs_round_done);
        break;
    }
  }

  void d_pr_prop_done(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid);
    q.emitted += ctx.op(0);
    eng.lib_->launch(ctx, q.apply_job, 0, q.spec.graph->num_vertices,
                     ctx.evw_update_event(ctx.cevnt(), eng.lb_.d_pr_apply_done));
  }

  void d_pr_apply_done(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid);
    q.round++;
    if (q.cancel || q.round >= q.spec.iterations) {
      finish(ctx, eng, q);
      return;
    }
    launch_main(ctx, eng, q, eng.lb_.d_pr_prop_done);
  }

  void d_bfs_round_done(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid);
    q.emitted += ctx.op(0);
    q.round++;
    if (q.cancel || q.added.load(std::memory_order_relaxed) == 0) {
      finish(ctx, eng, q);
      return;
    }
    // Swap frontier roles: the drained current buffer is cleared and becomes
    // the next round's write side. Host-side state, ordered by the round's
    // gather -> driver -> relaunch message chain.
    std::fill(q.frontier[q.cur_buf].begin(), q.frontier[q.cur_buf].end(), 0);
    q.cur_buf ^= 1;
    q.added.store(0, std::memory_order_relaxed);
    launch_main(ctx, eng, q, eng.lb_.d_bfs_round_done);
  }

  void d_pass_done(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid);
    q.emitted += ctx.op(0);
    q.round++;
    finish(ctx, eng, q);
  }

  void d_ipr_round_done(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid);
    q.emitted += ctx.op(0);
    q.round++;
    if (q.cancel || q.round >= q.spec.iterations) {
      finish(ctx, eng, q);
      return;
    }
    // Expand the affected set for the next sweep: A_{k+1} = A_k ∪ N_out(A_k).
    // Anything a changed sweep-k rank can reach at sweep k+1 gets re-ranked;
    // every other vertex's rank_hist[k+1] entry is already the full-sweep
    // value. Host-side state (frontier[0] as two-phase scratch), ordered by
    // the round's gather -> driver -> relaunch message chain.
    const serve::ResidentState* rs = q.spec.resident;
    const Graph& g = *rs->csr;
    const VertexId nv = g.num_vertices();
    if (q.seeded < nv) {
      for (VertexId u = 0; u < nv; ++u)
        if (q.visited[u])
          for (const VertexId w : g.neighbors_of(u))
            if (!q.visited[w]) q.frontier[0][w] = 1;
      for (VertexId w = 0; w < nv; ++w)
        if (q.frontier[0][w]) {
          q.visited[w] = 1;
          q.frontier[0][w] = 0;
        }
      q.alist.clear();
      for (VertexId v = 0; v < nv; ++v)
        if (q.visited[v]) q.alist.push_back(v);
    }
    launch_main(ctx, eng, q, eng.lb_.d_ipr_round_done);
  }

  void d_ibfs_round_done(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = *eng.queries_.at(qid);
    q.emitted += ctx.op(0);
    q.round++;
    if (q.cancel || q.added.load(std::memory_order_relaxed) == 0) {
      finish(ctx, eng, q);
      return;
    }
    std::fill(q.frontier[q.cur_buf].begin(), q.frontier[q.cur_buf].end(), 0);
    q.cur_buf ^= 1;
    q.added.store(0, std::memory_order_relaxed);
    // Snapshot the improved levels for the next round's map tasks: levels is
    // only written here, at the round barrier, so maps never race the
    // reduce-side dist updates within a round.
    const serve::ResidentState* rs = q.spec.resident;
    const VertexId nv = q.spec.graph->num_vertices;
    for (VertexId v = 0; v < nv; ++v)
      if (q.frontier[q.cur_buf][v]) q.levels[v] = rs->dist[v];
    launch_main(ctx, eng, q, eng.lb_.d_ibfs_round_done);
  }

 private:
  void launch_main(Ctx& ctx, QueryEngine& eng, QueryEngine::Query& q, EventLabel done) {
    // kIncPageRank sweeps launch only the affected keys (via alist
    // indirection); everything else maps over the full vertex range.
    const std::uint64_t hi = q.spec.kind == QueryKind::kIncPageRank
                                 ? q.alist.size()
                                 : q.spec.graph->num_vertices;
    eng.lib_->launch(ctx, q.job, 0, hi, ctx.evw_update_event(ctx.cevnt(), done));
  }

  void finish(Ctx& ctx, QueryEngine& eng, QueryEngine::Query& q) {
    q.done_tick = ctx.now();
    if (ctx.machine().tracer()) ctx.trace_phase_end("serve:" + q.spec.name);
    q.finished = true;  // published to the host at the next pause point
    (void)eng;
    ctx.yield_terminate();
  }
};

// ---------------------------------------------------------------------------
// PageRank propagate: per-vertex map emits rank/degree to every neighbor;
// reduce folds into the query's accumulator array through the (job-tagged)
// combining cache. Same shape as apps/pagerank, minus the split-vertex
// indirection: serve graphs are unsplit, so the map key IS the rank index.
// ---------------------------------------------------------------------------
struct SqPrMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word v = 0;
  Word degree = 0;
  Word nbr_ptr = 0;
  double contrib = 0.0;
  Word loaded = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    v = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(eng.query_of_job(job).spec.graph->vertex_addr(v), 8,
                       eng.lb_.pr_rec);
  }

  void pr_rec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    degree = ctx.op(DeviceGraph::kDegree);
    nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(3);
    if (degree == 0) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    ctx.send_dram_read(q.rank_base + v * 8, 1, eng.lb_.pr_rank);
  }

  void pr_rank(Ctx& ctx) {
    contrib = std::bit_cast<double>(ctx.op(0)) / static_cast<double>(degree);
    ctx.charge(2);
    auto& eng = ctx.machine().service<QueryEngine>();
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, eng.lb_.pr_nbrs);
    }
  }

  void pr_nbrs(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      eng.lib_->emit(ctx, job, ctx.op(i), std::bit_cast<Word>(contrib));
    }
    loaded += ctx.nops();
    if (loaded == degree) eng.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct SqPrReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    const kvmsr::JobId job = kvmsr::Library::reduce_job(ctx);
    auto& q = eng.query_of_job(job);
    const Word v = kvmsr::Library::reduce_key(ctx);
    const double c = std::bit_cast<double>(kvmsr::Library::reduce_val(ctx));
    eng.cc_->add_f64(ctx, q.acc_base + v * 8, c, job);
    eng.lib_->reduce_return(ctx, job);
  }
};

/// Apply sweep: rank'[v] = (1-d)/n + d*acc[v]; acked writes so the next
/// propagate cannot read a stale rank or accumulator.
struct SqPrApply : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word v = 0;
  unsigned acks = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    v = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(eng.query_of_job(job).acc_base + v * 8, 1, eng.lb_.pr_acc);
  }

  void pr_acc(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    const double sum = std::bit_cast<double>(ctx.op(0));
    const double n = static_cast<double>(q.spec.graph->num_original);
    const double rank = (1.0 - q.spec.damping) / n + q.spec.damping * sum;
    ctx.charge(4);
    ctx.send_dram_write(q.rank_base + v * 8, {std::bit_cast<Word>(rank)},
                        eng.lb_.pr_written);
    ctx.send_dram_write(q.acc_base + v * 8, {0}, eng.lb_.pr_written);
  }

  void pr_written(Ctx& ctx) {
    if (++acks == 2)
      ctx.machine().service<QueryEngine>().lib_->map_return(ctx, kvmsr_cont);
  }
};

// ---------------------------------------------------------------------------
// Level-synchronous BFS. Frontier membership is lane-local scratchpad state
// modeled host-side (the apps/bfs discipline): the map task for key v pays a
// one-cycle flag probe and expands only frontier vertices; the reduce
// test-and-sets the visited flag on v's hash-owner lane and writes the level
// into the query's dist array with an acked write.
// ---------------------------------------------------------------------------
struct SqBfsMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word v = 0;
  Word degree = 0;
  Word nbr_ptr = 0;
  Word loaded = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    v = kvmsr::Library::map_key(ctx);
    auto& q = eng.query_of_job(job);
    ctx.charge(1);  // scratchpad frontier-flag probe
    if (!q.frontier[q.cur_buf][v]) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    ctx.send_dram_read(q.spec.graph->vertex_addr(v), 8, eng.lb_.bfs_rec);
  }

  void bfs_rec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    degree = ctx.op(DeviceGraph::kDegree);
    nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, eng.lb_.bfs_nbrs);
    }
  }

  void bfs_nbrs(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      eng.lib_->emit(ctx, job, ctx.op(i), q.round + 1);
    }
    loaded += ctx.nops();
    if (loaded == degree) eng.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct SqBfsReduce : ThreadState {
  kvmsr::JobId job = 0;

  void kv_reduce(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::reduce_job(ctx);
    auto& q = eng.query_of_job(job);
    const Word v = kvmsr::Library::reduce_key(ctx);
    const Word level = kvmsr::Library::reduce_val(ctx);
    ctx.charge(2);  // scratchpad visited test-and-set
    if (q.visited[v]) {
      eng.lib_->reduce_return(ctx, job);
      return;
    }
    q.visited[v] = 1;
    q.frontier[q.cur_buf ^ 1][v] = 1;
    q.added.fetch_add(1, std::memory_order_relaxed);
    ctx.charge(1);
    // Acked: the level must be durable before the round can complete (dist
    // is only read back by the host, but an unacked in-flight write would be
    // an unordered access against a later query reusing the region).
    ctx.send_dram_write(q.dist_base + v * 8, {level}, eng.lb_.bfs_written);
  }

  void bfs_written(Ctx& ctx) {
    ctx.machine().service<QueryEngine>().lib_->reduce_return(ctx, job);
  }
};

// ---------------------------------------------------------------------------
// 2-hop path count (the PartialMatch stand-in): map emits one tuple per edge
// (a -> b, weight 1); the reduce on b's lane multiplies by outdeg(b). With
// shuffle combining (kSumU64) tuples for the same b merge map-side, so the
// reduce sees (b, #predecessors-in-buffer).
// ---------------------------------------------------------------------------
struct SqPcMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word degree = 0;
  Word loaded = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    const Word a = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(eng.query_of_job(job).spec.graph->vertex_addr(a), 8,
                       eng.lb_.pc_rec);
  }

  void pc_rec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    degree = ctx.op(DeviceGraph::kDegree);
    const Word nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, eng.lb_.pc_nbrs);
    }
  }

  void pc_nbrs(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      eng.lib_->emit(ctx, job, ctx.op(i), 1);
    }
    loaded += ctx.nops();
    if (loaded == degree) eng.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct SqPcReduce : ThreadState {
  kvmsr::JobId job = 0;
  Word paths_in = 0;

  void kv_reduce(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::reduce_job(ctx);
    const Word b = kvmsr::Library::reduce_key(ctx);
    paths_in = kvmsr::Library::reduce_val(ctx);
    ctx.charge(1);
    ctx.send_dram_read(eng.query_of_job(job).spec.graph->vertex_addr(b), 8,
                       eng.lb_.pc_deg);
  }

  void pc_deg(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    const Word deg = ctx.op(DeviceGraph::kDegree);
    ctx.charge(2);
    const Word found = paths_in * deg;
    if (found > 0) {
      const Addr cell =
          q.cells_base + static_cast<Addr>(ctx.nwid() - q.rlanes.first) * 8;
      eng.cc_->add_u64(ctx, cell, found, job);
    }
    eng.lib_->reduce_return(ctx, job);
  }
};

// ---------------------------------------------------------------------------
// Triangle count: apps/tc's pair-enumeration map and stream-intersect reduce,
// re-homed onto per-query count cells and the job-tagged combining cache.
// ---------------------------------------------------------------------------
struct SqTcMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word x = 0;
  Word degree = 0;
  Word loaded = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    x = kvmsr::Library::map_key(ctx);
    ctx.send_dram_read(eng.query_of_job(job).spec.graph->vertex_addr(x), 8,
                       eng.lb_.tc_rec);
  }

  void tc_rec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    degree = ctx.op(DeviceGraph::kDegree);
    const Word nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, eng.lb_.tc_nbrs);
    }
  }

  void tc_nbrs(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      const Word y = ctx.op(i);
      ctx.charge(1);
      if (y < x) eng.lib_->emit(ctx, job, tc::pair_key(x, y), 0);
    }
    loaded += ctx.nops();
    if (loaded == degree) eng.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct SqTcReduce : ThreadState {
  kvmsr::JobId job = 0;
  Word x = 0, y = 0;
  Word deg[2] = {0, 0};
  Word ptr[2] = {0, 0};
  unsigned recs = 0;
  std::vector<Word> list[2];
  Word arrived = 0, expected = 0;
  Word found = 0;

  void kv_reduce(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::reduce_job(ctx);
    const Word key = kvmsr::Library::reduce_key(ctx);
    x = tc::pair_x(key);
    y = tc::pair_y(key);
    ctx.charge(2);
    const DeviceGraph* dg = eng.query_of_job(job).spec.graph;
    ctx.send_dram_read(dg->vertex_addr(x), 8, eng.lb_.tc_rrec);
    ctx.send_dram_read(dg->vertex_addr(y), 8, eng.lb_.tc_rrec);
  }

  void tc_rrec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    const DeviceGraph* dg = eng.query_of_job(job).spec.graph;
    const unsigned side = ctx.ccont() == dg->vertex_addr(x) ? 0 : 1;
    deg[side] = ctx.op(DeviceGraph::kDegree);
    ptr[side] = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (++recs < 2) return;
    if (deg[0] == 0 || deg[1] == 0) {
      finish(ctx);
      return;
    }
    for (unsigned s = 0; s < 2; ++s) {
      list[s].assign(deg[s], 0);
      for (Word i = 0; i < deg[s]; i += 8) {
        const unsigned n = static_cast<unsigned>(std::min<Word>(8, deg[s] - i));
        ctx.charge(2);
        ctx.send_dram_read(ptr[s] + i * 8, n,
                           s == 0 ? eng.lb_.tc_xchunk : eng.lb_.tc_ychunk);
        ++expected;
      }
    }
  }

  void tc_xchunk(Ctx& ctx) { chunk_arrived(ctx, 0); }
  void tc_ychunk(Ctx& ctx) { chunk_arrived(ctx, 1); }

 private:
  void chunk_arrived(Ctx& ctx, unsigned side) {
    const Word base = (ctx.ccont() - ptr[side]) / 8;
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      list[side][base + i] = ctx.op(i);
    }
    if (++arrived == expected) merge(ctx);
  }

  void merge(Ctx& ctx) {
    std::size_t i = 0, j = 0;
    while (i < list[0].size() && j < list[1].size()) {
      const Word a = list[0][i], b = list[1][j];
      ctx.charge(1);
      if (a >= y || b >= y) break;  // only the z < y prefix counts
      if (a < b) {
        ++i;
      } else if (b < a) {
        ++j;
      } else {
        ++found;
        ++i;
        ++j;
      }
    }
    finish(ctx);
  }

  void finish(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    if (found > 0) {
      const Addr cell =
          q.cells_base + static_cast<Addr>(ctx.nwid() - q.rlanes.first) * 8;
      eng.cc_->add_u64(ctx, cell, found, job);
    }
    eng.lib_->reduce_return(ctx, job);
  }
};

// ---------------------------------------------------------------------------
// Incremental PageRank sweep: pull-over-reverse-CSR, affected vertices only.
// The map task for an affected v gathers v's in-neighbor list from the
// resident REVERSE graph, then for each in-neighbor u reads its live
// out-degree (forward vertex record) and its sweep-(k-1) rank from the
// resident rank history, and accumulates pr(u)/outdeg(u) in ascending-u
// order — the exact quotients and addition order of the from-scratch Jacobi
// baseline, so the refreshed rank_hist[k][v] is bit-equal to a full sweep.
// Map-only job: the result is an acked in-place write, nothing shuffles.
// ---------------------------------------------------------------------------
struct SqIprMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word v = 0;
  Word rdeg = 0;
  Word rptr = 0;
  std::vector<Word> ids;    ///< in-neighbor ids, ascending (rev CSR is sorted)
  Word ids_got = 0;
  std::vector<Word> degs;   ///< out-degree per in-neighbor position
  std::vector<Word> ranks;  ///< sweep-(k-1) rank bits per position
  Word got = 0, need = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    auto& q = eng.query_of_job(job);
    // Keys index the compact affected list, not the vertex range: sweeps
    // never spawn tasks for untouched vertices.
    v = q.alist[kvmsr::Library::map_key(ctx)];
    ctx.charge(1);  // scratchpad affected-list lookup
    ctx.send_dram_read(q.spec.graph->vertex_addr(v), 8, eng.lb_.ipr_rrec);
  }

  void ipr_rrec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    rdeg = ctx.op(DeviceGraph::kDegree);
    rptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (rdeg == 0) {
      finalize(ctx, 0.0);
      return;
    }
    ids.assign(rdeg, 0);
    for (Word i = 0; i < rdeg; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, rdeg - i));
      ctx.charge(2);
      ctx.send_dram_read(rptr + i * 8, n, eng.lb_.ipr_ids);
    }
  }

  void ipr_ids(Ctx& ctx) {
    const Word base = (ctx.ccont() - rptr) / 8;
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      ids[base + i] = ctx.op(i);
    }
    ids_got += ctx.nops();
    if (ids_got == rdeg) gather(ctx);
  }

  void ipr_deg(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    const ResidentState* rs = eng.query_of_job(job).spec.resident;
    const Word u = (ctx.ccont() - rs->fwd->field_addr(0, DeviceGraph::kDegree)) /
                   DeviceGraph::kVertexBytes;
    ctx.charge(1);
    degs[position_of(u)] = ctx.op(0);
    if (++got == need) accumulate(ctx);
  }

  void ipr_rank(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    const Word u = (ctx.ccont() - q.spec.resident->rank_hist[q.round - 1]) / 8;
    ctx.charge(1);
    ranks[position_of(u)] = ctx.op(0);
    if (++got == need) accumulate(ctx);
  }

  void ipr_written(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    eng.lib_->map_return(ctx, kvmsr_cont);
  }

 private:
  Word position_of(Word u) const {
    return static_cast<Word>(std::lower_bound(ids.begin(), ids.end(), u) -
                             ids.begin());
  }

  void gather(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    const ResidentState* rs = q.spec.resident;
    const Word k = q.round;
    degs.assign(rdeg, 0);
    ranks.assign(rdeg, 0);
    got = 0;
    need = rdeg * (k ? 2 : 1);
    for (const Word u : ids) {
      ctx.charge(1);
      ctx.send_dram_read(rs->fwd->field_addr(u, DeviceGraph::kDegree), 1,
                         eng.lb_.ipr_deg);
      // Sweep 0 reads the uniform 1/n init inline; later sweeps read the
      // previous sweep's resident rank array.
      if (k) ctx.send_dram_read(rs->rank_hist[k - 1] + u * 8, 1, eng.lb_.ipr_rank);
    }
  }

  void accumulate(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    const double inv_n =
        1.0 / static_cast<double>(q.spec.graph->num_original);
    double acc = 0.0;
    for (Word pos = 0; pos < rdeg; ++pos) {
      const double pr_u =
          q.round ? std::bit_cast<double>(ranks[pos]) : inv_n;
      ctx.charge(2);
      acc += pr_u / static_cast<double>(degs[pos]);
    }
    finalize(ctx, acc);
  }

  void finalize(Ctx& ctx, double acc) {
    auto& eng = ctx.machine().service<QueryEngine>();
    auto& q = eng.query_of_job(job);
    const double n = static_cast<double>(q.spec.graph->num_original);
    const double rank = (1.0 - q.spec.damping) / n + q.spec.damping * acc;
    ctx.charge(4);
    // Acked: the next sweep reads this array; the write must be durable
    // before the round completes.
    ctx.send_dram_write(q.spec.resident->rank_hist[q.round] + v * 8,
                        {std::bit_cast<Word>(rank)}, eng.lb_.ipr_written);
  }
};

// ---------------------------------------------------------------------------
// Incremental BFS frontier repair: seeded from delta-touched sources, each
// round relaxes `dist` monotonically downward (improve-test in the reduce),
// so final levels are independent of message arrival order — and of shard
// count, work stealing, and unrelated concurrent jobs. Map tasks read level
// candidates from the per-round `levels` snapshot, never live dist.
// ---------------------------------------------------------------------------
struct SqIbfsMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  Word v = 0;
  Word degree = 0;
  Word nbr_ptr = 0;
  Word level_out = 0;
  Word loaded = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::map_job(ctx);
    v = kvmsr::Library::map_key(ctx);
    auto& q = eng.query_of_job(job);
    ctx.charge(1);  // scratchpad frontier-flag probe
    if (!q.frontier[q.cur_buf][v]) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    ctx.charge(1);  // level-snapshot fetch
    level_out = q.levels[v] + 1;
    ctx.send_dram_read(q.spec.graph->vertex_addr(v), 8, eng.lb_.ibfs_rec);
  }

  void ibfs_rec(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    degree = ctx.op(DeviceGraph::kDegree);
    nbr_ptr = ctx.op(DeviceGraph::kNbrPtr);
    ctx.charge(2);
    if (degree == 0) {
      eng.lib_->map_return(ctx, kvmsr_cont);
      return;
    }
    for (Word i = 0; i < degree; i += 8) {
      const unsigned n = static_cast<unsigned>(std::min<Word>(8, degree - i));
      ctx.charge(2);
      ctx.send_dram_read(nbr_ptr + i * 8, n, eng.lb_.ibfs_nbrs);
    }
  }

  void ibfs_nbrs(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      ctx.charge(1);
      eng.lib_->emit(ctx, job, ctx.op(i), level_out);
    }
    loaded += ctx.nops();
    if (loaded == degree) eng.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct SqIbfsReduce : ThreadState {
  kvmsr::JobId job = 0;

  void kv_reduce(Ctx& ctx) {
    auto& eng = ctx.machine().service<QueryEngine>();
    job = kvmsr::Library::reduce_job(ctx);
    auto& q = eng.query_of_job(job);
    ResidentState* rs = q.spec.resident;
    const Word w = kvmsr::Library::reduce_key(ctx);
    const Word level = kvmsr::Library::reduce_val(ctx);
    ctx.charge(2);  // improve-test against the lane-owned mirror entry
    if (level >= rs->dist[w]) {
      eng.lib_->reduce_return(ctx, job);
      return;
    }
    rs->dist[w] = level;  // w's hash-owner lane serializes updates to dist[w]
    q.frontier[q.cur_buf ^ 1][w] = 1;
    q.added.fetch_add(1, std::memory_order_relaxed);
    ctx.charge(1);
    ctx.send_dram_write(rs->dist_base + w * 8, {level}, eng.lb_.ibfs_written);
  }

  void ibfs_written(Ctx& ctx) {
    ctx.machine().service<QueryEngine>().lib_->reduce_return(ctx, job);
  }
};

// ---------------------------------------------------------------------------
// QueryEngine
// ---------------------------------------------------------------------------

QueryEngine& QueryEngine::install(Machine& m) {
  if (m.has_service<QueryEngine>()) return m.service<QueryEngine>();
  return m.add_service<QueryEngine>(m);
}

QueryEngine::QueryEngine(Machine& m) : m_(m) {
  lib_ = &kvmsr::Library::install(m);
  cc_ = &kvmsr::CombiningCache::install(m);
  Program& p = m.program();

  d_start_ = p.event("serve::d_start", &SqDriver::d_start);
  tick_ = p.event("serve::sched_tick", &SqTick::t_fire);
  lb_.d_pr_prop_done = p.event("serve::d_pr_prop_done", &SqDriver::d_pr_prop_done);
  lb_.d_pr_apply_done = p.event("serve::d_pr_apply_done", &SqDriver::d_pr_apply_done);
  lb_.d_bfs_round_done = p.event("serve::d_bfs_round_done", &SqDriver::d_bfs_round_done);
  lb_.d_pass_done = p.event("serve::d_pass_done", &SqDriver::d_pass_done);
  lb_.pr_rec = p.event("serve::pr_rec", &SqPrMap::pr_rec);
  lb_.pr_rank = p.event("serve::pr_rank", &SqPrMap::pr_rank);
  lb_.pr_nbrs = p.event("serve::pr_nbrs", &SqPrMap::pr_nbrs);
  lb_.pr_acc = p.event("serve::pr_acc", &SqPrApply::pr_acc);
  lb_.pr_written = p.event("serve::pr_written", &SqPrApply::pr_written);
  lb_.bfs_rec = p.event("serve::bfs_rec", &SqBfsMap::bfs_rec);
  lb_.bfs_nbrs = p.event("serve::bfs_nbrs", &SqBfsMap::bfs_nbrs);
  lb_.bfs_written = p.event("serve::bfs_written", &SqBfsReduce::bfs_written);
  lb_.pc_rec = p.event("serve::pc_rec", &SqPcMap::pc_rec);
  lb_.pc_nbrs = p.event("serve::pc_nbrs", &SqPcMap::pc_nbrs);
  lb_.pc_deg = p.event("serve::pc_deg", &SqPcReduce::pc_deg);
  lb_.tc_rec = p.event("serve::tc_rec", &SqTcMap::tc_rec);
  lb_.tc_nbrs = p.event("serve::tc_nbrs", &SqTcMap::tc_nbrs);
  lb_.tc_rrec = p.event("serve::tc_rrec", &SqTcReduce::tc_rrec);
  lb_.tc_xchunk = p.event("serve::tc_xchunk", &SqTcReduce::tc_xchunk);
  lb_.tc_ychunk = p.event("serve::tc_ychunk", &SqTcReduce::tc_ychunk);
  lb_.d_ipr_round_done = p.event("serve::d_ipr_round_done", &SqDriver::d_ipr_round_done);
  lb_.d_ibfs_round_done = p.event("serve::d_ibfs_round_done", &SqDriver::d_ibfs_round_done);
  lb_.ipr_rrec = p.event("serve::ipr_rrec", &SqIprMap::ipr_rrec);
  lb_.ipr_ids = p.event("serve::ipr_ids", &SqIprMap::ipr_ids);
  lb_.ipr_deg = p.event("serve::ipr_deg", &SqIprMap::ipr_deg);
  lb_.ipr_rank = p.event("serve::ipr_rank", &SqIprMap::ipr_rank);
  lb_.ipr_written = p.event("serve::ipr_written", &SqIprMap::ipr_written);
  lb_.ibfs_rec = p.event("serve::ibfs_rec", &SqIbfsMap::ibfs_rec);
  lb_.ibfs_nbrs = p.event("serve::ibfs_nbrs", &SqIbfsMap::ibfs_nbrs);
  lb_.ibfs_written = p.event("serve::ibfs_written", &SqIbfsReduce::ibfs_written);
}

Addr QueryEngine::place(const QuerySpec& spec, std::uint64_t bytes) {
  const std::uint32_t nr =
      spec.values.nr_nodes ? spec.values.nr_nodes : m_.config().nodes;
  return m_.memory().dram_malloc(std::max<std::uint64_t>(8, bytes),
                                 spec.values.first_node, nr,
                                 spec.values.block_size);
}

QueryId QueryEngine::add_query(QuerySpec spec) {
  if (!spec.graph && spec.resident) {
    if (spec.kind == QueryKind::kIncPageRank) spec.graph = spec.resident->rev;
    if (spec.kind == QueryKind::kIncBfs) spec.graph = spec.resident->fwd;
  }
  if (!spec.graph) throw std::invalid_argument("serve: QuerySpec::graph is null");
  if (spec.graph->num_vertices != spec.graph->num_original)
    throw std::invalid_argument(
        "serve: queries require an unsplit graph (num_vertices == num_original)");
  const std::uint64_t nv = spec.graph->num_vertices;
  if (spec.lanes.count != 0 &&
      spec.lanes.first + spec.lanes.count > m_.config().total_lanes())
    throw std::invalid_argument("serve: lane partition beyond the machine");
  if (spec.kind == QueryKind::kBfs && spec.root >= nv)
    throw std::invalid_argument("serve: BFS root out of range");

  auto qp = std::make_unique<Query>();
  Query& q = *qp;
  q.spec = std::move(spec);
  q.id = static_cast<QueryId>(queries_.size());
  q.rlanes = q.spec.lanes;
  if (q.rlanes.count == 0) {
    q.rlanes.first = 0;
    q.rlanes.count = static_cast<std::uint32_t>(m_.config().total_lanes());
  }

  Program& p = m_.program();
  kvmsr::JobSpec js;
  js.lanes = q.spec.lanes;
  js.coalesce_tuples = q.spec.coalesce_tuples;
  js.name = q.spec.name;

  switch (q.spec.kind) {
    case QueryKind::kPageRank: {
      q.rank_base = place(q.spec, nv * 8);
      q.acc_base = place(q.spec, nv * 8);
      const double init = nv ? 1.0 / static_cast<double>(nv) : 0.0;
      for (VertexId v = 0; v < nv; ++v) {
        m_.memory().host_store<double>(q.rank_base + v * 8, init);
        m_.memory().host_store<double>(q.acc_base + v * 8, 0.0);
      }
      js.kv_map = p.event("serve::pr_map", &SqPrMap::kv_map);
      js.kv_reduce = p.event("serve::pr_reduce", &SqPrReduce::kv_reduce);
      js.flush = cc_->flush_label();
      js.combiner = kvmsr::Combiner::kSumF64;
      js.name = q.spec.name + ".prop";
      q.job = lib_->add_job(js);

      kvmsr::JobSpec as;
      as.kv_map = p.event("serve::pr_apply", &SqPrApply::kv_map);
      as.lanes = q.spec.lanes;
      as.name = q.spec.name + ".apply";
      q.apply_job = lib_->add_job(as);
      job2query_[q.apply_job] = q.id;
      break;
    }
    case QueryKind::kBfs: {
      q.dist_base = place(q.spec, nv * 8);
      for (VertexId v = 0; v < nv; ++v)
        m_.memory().host_store<Word>(q.dist_base + v * 8, kInfDist);
      q.frontier[0].assign(nv, 0);
      q.frontier[1].assign(nv, 0);
      q.visited.assign(nv, 0);
      q.frontier[0][q.spec.root] = 1;
      q.visited[q.spec.root] = 1;
      m_.memory().host_store<Word>(q.dist_base + q.spec.root * 8, 0);
      js.kv_map = p.event("serve::bfs_map", &SqBfsMap::kv_map);
      js.kv_reduce = p.event("serve::bfs_reduce", &SqBfsReduce::kv_reduce);
      js.name = q.spec.name + ".round";
      q.job = lib_->add_job(js);
      break;
    }
    case QueryKind::kPathCount: {
      q.cells_base = place(q.spec, static_cast<std::uint64_t>(q.rlanes.count) * 8);
      for (std::uint32_t l = 0; l < q.rlanes.count; ++l)
        m_.memory().host_store<Word>(q.cells_base + static_cast<Addr>(l) * 8, 0);
      js.kv_map = p.event("serve::pc_map", &SqPcMap::kv_map);
      js.kv_reduce = p.event("serve::pc_reduce", &SqPcReduce::kv_reduce);
      js.flush = cc_->flush_label();
      js.combiner = kvmsr::Combiner::kSumU64;
      js.name = q.spec.name + ".paths";
      q.job = lib_->add_job(js);
      break;
    }
    case QueryKind::kTriangles: {
      q.cells_base = place(q.spec, static_cast<std::uint64_t>(q.rlanes.count) * 8);
      for (std::uint32_t l = 0; l < q.rlanes.count; ++l)
        m_.memory().host_store<Word>(q.cells_base + static_cast<Addr>(l) * 8, 0);
      js.kv_map = p.event("serve::tc_map", &SqTcMap::kv_map);
      js.kv_reduce = p.event("serve::tc_reduce", &SqTcReduce::kv_reduce);
      js.flush = cc_->flush_label();
      js.name = q.spec.name + ".tc";
      q.job = lib_->add_job(js);
      break;
    }
    case QueryKind::kIncPageRank: {
      ResidentState* rs = q.spec.resident;
      if (!rs || !rs->rev || !rs->fwd || !rs->csr)
        throw std::invalid_argument(
            "serve: kIncPageRank requires a ResidentState with fwd/rev/csr");
      if (q.spec.iterations != rs->rank_hist.size())
        throw std::invalid_argument(
            "serve: kIncPageRank iterations must equal rank_hist depth");
      q.visited.assign(nv, 0);     // affected flags
      q.frontier[0].assign(nv, 0);  // expansion scratch
      if (q.spec.seeds == QuerySpec::Seeds::kAll) {
        std::fill(q.visited.begin(), q.visited.end(), 1);
        q.seeded = nv;
      } else {
        for (const VertexId v : rs->pr_dirty)
          if (v < nv && !q.visited[v]) {
            q.visited[v] = 1;
            ++q.seeded;
          }
        rs->pr_dirty.clear();
      }
      q.alist.reserve(q.seeded);
      for (VertexId v = 0; v < nv; ++v)
        if (q.visited[v]) q.alist.push_back(v);
      js.kv_map = p.event("serve::ipr_map", &SqIprMap::kv_map);
      js.name = q.spec.name + ".rank";
      q.job = lib_->add_job(js);
      break;
    }
    case QueryKind::kIncBfs: {
      ResidentState* rs = q.spec.resident;
      if (!rs || !rs->fwd)
        throw std::invalid_argument("serve: kIncBfs requires a ResidentState");
      if (rs->dist.size() != nv)
        throw std::invalid_argument(
            "serve: ResidentState dist mirror does not match the graph");
      q.frontier[0].assign(nv, 0);
      q.frontier[1].assign(nv, 0);
      if (q.spec.seeds == QuerySpec::Seeds::kAll) {
        if (q.spec.root >= nv)
          throw std::invalid_argument("serve: BFS root out of range");
        // Full traversal from scratch: reset the resident levels.
        std::fill(rs->dist.begin(), rs->dist.end(), kInfDist);
        rs->dist[q.spec.root] = 0;
        for (VertexId v = 0; v < nv; ++v)
          m_.memory().host_store<Word>(rs->dist_base + v * 8, rs->dist[v]);
        q.frontier[0][q.spec.root] = 1;
        q.seeded = 1;
      } else {
        // Repair: only delta-touched sources that are themselves reachable
        // can lower a neighbor's level.
        for (const VertexId v : rs->bfs_dirty)
          if (v < nv && rs->dist[v] != kInfDist && !q.frontier[0][v]) {
            q.frontier[0][v] = 1;
            ++q.seeded;
          }
        rs->bfs_dirty.clear();
      }
      q.levels = rs->dist;
      js.kv_map = p.event("serve::ibfs_map", &SqIbfsMap::kv_map);
      js.kv_reduce = p.event("serve::ibfs_reduce", &SqIbfsReduce::kv_reduce);
      js.name = q.spec.name + ".repair";
      q.job = lib_->add_job(js);
      break;
    }
  }
  job2query_[q.job] = q.id;
  queries_.push_back(std::move(qp));
  return q.id;
}

void QueryEngine::launch(QueryId qid, Tick at) {
  Query& q = *queries_.at(qid);
  if (q.launched)
    throw std::logic_error("serve: query '" + q.spec.name + "' launched twice");
  q.launched = true;
  m_.send_from_host_at(at, evw::make_new(q.rlanes.first, d_start_), {qid});
}

void QueryEngine::cancel(QueryId qid) {
  Query& q = *queries_.at(qid);
  if (!q.launched || q.finished) return;
  q.cancel = true;  // driver stops chaining rounds
  // Truncate the in-flight KVMSR launch too: workers forfeit unissued keys.
  lib_->request_cancel(q.job);
  if (q.spec.kind == QueryKind::kPageRank) lib_->request_cancel(q.apply_job);
}

kvmsr::LaneSet QueryEngine::lanes(QueryId qid) const {
  return queries_.at(qid)->rlanes;
}

std::string QueryEngine::owner_of_lane(NetworkId lane) const {
  for (const auto& qp : queries_) {
    const Query& q = *qp;
    if (!q.launched || q.finished || q.spec.lanes.count == 0) continue;
    if (lane >= q.rlanes.first && lane < q.rlanes.first + q.rlanes.count)
      return q.spec.name;
  }
  return {};
}

QueryResult QueryEngine::collect(QueryId qid) const {
  const Query& q = *queries_.at(qid);
  if (!q.finished)
    throw std::logic_error("serve: collect('" + q.spec.name + "') before done");
  QueryResult r;
  r.launch_tick = q.launch_tick;
  r.done_tick = q.done_tick;
  r.rounds = q.round;
  r.emitted = q.emitted;
  r.cancelled = q.cancel;
  const std::uint64_t nv = q.spec.graph->num_vertices;
  switch (q.spec.kind) {
    case QueryKind::kPageRank:
      r.rank.resize(nv);
      for (VertexId v = 0; v < nv; ++v)
        r.rank[v] = m_.memory().host_load<double>(q.rank_base + v * 8);
      break;
    case QueryKind::kBfs:
      r.dist.resize(nv);
      for (VertexId v = 0; v < nv; ++v)
        r.dist[v] = m_.memory().host_load<Word>(q.dist_base + v * 8);
      break;
    case QueryKind::kPathCount:
    case QueryKind::kTriangles:
      for (std::uint32_t l = 0; l < q.rlanes.count; ++l)
        r.count += m_.memory().host_load<Word>(q.cells_base + static_cast<Addr>(l) * 8);
      break;
    case QueryKind::kIncPageRank:
      if (!q.spec.resident->rank_hist.empty()) {
        const Addr last = q.spec.resident->rank_hist.back();
        r.rank.resize(nv);
        for (VertexId v = 0; v < nv; ++v)
          r.rank[v] = m_.memory().host_load<double>(last + v * 8);
      }
      break;
    case QueryKind::kIncBfs:
      r.dist.resize(nv);
      for (VertexId v = 0; v < nv; ++v)
        r.dist[v] = m_.memory().host_load<Word>(q.spec.resident->dist_base + v * 8);
      break;
  }
  return r;
}

std::uint64_t cpu_path_count(const Graph& g) {
  std::uint64_t total = 0;
  for (VertexId a = 0; a < g.num_vertices(); ++a)
    for (const VertexId b : g.neighbors_of(a)) total += g.degree(b);
  return total;
}

}  // namespace updown::serve
