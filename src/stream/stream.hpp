// Streaming graph session (ROADMAP item 3): a DeltaGraph wrapping the
// resident CSR, a TFORM/KVMSR ingestion front-end that parses edge-record
// streams into staged delta batches while queries run, and incremental
// analytics (kIncPageRank / kIncBfs) that refresh resident device arrays
// after each compaction epoch.
//
// Lifecycle:
//   1. install(m, base)  — upload forward + reverse CSR, allocate the
//      resident rank history and BFS level array.
//   2. warm()            — full PageRank + BFS populate the resident state.
//   3. per delta batch: ingest_async() launches a KVMSR parse job (device
//      path) or stage() appends host-side; compact() merges every ingested
//      batch into fresh CSR arrays at an epoch boundary, patches the device
//      graphs, and accumulates the dirty sets; refresh() re-runs only the
//      delta-affected frontier.
//   4. submit() packages steps 3 as a serve::Scheduler Mutation: ingestion
//      starts at the batch's arrival tick, compaction applies at the next
//      UD_STREAM_EPOCH boundary once the engine is quiescent, and queries
//      arriving after the batch are held until it applies.
//
// Determinism: compaction is a pure function of the staged edge set
// (DeltaGraph), incremental PageRank is a map-only pull kernel (no shuffle
// FP ordering), and incremental BFS relaxes monotonically — so results and
// completion ticks are bit-identical across UD_SHARDS / UD_CHECK / UD_STEAL
// and across delta-before/after orderings of unrelated partition-confined
// jobs (asserted in tests/stream/).
//
// Epoch garbage: patching a touched vertex allocates a fresh neighbor-list
// slice and drops the old one — the simulator has no free(), so superseded
// slices are leaked by design, bounded by (touched edges) per epoch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/delta.hpp"
#include "graph/layout.hpp"
#include "serve/query_engine.hpp"
#include "serve/scheduler.hpp"
#include "tform/fst.hpp"
#include "tform/stream_gen.hpp"

namespace updown::stream {

struct StreamOptions {
  std::uint32_t pr_iterations = 2;  ///< resident rank-history depth
  double damping = 0.85;
  VertexId bfs_root = 0;
  /// Lane partition for ingest jobs and refresh queries (count 0 = whole
  /// machine).
  kvmsr::LaneSet lanes;
  /// Placement of the session's graphs, record buffers, and value arrays —
  /// partition-confined placement keeps the session bit-independent of
  /// unrelated jobs on other nodes.
  GraphPlacement values;
  std::uint64_t block_bytes = 1000;   ///< ingest parse-block size (UD_STREAM_BLOCK)
  std::uint32_t coalesce_tuples = 1;  ///< forwarded to ingest shuffle
  /// Compaction tick grid (UD_STREAM_EPOCH): a submitted batch becomes
  /// visible at the next multiple of `epoch` at/after its arrival. 0 =
  /// apply as soon as the engine is quiescent.
  Tick epoch = 0;

  /// Defaults overridden by UD_STREAM_EPOCH / UD_STREAM_BLOCK.
  static StreamOptions from_env();
};

struct RefreshResult {
  serve::QueryResult pr;
  serve::QueryResult bfs;
};

class StreamEngine {
 public:
  /// Register the session on `m`. One session per machine — throws if one
  /// is already installed.
  static StreamEngine& install(Machine& m, Graph base,
                               StreamOptions opt = StreamOptions::from_env());
  StreamEngine(Machine& m, Graph base, StreamOptions opt);

  DeltaGraph& graph() { return dg_; }
  serve::ResidentState& resident() { return rs_; }
  const StreamOptions& options() const { return opt_; }
  kvmsr::LaneSet lanes() const { return rlanes_; }
  Tick last_epoch_tick() const { return last_epoch_tick_; }

  /// Full PageRank + BFS (Seeds::kAll) populating the resident state. Runs
  /// the machine to quiescence — call with nothing else in flight.
  RefreshResult warm();

  /// Host-direct staging of a delta batch (no device ingestion): the unit
  /// path for tests and benches. Returns the batch id.
  std::uint64_t stage(const std::vector<tform::EdgeRecord>& recs);

  /// Device-path ingestion: encode `recs` as 64-byte records in global
  /// memory and launch the TFORM/KVMSR parse job departing at tick
  /// max(at, now). Parsed edges land in per-lane staging buffers, drained
  /// into the overlay at compact(). Returns the batch id; does NOT run the
  /// machine.
  std::uint64_t ingest_async(const std::vector<tform::EdgeRecord>& recs, Tick at);

  /// Device-side ingestion of `batch` has completed (vacuously true for
  /// host-direct batches). Host-side only.
  bool ingested(std::uint64_t batch) const;

  /// Epoch boundary: drain every ingested batch's staging into the overlay,
  /// merge into fresh forward/reverse CSRs, patch the device graphs, and
  /// accumulate the incremental dirty sets. Host-side only; the engine must
  /// be quiescent. `visible_at` stamps last_epoch_tick().
  DeltaGraph::CompactionResult compact(Tick visible_at);

  /// Incremental PageRank + BFS over the pending dirty sets (Seeds::
  /// kPending). Runs the machine to quiescence — call with nothing else in
  /// flight; under a scheduler, submit the specs as queries instead.
  RefreshResult refresh();

  // Query specs bound to this session's resident state, for submission to a
  // QueryEngine or serve::Scheduler. Names are unique per call.
  serve::QuerySpec inc_pagerank_spec();
  serve::QuerySpec inc_bfs_spec();
  serve::QuerySpec full_pagerank_spec();
  serve::QuerySpec full_bfs_spec();

  /// Package a delta batch as a scheduler Mutation: device ingestion starts
  /// at `arrival`, compaction applies at the next epoch boundary (see
  /// StreamOptions::epoch) once quiescent. Queries submitted with arrival
  /// >= `arrival` dispatch only after the batch is visible.
  serve::MutationId submit(serve::Scheduler& sched,
                           std::vector<tform::EdgeRecord> recs, Tick arrival);

  std::uint64_t num_batches() const { return batches_.size(); }

 private:
  friend struct StIngestMap;
  friend struct StIngestReduce;

  struct Batch {
    kvmsr::JobId job = 0;
    Addr data_base = 0;
    std::uint64_t data_bytes = 0;
    std::uint64_t blocks = 0;
    bool device = false;   ///< went through ingest_async
    bool drained = false;  ///< staging moved into the overlay
    /// Reduce-side staging, one buffer per partition lane: lane handlers
    /// are serialized per lane, so appends never race.
    std::vector<std::vector<Edge>> per_lane;
  };

  Addr place(std::uint64_t bytes);
  serve::QuerySpec base_spec(serve::QueryKind k, const char* nm);
  void run_query(serve::QuerySpec spec, serve::QueryResult& out);
  void refresh_device(const DeltaGraph::CompactionResult& cr);

  Machine& m_;
  kvmsr::Library* lib_ = nullptr;
  serve::QueryEngine* qe_ = nullptr;
  StreamOptions opt_;
  DeltaGraph dg_;
  kvmsr::LaneSet rlanes_;  ///< opt_.lanes with count 0 resolved
  DeviceGraph fwd_;
  DeviceGraph rev_;
  serve::ResidentState rs_;
  tform::Fst fst_ = tform::Fst::csv();
  std::vector<Batch> batches_;  ///< index == DeltaGraph batch id
  std::uint64_t queries_ = 0;   ///< unique query-name counter
  Tick last_epoch_tick_ = 0;
  struct Labels {
    EventLabel kv_map = 0;
    EventLabel m_chunk = 0;
    EventLabel kv_reduce = 0;
  } lb_;
};

}  // namespace updown::stream
