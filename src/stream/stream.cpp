#include "stream/stream.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "common/env.hpp"
#include "tform/block_parse.hpp"

namespace updown::stream {

StreamOptions StreamOptions::from_env() {
  StreamOptions o;
  o.epoch = env_u64("UD_STREAM_EPOCH", o.epoch, ~0ull);
  o.block_bytes = env_u64("UD_STREAM_BLOCK", o.block_bytes, 1ull << 30);
  return o;
}

// ---------------------------------------------------------------------------
// Delta-batch ingestion: the apps/ingestion block-parse flow, re-homed onto
// per-batch record buffers (the job's tag names the batch) and a reduce that
// appends parsed edges into the batch's per-lane staging instead of a
// parallel-graph hash insert — the staged edges feed DeltaGraph::compact().
// ---------------------------------------------------------------------------
struct StIngestMap : kvmsr::MapTask {
  kvmsr::JobId job = 0;
  tform::BlockWindow w;
  std::vector<std::uint8_t> buf;
  std::uint64_t arrived = 0, expected = 0;

  void kv_map(Ctx& ctx) {
    kvmsr_begin(ctx);
    auto& se = ctx.machine().service<StreamEngine>();
    job = kvmsr::Library::map_job(ctx);
    const Word block = kvmsr::Library::map_key(ctx);
    const auto& bt = se.batches_.at(se.lib_->spec(job).tag);
    w = tform::BlockWindow::of(block, se.opt_.block_bytes, bt.data_bytes);
    buf.assign(w.bytes(), 0);
    for (std::uint64_t off = w.read_begin; off < w.read_end; off += 64) {
      const unsigned words =
          static_cast<unsigned>(std::min<std::uint64_t>(8, (w.read_end - off) / 8));
      ctx.charge(2);
      ctx.send_dram_read(bt.data_base + off, words, se.lb_.m_chunk);
      ++expected;
    }
  }

  void m_chunk(Ctx& ctx) {
    auto& se = ctx.machine().service<StreamEngine>();
    const auto& bt = se.batches_.at(se.lib_->spec(job).tag);
    const std::uint64_t off = ctx.ccont() - bt.data_base - w.read_begin;
    for (unsigned i = 0; i < ctx.nops(); ++i) {
      const Word word = ctx.op(i);
      std::memcpy(buf.data() + off + i * 8, &word, 8);
    }
    ctx.charge(ctx.nops());
    if (++arrived == expected) parse(ctx);
  }

 private:
  void parse(Ctx& ctx) {
    auto& se = ctx.machine().service<StreamEngine>();
    const auto& bt = se.batches_.at(se.lib_->spec(job).tag);
    tform::parse_block(ctx, se.fst_, buf.data(), w, bt.data_bytes,
                       [&](const std::vector<Word>& fields) {
                         if (fields.size() != 3)
                           throw std::runtime_error("stream: malformed delta record");
                         ctx.charge(1);
                         se.lib_->emit2(ctx, job, fields[0], fields[1], fields[2]);
                       });
    se.lib_->map_return(ctx, kvmsr_cont);
  }
};

struct StIngestReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& se = ctx.machine().service<StreamEngine>();
    const kvmsr::JobId job = kvmsr::Library::reduce_job(ctx);
    auto& bt = se.batches_.at(se.lib_->spec(job).tag);
    const Word u = kvmsr::Library::reduce_key(ctx);
    const Word v = kvmsr::Library::reduce_val(ctx, 0);
    // reduce_val(ctx, 1) is the edge type — the graph does not keep it.
    if (u >= se.dg_.num_vertices() || v >= se.dg_.num_vertices())
      throw std::runtime_error("stream: delta edge endpoint out of range");
    ctx.charge(2);  // lane-local staging append
    const auto lane = static_cast<std::uint32_t>(ctx.nwid()) - se.rlanes_.first;
    bt.per_lane.at(lane).push_back(Edge{u, v});
    se.lib_->reduce_return(ctx, job);
  }
};

// ---------------------------------------------------------------------------
// StreamEngine
// ---------------------------------------------------------------------------

StreamEngine& StreamEngine::install(Machine& m, Graph base, StreamOptions opt) {
  if (m.has_service<StreamEngine>())
    throw std::logic_error("stream: a streaming session is already installed");
  return m.add_service<StreamEngine>(m, std::move(base), std::move(opt));
}

StreamEngine::StreamEngine(Machine& m, Graph base, StreamOptions opt)
    : m_(m), opt_(std::move(opt)), dg_(std::move(base)) {
  lib_ = &kvmsr::Library::install(m);
  qe_ = &serve::QueryEngine::install(m);
  rlanes_ = opt_.lanes;
  if (rlanes_.count == 0) {
    rlanes_.first = 0;
    rlanes_.count = static_cast<std::uint32_t>(m_.config().total_lanes());
  }
  fwd_ = upload_graph(m_, dg_.csr(), opt_.values);
  rev_ = upload_graph(m_, dg_.rcsr(), opt_.values);

  const VertexId nv = dg_.num_vertices();
  rs_.fwd = &fwd_;
  rs_.rev = &rev_;
  rs_.csr = &dg_.csr();
  rs_.rank_hist.resize(opt_.pr_iterations);
  for (Addr& h : rs_.rank_hist) {
    h = place(nv * 8);
    for (VertexId v = 0; v < nv; ++v) m_.memory().host_store<double>(h + v * 8, 0.0);
  }
  rs_.dist_base = place(nv * 8);
  rs_.dist.assign(nv, kInfDist);
  if (opt_.bfs_root < nv) rs_.dist[opt_.bfs_root] = 0;
  for (VertexId v = 0; v < nv; ++v)
    m_.memory().host_store<Word>(rs_.dist_base + v * 8, rs_.dist[v]);

  Program& p = m_.program();
  lb_.kv_map = p.event("stream::kv_map", &StIngestMap::kv_map);
  lb_.m_chunk = p.event("stream::m_chunk", &StIngestMap::m_chunk);
  lb_.kv_reduce = p.event("stream::kv_reduce", &StIngestReduce::kv_reduce);
}

Addr StreamEngine::place(std::uint64_t bytes) {
  const std::uint32_t nr =
      opt_.values.nr_nodes ? opt_.values.nr_nodes : m_.config().nodes;
  return m_.memory().dram_malloc(std::max<std::uint64_t>(8, bytes),
                                 opt_.values.first_node, nr,
                                 opt_.values.block_size);
}

serve::QuerySpec StreamEngine::base_spec(serve::QueryKind k, const char* nm) {
  serve::QuerySpec s;
  s.kind = k;
  s.resident = &rs_;
  s.lanes = opt_.lanes;
  s.values = opt_.values;
  s.iterations = opt_.pr_iterations;
  s.damping = opt_.damping;
  s.root = opt_.bfs_root;
  s.coalesce_tuples = opt_.coalesce_tuples;
  s.name = std::string("stream.") + nm + "#" + std::to_string(queries_++);
  return s;
}

serve::QuerySpec StreamEngine::inc_pagerank_spec() {
  auto s = base_spec(serve::QueryKind::kIncPageRank, "ipr");
  s.seeds = serve::QuerySpec::Seeds::kPending;
  return s;
}

serve::QuerySpec StreamEngine::inc_bfs_spec() {
  auto s = base_spec(serve::QueryKind::kIncBfs, "ibfs");
  s.seeds = serve::QuerySpec::Seeds::kPending;
  return s;
}

serve::QuerySpec StreamEngine::full_pagerank_spec() {
  auto s = base_spec(serve::QueryKind::kIncPageRank, "pr");
  s.seeds = serve::QuerySpec::Seeds::kAll;
  return s;
}

serve::QuerySpec StreamEngine::full_bfs_spec() {
  auto s = base_spec(serve::QueryKind::kIncBfs, "bfs");
  s.seeds = serve::QuerySpec::Seeds::kAll;
  return s;
}

void StreamEngine::run_query(serve::QuerySpec spec, serve::QueryResult& out) {
  const serve::QueryId q = qe_->add_query(std::move(spec));
  qe_->launch(q);
  m_.run_until([this, q] { return qe_->done(q); });
  m_.run();  // settle to a clean drain (checker analysis, trace rewrite)
  out = qe_->collect(q);
}

RefreshResult StreamEngine::warm() {
  RefreshResult r;
  run_query(full_pagerank_spec(), r.pr);
  run_query(full_bfs_spec(), r.bfs);
  return r;
}

RefreshResult StreamEngine::refresh() {
  RefreshResult r;
  run_query(inc_pagerank_spec(), r.pr);
  run_query(inc_bfs_spec(), r.bfs);
  return r;
}

std::uint64_t StreamEngine::stage(const std::vector<tform::EdgeRecord>& recs) {
  const std::uint64_t b = dg_.begin_batch();
  batches_.emplace_back();
  for (const tform::EdgeRecord& r : recs) dg_.stage(b, r.src, r.dst);
  return b;
}

std::uint64_t StreamEngine::ingest_async(const std::vector<tform::EdgeRecord>& recs,
                                         Tick at) {
  const std::uint64_t b = dg_.begin_batch();
  batches_.emplace_back();
  Batch& bt = batches_.back();
  bt.device = true;
  bt.per_lane.resize(rlanes_.count);

  const std::string bytes = tform::encode_records(recs);
  bt.data_bytes = bytes.size();
  if (bt.data_bytes) {
    bt.data_base = place((bt.data_bytes + 63) & ~63ull);
    m_.memory().host_write(bt.data_base, bytes.data(), bytes.size());
  }
  bt.blocks = ceil_div(bt.data_bytes, opt_.block_bytes);

  kvmsr::JobSpec js;
  js.kv_map = lb_.kv_map;
  js.kv_reduce = lb_.kv_reduce;
  js.lanes = opt_.lanes;
  js.coalesce_tuples = opt_.coalesce_tuples;
  js.tag = b;  // reduce handlers route parsed edges by this
  js.name = "stream.ingest#" + std::to_string(b);
  bt.job = lib_->add_job(js);
  if (bt.blocks) lib_->launch_from_host_at(at, bt.job, 0, bt.blocks);
  return b;
}

bool StreamEngine::ingested(std::uint64_t batch) const {
  const Batch& bt = batches_.at(batch);
  if (!bt.device || bt.blocks == 0) return true;
  const kvmsr::JobState& st = lib_->state(bt.job);
  return st.runs > 0 && !st.running;
}

void StreamEngine::refresh_device(const DeltaGraph::CompactionResult& cr) {
  const auto patch = [&](DeviceGraph& dev, const Graph& g,
                         const std::vector<VertexId>& touched) {
    for (const VertexId v : touched) {
      const auto nbrs = g.neighbors_of(v);
      Addr slice = 0;
      if (!nbrs.empty()) {
        slice = place(nbrs.size() * 8);
        m_.memory().host_write(slice, nbrs.data(), nbrs.size() * 8);
      }
      m_.memory().host_store<Word>(dev.field_addr(v, DeviceGraph::kDegree),
                                   nbrs.size());
      m_.memory().host_store<Word>(dev.field_addr(v, DeviceGraph::kNbrPtr), slice);
    }
    dev.num_edges = g.num_edges();
  };
  patch(fwd_, dg_.csr(), cr.touched_fwd);
  patch(rev_, dg_.rcsr(), cr.touched_rev);
}

DeltaGraph::CompactionResult StreamEngine::compact(Tick visible_at) {
  // Drain every completed device batch's per-lane staging into the overlay.
  // Lane order is fixed, and compaction is order-independent anyway, so the
  // merged graph is a pure function of the batches' edge sets.
  for (std::uint64_t b = 0; b < batches_.size(); ++b) {
    Batch& bt = batches_[b];
    if (bt.drained || !ingested(b)) continue;  // skip still-ingesting batches
    for (auto& lane : bt.per_lane) {
      for (const Edge& e : lane) dg_.stage(b, e.first, e.second);
      lane.clear();
      lane.shrink_to_fit();
    }
    bt.drained = true;
  }
  const DeltaGraph::CompactionResult cr = dg_.compact();
  refresh_device(cr);
  // Dirty sets for the next incremental refresh: a changed source u shifts
  // the pull contribution pr(u)/outdeg(u) of EVERY current out-neighbor
  // (the divisor changed), and can lower BFS levels downstream of itself.
  for (const VertexId u : cr.touched_fwd) {
    rs_.bfs_dirty.push_back(u);
    for (const VertexId w : dg_.csr().neighbors_of(u)) rs_.pr_dirty.push_back(w);
  }
  last_epoch_tick_ = visible_at;
  return cr;
}

serve::MutationId StreamEngine::submit(serve::Scheduler& sched,
                                       std::vector<tform::EdgeRecord> recs,
                                       Tick arrival) {
  constexpr std::uint64_t kNoBatch = ~0ull;
  serve::Mutation mu;
  mu.arrival = arrival;
  mu.not_before = arrival;
  if (opt_.epoch)
    mu.not_before = ((arrival + opt_.epoch - 1) / opt_.epoch) * opt_.epoch;
  auto batch = std::make_shared<std::uint64_t>(kNoBatch);
  auto pending = std::make_shared<std::vector<tform::EdgeRecord>>(std::move(recs));
  mu.start = [this, batch, pending](Tick at) {
    *batch = ingest_async(*pending, at);
    pending->clear();
  };
  mu.ingested = [this, batch] { return *batch != kNoBatch && ingested(*batch); };
  mu.apply = [this](Tick now) { compact(now); };
  return sched.add_mutation(std::move(mu));
}

}  // namespace updown::stream
