// udtrace: the opt-in timeline/profiling layer of the simulator.
//
// Where MachineStats answers "how much", udtrace answers "when": it records
// time-sliced per-lane and per-node busy-cycle timelines, named phase spans
// (KVMSR map / shuffle-drain / flush, application supersteps), a per-(src
// node, dst node) traffic matrix with queue-depth/network-backlog time
// series, and latency histograms for message delivery and DRAM queue wait.
// At drain the Machine serializes everything as Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing) plus a compact CSV sibling for
// the bench harness.
//
// Design rules, in order of importance:
//
//   1. Zero cost when off. The Machine holds a null Tracer pointer and every
//      hook site is one null test — the UDSIM_LOG / UD_CHECK pattern. The
//      determinism goldens and the micro_sim throughput floors are asserted
//      with tracing off.
//
//   2. Observation only when on. No hook writes anything the engine reads:
//      timing, event order, statistics and application results are
//      bit-identical with and without UD_TRACE.
//
//   3. Shard-safe by ownership, deterministic by construction. Unlike
//      udcheck (whose engine-global side tables make it defer to a
//      window-boundary replay when sharded), the tracer needs no replay
//      under any UD_SHARDS count: every mutable cell is
//      written by exactly one shard — per-lane series by the lane's owner,
//      per-node series and matrix rows by the source node's owner, arrival
//      series by the destination's owner, histograms and phase records into
//      per-shard buffers that merge by a sender-deterministic sort key at
//      serialization. Everything recorded is a simulated quantity (ticks,
//      bytes, counts — never wall-clock or host-queue state), so the
//      serialized trace is byte-identical for any shard count.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"

namespace updown {

/// Log2-bucketed latency histograms: bucket 0 holds exact zeros, bucket b
/// holds [2^(b-1), 2^b). 32 buckets cover any 32-bit-cycle latency.
constexpr std::uint32_t kTraceHistBuckets = 32;

/// Per-shard trace buffers. Each EngineShard points at its own TraceShard;
/// hooks executed by that shard write here without synchronization.
struct TraceShard {
  /// One phase marker. `seq` is the emitting lane's private marker counter,
  /// so (t, lane, seq) orders markers identically for any shard count.
  struct Phase {
    Tick t = 0;
    std::uint32_t lane = 0;
    std::uint32_t seq = 0;
    std::uint32_t name = 0;  ///< interned via Tracer::intern
    bool begin = false;
  };
  std::vector<Phase> phases;
  std::array<std::uint64_t, kTraceHistBuckets> msg_latency{};  ///< arrive - depart
  std::array<std::uint64_t, kTraceHistBuckets> dram_wait{};    ///< queue wait beyond lat_dram

  /// Sparse (src node, dst node) -> traffic cell, keyed src * nodes + dst.
  /// Per shard (each shard records the traffic its own source nodes emit) so
  /// the map mutates without synchronization; serialization sums the shards.
  /// Sparse because a dense nodes^2 matrix is ~1 GiB at the 8192-node
  /// scale_sweep configurations while real traffic touches a tiny fraction
  /// of the pairs.
  struct Traffic {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };
  std::unordered_map<std::uint64_t, Traffic> traffic;
};

class Tracer {
 public:
  /// @param slice  timeline bucket width in ticks (>= 1)
  Tracer(const MachineConfig& cfg, std::uint32_t nshards, std::string json_path,
         Tick slice);

  TraceShard& shard(std::uint32_t s) { return shards_[s]; }
  Tick slice() const { return slice_; }
  const std::string& path() const { return path_; }

  // ---- Hot-path hooks (called only when tracing is on) ----------------------
  // All indices are simulated entities; the caller guarantees the calling
  // shard owns them (see the header comment).

  /// A queued event executed on `lane` (of `node`): it arrived at `arrive`,
  /// started at `start`, and held the lane for `cost` cycles. Writes the
  /// lane/node busy timelines (cost split across slice boundaries), the
  /// per-node executed-events series, and the per-node arrival series.
  void on_execute(std::uint32_t lane, std::uint32_t node, Tick arrive, Tick start,
                  std::uint64_t cost);
  /// An inline-delivered event (KVMSR packet unpack): its cycles are already
  /// inside the enclosing packet event's cost, so only the event count moves.
  void on_inline_execute(std::uint32_t node, Tick start);
  /// A message routed from `src_node` to `dst_node`: sent series, traffic
  /// matrix, delivery-latency histogram, and the injection-backlog sample
  /// (max per slice) for the network-pressure time series.
  void on_message(TraceShard& ts, std::uint32_t src_node, std::uint32_t dst_node,
                  std::uint32_t bytes, Tick depart, Tick arrive, Tick inject_backlog);
  /// A DRAM access serviced with `wait` cycles of queueing beyond the fixed
  /// access latency.
  void on_dram_wait(TraceShard& ts, Tick wait);

  // Phase spans (cold path: a handful per KVMSR job / app superstep).
  void phase_begin(TraceShard& ts, std::uint32_t lane, Tick t, std::string_view name);
  void phase_end(TraceShard& ts, std::uint32_t lane, Tick t, std::string_view name);

  // ---- Reporting ------------------------------------------------------------
  /// Per-slice load imbalance (max lane busy / mean lane busy, 0 for empty
  /// slices): the paper's "extremely good load balance" claim over time.
  std::vector<double> imbalance_series() const;

  /// Write the Chrome trace_event JSON to `path` and the compact CSV to
  /// `path + ".csv"`. Cumulative and idempotent: the Machine calls this at
  /// every run() drain, rewriting both files; the content depends only on
  /// simulated quantities and is byte-identical across UD_SHARDS counts.
  void serialize() const;

 private:
  std::uint32_t intern(std::string_view name);
  std::uint64_t slice_of(Tick t) const { return t / slice_; }
  /// All shards' sparse traffic maps summed (serialization only).
  std::unordered_map<std::uint64_t, TraceShard::Traffic> merged_traffic() const;
  /// Number of slices any series extends to (the serialized timeline length).
  std::uint64_t nslices() const;
  void write_json(std::FILE* f) const;
  void write_csv(std::FILE* f) const;

  MachineConfig cfg_;  ///< by value: the machine may outlive config edits
  std::string path_;
  Tick slice_;
  std::uint32_t lanes_per_node_;

  std::vector<TraceShard> shards_;

  // Slice-indexed series, grown on demand. Outer index = lane or node; each
  // inner vector is written only by the owning shard. The outer vectors are
  // pre-sized (they must never reallocate while shards write disjoint rows)
  // but the rows themselves stay empty until a lane/node is active, so an
  // idle lane costs one empty vector here, not a timeline.
  std::vector<std::vector<std::uint32_t>> lane_busy_;    ///< busy cycles / slice
  std::vector<std::vector<std::uint64_t>> node_busy_;    ///< busy cycles / slice
  std::vector<std::vector<std::uint64_t>> node_events_;  ///< executed events / slice
  std::vector<std::vector<std::uint64_t>> node_arrivals_;///< message arrivals / slice
  std::vector<std::vector<std::uint64_t>> node_sent_;    ///< messages sent / slice
  std::vector<std::vector<std::uint64_t>> node_sent_bytes_;  ///< bytes sent / slice
  std::vector<std::vector<std::uint64_t>> node_backlog_; ///< max inject backlog / slice

  std::vector<std::uint32_t> phase_seq_;  ///< per-lane marker counter

  // Interning: ids are handed out under a mutex in cross-shard arrival order
  // (not deterministic), but records resolve back to strings at
  // serialization, so the output never depends on id assignment.
  mutable std::mutex name_mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
};

}  // namespace updown
