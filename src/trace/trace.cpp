#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace updown {

namespace {

/// Grow-on-demand accumulate: series are sparse in time, so inner vectors
/// extend only as far as the last nonzero slice.
template <typename T>
void bump(std::vector<T>& v, std::uint64_t idx, std::uint64_t amount) {
  if (v.size() <= idx) v.resize(idx + 1, 0);
  v[idx] += static_cast<T>(amount);
}

template <typename T>
void bump_max(std::vector<T>& v, std::uint64_t idx, std::uint64_t value) {
  if (v.size() <= idx) v.resize(idx + 1, 0);
  if (v[idx] < static_cast<T>(value)) v[idx] = static_cast<T>(value);
}

/// Split `cost` cycles starting at `start` across fixed-width slices.
template <typename T>
void add_ranged(std::vector<T>& v, Tick start, std::uint64_t cost, Tick slice) {
  Tick t = start;
  std::uint64_t rem = cost;
  while (rem > 0) {
    const std::uint64_t sidx = t / slice;
    const Tick slice_end = static_cast<Tick>(sidx + 1) * slice;
    const std::uint64_t take = std::min<std::uint64_t>(rem, slice_end - t);
    bump(v, sidx, take);
    t += take;
    rem -= take;
  }
}

std::uint32_t hist_bucket(std::uint64_t x) {
  if (x == 0) return 0;
  std::uint32_t b = 0;
  while (x > 0 && b < kTraceHistBuckets - 1) {
    x >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

Tracer::Tracer(const MachineConfig& cfg, std::uint32_t nshards, std::string json_path,
               Tick slice)
    : cfg_(cfg),
      path_(std::move(json_path)),
      slice_(slice > 0 ? slice : 1),
      lanes_per_node_(cfg.lanes_per_node()),
      shards_(nshards),
      lane_busy_(cfg.total_lanes()),
      node_busy_(cfg.nodes),
      node_events_(cfg.nodes),
      node_arrivals_(cfg.nodes),
      node_sent_(cfg.nodes),
      node_sent_bytes_(cfg.nodes),
      node_backlog_(cfg.nodes),
      phase_seq_(cfg.total_lanes(), 0) {}

void Tracer::on_execute(std::uint32_t lane, std::uint32_t node, Tick arrive, Tick start,
                        std::uint64_t cost) {
  bump(node_arrivals_[node], slice_of(arrive), 1);
  bump(node_events_[node], slice_of(start), 1);
  add_ranged(lane_busy_[lane], start, cost, slice_);
  add_ranged(node_busy_[node], start, cost, slice_);
}

void Tracer::on_inline_execute(std::uint32_t node, Tick start) {
  // Busy cycles already flow through the enclosing packet event's cost.
  bump(node_events_[node], slice_of(start), 1);
}

void Tracer::on_message(TraceShard& ts, std::uint32_t src_node, std::uint32_t dst_node,
                        std::uint32_t bytes, Tick depart, Tick arrive,
                        Tick inject_backlog) {
  const std::uint64_t sidx = slice_of(depart);
  bump(node_sent_[src_node], sidx, 1);
  bump(node_sent_bytes_[src_node], sidx, bytes);
  bump_max(node_backlog_[src_node], sidx, inject_backlog);
  TraceShard::Traffic& cell =
      ts.traffic[static_cast<std::uint64_t>(src_node) * cfg_.nodes + dst_node];
  cell.msgs += 1;
  cell.bytes += bytes;
  ts.msg_latency[hist_bucket(arrive - depart)] += 1;
}

void Tracer::on_dram_wait(TraceShard& ts, Tick wait) {
  ts.dram_wait[hist_bucket(wait)] += 1;
}

std::unordered_map<std::uint64_t, TraceShard::Traffic> Tracer::merged_traffic() const {
  std::unordered_map<std::uint64_t, TraceShard::Traffic> out;
  for (const auto& ts : shards_)
    for (const auto& [key, cell] : ts.traffic) {
      TraceShard::Traffic& sum = out[key];
      sum.msgs += cell.msgs;
      sum.bytes += cell.bytes;
    }
  return out;
}

std::uint32_t Tracer::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(name_mu_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Tracer::phase_begin(TraceShard& ts, std::uint32_t lane, Tick t,
                         std::string_view name) {
  ts.phases.push_back({t, lane, phase_seq_[lane]++, intern(name), true});
}

void Tracer::phase_end(TraceShard& ts, std::uint32_t lane, Tick t, std::string_view name) {
  ts.phases.push_back({t, lane, phase_seq_[lane]++, intern(name), false});
}

std::uint64_t Tracer::nslices() const {
  std::uint64_t n = 0;
  const auto scan = [&n](const auto& outer) {
    for (const auto& v : outer) n = std::max<std::uint64_t>(n, v.size());
  };
  scan(lane_busy_);
  scan(node_busy_);
  scan(node_events_);
  scan(node_arrivals_);
  scan(node_sent_);
  scan(node_sent_bytes_);
  scan(node_backlog_);
  return n;
}

std::vector<double> Tracer::imbalance_series() const {
  const std::uint64_t n = nslices();
  const std::uint64_t nlanes = lane_busy_.size();
  std::vector<double> out(n, 0.0);
  for (std::uint64_t s = 0; s < n; ++s) {
    std::uint64_t total = 0, peak = 0;
    for (const auto& v : lane_busy_) {
      const std::uint64_t b = s < v.size() ? v[s] : 0;
      total += b;
      peak = std::max(peak, b);
    }
    if (total > 0)
      out[s] = static_cast<double>(peak) * static_cast<double>(nlanes) /
               static_cast<double>(total);
  }
  return out;
}

void Tracer::serialize() const {
  if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
    write_json(f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "[udtrace] cannot write %s\n", path_.c_str());
    return;
  }
  const std::string csv = path_ + ".csv";
  if (std::FILE* f = std::fopen(csv.c_str(), "w")) {
    write_csv(f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "[udtrace] cannot write %s\n", csv.c_str());
  }
}

namespace {

/// Phase records merged across shards in their deterministic total order.
std::vector<TraceShard::Phase> merged_phases(const std::vector<TraceShard>& shards) {
  std::vector<TraceShard::Phase> all;
  for (const auto& ts : shards) all.insert(all.end(), ts.phases.begin(), ts.phases.end());
  std::sort(all.begin(), all.end(),
            [](const TraceShard::Phase& a, const TraceShard::Phase& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.seq < b.seq;
            });
  return all;
}

std::array<std::uint64_t, kTraceHistBuckets> summed_hist(
    const std::vector<TraceShard>& shards,
    std::array<std::uint64_t, kTraceHistBuckets> TraceShard::*member) {
  std::array<std::uint64_t, kTraceHistBuckets> out{};
  for (const auto& ts : shards)
    for (std::uint32_t b = 0; b < kTraceHistBuckets; ++b) out[b] += (ts.*member)[b];
  return out;
}

void write_hist_json(std::FILE* f, const char* name,
                     const std::array<std::uint64_t, kTraceHistBuckets>& h) {
  std::fprintf(f, "    \"%s\": [", name);
  for (std::uint32_t b = 0; b < kTraceHistBuckets; ++b)
    std::fprintf(f, "%s%llu", b ? "," : "", static_cast<unsigned long long>(h[b]));
  std::fprintf(f, "]");
}

}  // namespace

void Tracer::write_json(std::FILE* f) const {
  const std::vector<TraceShard::Phase> phases = merged_phases(shards_);
  const auto msg_hist = summed_hist(shards_, &TraceShard::msg_latency);
  const auto dram_hist = summed_hist(shards_, &TraceShard::dram_wait);
  const auto traffic = merged_traffic();
  const auto traffic_at = [&](std::uint32_t s, std::uint32_t d) {
    const auto it = traffic.find(static_cast<std::uint64_t>(s) * cfg_.nodes + d);
    return it != traffic.end() ? it->second : TraceShard::Traffic{};
  };
  const std::uint64_t n = nslices();

  // Chrome trace_event JSON object form. `ts` is nominally microseconds; we
  // write simulated ticks directly (1 viewer-us == 1 cycle at 2 GHz), which
  // keeps every value an integer and the file byte-stable.
  std::fprintf(f, "{\n\"otherData\": {\n");
  std::fprintf(f, "    \"tool\": \"udtrace\",\n");
  std::fprintf(f, "    \"ts_units\": \"simulated cycles (2 GHz; rendered as us)\",\n");
  std::fprintf(f, "    \"slice_ticks\": %llu,\n", (unsigned long long)slice_);
  std::fprintf(f, "    \"nodes\": %u,\n", cfg_.nodes);
  std::fprintf(f, "    \"lanes\": %llu,\n", (unsigned long long)cfg_.total_lanes());
  std::fprintf(f, "    \"hist_buckets\": \"b0: 0; b: [2^(b-1), 2^b) cycles\",\n");
  write_hist_json(f, "message_latency_hist", msg_hist);
  std::fprintf(f, ",\n");
  write_hist_json(f, "dram_queue_wait_hist", dram_hist);
  std::fprintf(f, ",\n    \"traffic_matrix_messages\": [");
  for (std::uint32_t s = 0; s < cfg_.nodes; ++s) {
    std::fprintf(f, "%s[", s ? "," : "");
    for (std::uint32_t d = 0; d < cfg_.nodes; ++d)
      std::fprintf(f, "%s%llu", d ? "," : "", (unsigned long long)traffic_at(s, d).msgs);
    std::fprintf(f, "]");
  }
  std::fprintf(f, "],\n    \"traffic_matrix_bytes\": [");
  for (std::uint32_t s = 0; s < cfg_.nodes; ++s) {
    std::fprintf(f, "%s[", s ? "," : "");
    for (std::uint32_t d = 0; d < cfg_.nodes; ++d)
      std::fprintf(f, "%s%llu", d ? "," : "", (unsigned long long)traffic_at(s, d).bytes);
    std::fprintf(f, "]");
  }
  std::fprintf(f, "]\n},\n\"traceEvents\": [\n");

  bool first = true;
  const auto sep = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };

  // Track names. pid 0 carries the phase spans (one tid per lane that emitted
  // markers), pid 1 the per-node counter series.
  sep();
  std::fprintf(f, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
                  "\"args\":{\"name\":\"phases\"}}");
  sep();
  std::fprintf(f, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                  "\"args\":{\"name\":\"machine\"}}");
  {
    std::vector<std::uint32_t> lanes;
    for (const auto& p : phases) lanes.push_back(p.lane);
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    for (std::uint32_t lane : lanes) {
      sep();
      std::fprintf(f,
                   "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                   "\"args\":{\"name\":\"lane %u (node %u)\"}}",
                   lane, lane, lane / lanes_per_node_);
    }
  }

  // Phase spans.
  for (const auto& p : phases) {
    sep();
    std::fprintf(f, "{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%u,\"ts\":%llu}",
                 names_[p.name].c_str(), p.begin ? 'B' : 'E', p.lane,
                 (unsigned long long)p.t);
  }

  // Counter series: one sample per slice. Values are integers (cycles,
  // counts, bytes) so the text form is exact.
  const auto at = [](const std::vector<std::uint64_t>& v, std::uint64_t s) {
    return s < v.size() ? v[s] : 0;
  };
  std::uint64_t inflight = 0;
  for (std::uint64_t s = 0; s < n; ++s) {
    const unsigned long long ts = (unsigned long long)(s * slice_);
    sep();
    std::fprintf(f, "{\"name\":\"busy cycles\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                    "\"ts\":%llu,\"args\":{", ts);
    for (std::uint32_t nd = 0; nd < cfg_.nodes; ++nd)
      std::fprintf(f, "%s\"n%u\":%llu", nd ? "," : "", nd,
                   (unsigned long long)at(node_busy_[nd], s));
    std::fprintf(f, "}}");
    sep();
    std::fprintf(f, "{\"name\":\"msgs sent\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                    "\"ts\":%llu,\"args\":{", ts);
    for (std::uint32_t nd = 0; nd < cfg_.nodes; ++nd)
      std::fprintf(f, "%s\"n%u\":%llu", nd ? "," : "", nd,
                   (unsigned long long)at(node_sent_[nd], s));
    std::fprintf(f, "}}");
    sep();
    std::fprintf(f, "{\"name\":\"net inject backlog\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                    "\"ts\":%llu,\"args\":{", ts);
    for (std::uint32_t nd = 0; nd < cfg_.nodes; ++nd)
      std::fprintf(f, "%s\"n%u\":%llu", nd ? "," : "", nd,
                   (unsigned long long)at(node_backlog_[nd], s));
    std::fprintf(f, "}}");
    std::uint64_t sent = 0, arrived = 0;
    for (std::uint32_t nd = 0; nd < cfg_.nodes; ++nd) {
      sent += at(node_sent_[nd], s);
      arrived += at(node_arrivals_[nd], s);
    }
    inflight += sent;
    inflight -= std::min(inflight, arrived);
    sep();
    std::fprintf(f, "{\"name\":\"msgs in flight\",\"ph\":\"C\",\"pid\":1,\"tid\":0,"
                    "\"ts\":%llu,\"args\":{\"msgs\":%llu}}",
                 ts, (unsigned long long)inflight);
  }

  std::fprintf(f, "\n]\n}\n");
}

void Tracer::write_csv(std::FILE* f) const {
  const std::vector<TraceShard::Phase> phases = merged_phases(shards_);
  const auto msg_hist = summed_hist(shards_, &TraceShard::msg_latency);
  const auto dram_hist = summed_hist(shards_, &TraceShard::dram_wait);
  const auto traffic = merged_traffic();
  const std::vector<double> imb = imbalance_series();

  std::fprintf(f, "# udtrace v1: slice=%llu ticks, nodes=%u, lanes=%llu\n",
               (unsigned long long)slice_, cfg_.nodes,
               (unsigned long long)cfg_.total_lanes());
  std::fprintf(f, "metric,a,b,value\n");
  const auto series = [&](const char* metric,
                          const std::vector<std::vector<std::uint64_t>>& outer) {
    for (std::size_t id = 0; id < outer.size(); ++id)
      for (std::size_t s = 0; s < outer[id].size(); ++s)
        if (outer[id][s])
          std::fprintf(f, "%s,%llu,%llu,%llu\n", metric, (unsigned long long)s,
                       (unsigned long long)id, (unsigned long long)outer[id][s]);
  };
  for (std::size_t lane = 0; lane < lane_busy_.size(); ++lane)
    for (std::size_t s = 0; s < lane_busy_[lane].size(); ++s)
      if (lane_busy_[lane][s])
        std::fprintf(f, "lane_busy,%llu,%llu,%u\n", (unsigned long long)s,
                     (unsigned long long)lane, lane_busy_[lane][s]);
  series("node_busy", node_busy_);
  series("node_events", node_events_);
  series("node_arrivals", node_arrivals_);
  series("node_sent", node_sent_);
  series("node_sent_bytes", node_sent_bytes_);
  series("node_backlog", node_backlog_);
  for (std::size_t s = 0; s < imb.size(); ++s)
    if (imb[s] > 0.0)
      std::fprintf(f, "imbalance,%llu,,%.6f\n", (unsigned long long)s, imb[s]);
  for (const auto& p : phases)
    std::fprintf(f, "phase,%llu,%u,%c:%s\n", (unsigned long long)p.t, p.lane,
                 p.begin ? 'B' : 'E', names_[p.name].c_str());
  {
    // Same (src, dst)-ascending row order the dense matrix walk produced.
    std::vector<std::uint64_t> keys;
    keys.reserve(traffic.size());
    for (const auto& [key, cell] : traffic) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys) {
      const std::uint32_t s = static_cast<std::uint32_t>(key / cfg_.nodes);
      const std::uint32_t d = static_cast<std::uint32_t>(key % cfg_.nodes);
      const TraceShard::Traffic& cell = traffic.at(key);
      if (cell.msgs)
        std::fprintf(f, "traffic_msgs,%u,%u,%llu\n", s, d, (unsigned long long)cell.msgs);
      if (cell.bytes)
        std::fprintf(f, "traffic_bytes,%u,%u,%llu\n", s, d, (unsigned long long)cell.bytes);
    }
  }
  for (std::uint32_t b = 0; b < kTraceHistBuckets; ++b)
    if (msg_hist[b])
      std::fprintf(f, "hist_msg_latency,%u,,%llu\n", b, (unsigned long long)msg_hist[b]);
  for (std::uint32_t b = 0; b < kTraceHistBuckets; ++b)
    if (dram_hist[b])
      std::fprintf(f, "hist_dram_wait,%u,,%llu\n", b, (unsigned long long)dram_hist[b]);
}

}  // namespace updown
