// Shared block-parse geometry and record loop for KVMSR-over-byte-stream
// ingestion (apps/ingestion and the streaming delta front-end). One map task
// owns one fixed-size block; a record belongs to the block where it STARTS,
// and a task reads one byte before its block (record-boundary test) plus up
// to one full record past it, so boundary-spanning records parse exactly
// once — the cross-block access the paper contrasts with cloud map-reduce.
#pragma once

#include <algorithm>
#include <cstdint>

#include "tform/fst.hpp"
#include "tform/stream_gen.hpp"

namespace updown::tform {

struct BlockWindow {
  std::uint64_t start = 0, end = 0;  ///< byte range owned by this block
  std::uint64_t read_begin = 0, read_end = 0;  ///< fetched range (8-aligned)

  static BlockWindow of(std::uint64_t block, std::uint64_t block_bytes,
                        std::uint64_t data_bytes) {
    BlockWindow w;
    w.start = block * block_bytes;
    w.end = std::min(w.start + block_bytes, data_bytes);
    w.read_begin = (w.start == 0 ? 0 : (w.start - 1)) & ~7ull;
    w.read_end =
        std::min((w.end + kRecordBytes + 7) & ~7ull, (data_bytes + 7) & ~7ull);
    return w;
  }

  std::uint64_t bytes() const { return read_end - read_begin; }
};

/// Run the transducer over every record starting inside `w`, with the
/// window's bytes already fetched into `buf` (buf[0] = file offset
/// w.read_begin). Charges the lane for boundary-skip and parse work;
/// `emit(fields)` fires per record. Emits nothing when no record starts in
/// the block.
template <typename Ctx, typename Emit>
void parse_block(Ctx& ctx, const Fst& fst, const std::uint8_t* buf,
                 const BlockWindow& w, std::uint64_t data_bytes, Emit&& emit) {
  const auto byte_at = [&](std::uint64_t off) { return buf[off - w.read_begin]; };
  // Skip to the first record boundary at or after w.start.
  std::uint64_t pos = w.start;
  if (w.start != 0 && byte_at(w.start - 1) != '\n') {
    while (pos < w.end && byte_at(pos) != '\n') ++pos;
    ++pos;  // byte after the newline
    ctx.charge(parse_cost(pos - w.start));
  }
  if (pos >= w.end || pos >= data_bytes) return;
  // Parse up to the end of the record spanning w.end (exclusive search for
  // the first newline at or after end-1).
  std::uint64_t stop = std::min(w.end, data_bytes);
  while (stop < data_bytes && byte_at(stop - 1) != '\n') ++stop;
  ctx.charge(parse_cost(stop - pos));

  Fst::Cursor cur;
  fst.run({buf + (pos - w.read_begin), stop - pos}, cur, std::forward<Emit>(emit));
}

}  // namespace updown::tform
