// TFORM: transducer-driven record parsing (paper Section 5.2.4, after
// Nourian et al.'s deterministic finite-state transducers [28]).
//
// A table-driven DFST walks input bytes and emits parsed records through a
// callback. The UpDown implementation decodes sub-byte symbols at several
// bytes per cycle; the cost model here charges kCyclesPerByte accordingly.
// The engine is resumable (Cursor) so a parse can stop at a block boundary
// and continue in the bytes of the next block — the cross-block record
// handling the paper calls out as impossible in cloud map-reduce.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace updown::tform {

/// Simulated parse cost: TFORM decodes ~4 input bytes per lane cycle.
constexpr double kCyclesPerByte = 0.25;

inline std::uint64_t parse_cost(std::uint64_t bytes) {
  return static_cast<std::uint64_t>(bytes * kCyclesPerByte) + 1;
}

class Fst {
 public:
  enum Action : std::uint8_t {
    kNone = 0,
    kAccumulate,  ///< fold a digit into the current field
    kEndField,    ///< finish the current field
    kEndRecord,   ///< finish field + record, invoke the callback
    kError,
  };

  struct Transition {
    std::uint16_t next = 0;
    Action action = kNone;
  };

  /// Numeric CSV records: decimal fields separated by ',', records
  /// terminated by '\n'; trailing spaces (padding) are skipped.
  static Fst csv();

  /// Resumable parse state.
  struct Cursor {
    std::uint16_t state = 0;
    Word current = 0;
    std::vector<Word> fields;
    bool mid_record = false;  ///< bytes consumed since the last record end
  };

  using RecordFn = std::function<void(const std::vector<Word>& fields)>;

  /// Feed `bytes` through the transducer; `on_record` fires per completed
  /// record. Returns the number of bytes consumed (all, unless kError).
  std::size_t run(std::span<const std::uint8_t> bytes, Cursor& cur, const RecordFn& on_record) const;

  /// Convenience: parse a whole buffer from a fresh cursor.
  std::vector<std::vector<Word>> parse_all(std::string_view text) const;

 private:
  Fst() = default;
  std::vector<std::array<Transition, 256>> table_;
};

}  // namespace updown::tform
