// Synthetic record-stream generator standing in for the AGILE WF2 CSV
// datasets ("data <m>" with size multipliers). Each record is exactly 64
// bytes — the paper: "Each record is 64 bytes, so 1200 GigaRecords/second is
// 76.8 TB/s" — encoding a <src, dst, type> edge as space-padded CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace updown::tform {

constexpr std::size_t kRecordBytes = 64;

struct EdgeRecord {
  Word src = 0, dst = 0, type = 0;
  bool operator==(const EdgeRecord&) const = default;
};

struct RecordStream {
  std::string bytes;                ///< n_records * 64 bytes of CSV text
  std::vector<EdgeRecord> records;  ///< ground truth
};

/// Generate `n_records` random edge records over `n_vertices` vertices with
/// `n_types` edge types.
RecordStream make_stream(std::uint64_t n_records, std::uint64_t n_vertices = 4096,
                         std::uint64_t n_types = 8, std::uint64_t seed = 1);

/// Encode specific records in the 64-byte space-padded CSV format — the
/// streaming delta path, where tests and benches control the exact edges.
std::string encode_records(const std::vector<EdgeRecord>& records);

}  // namespace updown::tform
