#include "tform/fst.hpp"

#include <stdexcept>

namespace updown::tform {

Fst Fst::csv() {
  Fst f;
  // State 0: inside a field (start of record/field). State 1: padding run
  // (spaces) before a terminator.
  f.table_.resize(2);
  for (unsigned s = 0; s < 2; ++s)
    for (unsigned c = 0; c < 256; ++c) f.table_[s][c] = {0, kError};
  for (unsigned c = '0'; c <= '9'; ++c) f.table_[0][c] = {0, kAccumulate};
  f.table_[0][','] = {0, kEndField};
  f.table_[0]['\n'] = {0, kEndRecord};
  f.table_[0][' '] = {1, kNone};
  f.table_[1][' '] = {1, kNone};
  f.table_[1]['\n'] = {0, kEndRecord};
  f.table_[1][','] = {0, kEndField};
  return f;
}

std::size_t Fst::run(std::span<const std::uint8_t> bytes, Cursor& cur,
                     const RecordFn& on_record) const {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const Transition t = table_[cur.state][bytes[i]];
    switch (t.action) {
      case kNone:
        break;
      case kAccumulate:
        cur.current = cur.current * 10 + (bytes[i] - '0');
        cur.mid_record = true;
        break;
      case kEndField:
        cur.fields.push_back(cur.current);
        cur.current = 0;
        cur.mid_record = true;
        break;
      case kEndRecord:
        cur.fields.push_back(cur.current);
        cur.current = 0;
        on_record(cur.fields);
        cur.fields.clear();
        cur.mid_record = false;
        break;
      case kError:
        throw std::runtime_error("tform: unexpected byte " + std::to_string(bytes[i]) +
                                 " at offset " + std::to_string(i));
    }
    cur.state = t.next;
  }
  return bytes.size();
}

std::vector<std::vector<Word>> Fst::parse_all(std::string_view text) const {
  std::vector<std::vector<Word>> records;
  Cursor cur;
  run({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()}, cur,
      [&](const std::vector<Word>& fields) { records.push_back(fields); });
  return records;
}

}  // namespace updown::tform
