#include "tform/stream_gen.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace updown::tform {

std::string encode_records(const std::vector<EdgeRecord>& records) {
  std::string bytes;
  bytes.reserve(records.size() * kRecordBytes);
  for (const EdgeRecord& r : records) {
    std::string line = std::to_string(r.src) + ',' + std::to_string(r.dst) + ',' +
                       std::to_string(r.type);
    if (line.size() >= kRecordBytes)
      throw std::logic_error("record encoding exceeds 64 bytes");
    line.append(kRecordBytes - 1 - line.size(), ' ');
    line.push_back('\n');
    bytes += line;
  }
  return bytes;
}

RecordStream make_stream(std::uint64_t n_records, std::uint64_t n_vertices,
                         std::uint64_t n_types, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RecordStream out;
  out.records.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    EdgeRecord r;
    r.src = rng.below(n_vertices);
    r.dst = rng.below(n_vertices);
    r.type = 1 + rng.below(n_types);
    out.records.push_back(r);
  }
  out.bytes = encode_records(out.records);
  return out;
}

}  // namespace updown::tform
