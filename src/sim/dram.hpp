// Per-node DRAM (HBM3e) timing model: a fixed access latency plus a
// bandwidth-limited service queue. This mirrors the paper's Fastsim, which
// pairs instruction-level lane simulation with "streamlined capacity and
// latency models for DRAM".
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"

namespace updown {

class DramModel {
 public:
  explicit DramModel(const MachineConfig& cfg) : cfg_(cfg), next_free_(cfg.nodes, 0.0) {}

  /// Time at which the data for an access of `bytes`, arriving at node
  /// `node`'s controller at `arrive`, is available (service + access latency).
  Tick service(Tick arrive, std::uint32_t node, std::uint32_t bytes) {
    double& free = next_free_[node];
    const double start = std::max(static_cast<double>(arrive), free);
    free = start + bytes / cfg_.bw_dram_node;
    return static_cast<Tick>(std::ceil(free)) + cfg_.lat_dram;
  }

  void reset() { std::fill(next_free_.begin(), next_free_.end(), 0.0); }

 private:
  const MachineConfig& cfg_;
  std::vector<double> next_free_;  ///< per-node controller next-free time
};

}  // namespace updown
