// Network timing model.
//
// The real UpDown machine uses a PolarStar diameter-3 topology [Lakhotia et
// al.]. The evaluation only exercises (a) the 1-3 hop latency profile,
// (b) per-node injection bandwidth, and (c) bisection bandwidth, so we model
// exactly those: a three-level hierarchical grouping assigns each node pair a
// hop distance in {1,2,3}, and token-bucket "next free time" counters model
// injection and bisection bandwidth contention.
//
// All token buckets are keyed by the *source* node: injection naturally, and
// bisection as a per-node share of the machine-wide bisection capacity
// (bw_bisection_per_node). Source-keyed state is what lets the sharded engine
// (sim/machine.cpp) call arrival() concurrently from the shard that owns the
// sending node without locks and without any cross-shard ordering dependence.
//
// Bucket arithmetic is integer fixed-point in 1/256-cycle units: next-free
// times accumulate thousands of per-message charges over a run, and a double
// accumulator makes the final ceil() depend on the platform's FP contraction
// and libm — the determinism goldens must be reproducible across compilers.
// Per-message cost is ceil(bytes * 256 / bw) fixed-point units with the
// bandwidths rounded to integer bytes/cycle (all shipped configs are
// integral), so every arrival() is exact integer math.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "sim/config.hpp"

namespace updown {

class NetworkModel {
 public:
  explicit NetworkModel(const MachineConfig& cfg)
      : cfg_(cfg),
        lpn_div_(cfg.lanes_per_node()),
        lpa_div_(cfg.lanes_per_accel),
        inject_bw_(std::max<std::uint64_t>(1, std::llround(cfg.bw_inject_node))),
        bisection_bw_(std::max<std::uint64_t>(1, std::llround(cfg.bw_bisection_per_node))),
        inject_free_(cfg.nodes, 0),
        bisection_free_(cfg.nodes, 0) {
    // Pick group shifts so that nodes are split into ~cube-root-sized tiers:
    // same L1 group => 1 hop, same L2 group => 2 hops, else 3 hops.
    const unsigned bits = cfg.nodes > 1 ? log2_exact(next_pow2(cfg.nodes)) : 0;
    l1_shift_ = bits / 3;
    l2_shift_ = (2 * bits) / 3;
    if (l1_shift_ == 0 && bits > 0) l1_shift_ = 1;
    if (l2_shift_ <= l1_shift_) l2_shift_ = l1_shift_ + 1;
  }

  unsigned hops(std::uint32_t node_a, std::uint32_t node_b) const {
    if (node_a == node_b) return 0;
    if ((node_a >> l1_shift_) == (node_b >> l1_shift_)) return 1;
    if ((node_a >> l2_shift_) == (node_b >> l2_shift_)) return 2;
    return 3;
  }

  bool crosses_bisection(std::uint32_t node_a, std::uint32_t node_b) const {
    const std::uint32_t half = cfg_.nodes / 2;
    return half > 0 && (node_a < half) != (node_b < half);
  }

  /// Latency and bandwidth-queued arrival time of a message of `bytes` sent
  /// at `depart` from lane `src` to lane `dst` (both global lane ids).
  Tick arrival(Tick depart, NetworkId src, NetworkId dst, std::uint32_t bytes) {
    const std::uint32_t node_s = lpn_div_.div(src);
    const std::uint32_t node_d = lpn_div_.div(dst);
    if (node_s == node_d) {
      if (src == dst) return depart + cfg_.lat_same_lane;
      const std::uint32_t accel_s = lpa_div_.div(src);
      const std::uint32_t accel_d = lpa_div_.div(dst);
      return depart + (accel_s == accel_d ? cfg_.lat_intra_accel : cfg_.lat_intra_node);
    }
    // Cross-node: injection token bucket at the source node, optional
    // bisection bucket, then per-hop latency. Fixed-point 1/256-cycle units
    // throughout — see the header comment.
    std::uint64_t t = static_cast<std::uint64_t>(depart) << kFpShift;
    std::uint64_t& inj = inject_free_[node_s];
    inj = std::max(t, inj) + fp_cost(bytes, inject_bw_);
    t = inj;
    if (crosses_bisection(node_s, node_d)) {
      std::uint64_t& bis = bisection_free_[node_s];
      bis = std::max(t, bis) + fp_cost(bytes, bisection_bw_);
      t = bis;
    }
    const Tick lat = cfg_.lat_intra_node + cfg_.lat_hop * hops(node_s, node_d);
    return static_cast<Tick>((t + kFpOne - 1) >> kFpShift) + lat;
  }

  /// Injection-port backlog of `node` at `now`: how many cycles of already
  /// accepted traffic are still queued ahead of a fresh send (0 when the
  /// bucket has drained). A simulated quantity derived from the node's own
  /// token bucket, so it is shard-owned exactly like arrival() — udtrace
  /// samples it per send for the queue-depth time series.
  Tick inject_backlog(std::uint32_t node, Tick now) const {
    const std::uint64_t t = static_cast<std::uint64_t>(now) << kFpShift;
    const std::uint64_t inj = inject_free_[node];
    return inj > t ? static_cast<Tick>((inj - t) >> kFpShift) : 0;
  }

  void reset() {
    std::fill(inject_free_.begin(), inject_free_.end(), 0);
    std::fill(bisection_free_.begin(), bisection_free_.end(), 0);
  }

 private:
  static constexpr unsigned kFpShift = 8;  ///< 1/256-cycle fixed-point units
  static constexpr std::uint64_t kFpOne = 1ull << kFpShift;

  /// Bucket charge of `bytes` at `bw` bytes/cycle, rounded up to a fixed-point
  /// unit (never undercharges the link).
  static std::uint64_t fp_cost(std::uint64_t bytes, std::uint64_t bw) {
    return ((bytes << kFpShift) + bw - 1) / bw;
  }

  const MachineConfig& cfg_;
  FastDiv lpn_div_;  ///< by lanes_per_node(): node of a global lane id
  FastDiv lpa_div_;  ///< by lanes_per_accel: accelerator of a global lane id
  std::uint64_t inject_bw_;     ///< integer bytes/cycle (rounded from config)
  std::uint64_t bisection_bw_;  ///< integer bytes/cycle per-node share
  std::vector<std::uint64_t> inject_free_;  ///< per-node injection next-free time (fp)
  std::vector<std::uint64_t> bisection_free_;  ///< per-src-node bisection next-free (fp)
  unsigned l1_shift_ = 0, l2_shift_ = 1;
};

}  // namespace updown
