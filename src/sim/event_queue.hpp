// The discrete-event engine's data structures: recycling slab pools for
// event payloads and a two-level calendar queue over slim 24-byte entries.
//
// The original engine kept a binary heap of fat QItems (a full Message plus a
// full DramRequest, ~220 bytes each), so every push/pop percolation moved
// hundreds of bytes and `top()` was copied out wholesale. The overhauled
// engine queues only {tick, seq, pool index, kind} and parks the payload in a
// slab pool until execution:
//
//   - SlabPool<T> hands out stable 32-bit indices into chunked slabs. Slabs
//     are never moved or freed, so references obtained from the pool stay
//     valid while handlers enqueue new work (which may grow the pool).
//     Released indices are recycled LIFO, keeping the working set hot.
//
//   - CalendarEventQueue orders entries by (tick, src, seq): ties at a tick
//     break by the sending entity (lane, per-node DRAM port, or host) and
//     then by that entity's private send counter. Both tie-break components
//     are computed by the sender alone, which is what lets the host-parallel
//     sharded engine (sim/machine.cpp) reproduce the exact same total order
//     for any shard count: no globally-shared sequence counter exists.
//     Near-future events (the overwhelming majority: lane latencies are
//     tens-to-hundreds of ticks) go into a ring of bucket vectors indexed by
//     tick; far-future events (bandwidth-queued DRAM under heavy contention)
//     overflow into a small binary heap that is drained lazily as the
//     calendar window advances.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace updown {

/// Recycling slab allocator with stable storage and 32-bit handles.
template <typename T, unsigned kSlabLog2 = 9>
class SlabPool {
 public:
  static constexpr std::uint32_t kSlabSize = 1u << kSlabLog2;

  /// Take a slot; the object retains whatever state the previous user left
  /// (callers overwrite every field they later read).
  std::uint32_t acquire() {
    if (free_.empty()) grow();
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    ++live_;
#ifndef NDEBUG
    freed_[idx] = false;
#endif
    return idx;
  }

  // A double or out-of-range release would plant a duplicate/bogus index in
  // the free list, and the corruption only surfaces much later as two live
  // payloads sharing a slot. Debug builds keep a freed-bitmap so the bad
  // release itself asserts; release builds stay at zero overhead.
  void release(std::uint32_t idx) {
    assert(live_ > 0);
    assert(idx < capacity() && "SlabPool::release: index out of range");
    assert(!freed_[idx] && "SlabPool::release: double release");
#ifndef NDEBUG
    freed_[idx] = true;
#endif
    free_.push_back(idx);
    --live_;
  }

  T& operator[](std::uint32_t idx) {
    return slabs_[idx >> kSlabLog2][idx & (kSlabSize - 1)];
  }
  const T& operator[](std::uint32_t idx) const {
    return slabs_[idx >> kSlabLog2][idx & (kSlabSize - 1)];
  }

  std::uint32_t live() const { return live_; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slabs_.size()) * kSlabSize;
  }

 private:
  void grow() {
    const std::uint32_t base = capacity();
    slabs_.push_back(std::make_unique<T[]>(kSlabSize));
    free_.reserve(free_.size() + kSlabSize);
    // Push in reverse so fresh slabs hand out ascending indices.
    for (std::uint32_t i = kSlabSize; i-- > 0;) free_.push_back(base + i);
#ifndef NDEBUG
    freed_.resize(capacity(), true);  // fresh slots start on the free list
#endif
  }

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::uint32_t live_ = 0;
#ifndef NDEBUG
  std::vector<bool> freed_;  ///< mirrors free-list membership (debug only)
#endif
};

/// A queued event: when it fires, who sent it (entity id + that entity's
/// send counter — the deterministic tie-break), what kind of payload, and
/// where the payload lives in its pool. 24 bytes.
struct QEntry {
  Tick t = 0;
  std::uint32_t src = 0;   ///< sending entity (lane nwid / DRAM port / host)
  std::uint32_t seq = 0;   ///< sender-private send counter
  std::uint32_t index = 0;
  std::uint8_t kind = 0;
};
static_assert(sizeof(QEntry) <= 24, "queue entries must stay slim");

/// Two-level calendar queue ordered by (t, src, seq); ties impossible since
/// (src, seq) is unique per sender.
class CalendarEventQueue {
 public:
  /// @param bucket_width_log2  ticks per bucket (log2)
  /// @param nbuckets_log2      buckets in the calendar ring (log2)
  explicit CalendarEventQueue(unsigned bucket_width_log2 = 4, unsigned nbuckets_log2 = 10)
      : wshift_(bucket_width_log2),
        nbuckets_(1u << nbuckets_log2),
        mask_(nbuckets_ - 1),
        buckets_(nbuckets_) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const QEntry& e) {
    ++size_;
    std::uint64_t vidx = e.t >> wshift_;
    if (vidx < cur_vidx_) vidx = cur_vidx_;  // past-due events fire immediately
    if (vidx - cur_vidx_ >= nbuckets_) {     // beyond the calendar window
      far_.push(e);
      ++stats_.far_events;
      return;
    }
    auto& b = buckets_[vidx & mask_];
    if (vidx == cur_vidx_ && cur_sorted_ && !b.empty()) {
      // The bucket being drained is kept sorted descending; splice in place.
      b.insert(std::upper_bound(b.begin(), b.end(), e, DescOrder{}), e);
    } else {
      b.push_back(e);
      if (vidx == cur_vidx_) cur_sorted_ = false;
    }
    ++near_count_;
  }

  /// Remove and return the minimum-(t, src, seq) entry. Precondition: !empty().
  QEntry pop() {
    assert(size_ > 0);
    --size_;
    auto& b = advance_to_min();
    const QEntry e = b.back();
    b.pop_back();
    --near_count_;
    if (b.empty()) cur_sorted_ = false;
    return e;
  }

  /// Tick of the minimum entry without removing it. Precondition: !empty().
  /// The sharded engine uses this to drain a shard only up to the end of the
  /// current lookahead window.
  Tick peek_tick() {
    assert(size_ > 0);
    return advance_to_min().back().t;
  }

  struct Stats {
    std::uint64_t far_events = 0;   ///< pushes that overflowed to the far heap
    std::uint64_t bucket_sorts = 0; ///< lazy bucket sorts performed
  };
  const Stats& stats() const { return stats_; }

 private:
  struct DescOrder {
    bool operator()(const QEntry& a, const QEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };
  struct MinOrder {  // std::priority_queue is a max-heap; invert for min
    bool operator()(const QEntry& a, const QEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };

  /// Advance the cursor to the first non-empty bucket and return it sorted
  /// (descending, so the minimum entry is at the back). Precondition: the
  /// queue holds at least one entry.
  std::vector<QEntry>& advance_to_min() {
    for (;;) {
      auto& b = buckets_[cur_vidx_ & mask_];
      if (!b.empty()) {
        if (!cur_sorted_) {
          if (b.size() > 1) {
            std::sort(b.begin(), b.end(), DescOrder{});
            ++stats_.bucket_sorts;
          }
          cur_sorted_ = true;
        }
        return b;
      }
      cur_sorted_ = false;
      if (near_count_ == 0) {
        // Nothing in the window: jump the calendar straight to the overflow
        // heap's minimum instead of stepping bucket by bucket.
        assert(!far_.empty());
        cur_vidx_ = far_.top().t >> wshift_;
      } else {
        ++cur_vidx_;
      }
      drain_far();
    }
  }

  void drain_far() {
    const Tick limit = (cur_vidx_ + nbuckets_) << wshift_;
    while (!far_.empty() && far_.top().t < limit) {
      const QEntry e = far_.top();
      far_.pop();
      buckets_[(e.t >> wshift_) & mask_].push_back(e);
      ++near_count_;
    }
  }

  unsigned wshift_;
  std::uint64_t nbuckets_;
  std::uint64_t mask_;
  std::vector<std::vector<QEntry>> buckets_;
  std::priority_queue<QEntry, std::vector<QEntry>, MinOrder> far_;
  std::uint64_t cur_vidx_ = 0;    ///< virtual bucket index the cursor is on
  bool cur_sorted_ = false;       ///< current bucket sorted descending?
  std::size_t near_count_ = 0;    ///< entries resident in the ring
  std::size_t size_ = 0;
  Stats stats_;
};

}  // namespace updown
