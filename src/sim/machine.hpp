// The UpDown machine: nodes of accelerators of lanes, a global address
// space, and the discrete-event engine that executes UDWeave events.
//
// This is the repository's "Fastsim" equivalent: events are C++ handlers
// that charge cycle costs through the intrinsic API (paper Table 2), while
// DRAM and the network use streamlined latency/bandwidth models — the same
// modeling split the paper describes for Fastsim.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/global_memory.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"
#include "sim/event_queue.hpp"
#include "sim/lane.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"
#include "udweave/thread.hpp"

namespace updown {

class Ctx;
class Checker;

class Machine {
 public:
  explicit Machine(MachineConfig cfg);
  ~Machine();  // out of line: Checker is incomplete here

  const MachineConfig& config() const { return cfg_; }
  Program& program() { return program_; }
  GlobalMemory& memory() { return memory_; }
  const GlobalMemory& memory() const { return memory_; }

  // ---- Topology / computation-location naming ------------------------------
  // node_of/accel_of run on every routed message; the dividers are cached at
  // construction and reduce to shifts for power-of-two lane counts.
  NetworkId nwid_of(std::uint32_t node, std::uint32_t accel, std::uint32_t lane) const {
    return node * cfg_.lanes_per_node() + accel * cfg_.lanes_per_accel + lane;
  }
  std::uint32_t node_of(NetworkId nwid) const { return lpn_div_.div(nwid); }
  std::uint32_t accel_of(NetworkId nwid) const {
    return lpa_div_.div(lpn_div_.mod(nwid));
  }
  std::uint32_t lane_in_accel(NetworkId nwid) const { return lpa_div_.mod(nwid); }
  NetworkId first_lane_of_node(std::uint32_t node) const {
    return node * cfg_.lanes_per_node();
  }
  Lane& lane(NetworkId nwid) { return lanes_.at(nwid); }

  // ---- Host (TOP core) interface --------------------------------------------
  /// Inject an event from the host; it is delivered to the target lane with
  /// intra-node latency from node 0.
  void send_from_host(Word event_word, std::initializer_list<Word> ops,
                      Word cont = IGNRCONT);
  void send_from_host(Word event_word, const Word* ops, std::size_t nops,
                      Word cont = IGNRCONT);

  /// Run the simulation until the event queue drains (quiescence).
  void run();
  /// Execute a single queued item; returns false when the queue is empty.
  bool step();
  bool idle() const { return queue_.empty(); }
  /// Host-side gauges of the event engine (queue/pool behavior).
  EngineStats engine_stats() const;

  Tick now() const { return now_; }

  /// The udcheck analysis subsystem (src/check/), or nullptr when off.
  /// Enabled via MachineConfig::check or the UD_CHECK environment variable;
  /// hook sites pay one null test when disabled.
  Checker* checker() { return checker_.get(); }

  // ---- Statistics ------------------------------------------------------------
  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }
  std::vector<LaneStats> lane_stats() const;
  LaneActivity lane_activity() const;

  // ---- Application payload ---------------------------------------------------
  /// Applications stash a context object (labels, base addresses, result
  /// fields) here so that event handlers can reach it; the analog of global
  /// program state in a real UDWeave binary.
  template <typename T, typename... Args>
  T& emplace_user(Args&&... args) {
    user_ = std::make_shared<T>(std::forward<Args>(args)...);
    user_ptr_ = user_.get();
    return *static_cast<T*>(user_ptr_);
  }
  template <typename T>
  T& user() {
    return *static_cast<T*>(user_ptr_);
  }

  /// Library services (KVMSR, SHT, ...) register themselves here, keyed by
  /// type, so their event handlers can find their state without going
  /// through the application's user struct.
  template <typename T, typename... Args>
  T& add_service(Args&&... args) {
    auto ptr = std::make_shared<T>(std::forward<Args>(args)...);
    T& ref = *ptr;
    services_[std::type_index(typeid(T))] = std::move(ptr);
    return ref;
  }
  template <typename T>
  T& service() {
    auto it = services_.find(std::type_index(typeid(T)));
    if (it == services_.end())
      throw std::logic_error("Machine: service not registered: " + std::string(typeid(T).name()));
    return *static_cast<T*>(it->second.get());
  }
  template <typename T>
  bool has_service() const {
    return services_.count(std::type_index(typeid(T))) > 0;
  }

 private:
  friend class Ctx;
  friend class Checker;

  enum Kind : std::uint8_t { kMsg, kDram };

  // Internal send paths, used by Ctx and by the host interface. Payloads are
  // parked in the slab pools; the calendar queue holds slim QEntry records.
  void route_message(Message&& m, Tick depart);
  void route_dram(DramRequest&& r, Tick depart);
  void exec_message(std::uint32_t pool_index, Tick arrive);
  void exec_dram(std::uint32_t pool_index, Tick arrive);
  void enqueue(Tick t, Kind kind, std::uint32_t pool_index);

  MachineConfig cfg_;
  Program program_;
  GlobalMemory memory_;
  NetworkModel network_;
  DramModel dram_;
  std::vector<Lane> lanes_;  ///< by value: one indirection per event, not two
  FastDiv lpn_div_;  ///< by lanes_per_node()
  FastDiv lpa_div_;  ///< by lanes_per_accel
  CalendarEventQueue queue_;
  SlabPool<Message> msg_pool_;
  SlabPool<DramRequest> dram_pool_;
  std::uint64_t seq_ = 0;
  std::uint64_t live_threads_ = 0;
  Tick now_ = 0;
  MachineStats stats_;
  std::unique_ptr<Checker> checker_;  ///< null unless checking is enabled
  std::shared_ptr<void> user_;
  void* user_ptr_ = nullptr;
  std::unordered_map<std::type_index, std::shared_ptr<void>> services_;
};

}  // namespace updown
