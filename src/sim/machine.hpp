// The UpDown machine: nodes of accelerators of lanes, a global address
// space, and the discrete-event engine that executes UDWeave events.
//
// This is the repository's "Fastsim" equivalent: events are C++ handlers
// that charge cycle costs through the intrinsic API (paper Table 2), while
// DRAM and the network use streamlined latency/bandwidth models — the same
// modeling split the paper describes for Fastsim.
//
// Host-parallel execution (UD_SHARDS / MachineConfig::shards): the engine
// can shard the machine's nodes round-robin across host threads. Each shard
// owns a calendar queue, payload pools, and a stats block, and all shards run
// in lock-step windows one minimum cross-node latency wide — the classic
// conservative-PDES lookahead, which UpDown's node-local event semantics
// provide for free. Cross-shard sends travel through per-(src,dst) mailboxes
// merged at window boundaries. Because every queue entry is ordered by
// (tick, sending entity, sender-private seq) — no globally shared counter —
// the merged schedule is bit-identical to the serial engine for any shard
// count. See DESIGN.md "Host-parallel execution" for the full argument.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/global_memory.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"
#include "sim/event_queue.hpp"
#include "sim/lane.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"
#include "udweave/thread.hpp"

namespace updown {

class Ctx;
class Checker;
class Tracer;
struct TraceShard;

/// Reusable spin barrier (generation-counting). The window protocol crosses
/// it twice per round; rounds are short (one lookahead window of events), so
/// spinning with a yield fallback beats futex-based synchronization.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t n) : n_(n) {}

  /// Set the participant count. Only valid while no thread is waiting.
  void set_parties(std::uint32_t n) { n_ = n; }

  void arrive_and_wait();

 private:
  std::uint32_t n_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint32_t> generation_{0};
};

/// Everything one host thread owns when the engine is sharded: the calendar
/// queue and payload pools for the nodes assigned to it, a stats delta block
/// (folded into Machine::stats_ lazily), outgoing mailboxes (one per
/// destination shard, drained by the destination at the next window
/// boundary), and a private snapshot of the DRAM descriptor table. The
/// serial engine is simply shard 0 used alone.
struct EngineShard {
  /// An event in flight between shards: the queue-entry key (arrival tick,
  /// sending entity, sender seq) plus the payload by value. The destination
  /// re-pools the payload when it merges its inbox.
  struct MailMsg {
    Tick t;
    std::uint32_t ent, seq;
    Message m;
    std::vector<Word> bulk;  ///< bulk payload by value (m.bulk is re-pooled
                             ///< by the destination shard at merge time)
  };
  struct MailDram {
    Tick t;
    std::uint32_t ent, seq;
    DramRequest r;
  };
  struct MailBox {
    std::vector<MailMsg> msgs;
    std::vector<MailDram> drams;
  };

  std::uint32_t id = 0;  ///< this shard's index (checker log addressing)
  CalendarEventQueue queue;
  SlabPool<Message> msg_pool;
  SlabPool<DramRequest> dram_pool;
  SlabPool<BulkPayload> bulk_pool;  ///< out-of-line payloads of packed messages
  MachineStats stats;  ///< delta since the last flush into Machine::stats_
  Tick now = 0;
  std::uint64_t live_threads = 0;
  std::uint64_t mail_received = 0;  ///< events merged in from other shards
  std::vector<MailBox> outbox;      ///< indexed by destination shard
  DescriptorSnapshot mem_snap;      ///< refreshed at every window boundary
  std::exception_ptr eptr;          ///< first exception thrown on this shard
  TraceShard* trace = nullptr;      ///< this shard's udtrace buffers (null = off)
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg);
  ~Machine();  // out of line: Checker is incomplete here

  const MachineConfig& config() const { return cfg_; }
  Program& program() { return program_; }
  GlobalMemory& memory() { return memory_; }
  const GlobalMemory& memory() const { return memory_; }

  // ---- Topology / computation-location naming ------------------------------
  // node_of/accel_of run on every routed message; the dividers are cached at
  // construction and reduce to shifts for power-of-two lane counts.
  NetworkId nwid_of(std::uint32_t node, std::uint32_t accel, std::uint32_t lane) const {
    return node * cfg_.lanes_per_node() + accel * cfg_.lanes_per_accel + lane;
  }
  std::uint32_t node_of(NetworkId nwid) const { return lpn_div_.div(nwid); }
  std::uint32_t accel_of(NetworkId nwid) const {
    return lpa_div_.div(lpn_div_.mod(nwid));
  }
  std::uint32_t lane_in_accel(NetworkId nwid) const { return lpa_div_.mod(nwid); }
  NetworkId first_lane_of_node(std::uint32_t node) const {
    return node * cfg_.lanes_per_node();
  }
  /// Handle over one lane's state (hot path: Release builds index unchecked;
  /// Debug keeps the out-of-range throw the fat-object .at() used to give).
  Lane lane(NetworkId nwid) {
#ifndef NDEBUG
    if (nwid >= lanes_.size())
      throw std::out_of_range("Machine::lane: networkID beyond machine lanes");
#endif
    return Lane(lanes_, nwid);
  }
  /// The machine-wide SoA lane storage (benches and tests inspect laziness).
  LaneTable& lane_table() { return lanes_; }
  const LaneTable& lane_table() const { return lanes_; }

  // ---- Sharding -------------------------------------------------------------
  /// Host threads the engine runs on (resolved from UD_SHARDS /
  /// MachineConfig::shards, clamped to the node count). Checked runs shard
  /// too: udcheck defers its analysis to a window-boundary replay.
  std::uint32_t shards() const { return nshards_; }
  /// Owning shard of `node`. Starts as the round-robin partition
  /// (node % shards); work stealing (UD_STEAL) remaps it at window
  /// boundaries, with all shards observing the same map each window.
  std::uint32_t shard_of(std::uint32_t node) const {
    return nshards_ == 1 ? 0 : owner_[node];
  }

  // ---- Host (TOP core) interface --------------------------------------------
  /// Inject an event from the host; it is delivered to the target lane with
  /// intra-node latency from node 0.
  void send_from_host(Word event_word, std::initializer_list<Word> ops,
                      Word cont = IGNRCONT);
  void send_from_host(Word event_word, const Word* ops, std::size_t nops,
                      Word cont = IGNRCONT);
  /// Inject an event from the host departing at simulated tick
  /// `max(depart, now())` instead of now(). This is how a paused host driver
  /// (between run_until calls) models requests that arrive at a future
  /// simulated time: the event simply waits in the queue until the engine
  /// reaches its tick. Only callable while the engine is paused, like
  /// send_from_host.
  void send_from_host_at(Tick depart, Word event_word, std::initializer_list<Word> ops,
                         Word cont = IGNRCONT);

  /// Run the simulation until the event queue drains (quiescence). With
  /// shards > 1, spawns the worker threads for the duration of the run; an
  /// exception thrown by any shard stops all shards at the next window
  /// boundary and is rethrown here (lowest shard index wins when several
  /// shards fault in the same window).
  void run();
  /// Run until `stop()` returns true or the queue drains; returns true when
  /// the stop predicate fired (the machine is PAUSED: events remain queued
  /// and a later run()/run_until() resumes exactly where this one stopped),
  /// false on a full drain. This is the per-job quiescence entry point: the
  /// predicate typically tests a host-visible job flag (e.g. KVMSR
  /// JobState::running) so one job's completion hands control back to the
  /// host scheduler while other jobs stay in flight.
  ///
  /// Serial engines evaluate the predicate between events; sharded engines
  /// evaluate it on shard 0 between lock-step windows (when no shard is
  /// executing and every exec-phase write is barrier-published), so all
  /// shards pause at the same window boundary. Either way the predicate only
  /// ever observes quiescent host-side state. The checker report, its
  /// drain-era barrier, and trace serialization are *clean-drain*
  /// finalizations: a stopped run skips them, and the final draining run
  /// performs them for the whole simulation.
  bool run_until(const std::function<bool()>& stop);
  /// Execute a single queued item; returns false when the queue is empty.
  /// Serial engine only (throws std::logic_error when shards > 1).
  bool step();
  bool idle() const;
  /// Host-side gauges of the event engine (queue/pool/shard behavior).
  EngineStats engine_stats() const;

  Tick now() const { return now_; }

  /// The udcheck analysis subsystem (src/check/), or nullptr when off.
  /// Enabled via MachineConfig::check or the UD_CHECK environment variable;
  /// hook sites pay one null test when disabled.
  Checker* checker() { return checker_.get(); }

  /// The udtrace timeline/profiling subsystem (src/trace/), or nullptr when
  /// off. Enabled via MachineConfig::trace or the UD_TRACE environment
  /// variable; same one-null-test hook discipline as the checker, but unlike
  /// udcheck it runs under any shard count (see trace/trace.hpp).
  Tracer* tracer() { return tracer_.get(); }

  // ---- Statistics ------------------------------------------------------------
  // Execution accumulates into per-shard delta blocks; the accessors fold
  // outstanding deltas into the machine total first. Host-side use only (not
  // concurrent with run()).
  MachineStats& stats() {
    flush_stats();
    return stats_;
  }
  const MachineStats& stats() const {
    const_cast<Machine*>(this)->flush_stats();
    return stats_;
  }
  std::vector<LaneStats> lane_stats() const;
  LaneActivity lane_activity() const;

  // ---- Application payload ---------------------------------------------------
  /// Applications stash a context object (labels, base addresses, result
  /// fields) here so that event handlers can reach it; the analog of global
  /// program state in a real UDWeave binary.
  template <typename T, typename... Args>
  T& emplace_user(Args&&... args) {
    user_ = std::make_shared<T>(std::forward<Args>(args)...);
    user_ptr_ = user_.get();
    return *static_cast<T*>(user_ptr_);
  }
  template <typename T>
  T& user() {
    return *static_cast<T*>(user_ptr_);
  }

  /// Library services (KVMSR, SHT, ...) register themselves here, keyed by
  /// type, so their event handlers can find their state without going
  /// through the application's user struct.
  template <typename T, typename... Args>
  T& add_service(Args&&... args) {
    auto ptr = std::make_shared<T>(std::forward<Args>(args)...);
    T& ref = *ptr;
    services_[std::type_index(typeid(T))] = std::move(ptr);
    return ref;
  }
  template <typename T>
  T& service() {
    auto it = services_.find(std::type_index(typeid(T)));
    if (it == services_.end())
      throw std::logic_error("Machine: service not registered: " + std::string(typeid(T).name()));
    return *static_cast<T*>(it->second.get());
  }
  template <typename T>
  bool has_service() const {
    return services_.count(std::type_index(typeid(T))) > 0;
  }

 private:
  friend class Ctx;
  friend class Checker;

  enum Kind : std::uint8_t { kMsg, kDram };

  // ---- Sender entity ids ----------------------------------------------------
  // Every queue entry carries the id of the entity that produced it plus that
  // entity's private send counter: lanes use their nwid and Lane::send_seq,
  // each node's DRAM port and the host get ids above the lane space.
  std::uint32_t dram_entity(std::uint32_t node) const {
    return static_cast<std::uint32_t>(cfg_.total_lanes()) + node;
  }
  std::uint32_t host_entity() const {
    return static_cast<std::uint32_t>(cfg_.total_lanes()) + cfg_.nodes;
  }

  // Internal send paths, used by Ctx and by the host interface. Payloads are
  // parked in the slab pools of the *destination* shard; same-shard sends
  // pool directly, cross-shard sends ride the mailbox until the window
  // boundary. `sh` is the shard doing the sending (it owns the network
  // token buckets of the sending node and takes the stats deltas).
  /// `bulk` must point at m.bulk_words valid words when m.bulk_words > 0 (the
  /// words are copied into the destination shard's bulk pool, or by value
  /// into the mailbox for cross-shard sends).
  void route_message(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                     Message&& m, Tick depart, const Word* bulk = nullptr);
  void route_dram(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                  DramRequest&& r, Tick depart);
  void exec_message(EngineShard& sh, const QEntry& e);
  void exec_dram(EngineShard& sh, const QEntry& e);
  /// Run `m`'s handler synchronously on the current lane, bypassing the
  /// network and the event queue — the KVMSR packet unpacker spawning one
  /// reduce thread per packed tuple. The event word must address the lane the
  /// caller is executing on. Returns the cycles the inline event consumed
  /// (handler charges + the thread yield/deallocate cycle); the caller
  /// absorbs them into its own charge so lane timing stays exact. Counted in
  /// events_executed/threads_* but not messages_sent (no message exists).
  std::uint64_t deliver_inline(EngineShard& sh, Message&& m, Tick start);
  void push(EngineShard& sh, const QEntry& e);
  /// Release a message's bulk-pool slot, if it holds one. Call exactly once
  /// per pooled message, right before msg_pool.release.
  void release_bulk(EngineShard& sh, std::uint32_t pool_index) {
    Message& m = sh.msg_pool[pool_index];
    if (m.bulk != kNoBulk) {
      sh.bulk_pool.release(m.bulk);
      m.bulk = kNoBulk;
      m.bulk_words = 0;
    }
  }

  /// run_until bodies: serial event loop / sharded window protocol. Each
  /// returns true when the stop predicate fired, false on a full drain.
  bool run_serial(const std::function<bool()>& stop);
  bool run_sharded(const std::function<bool()>& stop);
  /// One shard's half of the window protocol (body of run() when sharded).
  void run_shard(std::uint32_t my, Tick lookahead);
  /// Merge every mailbox addressed to shard `my` into its queue.
  void merge_inbox(EngineShard& sh, std::uint32_t my);
  /// Shard 0, inside the steal barriers: decide whether the node->shard
  /// partition is skewed and, if so, compute a new owner map (greedy LPT over
  /// per-node work). Sets rebalance_now_ for all shards to read.
  void plan_rebalance();
  /// After a remap: drain this shard's queue, keep entries for nodes it still
  /// owns, and mail the rest to their new owners.
  void migrate_queue(EngineShard& sh, std::uint32_t my);
  /// Fold all shards' stats deltas into stats_ and zero the deltas.
  void flush_stats();

  EngineShard& shard0() { return *shards_[0]; }  ///< serial engine / checker view

  MachineConfig cfg_;
  Program program_;
  GlobalMemory memory_;
  NetworkModel network_;
  DramModel dram_;
  LaneTable lanes_;  ///< SoA lane state: hot flat arrays + lazy cold cores
  FastDiv lpn_div_;  ///< by lanes_per_node()
  FastDiv lpa_div_;  ///< by lanes_per_accel
  std::uint32_t nshards_ = 1;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::vector<std::uint32_t> dram_seq_;  ///< per-node DRAM-port send counters
  std::uint32_t host_seq_ = 0;           ///< host send counter
  SpinBarrier barrier_;
  std::vector<Tick> local_min_;  ///< per-shard queue minimum, valid at barrier A
  std::atomic<bool> abort_{false};
  /// run_until stop protocol: shard 0 evaluates the predicate between
  /// barrier B and barrier A (no shard executing) and publishes here, pre-A,
  /// exactly like abort_ — so every shard breaks at the same window boundary.
  std::atomic<bool> stop_{false};
  const std::function<bool()>* stop_pred_ = nullptr;  ///< valid during run_sharded
  std::uint64_t windows_ = 0;  ///< lock-step windows executed (shard 0 counts)
  bool pin_ = false;           ///< pin shard threads to CPUs (UD_PIN)
  bool steal_ = false;         ///< window-boundary work stealing (UD_STEAL)
  std::uint32_t steal_period_ = 16;       ///< windows between imbalance checks
  std::vector<std::uint32_t> owner_;      ///< node -> owning shard
  /// Charged cycles per node since the last imbalance check. Written only by
  /// the node's owning shard during the exec phase; read and zeroed by shard 0
  /// between the steal barriers (happens-before via the barrier protocol).
  std::vector<std::uint64_t> node_work_;
  bool rebalance_now_ = false;  ///< shard 0 writes between S1/S2; all read after S2
  std::uint64_t rebalances_ = 0;
  Tick now_ = 0;
  MachineStats stats_;
  std::unique_ptr<Checker> checker_;  ///< null unless checking is enabled
  /// Checked + sharded: hooks record per-shard logs, shard 0 replays them at
  /// window boundaries (Checker::deferred()). Cached here for the hot path.
  bool ck_defer_ = false;
  std::unique_ptr<Tracer> tracer_;    ///< null unless tracing is enabled
  std::shared_ptr<void> user_;
  void* user_ptr_ = nullptr;
  std::unordered_map<std::type_index, std::shared_ptr<void>> services_;
};

}  // namespace updown
