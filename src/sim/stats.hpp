// Machine-wide and per-lane statistics.
//
// These counters are the raw material for every benchmark table: events and
// cycles give the simulated runtimes, message/DRAM counters give the traffic
// breakdowns, and per-lane busy cycles give utilization and load-imbalance
// numbers (the paper's "extremely good load balance over millions of lanes").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace updown {

struct LaneStats {
  Tick busy_cycles = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_sent = 0;
};

struct MachineStats {
  std::uint64_t events_executed = 0;
  std::uint64_t charged_cycles = 0;  ///< total lane-busy cycles across the run
  std::uint64_t messages_sent = 0;
  std::uint64_t message_bytes = 0;
  std::uint64_t cross_node_messages = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t remote_dram_accesses = 0;  ///< request crossed node boundary
  std::uint64_t threads_created = 0;
  std::uint64_t threads_destroyed = 0;
  std::uint64_t max_live_threads = 0;
  std::uint64_t max_queue_depth = 0;  ///< peak pending events in the calendar queue

  void reset() { *this = MachineStats{}; }
};

/// Host-side gauges of the event engine itself (not simulated quantities):
/// how the calendar queue and payload pools behaved over a run. Surfaced by
/// the micro_sim throughput benchmark.
struct EngineStats {
  std::uint64_t far_events = 0;        ///< pushes beyond the calendar window
  std::uint64_t bucket_sorts = 0;      ///< lazy calendar-bucket sorts
  std::uint32_t msg_pool_capacity = 0;   ///< message slots ever allocated
  std::uint32_t dram_pool_capacity = 0;  ///< DRAM-request slots ever allocated
};

/// Aggregate view over per-lane activity.
struct LaneActivity {
  double mean_busy = 0.0;
  Tick max_busy = 0;
  Tick min_busy = 0;

  /// Load imbalance factor: max lane busy-time over mean busy-time. A
  /// perfectly balanced run has factor 1.0.
  double imbalance() const { return mean_busy > 0 ? max_busy / mean_busy : 0.0; }

  static LaneActivity from(const std::vector<LaneStats>& lanes) {
    LaneActivity a;
    if (lanes.empty()) return a;
    Tick total = 0;
    a.min_busy = lanes.front().busy_cycles;
    for (const auto& l : lanes) {
      total += l.busy_cycles;
      a.max_busy = std::max(a.max_busy, l.busy_cycles);
      a.min_busy = std::min(a.min_busy, l.busy_cycles);
    }
    a.mean_busy = static_cast<double>(total) / static_cast<double>(lanes.size());
    return a;
  }
};

}  // namespace updown
