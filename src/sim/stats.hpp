// Machine-wide and per-lane statistics.
//
// These counters are the raw material for every benchmark table: events and
// cycles give the simulated runtimes, message/DRAM counters give the traffic
// breakdowns, and per-lane busy cycles give utilization and load-imbalance
// numbers (the paper's "extremely good load balance over millions of lanes").
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/types.hpp"

namespace updown {

struct LaneStats {
  Tick busy_cycles = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_sent = 0;
};

/// Machine-readable summary of the udcheck analyses (src/check/). All-zero
/// (and `enabled == false`) when the checker is off. Error counters mean the
/// run exercised a real bug class; warning counters are drain-state gauges
/// that clean applications may legitimately leave nonzero.
struct CheckSummary {
  bool enabled = false;
  bool sp_strict = false;

  // Errors.
  std::uint64_t data_races = 0;          ///< unordered DRAM write pairs
  std::uint64_t sp_races = 0;            ///< strict-mode scratchpad conflicts
  std::uint64_t out_of_bounds = 0;       ///< unmapped-VA accesses
  std::uint64_t use_after_free = 0;      ///< accesses into freed regions
  std::uint64_t bad_frees = 0;           ///< double/invalid dram_free
  std::uint64_t dead_thread_sends = 0;   ///< events to dead thread contexts
  std::uint64_t stale_deliveries = 0;    ///< recycled-tid aliased deliveries
  std::uint64_t bad_event_words = 0;     ///< invalid label/lane/thread class
  std::uint64_t operand_overflows = 0;   ///< >6 operands on a plain message
  std::uint64_t leaked_threads = 0;      ///< live thread contexts at drain
  std::uint64_t undelivered_messages = 0;///< queue not quiescent at report

  // Warnings.
  std::uint64_t leaked_allocations = 0;    ///< live DRAM regions at drain
  std::uint64_t unfired_continuations = 0; ///< delivered conts never sent

  // Gauges (not part of errors()/warnings()/clean()).
  std::uint64_t shadow_peak_bytes = 0;  ///< peak resident shadow-memory bytes

  std::uint64_t errors() const {
    return data_races + sp_races + out_of_bounds + use_after_free + bad_frees +
           dead_thread_sends + stale_deliveries + bad_event_words +
           operand_overflows + leaked_threads + undelivered_messages;
  }
  std::uint64_t warnings() const { return leaked_allocations + unfired_continuations; }
  bool clean() const { return errors() == 0; }
};

/// KVMSR shuffle-phase traffic counters, kept separately from the machine
/// totals so figures and tests can split map/control traffic from the
/// shuffle without re-deriving counts. `tuples_emitted` counts emit()/emit2()
/// calls; `tuples_combined` of those merged map-side (equal keys under a job
/// combiner) and never touched the wire; the rest became reduce tasks, either
/// as single per-tuple messages or packed `coalesced_packets`. All counters
/// accumulate whether or not coalescing is on, so the per-phase summary is
/// meaningful for baseline runs too.
struct ShuffleStats {
  std::uint64_t tuples_emitted = 0;    ///< emit()/emit2() calls
  std::uint64_t tuples_combined = 0;   ///< merged map-side, never sent
  std::uint64_t messages = 0;          ///< shuffle wire messages (singles + packets)
  std::uint64_t coalesced_packets = 0; ///< of `messages`, packed multi-tuple sends
  std::uint64_t bytes = 0;             ///< shuffle wire bytes (header + payload)
  std::uint64_t cross_node_messages = 0;

  /// Tuples that crossed the wire (emitted minus map-side-combined).
  std::uint64_t tuples_delivered() const { return tuples_emitted - tuples_combined; }
  /// Achieved tuples-per-message: 1.0 without coalescing. A job that emitted
  /// nothing sent no messages and achieved exactly the uncoalesced ratio, so
  /// the empty case reports 1.0 (a 0.0 row in the bench JSON would read as a
  /// pathological shuffle, not an idle one).
  double coalescing_factor() const {
    return messages ? static_cast<double>(tuples_delivered()) / static_cast<double>(messages)
                    : 1.0;
  }

  void merge(const ShuffleStats& s) {
    tuples_emitted += s.tuples_emitted;
    tuples_combined += s.tuples_combined;
    messages += s.messages;
    coalesced_packets += s.coalesced_packets;
    bytes += s.bytes;
    cross_node_messages += s.cross_node_messages;
  }
};

struct MachineStats {
  std::uint64_t events_executed = 0;
  std::uint64_t charged_cycles = 0;  ///< total lane-busy cycles across the run
  std::uint64_t messages_sent = 0;
  std::uint64_t message_bytes = 0;
  std::uint64_t cross_node_messages = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t remote_dram_accesses = 0;  ///< request crossed node boundary
  std::uint64_t threads_created = 0;
  std::uint64_t threads_destroyed = 0;
  std::uint64_t max_live_threads = 0;
  std::uint64_t max_queue_depth = 0;  ///< peak pending events in the calendar queue
  ShuffleStats shuffle;  ///< KVMSR shuffle traffic split (zero outside KVMSR jobs)
  CheckSummary check;  ///< udcheck results (all-zero when UD_CHECK is off)

  void reset() { *this = MachineStats{}; }

  /// Fold a shard's delta block into a machine-wide total. Counters add; the
  /// two engine gauges (`max_queue_depth`, `max_live_threads`) combine by
  /// max, i.e. the peak any single shard observed — exact when shards == 1,
  /// a per-shard view otherwise (the determinism goldens exclude them).
  /// `check` is left alone — the checker (serial, or the deferred window
  /// replay on shard 0) writes its summary into the machine total directly
  /// at report time; shard delta blocks never carry checker counts.
  void merge(const MachineStats& s) {
    events_executed += s.events_executed;
    charged_cycles += s.charged_cycles;
    messages_sent += s.messages_sent;
    message_bytes += s.message_bytes;
    cross_node_messages += s.cross_node_messages;
    dram_reads += s.dram_reads;
    dram_writes += s.dram_writes;
    dram_bytes += s.dram_bytes;
    remote_dram_accesses += s.remote_dram_accesses;
    threads_created += s.threads_created;
    threads_destroyed += s.threads_destroyed;
    max_live_threads = std::max(max_live_threads, s.max_live_threads);
    max_queue_depth = std::max(max_queue_depth, s.max_queue_depth);
    shuffle.merge(s.shuffle);
  }

  /// Interval view for per-job stats isolation: the monotone counters since
  /// `base` (a snapshot taken at job admission), computed by subtraction.
  /// The gauges (`max_live_threads`, `max_queue_depth`) and `check` are NOT
  /// interval quantities — they keep the current cumulative values, so a
  /// per-job block reads as "counters this job's window, machine gauges as
  /// of now". Requires `base` to be an earlier snapshot of the same machine.
  MachineStats counters_since(const MachineStats& base) const {
    assert(events_executed >= base.events_executed &&
           "counters_since: base is not an earlier snapshot of this machine");
    MachineStats d = *this;  // carries gauges + check forward
    d.events_executed -= base.events_executed;
    d.charged_cycles -= base.charged_cycles;
    d.messages_sent -= base.messages_sent;
    d.message_bytes -= base.message_bytes;
    d.cross_node_messages -= base.cross_node_messages;
    d.dram_reads -= base.dram_reads;
    d.dram_writes -= base.dram_writes;
    d.dram_bytes -= base.dram_bytes;
    d.remote_dram_accesses -= base.remote_dram_accesses;
    d.threads_created -= base.threads_created;
    d.threads_destroyed -= base.threads_destroyed;
    d.shuffle.tuples_emitted -= base.shuffle.tuples_emitted;
    d.shuffle.tuples_combined -= base.shuffle.tuples_combined;
    d.shuffle.messages -= base.shuffle.messages;
    d.shuffle.coalesced_packets -= base.shuffle.coalesced_packets;
    d.shuffle.bytes -= base.shuffle.bytes;
    d.shuffle.cross_node_messages -= base.shuffle.cross_node_messages;
    return d;
  }

  /// Per-phase traffic summary: the shuffle split vs everything else (map
  /// fan-out, control, DRAM replies). Benches print this so figures and CI
  /// can assert on shuffle message counts directly.
  void print_traffic_summary(std::FILE* f = stdout) const {
    // The shuffle split only makes sense against merged machine totals. On an
    // unmerged per-shard delta block the shuffle counters can exceed the
    // shard's own message total (emit-side accounting vs route-side
    // accounting land on different shards), and the unsigned subtraction
    // would underflow into absurd "other traffic" rows — clamp to zero, and
    // flag the misuse in debug builds.
    assert(messages_sent >= shuffle.messages && message_bytes >= shuffle.bytes &&
           "print_traffic_summary: shuffle counters exceed machine totals "
           "(printing an unmerged per-shard delta?)");
    const std::uint64_t other_msgs =
        messages_sent >= shuffle.messages ? messages_sent - shuffle.messages : 0;
    const std::uint64_t other_bytes =
        message_bytes >= shuffle.bytes ? message_bytes - shuffle.bytes : 0;
    std::fprintf(f, "--- traffic summary ---\n");
    std::fprintf(f, "%-28s %12llu msgs %14llu bytes (%llu cross-node)\n", "total",
                 static_cast<unsigned long long>(messages_sent),
                 static_cast<unsigned long long>(message_bytes),
                 static_cast<unsigned long long>(cross_node_messages));
    std::fprintf(f, "%-28s %12llu msgs %14llu bytes (%llu cross-node)\n",
                 "shuffle (kvmsr emit)",
                 static_cast<unsigned long long>(shuffle.messages),
                 static_cast<unsigned long long>(shuffle.bytes),
                 static_cast<unsigned long long>(shuffle.cross_node_messages));
    std::fprintf(f, "%-28s %12llu msgs %14llu bytes\n", "map/control/replies",
                 static_cast<unsigned long long>(other_msgs),
                 static_cast<unsigned long long>(other_bytes));
    std::fprintf(f,
                 "%-28s %12llu emitted, %llu combined map-side, %llu packets, "
                 "coalescing factor %.2f\n",
                 "shuffle tuples",
                 static_cast<unsigned long long>(shuffle.tuples_emitted),
                 static_cast<unsigned long long>(shuffle.tuples_combined),
                 static_cast<unsigned long long>(shuffle.coalesced_packets),
                 shuffle.coalescing_factor());
  }
};

/// Host-side gauges of the event engine itself (not simulated quantities):
/// how the calendar queue and payload pools behaved over a run. Surfaced by
/// the micro_sim throughput benchmark.
struct EngineStats {
  std::uint64_t far_events = 0;        ///< pushes beyond the calendar window
  std::uint64_t bucket_sorts = 0;      ///< lazy calendar-bucket sorts
  std::uint32_t msg_pool_capacity = 0;   ///< message slots ever allocated
  std::uint32_t dram_pool_capacity = 0;  ///< DRAM-request slots ever allocated
  std::uint32_t shards = 1;            ///< host threads the run sharded over
  std::uint64_t windows = 0;           ///< lock-step lookahead windows executed
  std::uint64_t mailbox_messages = 0;  ///< events handed between shards
  std::uint64_t rebalances = 0;        ///< node->shard remaps (UD_STEAL)
};

/// Aggregate view over per-lane activity.
struct LaneActivity {
  double mean_busy = 0.0;
  Tick max_busy = 0;
  Tick min_busy = 0;

  /// Load imbalance factor: max lane busy-time over mean busy-time. A
  /// perfectly balanced run has factor 1.0.
  double imbalance() const { return mean_busy > 0 ? max_busy / mean_busy : 0.0; }

  static LaneActivity from(const std::vector<LaneStats>& lanes) {
    LaneActivity a;
    if (lanes.empty()) return a;
    Tick total = 0;
    a.min_busy = lanes.front().busy_cycles;
    for (const auto& l : lanes) {
      total += l.busy_cycles;
      a.max_busy = std::max(a.max_busy, l.busy_cycles);
      a.min_busy = std::min(a.min_busy, l.busy_cycles);
    }
    a.mean_busy = static_cast<double>(total) / static_cast<double>(lanes.size());
    return a;
  }
};

}  // namespace updown
