// Simulator message and DRAM-request records.
//
// UpDown messages are 64 bytes: an event word, a continuation word, and up to
// six 64-bit operands (DRAM read responses are the exception and carry up to
// eight words, matching the paper's PageRank listing where returnRead
// receives n0..n7).
//
// In-flight payloads live in the Machine's recycling slab pools (see
// sim/event_queue.hpp) from enqueue until execution; the calendar queue holds
// only a slim {tick, seq, kind, pool index} entry. Pool slots are recycled
// without clearing, so senders must write every field a receiver reads (the
// operand/data arrays are only valid up to nops/nwords).
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

#include "common/types.hpp"
#include "sim/event_word.hpp"

namespace updown {

constexpr unsigned kMaxOperands = 8;

/// Out-of-line payload for bulk (packed) messages: the KVMSR shuffle
/// coalescer streams up to kMaxBulkWords words behind a plain 3-operand
/// header. Bulk slots live in a per-shard SlabPool next to the message pool;
/// a Message references its slot by index so the Message itself stays
/// trivially copyable (cross-shard mailboxes copy the words by value).
constexpr unsigned kMaxBulkWords = 256;
constexpr std::uint32_t kNoBulk = 0xFFFFFFFFu;

struct BulkPayload {
  std::array<Word, kMaxBulkWords> w;
};

struct Message {
  Word evw = 0;          ///< destination event word
  Word cont = IGNRCONT;  ///< continuation word delivered to the handler
  std::array<Word, kMaxOperands> ops{};
  std::uint8_t nops = 0;
  NetworkId src = 0;  ///< sending lane (host sends use lane 0 of node 0)
  std::uint32_t bulk = kNoBulk;     ///< bulk-pool slot in the owning shard
  std::uint16_t bulk_words = 0;     ///< valid words in the bulk slot

  std::uint32_t payload_bytes(std::uint32_t header) const {
    return header + (nops + static_cast<std::uint32_t>(bulk_words)) * 8u;
  }
};

struct DramRequest {
  Addr addr = 0;
  std::uint8_t nwords = 0;
  bool is_write = false;
  std::array<Word, kMaxOperands> data{};  ///< payload for writes
  Word reply_evw = 0;                     ///< 0 => no response (fire-and-forget write)
  Word reply_cont = IGNRCONT;             ///< continuation passed through to the reply
  NetworkId src = 0;                      ///< requesting lane
  std::uint32_t dst_node = 0;  ///< home node of addr; cached at routing time so
                               ///< service doesn't re-translate
};

// Pooled payloads are stored in raw slab arrays and assigned by value.
static_assert(std::is_trivially_copyable_v<Message>);
static_assert(std::is_trivially_copyable_v<DramRequest>);

}  // namespace updown
