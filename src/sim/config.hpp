// Machine configuration: topology and the latency/bandwidth model.
//
// Defaults reproduce the *ratios* of the UpDown system described in the
// paper's Section 3 (local:remote access latency about 7:1, node DRAM
// bandwidth 9.4 TB/s vs 4 TB/s injection, 0.5us cross-machine latency at a
// 2 GHz lane clock), scaled down in lane count so that a single host core can
// simulate multi-node configurations.
#pragma once

#include <cstdint>
#include <string>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace updown {

struct MachineConfig {
  // ---- Topology -----------------------------------------------------------
  std::uint32_t nodes = 1;            ///< power of two; paper machine: 16384
  std::uint32_t accels_per_node = 4;  ///< paper: 32
  std::uint32_t lanes_per_accel = 8;  ///< paper: 64
  std::uint32_t max_threads_per_lane = 1u << 14;
  std::uint64_t scratchpad_bytes = 64 * KiB;

  // ---- Latency model (cycles at 2 GHz) -------------------------------------
  Tick lat_same_lane = 2;     ///< self-send (event to own lane)
  Tick lat_intra_accel = 4;   ///< lane-to-lane within an accelerator
  Tick lat_intra_node = 30;   ///< accelerator-to-accelerator within a node
  Tick lat_hop = 320;         ///< per network hop; 3 hops ~ 0.5us (paper)
  Tick lat_dram = 140;        ///< HBM3e access latency

  // ---- Bandwidth model (bytes per cycle) -----------------------------------
  double bw_dram_node = 4700.0;        ///< 9.4 TB/s per node HBM
  double bw_inject_node = 2000.0;      ///< 4 TB/s node injection
  double bw_bisection_per_node = 1000.0;  ///< 32 PB/s over 16K nodes

  // ---- Message format -------------------------------------------------------
  std::uint32_t msg_header_bytes = 16;  ///< event word + continuation word
  std::uint32_t max_msg_operands = 8;   ///< DRAM responses carry 8 words

  // ---- Checking (src/check/) ------------------------------------------------
  // Overridden by the UD_CHECK / UD_CHECK_SP_STRICT environment variables
  // ("0" or empty = off, anything else = on), mirroring the UDSIM_LOG pattern.
  bool check = false;           ///< enable the udcheck analysis subsystem
  bool check_sp_strict = false; ///< also flag HB-concurrent scratchpad access

  // ---- Tracing (src/trace/) -------------------------------------------------
  // udtrace: opt-in timeline/profiling layer. `trace` names the output file
  // (Chrome trace_event JSON, plus a `<trace>.csv` sibling); empty = off. The
  // UD_TRACE environment variable, when set and non-empty, overrides the
  // path. Zero cost when off (one null test per hook site, the UDSIM_LOG /
  // UD_CHECK pattern), and observation-only when on: simulated timing, event
  // order, and all pinned goldens are unchanged.
  std::string trace;
  /// Width in ticks of the timeline buckets (busy/traffic/queue series).
  /// UD_TRACE_SLICE overrides (strict parse; 0 keeps this default).
  Tick trace_slice = 1024;

  // ---- Host-parallel execution ---------------------------------------------
  // Number of host threads the event engine shards across (UD_SHARDS env
  // overrides; clamped to the node count). Nodes are partitioned round-robin;
  // shards run in lock-step windows one minimum cross-node latency wide, so
  // results are bit-identical for any value — including checked runs, where
  // udcheck defers its analysis to a window-boundary replay on shard 0.
  std::uint32_t shards = 1;

  /// Pin each shard's host thread to a CPU (UD_PIN env overrides). Together
  /// with the lane table's first-touch materialization this gives NUMA-local
  /// lane state: a shard touches only the cores of lanes it owns, so their
  /// pages are allocated on the pinned thread's NUMA node.
  bool pin = false;

  /// Rebalance the node->shard partition at window boundaries when the
  /// per-node work counters show the current partition is skewed (UD_STEAL
  /// env overrides). The remap happens inside the lock-step barrier protocol
  /// and migrates whole nodes, so results stay bit-identical (see DESIGN.md
  /// "Memory layout & scale").
  bool steal = false;

  /// Check for imbalance every this many lock-step windows when `steal` is
  /// on (UD_STEAL_PERIOD env overrides; strict parse, 0 keeps this default).
  std::uint32_t steal_period = 16;

  /// Conservative lookahead of the sharded engine: no event can cause
  /// another event on a different node sooner than this (1 hop minimum, and
  /// bandwidth queuing only adds delay).
  Tick min_cross_node_latency() const { return lat_intra_node + lat_hop; }

  // ---- Derived --------------------------------------------------------------
  std::uint32_t lanes_per_node() const { return accels_per_node * lanes_per_accel; }
  std::uint64_t total_lanes() const {
    return static_cast<std::uint64_t>(nodes) * lanes_per_node();
  }
  double bisection_bytes_per_cycle() const { return bw_bisection_per_node * nodes; }

  /// A configuration with the paper's full per-node shape (32 accelerators of
  /// 64 lanes = 2048 lanes/node). Only usable for small node counts on a
  /// development host.
  static MachineConfig paper_node(std::uint32_t n_nodes) {
    MachineConfig c;
    c.nodes = n_nodes;
    c.accels_per_node = 32;
    c.lanes_per_accel = 64;
    return c;
  }

  /// Scaled configuration used by the benchmark harness: preserves the
  /// node/accelerator/lane hierarchy and all latency/bandwidth ratios, but
  /// with fewer lanes per node so that 64-node sweeps simulate quickly.
  ///
  /// Caveat: the *per-node* bandwidths are kept, so with 64x fewer lanes per
  /// node each lane sees 64x the paper machine's injection/bisection share —
  /// the network is effectively never the bottleneck under scaled(). That is
  /// the right trade for the strong-scaling sweeps (they measure parallelism
  /// and latency tolerance), but wrong for anything that claims a
  /// network-contention effect; use scaled_netbound() for those.
  static MachineConfig scaled(std::uint32_t n_nodes, std::uint32_t accels = 4,
                              std::uint32_t lanes = 8) {
    MachineConfig c;
    c.nodes = n_nodes;
    c.accels_per_node = accels;
    c.lanes_per_accel = lanes;
    return c;
  }

  /// scaled(), with the network bandwidths cut by the same factor as the
  /// lane count: each lane's injection/bisection share matches the paper
  /// machine's (2048 lanes/node sharing 2000 B/cycle injection ~= 1 B/cycle
  /// per lane). This is the configuration where traffic optimizations such
  /// as the KVMSR shuffle coalescer show their simulated-time effect; under
  /// plain scaled() they only move message/byte counters.
  static MachineConfig scaled_netbound(std::uint32_t n_nodes, std::uint32_t accels = 4,
                                       std::uint32_t lanes = 8) {
    MachineConfig c = scaled(n_nodes, accels, lanes);
    const double share = static_cast<double>(paper_node(1).lanes_per_node()) /
                         static_cast<double>(c.lanes_per_node());
    c.bw_inject_node /= share;
    c.bw_bisection_per_node /= share;
    return c;
  }

  bool valid() const {
    // The lane-count ceiling leaves u32 headroom above the lane ids for the
    // engine's non-lane sender entities (per-node DRAM ports and the host).
    return is_pow2(nodes) && accels_per_node > 0 && lanes_per_accel > 0 &&
           total_lanes() <= (1ull << 31) && shards >= 1;
  }
};

}  // namespace updown
