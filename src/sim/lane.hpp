// Lane state in struct-of-arrays form. A lane is one of the machine's 2 GHz
// MIMD compute engines: it executes one event at a time (events are atomic),
// owns a table of thread contexts and a scratchpad memory, and tracks its
// busy time for utilization and load-balance statistics.
//
// The paper's machine is 16,384 nodes x 2,048 lanes (~33M lanes); an engine
// that eagerly heap-allocates a zero-filled scratchpad plus context tables
// per lane cannot be constructed at that scale. The LaneTable therefore
// splits lane state by temperature:
//
//   - Hot, always-present words live in flat arrays indexed by NetworkId:
//     free_at (next tick the lane can start an event), send_seq (the
//     sender-private counter behind the deterministic (tick, src, seq)
//     queue order), and sp_brk (the scratchpad bump pointer). A configured
//     but idle lane costs these few words plus one null pointer.
//
//   - Cold, bulky state (thread-context table, per-class recycling caches,
//     stats, the scratchpad backing store) lives in a LaneCore that is
//     materialized on first touch — and, within a core, the scratchpad
//     backing is deferred further until the first actual scratchpad access,
//     because most KVMSR control traffic (w_start broadcasts, poll rounds)
//     runs threads on a lane without ever touching its scratchpad.
//
// First-touch materialization doubles as NUMA placement: under the sharded
// engine a core is allocated by the owning shard's host thread, so with
// UD_PIN the backing pages land on that thread's NUMA node.
//
// `Lane` is a cheap value handle (table pointer + lane id + cached core
// pointer) with the same method surface the old fat object had; Machine
// hands them out by value.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"
#include "udweave/thread.hpp"

namespace updown {

/// The cold per-lane block, materialized on first touch (thread allocation,
/// stats write, or scratchpad access). See LaneTable.
struct LaneCore {
  std::vector<std::unique_ptr<ThreadState>> threads;
  std::vector<ThreadId> free_tids;
  /// Deallocated states cached per thread class for recycling.
  std::vector<std::vector<std::unique_ptr<ThreadState>>> state_cache;
  std::uint32_t live_threads = 0;
  /// Scratchpad backing store; empty until the first scratchpad access
  /// (sp_alloc alone never allocates it — the bump pointer lives in the
  /// LaneTable and checks against the configured capacity).
  std::vector<std::uint8_t> scratchpad;
  LaneStats stats;
};

/// Machine-wide lane storage: hot per-lane words in flat arrays, cold blocks
/// behind lazily-filled pointers.
class LaneTable {
 public:
  LaneTable(std::uint64_t nlanes, std::uint32_t max_threads, std::uint64_t scratchpad_bytes)
      : free_at(nlanes, 0),
        send_seq(nlanes, 0),
        sp_brk(nlanes, 0),
        max_threads_(max_threads),
        scratchpad_bytes_(scratchpad_bytes),
        cores_(nlanes) {}

  // Hot flat arrays, indexed by NetworkId. free_at: next tick the lane can
  // start an event. send_seq: sender-private counter stamped into every queue
  // entry this lane originates — with the nwid it forms the deterministic
  // (tick, src, seq) tie-break (see sim/event_queue.hpp). sp_brk: scratchpad
  // bump-allocator break.
  std::vector<Tick> free_at;
  std::vector<std::uint32_t> send_seq;
  std::vector<std::uint64_t> sp_brk;

  std::uint64_t size() const { return cores_.size(); }
  std::uint32_t max_threads() const { return max_threads_; }
  std::uint64_t scratchpad_bytes() const { return scratchpad_bytes_; }

  /// The lane's core if materialized, else nullptr (read-only paths:
  /// lane_stats, laziness tests).
  const LaneCore* core_if(NetworkId id) const { return cores_[id].get(); }

  /// The lane's core, materialized now if this is the first touch. Called
  /// only from the shard that owns the lane's node (or from the host while
  /// the engine is idle), so first-touch pages land NUMA-local under UD_PIN.
  LaneCore& core(NetworkId id) {
    std::unique_ptr<LaneCore>& slot = cores_[id];
    if (!slot) slot = std::make_unique<LaneCore>();
    return *slot;
  }

  /// Scratchpad backing of lane `id`, zero-filled on first access.
  std::uint8_t* scratchpad(NetworkId id) {
    LaneCore& c = core(id);
    if (c.scratchpad.size() < scratchpad_bytes_) c.scratchpad.assign(scratchpad_bytes_, 0);
    return c.scratchpad.data();
  }

  std::uint64_t materialized_cores() const {
    std::uint64_t n = 0;
    for (const auto& p : cores_)
      if (p) ++n;
    return n;
  }

  /// Force every core and scratchpad into existence — the old eager layout,
  /// kept for the bench that demonstrates the lazy layout's memory win.
  void materialize_all() {
    for (NetworkId id = 0; id < cores_.size(); ++id) scratchpad(id);
  }

 private:
  std::uint32_t max_threads_;
  std::uint64_t scratchpad_bytes_;
  std::vector<std::unique_ptr<LaneCore>> cores_;
};

/// Value handle over one LaneTable row; the engine and Ctx pass these around
/// where a `Lane&` used to flow. Copies are cheap (two words + a cached core
/// pointer).
class Lane {
 public:
  Lane(LaneTable& table, NetworkId id) : t_(&table), id_(id) {}

  NetworkId id() const { return id_; }

  // ---- Hot words (flat-array backed) ----------------------------------------
  Tick free_at() const { return t_->free_at[id_]; }
  void set_free_at(Tick t) { t_->free_at[id_] = t; }
  /// Post-increment this lane's sender-private send counter.
  std::uint32_t next_seq() { return t_->send_seq[id_]++; }

  LaneStats& stats() { return core().stats; }

  // ---- Thread contexts ------------------------------------------------------
  ThreadId allocate_thread(std::unique_ptr<ThreadState> state) {
    LaneCore& c = core();
    const ThreadId tid = acquire_tid(c);
    c.threads[tid] = std::move(state);
    ++c.live_threads;
    return tid;
  }

  /// Allocate a thread context for `def`'s thread class, recycling a
  /// previously deallocated state of the same class when one is cached: the
  /// state is reconstructed in place (value-identical to a fresh factory()
  /// call) without the per-event heap round trip.
  ThreadId allocate_thread(const EventDef& def) {
    LaneCore& c = core();
    const ThreadId tid = acquire_tid(c);
    auto& cache = state_cache(c, def.type_id);
    if (!cache.empty()) {
      std::unique_ptr<ThreadState> st = std::move(cache.back());
      cache.pop_back();
      def.reinit(*st);
      st->ud_class_id = def.type_id;
      c.threads[tid] = std::move(st);
    } else {
      c.threads[tid] = def.factory();
    }
    ++c.live_threads;
    return tid;
  }

  ThreadState& thread(ThreadId tid) {
    LaneCore& c = core();
    if (tid >= c.threads.size() || !c.threads[tid])
      throw std::runtime_error("event addressed a dead thread context");
    return *c.threads[tid];
  }

  /// True while `tid` names a live thread context (no-throw lookup).
  bool alive(ThreadId tid) const {
    const LaneCore* c = t_->core_if(id_);
    return c && tid < c->threads.size() && c->threads[tid] != nullptr;
  }

  void deallocate_thread(ThreadId tid) {
    LaneCore& c = core();
#ifndef NDEBUG
    // Hot path: Release builds index unchecked (the engine only deallocates
    // tids it allocated); Debug keeps the out-of-range throw.
    if (tid >= c.threads.size())
      throw std::out_of_range("Lane::deallocate_thread: thread id beyond context table");
#endif
    std::unique_ptr<ThreadState>& slot = c.threads[tid];
    if (slot) state_cache(c, slot->ud_class_id).push_back(std::move(slot));
    slot.reset();
    c.free_tids.push_back(tid);
    --c.live_threads;
  }

  std::uint32_t live_threads() const {
    const LaneCore* c = t_->core_if(id_);
    return c ? c->live_threads : 0;
  }

  // ---- Scratchpad (lane-private; paper: 64 lanes can pool within an
  // accelerator, pooling is done in software via messages) -------------------
  std::uint8_t* scratchpad() { return t_->scratchpad(id_); }
  std::uint64_t scratchpad_bytes() const { return t_->scratchpad_bytes(); }

  /// spMalloc: bump allocation in the lane scratchpad. Pure bookkeeping
  /// against the configured capacity — the backing store is not touched (it
  /// materializes at the first sp_read/sp_write/scratch).
  std::uint64_t sp_alloc(std::uint64_t bytes, std::uint64_t align = 8) {
    std::uint64_t& brk = t_->sp_brk[id_];
    const std::uint64_t off = (brk + align - 1) & ~(align - 1);
    if (off + bytes > t_->scratchpad_bytes())
      throw std::runtime_error("spMalloc: lane scratchpad exhausted (lane " +
                               std::to_string(id_) + ")");
    brk = off + bytes;
    return off;
  }
  std::uint64_t sp_mark() const { return t_->sp_brk[id_]; }
  void sp_release(std::uint64_t mark) {
#ifndef NDEBUG
    // A mark above the current break is stale (taken before allocations that
    // were already released past it, or from another lane): restoring it
    // would silently "un-free" later allocations.
    if (mark > t_->sp_brk[id_])
      throw std::logic_error("sp_release: mark is above the current break (stale mark)");
#endif
    t_->sp_brk[id_] = mark;
  }

 private:
  LaneCore& core() {
    if (!core_) core_ = &t_->core(id_);
    return *core_;
  }

  ThreadId acquire_tid(LaneCore& c) {
    if (!c.free_tids.empty()) {
      const ThreadId tid = c.free_tids.back();
      c.free_tids.pop_back();
      return tid;
    }
    if (c.threads.size() >= t_->max_threads())
      throw std::runtime_error("lane out of thread contexts");
    c.threads.emplace_back();
    return static_cast<ThreadId>(c.threads.size() - 1);
  }

  static std::vector<std::unique_ptr<ThreadState>>& state_cache(LaneCore& c,
                                                                std::uint32_t class_id) {
    if (class_id >= c.state_cache.size()) c.state_cache.resize(class_id + 1);
    return c.state_cache[class_id];
  }

  LaneTable* t_;
  NetworkId id_;
  LaneCore* core_ = nullptr;  ///< cached after the first cold-state touch
};

}  // namespace updown
