// A lane: one of the machine's 2 GHz MIMD compute engines. A lane executes
// one event at a time (events are atomic), owns a table of thread contexts
// and a scratchpad memory, and tracks its busy time for utilization and
// load-balance statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"
#include "udweave/thread.hpp"

namespace updown {

class Lane {
 public:
  Lane(std::uint32_t max_threads, std::uint64_t scratchpad_bytes)
      : max_threads_(max_threads), scratchpad_(scratchpad_bytes, 0) {}

  Tick free_at = 0;
  LaneStats stats;
  /// Sender-private counter stamped into every queue entry this lane
  /// originates (messages and DRAM requests alike). Together with the lane's
  /// nwid it forms the deterministic (tick, src, seq) tie-break — see
  /// sim/event_queue.hpp.
  std::uint32_t send_seq = 0;

  // ---- Thread contexts ------------------------------------------------------
  ThreadId allocate_thread(std::unique_ptr<ThreadState> state) {
    const ThreadId tid = acquire_tid();
    threads_[tid] = std::move(state);
    ++live_threads_;
    return tid;
  }

  /// Allocate a thread context for `def`'s thread class, recycling a
  /// previously deallocated state of the same class when one is cached: the
  /// state is reconstructed in place (value-identical to a fresh factory()
  /// call) without the per-event heap round trip.
  ThreadId allocate_thread(const EventDef& def) {
    const ThreadId tid = acquire_tid();
    auto& cache = state_cache(def.type_id);
    if (!cache.empty()) {
      std::unique_ptr<ThreadState> st = std::move(cache.back());
      cache.pop_back();
      def.reinit(*st);
      st->ud_class_id = def.type_id;
      threads_[tid] = std::move(st);
    } else {
      threads_[tid] = def.factory();
    }
    ++live_threads_;
    return tid;
  }

  ThreadState& thread(ThreadId tid) {
    if (tid >= threads_.size() || !threads_[tid])
      throw std::runtime_error("event addressed a dead thread context");
    return *threads_[tid];
  }

  /// True while `tid` names a live thread context (no-throw lookup).
  bool alive(ThreadId tid) const { return tid < threads_.size() && threads_[tid] != nullptr; }

  void deallocate_thread(ThreadId tid) {
    std::unique_ptr<ThreadState>& slot = threads_.at(tid);
    if (slot) state_cache(slot->ud_class_id).push_back(std::move(slot));
    slot.reset();
    free_tids_.push_back(tid);
    --live_threads_;
  }

  std::uint32_t live_threads() const { return live_threads_; }

  // ---- Scratchpad (lane-private; paper: 64 lanes can pool within an
  // accelerator, pooling is done in software via messages) -------------------
  std::uint8_t* scratchpad() { return scratchpad_.data(); }
  std::uint64_t scratchpad_bytes() const { return scratchpad_.size(); }

  /// spMalloc: bump allocation in the lane scratchpad.
  std::uint64_t sp_alloc(std::uint64_t bytes, std::uint64_t align = 8) {
    std::uint64_t off = (sp_brk_ + align - 1) & ~(align - 1);
    if (off + bytes > scratchpad_.size())
      throw std::runtime_error("spMalloc: lane scratchpad exhausted");
    sp_brk_ = off + bytes;
    return off;
  }
  std::uint64_t sp_mark() const { return sp_brk_; }
  void sp_release(std::uint64_t mark) { sp_brk_ = mark; }

 private:
  ThreadId acquire_tid() {
    if (!free_tids_.empty()) {
      const ThreadId tid = free_tids_.back();
      free_tids_.pop_back();
      return tid;
    }
    if (threads_.size() >= max_threads_)
      throw std::runtime_error("lane out of thread contexts");
    threads_.emplace_back();
    return static_cast<ThreadId>(threads_.size() - 1);
  }

  std::vector<std::unique_ptr<ThreadState>>& state_cache(std::uint32_t class_id) {
    if (class_id >= state_cache_.size()) state_cache_.resize(class_id + 1);
    return state_cache_[class_id];
  }

  std::uint32_t max_threads_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::vector<ThreadId> free_tids_;
  /// Deallocated states cached per thread class for recycling.
  std::vector<std::vector<std::unique_ptr<ThreadState>>> state_cache_;
  std::uint32_t live_threads_ = 0;
  std::vector<std::uint8_t> scratchpad_;
  std::uint64_t sp_brk_ = 0;
};

}  // namespace updown
