#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "udweave/context.hpp"

namespace updown {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      memory_(cfg.nodes),
      network_(cfg_),
      dram_(cfg_),
      lpn_div_(cfg_.lanes_per_node()),
      lpa_div_(cfg_.lanes_per_accel) {
  if (!cfg_.valid()) throw std::invalid_argument("Machine: invalid configuration");
  lanes_.reserve(cfg_.total_lanes());
  for (std::uint64_t i = 0; i < cfg_.total_lanes(); ++i)
    lanes_.emplace_back(cfg_.max_threads_per_lane, cfg_.scratchpad_bytes);
}

void Machine::send_from_host(Word event_word, std::initializer_list<Word> ops, Word cont) {
  send_from_host(event_word, ops.begin(), ops.size(), cont);
}

void Machine::send_from_host(Word event_word, const Word* ops, std::size_t nops, Word cont) {
  Message m;
  m.evw = event_word;
  m.cont = cont;
  m.nops = static_cast<std::uint8_t>(nops);
  for (std::size_t i = 0; i < nops; ++i) m.ops[i] = ops[i];
  m.src = first_lane_of_node(0);  // the TOP core is attached to node 0
  route_message(std::move(m), now_);
}

void Machine::enqueue(Tick t, Kind kind, std::uint32_t pool_index) {
  queue_.push(QEntry{t, seq_++, pool_index, static_cast<std::uint8_t>(kind)});
  if (queue_.size() > stats_.max_queue_depth) stats_.max_queue_depth = queue_.size();
}

void Machine::route_message(Message&& m, Tick depart) {
  const NetworkId dst = evw::nwid(m.evw);
  if (dst >= lanes_.size())
    throw std::out_of_range("send_event: networkID beyond machine lanes");
  const std::uint32_t bytes = m.payload_bytes(cfg_.msg_header_bytes);
  const Tick arrive = network_.arrival(depart, m.src, dst, bytes);
  stats_.messages_sent++;
  stats_.message_bytes += bytes;
  if (node_of(m.src) != node_of(dst)) stats_.cross_node_messages++;
  const std::uint32_t idx = msg_pool_.acquire();
  msg_pool_[idx] = m;
  enqueue(arrive, kMsg, idx);
}

void Machine::route_dram(DramRequest&& r, Tick depart) {
  // Translate once at routing time; the home node rides along in the request.
  r.dst_node = memory_.translate(r.addr).node;
  const std::uint32_t req_bytes =
      cfg_.msg_header_bytes + (r.is_write ? r.nwords * 8u : 0u);
  const Tick arrive =
      network_.arrival(depart, r.src, first_lane_of_node(r.dst_node), req_bytes);
  if (node_of(r.src) != r.dst_node) stats_.remote_dram_accesses++;
  const std::uint32_t idx = dram_pool_.acquire();
  dram_pool_[idx] = r;
  enqueue(arrive, kDram, idx);
}

void Machine::exec_message(Message& m, Tick arrive) {
  const NetworkId dst = evw::nwid(m.evw);
  Lane& lane = lanes_[dst];
  const Tick start = std::max(arrive, lane.free_at);
  const EventLabel label = evw::label(m.evw);
  const EventDef& def = program_.def(label);

  ThreadId tid;
  if (evw::is_new_thread(m.evw)) {
    tid = lane.allocate_thread(def);  // Thread Create: 0 cycles (recycles state)
    stats_.threads_created++;
    std::uint64_t live = 0;
    // Tracking exact global live counts cheaply: maintain incrementally.
    live = ++live_threads_;
    if (live > stats_.max_live_threads) stats_.max_live_threads = live;
  } else {
    tid = evw::tid(m.evw);
  }
  ThreadState& state = lane.thread(tid);
  if (state.ud_class_id != def.type_id)
    throw std::runtime_error("event '" + def.name + "' delivered to a thread of another class");

  const Word cevnt = evw::make_existing(dst, tid, label, m.nops);
  UDSIM_LOG(LogLevel::kDebug, start, "[NWID %u][TID %u] %s (%u ops)", dst, tid,
            def.name.c_str(), m.nops);
  Ctx ctx(*this, lane, m, start, tid, cevnt, state);
  def.invoke(ctx, state);

  const std::uint64_t cost = ctx.charged() + 1;  // +1: Thread Yield at return
  lane.free_at = start + cost;
  lane.stats.busy_cycles += cost;
  lane.stats.events_executed++;
  stats_.events_executed++;
  stats_.charged_cycles += cost;
  if (ctx.terminated()) {
    lane.deallocate_thread(tid);
    stats_.threads_destroyed++;
    --live_threads_;
  }
  if (lane.free_at > now_) now_ = lane.free_at;
}

void Machine::exec_dram(DramRequest& r, Tick arrive) {
  const std::uint32_t data_bytes = r.nwords * 8u + cfg_.msg_header_bytes;
  const Tick ready = dram_.service(arrive, r.dst_node, data_bytes);

  if (r.is_write) {
    memory_.write_words(r.addr, r.data.data(), r.nwords);
    stats_.dram_writes++;
  } else {
    memory_.read_words(r.addr, r.data.data(), r.nwords);
    stats_.dram_reads++;
  }
  stats_.dram_bytes += r.nwords * 8u;

  if (r.reply_evw != 0) {
    Message resp;
    resp.evw = r.reply_evw;
    resp.cont = r.reply_cont;
    resp.nops = r.is_write ? 0 : r.nwords;
    if (!r.is_write) resp.ops = r.data;
    resp.src = first_lane_of_node(r.dst_node);
    route_message(std::move(resp), ready);
  }
  if (ready > now_) now_ = ready;
}

bool Machine::step() {
  if (queue_.empty()) return false;
  const QEntry e = queue_.pop();
  if (e.t > now_) now_ = e.t;
  if (e.kind == kMsg) {
    // The pooled payload stays in place through execution; handlers may
    // acquire new slots (slabs are stable), and the slot is recycled after.
    exec_message(msg_pool_[e.index], e.t);
    msg_pool_.release(e.index);
  } else {
    exec_dram(dram_pool_[e.index], e.t);
    dram_pool_.release(e.index);
  }
  return true;
}

void Machine::run() {
  while (step()) {
  }
}

EngineStats Machine::engine_stats() const {
  EngineStats es;
  es.far_events = queue_.stats().far_events;
  es.bucket_sorts = queue_.stats().bucket_sorts;
  es.msg_pool_capacity = msg_pool_.capacity();
  es.dram_pool_capacity = dram_pool_.capacity();
  return es;
}

std::vector<LaneStats> Machine::lane_stats() const {
  std::vector<LaneStats> out;
  out.reserve(lanes_.size());
  for (const auto& l : lanes_) out.push_back(l.stats);
  return out;
}

LaneActivity Machine::lane_activity() const { return LaneActivity::from(lane_stats()); }

}  // namespace updown
