#include "sim/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "check/checker.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"
#include "udweave/context.hpp"

namespace updown {

namespace {
constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();

/// Rebalance only on real skew: max shard load above 1.2x the mean.
constexpr std::uint64_t kStealSkewNum = 6, kStealSkewDen = 5;

/// Validated pass-through so the LaneTable member (sized total_lanes()) is
/// never constructed from a bogus configuration.
MachineConfig validated(MachineConfig cfg) {
  if (!cfg.valid()) throw std::invalid_argument("Machine: invalid configuration");
  return cfg;
}

/// Pin the calling thread to one CPU, round-robin over the online set
/// (UD_PIN). Best effort: failures are ignored, non-Linux is a no-op.
void pin_self(std::uint32_t idx) {
#ifdef __linux__
  const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(idx % static_cast<std::uint32_t>(ncpu)), &set);
  ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
#else
  (void)idx;
#endif
}
}  // namespace

void SpinBarrier::arrive_and_wait() {
  const std::uint32_t gen = generation_.load(std::memory_order_acquire);
  if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
    count_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
  } else {
    unsigned spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen)
      if (++spins >= 4096) std::this_thread::yield();
  }
}

Machine::Machine(MachineConfig cfg)
    : cfg_(validated(std::move(cfg))),
      memory_(cfg_.nodes),
      network_(cfg_),
      dram_(cfg_),
      lanes_(cfg_.total_lanes(), cfg_.max_threads_per_lane, cfg_.scratchpad_bytes),
      lpn_div_(cfg_.lanes_per_node()),
      lpa_div_(cfg_.lanes_per_accel),
      barrier_(1) {
  nshards_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      env_u64("UD_SHARDS", cfg_.shards, std::numeric_limits<std::uint32_t>::max()),
      cfg_.nodes));
  if (nshards_ == 0) nshards_ = 1;

  if (env_flag("UD_CHECK", cfg_.check)) {
    checker_ = std::make_unique<Checker>(
        *this, env_flag("UD_CHECK_SP_STRICT", cfg_.check_sp_strict), nshards_);
    memory_.set_observer(checker_.get());
    ck_defer_ = nshards_ > 1;
    if (ck_defer_) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true))
        std::fprintf(stderr,
                     "[UDCHECK] note: running with %u engine shards — checking "
                     "is deferred to window-boundary replay\n",
                     nshards_);
    }
  }

  if (nshards_ > 1 && cfg_.min_cross_node_latency() < 1)
    throw std::invalid_argument(
        "Machine: sharded execution needs a nonzero cross-node latency "
        "(the conservative lookahead window)");
  barrier_.set_parties(nshards_);
  local_min_.assign(nshards_, kNoEvent);
  dram_seq_.assign(cfg_.nodes, 0);
  // Scale-aware sharding knobs. UD_STEAL_PERIOD is parsed unconditionally
  // (strict: garbage must throw here, not be silently ignored when stealing
  // happens to be off).
  pin_ = env_flag("UD_PIN", cfg_.pin);
  steal_period_ = static_cast<std::uint32_t>(
      env_u64("UD_STEAL_PERIOD", cfg_.steal_period, 1u << 20));
  if (steal_period_ == 0) steal_period_ = 1;
  steal_ = env_flag("UD_STEAL", cfg_.steal) && nshards_ > 1;
  owner_.resize(cfg_.nodes);
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) owner_[n] = n % nshards_;
  if (steal_) node_work_.assign(cfg_.nodes, 0);
  shards_.reserve(nshards_);
  for (std::uint32_t s = 0; s < nshards_; ++s) {
    shards_.push_back(std::make_unique<EngineShard>());
    shards_.back()->id = s;
    shards_.back()->outbox.resize(nshards_);
  }

  // udtrace: the env variable overrides the configured path; empty = off.
  // Unlike the checker, the tracer runs under any shard count.
  std::string trace_path = cfg_.trace;
  if (const char* v = std::getenv("UD_TRACE"); v && *v) trace_path = v;
  if (!trace_path.empty()) {
    const Tick slice = static_cast<Tick>(
        env_u64("UD_TRACE_SLICE", cfg_.trace_slice, Tick(1) << 30));
    tracer_ = std::make_unique<Tracer>(cfg_, nshards_, std::move(trace_path), slice);
    for (std::uint32_t s = 0; s < nshards_; ++s)
      shards_[s]->trace = &tracer_->shard(s);
  }
}

Machine::~Machine() = default;

void Machine::send_from_host(Word event_word, std::initializer_list<Word> ops, Word cont) {
  send_from_host(event_word, ops.begin(), ops.size(), cont);
}

void Machine::send_from_host(Word event_word, const Word* ops, std::size_t nops, Word cont) {
  Message m;
  m.evw = event_word;
  m.cont = cont;
  m.nops = static_cast<std::uint8_t>(nops);
  for (std::size_t i = 0; i < nops; ++i) m.ops[i] = ops[i];
  m.src = first_lane_of_node(0);  // the TOP core is attached to node 0
  if (checker_) checker_->on_host_send(now_, host_entity(), host_seq_);
  // The engine is idle here, so routing from shard 0 (which owns node 0's
  // network buckets) is race-free; a cross-shard destination just parks the
  // message in the mailbox until run() merges it.
  route_message(shard0(), host_entity(), host_seq_++, std::move(m), now_);
}

void Machine::send_from_host_at(Tick depart, Word event_word,
                                std::initializer_list<Word> ops, Word cont) {
  const Tick at = std::max(depart, now_);
  Message m;
  m.evw = event_word;
  m.cont = cont;
  m.nops = static_cast<std::uint8_t>(ops.size());
  std::size_t i = 0;
  for (Word w : ops) m.ops[i++] = w;
  m.src = first_lane_of_node(0);
  if (checker_) checker_->on_host_send(at, host_entity(), host_seq_);
  route_message(shard0(), host_entity(), host_seq_++, std::move(m), at);
}

void Machine::push(EngineShard& sh, const QEntry& e) {
  sh.queue.push(e);
  if (sh.queue.size() > sh.stats.max_queue_depth)
    sh.stats.max_queue_depth = sh.queue.size();
}

void Machine::route_message(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                            Message&& m, Tick depart, const Word* bulk) {
  const NetworkId dst = evw::nwid(m.evw);
  if (dst >= lanes_.size()) {
    // Checked mode reports the bad event word and drops the send so the
    // simulation can continue and surface the rest of the run's violations.
    if (checker_ && checker_->on_bad_route(sh, m.evw, depart)) return;
    throw std::out_of_range("send_event: networkID beyond machine lanes");
  }
  const std::uint32_t bytes = m.payload_bytes(cfg_.msg_header_bytes);
  const Tick arrive = network_.arrival(depart, m.src, dst, bytes);
  sh.stats.messages_sent++;
  sh.stats.message_bytes += bytes;
  const std::uint32_t src_node = node_of(m.src);
  const std::uint32_t dst_node = node_of(dst);
  if (src_node != dst_node) sh.stats.cross_node_messages++;
  // The calling shard owns the sending node (its network buckets were just
  // charged), so every cell this hook touches is shard-owned.
  if (tracer_)
    tracer_->on_message(*sh.trace, src_node, dst_node, bytes, depart, arrive,
                        network_.inject_backlog(src_node, depart));
  // Deferred checking records the send (cross-shard ones too) in the sending
  // shard's log; the clock stamping happens at the window-boundary replay.
  if (ck_defer_) checker_->defer_route_message(sh, ent, seq, m, depart);
  const std::uint32_t dshard = shard_of(dst_node);
  EngineShard& dsh = *shards_[dshard];
  if (&dsh == &sh) {
    std::uint32_t bulk_idx = kNoBulk;
    if (m.bulk_words > 0) {
      bulk_idx = sh.bulk_pool.acquire();
      std::copy(bulk, bulk + m.bulk_words, sh.bulk_pool[bulk_idx].w.begin());
    }
    m.bulk = bulk_idx;
    const std::uint32_t idx = sh.msg_pool.acquire();
    sh.msg_pool[idx] = m;
    if (checker_ && !ck_defer_) checker_->on_route_message(idx, depart);
    push(sh, QEntry{arrive, ent, seq, idx, kMsg});
  } else {
    m.bulk = kNoBulk;  // re-pooled by the destination at merge time
    sh.outbox[dshard].msgs.push_back(
        {arrive, ent, seq, m,
         m.bulk_words > 0 ? std::vector<Word>(bulk, bulk + m.bulk_words)
                          : std::vector<Word>{}});
  }
}

void Machine::route_dram(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                         DramRequest&& r, Tick depart) {
  // Translate once at routing time; the home node rides along in the request.
  bool addr_mapped = true;
  if (checker_) {
    // Don't throw on an unmapped base: route to node 0 and let the checker
    // classify the fault (UAF vs OOB) at service time, word by word. Sharded
    // runs look up through the shard's descriptor snapshot (no-throw variant
    // of the unchecked snapshot translate below).
    const SwizzleDescriptor* d = ck_defer_ ? memory_.find_snap(r.addr, sh.mem_snap)
                                           : memory_.find_live(r.addr);
    if (d) r.dst_node = d->translate(r.addr).node;
    else {
      addr_mapped = false;
      r.dst_node = 0;
    }
    if (ck_defer_) checker_->defer_route_dram(sh, ent, seq, r, addr_mapped, depart);
  } else if (nshards_ > 1) {
    r.dst_node = memory_.translate(r.addr, sh.mem_snap).node;
  } else {
    r.dst_node = memory_.translate(r.addr).node;
  }
  const std::uint32_t req_bytes =
      cfg_.msg_header_bytes + (r.is_write ? r.nwords * 8u : 0u);
  const Tick arrive =
      network_.arrival(depart, r.src, first_lane_of_node(r.dst_node), req_bytes);
  if (node_of(r.src) != r.dst_node) sh.stats.remote_dram_accesses++;
  const std::uint32_t dshard = shard_of(r.dst_node);
  EngineShard& dsh = *shards_[dshard];
  if (&dsh == &sh) {
    const std::uint32_t idx = sh.dram_pool.acquire();
    sh.dram_pool[idx] = r;
    if (checker_ && !ck_defer_) checker_->on_route_dram(idx, addr_mapped, depart);
    push(sh, QEntry{arrive, ent, seq, idx, kDram});
  } else {
    sh.outbox[dshard].drams.push_back({arrive, ent, seq, r});
  }
}

void Machine::exec_message(EngineShard& sh, const QEntry& e) {
  Message& m = sh.msg_pool[e.index];
  const Tick arrive = e.t;
  const NetworkId dst = evw::nwid(m.evw);
  Lane lane(lanes_, dst);
  const Tick start = std::max(arrive, lanes_.free_at[dst]);
  const EventLabel label = evw::label(m.evw);

  // Checked mode validates the delivery (label, target liveness, recycled
  // contexts) and suppresses violating messages after reporting them. The
  // deferred variant opens this delivery's replay group and answers from
  // engine-owned state only.
  if (checker_) {
    const bool ok = ck_defer_
                        ? checker_->defer_pre_deliver(sh, e.t, e.src, e.seq, m, start)
                        : checker_->on_pre_deliver(e.index, start);
    if (!ok) return;
  }

  const EventDef& def = program_.def(label);

  const bool new_thread = evw::is_new_thread(m.evw);
  ThreadId tid;
  if (new_thread) {
    tid = lane.allocate_thread(def);  // Thread Create: 0 cycles (recycles state)
    sh.stats.threads_created++;
    const std::uint64_t live = ++sh.live_threads;
    if (live > sh.stats.max_live_threads) sh.stats.max_live_threads = live;
  } else {
    tid = evw::tid(m.evw);
  }
  ThreadState& state = lane.thread(tid);
  if (state.ud_class_id != def.type_id) {
    if (checker_) {
      if (ck_defer_) checker_->defer_class_mismatch(sh, dst, tid, start);
      else checker_->on_class_mismatch(e.index, dst, tid, start);
      return;
    }
    throw std::runtime_error("event '" + def.name + "' delivered to a thread of another class");
  }

  const Word cevnt = evw::make_existing(dst, tid, label, m.nops);
  UDSIM_LOG(LogLevel::kDebug, start, "[NWID %u][TID %u] %s (%u ops)", dst, tid,
            def.name.c_str(), m.nops);
  if (checker_) {
    if (ck_defer_) checker_->defer_task_begin(sh, dst, tid, label, start, new_thread);
    else checker_->on_task_begin(e.index, dst, tid, label, start, new_thread);
  }
  Ctx ctx(*this, sh, lane, m, start, tid, cevnt, state);
  def.invoke(ctx, state);

  const std::uint64_t cost = ctx.charged() + 1;  // +1: Thread Yield at return
  const Tick lane_free = start + cost;
  lanes_.free_at[dst] = lane_free;
  LaneStats& lst = lane.stats();
  lst.busy_cycles += cost;
  lst.events_executed++;
  sh.stats.events_executed++;
  sh.stats.charged_cycles += cost;
  // Work-stealing signal: charged cycles, accumulated per node (single
  // writer: this shard owns dst's node). Read/zeroed by shard 0 between the
  // steal barriers.
  if (steal_) node_work_[node_of(dst)] += cost;
  // Executed on the destination's owning shard: lane/node timelines and the
  // arrival series are destination-keyed.
  if (tracer_) tracer_->on_execute(dst, node_of(dst), arrive, start, cost);
  if (ctx.terminated()) {
    lane.deallocate_thread(tid);
    sh.stats.threads_destroyed++;
    --sh.live_threads;
  }
  if (checker_) {
    if (ck_defer_) checker_->defer_task_end(sh, dst, tid, ctx.terminated());
    else checker_->on_task_end(dst, tid, ctx.terminated());
  }
  if (lane_free > sh.now) sh.now = lane_free;
}

std::uint64_t Machine::deliver_inline(EngineShard& sh, Message&& m, Tick start) {
  const NetworkId dst = evw::nwid(m.evw);
  Lane lane(lanes_, dst);
  const EventLabel label = evw::label(m.evw);
  const EventDef& def = program_.def(label);

  // Checked mode threads the synthetic message through the normal hook
  // sequence (a pooled slot carries the clock stamp, so the inline task joins
  // the caller's causal history exactly like a delivered message would). The
  // scoped origin is saved around the nested task: after the inline handler
  // finishes, the caller's own sends must stamp with the caller's clock again.
  std::uint32_t idx = 0;
  if (ck_defer_) {
    // Deferred: record the inline delivery (the replay builds its own frame;
    // no pool slot is taken) and suppress online only on a dead target.
    if (!checker_->defer_inline_begin(sh, m, start)) return 0;
  } else if (checker_) {
    idx = sh.msg_pool.acquire();
    sh.msg_pool[idx] = m;
    checker_->push_origin();
    checker_->on_route_message(idx, start);
    if (!checker_->on_pre_deliver(idx, start)) {
      sh.msg_pool.release(idx);
      checker_->pop_origin();
      return 0;
    }
  }

  const bool new_thread = evw::is_new_thread(m.evw);
  ThreadId tid;
  if (new_thread) {
    tid = lane.allocate_thread(def);  // Thread Create: 0 cycles (recycles state)
    sh.stats.threads_created++;
    const std::uint64_t live = ++sh.live_threads;
    if (live > sh.stats.max_live_threads) sh.stats.max_live_threads = live;
  } else {
    tid = evw::tid(m.evw);
  }
  ThreadState& state = lane.thread(tid);
  if (state.ud_class_id != def.type_id) {
    if (checker_) {
      if (ck_defer_) {
        checker_->defer_inline_class_mismatch(sh, dst, tid, start);
        return 0;
      }
      checker_->on_class_mismatch(idx, dst, tid, start);
      sh.msg_pool.release(idx);
      checker_->pop_origin();
      return 0;
    }
    throw std::runtime_error("event '" + def.name + "' delivered to a thread of another class");
  }

  const Word cevnt = evw::make_existing(dst, tid, label, m.nops);
  UDSIM_LOG(LogLevel::kDebug, start, "[NWID %u][TID %u] %s (%u ops, inline)", dst, tid,
            def.name.c_str(), m.nops);
  if (checker_) {
    if (ck_defer_) checker_->defer_task_begin(sh, dst, tid, label, start, new_thread);
    else checker_->on_task_begin(idx, dst, tid, label, start, new_thread);
  }
  Ctx ctx(*this, sh, lane, m, start, tid, cevnt, state);
  def.invoke(ctx, state);

  // The caller absorbs the cost into its own charge (lane free_at and
  // busy/charged cycles flow through the caller's event), so only the event
  // and thread counters are taken here.
  const std::uint64_t cost = ctx.charged() + 1;  // +1: Thread Yield at return
  lane.stats().events_executed++;
  sh.stats.events_executed++;
  // Inline cycles flow through the enclosing packet event (traced when that
  // event completes); only the executed-event count moves here.
  if (tracer_) tracer_->on_inline_execute(node_of(dst), start);
  if (ctx.terminated()) {
    lane.deallocate_thread(tid);
    sh.stats.threads_destroyed++;
    --sh.live_threads;
  }
  if (checker_) {
    if (ck_defer_) {
      checker_->defer_task_end(sh, dst, tid, ctx.terminated());
      checker_->defer_inline_end(sh);
    } else {
      checker_->on_task_end(dst, tid, ctx.terminated());
      sh.msg_pool.release(idx);
      checker_->pop_origin();
    }
  }
  return cost;
}

void Machine::exec_dram(EngineShard& sh, const QEntry& e) {
  DramRequest& r = sh.dram_pool[e.index];
  const Tick arrive = e.t;
  if (ck_defer_) checker_->defer_dram_begin(sh, e.t, e.src, e.seq);
  const std::uint32_t data_bytes = r.nwords * 8u + cfg_.msg_header_bytes;
  const Tick ready = dram_.service(arrive, r.dst_node, data_bytes);
  DescriptorSnapshot* snap = nshards_ > 1 ? &sh.mem_snap : nullptr;
  // service() never returns before arrive + lat_dram; the excess is pure
  // bandwidth queueing at the home node's DRAM port.
  if (tracer_) tracer_->on_dram_wait(*sh.trace, ready - arrive - cfg_.lat_dram);

  // Checked mode sanitizes the address range (OOB/UAF) and race-checks each
  // word; invalid accesses are suppressed (reads deliver zeros) so the run
  // can continue to the report instead of corrupting host memory.
  const bool ok = !checker_ || (ck_defer_ ? checker_->defer_dram_exec(sh, r, arrive)
                                          : checker_->on_dram_exec(e.index, arrive));
  if (r.is_write) {
    if (ok) memory_.write_words(r.addr, r.data.data(), r.nwords, snap);
    sh.stats.dram_writes++;
  } else {
    if (ok) memory_.read_words(r.addr, r.data.data(), r.nwords, snap);
    else r.data.fill(0);
    sh.stats.dram_reads++;
  }
  sh.stats.dram_bytes += r.nwords * 8u;

  if (r.reply_evw != 0) {
    Message resp;
    resp.evw = r.reply_evw;
    resp.cont = r.reply_cont;
    resp.nops = r.is_write ? 0 : r.nwords;
    if (!r.is_write) resp.ops = r.data;
    resp.src = first_lane_of_node(r.dst_node);
    if (checker_) {
      if (ck_defer_) checker_->defer_dram_reply_begin(sh);
      else checker_->begin_dram_reply(e.index);
    }
    // The reply is sent by the home node's DRAM port: a sender entity of its
    // own, with its own counter, so the (tick, src, seq) order of replies is
    // shard-count-invariant just like lane sends.
    route_message(sh, dram_entity(r.dst_node), dram_seq_[r.dst_node]++,
                  std::move(resp), ready);
  }
  if (checker_) {
    if (ck_defer_) checker_->defer_dram_done(sh);
    else checker_->on_dram_done(e.index);
  }
  if (ready > sh.now) sh.now = ready;
}

bool Machine::step() {
  if (nshards_ > 1)
    throw std::logic_error("Machine::step: single-stepping requires shards == 1");
  EngineShard& sh = shard0();
  if (sh.queue.empty()) return false;
  const QEntry e = sh.queue.pop();
  if (e.t > sh.now) sh.now = e.t;
  if (e.kind == kMsg) {
    // The pooled payload stays in place through execution; handlers may
    // acquire new slots (slabs are stable), and the slot is recycled after.
    exec_message(sh, e);
    release_bulk(sh, e.index);
    sh.msg_pool.release(e.index);
  } else {
    exec_dram(sh, e);
    sh.dram_pool.release(e.index);
  }
  now_ = sh.now;
  return true;
}

void Machine::run() { run_until({}); }

bool Machine::run_until(const std::function<bool()>& stop) {
  const bool stopped = nshards_ == 1 ? run_serial(stop) : run_sharded(stop);
  if (stopped) return true;

  // Clean-drain finalization only: the checker's drain-state analysis (leaks,
  // unfired continuations) and its era barrier are only sound against a
  // quiescent machine, and the trace rewrite covers the whole simulation so
  // far. A predicate-stopped run leaves both for the run that finally drains.
  if (checker_) {
    flush_stats();  // the report writes stats_.check; totals first
    if (ck_defer_) checker_->replay_pending();  // drain safety net
    checker_->report();
  }
  // Serialize only at a clean drain (cumulative rewrite: the last run() wins,
  // covering the whole simulation so far). Faulted runs keep the previous
  // trace file intact for post-mortem.
  if (tracer_) tracer_->serialize();
  return false;
}

bool Machine::run_serial(const std::function<bool()>& stop) {
  if (stop && stop()) return true;
  while (step())
    if (stop && stop()) return true;
  return false;
}

bool Machine::run_sharded(const std::function<bool()>& stop) {
  const Tick lookahead = cfg_.min_cross_node_latency();
  abort_.store(false, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  stop_pred_ = stop ? &stop : nullptr;
#ifdef __linux__
  // UD_PIN: shard 0 runs on the caller's thread; save its affinity so the
  // host program isn't left confined to one CPU after the run.
  cpu_set_t caller_mask;
  bool restore_mask = false;
  if (pin_)
    restore_mask =
        ::pthread_getaffinity_np(::pthread_self(), sizeof(caller_mask), &caller_mask) == 0;
#endif
  std::vector<std::thread> workers;
  workers.reserve(nshards_ - 1);
  for (std::uint32_t s = 1; s < nshards_; ++s)
    workers.emplace_back([this, s, lookahead] {
      if (pin_) pin_self(s);
      run_shard(s, lookahead);
    });
  if (pin_) pin_self(0);
  run_shard(0, lookahead);
  for (auto& w : workers) w.join();
#ifdef __linux__
  if (restore_mask)
    ::pthread_setaffinity_np(::pthread_self(), sizeof(caller_mask), &caller_mask);
#endif
  stop_pred_ = nullptr;

  for (const auto& sh : shards_)
    if (sh->now > now_) now_ = sh->now;

  std::exception_ptr first;
  for (auto& sh : shards_) {
    if (sh->eptr && !first) first = sh->eptr;
    sh->eptr = nullptr;
  }
  if (first) {
    // Half-replayed window logs and stashed in-flight clock state belong to
    // the aborted schedule; drop them so a later run starts clean.
    if (checker_) checker_->reset_deferred();
    std::rethrow_exception(first);
  }

  return stop_.load(std::memory_order_relaxed);
}

void Machine::merge_inbox(EngineShard& sh, std::uint32_t my) {
  for (std::uint32_t s = 0; s < nshards_; ++s) {
    EngineShard::MailBox& box = shards_[s]->outbox[my];
    for (EngineShard::MailMsg& mm : box.msgs) {
      if (!mm.bulk.empty()) {
        const std::uint32_t bidx = sh.bulk_pool.acquire();
        std::copy(mm.bulk.begin(), mm.bulk.end(), sh.bulk_pool[bidx].w.begin());
        mm.m.bulk = bidx;
      }
      const std::uint32_t idx = sh.msg_pool.acquire();
      sh.msg_pool[idx] = mm.m;
      push(sh, QEntry{mm.t, mm.ent, mm.seq, idx, kMsg});
    }
    for (EngineShard::MailDram& md : box.drams) {
      const std::uint32_t idx = sh.dram_pool.acquire();
      sh.dram_pool[idx] = md.r;
      push(sh, QEntry{md.t, md.ent, md.seq, idx, kDram});
    }
    sh.mail_received += box.msgs.size() + box.drams.size();
    box.msgs.clear();
    box.drams.clear();
  }
}

void Machine::plan_rebalance() {
  rebalance_now_ = false;
  std::vector<std::uint64_t> load(nshards_, 0);
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    load[owner_[n]] += node_work_[n];
    total += node_work_[n];
  }
  if (total == 0) return;
  const std::uint64_t peak = *std::max_element(load.begin(), load.end());
  // peak/(total/shards) <= 1.2, in integers.
  if (peak * nshards_ * kStealSkewDen <= total * kStealSkewNum) {
    std::fill(node_work_.begin(), node_work_.end(), 0);
    return;
  }
  // Greedy LPT: heaviest nodes first (ties by node id — stable_sort over the
  // identity permutation), each onto the currently least-loaded shard. All
  // inputs are simulated quantities, so for a fixed shard count the remap
  // sequence is identical on every run.
  std::vector<std::uint32_t> order(cfg_.nodes);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return node_work_[a] > node_work_[b]; });
  std::vector<std::uint64_t> newload(nshards_, 0);
  for (std::uint32_t n : order) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < nshards_; ++s)
      if (newload[s] < newload[best]) best = s;
    owner_[n] = best;
    newload[best] += node_work_[n];
  }
  std::fill(node_work_.begin(), node_work_.end(), 0);
  rebalance_now_ = true;
  ++rebalances_;
}

void Machine::migrate_queue(EngineShard& sh, std::uint32_t my) {
  std::vector<QEntry> keep;
  keep.reserve(sh.queue.size());
  while (!sh.queue.empty()) {
    const QEntry e = sh.queue.pop();
    const std::uint32_t node = e.kind == kMsg
                                   ? node_of(evw::nwid(sh.msg_pool[e.index].evw))
                                   : sh.dram_pool[e.index].dst_node;
    const std::uint32_t dest = owner_[node];
    if (dest == my) {
      keep.push_back(e);
      continue;
    }
    if (e.kind == kMsg) {
      Message m = sh.msg_pool[e.index];
      std::vector<Word> bulk;
      if (m.bulk != kNoBulk) {
        const Word* w = sh.bulk_pool[m.bulk].w.data();
        bulk.assign(w, w + m.bulk_words);
      }
      release_bulk(sh, e.index);
      sh.msg_pool.release(e.index);
      m.bulk = kNoBulk;  // re-pooled by the new owner at merge time
      sh.outbox[dest].msgs.push_back({e.t, e.src, e.seq, m, std::move(bulk)});
    } else {
      sh.outbox[dest].drams.push_back({e.t, e.src, e.seq, sh.dram_pool[e.index]});
      sh.dram_pool.release(e.index);
    }
  }
  // Re-insert survivors. Entries below the calendar cursor clamp into the
  // current bucket, where the lazy sort restores exact (t, src, seq) order.
  for (const QEntry& e : keep) sh.queue.push(e);
}

void Machine::run_shard(std::uint32_t my, Tick lookahead) {
  EngineShard& sh = *shards_[my];
  std::uint64_t round = 0;
  // Every shard walks the same round structure and hits every barrier the
  // same number of times; both exit tests (quiescence, abort) are decisions
  // all shards reach identically, so nobody is left stranded at a barrier.
  for (;;) {
    // 1. Merge mail addressed to this shard. The producers appended before
    // barrier B of the previous round; we clear before barrier A, ahead of
    // any new appends. Every mailed event's tick is at least one full
    // lookahead window ahead, so merged entries never sort before anything
    // this shard already executed.
    try {
      merge_inbox(sh, my);
      memory_.refresh(sh.mem_snap);
      // Deferred checking: shard 0 replays the previous round's hook records
      // here — after barrier B sealed all shards' appends, before barrier A
      // opens the next exec phase — so the analysis trails execution by
      // exactly one window and never races with the log writers.
      if (ck_defer_ && my == 0) checker_->replay_pending();
      // run_until stop predicate: evaluated by shard 0 only, here — between
      // barrier B of the previous round (which published every exec-phase
      // write) and barrier A of this one (no shard is executing). The
      // decision is published pre-A like the abort flag, so every shard
      // breaks at the same window boundary and no partial window runs.
      if (my == 0 && stop_pred_ && (*stop_pred_)())
        stop_.store(true, std::memory_order_release);
    } catch (...) {
      if (!sh.eptr) sh.eptr = std::current_exception();
    }

    // Work stealing: every steal_period_ rounds, remap the node->shard
    // partition if the per-node work counters show skew. Three extra
    // barriers, entered by every shard on the same rounds (the round counters
    // advance in lock-step): S1 orders all inbox merges before shard 0 reads
    // the counters; S2 publishes the new owner map; S3 orders the migration
    // mail before the second merge. Everything that moves is simulated state
    // keyed by (t, src, seq), so the merged schedule — and thus every golden
    // counter — is unchanged (see DESIGN.md "Memory layout & scale").
    if (steal_ && ++round % steal_period_ == 0) {
      barrier_.arrive_and_wait();  // S1: work counters and merges stable
      if (my == 0) plan_rebalance();
      barrier_.arrive_and_wait();  // S2: owner_ / rebalance_now_ visible
      if (rebalance_now_) {
        try {
          migrate_queue(sh, my);
        } catch (...) {
          if (!sh.eptr) sh.eptr = std::current_exception();
        }
        barrier_.arrive_and_wait();  // S3: all migration mail appended
        try {
          merge_inbox(sh, my);
        } catch (...) {
          if (!sh.eptr) sh.eptr = std::current_exception();
        }
      }
    }

    // A shard that failed (this round's merge, or last round's exec) raises
    // the abort flag here, strictly before barrier A. Every store to abort_
    // is pre-A and every load post-A, so all shards take the same branch; a
    // store from inside the exec phase could be observed by a shard still at
    // its abort check, stranding the thrower at barrier B.
    if (sh.eptr) abort_.store(true, std::memory_order_release);
    local_min_[my] = sh.queue.empty() ? kNoEvent : sh.queue.peek_tick();

    barrier_.arrive_and_wait();  // A: local minima published, mailboxes clear

    // 2. Same inputs on every shard -> same decision on every shard.
    if (abort_.load(std::memory_order_acquire)) break;
    if (stop_.load(std::memory_order_acquire)) break;  // run_until pause
    Tick window = kNoEvent;
    for (std::uint32_t s = 0; s < nshards_; ++s)
      window = std::min(window, local_min_[s]);
    if (window == kNoEvent) break;  // globally quiescent
    if (my == 0) ++windows_;

    // 3. Execute everything strictly inside [window, window + lookahead).
    // Same-shard sends may land inside the window and are drained here too;
    // cross-shard sends can't (their latency is at least the lookahead).
    const Tick wend = window + lookahead;
    try {
      while (!sh.queue.empty() && sh.queue.peek_tick() < wend) {
        const QEntry e = sh.queue.pop();
        if (e.t > sh.now) sh.now = e.t;
        if (e.kind == kMsg) {
          exec_message(sh, e);
          release_bulk(sh, e.index);
          sh.msg_pool.release(e.index);
        } else {
          exec_dram(sh, e);
          sh.dram_pool.release(e.index);
        }
      }
    } catch (...) {
      // Record only; the abort flag is published at the top of the next
      // round, before barrier A (see above).
      if (!sh.eptr) sh.eptr = std::current_exception();
    }

    barrier_.arrive_and_wait();  // B: all outbox appends for this round done
  }
}

void Machine::flush_stats() {
  for (auto& sh : shards_) {
    stats_.merge(sh->stats);
    sh->stats.reset();
  }
}

bool Machine::idle() const {
  for (const auto& sh : shards_) {
    if (!sh->queue.empty()) return false;
    for (const auto& box : sh->outbox)
      if (!box.msgs.empty() || !box.drams.empty()) return false;
  }
  return true;
}

EngineStats Machine::engine_stats() const {
  EngineStats es;
  for (const auto& sh : shards_) {
    es.far_events += sh->queue.stats().far_events;
    es.bucket_sorts += sh->queue.stats().bucket_sorts;
    es.msg_pool_capacity += sh->msg_pool.capacity();
    es.dram_pool_capacity += sh->dram_pool.capacity();
    es.mailbox_messages += sh->mail_received;
  }
  es.shards = nshards_;
  es.windows = windows_;
  es.rebalances = rebalances_;
  return es;
}

std::vector<LaneStats> Machine::lane_stats() const {
  // Unmaterialized lanes never executed anything: all-zero stats.
  std::vector<LaneStats> out(lanes_.size());
  for (std::uint64_t id = 0; id < lanes_.size(); ++id)
    if (const LaneCore* c = lanes_.core_if(static_cast<NetworkId>(id))) out[id] = c->stats;
  return out;
}

LaneActivity Machine::lane_activity() const { return LaneActivity::from(lane_stats()); }

}  // namespace updown
