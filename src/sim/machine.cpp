#include "sim/machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "check/checker.hpp"
#include "common/log.hpp"
#include "udweave/context.hpp"

namespace updown {

namespace {
/// UDSIM_LOG-style boolean env override: "0" or empty leaves the configured
/// default; any other value turns the flag on.
bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}
}  // namespace

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      memory_(cfg.nodes),
      network_(cfg_),
      dram_(cfg_),
      lpn_div_(cfg_.lanes_per_node()),
      lpa_div_(cfg_.lanes_per_accel) {
  if (!cfg_.valid()) throw std::invalid_argument("Machine: invalid configuration");
  lanes_.reserve(cfg_.total_lanes());
  for (std::uint64_t i = 0; i < cfg_.total_lanes(); ++i)
    lanes_.emplace_back(cfg_.max_threads_per_lane, cfg_.scratchpad_bytes);
  if (env_flag("UD_CHECK", cfg_.check)) {
    checker_ = std::make_unique<Checker>(
        *this, env_flag("UD_CHECK_SP_STRICT", cfg_.check_sp_strict));
    memory_.set_observer(checker_.get());
  }
}

Machine::~Machine() = default;

void Machine::send_from_host(Word event_word, std::initializer_list<Word> ops, Word cont) {
  send_from_host(event_word, ops.begin(), ops.size(), cont);
}

void Machine::send_from_host(Word event_word, const Word* ops, std::size_t nops, Word cont) {
  Message m;
  m.evw = event_word;
  m.cont = cont;
  m.nops = static_cast<std::uint8_t>(nops);
  for (std::size_t i = 0; i < nops; ++i) m.ops[i] = ops[i];
  m.src = first_lane_of_node(0);  // the TOP core is attached to node 0
  if (checker_) checker_->on_host_send();
  route_message(std::move(m), now_);
}

void Machine::enqueue(Tick t, Kind kind, std::uint32_t pool_index) {
  queue_.push(QEntry{t, seq_++, pool_index, static_cast<std::uint8_t>(kind)});
  if (queue_.size() > stats_.max_queue_depth) stats_.max_queue_depth = queue_.size();
}

void Machine::route_message(Message&& m, Tick depart) {
  const NetworkId dst = evw::nwid(m.evw);
  if (dst >= lanes_.size()) {
    // Checked mode reports the bad event word and drops the send so the
    // simulation can continue and surface the rest of the run's violations.
    if (checker_ && checker_->on_bad_route(m.evw, depart)) return;
    throw std::out_of_range("send_event: networkID beyond machine lanes");
  }
  const std::uint32_t bytes = m.payload_bytes(cfg_.msg_header_bytes);
  const Tick arrive = network_.arrival(depart, m.src, dst, bytes);
  stats_.messages_sent++;
  stats_.message_bytes += bytes;
  if (node_of(m.src) != node_of(dst)) stats_.cross_node_messages++;
  const std::uint32_t idx = msg_pool_.acquire();
  msg_pool_[idx] = m;
  if (checker_) checker_->on_route_message(idx, depart);
  enqueue(arrive, kMsg, idx);
}

void Machine::route_dram(DramRequest&& r, Tick depart) {
  // Translate once at routing time; the home node rides along in the request.
  bool addr_mapped = true;
  if (checker_) {
    // Don't throw on an unmapped base: route to node 0 and let the checker
    // classify the fault (UAF vs OOB) at service time, word by word.
    const SwizzleDescriptor* d = memory_.find_live(r.addr);
    if (d) r.dst_node = d->translate(r.addr).node;
    else {
      addr_mapped = false;
      r.dst_node = 0;
    }
  } else {
    r.dst_node = memory_.translate(r.addr).node;
  }
  const std::uint32_t req_bytes =
      cfg_.msg_header_bytes + (r.is_write ? r.nwords * 8u : 0u);
  const Tick arrive =
      network_.arrival(depart, r.src, first_lane_of_node(r.dst_node), req_bytes);
  if (node_of(r.src) != r.dst_node) stats_.remote_dram_accesses++;
  const std::uint32_t idx = dram_pool_.acquire();
  dram_pool_[idx] = r;
  if (checker_) checker_->on_route_dram(idx, addr_mapped, depart);
  enqueue(arrive, kDram, idx);
}

void Machine::exec_message(std::uint32_t pool_index, Tick arrive) {
  Message& m = msg_pool_[pool_index];
  const NetworkId dst = evw::nwid(m.evw);
  Lane& lane = lanes_[dst];
  const Tick start = std::max(arrive, lane.free_at);
  const EventLabel label = evw::label(m.evw);

  // Checked mode validates the delivery (label, target liveness, recycled
  // contexts) and suppresses violating messages after reporting them.
  if (checker_ && !checker_->on_pre_deliver(pool_index, start)) return;

  const EventDef& def = program_.def(label);

  const bool new_thread = evw::is_new_thread(m.evw);
  ThreadId tid;
  if (new_thread) {
    tid = lane.allocate_thread(def);  // Thread Create: 0 cycles (recycles state)
    stats_.threads_created++;
    std::uint64_t live = 0;
    // Tracking exact global live counts cheaply: maintain incrementally.
    live = ++live_threads_;
    if (live > stats_.max_live_threads) stats_.max_live_threads = live;
  } else {
    tid = evw::tid(m.evw);
  }
  ThreadState& state = lane.thread(tid);
  if (state.ud_class_id != def.type_id) {
    if (checker_) {
      checker_->on_class_mismatch(pool_index, dst, tid, start);
      return;
    }
    throw std::runtime_error("event '" + def.name + "' delivered to a thread of another class");
  }

  const Word cevnt = evw::make_existing(dst, tid, label, m.nops);
  UDSIM_LOG(LogLevel::kDebug, start, "[NWID %u][TID %u] %s (%u ops)", dst, tid,
            def.name.c_str(), m.nops);
  if (checker_) checker_->on_task_begin(pool_index, dst, tid, label, start, new_thread);
  Ctx ctx(*this, lane, m, start, tid, cevnt, state);
  def.invoke(ctx, state);

  const std::uint64_t cost = ctx.charged() + 1;  // +1: Thread Yield at return
  lane.free_at = start + cost;
  lane.stats.busy_cycles += cost;
  lane.stats.events_executed++;
  stats_.events_executed++;
  stats_.charged_cycles += cost;
  if (ctx.terminated()) {
    lane.deallocate_thread(tid);
    stats_.threads_destroyed++;
    --live_threads_;
  }
  if (checker_) checker_->on_task_end(dst, tid, ctx.terminated());
  if (lane.free_at > now_) now_ = lane.free_at;
}

void Machine::exec_dram(std::uint32_t pool_index, Tick arrive) {
  DramRequest& r = dram_pool_[pool_index];
  const std::uint32_t data_bytes = r.nwords * 8u + cfg_.msg_header_bytes;
  const Tick ready = dram_.service(arrive, r.dst_node, data_bytes);

  // Checked mode sanitizes the address range (OOB/UAF) and race-checks each
  // word; invalid accesses are suppressed (reads deliver zeros) so the run
  // can continue to the report instead of corrupting host memory.
  const bool ok = !checker_ || checker_->on_dram_exec(pool_index, arrive);
  if (r.is_write) {
    if (ok) memory_.write_words(r.addr, r.data.data(), r.nwords);
    stats_.dram_writes++;
  } else {
    if (ok) memory_.read_words(r.addr, r.data.data(), r.nwords);
    else r.data.fill(0);
    stats_.dram_reads++;
  }
  stats_.dram_bytes += r.nwords * 8u;

  if (r.reply_evw != 0) {
    Message resp;
    resp.evw = r.reply_evw;
    resp.cont = r.reply_cont;
    resp.nops = r.is_write ? 0 : r.nwords;
    if (!r.is_write) resp.ops = r.data;
    resp.src = first_lane_of_node(r.dst_node);
    if (checker_) checker_->begin_dram_reply(pool_index);
    route_message(std::move(resp), ready);
  }
  if (checker_) checker_->on_dram_done(pool_index);
  if (ready > now_) now_ = ready;
}

bool Machine::step() {
  if (queue_.empty()) return false;
  const QEntry e = queue_.pop();
  if (e.t > now_) now_ = e.t;
  if (e.kind == kMsg) {
    // The pooled payload stays in place through execution; handlers may
    // acquire new slots (slabs are stable), and the slot is recycled after.
    exec_message(e.index, e.t);
    msg_pool_.release(e.index);
  } else {
    exec_dram(e.index, e.t);
    dram_pool_.release(e.index);
  }
  return true;
}

void Machine::run() {
  while (step()) {
  }
  if (checker_) checker_->report();
}

EngineStats Machine::engine_stats() const {
  EngineStats es;
  es.far_events = queue_.stats().far_events;
  es.bucket_sorts = queue_.stats().bucket_sorts;
  es.msg_pool_capacity = msg_pool_.capacity();
  es.dram_pool_capacity = dram_pool_.capacity();
  return es;
}

std::vector<LaneStats> Machine::lane_stats() const {
  std::vector<LaneStats> out;
  out.reserve(lanes_.size());
  for (const auto& l : lanes_) out.push_back(l.stats);
  return out;
}

LaneActivity Machine::lane_activity() const { return LaneActivity::from(lane_stats()); }

}  // namespace updown
