// The 64-bit event word: the architectural name of a task.
//
// Per the paper (Section 2.1.1): "An event executes in a computation
// location, called a lane and identifiable by a network ID, and has a thread
// context ID. Static properties include the number of operands and the event
// label ... Altogether, they form a 64-bit value called the event word."
//
// Layout (bit 0 = LSB):
//   [63:32] networkID   (global lane index)
//   [31:16] thread context ID
//   [15:4]  event label (index into the Program registry; 4095 events max)
//   [3:1]   operand count hint
//   [0]     new-thread flag (1 => allocate a fresh thread context on arrival)
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.hpp"

namespace updown {

/// Continuation sentinel: "ignore continuation" (no reply expected).
constexpr Word IGNRCONT = 0;

namespace evw {

constexpr Word kNewThreadFlag = 1ull;
constexpr unsigned kLabelShift = 4;
constexpr unsigned kTidShift = 16;
constexpr unsigned kNwidShift = 32;
constexpr Word kLabelMask = 0xFFF;
constexpr Word kTidMask = 0xFFFF;

/// Build an event word that spawns a *new* thread on lane `nwid`.
constexpr Word make_new(NetworkId nwid, EventLabel label, unsigned nops = 0) {
  return (static_cast<Word>(nwid) << kNwidShift) |
         ((static_cast<Word>(label) & kLabelMask) << kLabelShift) |
         ((static_cast<Word>(nops) & 0x7) << 1) | kNewThreadFlag;
}

/// Build an event word addressing an *existing* thread context.
constexpr Word make_existing(NetworkId nwid, ThreadId tid, EventLabel label,
                             unsigned nops = 0) {
  return (static_cast<Word>(nwid) << kNwidShift) |
         ((static_cast<Word>(tid) & kTidMask) << kTidShift) |
         ((static_cast<Word>(label) & kLabelMask) << kLabelShift) |
         ((static_cast<Word>(nops) & 0x7) << 1);
}

constexpr NetworkId nwid(Word w) { return static_cast<NetworkId>(w >> kNwidShift); }
constexpr ThreadId tid(Word w) { return static_cast<ThreadId>((w >> kTidShift) & kTidMask); }
constexpr EventLabel label(Word w) {
  return static_cast<EventLabel>((w >> kLabelShift) & kLabelMask);
}
constexpr bool is_new_thread(Word w) { return (w & kNewThreadFlag) != 0; }

/// The paper's evw_update_event intrinsic: change only the event label,
/// keeping networkID / thread context (and flags) unchanged.
constexpr Word update_event(Word w, EventLabel new_label) {
  return (w & ~(kLabelMask << kLabelShift)) |
         ((static_cast<Word>(new_label) & kLabelMask) << kLabelShift);
}

/// Retarget an event word at a different lane, keeping label and tid.
constexpr Word update_nwid(Word w, NetworkId new_nwid) {
  return (w & 0xFFFFFFFFull) | (static_cast<Word>(new_nwid) << kNwidShift);
}

}  // namespace evw
}  // namespace updown
