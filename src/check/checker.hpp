// udcheck: dynamic analysis of the *simulated* UpDown machine.
//
// Because every DRAM word, scratchpad slot, allocation, thread context and
// message already flows through Machine/Ctx/GlobalMemory, the checker sees
// the complete message graph and the complete access stream — a TSan-style
// detector with total visibility on mediated state. Three analyses run
// together (see DESIGN.md "udcheck internals"):
//
//   1. Happens-before race detector. Each thread-context lifetime carries a
//      FastTrack-style clock: a single (lifetime, epoch) pair covers the
//      common same-lifetime chain, and a small sorted epoch vector is kept
//      only for the cross-lifetime knowledge a task actually acquires.
//      Lifetime ids come from a compact recycling allocator, so the id space
//      — and with it every clock entry and shadow stamp — stays dense.
//      Send->receive edges (messages, DRAM round trips, thread creation)
//      join clocks; each accessed DRAM word keeps a shadow cell (last writer
//      + readers since) in page-granular flat shadow arrays materialized on
//      first touch. Scratchpad accesses are lane-serialized by construction
//      and only race-checked under UD_CHECK_SP_STRICT.
//
//   2. Memory-lifetime sanitizer. dram_malloc/dram_free lifecycles come in
//      through the MemoryObserver interface; every DRAM request is validated
//      word-by-word against the live descriptor table, classifying misses as
//      use-after-free (freed-region hit) or out-of-bounds.
//
//   3. Event-protocol linter. Sends to dead or recycled thread contexts,
//      invalid event words, operand-count overflow, continuation words that
//      are never fired, and non-quiescent drains (leaked threads, leaked
//      allocations, undelivered messages).
//
// The checker is opt-in (UD_CHECK=1 or MachineConfig::check); when off, the
// simulator pays one null-pointer test per hook site. When on, clean runs
// keep golden determinism counts bit-identical: the checker never alters
// timing, routing, or statistics unless a violation is found (violating
// accesses/deliveries are suppressed so the simulation can continue and
// report instead of corrupting host memory or crashing).
//
// Sharded execution (UD_SHARDS > 1) runs the checker in *deferred window
// replay* mode: during the exec phase each engine shard appends compact
// per-shard records of its hook stream, and at every window boundary shard 0
// merges the completed window's records in the engine's own deterministic
// (tick, sending entity, sender seq) order and replays them through the
// serial analysis core. Check-clean runs stay bit-identical for any shard
// count, and cross-shard races are reported with both shards' stamps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/global_memory.hpp"
#include "sim/message.hpp"
#include "sim/stats.hpp"

namespace updown {

class Machine;
struct EngineShard;

enum class CheckKind : std::uint8_t {
  kDataRace,           ///< unordered DRAM write-write / read-write pair
  kSpRace,             ///< strict mode: HB-concurrent scratchpad conflict
  kOutOfBounds,        ///< access to a VA no descriptor covers
  kUseAfterFree,       ///< access to a retired (freed) region
  kBadFree,            ///< double free / free of a non-region address
  kSendToDeadThread,   ///< event addressed a dead thread context
  kStaleDelivery,      ///< thread context recycled between send and delivery
  kBadEventWord,       ///< invalid label / lane, or thread-class mismatch
  kOperandOverflow,    ///< >6 operands on a non-DRAM-reply message
  kLeakedThread,       ///< thread context still live at drain
  kUndeliveredMessages,///< queue not quiescent at report time
  kLeakedAllocation,   ///< live DRAM region at drain (warning)
  kUnfiredContinuation ///< delivered continuation word never sent (warning)
};

const char* check_kind_name(CheckKind k);

/// One structured violation record: enough context to locate the bug in the
/// event graph (tick, lane, event label, thread, address, allocation site).
struct CheckDiagnostic {
  CheckKind kind{};
  bool error = true;  ///< false: warning (does not affect CheckSummary::clean)
  Tick tick = 0;
  NetworkId lane = 0;
  ThreadId tid = 0;
  EventLabel label = 0;     ///< event executing (or sending) at detection
  Addr va = 0;              ///< faulting address (DRAM VA or scratchpad offset)
  std::uint64_t alloc_seq = 0;  ///< allocation site, when one is known
  std::string message;          ///< fully formatted human-readable report
};

/// One deferred-mode hook record. The engine shards append these during the
/// exec phase (56B each, no heap traffic); shard 0 merges and replays them at
/// the next window boundary. Group-begin kinds carry the (t, ent, seq) queue
/// key of the event being executed; all other kinds are nested inside the
/// most recent group of their shard's log.
struct CheckRec {
  enum Kind : std::uint8_t {
    kHostSend,        ///< group: a host injection (key = (now, host ent, seq))
    kBeginMsg,        ///< group: a message delivery popped from the queue
    kBeginDram,       ///< group: a DRAM request being serviced
    kRouteMsg,        ///< nested: a message was routed (same- or cross-shard)
    kRouteDram,       ///< nested: a DRAM request was routed
    kBadRoute,        ///< nested: event word addressed a lane beyond the machine
    kPreDeliverFail,  ///< nested: the engine suppressed this delivery online
    kClassMismatch,   ///< nested: delivery hit a thread of another class
    kTaskBegin,       ///< nested: handler entered
    kTaskEnd,         ///< nested: handler returned
    kDramExec,        ///< nested: request serviced (b = online sanitize verdict)
    kDramFault,       ///< nested: sanitize fault details (follows kDramExec b=0)
    kDramReplyBegin,  ///< nested: reply message about to be routed
    kDramDone,        ///< nested: DRAM service complete
    kSpAccess,        ///< nested: scratchpad access (strict mode / OOB)
    kSyncRelease,     ///< nested: lane-local sync cell release
    kSyncAcquire,     ///< nested: lane-local sync cell acquire
    kInlineBegin,     ///< nested: deliver_inline opened (stack push)
    kInlineSuppress,  ///< nested: inline delivery suppressed (closes the push)
    kInlineEnd        ///< nested: inline delivery complete (stack pop)
  };
  std::uint8_t kind = 0;
  std::uint8_t b = 0;
  std::uint16_t c = 0;
  std::uint32_t d = 0;
  std::uint64_t w[6] = {0, 0, 0, 0, 0, 0};
};

class Checker final : public MemoryObserver {
 public:
  Checker(Machine& m, bool sp_strict, std::uint32_t nshards);
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  bool sp_strict() const { return sp_strict_; }
  /// Sharded engines run the checker in deferred window-replay mode: hooks
  /// log records online and shard 0 replays them at window boundaries.
  bool deferred() const { return nshards_ > 1; }

  // ---- Routing hooks (serial engine; also driven by the replay) ------------
  /// The host (TOP core) is about to inject a message. In deferred mode this
  /// opens a replay group keyed by the host's queue identity.
  void on_host_send(Tick now, std::uint32_t ent, std::uint32_t seq);
  /// A message landed in pool slot `idx`; stamp it with the sender's clock
  /// and lint the send (target liveness, operand count, obligations).
  void on_route_message(std::uint32_t idx, Tick depart);
  /// A DRAM request landed in pool slot `idx`. `addr_mapped` is false when
  /// routing could not translate the base address (checked mode routes such
  /// requests to node 0 instead of throwing).
  void on_route_dram(std::uint32_t idx, bool addr_mapped, Tick depart);
  /// Event word addressed a lane beyond the machine; returns true when the
  /// send was reported (or recorded, in deferred mode) and should be dropped.
  bool on_bad_route(EngineShard& sh, Word evw, Tick depart);

  // ---- Delivery / execution hooks -----------------------------------------
  /// Validate delivery of pooled message `idx`; false => suppress (the
  /// violation has been recorded; the payload is dropped).
  bool on_pre_deliver(std::uint32_t idx, Tick start);
  /// An existing-thread delivery found a thread of another class.
  void on_class_mismatch(std::uint32_t idx, NetworkId lane, ThreadId tid, Tick start);
  /// A handler is about to run: join the receiver's clock with the message
  /// stamp, register continuation obligations, open the task scope.
  void on_task_begin(std::uint32_t idx, NetworkId lane, ThreadId tid, EventLabel label,
                     Tick start, bool new_thread);
  /// The handler returned; closes the task scope and retires the lifetime
  /// when the thread yielded-terminate.
  void on_task_end(NetworkId lane, ThreadId tid, bool terminated);

  /// A DRAM request is being serviced: sanitize the address range and race-
  /// check each word at the requester's send-time clock. Returns false when
  /// the physical access must be suppressed (reads are zero-filled).
  bool on_dram_exec(std::uint32_t idx, Tick now);
  /// The serviced request is about to emit its reply message.
  void begin_dram_reply(std::uint32_t idx);
  /// Service complete (reply routed, if any); releases the in-flight stamp.
  void on_dram_done(std::uint32_t idx);

  /// Scratchpad access from a running handler. Returns false when the access
  /// is out of bounds and must be suppressed (reads return 0). Internally
  /// branches on the engine mode (serial check vs deferred record).
  bool on_sp_access(EngineShard& sh, NetworkId lane, std::uint64_t offset,
                    std::size_t bytes, bool is_write, Tick now);

  /// Lane-local synchronization cells (Ctx::sync_release / sync_acquire):
  /// an atomic scratchpad counter or flag is a real happens-before edge the
  /// message graph cannot see — e.g. the KVMSR termination gather, where a
  /// reduce task bumps its lane's received counter and terminates without
  /// sending, and a later poll task on the same lane reads the counter and
  /// reports to the master. Release merges the running task's clock into the
  /// cell; acquire merges the cell into the running task.
  void on_sync_release(EngineShard& sh, NetworkId lane, std::uint64_t slot);
  void on_sync_acquire(EngineShard& sh, NetworkId lane, std::uint64_t slot);

  /// Save / restore the scoped message origin around an inline delivery
  /// (Machine::deliver_inline): the nested task's begin/end hooks overwrite
  /// the origin, and the caller's later sends must stamp with the caller's
  /// clock again. Push before the nested on_route_message, pop after the
  /// nested on_task_end. Nesting depth follows the inline call depth.
  void push_origin();
  void pop_origin();

  // ---- Deferred-mode engine hooks (sharded execution) ----------------------
  // Each appends a record to the executing shard's log and returns the online
  // verdict the engine needs for control flow. Verdicts are computed from
  // engine-owned state only (lane liveness, the program table, descriptor
  // snapshots), so the engine behaves exactly like an unchecked sharded run
  // on check-clean inputs. The analysis itself happens at replay.
  void defer_route_message(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                           const Message& m, Tick depart);
  void defer_route_dram(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                        const DramRequest& r, bool addr_mapped, Tick depart);
  /// Opens the delivery group for queue entry (t, ent, seq); returns false
  /// when the engine must suppress the delivery (bad label / dead target).
  bool defer_pre_deliver(EngineShard& sh, Tick t, std::uint32_t ent, std::uint32_t seq,
                         const Message& m, Tick start);
  void defer_class_mismatch(EngineShard& sh, NetworkId lane, ThreadId tid, Tick start);
  void defer_task_begin(EngineShard& sh, NetworkId lane, ThreadId tid, EventLabel label,
                        Tick start, bool new_thread);
  void defer_task_end(EngineShard& sh, NetworkId lane, ThreadId tid, bool terminated);
  /// Opens the DRAM service group for queue entry (t, ent, seq).
  void defer_dram_begin(EngineShard& sh, Tick t, std::uint32_t ent, std::uint32_t seq);
  /// Online sanitize through the shard's descriptor snapshot; false =>
  /// suppress the physical access (the fault details ride in the log and the
  /// diagnostic is emitted at replay).
  bool defer_dram_exec(EngineShard& sh, const DramRequest& r, Tick now);
  void defer_dram_reply_begin(EngineShard& sh);
  void defer_dram_done(EngineShard& sh);
  /// Inline delivery in deferred mode; returns false when suppressed online.
  bool defer_inline_begin(EngineShard& sh, const Message& m, Tick start);
  void defer_inline_class_mismatch(EngineShard& sh, NetworkId lane, ThreadId tid,
                                   Tick start);
  void defer_inline_end(EngineShard& sh);

  /// Shard 0, at a window boundary (between inbox merge and barrier A): merge
  /// all shards' completed-window records in (t, ent, seq) order and replay
  /// them through the serial analysis core. Also called once at run() exit as
  /// a drain safety net.
  void replay_pending();
  /// A sharded run aborted: drop half-replayed window logs and stashed
  /// in-flight clock state so the next run starts clean.
  void reset_deferred();

  // ---- MemoryObserver (allocation lifecycle) ------------------------------
  void on_alloc(const SwizzleDescriptor& d) override;
  void on_free(const SwizzleDescriptor& d, std::uint64_t free_seq) override;
  void on_bad_free(Addr base, bool double_free, const std::string& detail) override;

  // ---- Reporting -----------------------------------------------------------
  /// Called by Machine::run() at quiescence: computes drain-state checks
  /// (leaked threads/allocations, unfired continuations), folds all counters
  /// into MachineStats::check, prints newly found diagnostics, and opens a
  /// new era (everything before a full drain happens-before everything
  /// after, so cross-phase host driving cannot produce false races).
  void report();

  /// Multi-tenant leak attribution: a host scheduler may install a callback
  /// mapping a lane to the name of the job whose partition owns it (empty =
  /// unowned). Leaked-thread diagnostics append the owner, so a leak in a
  /// concurrent-job run names the offending job instead of just a lane
  /// number. Host-side only (set while the engine is paused); purely a
  /// diagnostic decoration — counters and eras are unaffected.
  void set_lane_annotator(std::function<std::string(NetworkId)> fn) {
    lane_annotator_ = std::move(fn);
  }

  const std::vector<CheckDiagnostic>& diagnostics() const { return diags_; }

 private:
  // ---- Vector clocks -------------------------------------------------------
  // Lifetime ids are recycled through a free list, so the live id space stays
  // compact at any machine scale. Correctness of recycling rests on two
  // rules: (1) anything that must keep a lifetime's *identity* (shadow
  // stamps, in-flight message/DRAM metadata) holds a refcount, and an id is
  // only recycled once dead and unreferenced; (2) epoch counters continue
  // across occupancies and `base_epoch` records the boundary, so an un-
  // refcounted clock entry from an earlier occupancy is recognizably stale
  // (its epoch is below base_epoch) and can never falsely order against the
  // current occupant.
  using LifetimeId = std::uint32_t;
  static constexpr LifetimeId kHostLifetime = 0;
  static constexpr LifetimeId kNoLifetime = 0xFFFFFFFFu;

  struct VCEntry {
    LifetimeId lt;
    std::uint32_t epoch;
  };
  using VC = std::vector<VCEntry>;  ///< sorted by lt
  static constexpr VCEntry kNoEntry{kNoLifetime, 0};

  /// The inline portion of an effective clock: the two most recently acquired
  /// entries, held outside the pool. Two slots because the dominant delivery
  /// shape (a task spawned by a task that was itself just spawned) hands the
  /// receiver its parent's stamp plus the parent's own inline knowledge — the
  /// grandparent. One slot would spill to the pooled clock on roughly every
  /// other hop of a spawn chain, and a single spill is contagious: every
  /// descendant then inherits a non-empty snapshot and pays the merge scan.
  /// e0 is older than e1; spills evict e0.
  struct InlineVC {
    VCEntry e0 = kNoEntry;
    VCEntry e1 = kNoEntry;
  };

  // ---- Snapshot pool -------------------------------------------------------
  // Clocks are immutable, refcounted VCs held in a pooled slab and addressed
  // by index. A lifetime's clock, the snapshots pinned to in-flight messages
  // and DRAM requests, and the replay's origin state all share slots, so a
  // send is a refcount bump (no copy) and a join builds its result in a
  // recycled buffer — the message hot path allocates nothing in steady state.
  // kNoSnap denotes the empty clock.
  using SnapId = std::uint32_t;
  static constexpr SnapId kNoSnap = 0xFFFFFFFFu;
  struct SnapSlot {
    VC vc;
    std::uint32_t refs = 0;
  };

  /// One thread-context lifetime (allocate_thread .. deallocate_thread).
  /// Same-lifetime events are serialized by the lane, so a lifetime is one
  /// chain in the happens-before chain decomposition; its own position is the
  /// implicit (id, epoch) FastTrack pair and `clock` holds only acquired
  /// cross-lifetime knowledge.
  struct Lifetime {
    SnapId clock = kNoSnap;  ///< knowledge of *other* lifetimes (self implicit)
    /// FastTrack fast path: the most recently acquired stamps, held inline.
    /// The dominant deliveries (fresh thread, repeat sender, spawn chain)
    /// absorb the sender's knowledge here without touching the pool; only
    /// genuine fan-in (a third concurrent edge) spills into the pooled clock.
    /// The effective clock is snap_vc(clock) ∪ last ∪ {(host, host_ep)}.
    InlineVC last;
    /// Knowledge of the host chain, hoisted out of the VCs. The host lifetime
    /// never dies, so a (host, e) entry would never prune — one immortal
    /// entry in every clock would force the slow merge path on every hop.
    std::uint32_t host_ep = 0;
    std::uint32_t epoch = 1;       ///< bumped after every send (release)
    std::uint32_t base_epoch = 0;  ///< first epoch of the current occupancy
    std::uint32_t refs = 0;        ///< shadow stamps + in-flight metadata
    bool alive = true;
    bool retired = false;  ///< id parked on the free list
    NetworkId nwid = 0;
    ThreadId tid = 0;
    EventLabel create_label = 0;
    Tick created_at = 0;
    std::uint64_t create_seq = 0;  ///< global thread-creation order (1-based)
  };

  /// A clock reading attached to a message / DRAM request / shadow cell.
  struct Stamp {
    LifetimeId lt = kNoLifetime;
    std::uint32_t epoch = 0;
    std::uint32_t era = 0;
    EventLabel label = 0;      ///< event that produced the stamp (diagnostics)
    std::uint16_t shard = 0;   ///< engine shard that executed it (diagnostics)
    Tick tick = 0;
  };

  struct MsgMeta {
    Stamp stamp;
    SnapId snap = kNoSnap;  ///< sender's pooled clock at send time (one pool ref)
    InlineVC ext;           ///< sender's inline `last` entries (un-refcounted)
    std::uint32_t host_ep = 0;  ///< sender's host-chain knowledge
    LifetimeId target = kNoLifetime;  ///< expected lifetime of an existing target
    bool from_dram = false;
    bool cont_pending = false;  ///< cont word is a live obligation in transit
    bool suppress = false;      ///< reported at send; drop silently on arrival
    bool holds_refs = false;    ///< stamp.lt / target are refcount-pinned
  };

  struct DramMeta {
    Stamp stamp;
    SnapId snap = kNoSnap;  ///< requester's pooled clock at issue (one pool ref)
    InlineVC ext;           ///< requester's inline `last` entries (un-refcounted)
    std::uint32_t host_ep = 0;  ///< requester's host-chain knowledge
    bool addr_mapped = true;
    bool cont_pending = false;
    bool holds_ref = false;  ///< we incref'd stamp.lt for the flight
  };

  // ---- Shadow memory -------------------------------------------------------
  // Flat page-granular shadow arrays, materialized on first touch (the same
  // discipline LaneTable uses for lane cores): a DRAM word's cell is two
  // array indexations instead of a hash probe, and a multi-word request
  // resolves its page once per crossing instead of hashing per word. The
  // common cell holds its readers inline (one slot); genuinely contended
  // cells promote to a pooled overflow list.
  struct ShadowCell {
    Stamp write;
    Stamp read0;  ///< inline reader slot (lt == kNoLifetime => empty)
    std::uint32_t overflow = 0xFFFFFFFFu;  ///< reader_pool_ index, or none
  };
  static constexpr std::uint32_t kNoOverflow = 0xFFFFFFFFu;
  static constexpr unsigned kShadowPageShift = 9;  ///< 512 words (4 KiB VA) per page
  static constexpr std::size_t kShadowPageWords = 1u << kShadowPageShift;
  struct ShadowPage {
    ShadowCell cells[kShadowPageWords];
  };
  static constexpr std::size_t kMaxReaders = 8;

  struct PendingCont {
    std::uint32_t count = 0;
    Tick first_tick = 0;
    NetworkId lane = 0;  ///< lane that received the obligation first
    EventLabel label = 0;
  };

  // Clock algebra.
  static std::uint32_t vc_get(const VC& vc, LifetimeId lt);
  bool prunable(LifetimeId lt) const;
  /// A clock entry that can never order anything again: its lifetime is dead
  /// and unreferenced, or the entry predates the id's current occupancy.
  bool dead_entry(const VCEntry& e) const;
  /// Would a pointwise-max merge of `src` into `dst` (skipping `self`,
  /// pruning dead/stale entries) change `dst`? Scan-only, allocates nothing.
  bool merge_would_change(const VC& dst, const VC& src, LifetimeId self) const;
  /// Append the merged (pointwise max, `self` skipped, dead entries pruned)
  /// clock of `dst` and `src` to `out`. `out` must not alias either input.
  void merge_build(VC& out, const VC& dst, const VC& src, LifetimeId self) const;
  /// Sorted merge of `src` into `dst` via the scratch buffer; returns whether
  /// `dst` changed. Used for the mutable sync-cell clocks only — lifetime
  /// clocks are immutable pool snapshots rebuilt by clock_join.
  bool merge_vc(VC& dst, const VC& src, LifetimeId self);
  /// Raise `vc[lt]` to at least `epoch`; returns whether `vc` changed.
  static bool vc_upsert(VC& vc, LifetimeId lt, std::uint32_t epoch);

  // Snapshot pool plumbing. snap_ref/snap_unref accept kNoSnap (no-ops); a
  // slot whose refcount hits zero parks on the free list with its buffer
  // intact, so steady-state joins recycle capacity instead of calling malloc.
  const VC& snap_vc(SnapId id) const;
  void snap_ref(SnapId id);
  void snap_unref(SnapId id);
  SnapId snap_new();  ///< fresh slot, refs = 1, empty (capacity-retaining) vc
  void snap_clear(SnapId& slot);                ///< unref + reset to kNoSnap
  void snap_assign(SnapId& slot, SnapId v);     ///< ref-maintaining overwrite
  /// Rebuild `lt`'s immutable pooled clock as clock ∪ src (∪ {stamp} if
  /// non-null), if that changes it; the old clock is released to the pool.
  void clock_join(LifetimeId lt, const VC& src, const Stamp* stamp);
  /// Absorb one clock entry into `dst`'s effective clock, preferring the
  /// inline `last` slots (no pool op); genuine fan-in beyond two live edges
  /// spills the oldest slot into the pooled clock.
  void absorb(LifetimeId dst, VCEntry e);
  /// Drop dead/stale entries from `vc` in place (exclusive slots only).
  void prune_dead(VC& vc) const;
  /// Join a message's clock view into `dst`. `snap` is OWNED: the caller's
  /// pool ref transfers in (adopted by a fresh receiver, or released).
  void join_into(LifetimeId dst, SnapId snap, const InlineVC& ext,
                 std::uint32_t host_ep, const Stamp& src);
  /// The sender's current pooled clock as a pool reference (caller owns one
  /// ref); the inline remainder of the effective clock is its `last` pair.
  SnapId clock_snapshot(LifetimeId lt);
  /// A borrowed view of an effective clock: pooled VC ∪ ext ∪ {(host,
  /// host_ep)}. Built on the stack from a lifetime or in-flight metadata.
  struct ClockView {
    const VC* vc;
    InlineVC ext;
    std::uint32_t host_ep;
  };

  /// Is stamp `a` ordered before an observer whose effective clock is
  /// (`lt`, `view`)?
  bool ordered(const Stamp& a, LifetimeId lt, const ClockView& view) const;

  void stamp_ref(LifetimeId lt);
  void stamp_unref(LifetimeId lt);
  void set_stamp(Stamp& slot, const Stamp& s);   ///< ref-maintaining overwrite
  void add_reader(ShadowCell& cell, const Stamp& s, const ClockView& view);
  void clear_readers(ShadowCell& cell);

  LifetimeId new_lifetime(NetworkId nwid, ThreadId tid, EventLabel label, Tick t);
  /// Park a dead, unreferenced lifetime's id on the free list; records the
  /// occupancy boundary (base_epoch) and releases the thread-slot mapping.
  void retire(LifetimeId lt);
  void maybe_retire(LifetimeId lt);
  LifetimeId& slot_lifetime(NetworkId nwid, ThreadId tid);
  bool slot_alive(NetworkId nwid, ThreadId tid) const;

  // Shadow cell addressing (first-touch materialization).
  ShadowPage& dram_page(std::uint64_t page);
  ShadowCell& sp_cell(NetworkId lane, std::uint64_t word);
  void note_shadow_bytes(std::uint64_t bytes);

  /// Race-check + update one shadow cell; `cur`'s effective clock is
  /// (`cur.lt`, `view`).
  void check_access(ShadowCell& cell, const Stamp& cur, const ClockView& view,
                    bool is_write, bool is_sp, Addr va);
  /// Race-check a word run of a DRAM request (shared by the serial hook and
  /// the deferred replay).
  void dram_race_words(DramMeta& meta, Addr addr, unsigned nwords, bool is_write,
                       Tick now);
  /// UAF/OOB diagnostic for a sanitize fault (freed == nullptr => OOB).
  void dram_fault_diag(const Stamp& s, unsigned nwords, bool is_write, Addr va,
                       const FreedRegion* freed, Tick now);
  /// Serial scratchpad access path (bounds + optional strict race check).
  bool sp_access_check(NetworkId lane, std::uint64_t offset, std::size_t bytes,
                       bool is_write, Tick now);
  void sync_release_check(NetworkId lane, std::uint64_t slot);
  void sync_acquire_check(NetworkId lane, std::uint64_t slot);

  // Analysis core, metadata-addressed: the public idx hooks (serial engine)
  // and the deferred replay both drive these. The replay materializes its
  // Message / metadata operands from log records and the (ent, seq) stash, so
  // it never touches the engine's payload pools.
  void route_message_m(MsgMeta& meta, const Message& m, Tick depart);
  void route_dram_m(DramMeta& meta, const DramRequest& r, bool addr_mapped, Tick depart);
  bool pre_deliver_m(MsgMeta& meta, const Message& m, Tick start);
  void class_mismatch_m(MsgMeta& meta, const Message& m, NetworkId lane, ThreadId tid,
                        Tick start);
  void task_begin_m(MsgMeta& meta, const Message& m, NetworkId lane, ThreadId tid,
                    EventLabel label, Tick start, bool new_thread);
  void begin_dram_reply_m(DramMeta& meta);
  void dram_done_m(DramMeta& meta);
  void bad_route_diag(Word evw, Tick depart);

  // Meta lifecycle. Message metadata pins both the sender's lifetime (so
  // diagnostics after delivery still name the true sender) and the expected
  // target lifetime (so an id recycled while the message is in flight cannot
  // alias the staleness check). Release is idempotent.
  void acquire_msg_refs(MsgMeta& meta);
  void release_msg_meta(MsgMeta& meta);

  // Continuation obligations.
  void register_cont(Word cont, NetworkId lane, Tick t);
  bool discharge_cont(Word w);

  // Diagnostics.
  void diag(CheckDiagnostic d);
  std::string ev_name(EventLabel label) const;
  std::string where(const Stamp& s) const;

  MsgMeta& msg_meta(std::uint32_t idx);
  DramMeta& dram_meta(std::uint32_t idx);

  // Deferred-mode internals.
  std::vector<CheckRec>& log_of(EngineShard& sh);
  void replay_group(std::uint32_t shard, const std::vector<CheckRec>& log,
                    std::size_t begin, std::size_t end);
  void drain_bad_frees();

  Machine& m_;
  const bool sp_strict_;
  const std::uint32_t nshards_;

  std::vector<Lifetime> lifetimes_;  ///< index = LifetimeId; [0] is the host
  std::vector<LifetimeId> free_ids_; ///< retired ids awaiting reuse
  std::uint64_t create_seq_ = 0;     ///< thread-creation counter (leak diags)
  std::vector<std::vector<LifetimeId>> slot_lt_;  ///< per lane, per tid (lazy rows)
  std::uint32_t era_ = 1;  ///< bumped at every full drain (report)

  // Origin of the message/request currently being routed. The analysis core
  // is single-threaded (serial engine, or the replay on shard 0), so one
  // scoped origin per Machine suffices.
  enum class Origin : std::uint8_t { kNone, kHost, kTask, kDramReply };
  Origin origin_ = Origin::kNone;
  Stamp origin_stamp_;       ///< valid for kTask (current task's lifetime)
  SnapId origin_snap_ = kNoSnap;  ///< valid for kDramReply (one pool ref)
  InlineVC origin_ext_;      ///< valid for kDramReply (inline entries)
  std::uint32_t origin_host_ep_ = 0;  ///< valid for kDramReply
  bool origin_cont_pending_ = false;  ///< valid for kDramReply

  /// Saved origins for nested inline deliveries (Machine::deliver_inline).
  /// Stamp carries no refcount; the snap slot's pool ref moves with the save.
  struct SavedOrigin {
    Origin origin;
    Stamp stamp;
    SnapId snap;
    InlineVC ext;
    std::uint32_t host_ep;
    bool cont_pending;
  };
  std::vector<SavedOrigin> origin_stack_;

  std::vector<MsgMeta> msg_meta_;
  std::vector<DramMeta> dram_meta_;

  // Snapshot pool (see SnapSlot above) and the shared merge scratch buffer.
  std::vector<SnapSlot> snap_pool_;
  std::vector<SnapId> snap_free_;
  VC scratch_vc_;
  VC sync_scratch_vc_;  ///< host-stripped sync-cell clock (acquire slow path)

  // Flat shadow directories (first-touch pages; see ShadowPage above).
  std::vector<std::unique_ptr<ShadowPage>> dram_shadow_;  ///< [va >> 3 >> 9]
  std::vector<std::unique_ptr<std::vector<ShadowCell>>> sp_shadow_;  ///< per lane
  std::vector<std::vector<Stamp>> reader_pool_;  ///< overflow reader lists
  std::vector<std::uint32_t> reader_pool_free_;
  std::uint64_t shadow_bytes_ = 0;       ///< resident shadow bytes right now
  std::uint64_t shadow_peak_bytes_ = 0;  ///< high-water mark across the run

  std::unordered_map<std::uint64_t, VC> sync_clocks_;  ///< (lane<<32)|slot

  std::unordered_map<Word, PendingCont> pending_conts_;

  // Deferred (sharded) mode: per-shard hook logs, in-flight clock state keyed
  // by the sender's (entity, seq) identity, and the shard currently being
  // replayed (stamped into clocks for cross-shard race attribution).
  std::vector<std::vector<CheckRec>> logs_;
  std::unordered_map<std::uint64_t, MsgMeta> msg_stash_;
  struct DramStash {
    DramMeta meta;
    Addr addr = 0;
    std::uint8_t nwords = 0;
    bool is_write = false;
  };
  std::unordered_map<std::uint64_t, DramStash> dram_stash_;
  std::uint16_t replay_shard_ = 0;

  /// Bad-free reports can arrive from any shard thread (a task calling
  /// dram_free); they are queued under a mutex and folded in at report time.
  struct BadFree {
    Addr base;
    bool double_free;
    std::string head;
    Tick tick;
  };
  std::mutex bad_free_mu_;
  std::vector<BadFree> bad_free_pending_;

  CheckSummary counts_;
  std::vector<CheckDiagnostic> diags_;
  std::function<std::string(NetworkId)> lane_annotator_;  ///< lane -> owning job
  std::vector<LifetimeId> leak_reported_;  ///< leaked threads already flagged
  std::vector<Word> cont_reported_;        ///< unfired conts already flagged
  static constexpr std::size_t kMaxStoredDiags = 256;
  std::uint64_t dropped_diags_ = 0;
};

}  // namespace updown
