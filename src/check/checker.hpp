// udcheck: dynamic analysis of the *simulated* UpDown machine.
//
// Because every DRAM word, scratchpad slot, allocation, thread context and
// message already flows through Machine/Ctx/GlobalMemory, the checker sees
// the complete message graph and the complete access stream — a TSan-style
// detector with total visibility on mediated state. Three analyses run
// together (see DESIGN.md "udcheck internals"):
//
//   1. Happens-before race detector. Each thread-context lifetime carries a
//      sparse vector clock; send->receive edges (messages, DRAM round trips,
//      thread creation) join clocks, and each accessed DRAM word keeps a
//      shadow cell (last writer + readers since) whose stamps are compared
//      for ordering. Scratchpad accesses are lane-serialized by construction
//      and only checked under UD_CHECK_SP_STRICT (ordering-hazard mode).
//
//   2. Memory-lifetime sanitizer. dram_malloc/dram_free lifecycles come in
//      through the MemoryObserver interface; every DRAM request is validated
//      word-by-word against the live descriptor table, classifying misses as
//      use-after-free (freed-region hit) or out-of-bounds.
//
//   3. Event-protocol linter. Sends to dead or recycled thread contexts,
//      invalid event words, operand-count overflow, continuation words that
//      are never fired, and non-quiescent drains (leaked threads, leaked
//      allocations, undelivered messages).
//
// The checker is opt-in (UD_CHECK=1 or MachineConfig::check); when off, the
// simulator pays one null-pointer test per hook site. When on, clean runs
// keep golden determinism counts bit-identical: the checker never alters
// timing, routing, or statistics unless a violation is found (violating
// accesses/deliveries are suppressed so the simulation can continue and
// report instead of corrupting host memory or crashing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/global_memory.hpp"
#include "sim/stats.hpp"

namespace updown {

class Machine;

enum class CheckKind : std::uint8_t {
  kDataRace,           ///< unordered DRAM write-write / read-write pair
  kSpRace,             ///< strict mode: HB-concurrent scratchpad conflict
  kOutOfBounds,        ///< access to a VA no descriptor covers
  kUseAfterFree,       ///< access to a retired (freed) region
  kBadFree,            ///< double free / free of a non-region address
  kSendToDeadThread,   ///< event addressed a dead thread context
  kStaleDelivery,      ///< thread context recycled between send and delivery
  kBadEventWord,       ///< invalid label / lane, or thread-class mismatch
  kOperandOverflow,    ///< >6 operands on a non-DRAM-reply message
  kLeakedThread,       ///< thread context still live at drain
  kUndeliveredMessages,///< queue not quiescent at report time
  kLeakedAllocation,   ///< live DRAM region at drain (warning)
  kUnfiredContinuation ///< delivered continuation word never sent (warning)
};

const char* check_kind_name(CheckKind k);

/// One structured violation record: enough context to locate the bug in the
/// event graph (tick, lane, event label, thread, address, allocation site).
struct CheckDiagnostic {
  CheckKind kind{};
  bool error = true;  ///< false: warning (does not affect CheckSummary::clean)
  Tick tick = 0;
  NetworkId lane = 0;
  ThreadId tid = 0;
  EventLabel label = 0;     ///< event executing (or sending) at detection
  Addr va = 0;              ///< faulting address (DRAM VA or scratchpad offset)
  std::uint64_t alloc_seq = 0;  ///< allocation site, when one is known
  std::string message;          ///< fully formatted human-readable report
};

class Checker final : public MemoryObserver {
 public:
  Checker(Machine& m, bool sp_strict);
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  bool sp_strict() const { return sp_strict_; }

  // ---- Routing hooks (called by Machine on the send path) -----------------
  /// The host (TOP core) is about to inject a message.
  void on_host_send();
  /// A message landed in pool slot `idx`; stamp it with the sender's clock
  /// and lint the send (target liveness, operand count, obligations).
  void on_route_message(std::uint32_t idx, Tick depart);
  /// A DRAM request landed in pool slot `idx`. `addr_mapped` is false when
  /// routing could not translate the base address (checked mode routes such
  /// requests to node 0 instead of throwing).
  void on_route_dram(std::uint32_t idx, bool addr_mapped, Tick depart);
  /// Event word addressed a lane beyond the machine; returns true when the
  /// send was reported and should be dropped.
  bool on_bad_route(Word evw, Tick depart);

  // ---- Delivery / execution hooks -----------------------------------------
  /// Validate delivery of pooled message `idx`; false => suppress (the
  /// violation has been recorded; the payload is dropped).
  bool on_pre_deliver(std::uint32_t idx, Tick start);
  /// An existing-thread delivery found a thread of another class.
  void on_class_mismatch(std::uint32_t idx, NetworkId lane, ThreadId tid, Tick start);
  /// A handler is about to run: join the receiver's clock with the message
  /// stamp, register continuation obligations, open the task scope.
  void on_task_begin(std::uint32_t idx, NetworkId lane, ThreadId tid, EventLabel label,
                     Tick start, bool new_thread);
  /// The handler returned; closes the task scope and retires the lifetime
  /// when the thread yielded-terminate.
  void on_task_end(NetworkId lane, ThreadId tid, bool terminated);

  /// A DRAM request is being serviced: sanitize the address range and race-
  /// check each word at the requester's send-time clock. Returns false when
  /// the physical access must be suppressed (reads are zero-filled).
  bool on_dram_exec(std::uint32_t idx, Tick now);
  /// The serviced request is about to emit its reply message.
  void begin_dram_reply(std::uint32_t idx);
  /// Service complete (reply routed, if any); releases the in-flight stamp.
  void on_dram_done(std::uint32_t idx);

  /// Scratchpad access from a running handler. Returns false when the access
  /// is out of bounds and must be suppressed (reads return 0).
  bool on_sp_access(NetworkId lane, std::uint64_t offset, std::size_t bytes,
                    bool is_write, Tick now);

  /// Lane-local synchronization cells (Ctx::sync_release / sync_acquire):
  /// an atomic scratchpad counter or flag is a real happens-before edge the
  /// message graph cannot see — e.g. the KVMSR termination gather, where a
  /// reduce task bumps its lane's received counter and terminates without
  /// sending, and a later poll task on the same lane reads the counter and
  /// reports to the master. Release merges the running task's clock into the
  /// cell; acquire merges the cell into the running task.
  void on_sync_release(NetworkId lane, std::uint64_t slot);
  void on_sync_acquire(NetworkId lane, std::uint64_t slot);

  /// Save / restore the scoped message origin around an inline delivery
  /// (Machine::deliver_inline): the nested task's begin/end hooks overwrite
  /// the origin, and the caller's later sends must stamp with the caller's
  /// clock again. Push before the nested on_route_message, pop after the
  /// nested on_task_end. Nesting depth follows the inline call depth.
  void push_origin();
  void pop_origin();

  // ---- MemoryObserver (allocation lifecycle) ------------------------------
  void on_alloc(const SwizzleDescriptor& d) override;
  void on_free(const SwizzleDescriptor& d, std::uint64_t free_seq) override;
  void on_bad_free(Addr base, bool double_free, const std::string& detail) override;

  // ---- Reporting -----------------------------------------------------------
  /// Called by Machine::run() at quiescence: computes drain-state checks
  /// (leaked threads/allocations, unfired continuations), folds all counters
  /// into MachineStats::check, prints newly found diagnostics, and opens a
  /// new era (everything before a full drain happens-before everything
  /// after, so cross-phase host driving cannot produce false races).
  void report();

  const std::vector<CheckDiagnostic>& diagnostics() const { return diags_; }

 private:
  // ---- Vector clocks -------------------------------------------------------
  using LifetimeId = std::uint64_t;
  static constexpr LifetimeId kHostLifetime = 0;
  static constexpr LifetimeId kNoLifetime = ~0ull;

  struct VCEntry {
    LifetimeId lt;
    std::uint32_t epoch;
  };
  using VC = std::vector<VCEntry>;  ///< sorted by lt
  using Snapshot = std::shared_ptr<const VC>;

  /// One thread-context lifetime (allocate_thread .. deallocate_thread).
  /// Same-lifetime events are serialized by the lane, so a lifetime is one
  /// chain in the happens-before chain decomposition.
  struct Lifetime {
    VC vc;             ///< knowledge of *other* lifetimes (self is implicit)
    Snapshot snap;     ///< cached copy-on-write snapshot of vc
    std::uint32_t epoch = 1;  ///< bumped after every send (release)
    std::uint32_t refs = 0;   ///< shadow stamps + in-flight DRAM stamps
    bool alive = true;
    NetworkId nwid = 0;
    ThreadId tid = 0;
    EventLabel create_label = 0;
    Tick created_at = 0;
  };

  /// A clock reading attached to a message / DRAM request / shadow cell.
  struct Stamp {
    LifetimeId lt = kNoLifetime;
    std::uint32_t epoch = 0;
    std::uint32_t era = 0;
    EventLabel label = 0;  ///< event that produced the stamp (diagnostics)
    Tick tick = 0;
  };

  struct MsgMeta {
    Stamp stamp;
    Snapshot snap;
    LifetimeId target = kNoLifetime;  ///< expected lifetime of an existing target
    bool from_dram = false;
    bool cont_pending = false;  ///< cont word is a live obligation in transit
    bool suppress = false;      ///< reported at send; drop silently on arrival
  };

  struct DramMeta {
    Stamp stamp;
    Snapshot snap;
    bool addr_mapped = true;
    bool cont_pending = false;
    bool holds_ref = false;  ///< we incref'd stamp.lt for the flight
  };

  struct ShadowCell {
    Stamp write;
    std::vector<Stamp> readers;  ///< readers since the last write (capped)
  };
  static constexpr std::size_t kMaxReaders = 8;

  struct PendingCont {
    std::uint32_t count = 0;
    Tick first_tick = 0;
    NetworkId lane = 0;  ///< lane that received the obligation first
    EventLabel label = 0;
  };

  // Clock algebra.
  static std::uint32_t vc_get(const VC& vc, LifetimeId lt);
  bool prunable(LifetimeId lt) const;
  /// Sorted merge of `src` into `dst` (pointwise max), skipping `self` and
  /// pruning dead+unreferenced entries; returns whether `dst` changed.
  bool merge_vc(VC& dst, const VC& src, LifetimeId self);
  /// Raise `vc[lt]` to at least `epoch`; returns whether `vc` changed.
  static bool vc_upsert(VC& vc, LifetimeId lt, std::uint32_t epoch);
  void join_into(LifetimeId dst, const Snapshot& snap, const Stamp& src);
  const Snapshot& snapshot_of(LifetimeId lt);
  /// Is stamp `a` ordered before an observer whose clock is (`lt`, `vc`)?
  bool ordered(const Stamp& a, LifetimeId lt, const VC& vc) const;

  void stamp_ref(LifetimeId lt);
  void stamp_unref(LifetimeId lt);
  void set_stamp(Stamp& slot, const Stamp& s);   ///< ref-maintaining overwrite
  void add_reader(ShadowCell& cell, const Stamp& s);

  LifetimeId new_lifetime(NetworkId nwid, ThreadId tid, EventLabel label, Tick t);
  LifetimeId& slot_lifetime(NetworkId nwid, ThreadId tid);
  bool slot_alive(NetworkId nwid, ThreadId tid) const;

  /// Race-check + update one shadow cell; `cur`'s clock is (`cur.lt`, vc).
  void check_access(ShadowCell& cell, const Stamp& cur, const VC& vc, bool is_write,
                    bool is_sp, Addr va);

  // Continuation obligations.
  void register_cont(Word cont, NetworkId lane, Tick t);
  bool discharge_cont(Word w);

  // Diagnostics.
  void diag(CheckDiagnostic d);
  std::string ev_name(EventLabel label) const;
  std::string where(const Stamp& s) const;

  MsgMeta& msg_meta(std::uint32_t idx);
  DramMeta& dram_meta(std::uint32_t idx);

  Machine& m_;
  const bool sp_strict_;

  std::vector<Lifetime> lifetimes_;  ///< index = LifetimeId; [0] is the host
  std::vector<std::vector<LifetimeId>> slot_lt_;  ///< per lane, per tid (lazy rows)
  std::uint32_t era_ = 1;  ///< bumped at every full drain (report)

  // Origin of the message/request currently being routed. Execution is
  // single-threaded, so one scoped origin per Machine suffices.
  enum class Origin : std::uint8_t { kNone, kHost, kTask, kDramReply };
  Origin origin_ = Origin::kNone;
  Stamp origin_stamp_;       ///< valid for kTask (current task's lifetime)
  Snapshot origin_snap_;     ///< valid for kDramReply
  bool origin_cont_pending_ = false;  ///< valid for kDramReply

  /// Saved origins for nested inline deliveries (Machine::deliver_inline).
  /// Stamp carries no refcount, so a plain copy is a valid save.
  struct SavedOrigin {
    Origin origin;
    Stamp stamp;
    Snapshot snap;
    bool cont_pending;
  };
  std::vector<SavedOrigin> origin_stack_;

  std::vector<MsgMeta> msg_meta_;
  std::vector<DramMeta> dram_meta_;

  std::unordered_map<std::uint64_t, ShadowCell> dram_shadow_;  ///< key: va >> 3
  std::unordered_map<std::uint64_t, ShadowCell> sp_shadow_;    ///< (lane<<32)|word
  std::unordered_map<std::uint64_t, VC> sync_clocks_;          ///< (lane<<32)|slot

  std::unordered_map<Word, PendingCont> pending_conts_;

  CheckSummary counts_;
  std::vector<CheckDiagnostic> diags_;
  std::vector<LifetimeId> leak_reported_;  ///< leaked threads already flagged
  std::vector<Word> cont_reported_;        ///< unfired conts already flagged
  static constexpr std::size_t kMaxStoredDiags = 256;
  std::uint64_t dropped_diags_ = 0;
};

}  // namespace updown
