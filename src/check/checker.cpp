#include "check/checker.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strfmt.hpp"
#include "sim/machine.hpp"

namespace updown {

namespace {
constexpr unsigned kPlainMessageOperands = 6;  ///< 64B msg: evw + cont + 6 words
}  // namespace

const char* check_kind_name(CheckKind k) {
  switch (k) {
    case CheckKind::kDataRace: return "data-race";
    case CheckKind::kSpRace: return "sp-race";
    case CheckKind::kOutOfBounds: return "out-of-bounds";
    case CheckKind::kUseAfterFree: return "use-after-free";
    case CheckKind::kBadFree: return "bad-free";
    case CheckKind::kSendToDeadThread: return "send-to-dead-thread";
    case CheckKind::kStaleDelivery: return "stale-delivery";
    case CheckKind::kBadEventWord: return "bad-event-word";
    case CheckKind::kOperandOverflow: return "operand-overflow";
    case CheckKind::kLeakedThread: return "leaked-thread";
    case CheckKind::kUndeliveredMessages: return "undelivered-messages";
    case CheckKind::kLeakedAllocation: return "leaked-allocation";
    case CheckKind::kUnfiredContinuation: return "unfired-continuation";
  }
  return "unknown";
}

Checker::Checker(Machine& m, bool sp_strict) : m_(m), sp_strict_(sp_strict) {
  // slot_lt_ grows on demand (see slot_lifetime): like the engine's lane
  // table, the shadow state is index-addressed but materializes only for
  // lanes that actually run threads.
  lifetimes_.emplace_back();  // [0] = the host (TOP core), alive forever
}

Checker::~Checker() = default;

// ---- Clock algebra ---------------------------------------------------------

std::uint32_t Checker::vc_get(const VC& vc, LifetimeId lt) {
  auto it = std::lower_bound(vc.begin(), vc.end(), lt,
                             [](const VCEntry& e, LifetimeId v) { return e.lt < v; });
  return (it != vc.end() && it->lt == lt) ? it->epoch : 0;
}

bool Checker::prunable(LifetimeId lt) const {
  if (lt == kHostLifetime) return false;
  const Lifetime& l = lifetimes_[lt];
  return !l.alive && l.refs == 0;
}

bool Checker::ordered(const Stamp& a, LifetimeId lt, const VC& vc) const {
  if (a.era < era_) return true;  // a full drain is a global barrier
  if (a.lt == lt) return true;    // same lifetime: lane-serialized chain
  return vc_get(vc, a.lt) >= a.epoch;
}

bool Checker::merge_vc(VC& dst, const VC& src, LifetimeId self) {
  bool changed = false;
  VC out;
  out.reserve(dst.size() + src.size());
  auto i = dst.begin();
  auto j = src.begin();
  while (i != dst.end() || j != src.end()) {
    if (j == src.end() || (i != dst.end() && i->lt < j->lt)) {
      // Merges double as the pruning pass: entries for dead lifetimes with
      // no outstanding stamps can never be compared again.
      if (prunable(i->lt)) changed = true;
      else out.push_back(*i);
      ++i;
    } else if (i == dst.end() || j->lt < i->lt) {
      if (j->lt != self && !prunable(j->lt)) {
        out.push_back(*j);
        changed = true;
      }
      ++j;
    } else {
      if (prunable(i->lt)) {
        changed = true;
      } else {
        VCEntry e = *i;
        if (j->epoch > e.epoch) {
          e.epoch = j->epoch;
          changed = true;
        }
        out.push_back(e);
      }
      ++i;
      ++j;
    }
  }
  if (changed) dst = std::move(out);
  return changed;
}

bool Checker::vc_upsert(VC& vc, LifetimeId lt, std::uint32_t epoch) {
  auto it = std::lower_bound(vc.begin(), vc.end(), lt,
                             [](const VCEntry& e, LifetimeId v) { return e.lt < v; });
  if (it == vc.end() || it->lt != lt) {
    vc.insert(it, VCEntry{lt, epoch});
    return true;
  }
  if (it->epoch < epoch) {
    it->epoch = epoch;
    return true;
  }
  return false;
}

void Checker::join_into(LifetimeId dst_id, const Snapshot& snap, const Stamp& src) {
  Lifetime& dst = lifetimes_[dst_id];
  bool changed = false;
  if (snap && !snap->empty()) changed = merge_vc(dst.vc, *snap, dst_id);
  if (src.lt != dst_id && src.lt != kNoLifetime && !prunable(src.lt))
    changed |= vc_upsert(dst.vc, src.lt, src.epoch);
  if (changed) dst.snap.reset();
}

const Checker::Snapshot& Checker::snapshot_of(LifetimeId lt) {
  Lifetime& l = lifetimes_[lt];
  if (!l.snap) l.snap = std::make_shared<const VC>(l.vc);
  return l.snap;
}

void Checker::stamp_ref(LifetimeId lt) {
  if (lt != kHostLifetime && lt != kNoLifetime) ++lifetimes_[lt].refs;
}

void Checker::stamp_unref(LifetimeId lt) {
  if (lt != kHostLifetime && lt != kNoLifetime) --lifetimes_[lt].refs;
}

void Checker::set_stamp(Stamp& slot, const Stamp& s) {
  stamp_ref(s.lt);
  stamp_unref(slot.lt);
  slot = s;
}

void Checker::add_reader(ShadowCell& cell, const Stamp& s) {
  for (Stamp& r : cell.readers) {
    if (r.lt == s.lt) {  // same chain: the newer epoch supersedes
      r = s;
      return;
    }
  }
  if (cell.readers.size() >= kMaxReaders) {
    stamp_unref(cell.readers.front().lt);
    cell.readers.erase(cell.readers.begin());
  }
  stamp_ref(s.lt);
  cell.readers.push_back(s);
}

// ---- Lifetimes -------------------------------------------------------------

Checker::LifetimeId Checker::new_lifetime(NetworkId nwid, ThreadId tid, EventLabel label,
                                          Tick t) {
  lifetimes_.emplace_back();
  Lifetime& l = lifetimes_.back();
  l.nwid = nwid;
  l.tid = tid;
  l.create_label = label;
  l.created_at = t;
  return static_cast<LifetimeId>(lifetimes_.size() - 1);
}

Checker::LifetimeId& Checker::slot_lifetime(NetworkId nwid, ThreadId tid) {
  if (nwid >= slot_lt_.size()) slot_lt_.resize(static_cast<std::size_t>(nwid) + 1);
  auto& v = slot_lt_[nwid];
  if (tid >= v.size()) v.resize(static_cast<std::size_t>(tid) + 1, kNoLifetime);
  return v[tid];
}

bool Checker::slot_alive(NetworkId nwid, ThreadId tid) const {
  if (nwid >= slot_lt_.size()) return false;
  const auto& v = slot_lt_[nwid];
  if (tid >= v.size()) return false;
  const LifetimeId lt = v[tid];
  return lt != kNoLifetime && lifetimes_[lt].alive;
}

// ---- Diagnostics -----------------------------------------------------------

std::string Checker::ev_name(EventLabel label) const {
  if (label == 0 || label > m_.program().size()) return strfmt("<label %u>", label);
  return m_.program().def(label).name;
}

std::string Checker::where(const Stamp& s) const {
  if (s.lt == kHostLifetime)
    return strfmt("host send @%llu", static_cast<unsigned long long>(s.tick));
  const Lifetime& l = lifetimes_[s.lt];
  return strfmt("[NWID %u][TID %u] %s @%llu", l.nwid, l.tid, ev_name(s.label).c_str(),
                static_cast<unsigned long long>(s.tick));
}

void Checker::diag(CheckDiagnostic d) {
  if (diags_.size() >= kMaxStoredDiags) {
    ++dropped_diags_;
    return;
  }
  std::fprintf(stderr, "[UDCHECK] %s %s: %s\n", d.error ? "ERROR" : "warning",
               check_kind_name(d.kind), d.message.c_str());
  diags_.push_back(std::move(d));
}

Checker::MsgMeta& Checker::msg_meta(std::uint32_t idx) {
  if (idx >= msg_meta_.size()) msg_meta_.resize(static_cast<std::size_t>(idx) + 1);
  return msg_meta_[idx];
}

Checker::DramMeta& Checker::dram_meta(std::uint32_t idx) {
  if (idx >= dram_meta_.size()) dram_meta_.resize(static_cast<std::size_t>(idx) + 1);
  return dram_meta_[idx];
}

// ---- Continuation obligations ----------------------------------------------

void Checker::register_cont(Word cont, NetworkId lane, Tick t) {
  PendingCont& p = pending_conts_[cont];
  if (p.count == 0) {
    p.first_tick = t;
    p.lane = lane;
    p.label = evw::label(cont);
  }
  ++p.count;
}

bool Checker::discharge_cont(Word w) {
  auto it = pending_conts_.find(w);
  if (it == pending_conts_.end()) return false;
  if (--it->second.count == 0) pending_conts_.erase(it);
  return true;
}

// ---- Routing hooks ---------------------------------------------------------

void Checker::on_host_send() { origin_ = Origin::kHost; }

bool Checker::on_bad_route(Word evw_word, Tick depart) {
  ++counts_.bad_event_words;
  Stamp s = origin_stamp_;
  s.tick = depart;
  diag({CheckKind::kBadEventWord, true, depart,
        origin_ == Origin::kTask ? lifetimes_[s.lt].nwid : NetworkId{0},
        origin_ == Origin::kTask ? lifetimes_[s.lt].tid : ThreadId{0},
        evw::label(evw_word), 0, 0,
        strfmt("event word 0x%llx addresses NWID %u beyond the machine's %llu lanes "
               "(sent by %s); message dropped",
               static_cast<unsigned long long>(evw_word), evw::nwid(evw_word),
               static_cast<unsigned long long>(m_.config().total_lanes()),
               origin_ == Origin::kHost ? "the host" : where(s).c_str())});
  return true;
}

void Checker::on_route_message(std::uint32_t idx, Tick depart) {
  MsgMeta& meta = msg_meta(idx);
  const Message& m = m_.shard0().msg_pool[idx];
  meta.target = kNoLifetime;
  meta.from_dram = false;
  meta.cont_pending = false;
  meta.suppress = false;

  switch (origin_) {
    case Origin::kDramReply:
      meta.stamp = origin_stamp_;
      meta.snap = origin_snap_;
      meta.from_dram = true;
      meta.cont_pending = origin_cont_pending_;
      break;
    case Origin::kTask: {
      Lifetime& l = lifetimes_[origin_stamp_.lt];
      meta.stamp = origin_stamp_;
      meta.stamp.epoch = l.epoch;
      meta.stamp.era = era_;
      meta.stamp.tick = depart;
      meta.snap = snapshot_of(origin_stamp_.lt);
      ++l.epoch;  // release: later accesses in this task are not covered
      break;
    }
    case Origin::kHost:
    case Origin::kNone:
    default: {
      Lifetime& h = lifetimes_[kHostLifetime];
      meta.stamp = Stamp{kHostLifetime, h.epoch, era_, 0, depart};
      meta.snap = snapshot_of(kHostLifetime);
      ++h.epoch;
      break;
    }
  }

  if (!meta.from_dram) {
    // Sending to a continuation word fires the obligation; passing a pending
    // continuation along as this message's cont transfers it (the receiver
    // re-registers it at delivery).
    discharge_cont(m.evw);
    if (m.cont != IGNRCONT) discharge_cont(m.cont);

    if (m.nops > kPlainMessageOperands) {
      ++counts_.operand_overflows;
      diag({CheckKind::kOperandOverflow, true, depart, evw::nwid(m.evw), evw::tid(m.evw),
            evw::label(m.evw), 0, 0,
            strfmt("message to %s carries %u operands; plain messages are 64 bytes "
                   "(6 operands max, only DRAM replies carry 8) — sent by %s",
                   ev_name(evw::label(m.evw)).c_str(), m.nops, where(meta.stamp).c_str())});
    }
  }

  if (!evw::is_new_thread(m.evw)) {
    const NetworkId dst = evw::nwid(m.evw);
    const ThreadId tid = evw::tid(m.evw);
    if (!slot_alive(dst, tid)) {
      ++counts_.dead_thread_sends;
      diag({CheckKind::kSendToDeadThread, true, depart, dst, tid, evw::label(m.evw), 0, 0,
            strfmt("event %s addressed to dead thread context [NWID %u][TID %u] "
                   "(sent by %s); delivery suppressed",
                   ev_name(evw::label(m.evw)).c_str(), dst, tid,
                   where(meta.stamp).c_str())});
      meta.suppress = true;
    } else {
      meta.target = slot_lt_[dst][tid];
    }
  }
}

void Checker::on_route_dram(std::uint32_t idx, bool addr_mapped, Tick depart) {
  DramMeta& meta = dram_meta(idx);
  const DramRequest& r = m_.shard0().dram_pool[idx];
  switch (origin_) {
    case Origin::kTask: {
      Lifetime& l = lifetimes_[origin_stamp_.lt];
      meta.stamp = origin_stamp_;
      meta.stamp.epoch = l.epoch;
      meta.stamp.era = era_;
      meta.stamp.tick = depart;
      meta.snap = snapshot_of(origin_stamp_.lt);
      ++l.epoch;
      break;
    }
    default: {  // DRAM traffic normally originates in tasks; host is the fallback
      Lifetime& h = lifetimes_[kHostLifetime];
      meta.stamp = Stamp{kHostLifetime, h.epoch, era_, 0, depart};
      meta.snap = snapshot_of(kHostLifetime);
      ++h.epoch;
      break;
    }
  }
  meta.addr_mapped = addr_mapped;
  meta.cont_pending =
      r.reply_evw != 0 && r.reply_cont != IGNRCONT && discharge_cont(r.reply_cont);
  // The in-flight request pins the requester's lifetime: its clock entries in
  // other threads must survive until the access is stamped into shadow state,
  // or a prune would turn an ordered access into a false race.
  stamp_ref(meta.stamp.lt);
  meta.holds_ref = true;
}

// ---- Delivery / execution hooks --------------------------------------------

bool Checker::on_pre_deliver(std::uint32_t idx, Tick start) {
  MsgMeta& meta = msg_meta(idx);
  const Message& m = m_.shard0().msg_pool[idx];
  if (meta.suppress) {
    meta.snap.reset();
    return false;
  }
  const EventLabel label = evw::label(m.evw);
  if (label == 0 || label > m_.program().size()) {
    ++counts_.bad_event_words;
    diag({CheckKind::kBadEventWord, true, start, evw::nwid(m.evw), evw::tid(m.evw), label,
          0, 0,
          strfmt("event word 0x%llx carries invalid label %u (program has %zu events); "
                 "sent by %s",
                 static_cast<unsigned long long>(m.evw), label, m_.program().size(),
                 where(meta.stamp).c_str())});
    meta.snap.reset();
    return false;
  }
  if (!evw::is_new_thread(m.evw)) {
    const NetworkId lane = evw::nwid(m.evw);
    const ThreadId tid = evw::tid(m.evw);
    if (!slot_alive(lane, tid)) {
      ++counts_.dead_thread_sends;
      diag({CheckKind::kSendToDeadThread, true, start, lane, tid, label, 0, 0,
            strfmt("event %s delivered to [NWID %u][TID %u], but the thread "
                   "terminated while the message was in flight (sent by %s)",
                   ev_name(label).c_str(), lane, tid, where(meta.stamp).c_str())});
      meta.snap.reset();
      return false;
    }
    if (meta.target != kNoLifetime && slot_lt_[lane][tid] != meta.target) {
      const Lifetime& cur = lifetimes_[slot_lt_[lane][tid]];
      ++counts_.stale_deliveries;
      diag({CheckKind::kStaleDelivery, true, start, lane, tid, label, 0, 0,
            strfmt("stale delivery of %s to [NWID %u][TID %u]: the addressed thread "
                   "died and its context was recycled (now a %s thread created @%llu); "
                   "sent by %s",
                   ev_name(label).c_str(), lane, tid, ev_name(cur.create_label).c_str(),
                   static_cast<unsigned long long>(cur.created_at),
                   where(meta.stamp).c_str())});
      meta.snap.reset();
      return false;
    }
  }
  return true;
}

void Checker::on_class_mismatch(std::uint32_t idx, NetworkId lane, ThreadId tid,
                                Tick start) {
  MsgMeta& meta = msg_meta(idx);
  const Message& m = m_.shard0().msg_pool[idx];
  const EventLabel label = evw::label(m.evw);
  ++counts_.bad_event_words;
  diag({CheckKind::kBadEventWord, true, start, lane, tid, label, 0, 0,
        strfmt("event %s delivered to [NWID %u][TID %u], a thread of another class; "
               "sent by %s — delivery suppressed",
               ev_name(label).c_str(), lane, tid, where(meta.stamp).c_str())});
  meta.snap.reset();
}

void Checker::on_task_begin(std::uint32_t idx, NetworkId lane, ThreadId tid,
                            EventLabel label, Tick start, bool new_thread) {
  MsgMeta meta = std::move(msg_meta(idx));  // take the snapshot out of the slot
  LifetimeId lt;
  if (new_thread) {
    lt = new_lifetime(lane, tid, label, start);
    slot_lifetime(lane, tid) = lt;
  } else {
    lt = slot_lifetime(lane, tid);
  }
  join_into(lt, meta.snap, meta.stamp);

  const Message& m = m_.shard0().msg_pool[idx];
  if (m.cont != IGNRCONT && (!meta.from_dram || meta.cont_pending))
    register_cont(m.cont, lane, start);

  origin_ = Origin::kTask;
  origin_stamp_ = Stamp{lt, lifetimes_[lt].epoch, era_, label, start};
  origin_snap_.reset();
}

void Checker::on_task_end(NetworkId lane, ThreadId tid, bool terminated) {
  if (terminated) {
    const LifetimeId lt = slot_lifetime(lane, tid);
    Lifetime& l = lifetimes_[lt];
    l.alive = false;
    VC().swap(l.vc);  // free the clock; outstanding stamps keep epoch/refs
    l.snap.reset();
  }
  origin_ = Origin::kNone;
}

bool Checker::on_dram_exec(std::uint32_t idx, Tick now) {
  DramMeta& meta = dram_meta(idx);
  const DramRequest& r = m_.shard0().dram_pool[idx];
  const GlobalMemory& mem = m_.memory();

  // 1. Lifetime sanitize: every word of the request must fall in a live
  //    region (a request may legally span two adjacent regions only if both
  //    are live). The common whole-request-in-one-region case is one lookup.
  const SwizzleDescriptor* d = mem.find_live(r.addr);
  const Addr end = r.addr + 8ull * r.nwords;
  if (!(d && end <= d->end())) {
    for (unsigned i = 0; i < r.nwords; ++i) {
      const Addr va = r.addr + 8ull * i;
      if (mem.find_live(va)) continue;
      const char* op = r.is_write ? "write" : "read";
      if (const FreedRegion* f = mem.find_freed(va)) {
        ++counts_.use_after_free;
        diag({CheckKind::kUseAfterFree, true, now,
              meta.stamp.lt == kHostLifetime ? NetworkId{0} : lifetimes_[meta.stamp.lt].nwid,
              meta.stamp.lt == kHostLifetime ? ThreadId{0} : lifetimes_[meta.stamp.lt].tid,
              meta.stamp.label, va, f->alloc_seq,
              strfmt("use-after-free: DRAM %s of %u word(s) at va=0x%llx hits freed "
                     "region alloc #%llu [0x%llx, 0x%llx) retired by free #%llu; "
                     "requested by %s — access suppressed",
                     op, r.nwords, static_cast<unsigned long long>(va),
                     static_cast<unsigned long long>(f->alloc_seq),
                     static_cast<unsigned long long>(f->base),
                     static_cast<unsigned long long>(f->base + f->size),
                     static_cast<unsigned long long>(f->free_seq),
                     where(meta.stamp).c_str())});
      } else {
        ++counts_.out_of_bounds;
        diag({CheckKind::kOutOfBounds, true, now,
              meta.stamp.lt == kHostLifetime ? NetworkId{0} : lifetimes_[meta.stamp.lt].nwid,
              meta.stamp.lt == kHostLifetime ? ThreadId{0} : lifetimes_[meta.stamp.lt].tid,
              meta.stamp.label, va, 0,
              strfmt("out-of-bounds DRAM %s of %u word(s) at va=0x%llx: no live "
                     "translation descriptor covers it; requested by %s — access "
                     "suppressed",
                     op, r.nwords, static_cast<unsigned long long>(va),
                     where(meta.stamp).c_str())});
      }
      return false;  // one diagnostic per request; suppress the whole access
    }
  }

  // 2. Race-check each word at the requester's send-time clock.
  Stamp cur = meta.stamp;
  cur.tick = now;
  static const VC kEmptyVC;
  const VC& vc = meta.snap ? *meta.snap : kEmptyVC;
  for (unsigned i = 0; i < r.nwords; ++i) {
    const Addr va = r.addr + 8ull * i;
    check_access(dram_shadow_[va >> 3], cur, vc, r.is_write, false, va);
  }
  return true;
}

void Checker::begin_dram_reply(std::uint32_t idx) {
  DramMeta& meta = dram_meta(idx);
  origin_ = Origin::kDramReply;
  origin_stamp_ = meta.stamp;
  origin_snap_ = meta.snap;
  origin_cont_pending_ = meta.cont_pending;
}

void Checker::on_dram_done(std::uint32_t idx) {
  DramMeta& meta = dram_meta(idx);
  if (meta.holds_ref) {
    stamp_unref(meta.stamp.lt);
    meta.holds_ref = false;
  }
  meta.snap.reset();
  origin_ = Origin::kNone;
  origin_snap_.reset();
}

bool Checker::on_sp_access(NetworkId lane, std::uint64_t offset, std::size_t bytes,
                           bool is_write, Tick now) {
  if (offset + bytes > m_.config().scratchpad_bytes) {
    ++counts_.out_of_bounds;
    const NetworkId nw = origin_ == Origin::kTask ? lifetimes_[origin_stamp_.lt].nwid : lane;
    const ThreadId td = origin_ == Origin::kTask ? lifetimes_[origin_stamp_.lt].tid : 0;
    diag({CheckKind::kOutOfBounds, true, now, nw, td, origin_stamp_.label, offset, 0,
          strfmt("scratchpad %s at offset 0x%llx (+%zu) beyond the lane's %llu-byte "
                 "scratchpad, in %s — access suppressed",
                 is_write ? "write" : "read", static_cast<unsigned long long>(offset),
                 bytes, static_cast<unsigned long long>(m_.config().scratchpad_bytes),
                 where(origin_stamp_).c_str())});
    return false;
  }
  if (sp_strict_ && origin_ == Origin::kTask) {
    Stamp cur = origin_stamp_;
    cur.epoch = lifetimes_[cur.lt].epoch;
    cur.era = era_;
    cur.tick = now;
    const VC& vc = lifetimes_[cur.lt].vc;
    const std::uint64_t key = (static_cast<std::uint64_t>(lane) << 32) | (offset >> 3);
    check_access(sp_shadow_[key], cur, vc, is_write, true, offset);
  }
  return true;
}

void Checker::on_sync_release(NetworkId lane, std::uint64_t slot) {
  if (origin_ != Origin::kTask) return;
  VC& cell = sync_clocks_[(static_cast<std::uint64_t>(lane) << 32) | slot];
  Lifetime& l = lifetimes_[origin_stamp_.lt];
  merge_vc(cell, l.vc, kNoLifetime);
  vc_upsert(cell, origin_stamp_.lt, l.epoch);
  ++l.epoch;  // release: later accesses are not published through this cell
}

void Checker::on_sync_acquire(NetworkId lane, std::uint64_t slot) {
  if (origin_ != Origin::kTask) return;
  const auto it = sync_clocks_.find((static_cast<std::uint64_t>(lane) << 32) | slot);
  if (it == sync_clocks_.end()) return;
  Lifetime& l = lifetimes_[origin_stamp_.lt];
  if (merge_vc(l.vc, it->second, origin_stamp_.lt)) l.snap.reset();
}

void Checker::push_origin() {
  origin_stack_.push_back(
      SavedOrigin{origin_, origin_stamp_, origin_snap_, origin_cont_pending_});
}

void Checker::pop_origin() {
  const SavedOrigin& s = origin_stack_.back();
  origin_ = s.origin;
  origin_stamp_ = s.stamp;
  origin_snap_ = s.snap;
  origin_cont_pending_ = s.cont_pending;
  origin_stack_.pop_back();
}

void Checker::check_access(ShadowCell& cell, const Stamp& cur, const VC& vc,
                           bool is_write, bool is_sp, Addr va) {
  const auto racy = [&](const Stamp& prev) {
    return prev.lt != kNoLifetime && !ordered(prev, cur.lt, vc);
  };
  const Stamp* conflict = nullptr;
  bool conflict_write = false;
  if (racy(cell.write)) {
    conflict = &cell.write;
    conflict_write = true;
  } else if (is_write) {
    for (const Stamp& r : cell.readers) {
      if (racy(r)) {
        conflict = &r;
        break;
      }
    }
  }
  if (conflict) {
    std::uint64_t& counter = is_sp ? counts_.sp_races : counts_.data_races;
    ++counter;
    const Lifetime& l = lifetimes_[cur.lt];
    diag({is_sp ? CheckKind::kSpRace : CheckKind::kDataRace, true, cur.tick, l.nwid,
          l.tid, cur.label, va, 0,
          strfmt("%s on %s %s=0x%llx: %s by %s is unordered with %s by %s",
                 is_sp ? "ordering hazard" : "data race",
                 is_sp ? "scratchpad" : "DRAM", is_sp ? "offset" : "va",
                 static_cast<unsigned long long>(va), is_write ? "write" : "read",
                 where(cur).c_str(), conflict_write ? "write" : "read",
                 where(*conflict).c_str())});
  }
  if (is_write) {
    set_stamp(cell.write, cur);
    for (const Stamp& r : cell.readers) stamp_unref(r.lt);
    cell.readers.clear();
  } else {
    add_reader(cell, cur);
  }
}

// ---- MemoryObserver ---------------------------------------------------------

void Checker::on_alloc(const SwizzleDescriptor&) {}

void Checker::on_free(const SwizzleDescriptor&, std::uint64_t) {
  // Freed VAs are never re-allocated (the VA brk only grows), so stale shadow
  // cells in the region are harmless: any later touch is flagged as a
  // use-after-free before the race check runs.
}

void Checker::on_bad_free(Addr base, bool double_free, const std::string& detail) {
  ++counts_.bad_frees;
  const std::string head = detail.substr(0, detail.find('\n'));
  diag({CheckKind::kBadFree, true, m_.now(), 0, 0, 0, base, 0,
        double_free ? head : head + " (never a dram_malloc result)"});
}

// ---- Reporting --------------------------------------------------------------

void Checker::report() {
  // Leaked threads: in this DSL a handler return is an implicit yield that
  // keeps the context allocated; a thread nothing ever terminates surfaces
  // here as a quiescence leak.
  for (NetworkId nw = 0; nw < slot_lt_.size(); ++nw) {
    for (ThreadId tid = 0; tid < slot_lt_[nw].size(); ++tid) {
      const LifetimeId lt = slot_lt_[nw][tid];
      if (lt == kNoLifetime || !lifetimes_[lt].alive) continue;
      if (std::find(leak_reported_.begin(), leak_reported_.end(), lt) !=
          leak_reported_.end())
        continue;
      leak_reported_.push_back(lt);
      ++counts_.leaked_threads;
      const Lifetime& l = lifetimes_[lt];
      diag({CheckKind::kLeakedThread, true, m_.now(), nw, tid, l.create_label, 0, 0,
            strfmt("thread context [NWID %u][TID %u] (%s thread created @%llu) is "
                   "still live at drain: some handler returned without "
                   "yield_terminate and nothing will ever address it again",
                   nw, tid, ev_name(l.create_label).c_str(),
                   static_cast<unsigned long long>(l.created_at))});
    }
  }

  // Fresh drain-state gauges (recomputed each report, not accumulated).
  counts_.undelivered_messages = m_.idle() ? 0 : m_.shard0().queue.size();
  if (counts_.undelivered_messages) {
    diag({CheckKind::kUndeliveredMessages, true, m_.now(), 0, 0, 0, 0, 0,
          strfmt("report with %llu message(s) still queued: the machine is not "
                 "quiescent",
                 static_cast<unsigned long long>(counts_.undelivered_messages))});
  }
  counts_.leaked_allocations = m_.memory().live_descriptors().size();
  counts_.unfired_continuations = 0;
  for (const auto& [w, p] : pending_conts_) {
    counts_.unfired_continuations += p.count;
    if (std::find(cont_reported_.begin(), cont_reported_.end(), w) !=
        cont_reported_.end())
      continue;
    cont_reported_.push_back(w);
    diag({CheckKind::kUnfiredContinuation, false, m_.now(), p.lane, 0, p.label, 0, 0,
          strfmt("continuation word 0x%llx (-> %s) first delivered @%llu on NWID %u "
                 "was never fired (%u obligation(s)): the caller's return event "
                 "will not run",
                 static_cast<unsigned long long>(w), ev_name(p.label).c_str(),
                 static_cast<unsigned long long>(p.first_tick), p.lane, p.count)});
  }

  counts_.enabled = true;
  counts_.sp_strict = sp_strict_;
  m_.stats_.check = counts_;

  if (counts_.errors() || dropped_diags_) {
    std::fprintf(stderr,
                 "[UDCHECK] summary: %llu error(s), %llu warning(s)%s\n",
                 static_cast<unsigned long long>(counts_.errors()),
                 static_cast<unsigned long long>(counts_.warnings()),
                 dropped_diags_ ? strfmt(" (%llu diagnostics dropped)",
                                         static_cast<unsigned long long>(dropped_diags_))
                                      .c_str()
                                : "");
  }

  // A full drain is a global barrier: everything executed before it
  // happens-before everything after, so cross-phase host driving can never
  // race with the previous phase. Sync cells carry no cross-era information.
  ++era_;
  sync_clocks_.clear();
}

}  // namespace updown
