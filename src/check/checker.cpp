#include "check/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/strfmt.hpp"
#include "sim/machine.hpp"

namespace updown {

namespace {
constexpr unsigned kPlainMessageOperands = 6;  ///< 64B msg: evw + cont + 6 words
}  // namespace

const char* check_kind_name(CheckKind k) {
  switch (k) {
    case CheckKind::kDataRace: return "data-race";
    case CheckKind::kSpRace: return "sp-race";
    case CheckKind::kOutOfBounds: return "out-of-bounds";
    case CheckKind::kUseAfterFree: return "use-after-free";
    case CheckKind::kBadFree: return "bad-free";
    case CheckKind::kSendToDeadThread: return "send-to-dead-thread";
    case CheckKind::kStaleDelivery: return "stale-delivery";
    case CheckKind::kBadEventWord: return "bad-event-word";
    case CheckKind::kOperandOverflow: return "operand-overflow";
    case CheckKind::kLeakedThread: return "leaked-thread";
    case CheckKind::kUndeliveredMessages: return "undelivered-messages";
    case CheckKind::kLeakedAllocation: return "leaked-allocation";
    case CheckKind::kUnfiredContinuation: return "unfired-continuation";
  }
  return "unknown";
}

Checker::Checker(Machine& m, bool sp_strict, std::uint32_t nshards)
    : m_(m), sp_strict_(sp_strict), nshards_(nshards) {
  // slot_lt_ / sp_shadow_ grow on demand (see slot_lifetime, sp_cell): like
  // the engine's lane table, the shadow state is index-addressed but
  // materializes only for lanes that actually run threads.
  lifetimes_.emplace_back();  // [0] = the host (TOP core), alive forever
  logs_.resize(nshards_);
}

Checker::~Checker() = default;

// ---- Clock algebra ---------------------------------------------------------

std::uint32_t Checker::vc_get(const VC& vc, LifetimeId lt) {
  auto it = std::lower_bound(vc.begin(), vc.end(), lt,
                             [](const VCEntry& e, LifetimeId v) { return e.lt < v; });
  return (it != vc.end() && it->lt == lt) ? it->epoch : 0;
}

bool Checker::prunable(LifetimeId lt) const {
  if (lt == kHostLifetime) return false;
  const Lifetime& l = lifetimes_[lt];
  return !l.alive && l.refs == 0;
}

bool Checker::dead_entry(const VCEntry& e) const {
  if (e.lt == kHostLifetime) return false;
  const Lifetime& l = lifetimes_[e.lt];
  // Dead+unreferenced: no stamp of this occupancy can ever be compared again
  // (stamps hold refs). Below base_epoch: the entry belongs to an earlier
  // occupancy of a recycled id, and every stamp of the current occupancy has
  // an epoch at or above base_epoch — the entry can only under-order, so
  // dropping it is sound (conservative).
  return (!l.alive && l.refs == 0) || e.epoch < l.base_epoch;
}

bool Checker::ordered(const Stamp& a, LifetimeId lt, const ClockView& view) const {
  if (a.era < era_) return true;  // a full drain is a global barrier
  if (a.lt == lt) return true;    // same lifetime: lane-serialized chain
  // Host-chain knowledge lives in a dedicated scalar (VCs never hold host
  // entries — see Lifetime::host_ep).
  if (a.lt == kHostLifetime) return view.host_ep >= a.epoch;
  // The FastTrack inline entries next: the observer's most recent acquires
  // are by far the likeliest entries to order against. A stale inline entry
  // (an earlier occupancy of a recycled id) cannot falsely order: any
  // comparable stamp of the current occupancy sits at or above base_epoch,
  // which exceeds the stale epoch.
  if (view.ext.e1.lt == a.lt && view.ext.e1.epoch >= a.epoch) return true;
  if (view.ext.e0.lt == a.lt && view.ext.e0.epoch >= a.epoch) return true;
  return vc_get(*view.vc, a.lt) >= a.epoch;
}

bool Checker::merge_would_change(const VC& dst, const VC& src, LifetimeId self) const {
  // Scan-only (no allocation): would the merge change dst at all? Clocks on
  // the hot path are 1-3 entries and usually already absorbed, so the common
  // case is a short scan and an early return.
  auto i = dst.cbegin();
  auto j = src.cbegin();
  while (i != dst.cend() || j != src.cend()) {
    if (j == src.cend() || (i != dst.cend() && i->lt < j->lt)) {
      if (dead_entry(*i)) return true;
      ++i;
    } else if (i == dst.cend() || j->lt < i->lt) {
      if (j->lt != self && !dead_entry(*j)) return true;
      ++j;
    } else {
      if (dead_entry(*i) || j->epoch > i->epoch) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

void Checker::merge_build(VC& out, const VC& dst, const VC& src, LifetimeId self) const {
  auto i = dst.cbegin();
  auto j = src.cbegin();
  while (i != dst.cend() || j != src.cend()) {
    if (j == src.cend() || (i != dst.cend() && i->lt < j->lt)) {
      // Merges double as the pruning pass: dead/stale entries can never be
      // compared again.
      if (!dead_entry(*i)) out.push_back(*i);
      ++i;
    } else if (i == dst.cend() || j->lt < i->lt) {
      if (j->lt != self && !dead_entry(*j)) out.push_back(*j);
      ++j;
    } else {
      // Deadness is per-entry, not per-id: a recycled id can pair a stale
      // old-occupancy entry (epoch < base_epoch) in dst with a live
      // current-occupancy entry in src. Judge the max-epoch winner, so a
      // stale loser never drags a live entry down with it.
      VCEntry e = *i;
      if (j->epoch > e.epoch) e.epoch = j->epoch;
      if (!dead_entry(e)) out.push_back(e);
      ++i;
      ++j;
    }
  }
}

bool Checker::merge_vc(VC& dst, const VC& src, LifetimeId self) {
  if (!merge_would_change(dst, src, self)) return false;
  scratch_vc_.clear();
  scratch_vc_.reserve(dst.size() + src.size());
  merge_build(scratch_vc_, dst, src, self);
  dst.swap(scratch_vc_);  // dst keeps the result; scratch keeps dst's buffer
  return true;
}

bool Checker::vc_upsert(VC& vc, LifetimeId lt, std::uint32_t epoch) {
  auto it = std::lower_bound(vc.begin(), vc.end(), lt,
                             [](const VCEntry& e, LifetimeId v) { return e.lt < v; });
  if (it == vc.end() || it->lt != lt) {
    vc.insert(it, VCEntry{lt, epoch});
    return true;
  }
  if (it->epoch < epoch) {
    it->epoch = epoch;
    return true;
  }
  return false;
}

// ---- Snapshot pool ---------------------------------------------------------

const Checker::VC& Checker::snap_vc(SnapId id) const {
  static const VC kEmptyVC;
  return id == kNoSnap ? kEmptyVC : snap_pool_[id].vc;
}

void Checker::snap_ref(SnapId id) {
  if (id != kNoSnap) ++snap_pool_[id].refs;
}

void Checker::snap_unref(SnapId id) {
  if (id == kNoSnap) return;
  SnapSlot& s = snap_pool_[id];
  if (s.refs > 0 && --s.refs == 0) {
    s.vc.clear();  // capacity is retained for the slot's next tenancy
    snap_free_.push_back(id);
  }
}

Checker::SnapId Checker::snap_new() {
  if (!snap_free_.empty()) {
    const SnapId id = snap_free_.back();
    snap_free_.pop_back();
    snap_pool_[id].refs = 1;
    return id;
  }
  snap_pool_.emplace_back();
  snap_pool_.back().refs = 1;
  return static_cast<SnapId>(snap_pool_.size() - 1);
}

void Checker::snap_clear(SnapId& slot) {
  snap_unref(slot);
  slot = kNoSnap;
}

void Checker::snap_assign(SnapId& slot, SnapId v) {
  snap_ref(v);
  snap_unref(slot);
  slot = v;
}

void Checker::clock_join(LifetimeId lt_id, const VC& src, const Stamp* stamp) {
  Lifetime& l = lifetimes_[lt_id];
  const VC& cur = snap_vc(l.clock);
  const bool up = stamp != nullptr && stamp->lt != lt_id && stamp->lt != kNoLifetime &&
                  !prunable(stamp->lt) && vc_get(cur, stamp->lt) < stamp->epoch;
  if (!up && !merge_would_change(cur, src, lt_id)) return;
  // Build the merged clock in the scratch buffer *before* snap_new: `cur` and
  // `src` may point into snap_pool_, which snap_new can reallocate.
  scratch_vc_.clear();
  scratch_vc_.reserve(cur.size() + src.size() + 1);
  merge_build(scratch_vc_, cur, src, lt_id);
  if (up) vc_upsert(scratch_vc_, stamp->lt, stamp->epoch);
  const SnapId ns = snap_new();
  snap_pool_[ns].vc.swap(scratch_vc_);  // scratch inherits the slot's old buffer
  snap_unref(l.clock);
  l.clock = ns;
}

void Checker::absorb(LifetimeId dst_id, VCEntry e) {
  if (e.lt == dst_id || e.lt == kNoLifetime) return;
  Lifetime& l = lifetimes_[dst_id];
  if (e.lt == kHostLifetime) {  // host chain: the dedicated scalar, never a VC
    if (e.epoch > l.host_ep) l.host_ep = e.epoch;
    return;
  }
  if (dead_entry(e)) return;
  if (l.last.e1.lt == e.lt) {  // repeat sender: bump the inline entry in place
    if (e.epoch > l.last.e1.epoch) l.last.e1.epoch = e.epoch;
    return;
  }
  if (l.last.e0.lt == e.lt) {
    if (e.epoch > l.last.e0.epoch) l.last.e0.epoch = e.epoch;
    return;
  }
  if (l.last.e1.lt == kNoLifetime || dead_entry(l.last.e1)) {
    l.last.e1 = e;
    return;
  }
  if (l.last.e0.lt == kNoLifetime || dead_entry(l.last.e0)) {
    // Keep recency order: e1 is the newer acquire, so the incoming entry
    // takes e1 and the survivor moves down to e0.
    l.last.e0 = l.last.e1;
    l.last.e1 = e;
    return;
  }
  if (vc_get(snap_vc(l.clock), e.lt) >= e.epoch) return;  // already known
  // Genuine fan-in: a third live concurrent edge. Spill the oldest inline
  // entry into the pooled clock and keep the two most recent inline (the
  // most recent acquires are the likeliest to repeat).
  const VCEntry spill = l.last.e0;
  l.last.e0 = l.last.e1;
  l.last.e1 = e;
  if (l.clock != kNoSnap && snap_pool_[l.clock].refs == 1) {
    // The slot is exclusively ours (no snapshot pinned): upsert in place
    // instead of rebuilding. A chain of single-successor threads then reuses
    // one slot for its whole length, one sorted insert per spill. Dead-entry
    // pruning (a rebuild side effect) is amortized explicitly.
    VC& vc = snap_pool_[l.clock].vc;
    // Prune exactly when the buffer is about to grow: amortized O(1) per
    // spill, and a successful prune avoids the reallocation outright.
    if (vc.size() == vc.capacity() && !vc.empty()) prune_dead(vc);
    vc_upsert(vc, spill.lt, spill.epoch);
    return;
  }
  Stamp s;
  s.lt = spill.lt;
  s.epoch = spill.epoch;
  clock_join(dst_id, snap_vc(kNoSnap), &s);
}

void Checker::prune_dead(VC& vc) const {
  vc.erase(std::remove_if(vc.begin(), vc.end(),
                          [this](const VCEntry& e) { return dead_entry(e); }),
           vc.end());
}

void Checker::join_into(LifetimeId dst_id, SnapId snap, const InlineVC& ext,
                        std::uint32_t host_ep, const Stamp& src) {
  // `snap` arrives OWNED: the caller's pool ref transfers here, and this
  // function either keeps it (adoption) or releases it.
  Lifetime& l = lifetimes_[dst_id];
  const bool fresh = l.clock == kNoSnap && l.last.e1.lt == kNoLifetime;
  const VC& sv = snap_vc(snap);
  if (sv.empty() || snap == l.clock) {
    snap_unref(snap);  // nothing to learn (or a self round trip)
  } else if (l.clock == kNoSnap) {
    // Fresh receiver (the dominant case: a task spawned into a brand-new
    // thread context): adopt the sender's snapshot, inheriting the caller's
    // ref. No scan, no copy, no allocation — and if no other snapshot pins
    // the slot, later spills may extend it in place (see absorb).
    l.clock = snap;
  } else {
    clock_join(dst_id, sv, nullptr);
    snap_unref(snap);
  }
  if (host_ep > l.host_ep) l.host_ep = host_ep;
  if (fresh) {
    // A never-written inline window can take the sender's verbatim: it is
    // already deduped and host-free (absorb maintains both invariants), and
    // every claim in it transfers transitively through this message. Stale
    // entries it may carry are vacuous (epoch < that slot's base_epoch), so
    // skipping the per-entry deadness probe here trades two random Lifetime
    // loads per message for nothing but slot hygiene.
    l.last = ext;
  } else {
    // Oldest to newest, so absorb's spill policy keeps the freshest inline.
    if (ext.e0.lt != kNoLifetime) absorb(dst_id, ext.e0);
    if (ext.e1.lt != kNoLifetime) absorb(dst_id, ext.e1);
  }
  if (src.lt != kNoLifetime && !prunable(src.lt))
    absorb(dst_id, VCEntry{src.lt, src.epoch});
}

Checker::SnapId Checker::clock_snapshot(LifetimeId lt) {
  // Clocks are immutable pool slots, so "snapshotting" a sender's clock for a
  // message in flight is a refcount bump — no copy, no allocation.
  const SnapId id = lifetimes_[lt].clock;
  snap_ref(id);
  return id;
}

void Checker::stamp_ref(LifetimeId lt) {
  if (lt != kHostLifetime && lt != kNoLifetime) ++lifetimes_[lt].refs;
}

void Checker::stamp_unref(LifetimeId lt) {
  if (lt == kHostLifetime || lt == kNoLifetime) return;
  Lifetime& l = lifetimes_[lt];
  if (l.refs > 0 && --l.refs == 0 && !l.alive && !l.retired)
    retire(lt);
}

void Checker::set_stamp(Stamp& slot, const Stamp& s) {
  stamp_ref(s.lt);
  stamp_unref(slot.lt);
  slot = s;
}

void Checker::add_reader(ShadowCell& cell, const Stamp& s, const ClockView& view) {
  if (cell.read0.lt == s.lt) {  // same chain: the newer epoch supersedes
    cell.read0 = s;
    return;
  }
  if (cell.read0.lt == kNoLifetime) {
    stamp_ref(s.lt);
    cell.read0 = s;
    return;
  }
  if (cell.overflow == kNoOverflow) {
    // If the resident reader happens-before the new one, the new reader
    // supersedes it: any later write ordered after the new reader is ordered
    // after the old one too (transitivity), so no race is lost.
    if (ordered(cell.read0, s.lt, view)) {
      set_stamp(cell.read0, s);
      return;
    }
    // Genuinely concurrent second reader: promote to a pooled overflow list.
    std::uint32_t slot;
    if (!reader_pool_free_.empty()) {
      slot = reader_pool_free_.back();
      reader_pool_free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(reader_pool_.size());
      reader_pool_.emplace_back();
      note_shadow_bytes(kMaxReaders * sizeof(Stamp));
    }
    cell.overflow = slot;
    auto& rs = reader_pool_[slot];
    rs.clear();
    stamp_ref(s.lt);
    rs.push_back(s);
    return;
  }
  auto& rs = reader_pool_[cell.overflow];
  for (Stamp& r : rs) {
    if (r.lt == s.lt) {
      r = s;
      return;
    }
  }
  if (1 + rs.size() >= kMaxReaders) {
    stamp_unref(rs.front().lt);
    rs.erase(rs.begin());
  }
  stamp_ref(s.lt);
  rs.push_back(s);
}

void Checker::clear_readers(ShadowCell& cell) {
  if (cell.read0.lt != kNoLifetime) {
    stamp_unref(cell.read0.lt);
    cell.read0.lt = kNoLifetime;
  }
  if (cell.overflow != kNoOverflow) {
    auto& rs = reader_pool_[cell.overflow];
    for (const Stamp& r : rs) stamp_unref(r.lt);
    rs.clear();
    reader_pool_free_.push_back(cell.overflow);
    cell.overflow = kNoOverflow;
  }
}

// ---- Lifetimes -------------------------------------------------------------

Checker::LifetimeId Checker::new_lifetime(NetworkId nwid, ThreadId tid, EventLabel label,
                                          Tick t) {
  LifetimeId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    lifetimes_.emplace_back();
    id = static_cast<LifetimeId>(lifetimes_.size() - 1);
  }
  Lifetime& l = lifetimes_[id];
  // epoch and base_epoch continue across occupancies: every stamp of this
  // occupancy sits at or above base_epoch, which is what keeps un-refcounted
  // clock entries from earlier occupancies recognizably stale.
  snap_clear(l.clock);
  l.last = InlineVC{};
  l.host_ep = 0;
  l.refs = 0;
  l.alive = true;
  l.retired = false;
  l.nwid = nwid;
  l.tid = tid;
  l.create_label = label;
  l.created_at = t;
  l.create_seq = ++create_seq_;
  return id;
}

void Checker::retire(LifetimeId lt) {
  Lifetime& l = lifetimes_[lt];
  l.base_epoch = l.epoch;
  snap_clear(l.clock);
  if (l.nwid < slot_lt_.size()) {
    auto& v = slot_lt_[l.nwid];
    if (l.tid < v.size() && v[l.tid] == lt) v[l.tid] = kNoLifetime;
  }
  l.retired = true;
  free_ids_.push_back(lt);
}

void Checker::maybe_retire(LifetimeId lt) {
  if (lt == kHostLifetime || lt == kNoLifetime) return;
  Lifetime& l = lifetimes_[lt];
  if (!l.alive && l.refs == 0 && !l.retired) retire(lt);
}

Checker::LifetimeId& Checker::slot_lifetime(NetworkId nwid, ThreadId tid) {
  if (nwid >= slot_lt_.size()) slot_lt_.resize(static_cast<std::size_t>(nwid) + 1);
  auto& v = slot_lt_[nwid];
  if (tid >= v.size()) v.resize(static_cast<std::size_t>(tid) + 1, kNoLifetime);
  return v[tid];
}

bool Checker::slot_alive(NetworkId nwid, ThreadId tid) const {
  if (nwid >= slot_lt_.size()) return false;
  const auto& v = slot_lt_[nwid];
  if (tid >= v.size()) return false;
  const LifetimeId lt = v[tid];
  return lt != kNoLifetime && lifetimes_[lt].alive;
}

// ---- Shadow memory ---------------------------------------------------------

void Checker::note_shadow_bytes(std::uint64_t bytes) {
  shadow_bytes_ += bytes;
  if (shadow_bytes_ > shadow_peak_bytes_) shadow_peak_bytes_ = shadow_bytes_;
}

Checker::ShadowPage& Checker::dram_page(std::uint64_t page) {
  if (page >= dram_shadow_.size()) dram_shadow_.resize(page + 1);
  auto& p = dram_shadow_[page];
  if (!p) {
    p = std::make_unique<ShadowPage>();
    note_shadow_bytes(sizeof(ShadowPage));
  }
  return *p;
}

Checker::ShadowCell& Checker::sp_cell(NetworkId lane, std::uint64_t word) {
  if (lane >= sp_shadow_.size()) sp_shadow_.resize(static_cast<std::size_t>(lane) + 1);
  auto& v = sp_shadow_[lane];
  if (!v) {
    const std::size_t nwords =
        static_cast<std::size_t>(m_.config().scratchpad_bytes / 8);
    v = std::make_unique<std::vector<ShadowCell>>(nwords);
    note_shadow_bytes(nwords * sizeof(ShadowCell));
  }
  return (*v)[word];
}

// ---- Diagnostics -----------------------------------------------------------

std::string Checker::ev_name(EventLabel label) const {
  if (label == 0 || label > m_.program().size()) return strfmt("<label %u>", label);
  return m_.program().def(label).name;
}

std::string Checker::where(const Stamp& s) const {
  if (s.lt == kHostLifetime)
    return strfmt("host send @%llu", static_cast<unsigned long long>(s.tick));
  const Lifetime& l = lifetimes_[s.lt];
  return strfmt("[NWID %u][TID %u] %s @%llu", l.nwid, l.tid, ev_name(s.label).c_str(),
                static_cast<unsigned long long>(s.tick));
}

void Checker::diag(CheckDiagnostic d) {
  if (diags_.size() >= kMaxStoredDiags) {
    ++dropped_diags_;
    return;
  }
  std::fprintf(stderr, "[UDCHECK] %s %s: %s\n", d.error ? "ERROR" : "warning",
               check_kind_name(d.kind), d.message.c_str());
  diags_.push_back(std::move(d));
}

Checker::MsgMeta& Checker::msg_meta(std::uint32_t idx) {
  if (idx >= msg_meta_.size()) msg_meta_.resize(static_cast<std::size_t>(idx) + 1);
  return msg_meta_[idx];
}

Checker::DramMeta& Checker::dram_meta(std::uint32_t idx) {
  if (idx >= dram_meta_.size()) dram_meta_.resize(static_cast<std::size_t>(idx) + 1);
  return dram_meta_[idx];
}

// ---- Meta lifecycle --------------------------------------------------------

void Checker::acquire_msg_refs(MsgMeta& meta) {
  stamp_ref(meta.stamp.lt);
  stamp_ref(meta.target);
  meta.holds_refs = true;
}

void Checker::release_msg_meta(MsgMeta& meta) {
  if (meta.holds_refs) {
    meta.holds_refs = false;
    stamp_unref(meta.stamp.lt);
    stamp_unref(meta.target);
  }
  snap_clear(meta.snap);
}

// ---- Continuation obligations ----------------------------------------------

void Checker::register_cont(Word cont, NetworkId lane, Tick t) {
  PendingCont& p = pending_conts_[cont];
  if (p.count == 0) {
    p.first_tick = t;
    p.lane = lane;
    p.label = evw::label(cont);
  }
  ++p.count;
}

bool Checker::discharge_cont(Word w) {
  if (pending_conts_.empty()) return false;  // hot path: no obligations open
  auto it = pending_conts_.find(w);
  if (it == pending_conts_.end()) return false;
  if (--it->second.count == 0) pending_conts_.erase(it);
  return true;
}

// ---- Routing hooks ---------------------------------------------------------

void Checker::on_host_send(Tick now, std::uint32_t ent, std::uint32_t seq) {
  if (!deferred()) {
    origin_ = Origin::kHost;
    return;
  }
  // Host injections route from shard 0 while the engine is idle, so logging
  // them under shard 0 keeps that log key-sorted: every event the run later
  // executes arrives at least one network latency after `now`.
  CheckRec r;
  r.kind = CheckRec::kHostSend;
  r.w[0] = now;
  r.d = ent;
  r.w[1] = seq;
  logs_[0].push_back(r);
}

void Checker::bad_route_diag(Word evw_word, Tick depart) {
  ++counts_.bad_event_words;
  Stamp s = origin_stamp_;
  s.tick = depart;
  diag({CheckKind::kBadEventWord, true, depart,
        origin_ == Origin::kTask ? lifetimes_[s.lt].nwid : NetworkId{0},
        origin_ == Origin::kTask ? lifetimes_[s.lt].tid : ThreadId{0},
        evw::label(evw_word), 0, 0,
        strfmt("event word 0x%llx addresses NWID %u beyond the machine's %llu lanes "
               "(sent by %s); message dropped",
               static_cast<unsigned long long>(evw_word), evw::nwid(evw_word),
               static_cast<unsigned long long>(m_.config().total_lanes()),
               origin_ == Origin::kHost ? "the host" : where(s).c_str())});
}

bool Checker::on_bad_route(EngineShard& sh, Word evw_word, Tick depart) {
  if (deferred()) {
    CheckRec r;
    r.kind = CheckRec::kBadRoute;
    r.w[2] = evw_word;
    r.w[0] = depart;
    log_of(sh).push_back(r);
    return true;
  }
  bad_route_diag(evw_word, depart);
  return true;
}

void Checker::route_message_m(MsgMeta& meta, const Message& m, Tick depart) {
  // A fresh assignment (not a full release) on purpose: a stale slot left
  // over from an aborted run may claim lifetime refs that were already
  // reconciled — those leak conservatively until the next idle report instead
  // of underflowing. Snap slots reconcile nowhere else, so drop theirs here.
  snap_unref(meta.snap);
  meta = MsgMeta{};

  switch (origin_) {
    case Origin::kDramReply:
      meta.stamp = origin_stamp_;
      snap_assign(meta.snap, origin_snap_);
      meta.ext = origin_ext_;
      meta.host_ep = origin_host_ep_;
      meta.from_dram = true;
      meta.cont_pending = origin_cont_pending_;
      break;
    case Origin::kTask: {
      Lifetime& l = lifetimes_[origin_stamp_.lt];
      meta.stamp = origin_stamp_;
      meta.stamp.epoch = l.epoch;
      meta.stamp.era = era_;
      meta.stamp.shard = replay_shard_;
      meta.stamp.tick = depart;
      meta.snap = clock_snapshot(origin_stamp_.lt);
      meta.ext = l.last;
      meta.host_ep = l.host_ep;
      ++l.epoch;  // release: later accesses in this task are not covered
      break;
    }
    case Origin::kHost:
    case Origin::kNone:
    default: {
      Lifetime& h = lifetimes_[kHostLifetime];
      meta.stamp = Stamp{kHostLifetime, h.epoch, era_, 0, replay_shard_, depart};
      meta.snap = clock_snapshot(kHostLifetime);
      ++h.epoch;
      break;
    }
  }

  if (!meta.from_dram) {
    // Sending to a continuation word fires the obligation; passing a pending
    // continuation along as this message's cont transfers it (the receiver
    // re-registers it at delivery).
    discharge_cont(m.evw);
    if (m.cont != IGNRCONT) discharge_cont(m.cont);

    if (m.nops > kPlainMessageOperands) {
      ++counts_.operand_overflows;
      diag({CheckKind::kOperandOverflow, true, depart, evw::nwid(m.evw), evw::tid(m.evw),
            evw::label(m.evw), 0, 0,
            strfmt("message to %s carries %u operands; plain messages are 64 bytes "
                   "(6 operands max, only DRAM replies carry 8) — sent by %s",
                   ev_name(evw::label(m.evw)).c_str(), m.nops, where(meta.stamp).c_str())});
    }
  }

  if (!evw::is_new_thread(m.evw)) {
    const NetworkId dst = evw::nwid(m.evw);
    const ThreadId tid = evw::tid(m.evw);
    if (!slot_alive(dst, tid)) {
      ++counts_.dead_thread_sends;
      diag({CheckKind::kSendToDeadThread, true, depart, dst, tid, evw::label(m.evw), 0, 0,
            strfmt("event %s addressed to dead thread context [NWID %u][TID %u] "
                   "(sent by %s); delivery suppressed",
                   ev_name(evw::label(m.evw)).c_str(), dst, tid,
                   where(meta.stamp).c_str())});
      meta.suppress = true;
    } else {
      meta.target = slot_lt_[dst][tid];
    }
  }
  acquire_msg_refs(meta);
}

void Checker::on_route_message(std::uint32_t idx, Tick depart) {
  route_message_m(msg_meta(idx), m_.shard0().msg_pool[idx], depart);
}

void Checker::route_dram_m(DramMeta& meta, const DramRequest& r, bool addr_mapped,
                           Tick depart) {
  snap_unref(meta.snap);  // see route_message_m: stale-slot conservatism
  meta = DramMeta{};
  switch (origin_) {
    case Origin::kTask: {
      Lifetime& l = lifetimes_[origin_stamp_.lt];
      meta.stamp = origin_stamp_;
      meta.stamp.epoch = l.epoch;
      meta.stamp.era = era_;
      meta.stamp.shard = replay_shard_;
      meta.stamp.tick = depart;
      meta.snap = clock_snapshot(origin_stamp_.lt);
      meta.ext = l.last;
      meta.host_ep = l.host_ep;
      ++l.epoch;
      break;
    }
    default: {  // DRAM traffic normally originates in tasks; host is the fallback
      Lifetime& h = lifetimes_[kHostLifetime];
      meta.stamp = Stamp{kHostLifetime, h.epoch, era_, 0, replay_shard_, depart};
      meta.snap = clock_snapshot(kHostLifetime);
      ++h.epoch;
      break;
    }
  }
  meta.addr_mapped = addr_mapped;
  meta.cont_pending =
      r.reply_evw != 0 && r.reply_cont != IGNRCONT && discharge_cont(r.reply_cont);
  // The in-flight request pins the requester's lifetime: its clock entries in
  // other threads must survive until the access is stamped into shadow state,
  // or a prune would turn an ordered access into a false race.
  stamp_ref(meta.stamp.lt);
  meta.holds_ref = true;
}

void Checker::on_route_dram(std::uint32_t idx, bool addr_mapped, Tick depart) {
  route_dram_m(dram_meta(idx), m_.shard0().dram_pool[idx], addr_mapped, depart);
}

// ---- Delivery / execution hooks --------------------------------------------

bool Checker::pre_deliver_m(MsgMeta& meta, const Message& m, Tick start) {
  if (meta.suppress) {
    release_msg_meta(meta);
    return false;
  }
  const EventLabel label = evw::label(m.evw);
  if (label == 0 || label > m_.program().size()) {
    ++counts_.bad_event_words;
    diag({CheckKind::kBadEventWord, true, start, evw::nwid(m.evw), evw::tid(m.evw), label,
          0, 0,
          strfmt("event word 0x%llx carries invalid label %u (program has %zu events); "
                 "sent by %s",
                 static_cast<unsigned long long>(m.evw), label, m_.program().size(),
                 where(meta.stamp).c_str())});
    release_msg_meta(meta);
    return false;
  }
  if (!evw::is_new_thread(m.evw)) {
    const NetworkId lane = evw::nwid(m.evw);
    const ThreadId tid = evw::tid(m.evw);
    if (!slot_alive(lane, tid)) {
      ++counts_.dead_thread_sends;
      diag({CheckKind::kSendToDeadThread, true, start, lane, tid, label, 0, 0,
            strfmt("event %s delivered to [NWID %u][TID %u], but the thread "
                   "terminated while the message was in flight (sent by %s)",
                   ev_name(label).c_str(), lane, tid, where(meta.stamp).c_str())});
      release_msg_meta(meta);
      return false;
    }
    if (meta.target != kNoLifetime && slot_lt_[lane][tid] != meta.target) {
      const Lifetime& cur = lifetimes_[slot_lt_[lane][tid]];
      ++counts_.stale_deliveries;
      diag({CheckKind::kStaleDelivery, true, start, lane, tid, label, 0, 0,
            strfmt("stale delivery of %s to [NWID %u][TID %u]: the addressed thread "
                   "died and its context was recycled (now a %s thread created @%llu); "
                   "sent by %s",
                   ev_name(label).c_str(), lane, tid, ev_name(cur.create_label).c_str(),
                   static_cast<unsigned long long>(cur.created_at),
                   where(meta.stamp).c_str())});
      release_msg_meta(meta);
      return false;
    }
  }
  return true;
}

bool Checker::on_pre_deliver(std::uint32_t idx, Tick start) {
  return pre_deliver_m(msg_meta(idx), m_.shard0().msg_pool[idx], start);
}

void Checker::class_mismatch_m(MsgMeta& meta, const Message& m, NetworkId lane,
                               ThreadId tid, Tick start) {
  const EventLabel label = evw::label(m.evw);
  ++counts_.bad_event_words;
  diag({CheckKind::kBadEventWord, true, start, lane, tid, label, 0, 0,
        strfmt("event %s delivered to [NWID %u][TID %u], a thread of another class; "
               "sent by %s — delivery suppressed",
               ev_name(label).c_str(), lane, tid, where(meta.stamp).c_str())});
  release_msg_meta(meta);
}

void Checker::on_class_mismatch(std::uint32_t idx, NetworkId lane, ThreadId tid,
                                Tick start) {
  class_mismatch_m(msg_meta(idx), m_.shard0().msg_pool[idx], lane, tid, start);
}

void Checker::task_begin_m(MsgMeta& meta, const Message& m, NetworkId lane, ThreadId tid,
                           EventLabel label, Tick start, bool new_thread) {
  LifetimeId lt;
  if (new_thread) {
    lt = new_lifetime(lane, tid, label, start);
    slot_lifetime(lane, tid) = lt;
  } else {
    lt = slot_lifetime(lane, tid);
  }
  const SnapId snap = meta.snap;
  meta.snap = kNoSnap;  // the meta's pool ref transfers to join_into
  join_into(lt, snap, meta.ext, meta.host_ep, meta.stamp);

  if (m.cont != IGNRCONT && (!meta.from_dram || meta.cont_pending))
    register_cont(m.cont, lane, start);

  origin_ = Origin::kTask;
  origin_stamp_ = Stamp{lt, lifetimes_[lt].epoch, era_, label, replay_shard_, start};
  snap_clear(origin_snap_);
  release_msg_meta(meta);
}

void Checker::on_task_begin(std::uint32_t idx, NetworkId lane, ThreadId tid,
                            EventLabel label, Tick start, bool new_thread) {
  task_begin_m(msg_meta(idx), m_.shard0().msg_pool[idx], lane, tid, label, start,
               new_thread);
}

void Checker::on_task_end(NetworkId lane, ThreadId tid, bool terminated) {
  if (terminated) {
    const LifetimeId lt = slot_lifetime(lane, tid);
    Lifetime& l = lifetimes_[lt];
    l.alive = false;
    snap_clear(l.clock);  // free the clock; outstanding stamps keep epoch/refs
    maybe_retire(lt);  // no stamps outstanding: recycle the id immediately
  }
  origin_ = Origin::kNone;
}

void Checker::dram_fault_diag(const Stamp& s, unsigned nwords, bool is_write, Addr va,
                              const FreedRegion* freed, Tick now) {
  const char* op = is_write ? "write" : "read";
  const NetworkId nw = s.lt == kHostLifetime ? NetworkId{0} : lifetimes_[s.lt].nwid;
  const ThreadId td = s.lt == kHostLifetime ? ThreadId{0} : lifetimes_[s.lt].tid;
  if (freed) {
    ++counts_.use_after_free;
    diag({CheckKind::kUseAfterFree, true, now, nw, td, s.label, va, freed->alloc_seq,
          strfmt("use-after-free: DRAM %s of %u word(s) at va=0x%llx hits freed "
                 "region alloc #%llu [0x%llx, 0x%llx) retired by free #%llu; "
                 "requested by %s — access suppressed",
                 op, nwords, static_cast<unsigned long long>(va),
                 static_cast<unsigned long long>(freed->alloc_seq),
                 static_cast<unsigned long long>(freed->base),
                 static_cast<unsigned long long>(freed->base + freed->size),
                 static_cast<unsigned long long>(freed->free_seq), where(s).c_str())});
  } else {
    ++counts_.out_of_bounds;
    diag({CheckKind::kOutOfBounds, true, now, nw, td, s.label, va, 0,
          strfmt("out-of-bounds DRAM %s of %u word(s) at va=0x%llx: no live "
                 "translation descriptor covers it; requested by %s — access "
                 "suppressed",
                 op, nwords, static_cast<unsigned long long>(va), where(s).c_str())});
  }
}

void Checker::dram_race_words(DramMeta& meta, Addr addr, unsigned nwords, bool is_write,
                              Tick now) {
  Stamp cur = meta.stamp;
  cur.tick = now;
  const ClockView view{&snap_vc(meta.snap), meta.ext, meta.host_ep};
  // Resolve the shadow page once per crossing: an 8-word run touches one,
  // at most two, pages instead of paying a hash probe per word.
  std::uint64_t w = addr >> 3;
  std::uint64_t curp = ~std::uint64_t{0};
  ShadowPage* pg = nullptr;
  for (unsigned i = 0; i < nwords; ++i, ++w) {
    const std::uint64_t p = w >> kShadowPageShift;
    if (p != curp) {
      pg = &dram_page(p);
      curp = p;
    }
    check_access(pg->cells[w & (kShadowPageWords - 1)], cur, view, is_write, false,
                 addr + 8ull * i);
  }
}

bool Checker::on_dram_exec(std::uint32_t idx, Tick now) {
  DramMeta& meta = dram_meta(idx);
  const DramRequest& r = m_.shard0().dram_pool[idx];
  const GlobalMemory& mem = m_.memory();

  // 1. Lifetime sanitize: every word of the request must fall in a live
  //    region (a request may legally span two adjacent regions only if both
  //    are live). The common whole-request-in-one-region case is one lookup.
  const SwizzleDescriptor* d = mem.find_live(r.addr);
  const Addr end = r.addr + 8ull * r.nwords;
  if (!(d && end <= d->end())) {
    for (unsigned i = 0; i < r.nwords; ++i) {
      const Addr va = r.addr + 8ull * i;
      if (mem.find_live(va)) continue;
      dram_fault_diag(meta.stamp, r.nwords, r.is_write, va, mem.find_freed(va), now);
      return false;  // one diagnostic per request; suppress the whole access
    }
  }

  // 2. Race-check each word at the requester's send-time clock.
  dram_race_words(meta, r.addr, r.nwords, r.is_write, now);
  return true;
}

void Checker::begin_dram_reply_m(DramMeta& meta) {
  origin_ = Origin::kDramReply;
  origin_stamp_ = meta.stamp;
  snap_assign(origin_snap_, meta.snap);
  origin_ext_ = meta.ext;
  origin_host_ep_ = meta.host_ep;
  origin_cont_pending_ = meta.cont_pending;
}

void Checker::begin_dram_reply(std::uint32_t idx) { begin_dram_reply_m(dram_meta(idx)); }

void Checker::dram_done_m(DramMeta& meta) {
  if (meta.holds_ref) {
    meta.holds_ref = false;
    stamp_unref(meta.stamp.lt);
  }
  snap_clear(meta.snap);
  meta.ext = InlineVC{};
  meta.host_ep = 0;
  origin_ = Origin::kNone;
  snap_clear(origin_snap_);
  origin_ext_ = InlineVC{};
  origin_host_ep_ = 0;
}

void Checker::on_dram_done(std::uint32_t idx) { dram_done_m(dram_meta(idx)); }

bool Checker::sp_access_check(NetworkId lane, std::uint64_t offset, std::size_t bytes,
                              bool is_write, Tick now) {
  if (offset + bytes > m_.config().scratchpad_bytes) {
    ++counts_.out_of_bounds;
    const NetworkId nw = origin_ == Origin::kTask ? lifetimes_[origin_stamp_.lt].nwid : lane;
    const ThreadId td = origin_ == Origin::kTask ? lifetimes_[origin_stamp_.lt].tid : ThreadId{0};
    diag({CheckKind::kOutOfBounds, true, now, nw, td, origin_stamp_.label, offset, 0,
          strfmt("scratchpad %s at offset 0x%llx (+%zu) beyond the lane's %llu-byte "
                 "scratchpad, in %s — access suppressed",
                 is_write ? "write" : "read", static_cast<unsigned long long>(offset),
                 bytes, static_cast<unsigned long long>(m_.config().scratchpad_bytes),
                 where(origin_stamp_).c_str())});
    return false;
  }
  if (sp_strict_ && origin_ == Origin::kTask) {
    Stamp cur = origin_stamp_;
    cur.epoch = lifetimes_[cur.lt].epoch;
    cur.era = era_;
    cur.shard = replay_shard_;
    cur.tick = now;
    const Lifetime& l = lifetimes_[cur.lt];
    const ClockView view{&snap_vc(l.clock), l.last, l.host_ep};
    check_access(sp_cell(lane, offset >> 3), cur, view, is_write, true, offset);
  }
  return true;
}

bool Checker::on_sp_access(EngineShard& sh, NetworkId lane, std::uint64_t offset,
                           std::size_t bytes, bool is_write, Tick now) {
  if (deferred()) {
    const bool oob = offset + bytes > m_.config().scratchpad_bytes;
    // Non-strict mode only ever reports OOB, so only OOB accesses need a
    // record; strict mode race-checks every access and logs them all.
    if (oob || sp_strict_) {
      CheckRec r;
      r.kind = CheckRec::kSpAccess;
      r.d = lane;
      r.w[2] = offset;
      r.w[1] = bytes;
      r.b = is_write ? 1 : 0;
      r.w[0] = now;
      log_of(sh).push_back(r);
    }
    return !oob;
  }
  return sp_access_check(lane, offset, bytes, is_write, now);
}

void Checker::sync_release_check(NetworkId lane, std::uint64_t slot) {
  if (origin_ != Origin::kTask) return;
  VC& cell = sync_clocks_[(static_cast<std::uint64_t>(lane) << 32) | slot];
  Lifetime& l = lifetimes_[origin_stamp_.lt];
  merge_vc(cell, snap_vc(l.clock), kNoLifetime);
  if (l.last.e0.lt != kNoLifetime && !dead_entry(l.last.e0))
    vc_upsert(cell, l.last.e0.lt, l.last.e0.epoch);
  if (l.last.e1.lt != kNoLifetime && !dead_entry(l.last.e1))
    vc_upsert(cell, l.last.e1.lt, l.last.e1.epoch);
  // The host chain lives in a scalar on the lifetime, not in its clock; a
  // sync cell is a plain VC, so publish it as an ordinary (host, ep) entry.
  if (l.host_ep != 0) vc_upsert(cell, kHostLifetime, l.host_ep);
  vc_upsert(cell, origin_stamp_.lt, l.epoch);
  ++l.epoch;  // release: later accesses are not published through this cell
}

void Checker::sync_acquire_check(NetworkId lane, std::uint64_t slot) {
  if (origin_ != Origin::kTask) return;
  const auto it = sync_clocks_.find((static_cast<std::uint64_t>(lane) << 32) | slot);
  if (it == sync_clocks_.end()) return;
  // Strip the (host, ep) entry back out into the acquirer's scalar: lifetime
  // clocks never carry host entries (that would poison every empty-clock fast
  // path). The cell VC is sorted by lifetime id and host is id 0, so it can
  // only sit at the front.
  const VC& cv = it->second;
  Lifetime& l = lifetimes_[origin_stamp_.lt];
  std::size_t off = 0;
  if (!cv.empty() && cv[0].lt == kHostLifetime) {
    if (cv[0].epoch > l.host_ep) l.host_ep = cv[0].epoch;
    off = 1;
  }
  if (off < cv.size()) {
    // clock_join scans its src while building into scratch_vc_, so the
    // stripped copy needs its own scratch buffer.
    sync_scratch_vc_.assign(cv.begin() + off, cv.end());
    clock_join(origin_stamp_.lt, sync_scratch_vc_, nullptr);
  }
}

void Checker::on_sync_release(EngineShard& sh, NetworkId lane, std::uint64_t slot) {
  if (deferred()) {
    CheckRec r;
    r.kind = CheckRec::kSyncRelease;
    r.d = lane;
    r.w[2] = slot;
    log_of(sh).push_back(r);
    return;
  }
  sync_release_check(lane, slot);
}

void Checker::on_sync_acquire(EngineShard& sh, NetworkId lane, std::uint64_t slot) {
  if (deferred()) {
    CheckRec r;
    r.kind = CheckRec::kSyncAcquire;
    r.d = lane;
    r.w[2] = slot;
    log_of(sh).push_back(r);
    return;
  }
  sync_acquire_check(lane, slot);
}

void Checker::push_origin() {
  snap_ref(origin_snap_);  // the saved copy holds its own pool ref
  origin_stack_.push_back(SavedOrigin{origin_, origin_stamp_, origin_snap_,
                                      origin_ext_, origin_host_ep_,
                                      origin_cont_pending_});
}

void Checker::pop_origin() {
  if (origin_stack_.empty()) return;  // defensive: replay of a truncated group
  const SavedOrigin& s = origin_stack_.back();
  origin_ = s.origin;
  origin_stamp_ = s.stamp;
  snap_unref(origin_snap_);
  origin_snap_ = s.snap;  // the saved ref transfers back
  origin_ext_ = s.ext;
  origin_host_ep_ = s.host_ep;
  origin_cont_pending_ = s.cont_pending;
  origin_stack_.pop_back();
}

void Checker::check_access(ShadowCell& cell, const Stamp& cur, const ClockView& view,
                           bool is_write, bool is_sp, Addr va) {
  const auto racy = [&](const Stamp& prev) {
    return prev.lt != kNoLifetime && !ordered(prev, cur.lt, view);
  };
  const Stamp* conflict = nullptr;
  bool conflict_write = false;
  if (racy(cell.write)) {
    conflict = &cell.write;
    conflict_write = true;
  } else if (is_write) {
    if (racy(cell.read0)) {
      conflict = &cell.read0;
    } else if (cell.overflow != kNoOverflow) {
      for (const Stamp& r : reader_pool_[cell.overflow]) {
        if (racy(r)) {
          conflict = &r;
          break;
        }
      }
    }
  }
  if (conflict) {
    std::uint64_t& counter = is_sp ? counts_.sp_races : counts_.data_races;
    ++counter;
    const Lifetime& l = lifetimes_[cur.lt];
    // Under sharded execution the two sides may have executed on different
    // engine shards; name both so cross-shard races are attributable.
    std::string cur_sh, prev_sh;
    if (nshards_ > 1) {
      cur_sh = strfmt(" [shard %u]", cur.shard);
      prev_sh = strfmt(" [shard %u]", conflict->shard);
    }
    diag({is_sp ? CheckKind::kSpRace : CheckKind::kDataRace, true, cur.tick, l.nwid,
          l.tid, cur.label, va, 0,
          strfmt("%s on %s %s=0x%llx: %s by %s%s is unordered with %s by %s%s",
                 is_sp ? "ordering hazard" : "data race",
                 is_sp ? "scratchpad" : "DRAM", is_sp ? "offset" : "va",
                 static_cast<unsigned long long>(va), is_write ? "write" : "read",
                 where(cur).c_str(), cur_sh.c_str(), conflict_write ? "write" : "read",
                 where(*conflict).c_str(), prev_sh.c_str())});
  }
  if (is_write) {
    set_stamp(cell.write, cur);
    clear_readers(cell);
  } else {
    add_reader(cell, cur, view);
  }
}

// ---- Deferred-mode engine hooks --------------------------------------------

std::vector<CheckRec>& Checker::log_of(EngineShard& sh) { return logs_[sh.id]; }

void Checker::defer_route_message(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                                  const Message& m, Tick depart) {
  CheckRec r;
  r.kind = CheckRec::kRouteMsg;
  r.d = ent;
  r.w[0] = depart;
  r.w[1] = seq;
  r.w[2] = m.evw;
  r.w[3] = m.cont;
  r.w[4] = static_cast<std::uint64_t>(m.src) | (static_cast<std::uint64_t>(m.nops) << 32);
  log_of(sh).push_back(r);
}

void Checker::defer_route_dram(EngineShard& sh, std::uint32_t ent, std::uint32_t seq,
                               const DramRequest& r, bool addr_mapped, Tick depart) {
  CheckRec rec;
  rec.kind = CheckRec::kRouteDram;
  rec.d = ent;
  rec.w[0] = depart;
  rec.w[1] = seq;
  rec.w[2] = r.addr;
  rec.w[3] = r.reply_evw;
  rec.w[4] = r.reply_cont;
  rec.b = r.nwords;
  rec.c = static_cast<std::uint16_t>((r.is_write ? 1 : 0) | (addr_mapped ? 2 : 0));
  log_of(sh).push_back(rec);
}

bool Checker::defer_pre_deliver(EngineShard& sh, Tick t, std::uint32_t ent,
                                std::uint32_t seq, const Message& m, Tick start) {
  auto& lg = log_of(sh);
  CheckRec r;
  r.kind = CheckRec::kBeginMsg;
  r.w[0] = t;
  r.d = ent;
  r.w[1] = seq;
  r.w[2] = m.evw;
  r.w[3] = m.cont;
  r.w[4] = static_cast<std::uint64_t>(m.src) | (static_cast<std::uint64_t>(m.nops) << 32);
  r.w[5] = start;
  lg.push_back(r);

  // Online verdict from engine-owned state only (program table + this
  // shard's lane cores): suppressed deliveries must not execute, but the
  // diagnostics themselves wait for the replay.
  const EventLabel label = evw::label(m.evw);
  bool ok = !(label == 0 || label > m_.program().size());
  if (ok && !evw::is_new_thread(m.evw))
    ok = Lane(m_.lanes_, evw::nwid(m.evw)).alive(evw::tid(m.evw));
  if (!ok) {
    CheckRec f;
    f.kind = CheckRec::kPreDeliverFail;
    lg.push_back(f);
  }
  return ok;
}

void Checker::defer_class_mismatch(EngineShard& sh, NetworkId lane, ThreadId tid,
                                   Tick start) {
  CheckRec r;
  r.kind = CheckRec::kClassMismatch;
  r.d = lane;
  r.c = tid;
  r.w[0] = start;
  log_of(sh).push_back(r);
}

void Checker::defer_task_begin(EngineShard& sh, NetworkId lane, ThreadId tid,
                               EventLabel label, Tick start, bool new_thread) {
  CheckRec r;
  r.kind = CheckRec::kTaskBegin;
  r.d = lane;
  r.c = tid;
  r.w[1] = label;
  r.w[0] = start;
  r.b = new_thread ? 1 : 0;
  log_of(sh).push_back(r);
}

void Checker::defer_task_end(EngineShard& sh, NetworkId lane, ThreadId tid,
                             bool terminated) {
  CheckRec r;
  r.kind = CheckRec::kTaskEnd;
  r.d = lane;
  r.c = tid;
  r.b = terminated ? 1 : 0;
  log_of(sh).push_back(r);
}

void Checker::defer_dram_begin(EngineShard& sh, Tick t, std::uint32_t ent,
                               std::uint32_t seq) {
  CheckRec r;
  r.kind = CheckRec::kBeginDram;
  r.w[0] = t;
  r.d = ent;
  r.w[1] = seq;
  log_of(sh).push_back(r);
}

bool Checker::defer_dram_exec(EngineShard& sh, const DramRequest& r, Tick now) {
  auto& lg = log_of(sh);
  const GlobalMemory& mem = m_.memory();
  // Sanitize through this shard's descriptor snapshot (refresh-on-miss): the
  // same verdict the serial checker reaches, without the unlocked global
  // table walk that would race with other shards' allocations.
  const SwizzleDescriptor* d = mem.find_snap(r.addr, sh.mem_snap);
  const Addr end = r.addr + 8ull * r.nwords;
  bool ok = d && end <= d->end();
  Addr bad_va = 0;
  FreedRegion freed{};
  bool uaf = false;
  if (!ok) {
    ok = true;
    for (unsigned i = 0; i < r.nwords; ++i) {
      const Addr va = r.addr + 8ull * i;
      if (mem.find_snap(va, sh.mem_snap)) continue;
      ok = false;
      bad_va = va;
      uaf = mem.find_freed_locked(va, &freed);
      break;
    }
  }
  CheckRec e;
  e.kind = CheckRec::kDramExec;
  e.w[0] = now;
  e.b = ok ? 1 : 0;
  lg.push_back(e);
  if (!ok) {
    CheckRec f;
    f.kind = CheckRec::kDramFault;
    f.b = uaf ? 1 : 0;
    f.w[2] = bad_va;
    if (uaf) {
      f.w[0] = freed.base;
      f.w[1] = freed.size;
      f.w[3] = freed.alloc_seq;
      f.w[4] = freed.free_seq;
    }
    lg.push_back(f);
  }
  return ok;
}

void Checker::defer_dram_reply_begin(EngineShard& sh) {
  CheckRec r;
  r.kind = CheckRec::kDramReplyBegin;
  log_of(sh).push_back(r);
}

void Checker::defer_dram_done(EngineShard& sh) {
  CheckRec r;
  r.kind = CheckRec::kDramDone;
  log_of(sh).push_back(r);
}

bool Checker::defer_inline_begin(EngineShard& sh, const Message& m, Tick start) {
  auto& lg = log_of(sh);
  CheckRec r;
  r.kind = CheckRec::kInlineBegin;
  r.w[0] = start;
  r.w[2] = m.evw;
  r.w[3] = m.cont;
  r.w[4] = static_cast<std::uint64_t>(m.src) | (static_cast<std::uint64_t>(m.nops) << 32);
  lg.push_back(r);
  if (!evw::is_new_thread(m.evw) &&
      !Lane(m_.lanes_, evw::nwid(m.evw)).alive(evw::tid(m.evw))) {
    CheckRec s;
    s.kind = CheckRec::kInlineSuppress;
    s.c = 0;  // pre-deliver failure
    s.d = evw::nwid(m.evw);
    s.w[1] = evw::tid(m.evw);
    s.w[0] = start;
    lg.push_back(s);
    return false;
  }
  return true;
}

void Checker::defer_inline_class_mismatch(EngineShard& sh, NetworkId lane, ThreadId tid,
                                          Tick start) {
  CheckRec s;
  s.kind = CheckRec::kInlineSuppress;
  s.c = 1;  // class mismatch
  s.d = lane;
  s.w[1] = tid;
  s.w[0] = start;
  log_of(sh).push_back(s);
}

void Checker::defer_inline_end(EngineShard& sh) {
  CheckRec r;
  r.kind = CheckRec::kInlineEnd;
  log_of(sh).push_back(r);
}

// ---- Deferred replay -------------------------------------------------------

namespace {
bool is_group_begin(const CheckRec& r) {
  return r.kind == CheckRec::kHostSend || r.kind == CheckRec::kBeginMsg ||
         r.kind == CheckRec::kBeginDram;
}
}  // namespace

void Checker::replay_pending() {
  bool any = false;
  for (const auto& lg : logs_)
    if (!lg.empty()) {
      any = true;
      break;
    }
  if (!any) return;

  // K-way merge of the shard logs by group key (t, ent, seq) — the engine's
  // global event order. Each shard's log is already key-sorted (a shard pops
  // its queue in key order and appends groups as it executes), so one cursor
  // per shard suffices; group keys are globally unique.
  using Key = std::tuple<Tick, std::uint32_t, std::uint32_t>;
  const auto group_key = [](const CheckRec& r) {
    return Key(r.w[0], r.d, static_cast<std::uint32_t>(r.w[1]));
  };
  std::vector<std::size_t> pos(nshards_, 0);
  for (;;) {
    std::uint32_t best = nshards_;
    Key best_key{};
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      if (pos[s] >= logs_[s].size()) continue;
      const CheckRec& r = logs_[s][pos[s]];
      if (!is_group_begin(r)) {
        // A truncated/garbled log segment (aborted window); skip the shard.
        pos[s] = logs_[s].size();
        continue;
      }
      const Key k = group_key(r);
      if (best == nshards_ || k < best_key) {
        best = s;
        best_key = k;
      }
    }
    if (best == nshards_) break;
    std::size_t end = pos[best] + 1;
    while (end < logs_[best].size() && !is_group_begin(logs_[best][end])) ++end;
    replay_group(best, logs_[best], pos[best], end);
    pos[best] = end;
  }
  for (auto& lg : logs_) lg.clear();
}

void Checker::replay_group(std::uint32_t shard, const std::vector<CheckRec>& log,
                           std::size_t begin, std::size_t end) {
  replay_shard_ = static_cast<std::uint16_t>(shard);

  // Replay frames stand in for the engine's pooled payloads: the group's own
  // message at the bottom, one frame per nested inline delivery above it.
  struct Frame {
    Message m;
    MsgMeta meta;
  };
  std::vector<Frame> stack;
  DramMeta dmeta;
  Addr daddr = 0;
  unsigned dnwords = 0;
  bool dwrite = false;
  Tick dnow = 0;

  const auto stash_key = [](std::uint32_t ent, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(ent) << 32) | (seq & 0xFFFFFFFFull);
  };
  const auto fill_msg = [](Message& m, const CheckRec& r) {
    m.evw = r.w[2];
    m.cont = r.w[3];
    m.src = static_cast<NetworkId>(r.w[4] & 0xFFFFFFFFull);
    m.nops = static_cast<std::uint8_t>(r.w[4] >> 32);
  };

  origin_ = Origin::kNone;
  snap_clear(origin_snap_);
  origin_ext_ = InlineVC{};
  origin_host_ep_ = 0;

  const CheckRec& b = log[begin];
  switch (b.kind) {
    case CheckRec::kHostSend:
      origin_ = Origin::kHost;
      break;
    case CheckRec::kBeginMsg: {
      stack.emplace_back();
      fill_msg(stack.back().m, b);
      // The send-time clock stamp crossed the window (or the shard) through
      // the stash, keyed by the sender's (entity, seq) identity.
      auto it = msg_stash_.find(stash_key(b.d, b.w[1]));
      if (it != msg_stash_.end()) {
        stack.back().meta = std::move(it->second);
        msg_stash_.erase(it);
      }
      pre_deliver_m(stack.back().meta, stack.back().m, b.w[5]);
      break;
    }
    case CheckRec::kBeginDram: {
      auto it = dram_stash_.find(stash_key(b.d, b.w[1]));
      if (it != dram_stash_.end()) {
        dmeta = std::move(it->second.meta);
        daddr = it->second.addr;
        dnwords = it->second.nwords;
        dwrite = it->second.is_write;
        dram_stash_.erase(it);
      }
      break;
    }
    default:
      break;
  }

  for (std::size_t i = begin + 1; i < end; ++i) {
    const CheckRec& r = log[i];
    switch (r.kind) {
      case CheckRec::kRouteMsg: {
        Message m;
        fill_msg(m, r);
        MsgMeta meta;
        route_message_m(meta, m, r.w[0]);
        msg_stash_[stash_key(r.d, r.w[1])] = std::move(meta);
        break;
      }
      case CheckRec::kRouteDram: {
        DramRequest dr{};
        dr.addr = r.w[2];
        dr.nwords = r.b;
        dr.is_write = (r.c & 1) != 0;
        dr.reply_evw = r.w[3];
        dr.reply_cont = r.w[4];
        DramStash st;
        route_dram_m(st.meta, dr, (r.c & 2) != 0, r.w[0]);
        st.addr = dr.addr;
        st.nwords = r.b;
        st.is_write = dr.is_write;
        dram_stash_[stash_key(r.d, r.w[1])] = std::move(st);
        break;
      }
      case CheckRec::kBadRoute:
        bad_route_diag(r.w[2], r.w[0]);
        break;
      case CheckRec::kPreDeliverFail:
        // The engine suppressed this delivery online; pre_deliver_m above may
        // have diverged on a racy input, so force the release (idempotent).
        if (!stack.empty()) release_msg_meta(stack.back().meta);
        break;
      case CheckRec::kClassMismatch:
        if (!stack.empty())
          class_mismatch_m(stack.back().meta, stack.back().m, r.d,
                           static_cast<ThreadId>(r.c), r.w[0]);
        break;
      case CheckRec::kTaskBegin:
        if (!stack.empty())
          task_begin_m(stack.back().meta, stack.back().m, r.d,
                       static_cast<ThreadId>(r.c), static_cast<EventLabel>(r.w[1]),
                       r.w[0], r.b != 0);
        break;
      case CheckRec::kTaskEnd:
        on_task_end(r.d, static_cast<ThreadId>(r.c), r.b != 0);
        break;
      case CheckRec::kDramExec:
        dnow = r.w[0];
        if (r.b) dram_race_words(dmeta, daddr, dnwords, dwrite, dnow);
        break;
      case CheckRec::kDramFault:
        if (r.b) {
          const FreedRegion f{r.w[0], r.w[1], r.w[3], r.w[4]};
          dram_fault_diag(dmeta.stamp, dnwords, dwrite, r.w[2], &f, dnow);
        } else {
          dram_fault_diag(dmeta.stamp, dnwords, dwrite, r.w[2], nullptr, dnow);
        }
        break;
      case CheckRec::kDramReplyBegin:
        begin_dram_reply_m(dmeta);
        break;
      case CheckRec::kDramDone:
        dram_done_m(dmeta);
        break;
      case CheckRec::kSpAccess:
        sp_access_check(r.d, r.w[2], static_cast<std::size_t>(r.w[1]), r.b != 0, r.w[0]);
        break;
      case CheckRec::kSyncRelease:
        sync_release_check(r.d, r.w[2]);
        break;
      case CheckRec::kSyncAcquire:
        sync_acquire_check(r.d, r.w[2]);
        break;
      case CheckRec::kInlineBegin: {
        push_origin();
        stack.emplace_back();
        fill_msg(stack.back().m, r);
        route_message_m(stack.back().meta, stack.back().m, r.w[0]);
        pre_deliver_m(stack.back().meta, stack.back().m, r.w[0]);
        break;
      }
      case CheckRec::kInlineSuppress:
        if (!stack.empty()) {
          if (r.c == 1)
            class_mismatch_m(stack.back().meta, stack.back().m, r.d,
                             static_cast<ThreadId>(r.w[1]), r.w[0]);
          else
            release_msg_meta(stack.back().meta);
          stack.pop_back();
          pop_origin();
        }
        break;
      case CheckRec::kInlineEnd:
        if (!stack.empty()) {
          release_msg_meta(stack.back().meta);
          stack.pop_back();
          pop_origin();
        }
        break;
      default:
        break;
    }
  }

  while (!stack.empty()) {
    release_msg_meta(stack.back().meta);
    stack.pop_back();
  }
  snap_unref(dmeta.snap);  // truncated group: the kDramDone never arrived
  origin_ = Origin::kNone;
  snap_clear(origin_snap_);
  origin_ext_ = InlineVC{};
  origin_host_ep_ = 0;
  for (SavedOrigin& s : origin_stack_) snap_unref(s.snap);
  origin_stack_.clear();
  replay_shard_ = 0;
}

void Checker::reset_deferred() {
  for (auto& lg : logs_) lg.clear();
  // Stashed in-flight metadata may hold lifetime refcounts; dropping it
  // without the unref only pins lifetimes conservatively until the next idle
  // report. Snapshot pool refs are released here (nothing else reconciles
  // them), so the slots recycle.
  for (auto& [k, mm] : msg_stash_) snap_unref(mm.snap);
  for (auto& [k, ds] : dram_stash_) snap_unref(ds.meta.snap);
  msg_stash_.clear();
  dram_stash_.clear();
  origin_ = Origin::kNone;
  snap_clear(origin_snap_);
  origin_ext_ = InlineVC{};
  origin_host_ep_ = 0;
  for (SavedOrigin& s : origin_stack_) snap_unref(s.snap);
  origin_stack_.clear();
  replay_shard_ = 0;
}

// ---- MemoryObserver ---------------------------------------------------------

void Checker::on_alloc(const SwizzleDescriptor&) {}

void Checker::on_free(const SwizzleDescriptor&, std::uint64_t) {
  // Freed VAs are never re-allocated (the VA brk only grows), so stale shadow
  // cells in the region are harmless: any later touch is flagged as a
  // use-after-free before the race check runs.
}

void Checker::on_bad_free(Addr base, bool double_free, const std::string& detail) {
  const std::string head = detail.substr(0, detail.find('\n'));
  if (deferred()) {
    // dram_free may run on any shard thread; queue under the mutex and fold
    // in at report time (the caller throws, so the run is aborting anyway).
    std::lock_guard<std::mutex> lk(bad_free_mu_);
    bad_free_pending_.push_back(BadFree{base, double_free, head, m_.now()});
    return;
  }
  ++counts_.bad_frees;
  diag({CheckKind::kBadFree, true, m_.now(), 0, 0, 0, base, 0,
        double_free ? head : head + " (never a dram_malloc result)"});
}

void Checker::drain_bad_frees() {
  std::vector<BadFree> pending;
  {
    std::lock_guard<std::mutex> lk(bad_free_mu_);
    pending.swap(bad_free_pending_);
  }
  for (const BadFree& bf : pending) {
    ++counts_.bad_frees;
    diag({CheckKind::kBadFree, true, bf.tick, 0, 0, 0, bf.base, 0,
          bf.double_free ? bf.head : bf.head + " (never a dram_malloc result)"});
  }
}

// ---- Reporting --------------------------------------------------------------

void Checker::report() {
  drain_bad_frees();

  // Leaked threads: in this DSL a handler return is an implicit yield that
  // keeps the context allocated; a thread nothing ever terminates surfaces
  // here as a quiescence leak. The creation sequence number is the thread's
  // alloc-site id, same idea as dram_malloc's alloc #N.
  for (NetworkId nw = 0; nw < slot_lt_.size(); ++nw) {
    for (ThreadId tid = 0; tid < slot_lt_[nw].size(); ++tid) {
      const LifetimeId lt = slot_lt_[nw][tid];
      if (lt == kNoLifetime || !lifetimes_[lt].alive) continue;
      if (std::find(leak_reported_.begin(), leak_reported_.end(), lt) !=
          leak_reported_.end())
        continue;
      leak_reported_.push_back(lt);
      ++counts_.leaked_threads;
      const Lifetime& l = lifetimes_[lt];
      std::string msg =
          strfmt("thread context [NWID %u][TID %u] (%s thread, creation #%llu "
                 "@%llu on lane %u) is still live at drain: some handler returned "
                 "without yield_terminate and nothing will ever address it again",
                 nw, tid, ev_name(l.create_label).c_str(),
                 static_cast<unsigned long long>(l.create_seq),
                 static_cast<unsigned long long>(l.created_at), l.nwid);
      // Multi-tenant attribution: name the job whose lane partition leaked.
      if (lane_annotator_) {
        const std::string owner = lane_annotator_(l.nwid);
        if (!owner.empty()) msg += " [job: " + owner + "]";
      }
      diag({CheckKind::kLeakedThread, true, m_.now(), nw, tid, l.create_label,
            0, l.create_seq, std::move(msg)});
    }
  }

  // Fresh drain-state gauges (recomputed each report, not accumulated).
  std::uint64_t undelivered = 0;
  if (!m_.idle()) {
    for (const auto& shp : m_.shards_) {
      undelivered += shp->queue.size();
      for (const auto& box : shp->outbox)
        undelivered += box.msgs.size() + box.drams.size();
    }
  }
  counts_.undelivered_messages = undelivered;
  if (counts_.undelivered_messages) {
    diag({CheckKind::kUndeliveredMessages, true, m_.now(), 0, 0, 0, 0, 0,
          strfmt("report with %llu message(s) still queued: the machine is not "
                 "quiescent",
                 static_cast<unsigned long long>(counts_.undelivered_messages))});
  }
  counts_.leaked_allocations = m_.memory().live_descriptors().size();
  counts_.unfired_continuations = 0;
  for (const auto& [w, p] : pending_conts_) {
    counts_.unfired_continuations += p.count;
    if (std::find(cont_reported_.begin(), cont_reported_.end(), w) !=
        cont_reported_.end())
      continue;
    cont_reported_.push_back(w);
    diag({CheckKind::kUnfiredContinuation, false, m_.now(), p.lane, 0, p.label, 0, 0,
          strfmt("continuation word 0x%llx (-> %s) first delivered @%llu on NWID %u "
                 "was never fired (%u obligation(s)): the caller's return event "
                 "will not run",
                 static_cast<unsigned long long>(w), ev_name(p.label).c_str(),
                 static_cast<unsigned long long>(p.first_tick), p.lane, p.count)});
  }

  counts_.enabled = true;
  counts_.sp_strict = sp_strict_;
  counts_.shadow_peak_bytes = shadow_peak_bytes_;
  m_.stats_.check = counts_;

  if (counts_.errors() || dropped_diags_) {
    std::fprintf(stderr,
                 "[UDCHECK] summary: %llu error(s), %llu warning(s)%s\n",
                 static_cast<unsigned long long>(counts_.errors()),
                 static_cast<unsigned long long>(counts_.warnings()),
                 dropped_diags_ ? strfmt(" (%llu diagnostics dropped)",
                                         static_cast<unsigned long long>(dropped_diags_))
                                      .c_str()
                                : "");
  }

  // A full drain is a global barrier: everything executed before it
  // happens-before everything after, so cross-phase host driving can never
  // race with the previous phase. Sync cells carry no cross-era information.
  ++era_;
  sync_clocks_.clear();

  if (m_.idle()) {
    // Full shadow wipe at quiescence. Every pre-drain stamp is ordered before
    // everything the next era runs (the era check in ordered()), so the
    // shadow carries no information forward — drop it, release the refcounts
    // it held (at idle, shadow stamps and leftover metadata slots are the
    // only holders), and retire every dead lifetime so the id space is
    // compact again for the next phase.
    dram_shadow_.clear();
    for (auto& v : sp_shadow_) v.reset();
    reader_pool_.clear();
    reader_pool_free_.clear();
    shadow_bytes_ = 0;  // the peak gauge survives
    // The snapshot pool is dropped wholesale (clocks carry no cross-era
    // information: the era check already orders everything pre-drain before
    // everything after), so every SnapId holder must be nulled first.
    for (auto& mm : msg_meta_) {
      mm.snap = kNoSnap;
      mm.ext = InlineVC{};
      mm.host_ep = 0;
      mm.holds_refs = false;
    }
    for (auto& dm : dram_meta_) {
      dm.snap = kNoSnap;
      dm.ext = InlineVC{};
      dm.host_ep = 0;
      dm.holds_ref = false;
    }
    msg_stash_.clear();   // (ent, seq) keys are monotonic: stale entries can
    dram_stash_.clear();  // never be matched again, they are pure leaks
    origin_snap_ = kNoSnap;
    origin_ext_ = InlineVC{};
    origin_host_ep_ = 0;
    origin_stack_.clear();
    for (Lifetime& l : lifetimes_) {
      l.clock = kNoSnap;
      l.last = InlineVC{};
      l.host_ep = 0;
    }
    snap_pool_.clear();
    snap_free_.clear();
    for (LifetimeId i = 1; i < lifetimes_.size(); ++i) {
      Lifetime& l = lifetimes_[i];
      l.refs = 0;
      if (!l.alive && !l.retired) retire(i);
    }
  }
}

}  // namespace updown
