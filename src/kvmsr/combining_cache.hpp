// Combining cache: the paper's software fetch&add (footnote 1: "implemented
// in UDWeave; it is not a hardware primitive. The implementation caches the
// value in the scratchpad for high performance and provides atomicity").
//
// Additions for a global address accumulate in a lane-local (scratchpad)
// table; atomicity follows from lane event atomicity plus the Hash reduce
// binding, which routes every tuple for a given key to the same lane. The
// flush event — designed to plug into JobSpec::flush — drains the table with
// windowed read-modify-write chains through the simulated DRAM and replies to
// the KVMSR master when its lane is clean.
//
// Relation to shuffle-level map-side combining (JobSpec::combiner): the two
// aggregate at different points and compose. The combining cache merges on
// the RECEIVING lane, after tuples cross the network, and spans the whole
// job. The emit-buffer combiner merges on the SENDING lane, before the
// network, but only within one (source lane, destination) buffer between
// flushes. Enabling the latter shrinks shuffle traffic; this cache then
// absorbs whatever duplicate keys still arrive from different source lanes.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown::kvmsr {

class CombiningCache {
 public:
  static CombiningCache& install(Machine& m);

  explicit CombiningCache(Machine& m);

  /// Slot owner tag for single-tenant use: untagged slots are drained by ANY
  /// job's flush (the pre-multi-tenant behavior, and still the right choice
  /// when one job owns the machine).
  static constexpr Word kUntagged = ~0ull;

  /// fetch&add for f64 accumulators (PageRank contributions). `tag` scopes
  /// the slot to one KVMSR job: the flush phase of job J drains only slots
  /// tagged J (or untagged), so with concurrent jobs sharing a lane, job A's
  /// flush cannot commit job B's pending adds — B's accumulator writes stay
  /// ordered behind B's own flush->master->continuation chain, which is what
  /// keeps checked multi-tenant runs race-free. Callers owning the whole
  /// machine may keep the default.
  void add_f64(Ctx& ctx, Addr addr, double delta, Word tag = kUntagged);
  /// fetch&add for u64 counters (triangle counts, histogram bins).
  void add_u64(Ctx& ctx, Addr addr, Word delta, Word tag = kUntagged);

  /// Event label of the per-lane flush thread; pass as JobSpec::flush.
  EventLabel flush_label() const { return flush_; }

  std::size_t entries(NetworkId lane) const { return per_lane_.at(lane).size(); }
  std::uint64_t total_flushed() const { return total_flushed_; }

 private:
  friend struct CacheFlushThread;

  struct Slot {
    Word bits = 0;       ///< accumulated value (f64 or u64 bit pattern)
    Word tag = kUntagged;///< owning KVMSR job (kUntagged = any flush drains)
    bool is_f64 = false;
  };
  using LaneMap = std::unordered_map<Addr, Slot>;

  std::vector<LaneMap> per_lane_;
  EventLabel flush_ = 0;
  EventLabel loaded_ = 0;
  EventLabel written_ = 0;
  // Bumped by flush threads on every lane (= many shards); read host-side
  // after drain.
  std::atomic<std::uint64_t> total_flushed_{0};
};

}  // namespace updown::kvmsr
