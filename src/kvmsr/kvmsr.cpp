#include "kvmsr/kvmsr.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/env.hpp"

namespace updown::kvmsr {

namespace {
// udcheck sync-cell slots for the per-lane emit/receive counters: the
// termination gather's poll read of these counters is a happens-before edge
// (reduce tasks terminate without sending, so the message graph alone cannot
// order their DRAM writes before the master's done decision).
constexpr std::uint64_t emitted_slot(JobId job) { return 2ull * job; }
constexpr std::uint64_t received_slot(JobId job) { return 2ull * job + 1; }

// Sync cell carrying the emitter→flusher happens-before edge for one
// (job, destination) emit buffer: every append releases it, the flush
// acquires it before sending the packet, so the packet's clock dominates
// every emitter — one conservative HB edge per packed tuple. Cell keys must
// fit 32 bits (the checker packs them as (lane << 32) | slot); bit 31
// namespaces buffer cells away from the emitted/received counter cells,
// which bounds job ids to 11 bits and lane ids to 20 (checked at add_job).
constexpr std::uint64_t buf_slot(JobId job, NetworkId dst) {
  return (1ull << 31) | (static_cast<std::uint64_t>(job) << 20) | dst;
}

/// JobSpec::coalesce_tuples with the UD_COALESCE override applied. Strict
/// parse: trailing garbage, a negative value, or a factor beyond the
/// bulk-message capacity (kMaxBulkWords) throws std::invalid_argument at
/// add_job time instead of being silently truncated or wrapped; "0", empty,
/// and unset keep the job's configured factor.
std::uint32_t resolved_coalesce(const JobSpec& spec) {
  const std::uint32_t c = static_cast<std::uint32_t>(
      env_u64("UD_COALESCE", spec.coalesce_tuples, kMaxBulkWords));
  return std::max<std::uint32_t>(1, c);
}

/// Buffer capacity in tuples: the job's factor, clamped so one packet's
/// payload fits the bulk-message capacity at this tuple width.
std::uint32_t tuple_cap(std::uint32_t coalesce, std::uint32_t nvals) {
  return std::min<std::uint32_t>(coalesce, kMaxBulkWords / (1 + nvals));
}

Word combine_values(const JobSpec& spec, Word a, Word b) {
  switch (spec.combiner) {
    case Combiner::kSumU64: return a + b;
    case Combiner::kSumF64: {
      double x, y;
      std::memcpy(&x, &a, sizeof x);
      std::memcpy(&y, &b, sizeof y);
      const double r = x + y;
      Word w;
      std::memcpy(&w, &r, sizeof w);
      return w;
    }
    case Combiner::kMinU64: return std::min(a, b);
    case Combiner::kMaxU64: return std::max(a, b);
    case Combiner::kUser: return spec.combine_fn(a, b);
    case Combiner::kNone: break;
  }
  return b;
}
}  // namespace

// ---------------------------------------------------------------------------
// Runtime thread classes. These are the KVMSR library's own UDWeave threads:
// a per-launch master, per-node broadcast relays, a per-lane worker that
// pumps map tasks with a bounded in-flight window, and per-lane poll agents
// for the termination gather.
// ---------------------------------------------------------------------------

struct MasterThread : ThreadState {
  JobId job = 0;
  std::uint64_t key_begin = 0, key_end = 0;
  Word cont = IGNRCONT;
  std::uint32_t lanes_done = 0;
  std::uint64_t keys_done = 0;  // kDirect mode
  std::uint32_t poll_replies = 0;
  std::uint64_t poll_emitted = 0, poll_received = 0;
  std::uint64_t pbmw_next = 0;
  std::uint32_t flush_replies = 0;
  Tick backoff = 128;  ///< exponential re-poll delay, capped at spec.poll_backoff

  void m_start(Ctx& ctx);
  void m_lane_map_done(Ctx& ctx);
  void m_poll_again(Ctx& ctx);
  void m_key_returned(Ctx& ctx);
  void m_pbmw_request(Ctx& ctx);
  void m_poll_reply(Ctx& ctx);
  void m_flush_done(Ctx& ctx);

 private:
  void map_phase_complete(Ctx& ctx);
  void start_poll_round(Ctx& ctx);
  void start_flush(Ctx& ctx);
  void finish(Ctx& ctx);
};

struct RelayThread : ThreadState {
  void relay(Ctx& ctx);
};

struct WorkerThread : ThreadState {
  JobId job = 0;
  std::uint64_t next = 0, end = 0;
  Word master = 0;  ///< master thread event word (any label)
  std::uint32_t inflight = 0;
  bool waiting_grant = false;
  bool no_more = false;

  void w_start(Ctx& ctx);
  void w_map_returned(Ctx& ctx);
  void w_grant(Ctx& ctx);

 private:
  void pump(Ctx& ctx);
  void maybe_finish(Ctx& ctx);
};

struct PollThread : ThreadState {
  void p_poll(Ctx& ctx);
};

/// Receiver of one coalesced shuffle packet: unpacks the bulk payload into
/// per-tuple reduce tasks executed inline on this lane, each charged its own
/// handler cost exactly as an individually delivered tuple would have been.
struct PacketThread : ThreadState {
  void kv_packet(Ctx& ctx);
};

// ---------------------------------------------------------------------------
// Library
// ---------------------------------------------------------------------------

Library& Library::install(Machine& m) {
  if (m.has_service<Library>()) return m.service<Library>();
  return m.add_service<Library>(m);
}

Library::Library(Machine& m) : m_(m) {
  Program& p = m.program();
  m_start_ = p.event("kvmsr::m_start", &MasterThread::m_start);
  m_lane_map_done_ = p.event("kvmsr::m_lane_map_done", &MasterThread::m_lane_map_done);
  m_key_returned_ = p.event("kvmsr::m_key_returned", &MasterThread::m_key_returned);
  m_pbmw_request_ = p.event("kvmsr::m_pbmw_request", &MasterThread::m_pbmw_request);
  m_poll_reply_ = p.event("kvmsr::m_poll_reply", &MasterThread::m_poll_reply);
  m_poll_again_ = p.event("kvmsr::m_poll_again", &MasterThread::m_poll_again);
  m_flush_done_ = p.event("kvmsr::m_flush_done", &MasterThread::m_flush_done);
  relay_start_ = p.event("kvmsr::relay", &RelayThread::relay);
  w_start_ = p.event("kvmsr::w_start", &WorkerThread::w_start);
  w_map_returned_ = p.event("kvmsr::w_map_returned", &WorkerThread::w_map_returned);
  w_grant_ = p.event("kvmsr::w_grant", &WorkerThread::w_grant);
  p_poll_ = p.event("kvmsr::p_poll", &PollThread::p_poll);
  kv_packet_ = p.event("kvmsr::kv_packet", &PacketThread::kv_packet);
}

JobId Library::add_job(JobSpec spec) {
  Job j;
  j.spec = std::move(spec);
  j.coalesce = resolved_coalesce(j.spec);
  j.emitted_by_lane.assign(m_.config().total_lanes(), 0);
  j.received_by_lane.assign(m_.config().total_lanes(), 0);
  if (j.coalesce > 1) {
    if (jobs_.size() >= (1u << 11) || m_.config().total_lanes() >= (1u << 20))
      throw std::runtime_error("KVMSR coalescing: job or lane id exceeds the "
                               "32-bit sync-cell packing (see buf_slot)");
    j.bufs_by_lane.resize(m_.config().total_lanes());
  }
  jobs_.push_back(std::move(j));
  return static_cast<JobId>(jobs_.size() - 1);
}

LaneSet Library::resolved_lanes(const Job& j) const {
  LaneSet s = j.spec.lanes;
  if (s.count == 0) {
    s.first = 0;
    s.count = static_cast<std::uint32_t>(m_.config().total_lanes());
  }
  return s;
}

NetworkId Library::reduce_lane(Job& j, Word key) const {
  const LaneSet s = resolved_lanes(j);
  if (j.spec.reduce_binding) return j.spec.reduce_binding(key, s.first, s.count);
  return s.first + static_cast<NetworkId>(hash64(key) % s.count);  // Hash binding
}

void Library::launch_from_host(JobId job, std::uint64_t key_begin, std::uint64_t key_end,
                               Word cont) {
  const LaneSet s = resolved_lanes(jobs_.at(job));
  m_.send_from_host(evw::make_new(s.first, m_start_), {job, key_begin, key_end}, cont);
}

void Library::launch_from_host_at(Tick at, JobId job, std::uint64_t key_begin,
                                  std::uint64_t key_end, Word cont) {
  const LaneSet s = resolved_lanes(jobs_.at(job));
  m_.send_from_host_at(at, evw::make_new(s.first, m_start_), {job, key_begin, key_end},
                       cont);
}

void Library::launch(Ctx& ctx, JobId job, std::uint64_t key_begin, std::uint64_t key_end,
                     Word cont) {
  const LaneSet s = resolved_lanes(jobs_.at(job));
  ctx.send_event(evw::make_new(s.first, m_start_), {job, key_begin, key_end}, cont);
}

const JobState& Library::run_to_completion(JobId job, std::uint64_t key_begin,
                                           std::uint64_t key_end) {
  // run() below drains the WHOLE machine, so any other resident job would be
  // driven to completion (or deadlock on its absent driver) under this job's
  // name — a single-tenant helper silently swallowing a concurrent workload.
  // Debug builds assert; Release builds throw. Concurrent jobs go through
  // launch_from_host + Machine::run_until (see serve::Scheduler).
  for (JobId o = 0; o < static_cast<JobId>(jobs_.size()); ++o) {
    if (o != job && jobs_[o].state.running) {
      assert(false && "KVMSR run_to_completion: another job is resident; "
                      "drive concurrent jobs with Machine::run_until");
      throw std::runtime_error("KVMSR: run_to_completion('" + jobs_.at(job).spec.name +
                               "') while job '" + jobs_[o].spec.name +
                               "' is resident; drive concurrent jobs with "
                               "Machine::run_until instead");
    }
  }
  launch_from_host(job, key_begin, key_end);
  m_.run();
  if (jobs_.at(job).state.running)
    throw std::runtime_error("KVMSR job '" + jobs_[job].spec.name +
                             "' did not terminate (machine went quiescent mid-job)");
  return jobs_.at(job).state;
}

void Library::emit(Ctx& ctx, JobId job, Word key, Word v0) {
  Job& j = jobs_.at(job);
  const NetworkId dst = reduce_lane(j, key);
  ctx.charge(2);  // binding hash + scratchpad emit counter
  ctx.shuffle_stats().tuples_emitted++;
  if (j.coalesce > 1) {
    const Word vals[1] = {v0};
    coalesce_emit(ctx, job, j, dst, key, vals, 1);
    return;
  }
  j.emitted_by_lane.at(ctx.nwid())++;
  ctx.sync_release(emitted_slot(job));
  ctx.send_event(evw::make_new(dst, j.spec.kv_reduce), {key, v0, job});
  count_tuple_message(ctx, dst, 3);
}

void Library::emit2(Ctx& ctx, JobId job, Word key, Word v0, Word v1) {
  Job& j = jobs_.at(job);
  const NetworkId dst = reduce_lane(j, key);
  ctx.charge(2);
  ctx.shuffle_stats().tuples_emitted++;
  if (j.coalesce > 1) {
    const Word vals[2] = {v0, v1};
    coalesce_emit(ctx, job, j, dst, key, vals, 2);
    return;
  }
  j.emitted_by_lane.at(ctx.nwid())++;
  ctx.sync_release(emitted_slot(job));
  ctx.send_event(evw::make_new(dst, j.spec.kv_reduce), {key, v0, v1, job});
  count_tuple_message(ctx, dst, 4);
}

// Shuffle-traffic accounting for one un-coalesced tuple message. Pure
// statistics — never touches timing, so the coalesce-off goldens stay
// bit-identical.
void Library::count_tuple_message(Ctx& ctx, NetworkId dst, std::uint32_t payload_words) {
  ShuffleStats& s = ctx.shuffle_stats();
  s.messages++;
  s.bytes += m_.config().msg_header_bytes + 8ull * payload_words;
  if (m_.node_of(ctx.nwid()) != m_.node_of(dst)) s.cross_node_messages++;
}

void Library::coalesce_emit(Ctx& ctx, JobId job, Job& j, NetworkId dst, Word key,
                            const Word* vals, std::uint32_t nvals) {
  LaneBufs& lb = j.bufs_by_lane.at(ctx.nwid());
  std::uint32_t slot;
  const auto it = lb.index.find(dst);
  if (it == lb.index.end()) {
    slot = static_cast<std::uint32_t>(lb.bufs.size());
    lb.bufs.push_back(EmitBuf{dst, nvals, 0, {}});
    lb.index.emplace(dst, slot);
  } else {
    slot = it->second;
  }
  EmitBuf& b = lb.bufs[slot];
  // emit/emit2 width mix on one destination: ship the old-width packet first.
  if (b.ntuples > 0 && b.nvals != nvals) flush_buffer(ctx, job, j, b);
  b.nvals = nvals;

  // Map-side combining: merge into an equal key already waiting in the
  // buffer. The merged tuple never becomes a reduce task, so it must NOT
  // bump the emitted counter — emitted == received stays exact.
  if (j.spec.combiner != Combiner::kNone && nvals == 1) {
    for (std::uint32_t t = 0; t < b.ntuples; ++t) {
      if (b.words[2 * t] == key) {
        b.words[2 * t + 1] = combine_values(j.spec, b.words[2 * t + 1], vals[0]);
        ctx.charge(1);  // probe hit: one scratchpad read-modify-write
        ctx.shuffle_stats().tuples_combined++;
        return;
      }
    }
  }

  b.words.push_back(key);
  for (std::uint32_t i = 0; i < nvals; ++i) b.words.push_back(vals[i]);
  b.ntuples++;
  j.emitted_by_lane.at(ctx.nwid())++;
  ctx.sync_release(emitted_slot(job));
  ctx.sync_release(buf_slot(job, dst));
  if (b.ntuples >= tuple_cap(j.coalesce, nvals)) flush_buffer(ctx, job, j, b);
}

void Library::flush_buffer(Ctx& ctx, JobId job, Job& j, EmitBuf& b) {
  if (b.ntuples == 0) return;
  // The acquire stamps the packet with a clock dominating every emitter that
  // appended to this buffer (see buf_slot) — the checker sees one HB edge
  // covering each packed tuple.
  ctx.sync_acquire(buf_slot(job, b.dst));
  ctx.send_event_bulk(evw::make_new(b.dst, kv_packet_), {job, b.ntuples, b.nvals},
                      b.words.data(), static_cast<std::uint32_t>(b.words.size()));
  ShuffleStats& s = ctx.shuffle_stats();
  s.messages++;
  s.coalesced_packets++;
  s.bytes += m_.config().msg_header_bytes + 8ull * (3 + b.words.size());
  if (m_.node_of(ctx.nwid()) != m_.node_of(b.dst)) s.cross_node_messages++;
  b.words.clear();
  b.ntuples = 0;
}

void Library::flush_lane(Ctx& ctx, JobId job) {
  Job& j = jobs_.at(job);
  if (j.coalesce <= 1) return;
  for (EmitBuf& b : j.bufs_by_lane.at(ctx.nwid()).bufs) flush_buffer(ctx, job, j, b);
}

void Library::map_return(Ctx& ctx, Word stored_cont) {
  ctx.send_event(stored_cont, {});
  ctx.yield_terminate();
}

void Library::reduce_return(Ctx& ctx, JobId job) {
  Job& j = jobs_.at(job);
  ctx.charge(1);  // scratchpad received counter
  j.received_by_lane.at(ctx.nwid())++;
  ctx.sync_release(received_slot(job));
  ctx.yield_terminate();
}

// ---------------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------------

void MasterThread::m_start(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  job = static_cast<JobId>(ctx.op(0));
  key_begin = ctx.op(1);
  key_end = ctx.op(2);
  cont = ctx.ccont();

  Library::Job& j = lib.jobs_.at(job);
  if (j.state.running)
    throw std::runtime_error("KVMSR: job '" + j.spec.name + "' launched while running");
  j.state.running = true;
  j.state.runs++;
  j.state.start_tick = ctx.start_time();
  j.state.map_done_tick = j.state.done_tick = 0;
  j.state.total_keys = key_end - key_begin;
  j.state.total_emitted = 0;
  j.state.poll_rounds = 0;
  j.state.cancelled = false;
  j.cancel = false;  // a relaunch of a previously cancelled job starts fresh
  backoff = 128;
  std::fill(j.emitted_by_lane.begin(), j.emitted_by_lane.end(), 0);
  std::fill(j.received_by_lane.begin(), j.received_by_lane.end(), 0);

  // udtrace spans live on the master lane: map from launch to the map
  // barrier, then shuffle-drain, then flush — the paper's phase anatomy.
  // Name construction is guarded so the trace-off path stays zero-cost.
  if (ctx.machine().tracer()) ctx.trace_phase_begin(j.spec.name + ":map");

  const LaneSet s = lib.resolved_lanes(j);

  switch (j.spec.map_binding) {
    case MapBinding::kBlock: {
      // Broadcast through one relay per node (the multi-level control tree
      // the paper's BFS artifact describes).
      const NetworkId set_end = s.first + s.count;
      for (std::uint32_t node = ctx.machine().node_of(s.first);
           node <= ctx.machine().node_of(set_end - 1); ++node) {
        const NetworkId node_first =
            std::max<NetworkId>(s.first, ctx.machine().first_lane_of_node(node));
        ctx.send_event(ctx.evw_new(node_first, lib.relay_start_),
                       {job, key_begin, key_end, s.first, s.count, ctx.cevnt()});
      }
      break;
    }
    case MapBinding::kPBMW: {
      // Partial block + master-worker: each lane starts with one chunk and
      // asks this master for more.
      pbmw_next = key_begin;
      for (std::uint32_t i = 0; i < s.count; ++i) {
        const std::uint64_t b = std::min(key_end, pbmw_next);
        const std::uint64_t e = std::min(key_end, b + j.spec.pbmw_chunk);
        pbmw_next = e;
        ctx.charge(1);
        ctx.send_event(ctx.evw_new(s.first + i, lib.w_start_), {job, b, e, ctx.cevnt()});
      }
      break;
    }
    case MapBinding::kDirect: {
      // One map task per key, placed by the user's map_home binding. Used
      // when tasks are few and location-sensitive (BFS per-accelerator
      // frontier masters).
      for (std::uint64_t k = key_begin; k < key_end; ++k) {
        ctx.charge(1);
        ctx.send_event(ctx.evw_new(j.spec.map_home(k), j.spec.kv_map), {k, job},
                       ctx.evw_update_event(ctx.cevnt(), lib.m_key_returned_));
      }
      if (key_begin == key_end) map_phase_complete(ctx);
      break;
    }
  }
}

void MasterThread::m_lane_map_done(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  const LaneSet s = lib.resolved_lanes(lib.jobs_.at(job));
  if (++lanes_done == s.count) map_phase_complete(ctx);
}

void MasterThread::m_key_returned(Ctx& ctx) {
  if (++keys_done == key_end - key_begin) map_phase_complete(ctx);
}

void MasterThread::map_phase_complete(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  j.state.map_done_tick = ctx.now();
  if (ctx.machine().tracer()) {
    ctx.trace_phase_end(j.spec.name + ":map");
    if (j.spec.kv_reduce != 0) ctx.trace_phase_begin(j.spec.name + ":drain");
  }
  if (j.spec.kv_reduce != 0)
    start_poll_round(ctx);
  else if (j.spec.flush != 0)
    start_flush(ctx);
  else
    finish(ctx);
}

void MasterThread::start_poll_round(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  const LaneSet s = lib.resolved_lanes(j);
  poll_replies = 0;
  poll_emitted = poll_received = 0;
  j.state.poll_rounds++;
  for (std::uint32_t i = 0; i < s.count; ++i) {
    ctx.charge(1);
    ctx.send_event(ctx.evw_new(s.first + i, lib.p_poll_), {job},
                   ctx.evw_update_event(ctx.cevnt(), lib.m_poll_reply_));
  }
}

void MasterThread::m_poll_reply(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  const LaneSet s = lib.resolved_lanes(j);
  poll_emitted += ctx.op(0);
  poll_received += ctx.op(1);
  if (++poll_replies < s.count) return;
  if (poll_emitted == poll_received) {
    j.state.total_emitted = poll_emitted;
    if (ctx.machine().tracer()) ctx.trace_phase_end(j.spec.name + ":drain");
    if (j.spec.flush != 0)
      start_flush(ctx);
    else
      finish(ctx);
  } else {
    // Tuples are still in flight; gather again after an exponentially
    // growing backoff, so short drains re-poll quickly while long-running
    // reduce phases do not saturate the master lane with polling.
    const Tick delay = std::min(backoff, j.spec.poll_backoff);
    backoff *= 2;
    ctx.send_event_delayed(ctx.evw_update_event(ctx.cevnt(), lib.m_poll_again_), {},
                           IGNRCONT, delay);
  }
}

void MasterThread::m_poll_again(Ctx& ctx) { start_poll_round(ctx); }

void MasterThread::start_flush(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  const LaneSet s = lib.resolved_lanes(j);
  flush_replies = 0;
  if (ctx.machine().tracer()) ctx.trace_phase_begin(j.spec.name + ":flush");
  for (std::uint32_t i = 0; i < s.count; ++i) {
    ctx.charge(1);
    ctx.send_event(ctx.evw_new(s.first + i, j.spec.flush), {job},
                   ctx.evw_update_event(ctx.cevnt(), lib.m_flush_done_));
  }
}

void MasterThread::m_flush_done(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  const LaneSet s = lib.resolved_lanes(lib.jobs_.at(job));
  if (++flush_replies == s.count) finish(ctx);
}

void MasterThread::finish(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  j.state.done_tick = ctx.now();
  j.state.cancelled = j.cancel;
  j.cancel = false;
  j.state.running = false;
  if (j.spec.flush != 0 && ctx.machine().tracer())
    ctx.trace_phase_end(j.spec.name + ":flush");
  if (cont != IGNRCONT) ctx.send_event(cont, {j.state.total_emitted});
  ctx.yield_terminate();
}

void MasterThread::m_pbmw_request(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  if (pbmw_next < key_end) {
    const std::uint64_t b = pbmw_next;
    const std::uint64_t e = std::min(key_end, b + j.spec.pbmw_chunk);
    pbmw_next = e;
    ctx.charge(2);
    ctx.send_reply({b, e, 1});
  } else {
    ctx.send_reply({0, 0, 0});
  }
}

// ---------------------------------------------------------------------------
// Relay + worker + poll agent
// ---------------------------------------------------------------------------

void RelayThread::relay(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  const JobId job_id = static_cast<JobId>(ctx.op(0));
  const std::uint64_t key_begin = ctx.op(1), key_end = ctx.op(2);
  const NetworkId set_first = static_cast<NetworkId>(ctx.op(3));
  const std::uint32_t set_count = static_cast<std::uint32_t>(ctx.op(4));
  const Word master = ctx.op(5);

  Machine& m = ctx.machine();
  const std::uint32_t node = m.node_of(ctx.nwid());
  const NetworkId node_first = m.first_lane_of_node(node);
  const NetworkId node_end = node_first + m.config().lanes_per_node();
  const NetworkId lo = std::max(set_first, node_first);
  const NetworkId hi = std::min<NetworkId>(set_first + set_count, node_end);

  const std::uint64_t total = key_end - key_begin;
  const std::uint64_t per = ceil_div(total, set_count);
  for (NetworkId lane = lo; lane < hi; ++lane) {
    const std::uint64_t i = lane - set_first;
    const std::uint64_t b = std::min(key_end, key_begin + i * per);
    const std::uint64_t e = std::min(key_end, b + per);
    ctx.charge(2);
    ctx.send_event(ctx.evw_new(lane, lib.w_start_), {job_id, b, e, master});
  }
  ctx.yield_terminate();
}

void WorkerThread::w_start(Ctx& ctx) {
  job = static_cast<JobId>(ctx.op(0));
  next = ctx.op(1);
  end = ctx.op(2);
  master = ctx.op(3);
  pump(ctx);
}

void WorkerThread::w_map_returned(Ctx& ctx) {
  --inflight;
  pump(ctx);
}

void WorkerThread::w_grant(Ctx& ctx) {
  waiting_grant = false;
  if (ctx.op(2) != 0) {
    next = ctx.op(0);
    end = ctx.op(1);
    pump(ctx);
  } else {
    no_more = true;
    maybe_finish(ctx);
  }
}

void WorkerThread::pump(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  if (j.cancel) {
    // Drain-to-cancel: forfeit the remaining key range (and any future PBMW
    // grants) so in-flight tasks retire and the normal termination gather
    // runs to done — the job ends cleanly, just early.
    next = end;
    no_more = true;
  }
  while (inflight < j.spec.max_inflight_per_lane && next < end) {
    ctx.charge(1);
    ctx.send_event(ctx.evw_new(ctx.nwid(), j.spec.kv_map), {next, job},
                   ctx.evw_update_event(ctx.cevnt(), lib.w_map_returned_));
    ++inflight;
    ++next;
  }
  if (next >= end && j.spec.map_binding == MapBinding::kPBMW && !waiting_grant && !no_more) {
    waiting_grant = true;
    ctx.send_event(evw::update_event(master, lib.m_pbmw_request_), {job},
                   ctx.evw_update_event(ctx.cevnt(), lib.w_grant_));
    return;
  }
  maybe_finish(ctx);
}

void WorkerThread::maybe_finish(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  Library::Job& j = lib.jobs_.at(job);
  const bool exhausted =
      next >= end && (j.spec.map_binding != MapBinding::kPBMW || no_more);
  if (exhausted && inflight == 0 && !waiting_grant) {
    // Map-task retirement flush: this lane's map work is done, so ship any
    // partially filled emit buffers before reporting map-done (poll-time
    // flushing alone would still be correct, just slower to drain).
    lib.flush_lane(ctx, job);
    ctx.send_event(evw::update_event(master, lib.m_lane_map_done_), {job});
    ctx.yield_terminate();
  }
}

void PollThread::p_poll(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  const JobId job_id = static_cast<JobId>(ctx.op(0));
  Library::Job& j = lib.jobs_.at(job_id);
  // Gather-barrier flush BEFORE the counter reads, in the same event: any
  // tuple still buffered on this lane is counted in emitted but cannot have
  // been received, so after this flush the sums can only agree once every
  // buffer in the set was empty at its poll — and each round flushes, which
  // guarantees progress. This is also the only flush point for lanes with no
  // WorkerThread (kDirect map binding, emits from UDWeave subtasks).
  lib.flush_lane(ctx, job_id);
  ctx.charge(3);  // two scratchpad counter loads + reply setup
  ctx.sync_acquire(emitted_slot(job_id));
  ctx.sync_acquire(received_slot(job_id));
  ctx.send_reply({j.emitted_by_lane.at(ctx.nwid()), j.received_by_lane.at(ctx.nwid())});
  ctx.yield_terminate();
}

void PacketThread::kv_packet(Ctx& ctx) {
  Library& lib = ctx.machine().service<Library>();
  const JobId job_id = static_cast<JobId>(ctx.op(0));
  const std::uint32_t ntuples = static_cast<std::uint32_t>(ctx.op(1));
  const std::uint32_t nvals = static_cast<std::uint32_t>(ctx.op(2));
  Library::Job& j = lib.jobs_.at(job_id);
  const Word reduce_evw = evw::make_new(ctx.nwid(), j.spec.kv_reduce);
  std::uint32_t w = 0;
  for (std::uint32_t t = 0; t < ntuples; ++t) {
    ctx.charge(1);  // per-tuple unpack: operand copy + dispatch
    Word ops[kMaxOperands];
    ops[0] = ctx.bulk_op(w++);                                    // key
    for (std::uint32_t v = 0; v < nvals; ++v) ops[1 + v] = ctx.bulk_op(w++);
    ops[1 + nvals] = job_id;
    // Inline delivery: the reduce handler runs synchronously on this lane
    // with the exact operand layout of an un-coalesced tuple message, and
    // its charged cycles (plus the per-task Thread Yield) accrue to this
    // packet event — per-tuple cost parity with the uncoalesced shuffle.
    ctx.deliver_inline(reduce_evw, ops, 2 + nvals);
  }
  ctx.yield_terminate();
}

// ---------------------------------------------------------------------------

JobId do_all(Library& lib, EventLabel kv_map, LaneSet lanes, MapBinding binding) {
  JobSpec spec;
  spec.kv_map = kv_map;
  spec.kv_reduce = 0;
  spec.lanes = lanes;
  spec.map_binding = binding;
  spec.name = "do_all";
  return lib.add_job(std::move(spec));
}

}  // namespace updown::kvmsr
