// KVMSR: key-value map-shuffle-reduce (paper Section 2.2).
//
// KVMSR organizes large-scale parallelism over a shared global address
// space. A job is described by a user kv_map event (one logical task per key
// of a parallel integer iterator), an optional kv_reduce event (one task per
// tuple emitted into the intermediate map — never materialized, tuples flow
// directly to reducers), and computation bindings:
//
//   - map side:    Block (default) — each lane gets a contiguous key range —
//                  or PBMW (partial-block + master-worker work stealing).
//   - reduce side: Hash (default) — lane = hash(key) % lanes — or any
//                  user-provided binding function.
//
// Contract for user events:
//   kv_map   : new thread per key, ops = {key, job}. CCONT is the launching
//              worker's return continuation; a single-event map task calls
//              Library::map_return(ctx, ctx.ccont()); a multi-event task
//              stores ctx.ccont() in its thread state (see MapTask) and
//              passes it to map_return at the end. Emit tuples at any point
//              with Library::emit(...) — from the map thread or from any
//              subtask it spawned (the task may fan out further in UDWeave).
//   kv_reduce: new thread per tuple, ops = {key, v0 [, v1, v2], job}. Must
//              finish by calling Library::reduce_return(ctx, job), which also
//              terminates the thread.
//   flush    : optional; after the reduce drain the master runs one flush
//              event per lane (new thread, ops = {job}); it must reply to
//              CCONT with no operands when its lane's state is flushed.
//
// Termination protocol (the paper: "KVMSR tracks termination of the map and
// reduce phases"): workers retire map tasks via kv_map_return; once every
// lane reports map-done, the master runs gather rounds polling per-lane
// emitted/received counters until the sums agree, then flushes and signals
// the launch continuation with {total_emitted}.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bits.hpp"
#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown::kvmsr {

using JobId = std::uint32_t;

struct LaneSet {
  NetworkId first = 0;
  std::uint32_t count = 0;  ///< 0 = whole machine (resolved at launch)
};

enum class MapBinding {
  kBlock,   ///< equal contiguous key ranges per lane (default)
  kPBMW,    ///< partial block + master-worker work requests
  kDirect,  ///< one task per key, placed by JobSpec::map_home (few, large,
            ///< location-sensitive tasks — e.g. BFS per-accelerator masters)
};

/// Map-side combining operator applied inside the per-destination emit
/// buffer (JobSpec::combiner). Values are merged as raw 64-bit words; kSumF64
/// reinterprets them as IEEE doubles.
enum class Combiner : std::uint8_t { kNone, kSumU64, kSumF64, kMinU64, kMaxU64, kUser };

struct JobSpec {
  EventLabel kv_map = 0;
  EventLabel kv_reduce = 0;  ///< 0 = map-only (do_all)
  EventLabel flush = 0;      ///< 0 = no flush phase
  MapBinding map_binding = MapBinding::kBlock;
  /// Reduce-side computation binding; empty = Hash (the KVMSR default).
  std::function<NetworkId(Word key, NetworkId first, std::uint32_t count)> reduce_binding;
  /// Map-task home lane for MapBinding::kDirect.
  std::function<NetworkId(Word key)> map_home;
  LaneSet lanes;
  std::uint32_t max_inflight_per_lane = 64;  ///< map-task window per worker: deep
  ///< enough to hide cross-machine DRAM latency (the paper: KVMSR matches
  ///< thread parallelism "to the machine's memory latency ... without any
  ///< application programmer effort")
  std::uint64_t pbmw_chunk = 64;  ///< keys per PBMW grant
  /// Backoff between termination-gather rounds (cycles). Without pacing the
  /// master lane saturates itself re-polling while reducers drain.
  Tick poll_backoff = 4096;
  /// Shuffle coalescing: pack up to this many tuples per (source lane,
  /// destination lane) emit buffer into one simulated bulk message. 1 = off
  /// (default): the classic one-message-per-tuple shuffle, bit-identical to
  /// pre-coalescing builds. The UD_COALESCE environment variable, when set
  /// to a positive integer, overrides this for every job (global experiment
  /// knob, read at add_job). Capacity is further clamped so a packet fits
  /// the bulk payload (kMaxBulkWords words) at the job's tuple width.
  std::uint32_t coalesce_tuples = 1;
  /// Optional map-side combining: merge same-key tuples inside the emit
  /// buffer before they ship. A merged tuple never becomes a reduce task and
  /// is never counted as emitted, so the termination gather's
  /// emitted == received comparison stays exact. Applies only to 1-value
  /// tuples (emit, not emit2) and only while the job coalesces (factor > 1).
  /// Composes with — does not replace — map-task-level pre-aggregation such
  /// as apps' CombiningCache: the cache merges within one map task, the
  /// buffer merges across map tasks that share a source lane.
  Combiner combiner = Combiner::kNone;
  /// Value-merge function for Combiner::kUser: merged = fn(old, incoming).
  std::function<Word(Word, Word)> combine_fn;
  /// Opaque job tag, readable from user events via Library::spec(job).tag.
  /// The stream layer stamps each delta-ingest job with its batch id so the
  /// reduce handlers append parsed edges into the right staging batch.
  Word tag = 0;
  std::string name = "kvmsr";
};

struct JobState {
  Tick start_tick = 0;
  Tick map_done_tick = 0;
  Tick done_tick = 0;
  std::uint64_t total_keys = 0;
  std::uint64_t total_emitted = 0;
  std::uint32_t poll_rounds = 0;
  std::uint32_t runs = 0;
  bool running = false;
  /// The last run was truncated by request_cancel: workers stopped issuing
  /// map tasks, in-flight tasks retired, and the job drained through the
  /// normal termination protocol (done_tick etc. are valid; no state leaks).
  bool cancelled = false;
};

/// Convenience base class for map-task threads that span multiple events and
/// need to hold their KVMSR return continuation across them.
struct MapTask : ThreadState {
  Word kvmsr_cont = IGNRCONT;
  /// Call first thing in the kv_map event.
  void kvmsr_begin(Ctx& ctx) { kvmsr_cont = ctx.ccont(); }
};

class Library {
 public:
  /// Register the KVMSR runtime events on `m` and publish the library as a
  /// machine service. Call once, before Machine::run.
  static Library& install(Machine& m);

  explicit Library(Machine& m);

  JobId add_job(JobSpec spec);
  JobSpec& spec(JobId job) { return jobs_.at(job).spec; }
  const JobState& state(JobId job) const { return jobs_.at(job).state; }
  /// Resolved per-job coalescing factor (spec / UD_COALESCE; 1 = off).
  std::uint32_t coalesce_factor(JobId job) const { return jobs_.at(job).coalesce; }

  // ---- Launch ----------------------------------------------------------------
  /// Fire a job from the host (TOP core). `cont` receives {total_emitted}
  /// when the job completes (IGNRCONT: just read state() after run()).
  void launch_from_host(JobId job, std::uint64_t key_begin, std::uint64_t key_end,
                        Word cont = IGNRCONT);
  /// Like launch_from_host, but the launch message departs the host at
  /// simulated tick max(at, Machine::now()) — offered-load pacing for the
  /// serve scheduler (arrivals in the future wait in the host queue).
  void launch_from_host_at(Tick at, JobId job, std::uint64_t key_begin,
                           std::uint64_t key_end, Word cont = IGNRCONT);
  /// Fire a job from a device event (application driver threads).
  void launch(Ctx& ctx, JobId job, std::uint64_t key_begin, std::uint64_t key_end,
              Word cont = IGNRCONT);
  /// Host helper: launch, run the machine to quiescence, return final state.
  const JobState& run_to_completion(JobId job, std::uint64_t key_begin,
                                    std::uint64_t key_end);

  // ---- Calls available inside user tasks ---------------------------------------
  /// kv_map_emit: push a tuple into the intermediate map; it becomes a
  /// kv_reduce task on the lane chosen by the reduce binding. May be called
  /// from the map thread or any UDWeave subtask on a lane of the job's set.
  void emit(Ctx& ctx, JobId job, Word key, Word v0);
  void emit2(Ctx& ctx, JobId job, Word key, Word v0, Word v1);
  /// kv_map_return: retire the map task (pass ctx.ccont() for single-event
  /// tasks or the stored MapTask::kvmsr_cont) and terminate its thread.
  void map_return(Ctx& ctx, Word stored_cont);
  /// kv_reduce_return: count the processed tuple and terminate the reducer.
  void reduce_return(Ctx& ctx, JobId job);
  /// Coalescing flush hint: ship any partially filled emit buffers of the
  /// calling lane for `job` now. The runtime flushes automatically at
  /// map-task retirement and at every termination-gather poll, so this is
  /// never needed for correctness — but emitting tasks the runtime cannot
  /// see retire (UDWeave subtasks, e.g. BFS expansion chunks) should call it
  /// when they finish emitting, or their tuples wait for the next poll
  /// round. No-op when the job does not coalesce.
  void flush_hint(Ctx& ctx, JobId job) { flush_lane(ctx, job); }

  // ---- Multi-job serving -------------------------------------------------------
  /// Drain-to-cancel: stop issuing new map tasks for `job` at each worker's
  /// next pump; in-flight tasks retire normally and the job runs the regular
  /// termination gather to done (no leaked threads, udcheck-clean). Host-side
  /// only — call while the machine is paused (between run_until windows).
  /// JobState::cancelled reports whether the finished run was truncated.
  /// Note: MapBinding::kDirect sends every map task up front, so cancellation
  /// cannot prune its key-space — it only matters for kBlock/kPBMW.
  void request_cancel(JobId job) { jobs_.at(job).cancel = true; }
  bool cancel_requested(JobId job) const { return jobs_.at(job).cancel; }
  /// Resolved lane set of `job` (a spec count of 0 expanded to the machine).
  LaneSet lanes_of(JobId job) const { return resolved_lanes(jobs_.at(job)); }
  std::size_t num_jobs() const { return jobs_.size(); }
  /// Any job currently mid-flight (between launch and its master's finish)?
  bool any_running() const {
    for (const Job& j : jobs_)
      if (j.state.running) return true;
    return false;
  }

  // ---- Accessors used by handlers / helpers ------------------------------------
  static Word map_key(Ctx& ctx) { return ctx.op(0); }
  static JobId map_job(Ctx& ctx) { return static_cast<JobId>(ctx.op(1)); }
  static Word reduce_key(Ctx& ctx) { return ctx.op(0); }
  static Word reduce_val(Ctx& ctx, unsigned i = 0) { return ctx.op(1 + i); }
  static JobId reduce_job(Ctx& ctx) { return static_cast<JobId>(ctx.op(ctx.nops() - 1)); }

  Machine& machine() { return m_; }

 private:
  friend struct MasterThread;
  friend struct RelayThread;
  friend struct WorkerThread;
  friend struct PollThread;
  friend struct PacketThread;

  /// One (source lane, destination lane) emit buffer. `words` holds
  /// `ntuples` packed tuples of `1 + nvals` words each: {key, v0 [, v1]}.
  struct EmitBuf {
    NetworkId dst = 0;
    std::uint32_t nvals = 0;
    std::uint32_t ntuples = 0;
    std::vector<Word> words;
  };
  /// Per-source-lane buffer set. `bufs` keeps insertion order so flush_lane
  /// ships packets in a deterministic order; flushed buffers are emptied in
  /// place, never erased. Each lane's entry is touched only by the engine
  /// shard that owns the lane (same disjointness as emitted_by_lane).
  struct LaneBufs {
    std::vector<EmitBuf> bufs;
    std::unordered_map<NetworkId, std::uint32_t> index;  ///< dst -> bufs slot
  };

  struct Job {
    JobSpec spec;
    JobState state;
    bool cancel = false;         ///< request_cancel pending (cleared at finish)
    std::uint32_t coalesce = 1;  ///< resolved coalescing factor (1 = off)
    std::vector<std::uint64_t> emitted_by_lane;
    std::vector<std::uint64_t> received_by_lane;
    std::vector<LaneBufs> bufs_by_lane;  ///< sized total_lanes iff coalesce > 1
  };

  LaneSet resolved_lanes(const Job& j) const;
  NetworkId reduce_lane(Job& j, Word key) const;
  void coalesce_emit(Ctx& ctx, JobId job, Job& j, NetworkId dst, Word key,
                     const Word* vals, std::uint32_t nvals);
  void flush_buffer(Ctx& ctx, JobId job, Job& j, EmitBuf& b);
  /// Flush every buffer of the calling lane for `job` (no-op when the job
  /// does not coalesce). Called at map-task retirement (WorkerThread) and at
  /// the start of every termination-gather poll (PollThread) — the latter is
  /// what keeps the emitted/received protocol exact: a non-empty buffer
  /// holds counted-but-undelivered tuples, so the sums cannot agree until a
  /// poll round has flushed it and the reducers have drained.
  void flush_lane(Ctx& ctx, JobId job);
  void count_tuple_message(Ctx& ctx, NetworkId dst, std::uint32_t payload_words);

  Machine& m_;
  std::vector<Job> jobs_;

  // Runtime event labels.
  EventLabel m_start_ = 0;
  EventLabel m_lane_map_done_ = 0;
  EventLabel m_key_returned_ = 0;
  EventLabel m_pbmw_request_ = 0;
  EventLabel m_poll_reply_ = 0;
  EventLabel m_poll_again_ = 0;
  EventLabel m_flush_done_ = 0;
  EventLabel relay_start_ = 0;
  EventLabel w_start_ = 0;
  EventLabel w_map_returned_ = 0;
  EventLabel w_grant_ = 0;
  EventLabel p_poll_ = 0;
  EventLabel kv_packet_ = 0;  ///< coalesced-shuffle packet unpack
};

/// do_all: map-only KVMSR (the paper's 33-LoC wrapper) — run `kv_map` once
/// per key over the lane set, no reduce phase.
JobId do_all(Library& lib, EventLabel kv_map, LaneSet lanes = {},
             MapBinding binding = MapBinding::kBlock);

}  // namespace updown::kvmsr
