#include "kvmsr/combining_cache.hpp"

#include <utility>

namespace updown::kvmsr {

// Per-lane flush: drain the lane's combining table with a window of
// read-modify-write chains (read current DRAM value -> add the cached delta
// -> write back -> ack), then reply to CCONT.
struct CacheFlushThread : ThreadState {
  static constexpr unsigned kWindow = 64;

  Word done_cont = IGNRCONT;
  std::vector<std::pair<Addr, CombiningCache::Slot>> pending;
  CombiningCache::LaneMap by_addr;
  std::size_t next = 0;
  unsigned inflight = 0;
  EventLabel loaded_label = 0, written_label = 0;

  void f_start(Ctx& ctx) {
    auto& cc = ctx.machine().service<CombiningCache>();
    done_cont = ctx.ccont();
    loaded_label = cc.loaded_;
    written_label = cc.written_;
    auto& table = cc.per_lane_.at(ctx.nwid());
    // Job-scoped drain: JobSpec::flush events carry {job} as op 0. Take only
    // slots tagged for this job (or untagged — the single-tenant default,
    // which preserves the drain-everything behavior bit-for-bit when no one
    // tags); other jobs' pending adds stay cached for their own flush.
    const Word job = ctx.nops() > 0 ? ctx.op(0) : CombiningCache::kUntagged;
    const std::size_t scanned = table.size();
    for (auto it = table.begin(); it != table.end();) {
      if (it->second.tag == CombiningCache::kUntagged || it->second.tag == job) {
        pending.emplace_back(it->first, it->second);
        by_addr.emplace(it->first, it->second);
        it = table.erase(it);
      } else {
        ++it;
      }
    }
    ctx.charge(2 + scanned);  // table walk
    pump(ctx);
  }

  void f_loaded(Ctx& ctx) {
    // ccont of a DRAM response carries the request address.
    const Addr addr = ctx.ccont();
    const CombiningCache::Slot slot = find(addr);
    Word updated;
    if (slot.is_f64)
      updated = std::bit_cast<Word>(std::bit_cast<double>(ctx.op(0)) +
                                    std::bit_cast<double>(slot.bits));
    else
      updated = ctx.op(0) + slot.bits;
    ctx.charge(2);
    ctx.send_dram_write(addr, {updated}, written_label);
  }

  void f_written(Ctx& ctx) {
    --inflight;
    ctx.machine().service<CombiningCache>().total_flushed_++;
    pump(ctx);
  }

 private:
  CombiningCache::Slot find(Addr addr) const {
    auto it = by_addr.find(addr);
    if (it == by_addr.end())
      throw std::logic_error("combining cache flush: unknown address in RMW reply");
    return it->second;
  }

  void pump(Ctx& ctx) {
    while (inflight < kWindow && next < pending.size()) {
      ctx.send_dram_read(pending[next].first, 1, loaded_label);
      ++inflight;
      ++next;
    }
    if (inflight == 0 && next >= pending.size()) {
      if (done_cont != IGNRCONT) ctx.send_event(done_cont, {});
      ctx.yield_terminate();
    }
  }
};

CombiningCache& CombiningCache::install(Machine& m) {
  if (m.has_service<CombiningCache>()) return m.service<CombiningCache>();
  return m.add_service<CombiningCache>(m);
}

CombiningCache::CombiningCache(Machine& m) : per_lane_(m.config().total_lanes()) {
  Program& p = m.program();
  flush_ = p.event("combining_cache::f_start", &CacheFlushThread::f_start);
  loaded_ = p.event("combining_cache::f_loaded", &CacheFlushThread::f_loaded);
  written_ = p.event("combining_cache::f_written", &CacheFlushThread::f_written);
}

void CombiningCache::add_f64(Ctx& ctx, Addr addr, double delta, Word tag) {
  ctx.charge(3);  // hash + scratchpad load + store
  Slot& s = per_lane_.at(ctx.nwid())[addr];
  s.is_f64 = true;
  s.tag = tag;
  s.bits = std::bit_cast<Word>(std::bit_cast<double>(s.bits) + delta);
}

void CombiningCache::add_u64(Ctx& ctx, Addr addr, Word delta, Word tag) {
  ctx.charge(3);
  Slot& s = per_lane_.at(ctx.nwid())[addr];
  s.tag = tag;
  s.bits += delta;
}

}  // namespace updown::kvmsr
