// Ctx: the execution context passed to every UDWeave event handler.
//
// It exposes the UpDown intrinsics (paper Section 2.1.2) — event-word
// construction, send_event with optional continuation, DRAM access,
// scratchpad access, yield/yield_terminate — and charges the lane-operation
// costs of paper Table 2 as they are used:
//
//   Thread Create 0 | Thread Yield 1 | Thread Deallocate 1 |
//   Scratchpad Load/Store 1 | Send Message 1-2 | Send DRAM 1-2
//
// Handler-local compute (ALU work, loop control) is charged explicitly with
// charge(); one cycle per simple operation keeps handlers honest about the
// paper's 10-100 instruction task granularity.
#pragma once

#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <initializer_list>

#include "check/checker.hpp"
#include "common/log.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"

namespace updown {

class Ctx {
 public:
  Ctx(Machine& m, EngineShard& sh, Lane lane, Message& msg, Tick start, ThreadId tid,
      Word cevnt, ThreadState& state)
      : m_(m),
        sh_(sh),
        lane_(lane),
        msg_(msg),
        start_(start),
        tid_(tid),
        cevnt_(cevnt),
        nwid_(evw::nwid(cevnt)),
        state_(state) {}

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  // ---- Introspection ---------------------------------------------------------
  Machine& machine() { return m_; }
  GlobalMemory& memory() { return m_.memory(); }
  NetworkId nwid() const { return nwid_; }
  ThreadId tid() const { return tid_; }
  /// CEVNT: the event word of the currently executing event (existing-thread
  /// form, so evw_update_event(cevnt(), label) addresses this same thread).
  Word cevnt() const { return cevnt_; }
  /// CCONT: the continuation word that arrived with this message.
  Word ccont() const { return msg_.cont; }
  unsigned nops() const { return msg_.nops; }
  Word op(unsigned i) const {
    assert(i < msg_.nops);
    return msg_.ops[i];
  }
  /// Bulk payload of the current message (packed sends): valid words behind
  /// the plain operands. Zero for ordinary messages.
  unsigned bulk_words() const { return msg_.bulk_words; }
  Word bulk_op(unsigned i) const {
    assert(i < msg_.bulk_words && msg_.bulk != kNoBulk);
    return sh_.bulk_pool[msg_.bulk].w[i];
  }
  Tick start_time() const { return start_; }
  Tick now() const { return start_ + charged_; }
  std::uint64_t charged() const { return charged_; }

  template <typename T>
  T& state() {
    return static_cast<T&>(state_);
  }

  // ---- Event-word intrinsics -------------------------------------------------
  /// evw_new(networkID, eventLabel): event word for a NEW thread on `dst`.
  Word evw_new(NetworkId dst, EventLabel label) const { return evw::make_new(dst, label); }
  /// evw_update_event(oldEventWord, newEventLabel).
  Word evw_update_event(Word w, EventLabel label) const { return evw::update_event(w, label); }

  // ---- Messaging --------------------------------------------------------------
  /// send_event(eventWord, data..., continuationWord).
  void send_event(Word event_word, std::initializer_list<Word> ops, Word cont = IGNRCONT) {
    send_eventv(event_word, ops.begin(), ops.size(), cont);
  }

  void send_eventv(Word event_word, const Word* ops, std::size_t n, Word cont = IGNRCONT) {
    assert(n <= kMaxOperands);
    Message m;
    m.evw = event_word;
    m.cont = cont;
    m.nops = static_cast<std::uint8_t>(n);
    for (std::size_t i = 0; i < n; ++i) m.ops[i] = ops[i];
    m.src = nwid();
    charge(n > 3 ? 2 : 1);  // Send Message: 1-2 cycles
    lane_.stats().messages_sent++;
    m_.route_message(sh_, nwid_, lane_.next_seq(), std::move(m), now());
  }

  /// Bulk send: a message whose header carries up to 3 plain operands and
  /// whose payload streams `nwords` further words (<= kMaxBulkWords) — the
  /// KVMSR shuffle coalescer's packed-tuple transport. Table-2-faithful cost:
  /// the base Send Message charge covers the header and the first 8 payload
  /// words (the plain-message maximum), and each further 32-byte flit streams
  /// in one cycle. The receiver reads the payload with bulk_op().
  void send_event_bulk(Word event_word, std::initializer_list<Word> ops, const Word* words,
                       std::uint32_t nwords, Word cont = IGNRCONT) {
    assert(ops.size() <= 3 && nwords >= 1 && nwords <= kMaxBulkWords);
    Message m;
    m.evw = event_word;
    m.cont = cont;
    m.nops = static_cast<std::uint8_t>(ops.size());
    std::size_t i = 0;
    for (Word w : ops) m.ops[i++] = w;
    m.src = nwid();
    m.bulk_words = static_cast<std::uint16_t>(nwords);
    const std::uint32_t base = (nwords + m.nops) > 3 ? 2u : 1u;
    const std::uint32_t flits = nwords > 8 ? (nwords - 8 + 3) / 4 : 0u;
    charge(base + flits);
    lane_.stats().messages_sent++;
    m_.route_message(sh_, nwid_, lane_.next_seq(), std::move(m), now(), words);
  }

  /// Deliver an event to a thread on THIS lane synchronously, inside the
  /// current event's execution: no message, no queue round trip. The cycles
  /// the inline handler consumes (plus its yield) are charged to this
  /// context, so lane timing is identical to running the handler back to
  /// back on the lane. Used by the KVMSR packet unpacker to spawn one reduce
  /// thread per packed tuple with per-tuple cycle charging.
  void deliver_inline(Word event_word, const Word* ops, std::size_t n) {
    assert(n <= kMaxOperands);
    assert(evw::nwid(event_word) == nwid_ && "deliver_inline: same-lane only");
    Message m;
    m.evw = event_word;
    m.cont = IGNRCONT;
    m.nops = static_cast<std::uint8_t>(n);
    for (std::size_t i = 0; i < n; ++i) m.ops[i] = ops[i];
    m.src = nwid_;
    charge(m_.deliver_inline(sh_, std::move(m), now()));
  }

  /// KVMSR shuffle traffic counters of the executing shard (merged into
  /// MachineStats::shuffle at the next flush).
  ShuffleStats& shuffle_stats() { return sh_.stats.shuffle; }

  /// send_event after `delay` cycles (the lane timer: used for paced retry
  /// loops such as the KVMSR termination gather's backoff).
  void send_event_delayed(Word event_word, std::initializer_list<Word> ops, Word cont,
                          Tick delay) {
    Message m;
    m.evw = event_word;
    m.cont = cont;
    m.nops = static_cast<std::uint8_t>(ops.size());
    std::size_t i = 0;
    for (Word w : ops) m.ops[i++] = w;
    m.src = nwid();
    charge(1);
    lane_.stats().messages_sent++;
    m_.route_message(sh_, nwid_, lane_.next_seq(), std::move(m), now() + delay);
  }

  /// Reply along the received continuation (no-op when CCONT == IGNRCONT).
  void send_reply(std::initializer_list<Word> ops, Word cont = IGNRCONT) {
    if (msg_.cont == IGNRCONT) return;
    send_event(msg_.cont, ops, cont);
  }

  // ---- DRAM access --------------------------------------------------------------
  /// Read `nwords` (<= 8) 64-bit words starting at `addr`; the response is
  /// delivered to this thread's `return_label` event with the words as
  /// operands and the request address as the continuation word.
  void send_dram_read(Addr addr, unsigned nwords, EventLabel return_label) {
    send_dram_read_to(addr, nwords, evw::update_event(cevnt_, return_label), addr);
  }

  void send_dram_read_to(Addr addr, unsigned nwords, Word reply_evw, Word reply_cont) {
    assert(nwords >= 1 && nwords <= kMaxOperands);
    DramRequest r;
    r.addr = addr;
    r.nwords = static_cast<std::uint8_t>(nwords);
    r.is_write = false;
    r.reply_evw = reply_evw;
    r.reply_cont = reply_cont;
    r.src = nwid();
    charge(2);  // Send DRAM: 1-2 cycles
    m_.route_dram(sh_, nwid_, lane_.next_seq(), std::move(r), now());
  }

  /// Write words to DRAM; if `ack_label` != 0 an acknowledgement event is
  /// delivered to this thread once the write has been serviced.
  void send_dram_write(Addr addr, std::initializer_list<Word> words, EventLabel ack_label = 0) {
    send_dram_writev(addr, words.begin(), words.size(),
                     ack_label ? evw::update_event(cevnt_, ack_label) : 0, addr);
  }

  void send_dram_writev(Addr addr, const Word* words, std::size_t n, Word reply_evw = 0,
                        Word reply_cont = IGNRCONT) {
    assert(n >= 1 && n <= kMaxOperands);
    DramRequest r;
    r.addr = addr;
    r.nwords = static_cast<std::uint8_t>(n);
    r.is_write = true;
    for (std::size_t i = 0; i < n; ++i) r.data[i] = words[i];
    r.reply_evw = reply_evw;
    r.reply_cont = reply_cont;
    r.src = nwid();
    charge(2);
    m_.route_dram(sh_, nwid_, lane_.next_seq(), std::move(r), now());
  }

  // ---- Scratchpad ------------------------------------------------------------
  Word sp_read(std::uint64_t offset) {
    charge(1);
    if (Checker* ck = m_.checker()) {
      if (!ck->on_sp_access(sh_, nwid_, offset, sizeof(Word), /*is_write=*/false, now()))
        return 0;  // out-of-bounds access suppressed (reported by the checker)
    }
    Word v;
    std::memcpy(&v, lane_.scratchpad() + offset, sizeof(Word));
    return v;
  }
  void sp_write(std::uint64_t offset, Word v) {
    charge(1);
    if (Checker* ck = m_.checker()) {
      if (!ck->on_sp_access(sh_, nwid_, offset, sizeof(Word), /*is_write=*/true, now()))
        return;
    }
    std::memcpy(lane_.scratchpad() + offset, &v, sizeof(Word));
  }
  /// Raw scratchpad pointer for bulk operations; caller must charge()
  /// explicitly (1 cycle per word touched). Bypasses udcheck instrumentation.
  std::uint8_t* scratch() { return lane_.scratchpad(); }

  /// Declare a happens-before edge through a lane-local synchronization cell
  /// (an atomic scratchpad counter or flag identified by `slot`): a task that
  /// updates the cell calls sync_release; a later task on the same lane that
  /// reads it and acts on the value calls sync_acquire and inherits the
  /// releaser's causal history. The KVMSR termination gather is the canonical
  /// user: reduce tasks bump a per-lane received counter and terminate
  /// without sending, and the poll agent's read of that counter is the only
  /// ordering edge to the master's done decision. No-ops (one null test)
  /// unless udcheck is on; cycle costs are charged at the counter access.
  void sync_release(std::uint64_t slot) {
    if (Checker* ck = m_.checker()) ck->on_sync_release(sh_, nwid_, slot);
  }
  void sync_acquire(std::uint64_t slot) {
    if (Checker* ck = m_.checker()) ck->on_sync_acquire(sh_, nwid_, slot);
  }
  std::uint64_t sp_alloc(std::uint64_t bytes, std::uint64_t align = 8) {
    return lane_.sp_alloc(bytes, align);
  }
  Lane& lane() { return lane_; }

  // ---- Control ---------------------------------------------------------------
  /// Charge `cycles` of handler-local compute.
  void charge(std::uint64_t cycles) { charged_ += cycles; }

  /// Exit the event and deallocate this thread context (vs the implicit
  /// yield at handler return, which preserves it).
  void yield_terminate() {
    charge(1);  // Thread Deallocate: 1 cycle
    terminate_ = true;
  }
  bool terminated() const { return terminate_; }

  // ---- udtrace phase spans ---------------------------------------------------
  // Named begin/end markers on this lane's timeline (KVMSR map / drain /
  // flush, application supersteps). One null test when tracing is off; when
  // on, a record lands in the executing shard's trace buffer stamped with the
  // lane's private marker counter, so serialization orders markers
  // identically for any shard count. Spans on one lane nest LIFO in the
  // Chrome trace viewer; keep begin/end balanced per lane.
  void trace_phase_begin(std::string_view name) {
    if (Tracer* t = m_.tracer()) t->phase_begin(*sh_.trace, nwid_, now(), name);
  }
  void trace_phase_end(std::string_view name) {
    if (Tracer* t = m_.tracer()) t->phase_end(*sh_.trace, nwid_, now(), name);
  }

  /// Trace in the paper's [BASIM_PRINT]-style format (tick-prefixed).
  void log(const char* fmt, ...) const {
    if (!Logger::enabled(LogLevel::kInfo)) return;
    std::fprintf(stderr, "[UDSIM] %llu: [NWID %u][TID %u] ",
                 static_cast<unsigned long long>(now()), nwid(), tid_);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
  }

 private:
  Machine& m_;
  EngineShard& sh_;  ///< the host thread's engine shard (stats, mailboxes)
  Lane lane_;        ///< value handle over this lane's LaneTable row
  Message& msg_;
  Tick start_;
  ThreadId tid_;
  Word cevnt_;
  NetworkId nwid_;
  ThreadState& state_;
  std::uint64_t charged_ = 0;
  bool terminate_ = false;
};

}  // namespace updown
