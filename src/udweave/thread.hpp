// UDWeave threads and events, as a C++ embedded DSL.
//
// A UDWeave `thread` is a C++ class deriving from ThreadState; its `event`s
// are member functions taking a Ctx&. Events execute atomically on a lane
// (no races on thread state, per paper Section 2.1.1); thread-scope variables
// are simply data members, preserved across events.
//
// The Program registry assigns each event a small integer label — the
// paper's "event label, the address of the event in the program" — which is
// packed into event words.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeindex>
#include <vector>

#include "common/types.hpp"

namespace updown {

class Ctx;

/// Base class for all UDWeave thread state.
struct ThreadState {
  virtual ~ThreadState() = default;
};

struct EventDef {
  std::string name;
  std::function<std::unique_ptr<ThreadState>()> factory;
  std::function<void(Ctx&, ThreadState&)> invoke;
  std::type_index type;
};

/// Registry of all events in a loaded UpDown program. Labels are stable for
/// the lifetime of the Machine; libraries (KVMSR, SHT, ...) register their
/// events once at construction and cache the labels.
class Program {
 public:
  Program() {
    // Label 0 is reserved so that IGNRCONT (the all-zero word) can never be
    // confused with a valid continuation event word.
    defs_.push_back(EventDef{"<invalid>", nullptr, nullptr, std::type_index(typeid(void))});
  }

  /// Register `fn` as the handler for event `name` of thread class T.
  template <class T>
  EventLabel event(std::string name, void (T::*fn)(Ctx&)) {
    static_assert(std::is_base_of_v<ThreadState, T>,
                  "UDWeave thread classes must derive from ThreadState");
    if (defs_.size() >= 4096)
      throw std::length_error("Program: event label space (12 bits) exhausted");
    EventDef def{std::move(name), []() -> std::unique_ptr<ThreadState> {
                   return std::make_unique<T>();
                 },
                 [fn](Ctx& ctx, ThreadState& st) { (static_cast<T&>(st).*fn)(ctx); },
                 std::type_index(typeid(T))};
    defs_.push_back(std::move(def));
    return static_cast<EventLabel>(defs_.size() - 1);
  }

  const EventDef& def(EventLabel label) const {
    if (label == 0 || label >= defs_.size())
      throw std::out_of_range("Program: invalid event label " + std::to_string(label));
    return defs_[label];
  }

  /// Look an event up by name (setup-time convenience; O(n)).
  EventLabel label(std::string_view name) const {
    for (std::size_t i = 1; i < defs_.size(); ++i)
      if (defs_[i].name == name) return static_cast<EventLabel>(i);
    throw std::out_of_range("Program: no event named '" + std::string(name) + "'");
  }

  std::size_t size() const { return defs_.size() - 1; }

 private:
  std::vector<EventDef> defs_;
};

}  // namespace updown
