// UDWeave threads and events, as a C++ embedded DSL.
//
// A UDWeave `thread` is a C++ class deriving from ThreadState; its `event`s
// are member functions taking a Ctx&. Events execute atomically on a lane
// (no races on thread state, per paper Section 2.1.1); thread-scope variables
// are simply data members, preserved across events.
//
// The Program registry assigns each event a small integer label — the
// paper's "event label, the address of the event in the program" — which is
// packed into event words. Each thread class likewise gets a small integer
// class id, stamped into every ThreadState it creates, so the per-event
// "right thread class?" check is one integer compare instead of an RTTI
// type_index comparison.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace updown {

class Ctx;

/// Base class for all UDWeave thread state.
struct ThreadState {
  virtual ~ThreadState() = default;
  /// Program-assigned id of the concrete thread class; stamped by the event
  /// factory at allocation so event dispatch avoids RTTI.
  std::uint32_t ud_class_id = 0;
};

struct EventDef {
  std::string name;
  std::function<std::unique_ptr<ThreadState>()> factory;
  std::function<void(Ctx&, ThreadState&)> invoke;
  /// Destroy + placement-new the state back to freshly-constructed form, so
  /// lanes can recycle thread contexts without a heap round trip. Only valid
  /// on states whose dynamic type matches this event's thread class.
  void (*reinit)(ThreadState&) = nullptr;
  std::uint32_t type_id = 0;  ///< class id of the thread class owning the event
};

/// Registry of all events in a loaded UpDown program. Labels are stable for
/// the lifetime of the Machine; libraries (KVMSR, SHT, ...) register their
/// events once at construction and cache the labels.
class Program {
 public:
  Program() {
    // Label 0 is reserved so that IGNRCONT (the all-zero word) can never be
    // confused with a valid continuation event word.
    defs_.emplace_back("<invalid>", nullptr, nullptr, nullptr, 0);
  }

  /// Register `fn` as the handler for event `name` of thread class T.
  template <class T>
  EventLabel event(std::string name, void (T::*fn)(Ctx&)) {
    static_assert(std::is_base_of_v<ThreadState, T>,
                  "UDWeave thread classes must derive from ThreadState");
    if (defs_.size() >= 4096)
      throw std::length_error("Program: event label space (12 bits) exhausted");
    const std::uint32_t tid = class_id(std::type_index(typeid(T)));
    EventDef def{std::move(name),
                 [tid]() -> std::unique_ptr<ThreadState> {
                   auto p = std::make_unique<T>();
                   p->ud_class_id = tid;
                   return p;
                 },
                 [fn](Ctx& ctx, ThreadState& st) { (static_cast<T&>(st).*fn)(ctx); },
                 [](ThreadState& st) {
                   T& t = static_cast<T&>(st);
                   t.~T();
                   new (static_cast<void*>(&t)) T();
                 },
                 tid};
    defs_.push_back(std::move(def));
    const EventLabel label = static_cast<EventLabel>(defs_.size() - 1);
    name_index_.emplace(defs_.back().name, label);  // first registration wins
    return label;
  }

  const EventDef& def(EventLabel label) const {
    if (label == 0 || label >= defs_.size())
      throw std::out_of_range("Program: invalid event label " + std::to_string(label));
    return defs_[label];
  }

  /// Look an event up by name (first event registered under that name).
  EventLabel label(std::string_view name) const {
    auto it = name_index_.find(std::string(name));
    if (it == name_index_.end())
      throw std::out_of_range("Program: no event named '" + std::string(name) + "'");
    return it->second;
  }

  std::size_t size() const { return defs_.size() - 1; }

 private:
  std::uint32_t class_id(std::type_index type) {
    auto [it, inserted] = class_ids_.emplace(type, next_class_id_);
    if (inserted) ++next_class_id_;
    return it->second;
  }

  std::vector<EventDef> defs_;
  std::unordered_map<std::string, EventLabel> name_index_;
  std::unordered_map<std::type_index, std::uint32_t> class_ids_;
  std::uint32_t next_class_id_ = 1;  ///< 0 reserved for "<invalid>"
};

}  // namespace updown
