# Empty compiler generated dependencies file for tab5_loc.
# This may be replaced when dependencies are built.
