file(REMOVE_RECURSE
  "CMakeFiles/tab5_loc.dir/tab5_loc.cpp.o"
  "CMakeFiles/tab5_loc.dir/tab5_loc.cpp.o.d"
  "tab5_loc"
  "tab5_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
