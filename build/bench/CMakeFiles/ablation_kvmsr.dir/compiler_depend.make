# Empty compiler generated dependencies file for ablation_kvmsr.
# This may be replaced when dependencies are built.
