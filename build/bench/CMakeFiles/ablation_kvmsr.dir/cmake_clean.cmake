file(REMOVE_RECURSE
  "CMakeFiles/ablation_kvmsr.dir/ablation_kvmsr.cpp.o"
  "CMakeFiles/ablation_kvmsr.dir/ablation_kvmsr.cpp.o.d"
  "ablation_kvmsr"
  "ablation_kvmsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kvmsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
