file(REMOVE_RECURSE
  "CMakeFiles/fig10_ingestion.dir/fig10_ingestion.cpp.o"
  "CMakeFiles/fig10_ingestion.dir/fig10_ingestion.cpp.o.d"
  "fig10_ingestion"
  "fig10_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
