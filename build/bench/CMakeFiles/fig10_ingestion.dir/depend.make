# Empty dependencies file for fig10_ingestion.
# This may be replaced when dependencies are built.
