file(REMOVE_RECURSE
  "CMakeFiles/fig9_tc.dir/fig9_tc.cpp.o"
  "CMakeFiles/fig9_tc.dir/fig9_tc.cpp.o.d"
  "fig9_tc"
  "fig9_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
