# Empty dependencies file for fig9_tc.
# This may be replaced when dependencies are built.
