file(REMOVE_RECURSE
  "CMakeFiles/fig9_bfs.dir/fig9_bfs.cpp.o"
  "CMakeFiles/fig9_bfs.dir/fig9_bfs.cpp.o.d"
  "fig9_bfs"
  "fig9_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
