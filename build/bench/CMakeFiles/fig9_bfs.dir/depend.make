# Empty dependencies file for fig9_bfs.
# This may be replaced when dependencies are built.
