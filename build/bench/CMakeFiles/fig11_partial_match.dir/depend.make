# Empty dependencies file for fig11_partial_match.
# This may be replaced when dependencies are built.
