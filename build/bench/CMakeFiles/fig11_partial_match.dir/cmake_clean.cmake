file(REMOVE_RECURSE
  "CMakeFiles/fig11_partial_match.dir/fig11_partial_match.cpp.o"
  "CMakeFiles/fig11_partial_match.dir/fig11_partial_match.cpp.o.d"
  "fig11_partial_match"
  "fig11_partial_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_partial_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
