file(REMOVE_RECURSE
  "CMakeFiles/fig9_pagerank.dir/fig9_pagerank.cpp.o"
  "CMakeFiles/fig9_pagerank.dir/fig9_pagerank.cpp.o.d"
  "fig9_pagerank"
  "fig9_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
