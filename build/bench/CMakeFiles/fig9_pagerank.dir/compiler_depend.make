# Empty compiler generated dependencies file for fig9_pagerank.
# This may be replaced when dependencies are built.
