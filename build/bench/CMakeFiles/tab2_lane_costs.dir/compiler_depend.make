# Empty compiler generated dependencies file for tab2_lane_costs.
# This may be replaced when dependencies are built.
