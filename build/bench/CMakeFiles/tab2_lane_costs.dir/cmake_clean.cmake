file(REMOVE_RECURSE
  "CMakeFiles/tab2_lane_costs.dir/tab2_lane_costs.cpp.o"
  "CMakeFiles/tab2_lane_costs.dir/tab2_lane_costs.cpp.o.d"
  "tab2_lane_costs"
  "tab2_lane_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_lane_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
