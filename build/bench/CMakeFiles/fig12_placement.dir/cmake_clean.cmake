file(REMOVE_RECURSE
  "CMakeFiles/fig12_placement.dir/fig12_placement.cpp.o"
  "CMakeFiles/fig12_placement.dir/fig12_placement.cpp.o.d"
  "fig12_placement"
  "fig12_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
