file(REMOVE_RECURSE
  "CMakeFiles/tab1_drammalloc.dir/tab1_drammalloc.cpp.o"
  "CMakeFiles/tab1_drammalloc.dir/tab1_drammalloc.cpp.o.d"
  "tab1_drammalloc"
  "tab1_drammalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_drammalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
