# Empty compiler generated dependencies file for tab1_drammalloc.
# This may be replaced when dependencies are built.
