# Empty dependencies file for three_clique_count.
# This may be replaced when dependencies are built.
