file(REMOVE_RECURSE
  "CMakeFiles/three_clique_count.dir/three_clique_count.cpp.o"
  "CMakeFiles/three_clique_count.dir/three_clique_count.cpp.o.d"
  "three_clique_count"
  "three_clique_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_clique_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
