file(REMOVE_RECURSE
  "CMakeFiles/tsv.dir/tsv.cpp.o"
  "CMakeFiles/tsv.dir/tsv.cpp.o.d"
  "tsv"
  "tsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
