# Empty compiler generated dependencies file for tsv.
# This may be replaced when dependencies are built.
