file(REMOVE_RECURSE
  "CMakeFiles/pagerank_msr.dir/pagerank_msr.cpp.o"
  "CMakeFiles/pagerank_msr.dir/pagerank_msr.cpp.o.d"
  "pagerank_msr"
  "pagerank_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
