# Empty dependencies file for pagerank_msr.
# This may be replaced when dependencies are built.
