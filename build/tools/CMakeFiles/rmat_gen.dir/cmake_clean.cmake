file(REMOVE_RECURSE
  "CMakeFiles/rmat_gen.dir/rmat_gen.cpp.o"
  "CMakeFiles/rmat_gen.dir/rmat_gen.cpp.o.d"
  "rmat_gen"
  "rmat_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmat_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
