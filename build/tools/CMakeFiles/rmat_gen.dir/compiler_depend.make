# Empty compiler generated dependencies file for rmat_gen.
# This may be replaced when dependencies are built.
