# Empty compiler generated dependencies file for bfs_udweave.
# This may be replaced when dependencies are built.
