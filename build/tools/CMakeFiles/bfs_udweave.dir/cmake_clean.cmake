file(REMOVE_RECURSE
  "CMakeFiles/bfs_udweave.dir/bfs_udweave.cpp.o"
  "CMakeFiles/bfs_udweave.dir/bfs_udweave.cpp.o.d"
  "bfs_udweave"
  "bfs_udweave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_udweave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
