# Empty dependencies file for split_and_shuffle.
# This may be replaced when dependencies are built.
