file(REMOVE_RECURSE
  "CMakeFiles/split_and_shuffle.dir/split_and_shuffle.cpp.o"
  "CMakeFiles/split_and_shuffle.dir/split_and_shuffle.cpp.o.d"
  "split_and_shuffle"
  "split_and_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_and_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
