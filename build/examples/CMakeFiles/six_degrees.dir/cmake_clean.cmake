file(REMOVE_RECURSE
  "CMakeFiles/six_degrees.dir/six_degrees.cpp.o"
  "CMakeFiles/six_degrees.dir/six_degrees.cpp.o.d"
  "six_degrees"
  "six_degrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/six_degrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
