# Empty compiler generated dependencies file for six_degrees.
# This may be replaced when dependencies are built.
