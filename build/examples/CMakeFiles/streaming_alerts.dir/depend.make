# Empty dependencies file for streaming_alerts.
# This may be replaced when dependencies are built.
