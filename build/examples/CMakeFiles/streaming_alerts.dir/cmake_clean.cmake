file(REMOVE_RECURSE
  "CMakeFiles/streaming_alerts.dir/streaming_alerts.cpp.o"
  "CMakeFiles/streaming_alerts.dir/streaming_alerts.cpp.o.d"
  "streaming_alerts"
  "streaming_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
