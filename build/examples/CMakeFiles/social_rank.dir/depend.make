# Empty dependencies file for social_rank.
# This may be replaced when dependencies are built.
