file(REMOVE_RECURSE
  "CMakeFiles/social_rank.dir/social_rank.cpp.o"
  "CMakeFiles/social_rank.dir/social_rank.cpp.o.d"
  "social_rank"
  "social_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
