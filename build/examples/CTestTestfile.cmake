# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_rank "/root/repo/build/examples/social_rank")
set_tests_properties(example_social_rank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_alerts "/root/repo/build/examples/streaming_alerts")
set_tests_properties(example_streaming_alerts PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_six_degrees "/root/repo/build/examples/six_degrees")
set_tests_properties(example_six_degrees PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
