# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_swizzle[1]_include.cmake")
include("/root/repo/build/tests/test_global_memory[1]_include.cmake")
include("/root/repo/build/tests/test_event_word[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_split[1]_include.cmake")
include("/root/repo/build/tests/test_io_layout[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_kvmsr[1]_include.cmake")
include("/root/repo/build/tests/test_pagerank[1]_include.cmake")
include("/root/repo/build/tests/test_bfs[1]_include.cmake")
include("/root/repo/build/tests/test_tc[1]_include.cmake")
include("/root/repo/build/tests/test_sht[1]_include.cmake")
include("/root/repo/build/tests/test_abstractions[1]_include.cmake")
include("/root/repo/build/tests/test_fst[1]_include.cmake")
include("/root/repo/build/tests/test_ingestion[1]_include.cmake")
include("/root/repo/build/tests/test_partial_match[1]_include.cmake")
include("/root/repo/build/tests/test_gnn[1]_include.cmake")
include("/root/repo/build/tests/test_dram_timing[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_kvmsr_edge[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_split_io[1]_include.cmake")
include("/root/repo/build/tests/test_exact_match[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_shmem_collectives[1]_include.cmake")
