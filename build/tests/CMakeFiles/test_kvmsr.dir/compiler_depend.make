# Empty compiler generated dependencies file for test_kvmsr.
# This may be replaced when dependencies are built.
