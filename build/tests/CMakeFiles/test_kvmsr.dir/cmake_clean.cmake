file(REMOVE_RECURSE
  "CMakeFiles/test_kvmsr.dir/kvmsr/test_kvmsr.cpp.o"
  "CMakeFiles/test_kvmsr.dir/kvmsr/test_kvmsr.cpp.o.d"
  "test_kvmsr"
  "test_kvmsr.pdb"
  "test_kvmsr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvmsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
