file(REMOVE_RECURSE
  "CMakeFiles/test_abstractions.dir/abstractions/test_abstractions.cpp.o"
  "CMakeFiles/test_abstractions.dir/abstractions/test_abstractions.cpp.o.d"
  "test_abstractions"
  "test_abstractions.pdb"
  "test_abstractions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abstractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
