# Empty dependencies file for test_abstractions.
# This may be replaced when dependencies are built.
