file(REMOVE_RECURSE
  "CMakeFiles/test_io_layout.dir/graph/test_io_layout.cpp.o"
  "CMakeFiles/test_io_layout.dir/graph/test_io_layout.cpp.o.d"
  "test_io_layout"
  "test_io_layout.pdb"
  "test_io_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
