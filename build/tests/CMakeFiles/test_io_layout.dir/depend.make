# Empty dependencies file for test_io_layout.
# This may be replaced when dependencies are built.
