# Empty dependencies file for test_kvmsr_edge.
# This may be replaced when dependencies are built.
