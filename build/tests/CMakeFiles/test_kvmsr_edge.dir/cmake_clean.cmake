file(REMOVE_RECURSE
  "CMakeFiles/test_kvmsr_edge.dir/kvmsr/test_kvmsr_edge.cpp.o"
  "CMakeFiles/test_kvmsr_edge.dir/kvmsr/test_kvmsr_edge.cpp.o.d"
  "test_kvmsr_edge"
  "test_kvmsr_edge.pdb"
  "test_kvmsr_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvmsr_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
