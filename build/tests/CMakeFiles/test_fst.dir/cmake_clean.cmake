file(REMOVE_RECURSE
  "CMakeFiles/test_fst.dir/tform/test_fst.cpp.o"
  "CMakeFiles/test_fst.dir/tform/test_fst.cpp.o.d"
  "test_fst"
  "test_fst.pdb"
  "test_fst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
