# Empty dependencies file for test_fst.
# This may be replaced when dependencies are built.
