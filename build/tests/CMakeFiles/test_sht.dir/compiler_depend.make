# Empty compiler generated dependencies file for test_sht.
# This may be replaced when dependencies are built.
