file(REMOVE_RECURSE
  "CMakeFiles/test_sht.dir/abstractions/test_sht.cpp.o"
  "CMakeFiles/test_sht.dir/abstractions/test_sht.cpp.o.d"
  "test_sht"
  "test_sht.pdb"
  "test_sht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
