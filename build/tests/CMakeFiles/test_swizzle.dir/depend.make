# Empty dependencies file for test_swizzle.
# This may be replaced when dependencies are built.
