file(REMOVE_RECURSE
  "CMakeFiles/test_exact_match.dir/apps/test_exact_match.cpp.o"
  "CMakeFiles/test_exact_match.dir/apps/test_exact_match.cpp.o.d"
  "test_exact_match"
  "test_exact_match.pdb"
  "test_exact_match[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
