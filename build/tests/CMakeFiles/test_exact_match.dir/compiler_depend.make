# Empty compiler generated dependencies file for test_exact_match.
# This may be replaced when dependencies are built.
