# Empty compiler generated dependencies file for test_ingestion.
# This may be replaced when dependencies are built.
