file(REMOVE_RECURSE
  "CMakeFiles/test_ingestion.dir/apps/test_ingestion.cpp.o"
  "CMakeFiles/test_ingestion.dir/apps/test_ingestion.cpp.o.d"
  "test_ingestion"
  "test_ingestion.pdb"
  "test_ingestion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
