file(REMOVE_RECURSE
  "CMakeFiles/test_event_word.dir/sim/test_event_word.cpp.o"
  "CMakeFiles/test_event_word.dir/sim/test_event_word.cpp.o.d"
  "test_event_word"
  "test_event_word.pdb"
  "test_event_word[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
