# Empty dependencies file for test_event_word.
# This may be replaced when dependencies are built.
