file(REMOVE_RECURSE
  "CMakeFiles/test_split_io.dir/graph/test_split_io.cpp.o"
  "CMakeFiles/test_split_io.dir/graph/test_split_io.cpp.o.d"
  "test_split_io"
  "test_split_io.pdb"
  "test_split_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
