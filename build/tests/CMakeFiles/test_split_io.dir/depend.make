# Empty dependencies file for test_split_io.
# This may be replaced when dependencies are built.
