file(REMOVE_RECURSE
  "CMakeFiles/test_dram_timing.dir/sim/test_dram_timing.cpp.o"
  "CMakeFiles/test_dram_timing.dir/sim/test_dram_timing.cpp.o.d"
  "test_dram_timing"
  "test_dram_timing.pdb"
  "test_dram_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
