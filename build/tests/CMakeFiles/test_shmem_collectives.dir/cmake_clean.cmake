file(REMOVE_RECURSE
  "CMakeFiles/test_shmem_collectives.dir/abstractions/test_shmem_collectives.cpp.o"
  "CMakeFiles/test_shmem_collectives.dir/abstractions/test_shmem_collectives.cpp.o.d"
  "test_shmem_collectives"
  "test_shmem_collectives.pdb"
  "test_shmem_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shmem_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
