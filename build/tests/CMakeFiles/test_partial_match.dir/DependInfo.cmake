
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_partial_match.cpp" "tests/CMakeFiles/test_partial_match.dir/apps/test_partial_match.cpp.o" "gcc" "tests/CMakeFiles/test_partial_match.dir/apps/test_partial_match.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ud_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ud_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ud_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/abstractions/CMakeFiles/ud_abstractions.dir/DependInfo.cmake"
  "/root/repo/build/src/kvmsr/CMakeFiles/ud_kvmsr.dir/DependInfo.cmake"
  "/root/repo/build/src/tform/CMakeFiles/ud_tform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
