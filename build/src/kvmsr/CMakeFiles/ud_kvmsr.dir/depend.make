# Empty dependencies file for ud_kvmsr.
# This may be replaced when dependencies are built.
