
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvmsr/combining_cache.cpp" "src/kvmsr/CMakeFiles/ud_kvmsr.dir/combining_cache.cpp.o" "gcc" "src/kvmsr/CMakeFiles/ud_kvmsr.dir/combining_cache.cpp.o.d"
  "/root/repo/src/kvmsr/kvmsr.cpp" "src/kvmsr/CMakeFiles/ud_kvmsr.dir/kvmsr.cpp.o" "gcc" "src/kvmsr/CMakeFiles/ud_kvmsr.dir/kvmsr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ud_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
