# Empty compiler generated dependencies file for ud_kvmsr.
# This may be replaced when dependencies are built.
