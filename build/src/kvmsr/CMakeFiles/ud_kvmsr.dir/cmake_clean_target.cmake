file(REMOVE_RECURSE
  "libud_kvmsr.a"
)
