file(REMOVE_RECURSE
  "CMakeFiles/ud_kvmsr.dir/combining_cache.cpp.o"
  "CMakeFiles/ud_kvmsr.dir/combining_cache.cpp.o.d"
  "CMakeFiles/ud_kvmsr.dir/kvmsr.cpp.o"
  "CMakeFiles/ud_kvmsr.dir/kvmsr.cpp.o.d"
  "libud_kvmsr.a"
  "libud_kvmsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_kvmsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
