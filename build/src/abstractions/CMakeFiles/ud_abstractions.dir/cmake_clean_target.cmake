file(REMOVE_RECURSE
  "libud_abstractions.a"
)
