# Empty dependencies file for ud_abstractions.
# This may be replaced when dependencies are built.
