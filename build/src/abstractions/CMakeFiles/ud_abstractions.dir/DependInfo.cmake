
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abstractions/global_sort.cpp" "src/abstractions/CMakeFiles/ud_abstractions.dir/global_sort.cpp.o" "gcc" "src/abstractions/CMakeFiles/ud_abstractions.dir/global_sort.cpp.o.d"
  "/root/repo/src/abstractions/parallel_graph.cpp" "src/abstractions/CMakeFiles/ud_abstractions.dir/parallel_graph.cpp.o" "gcc" "src/abstractions/CMakeFiles/ud_abstractions.dir/parallel_graph.cpp.o.d"
  "/root/repo/src/abstractions/shmem.cpp" "src/abstractions/CMakeFiles/ud_abstractions.dir/shmem.cpp.o" "gcc" "src/abstractions/CMakeFiles/ud_abstractions.dir/shmem.cpp.o.d"
  "/root/repo/src/abstractions/sht.cpp" "src/abstractions/CMakeFiles/ud_abstractions.dir/sht.cpp.o" "gcc" "src/abstractions/CMakeFiles/ud_abstractions.dir/sht.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvmsr/CMakeFiles/ud_kvmsr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ud_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
