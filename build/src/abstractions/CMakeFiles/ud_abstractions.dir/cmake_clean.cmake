file(REMOVE_RECURSE
  "CMakeFiles/ud_abstractions.dir/global_sort.cpp.o"
  "CMakeFiles/ud_abstractions.dir/global_sort.cpp.o.d"
  "CMakeFiles/ud_abstractions.dir/parallel_graph.cpp.o"
  "CMakeFiles/ud_abstractions.dir/parallel_graph.cpp.o.d"
  "CMakeFiles/ud_abstractions.dir/shmem.cpp.o"
  "CMakeFiles/ud_abstractions.dir/shmem.cpp.o.d"
  "CMakeFiles/ud_abstractions.dir/sht.cpp.o"
  "CMakeFiles/ud_abstractions.dir/sht.cpp.o.d"
  "libud_abstractions.a"
  "libud_abstractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_abstractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
