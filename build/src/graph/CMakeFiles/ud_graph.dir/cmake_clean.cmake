file(REMOVE_RECURSE
  "CMakeFiles/ud_graph.dir/generators.cpp.o"
  "CMakeFiles/ud_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ud_graph.dir/graph.cpp.o"
  "CMakeFiles/ud_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ud_graph.dir/io.cpp.o"
  "CMakeFiles/ud_graph.dir/io.cpp.o.d"
  "CMakeFiles/ud_graph.dir/layout.cpp.o"
  "CMakeFiles/ud_graph.dir/layout.cpp.o.d"
  "CMakeFiles/ud_graph.dir/split.cpp.o"
  "CMakeFiles/ud_graph.dir/split.cpp.o.d"
  "CMakeFiles/ud_graph.dir/split_io.cpp.o"
  "CMakeFiles/ud_graph.dir/split_io.cpp.o.d"
  "libud_graph.a"
  "libud_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
