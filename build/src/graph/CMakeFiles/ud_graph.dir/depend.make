# Empty dependencies file for ud_graph.
# This may be replaced when dependencies are built.
