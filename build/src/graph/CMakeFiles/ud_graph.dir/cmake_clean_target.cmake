file(REMOVE_RECURSE
  "libud_graph.a"
)
