# Empty dependencies file for ud_runtime.
# This may be replaced when dependencies are built.
