file(REMOVE_RECURSE
  "CMakeFiles/ud_runtime.dir/mem/global_memory.cpp.o"
  "CMakeFiles/ud_runtime.dir/mem/global_memory.cpp.o.d"
  "CMakeFiles/ud_runtime.dir/sim/machine.cpp.o"
  "CMakeFiles/ud_runtime.dir/sim/machine.cpp.o.d"
  "libud_runtime.a"
  "libud_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
