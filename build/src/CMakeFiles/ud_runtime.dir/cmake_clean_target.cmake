file(REMOVE_RECURSE
  "libud_runtime.a"
)
