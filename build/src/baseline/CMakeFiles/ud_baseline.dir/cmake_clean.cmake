file(REMOVE_RECURSE
  "CMakeFiles/ud_baseline.dir/baseline.cpp.o"
  "CMakeFiles/ud_baseline.dir/baseline.cpp.o.d"
  "libud_baseline.a"
  "libud_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
