file(REMOVE_RECURSE
  "libud_baseline.a"
)
