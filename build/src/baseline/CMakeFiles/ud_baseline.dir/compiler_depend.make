# Empty compiler generated dependencies file for ud_baseline.
# This may be replaced when dependencies are built.
