file(REMOVE_RECURSE
  "libud_tform.a"
)
