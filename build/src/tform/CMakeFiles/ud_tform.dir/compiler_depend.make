# Empty compiler generated dependencies file for ud_tform.
# This may be replaced when dependencies are built.
