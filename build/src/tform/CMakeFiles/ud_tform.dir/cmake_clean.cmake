file(REMOVE_RECURSE
  "CMakeFiles/ud_tform.dir/fst.cpp.o"
  "CMakeFiles/ud_tform.dir/fst.cpp.o.d"
  "CMakeFiles/ud_tform.dir/stream_gen.cpp.o"
  "CMakeFiles/ud_tform.dir/stream_gen.cpp.o.d"
  "libud_tform.a"
  "libud_tform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_tform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
