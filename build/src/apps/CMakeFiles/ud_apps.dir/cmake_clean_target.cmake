file(REMOVE_RECURSE
  "libud_apps.a"
)
