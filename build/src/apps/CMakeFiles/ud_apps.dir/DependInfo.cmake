
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bfs.cpp" "src/apps/CMakeFiles/ud_apps.dir/bfs.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/bfs.cpp.o.d"
  "/root/repo/src/apps/exact_match.cpp" "src/apps/CMakeFiles/ud_apps.dir/exact_match.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/exact_match.cpp.o.d"
  "/root/repo/src/apps/gnn.cpp" "src/apps/CMakeFiles/ud_apps.dir/gnn.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/gnn.cpp.o.d"
  "/root/repo/src/apps/ingestion.cpp" "src/apps/CMakeFiles/ud_apps.dir/ingestion.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/ingestion.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/apps/CMakeFiles/ud_apps.dir/pagerank.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/pagerank.cpp.o.d"
  "/root/repo/src/apps/partial_match.cpp" "src/apps/CMakeFiles/ud_apps.dir/partial_match.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/partial_match.cpp.o.d"
  "/root/repo/src/apps/tc.cpp" "src/apps/CMakeFiles/ud_apps.dir/tc.cpp.o" "gcc" "src/apps/CMakeFiles/ud_apps.dir/tc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvmsr/CMakeFiles/ud_kvmsr.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ud_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/abstractions/CMakeFiles/ud_abstractions.dir/DependInfo.cmake"
  "/root/repo/build/src/tform/CMakeFiles/ud_tform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ud_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
