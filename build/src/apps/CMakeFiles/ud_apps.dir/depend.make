# Empty dependencies file for ud_apps.
# This may be replaced when dependencies are built.
