file(REMOVE_RECURSE
  "CMakeFiles/ud_apps.dir/bfs.cpp.o"
  "CMakeFiles/ud_apps.dir/bfs.cpp.o.d"
  "CMakeFiles/ud_apps.dir/exact_match.cpp.o"
  "CMakeFiles/ud_apps.dir/exact_match.cpp.o.d"
  "CMakeFiles/ud_apps.dir/gnn.cpp.o"
  "CMakeFiles/ud_apps.dir/gnn.cpp.o.d"
  "CMakeFiles/ud_apps.dir/ingestion.cpp.o"
  "CMakeFiles/ud_apps.dir/ingestion.cpp.o.d"
  "CMakeFiles/ud_apps.dir/pagerank.cpp.o"
  "CMakeFiles/ud_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/ud_apps.dir/partial_match.cpp.o"
  "CMakeFiles/ud_apps.dir/partial_match.cpp.o.d"
  "CMakeFiles/ud_apps.dir/tc.cpp.o"
  "CMakeFiles/ud_apps.dir/tc.cpp.o.d"
  "libud_apps.a"
  "libud_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
