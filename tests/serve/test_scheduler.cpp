// Multi-tenant serving battery: query kernels vs CPU oracles, concurrent
// jobs with per-job quiescence, admission/QoS policy, drain-to-cancel, and
// the bit-identity-vs-running-alone guarantee for partition-isolated jobs.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "baseline/baseline.hpp"
#include "graph/generators.hpp"
#include "serve/query_engine.hpp"

namespace updown::serve {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

/// Run a single query on a fresh machine to completion via the engine's
/// run_until predicate (no scheduler) and return its result.
QueryResult run_single(Machine& m, const DeviceGraph& dg, QuerySpec spec) {
  auto& eng = QueryEngine::install(m);
  spec.graph = &dg;
  const QueryId q = eng.add_query(std::move(spec));
  eng.launch(q);
  const bool stopped = m.run_until([&] { return eng.done(q); });
  EXPECT_TRUE(eng.done(q));
  if (stopped) m.run();  // drain the tail (gather acks) for idle()
  EXPECT_TRUE(m.idle());
  return eng.collect(q);
}

// ---------------------------------------------------------------------------
// Query kernels vs CPU oracles (single-tenant sanity before concurrency).
// ---------------------------------------------------------------------------

TEST(ServeQueries, PageRankMatchesOracle) {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(7, {}, 21);
  DeviceGraph dg = upload_graph(m, g);
  QuerySpec s;
  s.kind = QueryKind::kPageRank;
  s.iterations = 3;
  s.name = "pr";
  const QueryResult r = run_single(m, dg, std::move(s));
  const auto oracle = baseline::pagerank(g, 3);
  ASSERT_EQ(r.rank.size(), oracle.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(r.rank[v], oracle[v], 1e-9) << "vertex " << v;
  EXPECT_EQ(r.rounds, 3u);
  EXPECT_GT(r.done_tick, r.launch_tick);
}

TEST(ServeQueries, BfsMatchesOracle) {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(8, {.symmetrize = true}, 13);
  DeviceGraph dg = upload_graph(m, g);
  QuerySpec s;
  s.kind = QueryKind::kBfs;
  s.root = 1;
  s.name = "bfs";
  const QueryResult r = run_single(m, dg, std::move(s));
  const auto oracle = baseline::bfs(g, 1);
  ASSERT_EQ(r.dist.size(), oracle.dist.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.dist[v], oracle.dist[v]) << "vertex " << v;
  EXPECT_GE(r.rounds, 2u);
}

TEST(ServeQueries, PathCountMatchesOracle) {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(7, {}, 5);
  DeviceGraph dg = upload_graph(m, g);
  QuerySpec s;
  s.kind = QueryKind::kPathCount;
  s.name = "pc";
  const QueryResult r = run_single(m, dg, std::move(s));
  EXPECT_EQ(r.count, cpu_path_count(g));
  EXPECT_GT(r.count, 0u);
}

TEST(ServeQueries, TrianglesMatchOracle) {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(7, {.symmetrize = true}, 5);
  DeviceGraph dg = upload_graph(m, g);
  QuerySpec s;
  s.kind = QueryKind::kTriangles;
  s.name = "tc";
  const QueryResult r = run_single(m, dg, std::move(s));
  EXPECT_EQ(r.count, baseline::triangle_count(g));
  EXPECT_GT(r.count, 0u);
}

TEST(ServeQueries, ZeroIterationPageRankAndEdgelessGraphs) {
  // Degenerate tenants must terminate cleanly: a 0-sweep PageRank finishes
  // without launching a job; path/triangle queries over an edgeless graph
  // count zero.
  Machine m(MachineConfig::scaled(1));
  Graph g = Graph::from_edges(4, {}, false);
  DeviceGraph dg = upload_graph(m, g);
  auto& eng = QueryEngine::install(m);
  QuerySpec pr;
  pr.kind = QueryKind::kPageRank;
  pr.iterations = 0;
  pr.graph = &dg;
  pr.name = "pr0";
  QuerySpec pc;
  pc.kind = QueryKind::kPathCount;
  pc.graph = &dg;
  pc.name = "pc0";
  QuerySpec tc;
  tc.kind = QueryKind::kTriangles;
  tc.graph = &dg;
  tc.name = "tc0";
  const QueryId q0 = eng.add_query(std::move(pr));
  const QueryId q1 = eng.add_query(std::move(pc));
  const QueryId q2 = eng.add_query(std::move(tc));
  eng.launch(q0);
  eng.launch(q1);
  eng.launch(q2);
  m.run();
  EXPECT_TRUE(eng.done(q0) && eng.done(q1) && eng.done(q2));
  EXPECT_EQ(eng.collect(q0).rounds, 0u);
  EXPECT_EQ(eng.collect(q1).count, 0u);
  EXPECT_EQ(eng.collect(q2).count, 0u);
}

TEST(ServeQueries, SpecValidationRejectsBadInput) {
  Machine m(MachineConfig::scaled(1));
  Graph g = rmat(6, {}, 3);
  DeviceGraph dg = upload_graph(m, g);
  auto& eng = QueryEngine::install(m);
  QuerySpec s;
  s.graph = nullptr;
  EXPECT_THROW(eng.add_query(s), std::invalid_argument);
  s.graph = &dg;
  s.kind = QueryKind::kBfs;
  s.root = g.num_vertices();  // out of range
  EXPECT_THROW(eng.add_query(s), std::invalid_argument);
  s.root = 0;
  s.lanes = {0, static_cast<std::uint32_t>(m.config().total_lanes()) + 1};
  EXPECT_THROW(eng.add_query(s), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Concurrent jobs: disjoint key-spaces, per-job quiescence, isolation.
// ---------------------------------------------------------------------------

/// Upload a per-query graph copy confined to one node partition and build a
/// spec whose lanes and value arrays live on the same nodes — the isolation
/// recipe under which concurrent results must be bit-identical to solo runs.
struct Tenant {
  Graph g;
  DeviceGraph dg;
  QuerySpec spec;
};

Tenant make_tenant(Machine& m, QueryKind kind, Graph graph, std::uint32_t first_node,
                   std::uint32_t nr_nodes, const std::string& name) {
  Tenant t{std::move(graph), {}, {}};
  const GraphPlacement place{first_node, nr_nodes, 32 * 1024};
  t.dg = upload_graph(m, t.g, place);
  const auto lanes_per_node =
      static_cast<std::uint32_t>(m.config().total_lanes() / m.config().nodes);
  t.spec.kind = kind;
  t.spec.lanes = {first_node * lanes_per_node, nr_nodes * lanes_per_node};
  t.spec.values = place;
  t.spec.name = name;
  if (kind == QueryKind::kBfs) t.spec.root = 1;
  if (kind == QueryKind::kPageRank) t.spec.iterations = 2;
  return t;
}

TEST(ServeConcurrent, DisjointPartitionsMatchOraclesAndOverlap) {
  Machine m(MachineConfig::scaled(4));
  auto& eng = QueryEngine::install(m);
  Tenant a = make_tenant(m, QueryKind::kPageRank, rmat(8, {}, 41), 0, 1, "A.pr");
  Tenant b = make_tenant(m, QueryKind::kBfs, rmat(8, {.symmetrize = true}, 42), 1, 1, "B.bfs");
  Tenant c = make_tenant(m, QueryKind::kTriangles, rmat(7, {.symmetrize = true}, 43), 2, 1, "C.tc");
  Tenant d = make_tenant(m, QueryKind::kPathCount, rmat(7, {}, 44), 3, 1, "D.pc");
  a.spec.graph = &a.dg;
  b.spec.graph = &b.dg;
  c.spec.graph = &c.dg;
  d.spec.graph = &d.dg;
  const QueryId qa = eng.add_query(a.spec);
  const QueryId qb = eng.add_query(b.spec);
  const QueryId qc = eng.add_query(c.spec);
  const QueryId qd = eng.add_query(d.spec);
  for (QueryId q : {qa, qb, qc, qd}) eng.launch(q);
  m.run();
  for (QueryId q : {qa, qb, qc, qd}) EXPECT_TRUE(eng.done(q));

  const auto pr_oracle = baseline::pagerank(a.g, 2);
  const QueryResult ra = eng.collect(qa);
  for (VertexId v = 0; v < a.g.num_vertices(); ++v)
    EXPECT_NEAR(ra.rank[v], pr_oracle[v], 1e-9);
  const auto bfs_oracle = baseline::bfs(b.g, 1);
  const QueryResult rb = eng.collect(qb);
  for (VertexId v = 0; v < b.g.num_vertices(); ++v)
    EXPECT_EQ(rb.dist[v], bfs_oracle.dist[v]);
  EXPECT_EQ(eng.collect(qc).count, baseline::triangle_count(c.g));
  EXPECT_EQ(eng.collect(qd).count, cpu_path_count(d.g));

  // True multi-tenancy: every query's [launch, done] window overlaps every
  // other's — they ran simultaneously, not serialized.
  const QueryResult rc = eng.collect(qc);
  const QueryResult rd = eng.collect(qd);
  const QueryResult* all[] = {&ra, &rb, &rc, &rd};
  for (const QueryResult* x : all)
    for (const QueryResult* y : all) {
      EXPECT_LT(x->launch_tick, y->done_tick);
    }
}

/// One shard/check configuration of the bit-identity experiment: build the
/// SAME machine and queries, launch `launch_both ? both : only the first`,
/// and fingerprint query A.
struct SoloVsShared {
  Tick done = 0;
  std::vector<double> rank;
  std::uint64_t emitted = 0;
};

SoloVsShared run_partitioned(std::uint32_t shards, bool check, bool launch_both) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_CHECK", check ? "1" : "0");
  EnvGuard g3("UD_STEAL", "0");
  Machine m(MachineConfig::scaled(4));
  auto& eng = QueryEngine::install(m);
  Tenant a = make_tenant(m, QueryKind::kPageRank, rmat(8, {}, 41), 0, 2, "A.pr");
  Tenant b = make_tenant(m, QueryKind::kBfs, rmat(8, {.symmetrize = true}, 42), 2, 2, "B.bfs");
  a.spec.graph = &a.dg;
  b.spec.graph = &b.dg;
  const QueryId qa = eng.add_query(a.spec);
  const QueryId qb = eng.add_query(b.spec);
  eng.launch(qa);
  if (launch_both) eng.launch(qb);
  m.run();
  EXPECT_TRUE(eng.done(qa));
  if (check) {
    EXPECT_TRUE(m.stats().check.enabled);
    EXPECT_EQ(m.stats().check.errors(), 0u);
  }
  const QueryResult r = eng.collect(qa);
  return {r.done_tick, r.rank, r.emitted};
}

TEST(ServeConcurrent, PartitionedJobIsBitIdenticalToRunningAlone) {
  // The acceptance property: with per-job graph copies, value arrays, and
  // lane partitions confined to disjoint node sets, a job's results AND its
  // per-job completion tick are bit-identical whether or not another job is
  // resident — for any shard count, checked or not.
  const SoloVsShared solo = run_partitioned(1, false, false);
  ASSERT_FALSE(solo.rank.empty());
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (bool check : {false, true}) {
      const SoloVsShared shared = run_partitioned(shards, check, true);
      EXPECT_EQ(shared.done, solo.done) << "shards=" << shards << " check=" << check;
      EXPECT_EQ(shared.emitted, solo.emitted);
      ASSERT_EQ(shared.rank.size(), solo.rank.size());
      for (std::size_t v = 0; v < solo.rank.size(); ++v)
        EXPECT_EQ(std::bit_cast<Word>(shared.rank[v]), std::bit_cast<Word>(solo.rank[v]))
            << "vertex " << v << " shards=" << shards << " check=" << check;
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler policy: admission, QoS, cancellation, diagnostics.
// ---------------------------------------------------------------------------

QuerySpec quick_pr(const DeviceGraph& dg, const std::string& name, std::uint32_t iters = 2) {
  QuerySpec s;
  s.kind = QueryKind::kPageRank;
  s.graph = &dg;
  s.iterations = iters;
  s.name = name;
  return s;
}

TEST(ServeScheduler, AdmissionQueueOverflowRejects) {
  Machine m(MachineConfig::scaled(2));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  SchedOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue = 1;
  Scheduler sched(eng, opt);
  const TicketId t0 = sched.submit(quick_pr(dg, "q0"), QoS::kNormal, 0);
  const TicketId t1 = sched.submit(quick_pr(dg, "q1"), QoS::kNormal, 0);
  const TicketId t2 = sched.submit(quick_pr(dg, "q2"), QoS::kNormal, 0);
  sched.drain();
  EXPECT_EQ(sched.ticket(t0).status, TicketStatus::kDone);
  EXPECT_EQ(sched.ticket(t1).status, TicketStatus::kDone);
  EXPECT_EQ(sched.ticket(t2).status, TicketStatus::kRejected);
  EXPECT_EQ(sched.rejected(), 1u);
  // The queued ticket waited for the running one.
  EXPECT_GE(sched.ticket(t1).queue_wait(), 1u);
  EXPECT_GE(sched.ticket(t1).dispatch, sched.ticket(t0).done);
}

TEST(ServeScheduler, HighQosLeapfrogsLowQosBacklog) {
  Machine m(MachineConfig::scaled(2));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  SchedOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue = 16;
  Scheduler sched(eng, opt);
  // A low-QoS flood arrives first; the high-QoS query arrives last but must
  // dispatch as soon as the running slot frees — bounding its latency by one
  // low job, not the whole backlog.
  const TicketId l0 = sched.submit(quick_pr(dg, "low0"), QoS::kLow, 0);
  std::vector<TicketId> lows;
  for (int i = 1; i <= 4; ++i)
    lows.push_back(sched.submit(quick_pr(dg, "low" + std::to_string(i)), QoS::kLow, 0));
  const TicketId hi = sched.submit(quick_pr(dg, "hi"), QoS::kHigh, 10);
  sched.drain();
  EXPECT_EQ(sched.ticket(hi).status, TicketStatus::kDone);
  EXPECT_GE(sched.ticket(hi).dispatch, sched.ticket(l0).done);
  for (TicketId l : lows) {
    EXPECT_EQ(sched.ticket(l).status, TicketStatus::kDone);
    EXPECT_GT(sched.ticket(l).dispatch, sched.ticket(hi).done)
        << "low ticket dispatched before the high-QoS one finished";
  }
}

TEST(ServeScheduler, AgingUnstarvesBatchTierUnderSaturatedHighQos) {
  // PR 9 follow-up: with strict (qos, arrival) order, a continuously-arriving
  // high-QoS stream holds the single slot forever and the batch ticket never
  // dispatches until the stream dries up. With aging_quantum set, the batch
  // ticket's effective class improves as it waits (ties break by arrival, so
  // the aged early arrival beats fresher high-QoS tickets) and it dispatches
  // in the middle of the stream.
  const auto run = [](Tick quantum) {
    Machine m(MachineConfig::scaled(2));
    auto& eng = QueryEngine::install(m);
    Graph g = rmat(7, {}, 9);
    DeviceGraph dg = upload_graph(m, g);
    SchedOptions opt;
    opt.max_concurrent = 1;
    opt.max_queue = 32;
    opt.aging_quantum = quantum;
    Scheduler sched(eng, opt);
    // The first high is submitted before the batch ticket so it wins the
    // free slot at tick 0; the rest of the stream keeps the slot contested.
    std::vector<TicketId> highs;
    highs.push_back(sched.submit(quick_pr(dg, "hi0"), QoS::kHigh, 0));
    const TicketId batch = sched.submit(quick_pr(dg, "batch"), QoS::kLow, 0);
    for (int i = 1; i < 6; ++i)
      highs.push_back(sched.submit(quick_pr(dg, "hi" + std::to_string(i)),
                                   QoS::kHigh, static_cast<Tick>(i) * 1000));
    sched.drain();
    EXPECT_EQ(sched.ticket(batch).status, TicketStatus::kDone);
    for (const TicketId h : highs) EXPECT_EQ(sched.ticket(h).status, TicketStatus::kDone);
    return std::pair{sched.ticket(batch).dispatch, sched.ticket(highs.back()).dispatch};
  };
  // Aging off (the default): the whole high backlog dispatches first —
  // starvation, and exactly the pre-aging schedule.
  const auto [starved, last_high_off] = run(0);
  EXPECT_GT(starved, last_high_off);
  // Aging on: the batch ticket is promoted a class per quantum waited and
  // leapfrogs the remaining highs well before the stream ends.
  const auto [aged, last_high_on] = run(2000);
  EXPECT_LT(aged, last_high_on);
}

TEST(ServeScheduler, MidFlightCancellationDrainsCleanUnderCheck) {
  EnvGuard g1("UD_CHECK", "1");
  EnvGuard g2("UD_SHARDS", "1");
  Machine m(MachineConfig::scaled(2));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(8, {}, 17);
  DeviceGraph dg = upload_graph(m, g);
  Scheduler sched(eng, {.max_concurrent = 2, .max_queue = 4});
  // Many sweeps, cancelled long before they can finish.
  const TicketId t = sched.submit(quick_pr(dg, "longpr", 64), QoS::kNormal, 0);
  const TicketId bystander = sched.submit(quick_pr(dg, "short", 1), QoS::kNormal, 0);
  sched.request_cancel(t, 20000);
  sched.drain();
  EXPECT_EQ(sched.ticket(t).status, TicketStatus::kCancelled);
  EXPECT_EQ(sched.ticket(bystander).status, TicketStatus::kDone);
  const QueryResult r = eng.collect(sched.ticket(t).query);
  EXPECT_TRUE(r.cancelled);
  EXPECT_LT(r.rounds, 64u);  // truncated well short of the requested sweeps
  // Drain-to-cancel means a clean machine: no leaked threads, no unfired
  // continuations, no races — and nothing left in flight.
  EXPECT_TRUE(m.idle());
  EXPECT_TRUE(m.stats().check.enabled);
  EXPECT_EQ(m.stats().check.errors(), 0u);
}

TEST(ServeScheduler, CancelBeforeArrivalAndWhileQueued) {
  Machine m(MachineConfig::scaled(2));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  Scheduler sched(eng, {.max_concurrent = 1, .max_queue = 4});
  const TicketId running = sched.submit(quick_pr(dg, "run"), QoS::kNormal, 0);
  const TicketId queued = sched.submit(quick_pr(dg, "queued"), QoS::kNormal, 0);
  const TicketId never = sched.submit(quick_pr(dg, "never"), QoS::kNormal, 1u << 20);
  sched.request_cancel(queued, 100);
  sched.request_cancel(never, 50);  // cancelled before it ever arrives
  sched.drain();
  EXPECT_EQ(sched.ticket(running).status, TicketStatus::kDone);
  EXPECT_EQ(sched.ticket(queued).status, TicketStatus::kCancelled);
  EXPECT_FALSE(sched.ticket(queued).dispatched);
  EXPECT_EQ(sched.ticket(never).status, TicketStatus::kCancelled);
}

TEST(ServeScheduler, PartitionModeConfinesInterleavedQueries) {
  Machine m(MachineConfig::scaled(4));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  SchedOptions opt;
  opt.max_concurrent = 4;
  opt.partition_lanes = true;
  Scheduler sched(eng, opt);
  std::vector<TicketId> ts;
  for (int i = 0; i < 4; ++i)
    ts.push_back(sched.submit(quick_pr(dg, "p" + std::to_string(i), 1), QoS::kNormal, 0));
  sched.drain();
  const auto per = static_cast<std::uint32_t>(m.config().total_lanes() / 4);
  for (int i = 0; i < 4; ++i) {
    const Ticket& tk = sched.ticket(ts[static_cast<std::size_t>(i)]);
    EXPECT_EQ(tk.status, TicketStatus::kDone);
    const kvmsr::LaneSet ls = eng.lanes(tk.query);
    EXPECT_EQ(ls.count, per);
    EXPECT_EQ(ls.first % per, 0u);
  }
  // All four ran concurrently in their slots.
  for (const TicketId x : ts)
    for (const TicketId y : ts)
      EXPECT_LT(sched.ticket(x).dispatch, sched.ticket(y).done);
}

TEST(ServeScheduler, PerTicketStatsAreWindowCounters) {
  Machine m(MachineConfig::scaled(2));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  Scheduler sched(eng, {.max_concurrent = 1, .max_queue = 4});
  const TicketId t0 = sched.submit(quick_pr(dg, "s0"), QoS::kNormal, 0);
  const TicketId t1 = sched.submit(quick_pr(dg, "s1"), QoS::kNormal, 0);
  sched.drain();
  // Serialized by the single slot, each window captures its own job's events;
  // both must have executed a meaningful number and the sum cannot exceed
  // the machine total.
  const auto& s0 = sched.ticket(t0).stats;
  const auto& s1 = sched.ticket(t1).stats;
  EXPECT_GT(s0.events_executed, 100u);
  EXPECT_GT(s1.events_executed, 100u);
  EXPECT_LE(s0.events_executed + s1.events_executed, m.stats().events_executed);
  EXPECT_GT(s0.messages_sent, 0u);
  EXPECT_GT(s1.dram_reads, 0u);
}

TEST(ServeScheduler, OffersLoadInArrivalOrderAcrossTime) {
  // Arrivals spread over simulated time: the scheduler must idle-jump to
  // each arrival tick (timer events), and latency = done - ARRIVAL even when
  // the machine sat idle before the query arrived.
  Machine m(MachineConfig::scaled(2));
  auto& eng = QueryEngine::install(m);
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  Scheduler sched(eng, {.max_concurrent = 2, .max_queue = 4});
  const TicketId t0 = sched.submit(quick_pr(dg, "a0", 1), QoS::kNormal, 1000);
  const TicketId t1 = sched.submit(quick_pr(dg, "a1", 1), QoS::kNormal, 500000);
  sched.drain();
  EXPECT_EQ(sched.ticket(t0).status, TicketStatus::kDone);
  EXPECT_EQ(sched.ticket(t1).status, TicketStatus::kDone);
  EXPECT_GE(sched.ticket(t0).dispatch, 1000u);
  EXPECT_GE(sched.ticket(t1).dispatch, 500000u);
  EXPECT_GT(sched.ticket(t1).dispatch, sched.ticket(t0).done);
  // No queueing beyond the host->lane timer delivery latency.
  EXPECT_LE(sched.ticket(t1).queue_wait(), 100u);
}

// ---------------------------------------------------------------------------
// run_to_completion exclusivity diagnostic.
// ---------------------------------------------------------------------------

TEST(ServeScheduler, RunToCompletionRefusesWhileOtherJobsResident) {
  Machine m(MachineConfig::scaled(1));
  auto& eng = QueryEngine::install(m);
  auto& lib = eng.kvmsr_lib();
  Graph g = rmat(7, {}, 9);
  DeviceGraph dg = upload_graph(m, g);
  QuerySpec a = quick_pr(dg, "resident", 8);
  QuerySpec b = quick_pr(dg, "latecomer", 1);
  const QueryId qa = eng.add_query(a);
  eng.add_query(b);
  eng.launch(qa);
  // Park the machine with query A's job mid-flight.
  const bool stopped = m.run_until([&] { return lib.any_running(); });
  ASSERT_TRUE(stopped);
  // Find an idle job to drive single-tenant style — the engine's second
  // query registered one. run_to_completion must refuse: a global drain
  // would steal query A's quiescence.
  kvmsr::JobId idle_job = 0;
  bool found = false;
  for (kvmsr::JobId j = 0; j < static_cast<kvmsr::JobId>(lib.num_jobs()); ++j)
    if (!lib.state(j).running) {
      idle_job = j;
      found = true;
      break;
    }
  ASSERT_TRUE(found);
#ifdef NDEBUG
  EXPECT_THROW(lib.run_to_completion(idle_job, 0, 1), std::runtime_error);
#else
  EXPECT_DEATH(lib.run_to_completion(idle_job, 0, 1), "another job is resident");
#endif
  // The machine is still resumable: finish query A normally.
  m.run();
  EXPECT_TRUE(eng.done(qa));
}

}  // namespace
}  // namespace updown::serve
