// KVMSR edge cases: custom bindings, PBMW chunk boundaries, re-launch rules,
// counters, and the combining cache in isolation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "kvmsr/combining_cache.hpp"
#include "kvmsr/kvmsr.hpp"

namespace updown::kvmsr {
namespace {

struct EdgeApp {
  JobId job = 0;
  std::vector<NetworkId> reduce_ran_at;  // by key
  std::vector<std::uint32_t> map_runs;   // by key
};

struct EMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<EdgeApp>();
    const Word k = Library::map_key(ctx);
    app.map_runs.at(k)++;
    lib.emit(ctx, Library::map_job(ctx), k, 0);
    lib.map_return(ctx, ctx.ccont());
  }
};

struct EReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<EdgeApp>();
    app.reduce_ran_at.at(Library::reduce_key(ctx)) = ctx.nwid();
    lib.reduce_return(ctx, Library::reduce_job(ctx));
  }
};

class KvmsrEdge : public ::testing::Test {
 protected:
  void make(std::uint32_t nodes, JobSpec spec, std::uint64_t keys) {
    m_ = std::make_unique<Machine>(MachineConfig::scaled(nodes));
    lib_ = &Library::install(*m_);
    app_ = &m_->emplace_user<EdgeApp>();
    app_->reduce_ran_at.assign(keys, ~0u);
    app_->map_runs.assign(keys, 0);
    spec.kv_map = m_->program().event("EMap::kv_map", &EMap::kv_map);
    spec.kv_reduce = m_->program().event("EReduce::kv_reduce", &EReduce::kv_reduce);
    app_->job = lib_->add_job(spec);
  }
  std::unique_ptr<Machine> m_;
  Library* lib_ = nullptr;
  EdgeApp* app_ = nullptr;
};

TEST_F(KvmsrEdge, CustomReduceBindingIsHonored) {
  JobSpec spec;
  // Route every key to the LAST lane of the set.
  spec.reduce_binding = [](Word, NetworkId first, std::uint32_t count) {
    return first + count - 1;
  };
  make(2, spec, 100);
  lib_->run_to_completion(app_->job, 0, 100);
  const NetworkId last = static_cast<NetworkId>(m_->config().total_lanes() - 1);
  for (auto lane : app_->reduce_ran_at) EXPECT_EQ(lane, last);
}

TEST_F(KvmsrEdge, DefaultHashBindingUsesManyLanes) {
  make(4, {}, 2000);
  lib_->run_to_completion(app_->job, 0, 2000);
  std::set<NetworkId> used(app_->reduce_ran_at.begin(), app_->reduce_ran_at.end());
  EXPECT_GT(used.size(), m_->config().total_lanes() / 2);
}

TEST_F(KvmsrEdge, EveryKeyMapsExactlyOnce) {
  for (MapBinding b : {MapBinding::kBlock, MapBinding::kPBMW}) {
    JobSpec spec;
    spec.map_binding = b;
    spec.pbmw_chunk = 7;  // deliberately not a divisor of the key count
    make(2, spec, 1000);
    lib_->run_to_completion(app_->job, 0, 1000);
    for (std::uint64_t k = 0; k < 1000; ++k)
      EXPECT_EQ(app_->map_runs[k], 1u) << "binding " << int(b) << " key " << k;
  }
}

TEST_F(KvmsrEdge, PbmwChunkLargerThanKeyRange) {
  JobSpec spec;
  spec.map_binding = MapBinding::kPBMW;
  spec.pbmw_chunk = 1 << 20;
  make(2, spec, 50);
  const JobState& st = lib_->run_to_completion(app_->job, 0, 50);
  EXPECT_EQ(st.total_emitted, 50u);
}

TEST_F(KvmsrEdge, NonZeroKeyRangeStart) {
  make(2, {}, 300);
  lib_->run_to_completion(app_->job, 100, 300);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(app_->map_runs[k], 0u);
  for (std::uint64_t k = 100; k < 300; ++k) EXPECT_EQ(app_->map_runs[k], 1u);
}

TEST_F(KvmsrEdge, RelaunchAfterCompletionResetsCounters) {
  make(2, {}, 100);
  const JobState& st1 = lib_->run_to_completion(app_->job, 0, 100);
  EXPECT_EQ(st1.runs, 1u);
  EXPECT_EQ(st1.total_emitted, 100u);
  std::fill(app_->map_runs.begin(), app_->map_runs.end(), 0);
  const JobState& st2 = lib_->run_to_completion(app_->job, 0, 100);
  EXPECT_EQ(st2.runs, 2u);
  EXPECT_EQ(st2.total_emitted, 100u);  // not 200: counters reset per launch
}

TEST_F(KvmsrEdge, EmptyKeyRangeCompletesImmediately) {
  make(2, {}, 10);
  const JobState& st = lib_->run_to_completion(app_->job, 5, 5);
  EXPECT_EQ(st.total_emitted, 0u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_EQ(app_->map_runs[k], 0u);
  EXPECT_TRUE(m_->idle());
  // An empty launch leaves the job relaunchable — it completed normally.
  const JobState& st2 = lib_->run_to_completion(app_->job, 0, 10);
  EXPECT_EQ(st2.total_emitted, 10u);
}

TEST_F(KvmsrEdge, SingleKeyRange) {
  for (MapBinding b : {MapBinding::kBlock, MapBinding::kPBMW}) {
    JobSpec spec;
    spec.map_binding = b;
    make(2, spec, 100);
    const JobState& st = lib_->run_to_completion(app_->job, 42, 43);
    EXPECT_EQ(st.total_emitted, 1u);
    for (std::uint64_t k = 0; k < 100; ++k)
      EXPECT_EQ(app_->map_runs[k], k == 42 ? 1u : 0u) << "binding " << int(b);
    EXPECT_NE(app_->reduce_ran_at[42], ~0u);
  }
}

// All keys collide onto a single reduce key: the worst-case serialization the
// paper's KVMSR section calls out. Every map emits key 0, so one reduce lane
// must absorb every update, once per emission.
struct CollideApp {
  JobId job = 0;
  std::uint64_t reduce_runs = 0;
  std::set<NetworkId> reduce_lanes;
};

struct CollideMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    lib.emit(ctx, Library::map_job(ctx), /*key=*/0, Library::map_key(ctx));
    lib.map_return(ctx, ctx.ccont());
  }
};

struct CollideReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<CollideApp>();
    app.reduce_runs++;
    app.reduce_lanes.insert(ctx.nwid());
    lib.reduce_return(ctx, Library::reduce_job(ctx));
  }
};

TEST(KvmsrCollide, AllKeysCollideOnOneReducer) {
  Machine m(MachineConfig::scaled(2));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<CollideApp>();
  JobSpec spec;
  spec.kv_map = m.program().event("CollideMap::kv_map", &CollideMap::kv_map);
  spec.kv_reduce = m.program().event("CollideReduce::kv_reduce", &CollideReduce::kv_reduce);
  app.job = lib.add_job(spec);
  const JobState& st = lib.run_to_completion(app.job, 0, 500);
  EXPECT_EQ(st.total_emitted, 500u);
  EXPECT_EQ(app.reduce_runs, 500u);
  EXPECT_EQ(app.reduce_lanes.size(), 1u);  // one key → one owning lane
}

TEST_F(KvmsrEdge, LaunchWhileRunningThrows) {
  make(1, {}, 100);
  lib_->launch_from_host(app_->job, 0, 100);
  lib_->launch_from_host(app_->job, 0, 100);
  EXPECT_THROW(m_->run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Combining cache in isolation.
// ---------------------------------------------------------------------------
struct CcApp {
  Addr cell = 0;
  EventLabel add = 0, flush_done = 0;
  bool flushed = false;
};

struct CcUser : ThreadState {
  void add(Ctx& ctx) {
    auto& cc = ctx.machine().service<CombiningCache>();
    auto& app = ctx.machine().user<CcApp>();
    cc.add_u64(ctx, app.cell, ctx.op(0));
    cc.add_f64(ctx, app.cell + 8, 0.5);
    ctx.yield_terminate();
  }
};

struct CcWatcher : ThreadState {
  void flush_done(Ctx& ctx) {
    ctx.machine().user<CcApp>().flushed = true;
    ctx.yield_terminate();
  }
};

TEST(CombiningCacheUnit, AccumulatesAndFlushesRmw) {
  Machine m(MachineConfig::scaled(1));
  auto& cc = CombiningCache::install(m);
  auto& app = m.emplace_user<CcApp>();
  app.cell = m.memory().dram_malloc_spread(64, 4096);
  m.memory().host_store<Word>(app.cell, 1000);       // pre-existing value: RMW adds
  m.memory().host_store<double>(app.cell + 8, 0.25);
  app.add = m.program().event("CcUser::add", &CcUser::add);
  app.flush_done = m.program().event("CcWatcher::flush_done", &CcWatcher::flush_done);

  for (Word i = 1; i <= 10; ++i) m.send_from_host(evw::make_new(0, app.add), {i});
  m.run();
  EXPECT_EQ(cc.entries(0), 2u);
  EXPECT_EQ(m.memory().host_load<Word>(app.cell), 1000u);  // not yet flushed

  m.send_from_host(evw::make_new(0, cc.flush_label()), {0},
                   evw::make_new(0, app.flush_done));
  m.run();
  EXPECT_TRUE(app.flushed);
  EXPECT_EQ(cc.entries(0), 0u);
  EXPECT_EQ(m.memory().host_load<Word>(app.cell), 1055u);  // 1000 + 1..10
  EXPECT_DOUBLE_EQ(m.memory().host_load<double>(app.cell + 8), 0.25 + 5.0);
  EXPECT_EQ(cc.total_flushed(), 2u);
}

TEST(CombiningCacheUnit, EmptyFlushRepliesImmediately) {
  Machine m(MachineConfig::scaled(1));
  auto& cc = CombiningCache::install(m);
  auto& app = m.emplace_user<CcApp>();
  app.flush_done = m.program().event("CcWatcher::flush_done", &CcWatcher::flush_done);
  m.send_from_host(evw::make_new(3, cc.flush_label()), {0},
                   evw::make_new(0, app.flush_done));
  m.run();
  EXPECT_TRUE(app.flushed);
}

// ---------------------------------------------------------------------------
// UD_COALESCE is parsed strictly at add_job: "-1" used to wrap through
// strtoul into a huge factor (silently clamped), and trailing garbage was
// silently ignored. Both are now fatal; "0"/unset keep the job's factor, and
// anything above the bulk-message capacity (kMaxBulkWords) is rejected
// instead of silently truncated.
// ---------------------------------------------------------------------------

/// Pin an environment variable for the scope of a test (and restore it after).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

class KvmsrCoalesceEnv : public ::testing::Test {
 protected:
  JobId add(Machine& m) {
    auto& lib = Library::install(m);
    JobSpec spec;
    spec.kv_map = m.program().event("EMap::kv_map_env", &EMap::kv_map);
    spec.kv_reduce = m.program().event("EReduce::kv_reduce_env", &EReduce::kv_reduce);
    spec.name = "env";
    spec.coalesce_tuples = 8;
    return lib.add_job(spec);
  }
};

TEST_F(KvmsrCoalesceEnv, NegativeValueThrows) {
  EnvGuard g("UD_COALESCE", "-1");
  Machine m(MachineConfig::scaled(1));
  EXPECT_THROW(add(m), std::invalid_argument);
}

TEST_F(KvmsrCoalesceEnv, TrailingGarbageThrows) {
  EnvGuard g("UD_COALESCE", "16x");
  Machine m(MachineConfig::scaled(1));
  EXPECT_THROW(add(m), std::invalid_argument);
}

TEST_F(KvmsrCoalesceEnv, BeyondBulkCapacityThrows) {
  EnvGuard g("UD_COALESCE", std::to_string(kMaxBulkWords + 1).c_str());
  Machine m(MachineConfig::scaled(1));
  EXPECT_THROW(add(m), std::invalid_argument);
}

TEST_F(KvmsrCoalesceEnv, ZeroAndUnsetKeepTheJobFactor) {
  {
    EnvGuard g("UD_COALESCE", "0");
    Machine m(MachineConfig::scaled(1));
    EXPECT_NO_THROW(add(m));
  }
  {
    EnvGuard g("UD_COALESCE", nullptr);
    Machine m(MachineConfig::scaled(1));
    EXPECT_NO_THROW(add(m));
  }
}

TEST_F(KvmsrCoalesceEnv, CapacityBoundaryIsAccepted) {
  EnvGuard g("UD_COALESCE", std::to_string(kMaxBulkWords).c_str());
  Machine m(MachineConfig::scaled(1));
  EXPECT_NO_THROW(add(m));
}

}  // namespace
}  // namespace updown::kvmsr
