// Shuffle coalescing correctness: every application must compute the same
// answer with UD_COALESCE on and off, across map bindings — Block and PBMW
// (worker-retirement flushes) and kDirect (poll-time + flush-hint flushes).
// Results are exact for jobs without map-side combining (TC pair counts, BFS
// distances); combining jobs (PageRank, GNN) reassociate f64 sums, so their
// outputs match to tight tolerance instead of bitwise.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/bfs.hpp"
#include "apps/gnn.hpp"
#include "apps/pagerank.hpp"
#include "apps/tc.hpp"
#include "graph/generators.hpp"

namespace updown {
namespace {

/// Pin an environment variable for the scope of a test (see
/// test_determinism.cpp): the suite runs under ambient UD_SHARDS/UD_COALESCE
/// in CI, and these tests need both sides of the toggle.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

struct PrRun {
  pr::Result result;
  ShuffleStats shuffle;
};

PrRun run_pr(std::uint32_t coalesce, kvmsr::MapBinding binding) {
  EnvGuard g1("UD_COALESCE", std::to_string(coalesce).c_str());
  EnvGuard g2("UD_SHARDS", nullptr);
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(8, {}, 21);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Options opt;
  opt.iterations = 2;
  opt.map_binding = binding;
  pr::Result r = pr::App::install(m, dg, sg, opt).run();
  return {std::move(r), m.stats().shuffle};
}

void expect_pr_equivalent(kvmsr::MapBinding binding) {
  const PrRun off = run_pr(1, binding);
  const PrRun on = run_pr(16, binding);
  ASSERT_EQ(on.result.rank.size(), off.result.rank.size());
  for (std::size_t v = 0; v < off.result.rank.size(); ++v)
    EXPECT_NEAR(on.result.rank[v], off.result.rank[v], 1e-12) << "vertex " << v;
  // The coalesced run must actually have packed tuples...
  EXPECT_GT(on.shuffle.coalesced_packets, 0u);
  // Packing density at this small scale is modest (tuples spread over every
  // lane, buffers flush at map retirement); >1 proves packing happened, the
  // >=4x density claim is asserted at bench scale (fig9 / CI bench smoke).
  EXPECT_GT(on.shuffle.coalescing_factor(), 1.05);
  // ...and moved strictly fewer, strictly larger shuffle messages.
  EXPECT_LT(on.shuffle.messages, off.shuffle.messages);
  EXPECT_LT(on.shuffle.cross_node_messages, off.shuffle.cross_node_messages);
  // Combining merged at least something on this skewed graph, and the
  // uncoalesced path combined nothing.
  EXPECT_GT(on.shuffle.tuples_combined, 0u);
  EXPECT_EQ(off.shuffle.tuples_combined, 0u);
  EXPECT_EQ(off.shuffle.coalesced_packets, 0u);
}

TEST(Coalesce, PageRankMatchesUncoalescedBlock) {
  expect_pr_equivalent(kvmsr::MapBinding::kBlock);
}

TEST(Coalesce, PageRankMatchesUncoalescedPbmw) {
  expect_pr_equivalent(kvmsr::MapBinding::kPBMW);
}

TEST(Coalesce, BfsMatchesUncoalesced) {
  // BFS maps with kDirect binding: no WorkerThread on the emitting lanes, so
  // this exercises the flush-hint + poll-time flush paths. Distances, round
  // count, and traversed-edge totals are order-insensitive and must be
  // exactly equal; parents may legitimately differ (test-and-set races are
  // resolved by arrival order, and coalescing reorders arrivals), so each
  // parent is instead checked to be a valid tree edge.
  auto run = [](std::uint32_t coalesce) {
    EnvGuard g1("UD_COALESCE", std::to_string(coalesce).c_str());
    EnvGuard g2("UD_SHARDS", nullptr);
    Machine m(MachineConfig::scaled(4));
    Graph g = rmat(8, {.symmetrize = true}, 33);
    DeviceGraph dg = upload_graph(m, g);
    return bfs::App::install(m, dg, {.root = 2}).run();
  };
  const bfs::Result off = run(1);
  const bfs::Result on = run(16);
  EXPECT_EQ(on.dist, off.dist);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.traversed_edges, off.traversed_edges);
  for (std::size_t v = 0; v < on.parent.size(); ++v) {
    if (on.parent[v] == kNoParent || on.parent[v] == v) continue;  // unreached / root
    EXPECT_EQ(on.dist[v], on.dist[on.parent[v]] + 1) << "vertex " << v;
  }
}

TEST(Coalesce, TriangleCountMatchesUncoalesced) {
  auto run = [](std::uint32_t coalesce, kvmsr::MapBinding binding) {
    EnvGuard g1("UD_COALESCE", std::to_string(coalesce).c_str());
    EnvGuard g2("UD_SHARDS", nullptr);
    Machine m(MachineConfig::scaled(2));
    Graph g = rmat(8, {.symmetrize = true}, 5);
    DeviceGraph dg = upload_graph(m, g);
    return tc::App::install(m, dg, {.map_binding = binding}).run();
  };
  for (const auto binding : {kvmsr::MapBinding::kBlock, kvmsr::MapBinding::kPBMW}) {
    const tc::Result off = run(1, binding);
    const tc::Result on = run(16, binding);
    EXPECT_EQ(on.triangles, off.triangles);
    EXPECT_EQ(on.pairs, off.pairs);  // no combiner: every pair still shipped
  }
}

TEST(Coalesce, GnnMatchesUncoalesced) {
  auto run = [](std::uint32_t coalesce) {
    EnvGuard g1("UD_COALESCE", std::to_string(coalesce).c_str());
    EnvGuard g2("UD_SHARDS", nullptr);
    Machine m(MachineConfig::scaled(2));
    Graph g = rmat(7, {}, 9);
    DeviceGraph dg = upload_graph(m, g);
    std::vector<double> feats(g.num_vertices() * gnn::kDims);
    for (std::size_t i = 0; i < feats.size(); ++i)
      feats[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    return gnn::App::install(m, dg, feats).run();
  };
  const gnn::Result off = run(1);
  const gnn::Result on = run(16);
  ASSERT_EQ(on.aggregated.size(), off.aggregated.size());
  for (std::size_t i = 0; i < off.aggregated.size(); ++i)
    EXPECT_NEAR(on.aggregated[i], off.aggregated[i], 1e-12) << "slot " << i;
}

TEST(Coalesce, SpecFactorAppliesWithoutEnv) {
  // Per-job opt-in via JobSpec::coalesce_tuples (no UD_COALESCE in the
  // environment) must coalesce too — and only the opted-in job.
  EnvGuard g1("UD_COALESCE", nullptr);
  EnvGuard g2("UD_SHARDS", nullptr);
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(8, {}, 21);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Options opt;
  opt.iterations = 1;
  opt.coalesce_tuples = 16;
  pr::Result r = pr::App::install(m, dg, sg, opt).run();
  EXPECT_GT(r.rank.size(), 0u);
  EXPECT_GT(m.stats().shuffle.coalesced_packets, 0u);
}

TEST(Coalesce, FactorOneIsExactlyTheClassicShuffle) {
  // UD_COALESCE=1 (and unset) must leave the classic per-tuple path: no
  // packets, one message per emitted tuple.
  EnvGuard g1("UD_COALESCE", "1");
  EnvGuard g2("UD_SHARDS", nullptr);
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(7, {.symmetrize = true}, 5);
  DeviceGraph dg = upload_graph(m, g);
  tc::Result r = tc::App::install(m, dg, {}).run();
  const ShuffleStats& s = m.stats().shuffle;
  EXPECT_GT(r.pairs, 0u);
  EXPECT_EQ(s.coalesced_packets, 0u);
  EXPECT_EQ(s.tuples_combined, 0u);
  EXPECT_EQ(s.messages, s.tuples_emitted);
}

}  // namespace
}  // namespace updown
