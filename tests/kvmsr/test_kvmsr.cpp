// KVMSR end-to-end: map/emit/reduce over the simulated machine, bindings,
// termination protocol, and the combining-cache flush phase.
#include "kvmsr/kvmsr.hpp"

#include <gtest/gtest.h>

#include "kvmsr/combining_cache.hpp"

namespace updown::kvmsr {
namespace {

// ---------------------------------------------------------------------------
// Job 1: "square sum" — map key k emits (k % buckets, k*k); reduce
// accumulates into a combining cache over a global histogram array.
struct HistApp {
  JobId job = 0;
  Addr hist_base = 0;
  std::uint64_t buckets = 0;
};

struct HistMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<HistApp>();
    const Word k = Library::map_key(ctx);
    ctx.charge(2);
    lib.emit(ctx, Library::map_job(ctx), k % app.buckets, k * k);
    lib.map_return(ctx, ctx.ccont());
  }
};

struct HistReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& cc = ctx.machine().service<CombiningCache>();
    auto& app = ctx.machine().user<HistApp>();
    const Word bucket = Library::reduce_key(ctx);
    cc.add_u64(ctx, app.hist_base + bucket * 8, Library::reduce_val(ctx));
    lib.reduce_return(ctx, Library::reduce_job(ctx));
  }
};

class KvmsrHistogram : public ::testing::TestWithParam<std::tuple<std::uint32_t, MapBinding>> {
};

TEST_P(KvmsrHistogram, ComputesExactHistogramAtAnyScale) {
  const auto [nodes, binding] = GetParam();
  Machine m(MachineConfig::scaled(nodes));
  auto& lib = Library::install(m);
  auto& cc = CombiningCache::install(m);

  auto& app = m.emplace_user<HistApp>();
  app.buckets = 13;
  app.hist_base = m.memory().dram_malloc_spread(app.buckets * 8, 4096);
  m.memory().host_fill(app.hist_base, 0, app.buckets * 8);

  JobSpec spec;
  spec.kv_map = m.program().event("HistMap::kv_map", &HistMap::kv_map);
  spec.kv_reduce = m.program().event("HistReduce::kv_reduce", &HistReduce::kv_reduce);
  spec.flush = cc.flush_label();
  spec.map_binding = binding;
  spec.name = "hist";
  app.job = lib.add_job(spec);

  const std::uint64_t n = 5000;
  const JobState& st = lib.run_to_completion(app.job, 0, n);

  EXPECT_EQ(st.total_keys, n);
  EXPECT_EQ(st.total_emitted, n);
  EXPECT_GT(st.done_tick, st.map_done_tick);
  EXPECT_GT(st.map_done_tick, st.start_tick);

  // Exact histogram regardless of machine size or binding.
  for (std::uint64_t b = 0; b < app.buckets; ++b) {
    std::uint64_t expect = 0;
    for (std::uint64_t k = b; k < n; k += app.buckets) expect += k * k;
    EXPECT_EQ(m.memory().host_load<Word>(app.hist_base + b * 8), expect) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndBindings, KvmsrHistogram,
    ::testing::Combine(::testing::Values(1u, 2u, 8u), ::testing::Values(MapBinding::kBlock,
                                                                        MapBinding::kPBMW)));

// ---------------------------------------------------------------------------
// do_all: map-only job touching a global flag array.
struct DoAllApp {
  JobId job = 0;
  Addr flags = 0;
};

struct Toucher : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<DoAllApp>();
    const Word k = Library::map_key(ctx);
    ctx.send_dram_write(app.flags + k * 8, {k + 1});
    lib.map_return(ctx, ctx.ccont());
  }
};

TEST(KvmsrDoAll, RunsEveryKeyExactlyOnce) {
  Machine m(MachineConfig::scaled(4));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<DoAllApp>();
  const std::uint64_t n = 2000;
  app.flags = m.memory().dram_malloc_spread(n * 8, 4096);
  m.memory().host_fill(app.flags, 0, n * 8);
  app.job = do_all(lib, m.program().event("Toucher::kv_map", &Toucher::kv_map));

  const JobState& st = lib.run_to_completion(app.job, 0, n);
  EXPECT_EQ(st.total_emitted, 0u);
  for (std::uint64_t k = 0; k < n; ++k)
    EXPECT_EQ(m.memory().host_load<Word>(app.flags + k * 8), k + 1) << "key " << k;
}

// ---------------------------------------------------------------------------
// Direct binding: each key runs at the lane the map_home function names.
struct WhereApp {
  JobId job = 0;
  std::vector<NetworkId> ran_at;  // indexed by key
};

struct WhereMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<WhereApp>();
    app.ran_at.at(Library::map_key(ctx)) = ctx.nwid();
    lib.map_return(ctx, ctx.ccont());
  }
};

TEST(KvmsrDirect, TasksRunAtTheirBoundLane) {
  Machine m(MachineConfig::scaled(4));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<WhereApp>();
  const std::uint64_t keys = m.config().nodes * m.config().accels_per_node;
  app.ran_at.assign(keys, ~0u);

  JobSpec spec;
  spec.kv_map = m.program().event("WhereMap::kv_map", &WhereMap::kv_map);
  spec.map_binding = MapBinding::kDirect;
  // One task per accelerator, on that accelerator's first lane (the BFS
  // local-master pattern).
  const std::uint32_t lpa = m.config().lanes_per_accel;
  spec.map_home = [lpa](Word key) { return static_cast<NetworkId>(key * lpa); };
  app.job = lib.add_job(spec);

  lib.run_to_completion(app.job, 0, keys);
  for (std::uint64_t k = 0; k < keys; ++k) EXPECT_EQ(app.ran_at[k], k * lpa) << "key " << k;
}

// ---------------------------------------------------------------------------
// Block binding really places contiguous key ranges on consecutive lanes.
struct BlockApp {
  JobId job = 0;
  std::vector<NetworkId> ran_at;
};

struct BlockMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    ctx.machine().user<BlockApp>().ran_at.at(Library::map_key(ctx)) = ctx.nwid();
    lib.map_return(ctx, ctx.ccont());
  }
};

TEST(KvmsrBlock, ContiguousRangesAscendAcrossLanes) {
  Machine m(MachineConfig::scaled(2));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<BlockApp>();
  const std::uint64_t n = 4 * m.config().total_lanes();
  app.ran_at.assign(n, ~0u);
  app.job = do_all(lib, m.program().event("BlockMap::kv_map", &BlockMap::kv_map));
  lib.run_to_completion(app.job, 0, n);

  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_EQ(app.ran_at[k], k / 4) << "key " << k;  // 4 keys per lane, in order
  }
}

TEST(KvmsrBlock, FewKeysManyLanesStillTerminates) {
  Machine m(MachineConfig::scaled(8));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<BlockApp>();
  app.ran_at.assign(3, ~0u);
  app.job = do_all(lib, m.program().event("BlockMap::kv_map", &BlockMap::kv_map));
  const JobState& st = lib.run_to_completion(app.job, 0, 3);
  EXPECT_EQ(st.total_keys, 3u);
  for (auto lane : app.ran_at) EXPECT_NE(lane, ~0u);
}

TEST(KvmsrBlock, EmptyKeyRangeCompletesImmediately) {
  Machine m(MachineConfig::scaled(2));
  auto& lib = Library::install(m);
  m.emplace_user<BlockApp>().job =
      do_all(lib, m.program().event("BlockMap::kv_map", &BlockMap::kv_map));
  const JobState& st = lib.run_to_completion(0, 5, 5);
  EXPECT_EQ(st.total_keys, 0u);
  EXPECT_FALSE(st.running);
}

// ---------------------------------------------------------------------------
// Lane-set restriction: a job bound to a sub-span of lanes never executes
// map or reduce tasks outside it.
struct SetApp {
  JobId job = 0;
  NetworkId lo = 0, hi = 0;
  bool violated = false;
};

struct SetMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<SetApp>();
    if (ctx.nwid() < app.lo || ctx.nwid() >= app.hi) app.violated = true;
    lib.emit(ctx, Library::map_job(ctx), Library::map_key(ctx) * 7919, 1);
    lib.map_return(ctx, ctx.ccont());
  }
};

struct SetReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& lib = ctx.machine().service<Library>();
    auto& app = ctx.machine().user<SetApp>();
    if (ctx.nwid() < app.lo || ctx.nwid() >= app.hi) app.violated = true;
    lib.reduce_return(ctx, Library::reduce_job(ctx));
  }
};

TEST(KvmsrLaneSet, JobStaysInsideItsLaneSet) {
  Machine m(MachineConfig::scaled(4));
  auto& lib = Library::install(m);
  auto& app = m.emplace_user<SetApp>();
  const std::uint32_t lpn = m.config().lanes_per_node();
  app.lo = lpn;          // node 1
  app.hi = lpn + 2 * lpn;  // nodes 1..2

  JobSpec spec;
  spec.kv_map = m.program().event("SetMap::kv_map", &SetMap::kv_map);
  spec.kv_reduce = m.program().event("SetReduce::kv_reduce", &SetReduce::kv_reduce);
  spec.lanes = {app.lo, 2 * lpn};
  app.job = lib.add_job(spec);

  const JobState& st = lib.run_to_completion(app.job, 0, 500);
  EXPECT_EQ(st.total_emitted, 500u);
  EXPECT_FALSE(app.violated);
}

// ---------------------------------------------------------------------------
// Strong-scaling smoke: the same job completes in fewer simulated ticks on a
// bigger machine (this is the property every Figure-9 curve rests on).
TEST(KvmsrScaling, MoreNodesFewerTicks) {
  Tick t1 = 0, t8 = 0;
  for (std::uint32_t nodes : {1u, 8u}) {
    Machine m(MachineConfig::scaled(nodes));
    auto& lib = Library::install(m);
    auto& cc = CombiningCache::install(m);
    auto& app = m.emplace_user<HistApp>();
    // Reduce keys must scale with the input (as vertex ids do in PR) or the
    // reduce side serializes on a few lanes and caps the speedup.
    app.buckets = 8192;
    app.hist_base = m.memory().dram_malloc_spread(app.buckets * 8, 4096);
    JobSpec spec;
    spec.kv_map = m.program().event("HistMap::kv_map", &HistMap::kv_map);
    spec.kv_reduce = m.program().event("HistReduce::kv_reduce", &HistReduce::kv_reduce);
    spec.flush = cc.flush_label();
    app.job = lib.add_job(spec);
    const JobState& st = lib.run_to_completion(app.job, 0, 50000);
    const Tick dur = st.done_tick - st.start_tick;
    (nodes == 1 ? t1 : t8) = dur;
  }
  EXPECT_LT(t8 * 2, t1);  // at least 2x speedup from 8x hardware
}

}  // namespace
}  // namespace updown::kvmsr
