#include "graph/split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/generators.hpp"

namespace updown {
namespace {

TEST(Split, RespectsMaxDegree) {
  Graph g = star_graph(100);  // hub of degree 100
  SplitGraph sg = split_vertices(g, 16, /*shuffle=*/false);
  EXPECT_LE(sg.g.max_degree(), 16u);
  EXPECT_EQ(sg.num_original, g.num_vertices());
}

TEST(Split, PreservesEveryEdgeWithOwnerAndSlotMapping) {
  Graph g = rmat(8);
  SplitGraph sg = split_vertices(g, 8, /*shuffle=*/true, 99);
  EXPECT_EQ(sg.g.num_edges(), g.num_edges());
  // Reconstruct the original multiset of edges: sub source -> owner, slot
  // target -> slot owner.
  std::multiset<std::pair<VertexId, VertexId>> orig, recon;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId u : g.neighbors_of(v)) orig.insert({v, u});
  for (VertexId s = 0; s < sg.num_sub(); ++s)
    for (VertexId slot : sg.g.neighbors_of(s))
      recon.insert({sg.owner[s], sg.slot_owner(slot)});
  EXPECT_EQ(orig, recon);
}

TEST(Split, InEdgesSpreadAcrossTargetSlots) {
  // A hub with 64 in-edges and 64 out-edges split at max degree 8 has 8
  // slots; round-robin rewriting puts exactly 8 in-edges on each slot.
  Graph g = star_graph(64);  // hub 0 <-> 64 leaves, both directions
  SplitGraph sg = split_vertices(g, 8, /*shuffle=*/false);
  const std::uint64_t hub_slots = sg.slot_offset[1] - sg.slot_offset[0];
  EXPECT_EQ(hub_slots, 8u);
  std::vector<std::uint64_t> in_count(hub_slots, 0);
  for (VertexId s = 0; s < sg.num_sub(); ++s)
    for (VertexId slot : sg.g.neighbors_of(s))
      if (slot < sg.slot_offset[1]) in_count[slot]++;
  for (auto c : in_count) EXPECT_EQ(c, 8u);
}

TEST(Split, SlotOffsetsAreDenseAndComplete) {
  Graph g = rmat(7, {}, 2);
  SplitGraph sg = split_vertices(g, 4);
  EXPECT_EQ(sg.slot_offset.front(), 0u);
  EXPECT_EQ(sg.num_slots(), sg.num_sub());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_GE(sg.slot_offset[v + 1], sg.slot_offset[v] + 1);
}

TEST(Split, OwnerDegreeIsOriginalTotalDegree) {
  Graph g = star_graph(50);
  SplitGraph sg = split_vertices(g, 8, /*shuffle=*/false);
  for (VertexId s = 0; s < sg.num_sub(); ++s)
    EXPECT_EQ(sg.owner_degree[s], g.degree(sg.owner[s]));
}

TEST(Split, ZeroDegreeVerticesSurvive) {
  Graph g = Graph::from_edges(5, {{0, 1}});  // vertices 2..4 isolated
  SplitGraph sg = split_vertices(g, 4, false);
  EXPECT_EQ(sg.num_sub(), 5u);
  std::vector<VertexId> owners = sg.owner;
  std::sort(owners.begin(), owners.end());
  EXPECT_EQ(owners, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(Split, NoSplitNeededIsIdentityShaped) {
  Graph g = path_graph(10);
  SplitGraph sg = split_vertices(g, 1024, /*shuffle=*/false);
  EXPECT_EQ(sg.num_sub(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sg.owner[v], v);
    EXPECT_EQ(sg.g.degree(v), g.degree(v));
  }
}

TEST(Split, ShuffleSpreadsHeavyHitterPieces) {
  Graph g = star_graph(1 << 12);
  SplitGraph shuffled = split_vertices(g, 16, /*shuffle=*/true, 5);
  // The hub's 256 pieces should not be contiguous after shuffling.
  std::vector<VertexId> hub_positions;
  for (VertexId s = 0; s < shuffled.num_sub(); ++s)
    if (shuffled.owner[s] == 0) hub_positions.push_back(s);
  ASSERT_GE(hub_positions.size(), 2u);
  bool contiguous = true;
  for (std::size_t i = 1; i < hub_positions.size(); ++i)
    if (hub_positions[i] != hub_positions[i - 1] + 1) contiguous = false;
  EXPECT_FALSE(contiguous);
}

class SplitProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitProperty, EdgeCountAndDegreeBoundHoldAcrossMaxDegrees) {
  Graph g = rmat(9, {}, 3);
  SplitGraph sg = split_vertices(g, GetParam());
  EXPECT_EQ(sg.g.num_edges(), g.num_edges());
  EXPECT_LE(sg.g.max_degree(), GetParam());
  EXPECT_GE(sg.num_sub(), g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(MaxDegrees, SplitProperty,
                         ::testing::Values(1, 4, 16, 64, 512, 4096));

}  // namespace
}  // namespace updown
