#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/layout.hpp"

namespace updown {
namespace {

class GraphIo : public ::testing::Test {
 protected:
  std::string tmp(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "ud_graph_io";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

TEST_F(GraphIo, BinaryRoundTrip) {
  Graph g = rmat(8);
  write_binary(g, tmp("rmat8"));
  Graph h = read_binary(tmp("rmat8"));
  EXPECT_EQ(g.offsets(), h.offsets());
  EXPECT_EQ(g.neighbors(), h.neighbors());
}

TEST_F(GraphIo, EdgeListRoundTrip) {
  Graph g = rmat(7, {}, 5);
  write_edge_list(g, tmp("rmat7.txt"));
  Graph h = read_edge_list(tmp("rmat7.txt"));
  // An edge list cannot represent trailing isolated vertices, so compare the
  // edge structure, not vertex counts.
  EXPECT_EQ(g.num_edges(), h.num_edges());
  EXPECT_EQ(g.neighbors(), h.neighbors());
  for (VertexId v = 0; v < h.num_vertices(); ++v)
    EXPECT_EQ(g.offset(v), h.offset(v)) << "vertex " << v;
}

TEST_F(GraphIo, EdgeListSkipsHeadersAndComments) {
  const std::string path = tmp("hdr.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("vertices 3 edges 2\n# comment\n0 1\n% other\n1 2\n", f);
    std::fclose(f);
  }
  Graph g = read_edge_list(path, /*skip_lines=*/1);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(tmp("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_binary(tmp("nope")), std::runtime_error);
}

TEST(Layout, UploadedRecordsMatchHostGraph) {
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(7);
  DeviceGraph dg = upload_graph(m, g);
  auto& mem = m.memory();
  EXPECT_EQ(dg.num_vertices, g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    EXPECT_EQ(mem.host_load<Word>(dg.field_addr(v, DeviceGraph::kId)), v);
    EXPECT_EQ(mem.host_load<Word>(dg.field_addr(v, DeviceGraph::kDegree)), g.degree(v));
    EXPECT_EQ(mem.host_load<Word>(dg.field_addr(v, DeviceGraph::kDist)), kInfDist);
    // The neighbor pointer dereferences to the right first neighbor.
    if (g.degree(v) > 0) {
      const Addr nbr = mem.host_load<Word>(dg.field_addr(v, DeviceGraph::kNbrPtr));
      EXPECT_EQ(mem.host_load<Word>(nbr), g.neighbors_of(v)[0]);
    }
  }
}

TEST(Layout, SplitUploadCarriesOwnerFields) {
  Machine m(MachineConfig::scaled(2));
  Graph g = star_graph(64);
  SplitGraph sg = split_vertices(g, 8, /*shuffle=*/false);
  DeviceGraph dg = upload_split_graph(m, sg);
  EXPECT_EQ(dg.num_original, g.num_vertices());
  EXPECT_EQ(dg.num_vertices, sg.num_sub());
  for (VertexId s = 0; s < sg.num_sub(); ++s) {
    EXPECT_EQ(m.memory().host_load<Word>(dg.field_addr(s, DeviceGraph::kId)), sg.owner[s]);
    EXPECT_EQ(m.memory().host_load<Word>(dg.field_addr(s, DeviceGraph::kOwnerDegree)),
              sg.owner_degree[s]);
  }
}

TEST(Layout, PlacementControlsNodeSpread) {
  Machine m(MachineConfig::scaled(8));
  Graph g = rmat(8);
  GraphPlacement narrow{.first_node = 0, .nr_nodes = 2, .block_size = 4096};
  DeviceGraph dg = upload_graph(m, g, narrow);
  // All vertex-array blocks live on nodes 0 and 1 (Figure 12's mem sweep).
  for (VertexId v = 0; v < g.num_vertices(); v += 64)
    EXPECT_LT(m.memory().translate(dg.vertex_addr(v)).node, 2u);
}

}  // namespace
}  // namespace updown
