#include "graph/split_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace updown {
namespace {

std::string tmp_prefix(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "ud_split_io";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

TEST(SplitIo, RoundTripPreservesEverything) {
  Graph g = rmat(8, {}, 21);
  SplitGraph sg = split_vertices(g, 16);
  write_split_binary(sg, tmp_prefix("r8"));
  SplitGraph h = read_split_binary(tmp_prefix("r8"));
  EXPECT_EQ(h.num_original, sg.num_original);
  EXPECT_EQ(h.g.offsets(), sg.g.offsets());
  EXPECT_EQ(h.g.neighbors(), sg.g.neighbors());
  EXPECT_EQ(h.owner, sg.owner);
  EXPECT_EQ(h.owner_degree, sg.owner_degree);
  EXPECT_EQ(h.slot_offset, sg.slot_offset);
}

TEST(SplitIo, MissingMetaThrows) {
  Graph g = path_graph(8);
  SplitGraph sg = split_vertices(g, 4);
  // Write only the graph pair, not the meta file.
  write_binary(sg.g, tmp_prefix("nometa"));
  EXPECT_THROW(read_split_binary(tmp_prefix("nometa")), std::runtime_error);
}

TEST(SplitIo, StatsSummaryMentionsKeyNumbers) {
  Graph g = star_graph(100);
  SplitGraph sg = split_vertices(g, 10);
  const std::string s = split_stats(g, sg);
  EXPECT_NE(s.find("101"), std::string::npos);  // original vertex count
  EXPECT_NE(s.find("preserved: yes"), std::string::npos);
}

}  // namespace
}  // namespace updown
