#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace updown {
namespace {

TEST(Graph, FromEdgesSortsAndDedups) {
  Graph g = Graph::from_edges(4, {{1, 0}, {0, 2}, {0, 1}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // dup (0,1) and self-loop (2,2) dropped
  const auto n0 = g.neighbors_of(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, SymmetrizeAddsReverseEdges) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Graph, HasEdgeOnUnsortedFromCsrUsesLinearScan) {
  // Regression: has_edge ran std::binary_search unconditionally, which gives
  // undefined answers on an unsorted adjacency list — from_csr adoptions
  // (e.g. the split-vertex graph) silently reported present edges missing.
  Graph g = Graph::from_csr({0, 3, 3}, {9, 2, 5}, /*sorted=*/false);
  EXPECT_FALSE(g.sorted());
  EXPECT_TRUE(g.has_edge(0, 9));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 5));  // binary_search missed this one
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(1, 9));
  // from_edges output stays on the binary-search fast path, and an adoption
  // with genuinely sorted lists may vouch for itself.
  EXPECT_TRUE(Graph::from_edges(3, {{0, 2}}).sorted());
  EXPECT_TRUE(Graph::from_csr({0, 2}, {1, 2}, /*sorted=*/true).sorted());
}

#ifndef NDEBUG
TEST(GraphDeathTest, OutOfRangeVertexAssertsInDebug) {
  // degree/offset/neighbors_of index offsets_[v + 1] unchecked; out-of-range
  // ids must die on the assert in Debug instead of reading past the array.
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_DEATH(g.degree(3), "out of range");
  EXPECT_DEATH(g.offset(4), "out of range");
  EXPECT_DEATH(g.neighbors_of(7), "out of range");
}
#endif

TEST(Generators, RmatHasRequestedShape) {
  Graph g = rmat(10);
  EXPECT_EQ(g.num_vertices(), 1024u);
  // Dedup removes some of the n*16 generated edges, but most survive.
  EXPECT_GT(g.num_edges(), 1024u * 8);
  EXPECT_LE(g.num_edges(), 1024u * 16);
}

TEST(Generators, RmatIsSkewed) {
  // With a=0.57 the degree distribution must be heavy-tailed: the max degree
  // far exceeds the average degree.
  Graph g = rmat(12);
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(g.max_degree(), static_cast<std::uint64_t>(avg * 10));
}

TEST(Generators, RmatIsDeterministicPerSeed) {
  Graph a = rmat(8, {}, 123), b = rmat(8, {}, 123), c = rmat(8, {}, 124);
  EXPECT_EQ(a.neighbors(), b.neighbors());
  EXPECT_NE(a.neighbors(), c.neighbors());
}

TEST(Generators, ErdosRenyiIsNotSkewed) {
  Graph g = erdos_renyi(12);
  const double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_LT(g.max_degree(), static_cast<std::uint64_t>(avg * 4));
}

TEST(Generators, ForestFireIsConnectedToRoot) {
  Graph g = forest_fire(512);
  EXPECT_EQ(g.num_vertices(), 512u);
  // Every non-root vertex burned at least one edge (symmetrized).
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    EXPECT_GE(g.degree(v), 1u) << "vertex " << v;
}

TEST(Generators, Fixtures) {
  Graph p = path_graph(5);
  EXPECT_EQ(p.num_edges(), 8u);
  Graph s = star_graph(4);
  EXPECT_EQ(s.degree(0), 4u);
  EXPECT_EQ(s.degree(1), 1u);
  Graph k = complete_graph(4);
  EXPECT_EQ(k.num_edges(), 12u);
}

}  // namespace
}  // namespace updown
