// Simulated BFS vs the CPU oracle: exact distances, valid parents, traversed
// edge counts, across graphs and machine shapes.
#include "apps/bfs.hpp"

#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "graph/generators.hpp"

namespace updown::bfs {
namespace {

void expect_matches_oracle(const Graph& g, std::uint32_t nodes, VertexId root) {
  Machine m(MachineConfig::scaled(nodes));
  DeviceGraph dg = upload_graph(m, g);
  Options opt;
  opt.root = root;
  Result r = App::install(m, dg, opt).run();

  const auto oracle = baseline::bfs(g, root);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.dist[v], oracle.dist[v]) << "vertex " << v;
  // Parents may differ from the oracle's (any valid BFS tree is accepted):
  // check the tree property instead.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == root) {
      EXPECT_EQ(r.parent[v], root);
    } else if (r.dist[v] != kInfDist) {
      ASSERT_NE(r.parent[v], kNoParent) << "vertex " << v;
      EXPECT_EQ(r.dist[r.parent[v]] + 1, r.dist[v]) << "vertex " << v;
      EXPECT_TRUE(g.has_edge(r.parent[v], v)) << "vertex " << v;
    } else {
      EXPECT_EQ(r.parent[v], kNoParent) << "vertex " << v;
    }
  }
  EXPECT_EQ(r.traversed_edges, oracle.traversed_edges);
  EXPECT_EQ(r.rounds, oracle.rounds);
  EXPECT_GT(r.done_tick, r.start_tick);
}

TEST(Bfs, PathGraph) { expect_matches_oracle(path_graph(64), 1, 0); }

TEST(Bfs, StarFromHubAndFromLeaf) {
  expect_matches_oracle(star_graph(63), 2, 0);
  expect_matches_oracle(star_graph(63), 2, 5);
}

TEST(Bfs, RmatSymmetric) {
  expect_matches_oracle(rmat(8, {.symmetrize = true}), 2, 1);
}

TEST(Bfs, RmatDirectedWithUnreachable) {
  expect_matches_oracle(rmat(8), 4, 0);
}

TEST(Bfs, ErdosRenyi) {
  expect_matches_oracle(erdos_renyi(9, 8, 21, /*symmetrize=*/true), 4, 3);
}

TEST(Bfs, DisconnectedComponentStaysInf) {
  Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}}, true);
  expect_matches_oracle(g, 1, 0);
}

TEST(Bfs, IsolatedRootTerminatesImmediately) {
  Graph g = Graph::from_edges(4, {{1, 2}}, true);
  Machine m(MachineConfig::scaled(1));
  DeviceGraph dg = upload_graph(m, g);
  Result r = App::install(m, dg, {.root = 0}).run();
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], kInfDist);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.traversed_edges, 0u);
}

class BfsShapes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BfsShapes, OracleHoldsAcrossMachineSizes) {
  expect_matches_oracle(rmat(8, {.symmetrize = true}, 17), GetParam(), 2);
}

INSTANTIATE_TEST_SUITE_P(Nodes, BfsShapes, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Bfs, RootOutOfRangeThrows) {
  Machine m(MachineConfig::scaled(1));
  Graph g = path_graph(4);
  DeviceGraph dg = upload_graph(m, g);
  EXPECT_THROW(App::install(m, dg, {.root = 99}), std::invalid_argument);
}

TEST(Bfs, StrongScalingOnLargeGraph) {
  Graph g = rmat(14, {.symmetrize = true});
  Tick t1 = 0, t8 = 0;
  for (std::uint32_t nodes : {1u, 8u}) {
    Machine m(MachineConfig::scaled(nodes));
    DeviceGraph dg = upload_graph(m, g);
    Result r = App::install(m, dg, {.root = 1}).run();
    (nodes == 1 ? t1 : t8) = r.duration();
  }
  EXPECT_LT(t8 * 2, t1);
}

}  // namespace
}  // namespace updown::bfs
