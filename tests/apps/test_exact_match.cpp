// Exact Match over an ingested graph, vs the host-side oracle.
#include "apps/exact_match.hpp"

#include <gtest/gtest.h>

#include "apps/ingestion.hpp"
#include "common/rng.hpp"

namespace updown::ematch {
namespace {

TEST(ExactMatch, CountsPresentTriplesOnly) {
  Machine m(MachineConfig::scaled(2));
  ingest::App& ing = ingest::App::install(m, {});
  tform::RecordStream s = tform::make_stream(300, 64, 3, 31);
  ing.run(s.bytes);

  // Query batch: half real records, half perturbed ones.
  std::vector<tform::EdgeRecord> queries;
  Xoshiro256 rng(9);
  for (std::size_t i = 0; i < s.records.size(); i += 2) {
    queries.push_back(s.records[i]);  // present
    tform::EdgeRecord fake = s.records[i];
    fake.dst = 1000 + rng.below(1000);  // absent vertex
    queries.push_back(fake);
  }

  App& app = App::install(m);  // takes over the user slot after ingestion
  Result r = app.run(queries);
  EXPECT_EQ(r.queries, queries.size());
  EXPECT_EQ(r.matches, app.oracle_matches(queries));
  // Most real records match; a few (src,dst) pairs recur in the stream with
  // a different type and the later insert overwrites the earlier one.
  EXPECT_GE(r.matches, queries.size() * 2 / 5);
  EXPECT_GT(r.done_tick, r.start_tick);
}

TEST(ExactMatch, WrongTypeDoesNotMatch) {
  Machine m(MachineConfig::scaled(1));
  ingest::App& ing = ingest::App::install(m, {});
  tform::RecordStream s = tform::make_stream(20, 16, 2, 3);
  ing.run(s.bytes);

  std::vector<tform::EdgeRecord> queries;
  for (auto q : s.records) {
    q.type = q.type == 1 ? 2 : 1;  // flip the type
    queries.push_back(q);
  }
  App& app = App::install(m);
  Result r = app.run(queries);
  EXPECT_EQ(r.matches, app.oracle_matches(queries));
}

TEST(ExactMatch, EmptyBatch) {
  Machine m(MachineConfig::scaled(1));
  ingest::App& ing = ingest::App::install(m, {});
  ing.run(tform::make_stream(10).bytes);
  App& app = App::install(m);
  Result r = app.run({});
  EXPECT_EQ(r.queries, 0u);
  EXPECT_EQ(r.matches, 0u);
}

}  // namespace
}  // namespace updown::ematch
