// Cross-cutting property tests: invariants that must hold over parameter
// sweeps (damping factors, machine shapes, block sizes, seeds).
#include <gtest/gtest.h>

#include <numeric>

#include "apps/ingestion.hpp"
#include "apps/pagerank.hpp"
#include "baseline/baseline.hpp"
#include "graph/generators.hpp"
#include "tform/stream_gen.hpp"

namespace updown {
namespace {

// ---------------------------------------------------------------------------
// PageRank invariants across damping factors.
// ---------------------------------------------------------------------------
class PrDamping : public ::testing::TestWithParam<double> {};

TEST_P(PrDamping, MatchesOracleAndMassIsBounded) {
  const double d = GetParam();
  Graph g = rmat(8, {.symmetrize = true}, 4);
  SplitGraph sg = split_vertices(g, 32);
  Machine m(MachineConfig::scaled(2));
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Options opt;
  opt.iterations = 3;
  opt.damping = d;
  pr::Result r = pr::App::install(m, dg, sg, opt).run();

  const auto oracle = baseline::pagerank(g, 3, d);
  double sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.rank[v], oracle[v], 1e-9);
    EXPECT_GE(r.rank[v], 0.0);
    sum += r.rank[v];
  }
  EXPECT_LE(sum, 1.0 + 1e-9);  // push PR never creates mass
  EXPECT_GT(sum, (1.0 - d) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Damping, PrDamping, ::testing::Values(0.0, 0.5, 0.85, 0.99));

// ---------------------------------------------------------------------------
// Ingestion invariants across block sizes: every record lands exactly once,
// whatever the block/record alignment.
// ---------------------------------------------------------------------------
class IngestBlocks : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IngestBlocks, RecordCountExactForAnyBlockSize) {
  Machine m(MachineConfig::scaled(2));
  ingest::Options opt;
  opt.block_bytes = GetParam();
  ingest::App& app = ingest::App::install(m, opt);
  tform::RecordStream s = tform::make_stream(150, 300, 4, GetParam());
  ingest::Result r = app.run(s.bytes);
  EXPECT_EQ(r.records, 150u);
  for (const auto& rec : s.records)
    EXPECT_TRUE(app.graph().host_has_edge(rec.src, rec.dst));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, IngestBlocks,
                         ::testing::Values(48, 63, 64, 65, 100, 128, 1000, 4096, 100000));

// ---------------------------------------------------------------------------
// Machine-shape sweep: the same PR computation is exact on tall/wide/flat
// machine shapes (varying the accelerator/lane split at fixed lane count).
// ---------------------------------------------------------------------------
class PrShapesGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(PrShapesGrid, ShapeDoesNotAffectCorrectness) {
  const auto [accels, lanes] = GetParam();
  Graph g = rmat(7, {}, 6);
  SplitGraph sg = split_vertices(g, 16);
  Machine m(MachineConfig::scaled(2, accels, lanes));
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r = pr::App::install(m, dg, sg, {.iterations = 2}).run();
  const auto oracle = baseline::pagerank(g, 2);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_NEAR(r.rank[v], oracle[v], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, PrShapesGrid,
                         ::testing::Values(std::make_tuple(1u, 16u), std::make_tuple(2u, 8u),
                                           std::make_tuple(8u, 2u), std::make_tuple(16u, 1u)));

// ---------------------------------------------------------------------------
// Simulated time is invariant to host-side conditions (two identical runs)
// but strictly ordered by machine capability (fewer lanes never run faster
// on a compute-bound job).
// ---------------------------------------------------------------------------
TEST(Monotonicity, MoreLanesNeverSlowerOnComputeBoundJob) {
  Graph g = rmat(11, {}, 2);
  SplitGraph sg = split_vertices(g, 64);
  Tick prev = ~0ull;
  for (std::uint32_t lanes : {2u, 8u, 32u}) {
    Machine m(MachineConfig::scaled(1, 4, lanes / 4 ? lanes / 4 : 1));
    DeviceGraph dg = upload_split_graph(m, sg);
    pr::Result r = pr::App::install(m, dg, sg, {.iterations = 1}).run();
    EXPECT_LE(r.duration(), prev) << lanes << " lanes";
    prev = r.duration();
  }
}

}  // namespace
}  // namespace updown
