// Partial Match: streamed pattern evaluation vs a sequential replay oracle.
#include "apps/partial_match.hpp"

#include <gtest/gtest.h>

namespace updown::pmatch {
namespace {

std::vector<tform::EdgeRecord> edges(std::initializer_list<std::array<Word, 3>> list) {
  std::vector<tform::EdgeRecord> out;
  for (const auto& e : list) out.push_back({e[0], e[1], e[2]});
  return out;
}

TEST(PartialMatch, DetectsPathCompletionInBothArrivalOrders) {
  for (bool t1_first : {true, false}) {
    Machine m(MachineConfig::scaled(2));
    Options opt;
    opt.patterns = {{/*t1=*/1, /*t2=*/2}};
    App& app = App::install(m, opt);
    // Path 10 --1--> 20 --2--> 30 arriving in either order: exactly 1 alert.
    auto recs = t1_first ? edges({{10, 20, 1}, {20, 30, 2}})
                         : edges({{20, 30, 2}, {10, 20, 1}});
    Result r = app.run(recs);
    EXPECT_EQ(r.alerts, 1u) << "t1_first=" << t1_first;
    EXPECT_EQ(r.alerts, app.oracle_alerts(recs));
  }
}

TEST(PartialMatch, NoAlertWithoutSharedPivot) {
  Machine m(MachineConfig::scaled(1));
  Options opt;
  opt.patterns = {{1, 2}};
  App& app = App::install(m, opt);
  auto recs = edges({{10, 20, 1}, {21, 30, 2}, {5, 6, 3}});
  Result r = app.run(recs);
  EXPECT_EQ(r.alerts, 0u);
  EXPECT_EQ(app.oracle_alerts(recs), 0u);
}

TEST(PartialMatch, MultiplePatternsEvaluateIndependently) {
  Machine m(MachineConfig::scaled(2));
  Options opt;
  opt.patterns = {{1, 2}, {3, 4}};
  App& app = App::install(m, opt);
  auto recs = edges({{1, 2, 1}, {2, 3, 2}, {7, 8, 3}, {8, 9, 4}, {8, 9, 2}});
  Result r = app.run(recs);
  EXPECT_EQ(r.alerts, app.oracle_alerts(recs));
  EXPECT_GE(r.alerts, 2u);
}

TEST(PartialMatch, RandomStreamMatchesOracle) {
  Machine m(MachineConfig::scaled(4));
  Options opt;
  opt.patterns = {{1, 2}, {2, 3}};
  App& app = App::install(m, opt);
  // Few vertices + few types => plenty of pivot collisions.
  tform::RecordStream s = tform::make_stream(500, 24, 3, 42);
  Result r = app.run(s.records);
  EXPECT_EQ(r.records, 500u);
  EXPECT_EQ(r.alerts, app.oracle_alerts(s.records));
  EXPECT_GT(r.alerts, 0u);  // dense stream must produce matches
  EXPECT_GT(r.mean_latency_cycles(), 0.0);
}

TEST(PartialMatch, LatencyDropsWithMoreComputeResources) {
  // Figure 11's property: "latency can be decreased (speedup) by adding
  // compute resources". Fractional machines are modeled with fewer lanes.
  tform::RecordStream s = tform::make_stream(300, 64, 3, 7);
  double lat_small = 0, lat_large = 0;
  for (bool large : {false, true}) {
    Machine m(large ? MachineConfig::scaled(4) : MachineConfig::scaled(1, 1, 4));
    Options opt;
    opt.patterns = {{1, 2}};
    opt.stream_window = 32;  // continuous stream: latency includes queueing
    App& app = App::install(m, opt);
    Result r = app.run(s.records);
    (large ? lat_large : lat_small) = r.mean_latency_cycles();
  }
  EXPECT_LT(lat_large, lat_small);
}

TEST(PartialMatch, RequiresAtLeastOnePattern) {
  Machine m(MachineConfig::scaled(1));
  EXPECT_THROW(App::install(m, {}), std::invalid_argument);
}

}  // namespace
}  // namespace updown::pmatch
