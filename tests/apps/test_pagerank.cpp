// Simulated PageRank vs the CPU oracle, across machine shapes, graphs,
// splitting parameters, and bindings.
#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "baseline/baseline.hpp"
#include "graph/generators.hpp"

namespace updown::pr {
namespace {

void expect_matches_oracle(const Graph& g, std::uint32_t nodes, std::uint64_t max_degree,
                           unsigned iterations,
                           kvmsr::MapBinding binding = kvmsr::MapBinding::kBlock) {
  Machine m(MachineConfig::scaled(nodes));
  SplitGraph sg = split_vertices(g, max_degree);
  DeviceGraph dg = upload_split_graph(m, sg);
  Options opt;
  opt.iterations = iterations;
  opt.map_binding = binding;
  App& app = App::install(m, dg, sg, opt);
  Result r = app.run();

  const auto oracle = baseline::pagerank(g, iterations);
  ASSERT_EQ(r.rank.size(), oracle.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(r.rank[v], oracle[v], 1e-9) << "vertex " << v;
  EXPECT_GT(r.done_tick, r.start_tick);
  // Map-side combining (active when UD_COALESCE > 1 is in the environment)
  // merges same-slot contributions pre-shuffle, so emitted tuples can drop
  // below one per edge traversal; ranks above stay oracle-exact either way.
  const char* uc = std::getenv("UD_COALESCE");
  if (uc != nullptr && std::strtoul(uc, nullptr, 10) > 1) {
    EXPECT_LE(r.edge_updates, g.num_edges() * iterations);
    EXPECT_GT(r.edge_updates, 0u);
  } else {
    EXPECT_EQ(r.edge_updates, g.num_edges() * iterations);
  }
}

TEST(PageRank, MatchesOracleOnRmat) {
  expect_matches_oracle(rmat(8), 2, 16, 3);
}

TEST(PageRank, MatchesOracleOnErdosRenyi) {
  expect_matches_oracle(erdos_renyi(8), 4, 64, 3);
}

TEST(PageRank, MatchesOracleWithoutSplitting) {
  expect_matches_oracle(rmat(7), 1, 1u << 20, 2);  // max_degree huge: no split
}

TEST(PageRank, MatchesOracleWithAggressiveSplitting) {
  expect_matches_oracle(star_graph(200), 2, 4, 4);
}

TEST(PageRank, MatchesOracleWithPbmwBinding) {
  expect_matches_oracle(rmat(7, {}, 11), 2, 32, 2, kvmsr::MapBinding::kPBMW);
}

TEST(PageRank, SingleIterationOnPath) {
  expect_matches_oracle(path_graph(64), 1, 8, 1);
}

class PrShapes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrShapes, OracleHoldsAcrossMachineSizes) {
  expect_matches_oracle(rmat(7, {}, 3), GetParam(), 32, 2);
}

INSTANTIATE_TEST_SUITE_P(Nodes, PrShapes, ::testing::Values(1u, 2u, 4u, 8u));

TEST(PageRank, StrongScalingOnSkewedGraph) {
  // The Figure 9 (left) property: more nodes, shorter simulated time. The
  // graph must be large enough that per-lane work exceeds the protocol
  // latency floor (as in the paper, whose smallest graphs have ~1M vertices).
  Graph g = rmat(15);
  SplitGraph sg = split_vertices(g, 64);
  Tick t1 = 0, t8 = 0;
  for (std::uint32_t nodes : {1u, 8u}) {
    Machine m(MachineConfig::scaled(nodes));
    DeviceGraph dg = upload_split_graph(m, sg);
    Options opt;
    opt.iterations = 1;
    Result r = App::install(m, dg, sg, opt).run();
    (nodes == 1 ? t1 : t8) = r.duration();
  }
  EXPECT_LT(t8 * 2, t1);
}

TEST(PageRank, GupsIsPositiveAndFinite) {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(8);
  SplitGraph sg = split_vertices(g, 64);
  DeviceGraph dg = upload_split_graph(m, sg);
  Result r = App::install(m, dg, sg, {.iterations = 1}).run();
  EXPECT_GT(r.gups(), 0.0);
  EXPECT_LT(r.gups(), 1e6);
}

}  // namespace
}  // namespace updown::pr
