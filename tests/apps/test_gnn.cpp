// GNN feature aggregation vs a direct host-side computation.
#include "apps/gnn.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace updown::gnn {
namespace {

std::vector<double> random_features(VertexId n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> f(n * kDims);
  for (auto& x : f) x = rng.uniform();
  return f;
}

std::vector<double> oracle(const Graph& g, const std::vector<double>& f) {
  std::vector<double> out(g.num_vertices() * kDims, 0.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors_of(u))
      for (unsigned d = 0; d < kDims; ++d) out[v * kDims + d] += f[u * kDims + d];
  return out;
}

void expect_matches(const Graph& g, std::uint32_t nodes, std::uint64_t seed) {
  Machine m(MachineConfig::scaled(nodes));
  DeviceGraph dg = upload_graph(m, g);
  auto features = random_features(g.num_vertices(), seed);
  Result r = App::install(m, dg, features).run();
  const auto expect = oracle(g, features);
  ASSERT_EQ(r.aggregated.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_NEAR(r.aggregated[i], expect[i], 1e-9) << "slot " << i;
  EXPECT_GT(r.done_tick, r.start_tick);
}

TEST(Gnn, AggregatesOnRmat) { expect_matches(rmat(7), 2, 1); }

TEST(Gnn, AggregatesOnSymmetricGraph) { expect_matches(rmat(7, {.symmetrize = true}, 3), 4, 2); }

TEST(Gnn, IsolatedVerticesStayZero) {
  Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}});
  Machine m(MachineConfig::scaled(1));
  DeviceGraph dg = upload_graph(m, g);
  auto features = random_features(6, 5);
  Result r = App::install(m, dg, features).run();
  for (unsigned d = 0; d < kDims; ++d) {
    EXPECT_DOUBLE_EQ(r.aggregated[5 * kDims + d], 0.0);
    EXPECT_NEAR(r.aggregated[1 * kDims + d], features[0 * kDims + d], 1e-12);
  }
}

TEST(Gnn, RejectsWrongFeatureShape) {
  Machine m(MachineConfig::scaled(1));
  DeviceGraph dg = upload_graph(m, path_graph(4));
  EXPECT_THROW(App::install(m, dg, std::vector<double>(3)), std::invalid_argument);
}

class GnnShapes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GnnShapes, OracleHoldsAcrossMachineSizes) {
  expect_matches(erdos_renyi(7, 6, 2), GetParam(), 7);
}

INSTANTIATE_TEST_SUITE_P(Nodes, GnnShapes, ::testing::Values(1u, 2u, 8u));

}  // namespace
}  // namespace updown::gnn
