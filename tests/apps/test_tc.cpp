// Simulated Triangle Counting vs the CPU oracle.
#include "apps/tc.hpp"

#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "graph/generators.hpp"

namespace updown::tc {
namespace {

std::uint64_t run_tc(const Graph& g, std::uint32_t nodes,
                     kvmsr::MapBinding binding = kvmsr::MapBinding::kBlock) {
  Machine m(MachineConfig::scaled(nodes));
  DeviceGraph dg = upload_graph(m, g);
  Result r = App::install(m, dg, {.map_binding = binding}).run();
  EXPECT_GT(r.done_tick, r.start_tick);
  return r.triangles;
}

TEST(Tc, CompleteGraphs) {
  EXPECT_EQ(run_tc(complete_graph(4), 1), 4u);
  EXPECT_EQ(run_tc(complete_graph(8), 2), 56u);
  EXPECT_EQ(run_tc(complete_graph(12), 4), 220u);
}

TEST(Tc, TriangleFreeGraphs) {
  EXPECT_EQ(run_tc(path_graph(64), 2), 0u);
  EXPECT_EQ(run_tc(star_graph(64), 2), 0u);
}

TEST(Tc, MatchesOracleOnRmat) {
  Graph g = rmat(8, {.symmetrize = true});
  EXPECT_EQ(run_tc(g, 2), baseline::triangle_count(g));
}

TEST(Tc, MatchesOracleOnForestFire) {
  Graph g = forest_fire(400);
  EXPECT_EQ(run_tc(g, 4), baseline::triangle_count(g));
}

TEST(Tc, PbmwBindingMatchesBlock) {
  Graph g = rmat(8, {.symmetrize = true}, 9);
  const std::uint64_t expect = baseline::triangle_count(g);
  EXPECT_EQ(run_tc(g, 2, kvmsr::MapBinding::kBlock), expect);
  EXPECT_EQ(run_tc(g, 2, kvmsr::MapBinding::kPBMW), expect);
}

TEST(Tc, PairsEqualHalfTheEdges) {
  Graph g = erdos_renyi(8, 8, 4, /*symmetrize=*/true);
  Machine m(MachineConfig::scaled(2));
  DeviceGraph dg = upload_graph(m, g);
  Result r = App::install(m, dg, {}).run();
  EXPECT_EQ(r.pairs, g.num_edges() / 2);
}

class TcShapes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TcShapes, OracleHoldsAcrossMachineSizes) {
  Graph g = erdos_renyi(8, 6, 31, /*symmetrize=*/true);
  EXPECT_EQ(run_tc(g, GetParam()), baseline::triangle_count(g));
}

INSTANTIATE_TEST_SUITE_P(Nodes, TcShapes, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Tc, StrongScaling) {
  Graph g = rmat(12, {.symmetrize = true});
  Tick t1 = 0, t8 = 0;
  for (std::uint32_t nodes : {1u, 8u}) {
    Machine m(MachineConfig::scaled(nodes));
    DeviceGraph dg = upload_graph(m, g);
    Result r = App::install(m, dg, {}).run();
    (nodes == 1 ? t1 : t8) = r.duration();
  }
  EXPECT_LT(t8 * 2, t1);
}

}  // namespace
}  // namespace updown::tc
