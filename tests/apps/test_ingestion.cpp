// Ingestion: parse a record stream through KVMSR+TFORM into the parallel
// graph, verify every record landed, including block-spanning ones.
#include "apps/ingestion.hpp"

#include <gtest/gtest.h>

#include "tform/stream_gen.hpp"

namespace updown::ingest {
namespace {

void expect_ingests(std::uint32_t nodes, std::uint64_t n_records, std::uint64_t block_bytes) {
  Machine m(MachineConfig::scaled(nodes));
  Options opt;
  opt.block_bytes = block_bytes;
  App& app = App::install(m, opt);
  tform::RecordStream s = tform::make_stream(n_records, 500, 4, nodes * 31 + n_records);
  Result r = app.run(s.bytes);

  EXPECT_EQ(r.records, n_records);
  EXPECT_GT(r.done_tick, r.start_tick);
  for (const auto& rec : s.records) {
    EXPECT_TRUE(app.graph().host_has_edge(rec.src, rec.dst))
        << rec.src << "->" << rec.dst;
    EXPECT_TRUE(app.graph().host_has_vertex(rec.src));
    EXPECT_TRUE(app.graph().host_has_vertex(rec.dst));
  }
}

TEST(Ingestion, BlockAlignedRecords) { expect_ingests(2, 200, 64 * 16); }

TEST(Ingestion, RecordsSpanBlockBoundaries) {
  // 1000-byte blocks vs 64-byte records: most blocks split a record.
  expect_ingests(2, 300, 1000);
}

TEST(Ingestion, TinyBlocksSmallerThanARecord) { expect_ingests(1, 50, 48); }

TEST(Ingestion, SingleBlockWholeStream) { expect_ingests(1, 30, 1 << 20); }

class IngestShapes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IngestShapes, AllRecordsLandAcrossMachineSizes) {
  expect_ingests(GetParam(), 400, 1000);
}

INSTANTIATE_TEST_SUITE_P(Nodes, IngestShapes, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Ingestion, ThroughputScalesWithNodes) {
  // Enough blocks that every lane of the 8-node machine has several map
  // tasks (the strong-scaling regime; tiny streams are latency-floor bound).
  tform::RecordStream s = tform::make_stream(20000, 4000, 4, 5);
  Tick t1 = 0, t8 = 0;
  for (std::uint32_t nodes : {1u, 8u}) {
    Machine m(MachineConfig::scaled(nodes));
    App& app = App::install(m, {});
    Result r = app.run(s.bytes);
    EXPECT_EQ(r.records, 20000u);
    (nodes == 1 ? t1 : t8) = r.duration();
  }
  EXPECT_LT(t8 * 2, t1);
}

}  // namespace
}  // namespace updown::ingest
