// Seeded-violation tests for udcheck (src/check/): each test injects one
// bug class into a tiny program and asserts the checker catches it with the
// right kind and enough context (tick, lane, label, address) to locate it.
#include "check/checker.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "udweave/context.hpp"

namespace updown {
namespace {

/// Pin an environment variable for one test (see tests/sim/test_determinism.cpp):
/// the cross-shard race test must run at UD_SHARDS=4 regardless of ambience.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

MachineConfig checked_config() {
  MachineConfig cfg = MachineConfig::scaled(1);
  cfg.check = true;
  return cfg;
}

const CheckDiagnostic* find_kind(Machine& m, CheckKind kind) {
  for (const CheckDiagnostic& d : m.checker()->diagnostics())
    if (d.kind == kind) return &d;
  return nullptr;
}

// ---------------------------------------------------------------------------
// 1. Data race: two threads, launched with no ordering between them, write
//    the same DRAM word.
// ---------------------------------------------------------------------------

struct RaceApp {
  EventLabel writer = 0;
  Addr va = 0;
};

struct TRaceWriter : ThreadState {
  void w(Ctx& ctx) {
    ctx.send_dram_write(ctx.machine().user<RaceApp>().va, {ctx.op(0)});
    ctx.yield_terminate();
  }
};

TEST(UdCheck, DetectsDramDataRace) {
  Machine m(checked_config());
  RaceApp& app = m.emplace_user<RaceApp>();
  app.writer = m.program().event("seed::race_w", &TRaceWriter::w);
  app.va = m.memory().dram_malloc_spread(256);
  // Two independent host launches on different lanes: neither write is
  // ordered before the other.
  m.send_from_host(evw::make_new(0, app.writer), {1});
  m.send_from_host(evw::make_new(1, app.writer), {2});
  m.run();

  const CheckSummary& c = m.stats().check;
  EXPECT_TRUE(c.enabled);
  EXPECT_GE(c.data_races, 1u);
  EXPECT_FALSE(c.clean());
  const CheckDiagnostic* d = find_kind(m, CheckKind::kDataRace);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->error);
  EXPECT_EQ(d->va, app.va);
  EXPECT_GT(d->tick, 0u);
  EXPECT_NE(d->message.find("seed::race_w"), std::string::npos);
}

// The same seeded race across engine shards: a 4-node machine at UD_SHARDS=4
// puts each writer's node on its own shard, so the conflicting accesses are
// recorded in different shard logs and only meet in the window-boundary
// replay. The race must still be caught, and the diagnostic must attribute
// both sides to their shards.
TEST(UdCheck, DetectsCrossShardDramDataRace) {
  EnvGuard g("UD_SHARDS", "4");
  MachineConfig cfg = MachineConfig::scaled(4);
  cfg.check = true;
  Machine m(cfg);
  RaceApp& app = m.emplace_user<RaceApp>();
  app.writer = m.program().event("seed::race_w", &TRaceWriter::w);
  app.va = m.memory().dram_malloc_spread(256);
  // Lane 0 lives on node 0 (shard 0); the first lane of the last node lives
  // on shard 3 under the round-robin node->shard partition.
  const std::uint32_t far_lane = 3 * cfg.lanes_per_node();
  m.send_from_host(evw::make_new(0, app.writer), {1});
  m.send_from_host(evw::make_new(far_lane, app.writer), {2});
  m.run();

  const CheckSummary& c = m.stats().check;
  EXPECT_TRUE(c.enabled);
  EXPECT_GE(c.data_races, 1u);
  EXPECT_FALSE(c.clean());
  const CheckDiagnostic* d = find_kind(m, CheckKind::kDataRace);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->va, app.va);
  // Both shards' stamps: the diagnostic names the executing shard of each
  // side of the race.
  EXPECT_NE(d->message.find("[shard 0]"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("[shard 3]"), std::string::npos) << d->message;
}

// ---------------------------------------------------------------------------
// 2. Use-after-free: a task reads a region the host already dram_free'd.
// ---------------------------------------------------------------------------

struct UafApp {
  EventLabel read = 0, got = 0;
};

struct TUafReader : ThreadState {
  void read(Ctx& ctx) {
    ctx.send_dram_read(static_cast<Addr>(ctx.op(0)), 1,
                       ctx.machine().user<UafApp>().got);
  }
  void got(Ctx& ctx) { ctx.yield_terminate(); }
};

TEST(UdCheck, DetectsUseAfterFree) {
  Machine m(checked_config());
  UafApp& app = m.emplace_user<UafApp>();
  app.read = m.program().event("seed::uaf_read", &TUafReader::read);
  app.got = m.program().event("seed::uaf_got", &TUafReader::got);
  const Addr va = m.memory().dram_malloc_spread(256);
  m.memory().dram_free(va);
  m.send_from_host(evw::make_new(0, app.read), {va});
  m.run();

  const CheckSummary& c = m.stats().check;
  EXPECT_GE(c.use_after_free, 1u);
  EXPECT_FALSE(c.clean());
  const CheckDiagnostic* d = find_kind(m, CheckKind::kUseAfterFree);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->va, va);
  EXPECT_GT(d->alloc_seq, 0u);  // points at the retired allocation site
  EXPECT_NE(d->message.find("freed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// 3. Send to a dead thread: a victim hands out its event word, terminates,
//    and a peer then addresses the dead context.
// ---------------------------------------------------------------------------

struct DeadSendApp {
  EventLabel spawn = 0, victim = 0, got = 0, nop = 0;
};

struct TDeadSpawner : ThreadState {
  void spawn(Ctx& ctx) {
    DeadSendApp& app = ctx.machine().user<DeadSendApp>();
    ctx.send_event(ctx.evw_new(ctx.nwid(), app.victim), {},
                   ctx.evw_update_event(ctx.cevnt(), app.got));
  }
  void got(Ctx& ctx) {
    // op(0) is the victim's event word; the victim terminated after replying.
    DeadSendApp& app = ctx.machine().user<DeadSendApp>();
    ctx.send_event(evw::update_event(static_cast<Word>(ctx.op(0)), app.nop), {});
    ctx.yield_terminate();
  }
  void nop(Ctx& ctx) { ctx.yield_terminate(); }
};

struct TDeadVictim : ThreadState {
  void v(Ctx& ctx) {
    ctx.send_reply({ctx.cevnt()});
    ctx.yield_terminate();
  }
};

TEST(UdCheck, DetectsSendToDeadThread) {
  Machine m(checked_config());
  DeadSendApp& app = m.emplace_user<DeadSendApp>();
  app.spawn = m.program().event("seed::dead_spawn", &TDeadSpawner::spawn);
  app.got = m.program().event("seed::dead_got", &TDeadSpawner::got);
  app.nop = m.program().event("seed::dead_nop", &TDeadSpawner::nop);
  app.victim = m.program().event("seed::dead_victim", &TDeadVictim::v);
  m.send_from_host(evw::make_new(0, app.spawn), {});
  m.run();

  const CheckSummary& c = m.stats().check;
  EXPECT_GE(c.dead_thread_sends, 1u);
  EXPECT_FALSE(c.clean());
  const CheckDiagnostic* d = find_kind(m, CheckKind::kSendToDeadThread);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("seed::dead_nop"), std::string::npos);
  EXPECT_NE(d->message.find("seed::dead_got"), std::string::npos);  // the sender
}

// ---------------------------------------------------------------------------
// 4. Leaked thread: a handler returns (implicit yield) and nothing ever
//    addresses the context again — surfaced at drain.
// ---------------------------------------------------------------------------

struct LeakApp {
  EventLabel leak = 0;
};

struct TLeaker : ThreadState {
  void leak(Ctx&) {}  // returns without yield_terminate: context stays live
};

TEST(UdCheck, DetectsLeakedThreadAtDrain) {
  Machine m(checked_config());
  LeakApp& app = m.emplace_user<LeakApp>();
  app.leak = m.program().event("seed::leak", &TLeaker::leak);
  m.send_from_host(evw::make_new(0, app.leak), {});
  m.run();

  const CheckSummary& c = m.stats().check;
  EXPECT_EQ(c.leaked_threads, 1u);
  EXPECT_FALSE(c.clean());
  const CheckDiagnostic* d = find_kind(m, CheckKind::kLeakedThread);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->lane, 0u);
  // Thread lifetimes carry an alloc-site sequence number (creation #N), the
  // same idea as dram_malloc's alloc #N, so the leak points at its spawn.
  EXPECT_GT(d->alloc_seq, 0u);
  EXPECT_NE(d->message.find("creation #"), std::string::npos);
  EXPECT_NE(d->message.find("seed::leak"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Supporting classes: out-of-bounds, bad free, unfired continuation.
// ---------------------------------------------------------------------------

TEST(UdCheck, DetectsOutOfBoundsDramAccess) {
  Machine m(checked_config());
  UafApp& app = m.emplace_user<UafApp>();
  app.read = m.program().event("seed::oob_read", &TUafReader::read);
  app.got = m.program().event("seed::oob_got", &TUafReader::got);
  m.send_from_host(evw::make_new(0, app.read), {0x100});  // below the VA brk
  m.run();

  EXPECT_GE(m.stats().check.out_of_bounds, 1u);
  const CheckDiagnostic* d = find_kind(m, CheckKind::kOutOfBounds);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->va, 0x100u);
}

TEST(UdCheck, RecordsDoubleFree) {
  Machine m(checked_config());
  const Addr va = m.memory().dram_malloc_spread(256);
  m.memory().dram_free(va);
  EXPECT_THROW(m.memory().dram_free(va), BadFreeError);
  m.run();  // empty queue: report immediately
  EXPECT_GE(m.stats().check.bad_frees, 1u);
  EXPECT_NE(find_kind(m, CheckKind::kBadFree), nullptr);
}

struct TDropCont : ThreadState {
  void drop(Ctx& ctx) { ctx.yield_terminate(); }  // never fires ccont()
};

TEST(UdCheck, WarnsOnUnfiredContinuation) {
  Machine m(checked_config());
  LeakApp& app = m.emplace_user<LeakApp>();
  app.leak = m.program().event("seed::drop_cont", &TDropCont::drop);
  const EventLabel sink = m.program().event("seed::cont_sink", &TDropCont::drop);
  m.send_from_host(evw::make_new(0, app.leak), {}, evw::make_new(0, sink));
  m.run();

  const CheckSummary& c = m.stats().check;
  EXPECT_GE(c.unfired_continuations, 1u);
  EXPECT_EQ(c.errors(), 0u);  // a warning: clean() still holds
  EXPECT_TRUE(c.clean());
  const CheckDiagnostic* d = find_kind(m, CheckKind::kUnfiredContinuation);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->error);
  EXPECT_NE(d->message.find("seed::cont_sink"), std::string::npos);
}

}  // namespace
}  // namespace updown
