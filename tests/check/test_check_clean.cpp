// Clean-run guarantees of udcheck: the shipped applications report zero
// errors under checking, and a checked run reproduces the unchecked run's
// statistics bit-for-bit (the checker observes, it never perturbs).
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/tc.hpp"
#include "check/checker.hpp"
#include "graph/generators.hpp"

namespace updown {
namespace {

MachineConfig config(std::uint32_t nodes, bool check) {
  MachineConfig cfg = MachineConfig::scaled(nodes);
  cfg.check = check;
  return cfg;
}

struct Counts {
  Tick done = 0;
  std::uint64_t events = 0, messages = 0, dram_reads = 0, dram_writes = 0,
                threads = 0, charged = 0;
  bool operator==(const Counts&) const = default;
};

Counts counts_of(const Machine& m, Tick done) {
  const MachineStats& s = m.stats();
  return {done,          s.events_executed, s.messages_sent, s.dram_reads,
          s.dram_writes, s.threads_created, s.charged_cycles};
}

Counts run_pagerank(bool check, CheckSummary* out = nullptr, std::uint32_t coalesce = 1) {
  Machine m(config(2, check));
  Graph g = rmat(8, {}, 77);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r =
      pr::App::install(m, dg, sg, {.iterations = 2, .coalesce_tuples = coalesce}).run();
  if (out) *out = m.stats().check;
  return counts_of(m, r.done_tick);
}

Counts run_bfs(bool check, CheckSummary* out = nullptr) {
  Machine m(config(2, check));
  Graph g = rmat(8, {.symmetrize = true}, 13);
  DeviceGraph dg = upload_graph(m, g);
  bfs::Result r = bfs::App::install(m, dg, {.root = 1}).run();
  if (out) *out = m.stats().check;
  return counts_of(m, r.done_tick);
}

Counts run_tc(bool check, CheckSummary* out = nullptr) {
  Machine m(config(2, check));
  Graph g = rmat(7, {.symmetrize = true}, 5);
  DeviceGraph dg = upload_graph(m, g);
  tc::Result r = tc::App::install(m, dg, {}).run();
  if (out) *out = m.stats().check;
  return counts_of(m, r.done_tick);
}

TEST(UdCheckClean, PageRankIsCleanAndCountsUnchanged) {
  CheckSummary c;
  const Counts checked = run_pagerank(true, &c);
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.errors(), 0u) << "PageRank must run clean under UD_CHECK";
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(checked, run_pagerank(false));
}

TEST(UdCheckClean, BfsIsCleanAndCountsUnchanged) {
  CheckSummary c;
  const Counts checked = run_bfs(true, &c);
  EXPECT_EQ(c.errors(), 0u) << "BFS must run clean under UD_CHECK";
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(checked, run_bfs(false));
}

TEST(UdCheckClean, TriangleCountIsCleanAndCountsUnchanged) {
  CheckSummary c;
  const Counts checked = run_tc(true, &c);
  EXPECT_EQ(c.errors(), 0u) << "TC must run clean under UD_CHECK";
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(checked, run_tc(false));
}

TEST(UdCheckClean, CoalescedPageRankIsCleanAndCountsUnchanged) {
  // Shuffle coalescing under the checker exercises bulk-message stamping,
  // the per-buffer sync cells, and the inline-delivery origin stack; a clean
  // run must stay clean and bit-identical to the unchecked coalesced run.
  CheckSummary c;
  const Counts checked = run_pagerank(true, &c, /*coalesce=*/16);
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.errors(), 0u) << "coalesced PageRank must run clean under UD_CHECK";
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(checked, run_pagerank(false, nullptr, /*coalesce=*/16));
}

}  // namespace
}  // namespace updown
