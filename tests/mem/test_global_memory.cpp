#include "mem/global_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace updown {
namespace {

TEST(GlobalMemory, HostRoundTripSpansBlocks) {
  GlobalMemory gm(4);
  const Addr base = gm.dram_malloc(1 << 16, 0, 4, 4096);
  std::vector<std::uint8_t> data(1 << 16);
  std::iota(data.begin(), data.end(), 0);
  gm.host_write(base, data.data(), data.size());
  std::vector<std::uint8_t> out(data.size());
  gm.host_read(base, out.data(), out.size());
  EXPECT_EQ(data, out);
}

TEST(GlobalMemory, WordPhysMatchesHostView) {
  GlobalMemory gm(8);
  const Addr base = gm.dram_malloc(64 * 1024, 0, 8, 4096);
  for (Addr a = base; a < base + 64 * 1024; a += 4096 - 8) {
    const Addr wa = a & ~7ull;
    gm.host_store<Word>(wa, wa * 3 + 1);
    EXPECT_EQ(gm.read_word_phys(gm.translate(wa)), wa * 3 + 1);
  }
  gm.write_word_phys(gm.translate(base + 8), 0xABCD);
  EXPECT_EQ(gm.host_load<Word>(base + 8), 0xABCDu);
}

TEST(GlobalMemory, AllocationsDoNotOverlapPhysically) {
  GlobalMemory gm(2);
  const Addr a = gm.dram_malloc(8192, 0, 2, 4096);
  const Addr b = gm.dram_malloc(8192, 0, 2, 4096);
  gm.host_fill(a, 0xAA, 8192);
  gm.host_fill(b, 0xBB, 8192);
  std::vector<std::uint8_t> va(8192), vb(8192);
  gm.host_read(a, va.data(), va.size());
  gm.host_read(b, vb.data(), vb.size());
  for (auto x : va) EXPECT_EQ(x, 0xAA);
  for (auto x : vb) EXPECT_EQ(x, 0xBB);
}

TEST(GlobalMemory, MixedNodeRangesDoNotOverlap) {
  GlobalMemory gm(8);
  // One region on nodes 0..7, one only on nodes 4..7 (paper Table 1 style).
  const Addr wide = gm.dram_malloc(64 * 1024, 0, 8, 4096);
  const Addr narrow = gm.dram_malloc(32 * 1024, 4, 4, 4096);
  gm.host_fill(wide, 0x11, 64 * 1024);
  gm.host_fill(narrow, 0x22, 32 * 1024);
  std::vector<std::uint8_t> w(64 * 1024);
  gm.host_read(wide, w.data(), w.size());
  for (auto x : w) EXPECT_EQ(x, 0x11);
}

TEST(GlobalMemory, DescriptorCountStaysSmall) {
  // The paper: "a much smaller number of descriptors is required for a
  // typical program (e.g., 2-4 for our benchmarks)".
  GlobalMemory gm(16);
  gm.dram_malloc(1 << 20, 0, 16, 32 * 1024);  // vertex array
  gm.dram_malloc(1 << 22, 0, 16, 32 * 1024);  // neighbor list
  gm.dram_malloc(1 << 18, 0, 16, 1 << 14);    // frontier
  EXPECT_LE(gm.descriptor_count(), 4u);
}

TEST(GlobalMemory, RejectsInvalidParameters) {
  GlobalMemory gm(4);
  EXPECT_THROW(gm.dram_malloc(0, 0, 4, 4096), std::invalid_argument);
  EXPECT_THROW(gm.dram_malloc(4096, 0, 3, 4096), std::invalid_argument);  // not pow2
  EXPECT_THROW(gm.dram_malloc(4096, 0, 4, 3000), std::invalid_argument);  // not pow2
  EXPECT_THROW(gm.dram_malloc(4096, 2, 4, 4096), std::invalid_argument);  // past end
  EXPECT_THROW(gm.translate(0xDEAD), std::out_of_range);  // unmapped VA
}

TEST(GlobalMemory, DramFreeRetiresDescriptor) {
  GlobalMemory gm(2);
  const Addr a = gm.dram_malloc(4096, 0, 2, 4096);
  EXPECT_EQ(gm.descriptor_count(), 1u);
  gm.dram_free(a);
  EXPECT_EQ(gm.descriptor_count(), 0u);
  EXPECT_THROW(gm.translate(a), std::out_of_range);
  EXPECT_THROW(gm.dram_free(a), std::invalid_argument);
}

TEST(GlobalMemory, SpreadHelperUsesWholeMachine) {
  GlobalMemory gm(8);
  const Addr a = gm.dram_malloc_spread(8 * 32 * 1024);
  const auto& d = gm.descriptor_for(a);
  EXPECT_EQ(d.nr_nodes(), 8u);
  EXPECT_EQ(d.block_size(), 32u * 1024);
  // All 8 nodes receive at least one block.
  bool touched[8] = {};
  for (std::uint64_t off = 0; off < 8 * 32 * 1024; off += 32 * 1024)
    touched[gm.translate(a + off).node] = true;
  for (bool t : touched) EXPECT_TRUE(t);
}

}  // namespace
}  // namespace updown
