#include "mem/swizzle.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

namespace updown {
namespace {

TEST(Swizzle, SingleNodeIsIdentityPlusNodeBase) {
  SwizzleDescriptor d(/*base=*/0x1000, /*size=*/4096, /*first_node=*/0,
                      /*nr_nodes=*/1, /*block_size=*/4096, /*node_base=*/512);
  for (Addr a : {Addr{0x1000}, Addr{0x1008}, Addr{0x1FF8}}) {
    const PhysLoc loc = d.translate(a);
    EXPECT_EQ(loc.node, 0u);
    EXPECT_EQ(loc.offset, 512 + (a - 0x1000));
  }
}

TEST(Swizzle, BlockCyclicRoundRobinOverNodes) {
  // 4 nodes, 4 KiB blocks: block i lands on node i mod 4.
  SwizzleDescriptor d(0, 64 * 1024, 0, 4, 4096, 0);
  for (std::uint64_t block = 0; block < 16; ++block) {
    const PhysLoc loc = d.translate(block * 4096);
    EXPECT_EQ(loc.node, block % 4) << "block " << block;
    EXPECT_EQ(loc.offset, (block / 4) * 4096) << "block " << block;
  }
}

TEST(Swizzle, FirstNodeOffsetsTheCycle) {
  SwizzleDescriptor d(0, 32 * 4096, /*first_node=*/8, /*nr_nodes=*/4, 4096, 0);
  EXPECT_EQ(d.translate(0).node, 8u);
  EXPECT_EQ(d.translate(4096).node, 9u);
  EXPECT_EQ(d.translate(5 * 4096).node, 9u);
}

TEST(Swizzle, ContiguousWithinBlock) {
  SwizzleDescriptor d(0x8000, 1 << 20, 0, 8, 1 << 14, 0);
  const PhysLoc start = d.translate(0x8000);
  for (std::uint64_t off = 0; off < (1u << 14); off += 8) {
    const PhysLoc loc = d.translate(0x8000 + off);
    EXPECT_EQ(loc.node, start.node);
    EXPECT_EQ(loc.offset, start.offset + off);
  }
}

TEST(Swizzle, BytesPerNodeRoundsUpToWholeBlocks) {
  SwizzleDescriptor d(0, 10 * 4096, 0, 4, 4096, 0);
  // 10 blocks over 4 nodes -> 3 blocks on the widest node.
  EXPECT_EQ(d.bytes_per_node(), 3u * 4096);
}

// Table 1 of the paper: representative DRAMmalloc() parameter sets. The
// contiguous-per-node case (4 TB, 1K nodes, 4 GB blocks) must give each node
// one unbroken region.
TEST(Swizzle, Table1ContiguousRegionsPerNode) {
  const std::uint64_t four_gb = 4ull << 30;
  SwizzleDescriptor d(0, 64 * four_gb, 0, 64, four_gb, 0);
  for (std::uint32_t n = 0; n < 64; ++n) {
    const PhysLoc first = d.translate(static_cast<Addr>(n) * four_gb);
    const PhysLoc last = d.translate(static_cast<Addr>(n + 1) * four_gb - 8);
    EXPECT_EQ(first.node, n);
    EXPECT_EQ(last.node, n);
    EXPECT_EQ(last.offset - first.offset, four_gb - 8);
  }
}

// Property: translation is a bijection — no two virtual words map to the
// same physical (node, offset).
class SwizzleBijection
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(SwizzleBijection, NoPhysicalAliasing) {
  const auto [nr_nodes, block] = GetParam();
  const std::uint64_t size = 16 * nr_nodes * block;
  SwizzleDescriptor d(0x100000, size, 0, nr_nodes, block, 64);
  std::map<std::pair<std::uint32_t, std::uint64_t>, Addr> seen;
  for (Addr a = 0x100000; a < 0x100000 + size; a += block / 2) {
    const PhysLoc loc = d.translate(a);
    auto [it, inserted] = seen.emplace(std::make_pair(loc.node, loc.offset), a);
    EXPECT_TRUE(inserted) << "VA " << a << " aliases VA " << it->second;
    EXPECT_LT(loc.node, nr_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SwizzleBijection,
                         ::testing::Combine(::testing::Values(1u, 2u, 8u, 64u),
                                            ::testing::Values(std::uint64_t{256},
                                                              std::uint64_t{4096},
                                                              std::uint64_t{1} << 16)));

}  // namespace
}  // namespace updown
