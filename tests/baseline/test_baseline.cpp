#include "baseline/baseline.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace updown {
namespace {

TEST(BaselinePageRank, UniformOnRegularGraph) {
  // On a complete graph every vertex has the same rank.
  Graph g = complete_graph(8);
  auto pr = baseline::pagerank(g, 20);
  for (double v : pr) EXPECT_NEAR(v, 1.0 / 8, 1e-9);
}

TEST(BaselinePageRank, SumStaysNearOneWithoutDanglingVertices) {
  Graph g = rmat(8, {.symmetrize = true});
  auto pr = baseline::pagerank(g, 10);
  // Symmetric RMAT still has isolated vertices (no in/out edges); they hold
  // (1-d)/N each, the rest redistributes — total stays <= 1 and > 0.8.
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_GT(sum, 0.5);
  EXPECT_LE(sum, 1.0 + 1e-9);
}

TEST(BaselinePageRank, HubOutranksLeaves) {
  Graph g = star_graph(32);  // all leaves point at hub and back
  auto pr = baseline::pagerank(g, 30);
  for (VertexId leaf = 1; leaf <= 32; ++leaf) EXPECT_GT(pr[0], pr[leaf]);
}

TEST(BaselineBfs, PathGraphDistances) {
  Graph g = path_graph(10);
  auto r = baseline::bfs(g, 0);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.parent[5], 4u);
  // 10 frontier scans: {0}..{9}; the last adds nothing (the paper's logs
  // likewise show a final "add queue 0" iteration before "BFS finish").
  EXPECT_EQ(r.rounds, 10u);
}

TEST(BaselineBfs, UnreachableVerticesStayInf) {
  Graph g = Graph::from_edges(4, {{0, 1}}, true);
  auto r = baseline::bfs(g, 0);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[2], ~0ull);
  EXPECT_EQ(r.dist[3], ~0ull);
}

TEST(BaselineTc, CompleteGraphChoose3) {
  // K_n has C(n,3) triangles.
  EXPECT_EQ(baseline::triangle_count(complete_graph(4)), 4u);
  EXPECT_EQ(baseline::triangle_count(complete_graph(6)), 20u);
  EXPECT_EQ(baseline::triangle_count(complete_graph(10)), 120u);
}

TEST(BaselineTc, PathAndStarHaveNoTriangles) {
  EXPECT_EQ(baseline::triangle_count(path_graph(50)), 0u);
  EXPECT_EQ(baseline::triangle_count(star_graph(50)), 0u);
}

TEST(BaselineTc, TriangleWithTail) {
  Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}, true);
  EXPECT_EQ(baseline::triangle_count(g), 1u);
}

// Brute-force cross-check on random graphs.
std::uint64_t brute_triangles(const Graph& g) {
  std::uint64_t c = 0;
  for (VertexId x = 0; x < g.num_vertices(); ++x)
    for (VertexId y : g.neighbors_of(x))
      if (y < x)
        for (VertexId z : g.neighbors_of(y))
          if (z < y && g.has_edge(x, z)) ++c;
  return c;
}

class TcOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcOracle, MatchesBruteForce) {
  Graph g = rmat(7, {.symmetrize = true}, GetParam());
  EXPECT_EQ(baseline::triangle_count(g), brute_triangles(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcOracle, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace updown
