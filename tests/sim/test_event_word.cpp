#include "sim/event_word.hpp"

#include <gtest/gtest.h>

namespace updown {
namespace {

TEST(EventWord, RoundTripNewThread) {
  const Word w = evw::make_new(0xDEADBEEF, 0x7AB, 5);
  EXPECT_EQ(evw::nwid(w), 0xDEADBEEFu);
  EXPECT_EQ(evw::label(w), 0x7AB);
  EXPECT_TRUE(evw::is_new_thread(w));
}

TEST(EventWord, RoundTripExistingThread) {
  const Word w = evw::make_existing(42, 999, 311, 3);
  EXPECT_EQ(evw::nwid(w), 42u);
  EXPECT_EQ(evw::tid(w), 999);
  EXPECT_EQ(evw::label(w), 311);
  EXPECT_FALSE(evw::is_new_thread(w));
}

TEST(EventWord, UpdateEventKeepsEverythingElse) {
  const Word w = evw::make_existing(7, 13, 100);
  const Word u = evw::update_event(w, 200);
  EXPECT_EQ(evw::nwid(u), 7u);
  EXPECT_EQ(evw::tid(u), 13);
  EXPECT_EQ(evw::label(u), 200);
  EXPECT_FALSE(evw::is_new_thread(u));
  // new-thread flag also preserved
  const Word n = evw::update_event(evw::make_new(7, 100), 200);
  EXPECT_TRUE(evw::is_new_thread(n));
  EXPECT_EQ(evw::label(n), 200);
}

TEST(EventWord, UpdateNwidKeepsLabelAndTid) {
  const Word w = evw::make_existing(7, 13, 100);
  const Word u = evw::update_nwid(w, 2048);
  EXPECT_EQ(evw::nwid(u), 2048u);
  EXPECT_EQ(evw::tid(u), 13);
  EXPECT_EQ(evw::label(u), 100);
}

TEST(EventWord, IgnrcontIsNeverAValidEventWord) {
  // Label 0 is reserved by Program, so the all-zero word cannot address a
  // registered event.
  EXPECT_EQ(evw::label(IGNRCONT), 0);
  EXPECT_FALSE(evw::is_new_thread(IGNRCONT));
}

}  // namespace
}  // namespace updown
