// Unit tests for the discrete-event engine's data structures: the two-level
// calendar queue (exact (tick, src, seq) total order, epoch crossing,
// far-heap overflow) and the recycling slab pool (stable addresses, index
// reuse).
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace updown {
namespace {

std::vector<QEntry> drain(CalendarEventQueue& q) {
  std::vector<QEntry> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

TEST(CalendarEventQueue, SameTickPopsInSeqOrder) {
  CalendarEventQueue q;
  // Push in scrambled seq order at one tick; FIFO (seq) order must come out.
  for (std::uint32_t seq : {5u, 1u, 4u, 0u, 3u, 2u})
    q.push(QEntry{100, 0, seq, seq, 0});
  const auto out = drain(q);
  ASSERT_EQ(out.size(), 6u);
  for (std::uint32_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].seq, i);
}

TEST(CalendarEventQueue, SameTickOrdersBySrcThenSeq) {
  CalendarEventQueue q;
  // Entity ids break ties first, each entity's own counter second — the key
  // property the sharded engine's determinism rests on.
  q.push(QEntry{7, /*src=*/2, /*seq=*/0, 0, 0});
  q.push(QEntry{7, /*src=*/0, /*seq=*/9, 1, 0});
  q.push(QEntry{7, /*src=*/1, /*seq=*/4, 2, 0});
  q.push(QEntry{7, /*src=*/0, /*seq=*/3, 3, 0});
  q.push(QEntry{7, /*src=*/1, /*seq=*/5, 4, 0});
  std::vector<std::pair<std::uint32_t, std::uint32_t>> got;
  for (const QEntry& e : drain(q)) got.emplace_back(e.src, e.seq);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> want = {
      {0, 3}, {0, 9}, {1, 4}, {1, 5}, {2, 0}};
  EXPECT_EQ(got, want);
}

TEST(CalendarEventQueue, PeekTickMatchesPop) {
  CalendarEventQueue q(/*bucket_width_log2=*/2, /*nbuckets_log2=*/3);
  std::uint32_t seq = 0;
  for (Tick t : {44u, 9u, 9u, 300u, 12u}) q.push(QEntry{t, 0, seq++, 0, 0});
  while (!q.empty()) {
    const Tick peeked = q.peek_tick();
    EXPECT_EQ(q.pop().t, peeked);
  }
}

TEST(CalendarEventQueue, MixedTicksTotalOrder) {
  CalendarEventQueue q;
  q.push(QEntry{30, 0, 0, 0, 0});
  q.push(QEntry{10, 0, 1, 1, 0});
  q.push(QEntry{30, 0, 2, 2, 1});
  q.push(QEntry{20, 0, 3, 3, 0});
  q.push(QEntry{10, 0, 4, 4, 1});
  std::vector<std::pair<Tick, std::uint32_t>> got;
  for (const QEntry& e : drain(q)) got.emplace_back(e.t, e.seq);
  const std::vector<std::pair<Tick, std::uint32_t>> want = {
      {10, 1}, {10, 4}, {20, 3}, {30, 0}, {30, 2}};
  EXPECT_EQ(got, want);
}

TEST(CalendarEventQueue, PushIntoActiveBucketDuringDrain) {
  // The engine's common pattern: executing the event at tick t enqueues a new
  // event whose arrival lands in the bucket currently being drained.
  CalendarEventQueue q(/*bucket_width_log2=*/4, /*nbuckets_log2=*/4);
  std::uint32_t seq = 0;
  q.push(QEntry{16, 0, seq++, 0, 0});
  q.push(QEntry{18, 0, seq++, 0, 0});
  EXPECT_EQ(q.pop().t, 16u);
  q.push(QEntry{17, 0, seq++, 0, 0});  // same 16-tick bucket, mid-drain
  EXPECT_EQ(q.pop().t, 17u);
  EXPECT_EQ(q.pop().t, 18u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarEventQueue, FarFutureOverflowsAndReturnsInOrder) {
  // 4 buckets x 2 ticks = an 8-tick window; anything further goes to the far
  // heap and must still pop in global order once the cursor advances.
  CalendarEventQueue q(/*bucket_width_log2=*/1, /*nbuckets_log2=*/2);
  std::uint32_t seq = 0;
  q.push(QEntry{2, 0, seq++, 0, 0});
  q.push(QEntry{1000, 0, seq++, 0, 0});  // far
  q.push(QEntry{5, 0, seq++, 0, 0});
  q.push(QEntry{500, 0, seq++, 0, 0});   // far
  q.push(QEntry{1000, 0, seq++, 0, 0});  // far, same tick: seq tie-break
  EXPECT_GE(q.stats().far_events, 3u);

  std::vector<Tick> ticks;
  std::vector<std::uint32_t> seqs;
  for (const QEntry& e : drain(q)) {
    ticks.push_back(e.t);
    seqs.push_back(e.seq);
  }
  EXPECT_EQ(ticks, (std::vector<Tick>{2, 5, 500, 1000, 1000}));
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 2, 3, 1, 4}));
}

TEST(CalendarEventQueue, EpochCrossingInterleavedWithReference) {
  // Differential test against a plain binary heap with the engine's access
  // pattern: pop one, push a few at random offsets (near-future mostly, an
  // occasional far-future burst), across many calendar epochs. A tiny ring
  // forces constant window wraps and far-heap traffic.
  CalendarEventQueue q(/*bucket_width_log2=*/2, /*nbuckets_log2=*/3);
  auto cmp = [](const QEntry& a, const QEntry& b) {
    if (a.t != b.t) return a.t > b.t;
    if (a.src != b.src) return a.src > b.src;
    return a.seq > b.seq;
  };
  std::priority_queue<QEntry, std::vector<QEntry>, decltype(cmp)> ref(cmp);

  Xoshiro256 rng(99);
  std::uint32_t seq = 0;
  auto push_both = [&](Tick t) {
    // Spread pushes over a few source entities to exercise the src tie-break.
    QEntry e{t, static_cast<std::uint32_t>(rng() % 5), seq++, 0, 0};
    q.push(e);
    ref.push(e);
  };
  for (int i = 0; i < 64; ++i) push_both(rng() % 40);

  Tick now = 0;
  for (int step = 0; step < 20000; ++step) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.peek_tick(), ref.top().t);
    const QEntry got = q.pop();
    const QEntry want = ref.top();
    ref.pop();
    ASSERT_EQ(got.t, want.t) << "step " << step;
    ASSERT_EQ(got.src, want.src) << "step " << step;
    ASSERT_EQ(got.seq, want.seq) << "step " << step;
    now = got.t;
    if (ref.size() < 64) {
      const Tick ahead = (rng() % 16 == 0) ? 200 + rng() % 4000 : 1 + rng() % 24;
      push_both(now + ahead);
    }
  }
  while (!q.empty()) {
    const QEntry got = q.pop();
    EXPECT_EQ(got.t, ref.top().t);
    EXPECT_EQ(got.seq, ref.top().seq);
    ref.pop();
  }
  EXPECT_TRUE(ref.empty());
}

TEST(CalendarEventQueue, PastDueEntriesFireImmediately) {
  CalendarEventQueue q(/*bucket_width_log2=*/2, /*nbuckets_log2=*/3);
  std::uint32_t seq = 0;
  q.push(QEntry{100, 0, seq++, 0, 0});
  EXPECT_EQ(q.pop().t, 100u);  // cursor is now at tick-100's bucket
  q.push(QEntry{40, 0, seq++, 0, 0});  // in the past: clamped, pops next
  q.push(QEntry{101, 0, seq++, 0, 0});
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().t, 101u);
}

TEST(SlabPool, StableAddressesAcrossGrowth) {
  SlabPool<int> pool;
  const std::uint32_t first = pool.acquire();
  int* p = &pool[first];
  *p = 42;
  // Force several slab growths; the first slot must not move.
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 5000; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(&pool[first], p);
  EXPECT_EQ(pool[first], 42);
  EXPECT_EQ(pool.live(), 5001u);
  EXPECT_GE(pool.capacity(), 5001u);
  for (std::uint32_t h : held) pool.release(h);
  pool.release(first);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, RecyclesIndicesUnderChurn) {
  SlabPool<int> pool;
  // Steady-state churn (acquire one, release one) must not grow the pool.
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 64; ++i) held.push_back(pool.acquire());
  const std::uint32_t cap = pool.capacity();
  Xoshiro256 rng(3);
  for (int i = 0; i < 100000; ++i) {
    const std::size_t victim = rng() % held.size();
    pool.release(held[victim]);
    held[victim] = pool.acquire();
  }
  EXPECT_EQ(pool.capacity(), cap);
  EXPECT_EQ(pool.live(), 64u);
  // All held indices are distinct (no double handout).
  std::sort(held.begin(), held.end());
  EXPECT_EQ(std::adjacent_find(held.begin(), held.end()), held.end());
}

TEST(SlabPool, LifoRecyclingKeepsWorkingSetSmall) {
  SlabPool<int> pool;
  const std::uint32_t a = pool.acquire();
  pool.release(a);
  // LIFO: the slot just released is the next one handed out.
  EXPECT_EQ(pool.acquire(), a);
  pool.release(a);
}

// A double or out-of-range release plants a duplicate/bogus index in the
// free list; the corruption surfaces much later as two live payloads sharing
// a slot. Debug builds keep a freed-bitmap so the bad release itself asserts
// (release builds stay zero-overhead and execute the statement unchecked).
TEST(SlabPoolDeathTest, DoubleReleaseAssertsInDebug) {
  SlabPool<int> pool;
  const std::uint32_t a = pool.acquire();
  const std::uint32_t b = pool.acquire();  // keep live_ > 0 past the release
  (void)b;
  pool.release(a);
  EXPECT_DEBUG_DEATH(pool.release(a), "double release");
}

TEST(SlabPoolDeathTest, OutOfRangeReleaseAssertsInDebug) {
  SlabPool<int> pool;
  (void)pool.acquire();
  EXPECT_DEBUG_DEATH(pool.release(pool.capacity() + 5), "index out of range");
}

TEST(SlabPool, ReleasedSlotCanBeReacquiredCleanly) {
  // The freed-bitmap must clear on acquire: release-then-reacquire of the
  // same index is the normal recycling path, not a double release.
  SlabPool<int> pool;
  const std::uint32_t a = pool.acquire();
  pool.release(a);
  ASSERT_EQ(pool.acquire(), a);
  pool.release(a);  // must not trip the debug bitmap
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace updown
