// The SoA lane table: hot words in flat arrays, cold per-lane cores
// materialized on first touch, scratchpad backing deferred further until the
// first actual data access. These properties are what let a Machine be
// configured at paper scale (thousands of nodes) without paying for lanes
// the workload never touches — asserted here at both the LaneTable unit
// level and through a real Machine run.
#include "sim/lane.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown {
namespace {

constexpr std::uint64_t kSp = 64 * 1024;

// ---------------------------------------------------------------------------
// Lazy materialization.
// ---------------------------------------------------------------------------

TEST(LaneTable, ConstructionMaterializesNothing) {
  // A paper-scale lane count is constructible because idle lanes cost flat
  // words plus a null core pointer, not a scratchpad + context table.
  LaneTable t(1u << 20, 1u << 14, kSp);
  EXPECT_EQ(t.size(), 1u << 20);
  EXPECT_EQ(t.materialized_cores(), 0u);
  for (NetworkId id : {0u, 12345u, (1u << 20) - 1}) EXPECT_EQ(t.core_if(id), nullptr);
}

TEST(LaneTable, FirstTouchMaterializesOnlyThatLane) {
  LaneTable t(64, 16, kSp);
  Lane lane(t, 7);
  lane.stats().events_executed++;  // any cold-state touch
  EXPECT_EQ(t.materialized_cores(), 1u);
  EXPECT_NE(t.core_if(7), nullptr);
  EXPECT_EQ(t.core_if(6), nullptr);
  EXPECT_EQ(t.core_if(8), nullptr);
}

TEST(LaneTable, HotWordsNeverMaterializeACore) {
  LaneTable t(8, 16, kSp);
  Lane lane(t, 3);
  lane.set_free_at(100);
  EXPECT_EQ(lane.free_at(), 100u);
  EXPECT_EQ(lane.next_seq(), 0u);
  EXPECT_EQ(lane.next_seq(), 1u);
  EXPECT_EQ(lane.live_threads(), 0u);  // no-throw read through core_if
  EXPECT_EQ(t.materialized_cores(), 0u);
}

TEST(LaneTable, SpAllocIsBookkeepingOnly) {
  // spMalloc bumps the flat break against the configured capacity without
  // touching (or creating) the backing store: KVMSR control traffic can
  // reserve scratchpad on every lane of a huge machine for free.
  LaneTable t(8, 16, kSp);
  Lane lane(t, 2);
  EXPECT_EQ(lane.sp_alloc(100), 0u);
  EXPECT_EQ(lane.sp_alloc(8), 104u);  // previous break aligned up to 8
  EXPECT_EQ(t.materialized_cores(), 0u);

  // First data access materializes the core and the zero-filled backing.
  std::uint8_t* sp = lane.scratchpad();
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(t.materialized_cores(), 1u);
  ASSERT_NE(t.core_if(2), nullptr);
  EXPECT_EQ(t.core_if(2)->scratchpad.size(), kSp);
  for (std::uint64_t i = 0; i < kSp; i += 4097) EXPECT_EQ(sp[i], 0u);
}

TEST(LaneTable, MaterializeAllIsTheEagerLayout) {
  LaneTable t(32, 16, kSp);
  t.materialize_all();
  EXPECT_EQ(t.materialized_cores(), 32u);
  for (NetworkId id = 0; id < 32; ++id) {
    ASSERT_NE(t.core_if(id), nullptr);
    EXPECT_EQ(t.core_if(id)->scratchpad.size(), kSp);
  }
}

// ---------------------------------------------------------------------------
// Scratchpad bump-allocator discipline.
// ---------------------------------------------------------------------------

TEST(LaneTable, SpAllocExhaustionNamesTheLane) {
  LaneTable t(64, 16, kSp);
  Lane lane(t, 42);
  lane.sp_alloc(kSp);  // exactly full is fine
  try {
    lane.sp_alloc(1);
    FAIL() << "expected scratchpad exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "spMalloc: lane scratchpad exhausted (lane 42)");
  }
  // The failed allocation left the break untouched.
  EXPECT_EQ(lane.sp_mark(), kSp);
}

TEST(LaneTable, SpReleaseRestoresTheMark) {
  LaneTable t(4, 16, kSp);
  Lane lane(t, 0);
  const std::uint64_t mark = lane.sp_mark();
  lane.sp_alloc(1000);
  lane.sp_alloc(24);
  lane.sp_release(mark);
  EXPECT_EQ(lane.sp_mark(), 0u);
  EXPECT_EQ(lane.sp_alloc(8), 0u);  // space is reusable
}

TEST(LaneTable, SpReleaseStaleMarkThrowsInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "stale-mark validation is compiled out in Release";
#else
  LaneTable t(4, 16, kSp);
  Lane lane(t, 1);
  lane.sp_alloc(64);
  const std::uint64_t mark = lane.sp_mark();
  lane.sp_release(0);  // pops everything...
  EXPECT_THROW(lane.sp_release(mark), std::logic_error);  // ...mark is now stale
#endif
}

TEST(LaneTable, SeededSpDiscipline) {
  // Randomized mark/alloc/release against a reference bump-allocator model:
  // offsets aligned as requested, break identical to the model after every
  // operation, marks released in LIFO order always valid.
  std::mt19937 rng(20260808);
  LaneTable t(4, 16, kSp);
  Lane lane(t, 3);
  std::uint64_t model = 0;
  std::vector<std::uint64_t> marks;
  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng() % 10);
    if (op < 6) {
      const std::uint64_t bytes = rng() % 256 + 1;
      const std::uint64_t align = 1ull << (rng() % 5);  // 1..16
      const std::uint64_t off = (model + align - 1) & ~(align - 1);
      if (off + bytes > kSp) {
        EXPECT_THROW(lane.sp_alloc(bytes, align), std::runtime_error);
      } else {
        EXPECT_EQ(lane.sp_alloc(bytes, align), off);
        EXPECT_EQ(off % align, 0u);
        model = off + bytes;
      }
    } else if (op < 8) {
      marks.push_back(lane.sp_mark());
      EXPECT_EQ(marks.back(), model);
    } else if (!marks.empty()) {
      lane.sp_release(marks.back());
      model = marks.back();
      marks.pop_back();
    }
    EXPECT_EQ(lane.sp_mark(), model);
  }
  // The whole exercise was bookkeeping: still no backing store.
  EXPECT_EQ(t.materialized_cores(), 0u);
}

// ---------------------------------------------------------------------------
// Machine-level laziness: a run that touches a few lanes materializes only
// those lanes' cores, and reserving scratchpad via Ctx does not create a
// backing store until data is actually read or written.
// ---------------------------------------------------------------------------

struct LazyApp {
  EventLabel reserve, touch;
};

struct TLazy : ThreadState {
  void reserve(Ctx& ctx) {
    // spMalloc only: the lane's core materializes (a thread context lives
    // in it) but the scratchpad backing must not.
    ctx.sp_alloc(4096);
    ctx.yield_terminate();
  }
  void touch(Ctx& ctx) {
    const std::uint64_t off = ctx.sp_alloc(64);
    ctx.sp_write(off, Word{0xBEEF});
    ctx.yield_terminate();
  }
};

TEST(LaneTableMachine, RunMaterializesOnlyTouchedLanes) {
  Machine m(MachineConfig::scaled(2));  // 64 lanes across 2 nodes
  auto& app = m.emplace_user<LazyApp>();
  app.reserve = m.program().event("TLazy::reserve", &TLazy::reserve);
  app.touch = m.program().event("TLazy::touch", &TLazy::touch);

  const LaneTable& lt = m.lane_table();
  EXPECT_EQ(lt.materialized_cores(), 0u);

  m.send_from_host(evw::make_new(0, app.reserve), {});
  m.send_from_host(evw::make_new(5, app.touch), {});
  m.run();

  // Exactly the two addressed lanes have cores; everything else is idle.
  EXPECT_EQ(lt.materialized_cores(), 2u);
  ASSERT_NE(lt.core_if(0), nullptr);
  ASSERT_NE(lt.core_if(5), nullptr);
  EXPECT_EQ(lt.core_if(1), nullptr);
  EXPECT_EQ(lt.core_if(63), nullptr);

  // Lane 0 reserved scratchpad but never touched it: no backing. Lane 5
  // wrote a word: full backing.
  EXPECT_EQ(lt.core_if(0)->scratchpad.size(), 0u);
  EXPECT_EQ(lt.core_if(5)->scratchpad.size(), m.config().scratchpad_bytes);
}

}  // namespace
}  // namespace updown
