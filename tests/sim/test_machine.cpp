// End-to-end tests of the event-driven machine: thread/event semantics,
// continuation composition (the paper's Listing 2), DRAM access, costs.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "udweave/context.hpp"

namespace updown {
namespace {

// ---------------------------------------------------------------------------
// The paper's Listing 2: call-return composition via continuations.
//   e1 spawns e2 on the next lane with a continuation pointing at its own e3.
struct CallReturnApp {
  EventLabel e1, e2, e3;
  int e3_runs = 0;
  Word received0 = 0, received1 = 0;
};

struct TCallReturn : ThreadState {
  void e1(Ctx& ctx) {
    auto& app = ctx.machine().user<CallReturnApp>();
    const Word evw = ctx.evw_new(ctx.nwid() + 1, app.e2);
    const Word ctw = ctx.evw_update_event(ctx.cevnt(), app.e3);
    ctx.send_event(evw, {0, 1}, ctw);
  }
  void e2(Ctx& ctx) {
    auto& app = ctx.machine().user<CallReturnApp>();
    app.received0 = ctx.op(0);
    app.received1 = ctx.op(1);
    ctx.send_reply({});
    ctx.yield_terminate();
  }
  void e3(Ctx& ctx) {
    ctx.machine().user<CallReturnApp>().e3_runs++;
    ctx.yield_terminate();
  }
};

TEST(Machine, CallReturnComposition) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<CallReturnApp>();
  app.e1 = m.program().event("TCallReturn::e1", &TCallReturn::e1);
  app.e2 = m.program().event("TCallReturn::e2", &TCallReturn::e2);
  app.e3 = m.program().event("TCallReturn::e3", &TCallReturn::e3);

  m.send_from_host(evw::make_new(0, app.e1), {});
  m.run();

  EXPECT_EQ(app.received0, 0u);
  EXPECT_EQ(app.received1, 1u);
  EXPECT_EQ(app.e3_runs, 1);
  EXPECT_EQ(m.stats().events_executed, 3u);
  EXPECT_EQ(m.stats().threads_created, 2u);
  EXPECT_EQ(m.stats().threads_destroyed, 2u);
}

// ---------------------------------------------------------------------------
// Thread-state persistence across events (Listing 1 style reduction).
struct ReductionApp {
  EventLabel start, add, finish;
  Word result = 0;
  Tick done_at = 0;
};

struct TReduce : ThreadState {
  Word acc = 0;   // thread variable, preserved across events
  Word seen = 0;
  Word expect = 0;

  void start(Ctx& ctx) {
    auto& app = ctx.machine().user<ReductionApp>();
    expect = ctx.op(0);
    // Fan out: one add event per value, all back to this same thread.
    for (Word i = 0; i < expect; ++i) {
      ctx.charge(2);  // loop control + address arithmetic
      ctx.send_event(ctx.evw_update_event(ctx.cevnt(), app.add), {i + 1});
    }
  }
  void add(Ctx& ctx) {
    auto& app = ctx.machine().user<ReductionApp>();
    acc += ctx.op(0);
    ctx.charge(1);
    if (++seen == expect) {
      app.result = acc;
      app.done_at = ctx.now();
      ctx.yield_terminate();
    }
  }
};

TEST(Machine, ThreadStatePersistsAcrossEvents) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<ReductionApp>();
  app.start = m.program().event("TReduce::start", &TReduce::start);
  app.add = m.program().event("TReduce::add", &TReduce::add);

  m.send_from_host(evw::make_new(3, app.start), {10});
  m.run();
  EXPECT_EQ(app.result, 55u);  // 1+2+...+10
  EXPECT_GT(app.done_at, 0u);
}

// ---------------------------------------------------------------------------
// DRAM write-then-read round trip through the simulated memory system.
struct DramApp {
  EventLabel start, wrote, readback;
  Addr base = 0;
  std::vector<Word> got;
};

struct TDram : ThreadState {
  void start(Ctx& ctx) {
    auto& app = ctx.machine().user<DramApp>();
    ctx.send_dram_write(app.base, {111, 222, 333}, app.wrote);
  }
  void wrote(Ctx& ctx) {
    auto& app = ctx.machine().user<DramApp>();
    ctx.send_dram_read(app.base, 3, app.readback);
  }
  void readback(Ctx& ctx) {
    auto& app = ctx.machine().user<DramApp>();
    for (unsigned i = 0; i < ctx.nops(); ++i) app.got.push_back(ctx.op(i));
    EXPECT_EQ(ctx.ccont(), app.base);  // response carries the request address
    ctx.yield_terminate();
  }
};

TEST(Machine, DramRoundTrip) {
  Machine m(MachineConfig::scaled(4));
  auto& app = m.emplace_user<DramApp>();
  app.start = m.program().event("TDram::start", &TDram::start);
  app.wrote = m.program().event("TDram::wrote", &TDram::wrote);
  app.readback = m.program().event("TDram::readback", &TDram::readback);
  app.base = m.memory().dram_malloc(4096, 0, 4, 256);

  m.send_from_host(evw::make_new(0, app.start), {});
  m.run();
  ASSERT_EQ(app.got.size(), 3u);
  EXPECT_EQ(app.got[0], 111u);
  EXPECT_EQ(app.got[1], 222u);
  EXPECT_EQ(app.got[2], 333u);
  EXPECT_EQ(m.stats().dram_reads, 1u);
  EXPECT_EQ(m.stats().dram_writes, 1u);
  // Host view agrees with the simulated write.
  EXPECT_EQ(m.memory().host_load<Word>(app.base + 8), 222u);
}

// ---------------------------------------------------------------------------
// Cost model: remote events cost more wall-clock than local ones.
struct PingApp {
  EventLabel ping;
  Tick done_at = 0;
};
struct TPing : ThreadState {
  void ping(Ctx& ctx) {
    ctx.machine().user<PingApp>().done_at = ctx.now();
    ctx.yield_terminate();
  }
};

TEST(Machine, RemoteDeliveryIsSlowerThanLocal) {
  Tick local_done = 0, remote_done = 0;
  for (bool remote : {false, true}) {
    Machine m(MachineConfig::scaled(16));
    auto& app = m.emplace_user<PingApp>();
    app.ping = m.program().event("TPing::ping", &TPing::ping);
    const NetworkId dst = remote ? m.first_lane_of_node(15) : 1;
    m.send_from_host(evw::make_new(dst, app.ping), {});
    m.run();
    (remote ? remote_done : local_done) = app.done_at;
  }
  EXPECT_GT(remote_done, local_done + 500);
}

// Event delivered to a thread of the wrong class is a hard error.
struct TOther : ThreadState {
  void nop(Ctx&) {}
};

TEST(Machine, MismatchedThreadClassThrows) {
  Machine m(MachineConfig::scaled(1));
  struct App {
    EventLabel spawn, wrong;
  };
  auto& app = m.emplace_user<App>();
  struct TSpawner : ThreadState {
    void spawn(Ctx& ctx) {
      auto& a = ctx.machine().user<App>();
      // Address the *current* (TSpawner) thread with TOther's handler.
      ctx.send_event(ctx.evw_update_event(ctx.cevnt(), a.wrong), {});
    }
  };
  app.spawn = m.program().event("TSpawner::spawn", &TSpawner::spawn);
  app.wrong = m.program().event("TOther::nop", &TOther::nop);
  m.send_from_host(evw::make_new(0, app.spawn), {});
  if (m.checker()) {
    // Checked mode (ambient UD_CHECK=1): the delivery is suppressed and
    // reported instead of throwing, so the run can surface later violations.
    m.run();
    EXPECT_GE(m.stats().check.bad_event_words, 1u);
  } else {
    EXPECT_THROW(m.run(), std::runtime_error);
  }
}

// Scratchpad reads/writes round trip and charge cycles.
struct SpApp {
  EventLabel go;
  Word out = 0;
  std::uint64_t cost = 0;
};
struct TSp : ThreadState {
  void go(Ctx& ctx) {
    auto& app = ctx.machine().user<SpApp>();
    const std::uint64_t buf = ctx.sp_alloc(8 * 8);
    for (Word i = 0; i < 8; ++i) ctx.sp_write(buf + 8 * i, i * i);
    Word sum = 0;
    for (Word i = 0; i < 8; ++i) sum += ctx.sp_read(buf + 8 * i);
    app.out = sum;
    app.cost = ctx.charged();
    ctx.yield_terminate();
  }
};

TEST(Machine, ScratchpadRoundTripChargesPerAccess) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<SpApp>();
  app.go = m.program().event("TSp::go", &TSp::go);
  m.send_from_host(evw::make_new(0, app.go), {});
  m.run();
  EXPECT_EQ(app.out, 140u);  // 0+1+4+...+49
  EXPECT_GE(app.cost, 16u);  // 16 scratchpad accesses at 1 cycle each
}

// Lane FIFO: two messages to the same lane execute in arrival order and the
// second starts no earlier than the first finishes.
struct FifoApp {
  EventLabel tick;
  std::vector<Word> order;
};
struct TFifo : ThreadState {
  void tick(Ctx& ctx) {
    ctx.machine().user<FifoApp>().order.push_back(ctx.op(0));
    ctx.charge(50);
    ctx.yield_terminate();
  }
};

TEST(Machine, LaneExecutesInArrivalOrder) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<FifoApp>();
  app.tick = m.program().event("TFifo::tick", &TFifo::tick);
  for (Word i = 0; i < 5; ++i) m.send_from_host(evw::make_new(2, app.tick), {i});
  m.run();
  ASSERT_EQ(app.order.size(), 5u);
  for (Word i = 0; i < 5; ++i) EXPECT_EQ(app.order[i], i);
  // 5 events, 50+ cycles each, serialized on one lane.
  EXPECT_GE(m.now(), 250u);
}

TEST(Machine, StatsTrackThreadsAndMessages) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<FifoApp>();
  app.tick = m.program().event("TFifo::tick", &TFifo::tick);
  for (Word i = 0; i < 3; ++i) m.send_from_host(evw::make_new(0, app.tick), {i});
  m.run();
  EXPECT_EQ(m.stats().threads_created, 3u);
  EXPECT_EQ(m.stats().threads_destroyed, 3u);
  EXPECT_EQ(m.stats().events_executed, 3u);
  EXPECT_EQ(m.stats().messages_sent, 3u);
  EXPECT_GE(m.stats().max_live_threads, 1u);
}

// ---------------------------------------------------------------------------
// UD_SHARDS is parsed strictly: trailing garbage or out-of-range values used
// to be silently accepted ("4x" ran as 4 shards, "-1" wrapped), masking
// misconfigured CI matrices. Now they fail loudly at machine construction.
// ---------------------------------------------------------------------------

/// Pin an environment variable for the scope of a test (and restore it after).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

TEST(MachineEnv, ShardsTrailingGarbageThrows) {
  EnvGuard g("UD_SHARDS", "4x");
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, ShardsNegativeThrows) {
  EnvGuard g("UD_SHARDS", "-1");
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, ShardsOverflowThrows) {
  EnvGuard g("UD_SHARDS", "99999999999999999999999");
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, ShardsZeroKeepsConfiguredDefault) {
  EnvGuard g("UD_SHARDS", "0");
  MachineConfig cfg = MachineConfig::scaled(4);
  cfg.shards = 2;
  Machine m(cfg);
  EXPECT_EQ(m.shards(), 2u);
}

TEST(MachineEnv, ShardsValidValueAppliesAndClampsToNodes) {
  {
    EnvGuard g("UD_SHARDS", "2");
    Machine m(MachineConfig::scaled(4));
    EXPECT_EQ(m.shards(), 2u);
  }
  {
    EnvGuard g("UD_SHARDS", "64");  // more shards than nodes: clamp
    Machine m(MachineConfig::scaled(4));
    EXPECT_EQ(m.shards(), 4u);
  }
}

// UD_STEAL_PERIOD gets the same strict treatment — and it is parsed
// unconditionally, so a garbage value fails even with stealing off rather
// than lying dormant until someone flips UD_STEAL on.

TEST(MachineEnv, StealPeriodTrailingGarbageThrows) {
  EnvGuard s("UD_STEAL", "0");
  EnvGuard g("UD_STEAL_PERIOD", "16x");
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, StealPeriodNegativeThrows) {
  EnvGuard g("UD_STEAL_PERIOD", "-1");
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, StealPeriodOverflowThrows) {
  EnvGuard g("UD_STEAL_PERIOD", "99999999999999999999999");
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, StealPeriodAboveCapThrows) {
  EnvGuard g("UD_STEAL_PERIOD", "1048577");  // cap is 1 << 20
  EXPECT_THROW(Machine{MachineConfig::scaled(4)}, std::invalid_argument);
}

TEST(MachineEnv, StealPeriodZeroOrUnsetKeepsConfiguredDefault) {
  {
    EnvGuard g("UD_STEAL_PERIOD", "0");
    Machine m(MachineConfig::scaled(4));  // constructs fine, default period
  }
  {
    EnvGuard g("UD_STEAL_PERIOD", nullptr);
    Machine m(MachineConfig::scaled(4));
  }
}

}  // namespace
}  // namespace updown
