// Computation-location naming: networkID <-> (node, accelerator, lane)
// round trips, configuration validity, machine-shape properties.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace updown {
namespace {

class Topology : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                            std::uint32_t>> {};

TEST_P(Topology, NwidRoundTrips) {
  const auto [nodes, accels, lanes] = GetParam();
  Machine m(MachineConfig::scaled(nodes, accels, lanes));
  for (std::uint32_t node = 0; node < nodes; ++node)
    for (std::uint32_t accel = 0; accel < accels; ++accel)
      for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        const NetworkId id = m.nwid_of(node, accel, lane);
        EXPECT_EQ(m.node_of(id), node);
        EXPECT_EQ(m.accel_of(id), accel);
        EXPECT_EQ(m.lane_in_accel(id), lane % lanes);
      }
}

TEST_P(Topology, NwidsAreDenseAndUnique) {
  const auto [nodes, accels, lanes] = GetParam();
  Machine m(MachineConfig::scaled(nodes, accels, lanes));
  std::vector<bool> seen(m.config().total_lanes(), false);
  for (std::uint32_t node = 0; node < nodes; ++node)
    for (std::uint32_t accel = 0; accel < accels; ++accel)
      for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        const NetworkId id = m.nwid_of(node, accel, lane);
        ASSERT_LT(id, seen.size());
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
      }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Topology,
                         ::testing::Values(std::make_tuple(1u, 1u, 1u),
                                           std::make_tuple(1u, 4u, 8u),
                                           std::make_tuple(4u, 2u, 4u),
                                           std::make_tuple(8u, 4u, 8u)));

TEST(TopologyConfig, PaperNodeShape) {
  const MachineConfig cfg = MachineConfig::paper_node(2);
  EXPECT_EQ(cfg.lanes_per_node(), 2048u);  // 32 accelerators x 64 lanes
  EXPECT_EQ(cfg.total_lanes(), 4096u);
  EXPECT_TRUE(cfg.valid());
}

TEST(TopologyConfig, FullPaperMachineIs33MLanes) {
  const MachineConfig cfg = MachineConfig::paper_node(16384);
  EXPECT_EQ(cfg.total_lanes(), 33'554'432u);  // "33 million lanes"
  EXPECT_TRUE(cfg.valid());
}

TEST(TopologyConfig, RejectsNonPowerOfTwoNodes) {
  MachineConfig cfg = MachineConfig::scaled(3);
  EXPECT_FALSE(cfg.valid());
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
}

TEST(TopologyConfig, FirstLaneOfNode) {
  Machine m(MachineConfig::scaled(4));
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(m.first_lane_of_node(n), n * m.config().lanes_per_node());
    EXPECT_EQ(m.node_of(m.first_lane_of_node(n)), n);
  }
}

TEST(TopologyConfig, SendBeyondMachineThrows) {
  Machine m(MachineConfig::scaled(1));
  struct T : ThreadState {
    void e(Ctx&) {}
  };
  const EventLabel l = m.program().event("T::e", &T::e);
  if (m.checker()) {
    // Checked mode (ambient UD_CHECK=1): the bad route is reported and the
    // send dropped instead of throwing.
    m.send_from_host(evw::make_new(9999, l), {});
    m.run();
    EXPECT_GE(m.stats().check.bad_event_words, 1u);
  } else {
    EXPECT_THROW(m.send_from_host(evw::make_new(9999, l), {}), std::out_of_range);
  }
}

}  // namespace
}  // namespace updown
