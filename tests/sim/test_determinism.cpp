// The simulator is deterministic: identical inputs produce identical event
// orders, final ticks, and statistics — the property that makes the paper's
// simulated timing results reproducible at all.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/tc.hpp"
#include "graph/generators.hpp"

namespace updown {
namespace {

struct RunFingerprint {
  Tick done = 0;
  std::uint64_t events = 0, messages = 0, dram = 0, threads = 0;
  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_pr(std::uint32_t nodes) {
  Machine m(MachineConfig::scaled(nodes));
  Graph g = rmat(9, {}, 77);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r = pr::App::install(m, dg, sg, {.iterations = 2}).run();
  return {r.done_tick, m.stats().events_executed, m.stats().messages_sent,
          m.stats().dram_reads + m.stats().dram_writes, m.stats().threads_created};
}

TEST(Determinism, PageRankRunsAreBitIdentical) {
  const RunFingerprint a = run_pr(4), b = run_pr(4);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
}

TEST(Determinism, DifferentMachinesDiffer) {
  EXPECT_NE(run_pr(1).done, run_pr(4).done);
}

RunFingerprint run_tc() {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(8, {.symmetrize = true}, 5);
  DeviceGraph dg = upload_graph(m, g);
  tc::Result r = tc::App::install(m, dg, {}).run();
  return {r.done_tick, m.stats().events_executed, m.stats().messages_sent,
          m.stats().dram_reads, r.triangles};
}

TEST(Determinism, TriangleCountRunsAreBitIdentical) {
  EXPECT_EQ(run_tc(), run_tc());
}

// Golden fingerprints captured from the seed binary-heap event engine. The
// calendar-queue engine must reproduce every count and tick exactly — any
// drift here means the (tick, seq) total order changed, which silently
// invalidates all simulated timing results. Update only with a side-by-side
// run against the previous engine showing both produce the new numbers.
TEST(Determinism, PageRankGoldenCounts) {
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(9, {}, 77);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r = pr::App::install(m, dg, sg, {.iterations = 2}).run();
  const MachineStats& s = m.stats();
  EXPECT_EQ(r.done_tick, 38512u);
  EXPECT_EQ(s.events_executed, 27893u);
  EXPECT_EQ(s.messages_sent, 27893u);
  EXPECT_EQ(s.dram_reads, 7012u);
  EXPECT_EQ(s.dram_writes, 3010u);
  EXPECT_EQ(s.threads_created, 14657u);
  EXPECT_EQ(s.charged_cycles, 187382u);
  EXPECT_EQ(s.message_bytes, 991968u);
}

TEST(Determinism, BfsGoldenCounts) {
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(9, {.symmetrize = true}, 13);
  DeviceGraph dg = upload_graph(m, g);
  bfs::Result r = bfs::App::install(m, dg, {.root = 1}).run();
  const MachineStats& s = m.stats();
  EXPECT_EQ(r.done_tick, 33029u);
  EXPECT_EQ(s.events_executed, 16410u);
  EXPECT_EQ(s.messages_sent, 16410u);
  EXPECT_EQ(s.dram_reads, 2098u);
  EXPECT_EQ(s.dram_writes, 918u);
  EXPECT_EQ(s.threads_created, 11453u);
  EXPECT_EQ(s.charged_cycles, 124138u);
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_EQ(r.traversed_edges, 9514u);
}

}  // namespace
}  // namespace updown
