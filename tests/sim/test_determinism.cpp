// The simulator is deterministic: identical inputs produce identical event
// orders, final ticks, and statistics — the property that makes the paper's
// simulated timing results reproducible at all.
#include <gtest/gtest.h>

#include "apps/pagerank.hpp"
#include "apps/tc.hpp"
#include "graph/generators.hpp"

namespace updown {
namespace {

struct RunFingerprint {
  Tick done = 0;
  std::uint64_t events = 0, messages = 0, dram = 0, threads = 0;
  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_pr(std::uint32_t nodes) {
  Machine m(MachineConfig::scaled(nodes));
  Graph g = rmat(9, {}, 77);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r = pr::App::install(m, dg, sg, {.iterations = 2}).run();
  return {r.done_tick, m.stats().events_executed, m.stats().messages_sent,
          m.stats().dram_reads + m.stats().dram_writes, m.stats().threads_created};
}

TEST(Determinism, PageRankRunsAreBitIdentical) {
  const RunFingerprint a = run_pr(4), b = run_pr(4);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
}

TEST(Determinism, DifferentMachinesDiffer) {
  EXPECT_NE(run_pr(1).done, run_pr(4).done);
}

RunFingerprint run_tc() {
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(8, {.symmetrize = true}, 5);
  DeviceGraph dg = upload_graph(m, g);
  tc::Result r = tc::App::install(m, dg, {}).run();
  return {r.done_tick, m.stats().events_executed, m.stats().messages_sent,
          m.stats().dram_reads, r.triangles};
}

TEST(Determinism, TriangleCountRunsAreBitIdentical) {
  EXPECT_EQ(run_tc(), run_tc());
}

}  // namespace
}  // namespace updown
