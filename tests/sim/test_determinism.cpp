// The simulator is deterministic: identical inputs produce identical event
// orders, final ticks, and statistics — the property that makes the paper's
// simulated timing results reproducible at all.
//
// With the host-parallel engine this hardens into a stronger claim, asserted
// by the matrix below: the (tick, sending entity, sender seq) total order
// makes every fingerprint bit-identical for ANY shard count, with and
// without the udcheck subsystem (which, when sharded, defers its analysis to
// a deterministic window-boundary replay on shard 0), including the
// drain/quiescence path each KVMSR round crosses.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/tc.hpp"
#include "graph/generators.hpp"
#include "serve/query_engine.hpp"

namespace updown {
namespace {

/// Pin an environment variable for the scope of a test (and restore it
/// after), so the shard matrix is immune to an ambient UD_SHARDS / UD_CHECK —
/// CI runs the whole suite under UD_SHARDS=4.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

struct RunFingerprint {
  Tick done = 0;
  std::uint64_t events = 0, messages = 0, message_bytes = 0, cross_node = 0;
  std::uint64_t dram_reads = 0, dram_writes = 0, dram_bytes = 0, remote_dram = 0;
  std::uint64_t threads_created = 0, threads_destroyed = 0, charged = 0;
  std::uint64_t result = 0;  ///< an application-level answer (ranks, triangles...)
  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint fingerprint(Machine& m, Tick done, std::uint64_t result) {
  // Deliberately excludes the engine gauges (max_queue_depth,
  // max_live_threads): those describe per-shard queues, not the simulation.
  EXPECT_TRUE(m.idle());  // quiescent drain: nothing left in queues/mailboxes
  const MachineStats& s = m.stats();
  return {done,
          s.events_executed,
          s.messages_sent,
          s.message_bytes,
          s.cross_node_messages,
          s.dram_reads,
          s.dram_writes,
          s.dram_bytes,
          s.remote_dram_accesses,
          s.threads_created,
          s.threads_destroyed,
          s.charged_cycles,
          result};
}

RunFingerprint run_pr(std::uint32_t nodes, std::uint32_t shards = 1, bool check = false,
                      std::uint32_t coalesce = 1, bool steal = false, bool pin = false) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_CHECK", check ? "1" : "0");
  EnvGuard g3("UD_COALESCE", std::to_string(coalesce).c_str());
  EnvGuard g4("UD_STEAL", steal ? "1" : "0");
  EnvGuard g5("UD_PIN", pin ? "1" : "0");
  // An aggressive rebalance cadence so short runs actually cross the steal
  // barriers and migrate queues, not just check the counters.
  EnvGuard g6("UD_STEAL_PERIOD", steal ? "2" : nullptr);
  Machine m(MachineConfig::scaled(nodes));
  Graph g = rmat(9, {}, 77);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r = pr::App::install(m, dg, sg, {.iterations = 2}).run();
  if (shards > 1) {
    // Checked runs no longer force shards=1: the engine really runs sharded
    // (windows advance) and udcheck replays at window boundaries on shard 0.
    EXPECT_GT(m.engine_stats().windows, 0u);
    // Stealing must actually happen for the steal rows to test anything: at
    // period 2 this workload rebalances dozens of times per run.
    if (steal) {
      EXPECT_GT(m.engine_stats().rebalances, 0u);
    }
  }
  if (check) {
    EXPECT_TRUE(m.stats().check.enabled);
    EXPECT_EQ(m.stats().check.errors(), 0u);
  }
  return fingerprint(m, r.done_tick, r.edge_updates);
}

RunFingerprint run_bfs(std::uint32_t nodes, std::uint32_t shards = 1, bool check = false,
                       std::uint32_t coalesce = 1, bool steal = false, bool pin = false) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_CHECK", check ? "1" : "0");
  EnvGuard g3("UD_COALESCE", std::to_string(coalesce).c_str());
  EnvGuard g4("UD_STEAL", steal ? "1" : "0");
  EnvGuard g5("UD_PIN", pin ? "1" : "0");
  EnvGuard g6("UD_STEAL_PERIOD", steal ? "2" : nullptr);
  Machine m(MachineConfig::scaled(nodes));
  Graph g = rmat(9, {.symmetrize = true}, 13);
  DeviceGraph dg = upload_graph(m, g);
  bfs::Result r = bfs::App::install(m, dg, {.root = 1}).run();
  // Each BFS round is one KVMSR invocation: rounds cross the drain path, so
  // a multi-round run exercises quiescence detection under sharding.
  EXPECT_GE(r.rounds, 2u);
  if (shards > 1 && steal) {
    EXPECT_GT(m.engine_stats().rebalances, 0u);
  }
  if (check) {
    EXPECT_TRUE(m.stats().check.enabled);
    EXPECT_EQ(m.stats().check.errors(), 0u);
  }
  return fingerprint(m, r.done_tick, r.traversed_edges);
}

RunFingerprint run_tc(std::uint32_t shards = 1, std::uint32_t coalesce = 1) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_CHECK", "0");
  EnvGuard g3("UD_COALESCE", std::to_string(coalesce).c_str());
  Machine m(MachineConfig::scaled(2));
  Graph g = rmat(8, {.symmetrize = true}, 5);
  DeviceGraph dg = upload_graph(m, g);
  tc::Result r = tc::App::install(m, dg, {}).run();
  return fingerprint(m, r.done_tick, r.triangles);
}

TEST(Determinism, PageRankRunsAreBitIdentical) {
  const RunFingerprint a = run_pr(4), b = run_pr(4);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
}

TEST(Determinism, DifferentMachinesDiffer) {
  EXPECT_NE(run_pr(1).done, run_pr(4).done);
}

TEST(Determinism, TriangleCountRunsAreBitIdentical) {
  EXPECT_EQ(run_tc(), run_tc());
}

// ---------------------------------------------------------------------------
// The shard matrix: every fingerprint bit-identical across shards 1/2/4/8,
// with and without UD_CHECK=1. An 8-node machine so all four shard counts
// are distinct partitions (shards are clamped to the node count).
// ---------------------------------------------------------------------------

TEST(DeterminismMatrix, PageRankIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_pr(8, 1);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_pr(8, shards), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, PageRankIdenticalUnderCheck) {
  const RunFingerprint serial = run_pr(8, 1);
  // At shards=1 the checker runs inline with the serial engine; at any
  // higher count its hooks only append to per-shard logs and the analysis
  // replays deterministically on shard 0 at window boundaries. Either way a
  // checked run must match the serial fingerprint exactly — checking never
  // perturbs the simulation — and run_pr also asserts the check came back
  // clean at every shard count.
  for (std::uint32_t shards : {1u, 2u, 4u})
    EXPECT_EQ(run_pr(8, shards, /*check=*/true), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, BfsIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_bfs(8, 1);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_bfs(8, shards), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, BfsIdenticalUnderCheck) {
  const RunFingerprint serial = run_bfs(8, 1);
  for (std::uint32_t shards : {1u, 2u, 4u})
    EXPECT_EQ(run_bfs(8, shards, /*check=*/true), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, TriangleCountIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_tc(1);
  EXPECT_EQ(run_tc(2), serial);  // 2-node machine: 2 is the max useful count
}

// ---------------------------------------------------------------------------
// The same matrix with shuffle coalescing on (UD_COALESCE=16): packing,
// map-side combining, bulk routing across shard mailboxes, and the poll-time
// flush must all be bit-identical for every shard count — and must survive
// the checker, whose inline-delivery origin stack is exercised only here.
// ---------------------------------------------------------------------------

TEST(DeterminismMatrix, CoalescedPageRankIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_pr(8, 1, false, 16);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_pr(8, shards, false, 16), serial) << "shards=" << shards;
  // Sanity: coalescing actually changed the simulation (fewer messages).
  EXPECT_LT(serial.messages, run_pr(8, 1, false, 1).messages);
}

TEST(DeterminismMatrix, CoalescedPageRankIdenticalUnderCheck) {
  const RunFingerprint serial = run_pr(8, 1, false, 16);
  for (std::uint32_t shards : {1u, 2u, 4u})
    EXPECT_EQ(run_pr(8, shards, /*check=*/true, 16), serial)
        << "shards=" << shards;
}

TEST(DeterminismMatrix, PageRankIdenticalUnderCheckAndStealing) {
  // The full stack at once: deferred replay logs migrate with their nodes
  // when UD_STEAL remaps the partition, and the (tick, ent, seq) merge key
  // keeps the replay order — and therefore the check verdict — identical.
  const RunFingerprint serial = run_pr(8, 1);
  for (std::uint32_t shards : {2u, 4u})
    EXPECT_EQ(run_pr(8, shards, /*check=*/true, 1, /*steal=*/true), serial)
        << "shards=" << shards;
}

TEST(DeterminismMatrix, CoalescedBfsIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_bfs(8, 1, false, 16);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_bfs(8, shards, false, 16), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, CoalescedTriangleCountIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_tc(1, 16);
  EXPECT_EQ(run_tc(2, 16), serial);
}

// ---------------------------------------------------------------------------
// The same matrix with the scale knobs on. UD_STEAL remaps the node->shard
// partition at window boundaries and migrates queued events across shards;
// UD_PIN pins each shard thread to a host CPU. Both must be pure host-side
// optimizations: every fingerprint stays bit-identical to the serial run
// (run_pr/run_bfs force UD_STEAL_PERIOD=2 so these short runs rebalance
// dozens of times, asserted via engine_stats().rebalances > 0).
// ---------------------------------------------------------------------------

TEST(DeterminismMatrix, PageRankIdenticalUnderStealing) {
  const RunFingerprint serial = run_pr(8, 1);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_pr(8, shards, false, 1, /*steal=*/true), serial)
        << "shards=" << shards;
}

TEST(DeterminismMatrix, PageRankIdenticalUnderPinning) {
  const RunFingerprint serial = run_pr(8, 1);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_pr(8, shards, false, 1, false, /*pin=*/true), serial)
        << "shards=" << shards;
}

TEST(DeterminismMatrix, PageRankIdenticalUnderStealingAndPinning) {
  const RunFingerprint serial = run_pr(8, 1);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_pr(8, shards, false, 1, /*steal=*/true, /*pin=*/true), serial)
        << "shards=" << shards;
}

TEST(DeterminismMatrix, BfsIdenticalUnderStealingAndPinning) {
  const RunFingerprint serial = run_bfs(8, 1);
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(run_bfs(8, shards, false, 1, /*steal=*/true), serial)
        << "shards=" << shards;
    EXPECT_EQ(run_bfs(8, shards, false, 1, /*steal=*/true, /*pin=*/true), serial)
        << "shards=" << shards;
  }
}

TEST(DeterminismMatrix, CoalescedPageRankIdenticalUnderStealing) {
  // Bulk (coalesced-packet) payloads ride the migration path by value; they
  // must re-pool on the destination shard without perturbing anything.
  const RunFingerprint serial = run_pr(8, 1, false, 16);
  for (std::uint32_t shards : {2u, 4u, 8u})
    EXPECT_EQ(run_pr(8, shards, false, 16, /*steal=*/true), serial)
        << "shards=" << shards;
}

// ---------------------------------------------------------------------------
// Concurrent serve-layer jobs: two tenants (a partitioned PageRank and a
// partitioned BFS) resident at once, launched together and driven to global
// drain. The whole-machine fingerprint AND the per-job quantities folded into
// `result` (each tenant's completion tick, shuffle volume, and BFS rounds)
// must be bit-identical across shard counts, with and without UD_CHECK, and
// with stealing on — multi-tenancy adds no nondeterminism.
// ---------------------------------------------------------------------------

RunFingerprint run_concurrent(std::uint32_t shards, bool check = false, bool steal = false) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_CHECK", check ? "1" : "0");
  EnvGuard g3("UD_COALESCE", "1");
  EnvGuard g4("UD_STEAL", steal ? "1" : "0");
  EnvGuard g5("UD_STEAL_PERIOD", steal ? "2" : nullptr);
  Machine m(MachineConfig::scaled(4));
  auto& eng = serve::QueryEngine::install(m);
  const auto lanes_per_node =
      static_cast<std::uint32_t>(m.config().total_lanes() / m.config().nodes);

  Graph ga = rmat(8, {}, 41);
  const GraphPlacement pa{0, 2, 32 * 1024};
  DeviceGraph dga = upload_graph(m, ga, pa);
  serve::QuerySpec sa;
  sa.kind = serve::QueryKind::kPageRank;
  sa.graph = &dga;
  sa.lanes = {0, 2 * lanes_per_node};
  sa.values = pa;
  sa.iterations = 2;
  sa.name = "det.pr";

  Graph gb = rmat(8, {.symmetrize = true}, 42);
  const GraphPlacement pb{2, 2, 32 * 1024};
  DeviceGraph dgb = upload_graph(m, gb, pb);
  serve::QuerySpec sb;
  sb.kind = serve::QueryKind::kBfs;
  sb.graph = &dgb;
  sb.lanes = {2 * lanes_per_node, 2 * lanes_per_node};
  sb.values = pb;
  sb.root = 1;
  sb.name = "det.bfs";

  const serve::QueryId qa = eng.add_query(sa);
  const serve::QueryId qb = eng.add_query(sb);
  eng.launch(qa);
  eng.launch(qb);
  m.run();
  EXPECT_TRUE(eng.done(qa) && eng.done(qb));
  if (check) {
    EXPECT_TRUE(m.stats().check.enabled);
    EXPECT_EQ(m.stats().check.errors(), 0u);
  }
  const serve::QueryResult ra = eng.collect(qa);
  const serve::QueryResult rb = eng.collect(qb);
  // Fold the per-job stats into the fingerprint so a run that redistributes
  // work between tenants (same totals, different split) still fails.
  std::uint64_t per_job = ra.done_tick;
  per_job = per_job * 1000003 + ra.emitted;
  per_job = per_job * 1000003 + rb.done_tick;
  per_job = per_job * 1000003 + rb.emitted;
  per_job = per_job * 1000003 + rb.rounds;
  return fingerprint(m, std::max(ra.done_tick, rb.done_tick), per_job);
}

TEST(DeterminismMatrix, ConcurrentJobsIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_concurrent(1);
  EXPECT_GT(serial.events, 0u);
  for (std::uint32_t shards : {2u, 4u})
    EXPECT_EQ(run_concurrent(shards), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, ConcurrentJobsIdenticalUnderCheck) {
  const RunFingerprint serial = run_concurrent(1);
  for (std::uint32_t shards : {1u, 2u, 4u})
    EXPECT_EQ(run_concurrent(shards, /*check=*/true), serial) << "shards=" << shards;
}

TEST(DeterminismMatrix, ConcurrentJobsIdenticalUnderStealing) {
  const RunFingerprint serial = run_concurrent(1);
  for (std::uint32_t shards : {2u, 4u}) {
    EXPECT_EQ(run_concurrent(shards, false, /*steal=*/true), serial)
        << "shards=" << shards;
    EXPECT_EQ(run_concurrent(shards, /*check=*/true, /*steal=*/true), serial)
        << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Golden fingerprints. The host-parallel engine re-keyed the event order to
// (tick, sending entity, sender seq) — sender-local, no global counter — and
// split the bisection token bucket per source node (a per-node share of
// bisection bandwidth, required for lock-free sharded routing). Both change
// tie-breaks and cross-node queuing, so these goldens were regenerated from
// the serial engine at that point; the sharded engine must reproduce them
// exactly for every shard count (see the matrix above). Update only with a
// side-by-side run against the previous engine showing both produce the new
// numbers.
// ---------------------------------------------------------------------------

TEST(Determinism, PageRankGoldenCounts) {
  EnvGuard g1("UD_SHARDS", nullptr);
  EnvGuard g2("UD_CHECK", "0");
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(9, {}, 77);
  SplitGraph sg = split_vertices(g, 32);
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Result r = pr::App::install(m, dg, sg, {.iterations = 2}).run();
  const MachineStats& s = m.stats();
  EXPECT_EQ(r.done_tick, 37626u);
  EXPECT_EQ(s.events_executed, 27893u);
  EXPECT_EQ(s.messages_sent, 27893u);
  EXPECT_EQ(s.dram_reads, 7012u);
  EXPECT_EQ(s.dram_writes, 3010u);
  EXPECT_EQ(s.threads_created, 14657u);
  EXPECT_EQ(s.charged_cycles, 187382u);
  EXPECT_EQ(s.message_bytes, 991968u);
}

TEST(Determinism, BfsGoldenCounts) {
  EnvGuard g1("UD_SHARDS", nullptr);
  EnvGuard g2("UD_CHECK", "0");
  Machine m(MachineConfig::scaled(4));
  Graph g = rmat(9, {.symmetrize = true}, 13);
  DeviceGraph dg = upload_graph(m, g);
  bfs::Result r = bfs::App::install(m, dg, {.root = 1}).run();
  const MachineStats& s = m.stats();
  // done_tick moved 30025 -> 30026 when the network token buckets switched
  // from double accumulators to 1/256-cycle integer fixed-point: the final
  // ceil() now rounds one fractional bucket boundary up instead of landing
  // exactly on it. Every count below is unchanged — only arrival rounding
  // moved, by at most one cycle.
  EXPECT_EQ(r.done_tick, 30026u);
  EXPECT_EQ(s.events_executed, 16153u);
  EXPECT_EQ(s.messages_sent, 16153u);
  EXPECT_EQ(s.dram_reads, 2098u);
  EXPECT_EQ(s.dram_writes, 918u);
  EXPECT_EQ(s.threads_created, 11325u);
  EXPECT_EQ(s.charged_cycles, 122984u);
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_EQ(r.traversed_edges, 9514u);
}

}  // namespace
}  // namespace updown
