// Unit tests for the statistics structs: the coalescing-factor empty case,
// the traffic-summary underflow clamp, MachineStats::merge counter-vs-gauge
// semantics, and the LaneActivity aggregate edges.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace updown {
namespace {

std::string read_all(std::FILE* f) {
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

TEST(ShuffleStatsTest, CoalescingFactorEmptyShuffleIsUnity) {
  // A job that emitted nothing sent no messages: it achieved exactly the
  // uncoalesced 1-tuple-per-message ratio, not a pathological 0.0.
  ShuffleStats s;
  EXPECT_DOUBLE_EQ(s.coalescing_factor(), 1.0);
}

TEST(ShuffleStatsTest, CoalescingFactorCountsDeliveredTuplesPerMessage) {
  ShuffleStats s;
  s.tuples_emitted = 100;
  s.tuples_combined = 20;  // merged map-side, never crossed the wire
  s.messages = 10;
  EXPECT_EQ(s.tuples_delivered(), 80u);
  EXPECT_DOUBLE_EQ(s.coalescing_factor(), 8.0);

  s.messages = 80;  // uncoalesced: one message per delivered tuple
  EXPECT_DOUBLE_EQ(s.coalescing_factor(), 1.0);
}

TEST(MachineStatsTest, TrafficSummaryPrintsShuffleSplit) {
  MachineStats s;
  s.messages_sent = 100;
  s.message_bytes = 4000;
  s.cross_node_messages = 60;
  s.shuffle.messages = 30;
  s.shuffle.bytes = 1500;
  s.shuffle.tuples_emitted = 90;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  s.print_traffic_summary(f);
  const std::string out = read_all(f);
  std::fclose(f);
  EXPECT_NE(out.find("total"), std::string::npos);
  EXPECT_NE(out.find("100 msgs"), std::string::npos);
  EXPECT_NE(out.find("30 msgs"), std::string::npos);
  EXPECT_NE(out.find("70 msgs"), std::string::npos);  // 100 - 30 other traffic
  EXPECT_NE(out.find("2500 bytes"), std::string::npos);  // 4000 - 1500
}

// Regression: shuffle counters larger than the machine totals (an unmerged
// per-shard delta block — emit-side vs route-side accounting land on
// different shards) used to underflow the unsigned subtraction and print
// absurd "other traffic" rows. Debug builds now assert on the misuse;
// release builds clamp to zero.
TEST(MachineStatsTest, TrafficSummaryUnmergedDeltaUnderflow) {
  MachineStats s;
  s.messages_sent = 2;
  s.message_bytes = 100;
  s.shuffle.messages = 5;
  s.shuffle.bytes = 500;
#ifdef NDEBUG
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  s.print_traffic_summary(f);
  const std::string out = read_all(f);
  std::fclose(f);
  EXPECT_NE(out.find("map/control/replies"), std::string::npos);
  // Clamped, not wrapped: no 18-quintillion message counts.
  EXPECT_EQ(out.find("18446744073"), std::string::npos) << out;
  EXPECT_NE(out.find(" 0 msgs"), std::string::npos) << out;
#else
  EXPECT_DEATH(s.print_traffic_summary(stderr),
               "shuffle counters exceed machine totals");
#endif
}

TEST(MachineStatsTest, MergeAddsCountersAndMaxesGauges) {
  MachineStats total, a, b;
  a.events_executed = 10;
  a.charged_cycles = 100;
  a.messages_sent = 5;
  a.message_bytes = 200;
  a.cross_node_messages = 2;
  a.dram_reads = 3;
  a.dram_writes = 1;
  a.dram_bytes = 64;
  a.remote_dram_accesses = 1;
  a.threads_created = 4;
  a.threads_destroyed = 4;
  a.max_live_threads = 7;
  a.max_queue_depth = 50;
  a.shuffle.tuples_emitted = 11;

  b.events_executed = 1;
  b.max_live_threads = 3;   // below a's peak: must not add
  b.max_queue_depth = 80;   // above a's peak: must win
  b.shuffle.tuples_emitted = 9;

  total.merge(a);
  total.merge(b);
  EXPECT_EQ(total.events_executed, 11u);
  EXPECT_EQ(total.charged_cycles, 100u);
  EXPECT_EQ(total.messages_sent, 5u);
  EXPECT_EQ(total.message_bytes, 200u);
  EXPECT_EQ(total.cross_node_messages, 2u);
  EXPECT_EQ(total.dram_reads, 3u);
  EXPECT_EQ(total.dram_writes, 1u);
  EXPECT_EQ(total.dram_bytes, 64u);
  EXPECT_EQ(total.remote_dram_accesses, 1u);
  EXPECT_EQ(total.threads_created, 4u);
  EXPECT_EQ(total.threads_destroyed, 4u);
  // Gauges combine by max (peak any single shard observed), not by sum.
  EXPECT_EQ(total.max_live_threads, 7u);
  EXPECT_EQ(total.max_queue_depth, 80u);
  EXPECT_EQ(total.shuffle.tuples_emitted, 20u);
}

TEST(MachineStatsTest, MergeLeavesCheckSummaryAlone) {
  // The checker is serial-only and writes into the machine total directly;
  // folding shard deltas must not zero or double its summary.
  MachineStats total;
  total.check.enabled = true;
  total.check.data_races = 3;
  MachineStats delta;
  delta.events_executed = 1;
  total.merge(delta);
  EXPECT_TRUE(total.check.enabled);
  EXPECT_EQ(total.check.data_races, 3u);
}

TEST(LaneActivityTest, EmptyLanesYieldZeroes) {
  const LaneActivity a = LaneActivity::from({});
  EXPECT_DOUBLE_EQ(a.mean_busy, 0.0);
  EXPECT_EQ(a.max_busy, 0u);
  EXPECT_EQ(a.min_busy, 0u);
  EXPECT_DOUBLE_EQ(a.imbalance(), 0.0);  // no division by the zero mean
}

TEST(LaneActivityTest, AllIdleLanesYieldZeroImbalance) {
  const std::vector<LaneStats> lanes(4);
  const LaneActivity a = LaneActivity::from(lanes);
  EXPECT_DOUBLE_EQ(a.mean_busy, 0.0);
  EXPECT_DOUBLE_EQ(a.imbalance(), 0.0);
}

TEST(LaneActivityTest, AggregatesMeanMaxMin) {
  std::vector<LaneStats> lanes(4);
  lanes[0].busy_cycles = 10;
  lanes[1].busy_cycles = 20;
  lanes[2].busy_cycles = 30;
  lanes[3].busy_cycles = 40;
  const LaneActivity a = LaneActivity::from(lanes);
  EXPECT_DOUBLE_EQ(a.mean_busy, 25.0);
  EXPECT_EQ(a.max_busy, 40u);
  EXPECT_EQ(a.min_busy, 10u);
  EXPECT_DOUBLE_EQ(a.imbalance(), 40.0 / 25.0);
}

}  // namespace
}  // namespace updown
