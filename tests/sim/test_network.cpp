#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace updown {
namespace {

MachineConfig cfg64() { return MachineConfig::scaled(64); }

TEST(Network, SelfSendIsCheapest) {
  auto cfg = cfg64();
  NetworkModel net(cfg);
  EXPECT_EQ(net.arrival(100, 5, 5, 64), 100 + cfg.lat_same_lane);
}

TEST(Network, IntraAccelBeatsIntraNode) {
  auto cfg = cfg64();
  NetworkModel net(cfg);
  // lanes 0 and 1 share accelerator 0; lane 0 and lanes_per_accel are in
  // different accelerators of node 0.
  const Tick same_accel = net.arrival(0, 0, 1, 64);
  const Tick same_node = net.arrival(0, 0, cfg.lanes_per_accel, 64);
  EXPECT_LT(same_accel, same_node);
  EXPECT_EQ(same_accel, cfg.lat_intra_accel);
  EXPECT_EQ(same_node, cfg.lat_intra_node);
}

TEST(Network, DiameterIsThreeHops) {
  auto cfg = cfg64();
  NetworkModel net(cfg);
  for (std::uint32_t a = 0; a < cfg.nodes; ++a)
    for (std::uint32_t b = 0; b < cfg.nodes; ++b) {
      const unsigned h = net.hops(a, b);
      if (a == b)
        EXPECT_EQ(h, 0u);
      else {
        EXPECT_GE(h, 1u);
        EXPECT_LE(h, 3u);
      }
    }
}

TEST(Network, HopDistanceIsSymmetric) {
  auto cfg = cfg64();
  NetworkModel net(cfg);
  for (std::uint32_t a = 0; a < cfg.nodes; a += 3)
    for (std::uint32_t b = 0; b < cfg.nodes; b += 5)
      EXPECT_EQ(net.hops(a, b), net.hops(b, a));
}

TEST(Network, CrossNodeLatencyNearHalfMicrosecond) {
  // The paper quotes 0.5us low latency; at 2 GHz that is 1000 cycles. Check
  // the worst-case (3-hop) unloaded latency is in that ballpark.
  auto cfg = cfg64();
  NetworkModel net(cfg);
  const std::uint32_t lpn = cfg.lanes_per_node();
  const Tick t = net.arrival(0, 0, (cfg.nodes - 1) * lpn, 64);
  EXPECT_GE(t, 900u);
  EXPECT_LE(t, 1100u);
}

TEST(Network, InjectionBandwidthQueuesBackToBackMessages) {
  auto cfg = cfg64();
  NetworkModel net(cfg);
  const std::uint32_t lpn = cfg.lanes_per_node();
  const Tick first = net.arrival(0, 0, 10 * lpn, 1 << 20);  // 1 MiB flood
  const Tick second = net.arrival(0, 1, 10 * lpn, 64);
  // The second message queues behind the flood at the injection port.
  EXPECT_GT(second, first - cfg.lat_hop * 3);
  EXPECT_GE(second, static_cast<Tick>((1 << 20) / cfg.bw_inject_node));
}

TEST(Network, LocalRemoteLatencyRatioMatchesPaper) {
  // Paper Section 3.2: data-access localization matters at ~7:1 latency.
  auto cfg = cfg64();
  NetworkModel net(cfg);
  const Tick local = net.arrival(0, 0, 1, 64);  // same accelerator
  const Tick remote = net.arrival(0, 0, (cfg.nodes - 1) * cfg.lanes_per_node(), 64);
  EXPECT_GE(remote / (cfg.lat_intra_node + local), 5u);
}

TEST(Network, ResetClearsBandwidthState) {
  auto cfg = cfg64();
  NetworkModel net(cfg);
  const std::uint32_t lpn = cfg.lanes_per_node();
  const Tick clean = net.arrival(0, 0, 10 * lpn, 64);
  net.arrival(0, 0, 10 * lpn, 1 << 22);
  net.reset();
  EXPECT_EQ(net.arrival(0, 0, 10 * lpn, 64), clean);
}

TEST(Network, SingleNodeMachineHasNoCrossTraffic) {
  MachineConfig cfg = MachineConfig::scaled(1);
  NetworkModel net(cfg);
  EXPECT_EQ(net.hops(0, 0), 0u);
  EXPECT_FALSE(net.crosses_bisection(0, 0));
}

}  // namespace
}  // namespace updown
