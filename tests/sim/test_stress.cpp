// Stress tests: the machine's resource-exhaustion paths fail loudly and
// deterministically — scratchpad bump-allocator overflow, lane thread-context
// table overflow, and DRAMmalloc descriptor-table growth — in the serial
// engine and through the sharded engine's exception protocol (a throwing
// shard stops all shards at the next window boundary and the error surfaces
// from Machine::run()).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown {
namespace {

/// Pin UD_SHARDS for the scope of a test (CI runs the suite under
/// UD_SHARDS=4; these tests need specific values).
class ShardsGuard {
 public:
  explicit ShardsGuard(const char* value) {
    const char* old = std::getenv("UD_SHARDS");
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv("UD_SHARDS", value, 1);
    else ::unsetenv("UD_SHARDS");
  }
  ~ShardsGuard() {
    if (had_) ::setenv("UD_SHARDS", old_.c_str(), 1);
    else ::unsetenv("UD_SHARDS");
  }

 private:
  std::string old_;
  bool had_ = false;
};

// ---------------------------------------------------------------------------
// Scratchpad (spMalloc) exhaustion.
// ---------------------------------------------------------------------------

TEST(Stress, ScratchpadBumpAllocatorExhausts) {
  ShardsGuard g("1");
  Machine m(MachineConfig::scaled(1));
  Lane lane = m.lane(0);
  const std::uint64_t cap = lane.scratchpad_bytes();
  const std::uint64_t mark = lane.sp_mark();
  // Fill in 1 KiB steps, then one more byte must throw the exact message
  // applications grep for in failure logs.
  for (std::uint64_t used = mark; used + 1024 <= cap; used += 1024) lane.sp_alloc(1024);
  try {
    lane.sp_alloc(1024);
    FAIL() << "expected scratchpad exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "spMalloc: lane scratchpad exhausted (lane 0)");
  }
  // sp_release unwinds the bump pointer: the lane is reusable afterwards.
  lane.sp_release(mark);
  EXPECT_NO_THROW(lane.sp_alloc(1024));
}

struct SpHogApp {
  EventLabel hog = 0;
};

struct TSpHog : ThreadState {
  void hog(Ctx& ctx) {
    ctx.sp_alloc(ctx.machine().config().scratchpad_bytes + 1);
    ctx.yield_terminate();
  }
};

TEST(Stress, ScratchpadExhaustionSurfacesFromShardedRun) {
  ShardsGuard g("2");
  Machine m(MachineConfig::scaled(2));
  ASSERT_EQ(m.shards(), 2u);
  auto& app = m.emplace_user<SpHogApp>();
  app.hog = m.program().event("TSpHog::hog", &TSpHog::hog);
  // Target a lane on node 1: the fault happens on shard 1 and must be
  // rethrown by run() on the calling thread via the abort protocol.
  m.send_from_host(evw::make_new(m.first_lane_of_node(1), app.hog), {});
  try {
    m.run();
    FAIL() << "expected scratchpad exhaustion out of run()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "spMalloc: lane scratchpad exhausted (lane 32)");
  }
}

// ---------------------------------------------------------------------------
// Thread-context table exhaustion.
// ---------------------------------------------------------------------------

struct ParkApp {
  EventLabel park = 0;
  int started = 0;
};

struct TPark : ThreadState {
  // Starts a thread and parks it (no yield_terminate): the context stays
  // allocated for the life of the run.
  void park(Ctx& ctx) { ctx.machine().user<ParkApp>().started++; }
};

TEST(Stress, LaneThreadContextsExhaust) {
  ShardsGuard g("1");
  MachineConfig cfg = MachineConfig::scaled(1);
  cfg.max_threads_per_lane = 4;
  Machine m(cfg);
  auto& app = m.emplace_user<ParkApp>();
  app.park = m.program().event("TPark::park", &TPark::park);
  // Five new-thread events on one lane with a four-context table: the fifth
  // allocation must fail with the canonical message.
  for (int i = 0; i < 5; ++i) m.send_from_host(evw::make_new(0, app.park), {});
  try {
    m.run();
    FAIL() << "expected thread-context exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane out of thread contexts");
  }
  EXPECT_EQ(app.started, 4);
}

TEST(Stress, RecycledContextsNeverExhaust) {
  ShardsGuard g("1");
  MachineConfig cfg = MachineConfig::scaled(1);
  cfg.max_threads_per_lane = 4;
  Machine m(cfg);
  Lane lane = m.lane(0);
  // allocate/deallocate cycles far beyond the table size: recycling through
  // free_tids_ and the per-class state cache must never hit the limit.
  for (int round = 0; round < 1000; ++round) {
    ThreadId a = lane.allocate_thread(std::make_unique<ThreadState>());
    ThreadId b = lane.allocate_thread(std::make_unique<ThreadState>());
    lane.deallocate_thread(a);
    lane.deallocate_thread(b);
  }
  EXPECT_EQ(lane.live_threads(), 0u);
}

// ---------------------------------------------------------------------------
// DRAMmalloc descriptor-table growth.
// ---------------------------------------------------------------------------

TEST(Stress, DescriptorTableGrowsAndTranslates) {
  ShardsGuard g("1");
  Machine m(MachineConfig::scaled(2));
  GlobalMemory& mem = m.memory();
  const std::size_t base_count = mem.descriptor_count();
  // Several hundred live regions — two orders of magnitude beyond the
  // "typical programs need 2-4 descriptors" sizing assumption.
  constexpr int kRegions = 400;
  std::vector<Addr> regions;
  for (int i = 0; i < kRegions; ++i) {
    Addr a = mem.dram_malloc_spread(256 + 8 * static_cast<std::uint64_t>(i), 4096);
    m.memory().host_store<std::uint64_t>(a, 0xABCD0000ull + static_cast<std::uint64_t>(i));
    regions.push_back(a);
  }
  EXPECT_EQ(mem.descriptor_count(), base_count + kRegions);
  // Every region still translates and holds its value (first and last word).
  for (int i = 0; i < kRegions; ++i) {
    EXPECT_EQ(mem.host_load<std::uint64_t>(regions[i]), 0xABCD0000ull + static_cast<std::uint64_t>(i));
  }
  // Free every other region; survivors stay mapped, freed ones unmap.
  for (int i = 0; i < kRegions; i += 2) mem.dram_free(regions[i]);
  EXPECT_EQ(mem.descriptor_count(), base_count + kRegions / 2);
  for (int i = 1; i < kRegions; i += 2)
    EXPECT_EQ(mem.host_load<std::uint64_t>(regions[i]), 0xABCD0000ull + static_cast<std::uint64_t>(i));
  EXPECT_THROW(mem.host_load<std::uint64_t>(regions[0]), UnmappedAddressError);
  // Freed VA space is reusable without unbounded table growth.
  for (int i = 0; i < 100; ++i) {
    Addr a = mem.dram_malloc_spread(1024, 4096);
    mem.dram_free(a);
  }
  EXPECT_EQ(mem.descriptor_count(), base_count + kRegions / 2);
}

struct ProbeApp {
  EventLabel probe = 0, landed = 0;
  Addr target = 0;
  Word seen = 0;
};

struct TProbe : ThreadState {
  void probe(Ctx& ctx) {
    auto& app = ctx.machine().user<ProbeApp>();
    ctx.send_dram_read(app.target, 1, app.landed);
  }
  void landed(Ctx& ctx) {
    ctx.machine().user<ProbeApp>().seen = ctx.op(0);
    ctx.yield_terminate();
  }
};

TEST(Stress, GrownDescriptorTableVisibleToShardedRun) {
  ShardsGuard g("2");
  Machine m(MachineConfig::scaled(2));
  ASSERT_EQ(m.shards(), 2u);
  // Grow the table well past the snapshot's initial copy, then have a lane
  // on node 1 read from the very last region: the shard-private descriptor
  // snapshot must see the grown table.
  Addr last = 0;
  for (int i = 0; i < 300; ++i) last = m.memory().dram_malloc_spread(512, 4096);
  m.memory().host_store<std::uint64_t>(last, 0xFEEDFACEull);
  auto& app = m.emplace_user<ProbeApp>();
  app.probe = m.program().event("TProbe::probe", &TProbe::probe);
  app.landed = m.program().event("TProbe::landed", &TProbe::landed);
  app.target = last;
  m.send_from_host(evw::make_new(m.first_lane_of_node(1), app.probe), {});
  m.run();
  EXPECT_EQ(app.seen, 0xFEEDFACEull);
}

}  // namespace
}  // namespace updown
