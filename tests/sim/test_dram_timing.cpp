// DRAM timing model: latency, bandwidth queuing, locality ratios.
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown {
namespace {

struct TimingApp {
  Addr base = 0;
  unsigned reads = 0;
  unsigned expected = 0;
  Tick first_done = 0, last_done = 0;
  EventLabel go = 0, done = 0;
};

struct TReader : ThreadState {
  void go(Ctx& ctx) {
    auto& app = ctx.machine().user<TimingApp>();
    for (unsigned i = 0; i < app.expected; ++i)
      ctx.send_dram_read(app.base + (ctx.op(0) + i) * 64, 8, app.done);
  }
  void done(Ctx& ctx) {
    auto& app = ctx.machine().user<TimingApp>();
    if (app.reads == 0) app.first_done = ctx.start_time();
    app.last_done = ctx.start_time();
    if (++app.reads == app.expected) ctx.yield_terminate();
  }
};

class DramTiming : public ::testing::Test {
 protected:
  TimingApp& setup(MachineConfig cfg, std::uint32_t alloc_nodes) {
    m_ = std::make_unique<Machine>(cfg);
    auto& app = m_->emplace_user<TimingApp>();
    app.base = m_->memory().dram_malloc(1 << 22, 0, alloc_nodes, 4096);
    app.go = m_->program().event("TReader::go", &TReader::go);
    app.done = m_->program().event("TReader::done", &TReader::done);
    return app;
  }
  Tick run(unsigned nreads, Word offset_blocks = 0) {
    auto& app = m_->user<TimingApp>();
    app.expected = nreads;
    app.reads = 0;
    m_->send_from_host(evw::make_new(0, app.go), {offset_blocks});
    m_->run();
    return app.last_done;
  }
  std::unique_ptr<Machine> m_;
};

TEST_F(DramTiming, SingleReadLatencyIsDramPlusNetwork) {
  auto cfg = MachineConfig::scaled(1);
  setup(cfg, 1);
  const Tick done = run(1);
  // Round trip: intra-node there + dram latency + intra-node back, plus a
  // few cycles of handler overhead.
  EXPECT_GT(done, cfg.lat_dram);
  EXPECT_LT(done, cfg.lat_dram + 4 * cfg.lat_intra_node + 50);
}

TEST_F(DramTiming, BandwidthQueuesLargeBursts) {
  // Saturate one node's controller: N back-to-back 64-byte reads must take
  // at least N*bytes/bandwidth cycles end to end.
  auto cfg = MachineConfig::scaled(1);
  cfg.bw_dram_node = 16.0;  // tiny bandwidth to expose the queue
  setup(cfg, 1);
  const unsigned n = 64;
  const Tick done = run(n);
  EXPECT_GT(done, static_cast<Tick>(n * 80 / 16));  // 80B per access incl header
  EXPECT_EQ(m_->stats().dram_reads, n);
}

TEST_F(DramTiming, RemoteAccessCostsMoreThanLocal) {
  // Allocate on node 0 only; read from node 0 (local) vs node 3 (remote).
  auto cfg = MachineConfig::scaled(4);
  auto& app = setup(cfg, 1);
  app.expected = 1;
  m_->send_from_host(evw::make_new(0, app.go), {0});
  m_->run();
  const Tick local = app.first_done;

  app.reads = 0;
  app.first_done = 0;
  m_->send_from_host(evw::make_new(m_->first_lane_of_node(3), app.go), {1});
  const Tick before = m_->now();
  m_->run();
  const Tick remote = app.first_done - before;
  // Section 3.2: localization matters ~7:1 in latency.
  EXPECT_GT(remote, 3 * local);
  EXPECT_EQ(m_->stats().remote_dram_accesses, 1u);
}

TEST_F(DramTiming, StatsCountBytes) {
  setup(MachineConfig::scaled(1), 1);
  run(10);
  EXPECT_EQ(m_->stats().dram_bytes, 10u * 64);
}

}  // namespace
}  // namespace updown
