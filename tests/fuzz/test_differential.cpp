// Differential fuzzing: random graphs and inputs through the simulated
// UpDown applications, checked word-for-word against the CPU baselines in
// src/baseline. Every case is derived purely from a 64-bit seed, so any
// failure is a one-line repro:
//
//   UD_FUZZ_SEED=<seed> ./tests/test_differential
//
// replays exactly the failing case (and nothing else). Without UD_FUZZ_SEED
// the suite sweeps UD_FUZZ_CASES (default 56) case seeds derived from the
// master seed UD_FUZZ_MASTER (default fixed); CI's nightly job passes a
// date-derived master so the corpus moves every night yet any night's run is
// reproducible, and each failure still reports its single-case repro seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "abstractions/global_sort.hpp"
#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/tc.hpp"
#include "baseline/baseline.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "serve/query_engine.hpp"
#include "stream/stream.hpp"

namespace updown {
namespace {

constexpr int kDefaultCases = 56;  // CI acceptance floor is 50 seeded combos

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The repro line printed on failure and in every scoped trace.
std::string repro(std::uint64_t case_seed) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "repro: UD_FUZZ_SEED=%llu ./tests/test_differential",
                static_cast<unsigned long long>(case_seed));
  return buf;
}

/// A random graph whose every dimension — generator family, size, skew,
/// symmetry, self-loops, duplicate edges — comes from the seed. Self-loop
/// and duplicate injection feed raw edges through Graph::from_edges, which
/// must drop/dedup them identically to the preprocessing tools.
Graph fuzz_graph(Xoshiro256& rng, bool symmetrize) {
  const std::uint32_t scale = 5 + static_cast<std::uint32_t>(rng.below(4));  // 32..256 vertices
  const std::uint32_t edge_factor = 4 + static_cast<std::uint32_t>(rng.below(13));
  Graph g;
  switch (rng.below(3)) {
    case 0: {  // RMAT with randomized skew
      RmatParams p;
      p.a = 0.3 + rng.uniform() * 0.4;           // 0.3 .. 0.7
      p.b = (1.0 - p.a) * rng.uniform() * 0.5;   // keep a+b+c < 1
      p.c = (1.0 - p.a - p.b) * rng.uniform() * 0.7;
      p.edge_factor = edge_factor;
      p.symmetrize = symmetrize;
      g = rmat(scale, p, rng());
      break;
    }
    case 1:
      g = erdos_renyi(scale, edge_factor, rng(), symmetrize);
      break;
    default: {  // raw edge list with explicit self-loops and duplicates
      const VertexId n = 1ull << scale;
      std::vector<Edge> edges;
      const std::uint64_t m = n * edge_factor / 2;
      for (std::uint64_t i = 0; i < m; ++i) {
        const VertexId u = rng.below(n), v = rng.below(n);
        edges.emplace_back(u, v);
        if (rng.below(4) == 0) edges.emplace_back(u, v);  // duplicate
        if (rng.below(8) == 0) edges.emplace_back(u, u);  // self-loop
      }
      g = Graph::from_edges(n, std::move(edges), symmetrize);
      break;
    }
  }
  return g;
}

std::uint32_t fuzz_nodes(Xoshiro256& rng) {
  return 1u << rng.below(3);  // 1, 2, or 4 nodes (power of two required)
}

void fuzz_pagerank(Xoshiro256& rng) {
  Graph g = fuzz_graph(rng, rng.below(2) == 0);
  const std::uint64_t block = 8ull << rng.below(4);  // split block 8..64
  SplitGraph sg = split_vertices(g, block);
  Machine m(MachineConfig::scaled(fuzz_nodes(rng)));
  DeviceGraph dg = upload_split_graph(m, sg);
  pr::Options opt;
  opt.iterations = 1 + static_cast<unsigned>(rng.below(3));
  opt.damping = 0.5 + rng.uniform() * 0.49;
  pr::Result r = pr::App::install(m, dg, sg, opt).run();
  const auto oracle = baseline::pagerank(g, opt.iterations, opt.damping);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.rank[v], oracle[v], 1e-9) << "pagerank diverged at vertex " << v;
  if (m.stats().check.enabled) {
    ASSERT_EQ(m.stats().check.errors(), 0u) << "checker false positive";
  }
}

void fuzz_bfs(Xoshiro256& rng) {
  Graph g = fuzz_graph(rng, rng.below(2) == 0);
  const VertexId root = rng.below(g.num_vertices());
  Machine m(MachineConfig::scaled(fuzz_nodes(rng)));
  DeviceGraph dg = upload_graph(m, g);
  bfs::Result r = bfs::App::install(m, dg, {.root = root}).run();
  const auto oracle = baseline::bfs(g, root);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.dist[v], oracle.dist[v]) << "bfs distance diverged at vertex " << v;
  ASSERT_EQ(r.traversed_edges, oracle.traversed_edges);
  ASSERT_EQ(r.rounds, oracle.rounds);
  if (m.stats().check.enabled) {
    ASSERT_EQ(m.stats().check.errors(), 0u) << "checker false positive";
  }
}

void fuzz_tc(Xoshiro256& rng) {
  Graph g = fuzz_graph(rng, /*symmetrize=*/true);  // TC requires symmetric input
  Machine m(MachineConfig::scaled(fuzz_nodes(rng)));
  DeviceGraph dg = upload_graph(m, g);
  tc::Result r = tc::App::install(m, dg, {}).run();
  ASSERT_EQ(r.triangles, baseline::triangle_count(g)) << "triangle count diverged";
  if (m.stats().check.enabled) {
    ASSERT_EQ(m.stats().check.errors(), 0u) << "checker false positive";
  }
}

/// ConcurrentJobs dimension: 2–4 simultaneous serve-layer queries, each a
/// seeded PR/BFS/TC on its own key-space (per-tenant graph copy, node
/// partition, lane partition), launched together and driven to global drain.
/// Every tenant must match its CPU baseline AND the tenants must actually
/// interleave: each query's [launch, done] window overlaps every other's.
void fuzz_concurrent(Xoshiro256& rng) {
  const std::uint32_t njobs = 2 + static_cast<std::uint32_t>(rng.below(3));  // 2..4
  Machine m(MachineConfig::scaled(4));
  auto& eng = serve::QueryEngine::install(m);
  const auto lanes_per_node =
      static_cast<std::uint32_t>(m.config().total_lanes() / m.config().nodes);

  struct TenantCase {
    Graph g;
    DeviceGraph dg;
    serve::QueryKind kind{};
    VertexId root = 0;
    unsigned iters = 1;
    serve::QueryId q = 0;
  };
  std::deque<TenantCase> tenants;
  for (std::uint32_t i = 0; i < njobs; ++i) {
    TenantCase t;
    switch (rng.below(3)) {
      case 0: t.kind = serve::QueryKind::kPageRank; break;
      case 1: t.kind = serve::QueryKind::kBfs; break;
      default: t.kind = serve::QueryKind::kTriangles; break;
    }
    t.g = fuzz_graph(rng, t.kind != serve::QueryKind::kPageRank || rng.below(2) == 0);
    t.root = rng.below(t.g.num_vertices());
    t.iters = 1 + static_cast<unsigned>(rng.below(3));
    const GraphPlacement place{i, 1, 32 * 1024};
    tenants.push_back(std::move(t));
    TenantCase& tb = tenants.back();  // deque: stable address for spec.graph
    tb.dg = upload_graph(m, tb.g, place);
    serve::QuerySpec s;
    s.kind = tb.kind;
    s.graph = &tb.dg;
    s.lanes = {i * lanes_per_node, lanes_per_node};
    s.values = place;
    s.iterations = tb.iters;
    s.root = tb.root;
    s.name = "fz" + std::to_string(i);
    tb.q = eng.add_query(std::move(s));
  }
  for (const TenantCase& t : tenants) eng.launch(t.q);
  m.run();

  for (const TenantCase& t : tenants) {
    ASSERT_TRUE(eng.done(t.q));
    const serve::QueryResult r = eng.collect(t.q);
    switch (t.kind) {
      case serve::QueryKind::kPageRank: {
        const auto oracle = baseline::pagerank(t.g, t.iters);
        for (VertexId v = 0; v < t.g.num_vertices(); ++v)
          ASSERT_NEAR(r.rank[v], oracle[v], 1e-9)
              << "tenant " << eng.spec(t.q).name << " diverged at vertex " << v;
        break;
      }
      case serve::QueryKind::kBfs: {
        const auto oracle = baseline::bfs(t.g, t.root);
        for (VertexId v = 0; v < t.g.num_vertices(); ++v)
          ASSERT_EQ(r.dist[v], oracle.dist[v])
              << "tenant " << eng.spec(t.q).name << " diverged at vertex " << v;
        break;
      }
      default:
        ASSERT_EQ(r.count, baseline::triangle_count(t.g))
            << "tenant " << eng.spec(t.q).name << " triangle count diverged";
        break;
    }
  }
  // Interleaved completion: no tenant finished before another launched — the
  // jobs were genuinely concurrent, not serialized by the runtime.
  for (const TenantCase& x : tenants)
    for (const TenantCase& y : tenants) {
      const serve::QueryResult rx = eng.collect(x.q);
      const serve::QueryResult ry = eng.collect(y.q);
      ASSERT_LT(rx.launch_tick, ry.done_tick)
          << "tenants " << eng.spec(x.q).name << "/" << eng.spec(y.q).name
          << " did not overlap";
    }
  if (m.stats().check.enabled) {
    ASSERT_EQ(m.stats().check.errors(), 0u) << "checker false positive";
  }
}

/// Streaming dimension: a resident session over a seeded base graph takes
/// 1–3 seeded delta batches (device-ingested or host-staged, with injected
/// duplicates and self-loops), compacting and incrementally refreshing after
/// each epoch. Incremental PageRank must match the from-scratch CPU baseline
/// on the post-delta graph BIT-for-bit (the rank-history pull design), and
/// incremental BFS repair must land on the from-scratch distances.
void fuzz_streaming(Xoshiro256& rng) {
  Graph base = fuzz_graph(rng, rng.below(2) == 0);
  const VertexId n = base.num_vertices();
  Machine m(MachineConfig::scaled(fuzz_nodes(rng)));
  stream::StreamOptions opt;
  opt.pr_iterations = 1 + static_cast<std::uint32_t>(rng.below(3));
  opt.damping = 0.5 + rng.uniform() * 0.49;
  opt.bfs_root = rng.below(n);
  auto& se = stream::StreamEngine::install(m, base, opt);
  se.warm();

  Graph cur = base;
  const int epochs = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < epochs; ++e) {
    std::vector<tform::EdgeRecord> recs;
    const std::uint64_t nrec = 1 + rng.below(24);
    for (std::uint64_t i = 0; i < nrec; ++i) {
      const tform::EdgeRecord r{rng.below(n), rng.below(n), rng.below(8)};
      recs.push_back(r);
      if (rng.below(4) == 0) recs.push_back(r);                    // duplicate
      if (rng.below(8) == 0) recs.push_back({r.src, r.src, 0});    // self-loop
    }
    if (rng.below(2) == 0) {
      const std::uint64_t b = se.ingest_async(recs, m.now());
      m.run();
      ASSERT_TRUE(se.ingested(b)) << "epoch " << e << " ingestion stalled";
    } else {
      se.stage(recs);
    }
    se.compact(m.now());

    std::vector<Edge> edges;
    for (VertexId u = 0; u < n; ++u)
      for (const VertexId v : cur.neighbors_of(u)) edges.emplace_back(u, v);
    for (const tform::EdgeRecord& r : recs) edges.emplace_back(r.src, r.dst);
    cur = Graph::from_edges(n, std::move(edges), false);

    const stream::RefreshResult rr = se.refresh();
    const auto pr_oracle = baseline::pagerank(cur, opt.pr_iterations, opt.damping);
    for (VertexId v = 0; v < n; ++v)
      ASSERT_EQ(std::bit_cast<Word>(rr.pr.rank[v]), std::bit_cast<Word>(pr_oracle[v]))
          << "incremental pagerank diverged at vertex " << v << " epoch " << e;
    const auto bfs_oracle = baseline::bfs(cur, opt.bfs_root);
    for (VertexId v = 0; v < n; ++v)
      ASSERT_EQ(rr.bfs.dist[v], bfs_oracle.dist[v])
          << "incremental bfs diverged at vertex " << v << " epoch " << e;
  }
  if (m.stats().check.enabled) {
    ASSERT_EQ(m.stats().check.errors(), 0u) << "checker false positive";
  }
}

void fuzz_bucket_sort(Xoshiro256& rng) {
  Machine m(MachineConfig::scaled(fuzz_nodes(rng)));
  auto& gs = gsort::GlobalSort::install(m);
  const std::uint64_t n = rng.below(2000);  // 0..1999 values, including empty
  const unsigned key_bits = 8 + static_cast<unsigned>(rng.below(41));  // 8..48
  std::vector<Word> data(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    data[i] = rng() & ((key_bits >= 64 ? ~0ull : (1ull << key_bits) - 1));
    // Occasionally duplicate an earlier value (from the filled prefix only —
    // copying zero-initialized tail entries would pile mass on bucket 0 and
    // trip GlobalSort's documented skewed-key bucket-overflow guard).
    if (i > 0 && rng.below(8) == 0) data[i] = data[rng.below(i)];
  }
  Addr input = m.memory().dram_malloc_spread(std::max<std::uint64_t>(8, n * 8), 4096);
  m.memory().host_write(input, data.data(), n * 8);
  gs.sort(input, n, key_bits);
  const auto sim_sorted = gs.host_read_sorted();
  const auto oracle = baseline::bucket_sort(data, key_bits, m.config().total_lanes());
  ASSERT_EQ(sim_sorted, oracle) << "bucket sort diverged";
  // The lane mapping takes the top key bits, so bucket-major order IS sorted
  // order (total lanes is a power of two) — assert against plain sort too.
  std::sort(data.begin(), data.end());
  ASSERT_EQ(sim_sorted, data);
  if (m.stats().check.enabled) {
    ASSERT_EQ(m.stats().check.errors(), 0u) << "checker false positive";
  }
}

/// Scoped environment pin (restore on destruction), for the checked-sharded
/// sweep below: UD_CHECK / UD_SHARDS must hold regardless of ambience.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

/// Scoped UD_COALESCE pin: the shuffle-coalescing factor is itself a fuzzed
/// dimension (apps read it at job creation), restored after each case so the
/// ambient environment never leaks between cases.
class CoalesceGuard {
 public:
  explicit CoalesceGuard(std::uint32_t factor) {
    const char* old = std::getenv("UD_COALESCE");
    had_ = old != nullptr;
    if (old) old_ = old;
    ::setenv("UD_COALESCE", std::to_string(factor).c_str(), 1);
  }
  ~CoalesceGuard() {
    if (had_) ::setenv("UD_COALESCE", old_.c_str(), 1);
    else ::unsetenv("UD_COALESCE");
  }

 private:
  std::string old_;
  bool had_ = false;
};

/// Run the one case identified by `case_seed`: the seed picks the app and
/// every input dimension. Keeping the whole derivation inside one function
/// is what makes the single-seed replay exact.
void run_case(std::uint64_t case_seed) {
  SCOPED_TRACE(repro(case_seed));
  Xoshiro256 rng(case_seed);
  // Half the cases run the classic shuffle, half a coalesced one.
  static constexpr std::uint32_t kCoalesce[] = {1, 1, 1, 4, 16, 64};
  CoalesceGuard coalesce(kCoalesce[rng.below(6)]);
  switch (rng.below(6)) {
    case 0: fuzz_pagerank(rng); break;
    case 1: fuzz_bfs(rng); break;
    case 2: fuzz_tc(rng); break;
    case 3: fuzz_bucket_sort(rng); break;
    case 4: fuzz_streaming(rng); break;
    default: fuzz_concurrent(rng); break;
  }
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::strtoull(v, nullptr, 0) : fallback;
}

TEST(DifferentialFuzz, SimMatchesBaselines) {
  const char* replay = std::getenv("UD_FUZZ_SEED");
  if (replay && *replay) {
    // Replay mode: exactly the failing case, nothing else.
    run_case(std::strtoull(replay, nullptr, 0));
    return;
  }
  const std::uint64_t master = env_u64("UD_FUZZ_MASTER", 0xD1FFC0DEULL);
  const int cases = static_cast<int>(env_u64("UD_FUZZ_CASES", kDefaultCases));
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t case_seed = splitmix64(master + static_cast<std::uint64_t>(i));
    run_case(case_seed);
    if (::testing::Test::HasFatalFailure()) {
      // The scoped trace already carries the repro; print it unmissably too.
      std::fprintf(stderr, "[  FUZZ    ] case %d failed — %s\n", i, repro(case_seed).c_str());
      return;
    }
  }
}

TEST(DifferentialFuzz, CheckedShardedSweep) {
  // Eight seeded cases under the race checker at UD_SHARDS=4: the deferred
  // window-boundary replay must neither perturb any baseline-checked result
  // nor report a false positive on these clean programs (every fuzz_*
  // asserts errors()==0 when checking is on). Seeds are offset from the main
  // sweep so the checked corpus is its own slice; any failure replays with
  //   UD_CHECK=1 UD_SHARDS=4 UD_FUZZ_SEED=<seed> ./tests/test_differential
  EnvGuard gc("UD_CHECK", "1");
  EnvGuard gs("UD_SHARDS", "4");
  const std::uint64_t master = env_u64("UD_FUZZ_MASTER", 0xD1FFC0DEULL);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t case_seed =
        splitmix64(master + 0xC4EC0000ULL + static_cast<std::uint64_t>(i));
    run_case(case_seed);
    if (::testing::Test::HasFatalFailure()) {
      std::fprintf(stderr, "[  FUZZ    ] checked case %d failed — %s\n", i,
                   repro(case_seed).c_str());
      return;
    }
  }
}

}  // namespace
}  // namespace updown
